file(REMOVE_RECURSE
  "CMakeFiles/sc_util.dir/check.cpp.o"
  "CMakeFiles/sc_util.dir/check.cpp.o.d"
  "CMakeFiles/sc_util.dir/log.cpp.o"
  "CMakeFiles/sc_util.dir/log.cpp.o.d"
  "CMakeFiles/sc_util.dir/result.cpp.o"
  "CMakeFiles/sc_util.dir/result.cpp.o.d"
  "CMakeFiles/sc_util.dir/stats.cpp.o"
  "CMakeFiles/sc_util.dir/stats.cpp.o.d"
  "libsc_util.a"
  "libsc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
