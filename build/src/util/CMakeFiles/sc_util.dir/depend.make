# Empty dependencies file for sc_util.
# This may be replaced when dependencies are built.
