file(REMOVE_RECURSE
  "libsc_util.a"
)
