file(REMOVE_RECURSE
  "libsc_softcache.a"
)
