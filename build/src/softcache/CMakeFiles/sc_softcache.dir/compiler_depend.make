# Empty compiler generated dependencies file for sc_softcache.
# This may be replaced when dependencies are built.
