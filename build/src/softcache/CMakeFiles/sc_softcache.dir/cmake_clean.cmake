file(REMOVE_RECURSE
  "CMakeFiles/sc_softcache.dir/cc.cpp.o"
  "CMakeFiles/sc_softcache.dir/cc.cpp.o.d"
  "CMakeFiles/sc_softcache.dir/chunker.cpp.o"
  "CMakeFiles/sc_softcache.dir/chunker.cpp.o.d"
  "CMakeFiles/sc_softcache.dir/mc.cpp.o"
  "CMakeFiles/sc_softcache.dir/mc.cpp.o.d"
  "CMakeFiles/sc_softcache.dir/protocol.cpp.o"
  "CMakeFiles/sc_softcache.dir/protocol.cpp.o.d"
  "CMakeFiles/sc_softcache.dir/system.cpp.o"
  "CMakeFiles/sc_softcache.dir/system.cpp.o.d"
  "libsc_softcache.a"
  "libsc_softcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_softcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
