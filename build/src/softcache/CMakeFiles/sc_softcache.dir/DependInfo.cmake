
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softcache/cc.cpp" "src/softcache/CMakeFiles/sc_softcache.dir/cc.cpp.o" "gcc" "src/softcache/CMakeFiles/sc_softcache.dir/cc.cpp.o.d"
  "/root/repo/src/softcache/chunker.cpp" "src/softcache/CMakeFiles/sc_softcache.dir/chunker.cpp.o" "gcc" "src/softcache/CMakeFiles/sc_softcache.dir/chunker.cpp.o.d"
  "/root/repo/src/softcache/mc.cpp" "src/softcache/CMakeFiles/sc_softcache.dir/mc.cpp.o" "gcc" "src/softcache/CMakeFiles/sc_softcache.dir/mc.cpp.o.d"
  "/root/repo/src/softcache/protocol.cpp" "src/softcache/CMakeFiles/sc_softcache.dir/protocol.cpp.o" "gcc" "src/softcache/CMakeFiles/sc_softcache.dir/protocol.cpp.o.d"
  "/root/repo/src/softcache/system.cpp" "src/softcache/CMakeFiles/sc_softcache.dir/system.cpp.o" "gcc" "src/softcache/CMakeFiles/sc_softcache.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
