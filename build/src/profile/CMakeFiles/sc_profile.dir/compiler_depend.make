# Empty compiler generated dependencies file for sc_profile.
# This may be replaced when dependencies are built.
