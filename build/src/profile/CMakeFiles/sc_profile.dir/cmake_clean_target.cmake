file(REMOVE_RECURSE
  "libsc_profile.a"
)
