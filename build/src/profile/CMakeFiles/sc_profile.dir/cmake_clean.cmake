file(REMOVE_RECURSE
  "CMakeFiles/sc_profile.dir/profiler.cpp.o"
  "CMakeFiles/sc_profile.dir/profiler.cpp.o.d"
  "libsc_profile.a"
  "libsc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
