file(REMOVE_RECURSE
  "libsc_dcache.a"
)
