# Empty compiler generated dependencies file for sc_dcache.
# This may be replaced when dependencies are built.
