file(REMOVE_RECURSE
  "CMakeFiles/sc_dcache.dir/dcache.cpp.o"
  "CMakeFiles/sc_dcache.dir/dcache.cpp.o.d"
  "libsc_dcache.a"
  "libsc_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
