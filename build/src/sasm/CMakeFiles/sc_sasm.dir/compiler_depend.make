# Empty compiler generated dependencies file for sc_sasm.
# This may be replaced when dependencies are built.
