file(REMOVE_RECURSE
  "libsc_sasm.a"
)
