file(REMOVE_RECURSE
  "CMakeFiles/sc_sasm.dir/assembler.cpp.o"
  "CMakeFiles/sc_sasm.dir/assembler.cpp.o.d"
  "libsc_sasm.a"
  "libsc_sasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_sasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
