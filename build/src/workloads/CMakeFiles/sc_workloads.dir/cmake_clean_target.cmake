file(REMOVE_RECURSE
  "libsc_workloads.a"
)
