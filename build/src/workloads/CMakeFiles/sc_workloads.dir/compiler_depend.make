# Empty compiler generated dependencies file for sc_workloads.
# This may be replaced when dependencies are built.
