file(REMOVE_RECURSE
  "CMakeFiles/sc_workloads.dir/workloads.cpp.o"
  "CMakeFiles/sc_workloads.dir/workloads.cpp.o.d"
  "libsc_workloads.a"
  "libsc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
