# Empty dependencies file for sc_vm.
# This may be replaced when dependencies are built.
