file(REMOVE_RECURSE
  "libsc_vm.a"
)
