
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/machine.cpp" "src/vm/CMakeFiles/sc_vm.dir/machine.cpp.o" "gcc" "src/vm/CMakeFiles/sc_vm.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sc_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
