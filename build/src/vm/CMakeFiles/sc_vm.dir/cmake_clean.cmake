file(REMOVE_RECURSE
  "CMakeFiles/sc_vm.dir/machine.cpp.o"
  "CMakeFiles/sc_vm.dir/machine.cpp.o.d"
  "libsc_vm.a"
  "libsc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
