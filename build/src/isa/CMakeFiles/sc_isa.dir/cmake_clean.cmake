file(REMOVE_RECURSE
  "CMakeFiles/sc_isa.dir/isa.cpp.o"
  "CMakeFiles/sc_isa.dir/isa.cpp.o.d"
  "libsc_isa.a"
  "libsc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
