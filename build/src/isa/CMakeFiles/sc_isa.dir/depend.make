# Empty dependencies file for sc_isa.
# This may be replaced when dependencies are built.
