file(REMOVE_RECURSE
  "libsc_isa.a"
)
