file(REMOVE_RECURSE
  "libsc_minicc.a"
)
