# Empty compiler generated dependencies file for sc_minicc.
# This may be replaced when dependencies are built.
