file(REMOVE_RECURSE
  "CMakeFiles/sc_minicc.dir/codegen.cpp.o"
  "CMakeFiles/sc_minicc.dir/codegen.cpp.o.d"
  "CMakeFiles/sc_minicc.dir/compiler.cpp.o"
  "CMakeFiles/sc_minicc.dir/compiler.cpp.o.d"
  "CMakeFiles/sc_minicc.dir/emitter.cpp.o"
  "CMakeFiles/sc_minicc.dir/emitter.cpp.o.d"
  "CMakeFiles/sc_minicc.dir/lexer.cpp.o"
  "CMakeFiles/sc_minicc.dir/lexer.cpp.o.d"
  "CMakeFiles/sc_minicc.dir/parser.cpp.o"
  "CMakeFiles/sc_minicc.dir/parser.cpp.o.d"
  "CMakeFiles/sc_minicc.dir/types.cpp.o"
  "CMakeFiles/sc_minicc.dir/types.cpp.o.d"
  "libsc_minicc.a"
  "libsc_minicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_minicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
