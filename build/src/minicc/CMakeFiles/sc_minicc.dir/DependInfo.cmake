
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minicc/codegen.cpp" "src/minicc/CMakeFiles/sc_minicc.dir/codegen.cpp.o" "gcc" "src/minicc/CMakeFiles/sc_minicc.dir/codegen.cpp.o.d"
  "/root/repo/src/minicc/compiler.cpp" "src/minicc/CMakeFiles/sc_minicc.dir/compiler.cpp.o" "gcc" "src/minicc/CMakeFiles/sc_minicc.dir/compiler.cpp.o.d"
  "/root/repo/src/minicc/emitter.cpp" "src/minicc/CMakeFiles/sc_minicc.dir/emitter.cpp.o" "gcc" "src/minicc/CMakeFiles/sc_minicc.dir/emitter.cpp.o.d"
  "/root/repo/src/minicc/lexer.cpp" "src/minicc/CMakeFiles/sc_minicc.dir/lexer.cpp.o" "gcc" "src/minicc/CMakeFiles/sc_minicc.dir/lexer.cpp.o.d"
  "/root/repo/src/minicc/parser.cpp" "src/minicc/CMakeFiles/sc_minicc.dir/parser.cpp.o" "gcc" "src/minicc/CMakeFiles/sc_minicc.dir/parser.cpp.o.d"
  "/root/repo/src/minicc/types.cpp" "src/minicc/CMakeFiles/sc_minicc.dir/types.cpp.o" "gcc" "src/minicc/CMakeFiles/sc_minicc.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sc_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
