# Empty compiler generated dependencies file for sc_hwsim.
# This may be replaced when dependencies are built.
