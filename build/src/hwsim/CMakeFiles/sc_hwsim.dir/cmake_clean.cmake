file(REMOVE_RECURSE
  "CMakeFiles/sc_hwsim.dir/cache.cpp.o"
  "CMakeFiles/sc_hwsim.dir/cache.cpp.o.d"
  "CMakeFiles/sc_hwsim.dir/power.cpp.o"
  "CMakeFiles/sc_hwsim.dir/power.cpp.o.d"
  "libsc_hwsim.a"
  "libsc_hwsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_hwsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
