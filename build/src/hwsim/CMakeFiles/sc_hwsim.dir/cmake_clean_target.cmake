file(REMOVE_RECURSE
  "libsc_hwsim.a"
)
