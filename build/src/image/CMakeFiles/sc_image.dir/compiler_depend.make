# Empty compiler generated dependencies file for sc_image.
# This may be replaced when dependencies are built.
