file(REMOVE_RECURSE
  "libsc_image.a"
)
