file(REMOVE_RECURSE
  "CMakeFiles/sc_image.dir/image.cpp.o"
  "CMakeFiles/sc_image.dir/image.cpp.o.d"
  "libsc_image.a"
  "libsc_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sc_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
