# Empty compiler generated dependencies file for sasm_tool.
# This may be replaced when dependencies are built.
