file(REMOVE_RECURSE
  "CMakeFiles/sasm_tool.dir/sasm_tool.cpp.o"
  "CMakeFiles/sasm_tool.dir/sasm_tool.cpp.o.d"
  "sasm"
  "sasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
