file(REMOVE_RECURSE
  "CMakeFiles/scc.dir/scc.cpp.o"
  "CMakeFiles/scc.dir/scc.cpp.o.d"
  "scc"
  "scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
