# Empty compiler generated dependencies file for scc.
# This may be replaced when dependencies are built.
