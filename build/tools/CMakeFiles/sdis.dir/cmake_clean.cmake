file(REMOVE_RECURSE
  "CMakeFiles/sdis.dir/sdis.cpp.o"
  "CMakeFiles/sdis.dir/sdis.cpp.o.d"
  "sdis"
  "sdis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
