# Empty compiler generated dependencies file for sdis.
# This may be replaced when dependencies are built.
