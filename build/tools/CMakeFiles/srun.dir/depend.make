# Empty dependencies file for srun.
# This may be replaced when dependencies are built.
