file(REMOVE_RECURSE
  "CMakeFiles/srun.dir/srun.cpp.o"
  "CMakeFiles/srun.dir/srun.cpp.o.d"
  "srun"
  "srun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
