# Empty compiler generated dependencies file for bench_net.
# This may be replaced when dependencies are built.
