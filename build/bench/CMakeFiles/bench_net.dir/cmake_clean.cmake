file(REMOVE_RECURSE
  "CMakeFiles/bench_net.dir/bench_net.cpp.o"
  "CMakeFiles/bench_net.dir/bench_net.cpp.o.d"
  "bench_net"
  "bench_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
