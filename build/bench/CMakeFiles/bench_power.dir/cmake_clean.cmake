file(REMOVE_RECURSE
  "CMakeFiles/bench_power.dir/bench_power.cpp.o"
  "CMakeFiles/bench_power.dir/bench_power.cpp.o.d"
  "bench_power"
  "bench_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
