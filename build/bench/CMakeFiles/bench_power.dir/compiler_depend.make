# Empty compiler generated dependencies file for bench_power.
# This may be replaced when dependencies are built.
