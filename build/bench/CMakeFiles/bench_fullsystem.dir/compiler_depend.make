# Empty compiler generated dependencies file for bench_fullsystem.
# This may be replaced when dependencies are built.
