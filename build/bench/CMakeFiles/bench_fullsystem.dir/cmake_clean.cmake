file(REMOVE_RECURSE
  "CMakeFiles/bench_fullsystem.dir/bench_fullsystem.cpp.o"
  "CMakeFiles/bench_fullsystem.dir/bench_fullsystem.cpp.o.d"
  "bench_fullsystem"
  "bench_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
