# Empty compiler generated dependencies file for bench_dcache.
# This may be replaced when dependencies are built.
