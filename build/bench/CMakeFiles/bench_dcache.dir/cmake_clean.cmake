file(REMOVE_RECURSE
  "CMakeFiles/bench_dcache.dir/bench_dcache.cpp.o"
  "CMakeFiles/bench_dcache.dir/bench_dcache.cpp.o.d"
  "bench_dcache"
  "bench_dcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
