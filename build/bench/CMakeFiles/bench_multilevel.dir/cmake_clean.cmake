file(REMOVE_RECURSE
  "CMakeFiles/bench_multilevel.dir/bench_multilevel.cpp.o"
  "CMakeFiles/bench_multilevel.dir/bench_multilevel.cpp.o.d"
  "bench_multilevel"
  "bench_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
