# Empty compiler generated dependencies file for bench_multilevel.
# This may be replaced when dependencies are built.
