# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/minicc_test[1]_include.cmake")
include("/root/repo/build/tests/softcache_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/dcache_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/sasm_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/image_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/hwsim_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/minicc_expr_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/parser_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
