file(REMOVE_RECURSE
  "CMakeFiles/protocol_fuzz_test.dir/protocol_fuzz_test.cpp.o"
  "CMakeFiles/protocol_fuzz_test.dir/protocol_fuzz_test.cpp.o.d"
  "protocol_fuzz_test"
  "protocol_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
