# Empty dependencies file for protocol_fuzz_test.
# This may be replaced when dependencies are built.
