file(REMOVE_RECURSE
  "CMakeFiles/sasm_test.dir/sasm_test.cpp.o"
  "CMakeFiles/sasm_test.dir/sasm_test.cpp.o.d"
  "sasm_test"
  "sasm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
