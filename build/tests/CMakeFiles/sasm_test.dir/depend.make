# Empty dependencies file for sasm_test.
# This may be replaced when dependencies are built.
