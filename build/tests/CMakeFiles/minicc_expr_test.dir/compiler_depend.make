# Empty compiler generated dependencies file for minicc_expr_test.
# This may be replaced when dependencies are built.
