file(REMOVE_RECURSE
  "CMakeFiles/minicc_expr_test.dir/minicc_expr_test.cpp.o"
  "CMakeFiles/minicc_expr_test.dir/minicc_expr_test.cpp.o.d"
  "minicc_expr_test"
  "minicc_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicc_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
