
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/util_test.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/sc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/sc_image.dir/DependInfo.cmake"
  "/root/repo/build/src/sasm/CMakeFiles/sc_sasm.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/sc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/minicc/CMakeFiles/sc_minicc.dir/DependInfo.cmake"
  "/root/repo/build/src/softcache/CMakeFiles/sc_softcache.dir/DependInfo.cmake"
  "/root/repo/build/src/hwsim/CMakeFiles/sc_hwsim.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dcache/CMakeFiles/sc_dcache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
