# Empty dependencies file for hwsim_test.
# This may be replaced when dependencies are built.
