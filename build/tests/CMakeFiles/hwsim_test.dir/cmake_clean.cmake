file(REMOVE_RECURSE
  "CMakeFiles/hwsim_test.dir/hwsim_test.cpp.o"
  "CMakeFiles/hwsim_test.dir/hwsim_test.cpp.o.d"
  "hwsim_test"
  "hwsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
