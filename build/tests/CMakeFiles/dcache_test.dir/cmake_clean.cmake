file(REMOVE_RECURSE
  "CMakeFiles/dcache_test.dir/dcache_test.cpp.o"
  "CMakeFiles/dcache_test.dir/dcache_test.cpp.o.d"
  "dcache_test"
  "dcache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
