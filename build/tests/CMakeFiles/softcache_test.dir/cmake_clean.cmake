file(REMOVE_RECURSE
  "CMakeFiles/softcache_test.dir/softcache_test.cpp.o"
  "CMakeFiles/softcache_test.dir/softcache_test.cpp.o.d"
  "softcache_test"
  "softcache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
