# Empty dependencies file for softcache_test.
# This may be replaced when dependencies are built.
