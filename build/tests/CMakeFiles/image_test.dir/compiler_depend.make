# Empty compiler generated dependencies file for image_test.
# This may be replaced when dependencies are built.
