file(REMOVE_RECURSE
  "CMakeFiles/image_test.dir/image_test.cpp.o"
  "CMakeFiles/image_test.dir/image_test.cpp.o.d"
  "image_test"
  "image_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
