file(REMOVE_RECURSE
  "CMakeFiles/minicc_test.dir/minicc_test.cpp.o"
  "CMakeFiles/minicc_test.dir/minicc_test.cpp.o.d"
  "minicc_test"
  "minicc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
