# Empty dependencies file for sensor_fleet.
# This may be replaced when dependencies are built.
