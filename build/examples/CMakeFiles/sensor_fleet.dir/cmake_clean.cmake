file(REMOVE_RECURSE
  "CMakeFiles/sensor_fleet.dir/sensor_fleet.cpp.o"
  "CMakeFiles/sensor_fleet.dir/sensor_fleet.cpp.o.d"
  "sensor_fleet"
  "sensor_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
