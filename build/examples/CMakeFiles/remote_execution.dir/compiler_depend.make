# Empty compiler generated dependencies file for remote_execution.
# This may be replaced when dependencies are built.
