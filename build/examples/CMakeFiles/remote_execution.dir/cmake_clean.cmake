file(REMOVE_RECURSE
  "CMakeFiles/remote_execution.dir/remote_execution.cpp.o"
  "CMakeFiles/remote_execution.dir/remote_execution.cpp.o.d"
  "remote_execution"
  "remote_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
