# Empty dependencies file for power_explorer.
# This may be replaced when dependencies are built.
