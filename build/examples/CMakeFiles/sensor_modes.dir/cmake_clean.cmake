file(REMOVE_RECURSE
  "CMakeFiles/sensor_modes.dir/sensor_modes.cpp.o"
  "CMakeFiles/sensor_modes.dir/sensor_modes.cpp.o.d"
  "sensor_modes"
  "sensor_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
