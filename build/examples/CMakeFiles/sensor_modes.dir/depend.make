# Empty dependencies file for sensor_modes.
# This may be replaced when dependencies are built.
