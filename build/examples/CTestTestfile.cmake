# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_modes "/root/repo/build/examples/sensor_modes")
set_tests_properties(example_sensor_modes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_execution "/root/repo/build/examples/remote_execution")
set_tests_properties(example_remote_execution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_explorer "/root/repo/build/examples/power_explorer" "adpcm_enc")
set_tests_properties(example_power_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_fleet "/root/repo/build/examples/sensor_fleet" "3")
set_tests_properties(example_sensor_fleet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
