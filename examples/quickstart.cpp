// Quickstart: compile a MiniC program, run it natively, then run it under
// the software instruction cache and compare.
//
//   $ ./quickstart
//
// This is the smallest end-to-end tour of the public API:
//   minicc::CompileMiniC  -> image::Image
//   vm::Machine           -> direct execution (the "ideal" baseline)
//   softcache::SoftCacheSystem -> client/server cached execution
#include <cstdio>

#include "minicc/compiler.h"
#include "softcache/system.h"
#include "vm/machine.h"

using namespace sc;

int main() {
  // A small program: repeated sieve of Eratosthenes (long enough that the
  // cache-fill startup cost is amortized, like the paper's Figure 5 input).
  const char* program = R"(
    char composite[30000];
    int sieve() {
      int count = 0;
      for (int i = 0; i < 30000; i++) composite[i] = 0;
      for (int i = 2; i < 30000; i++) {
        if (!composite[i]) {
          count++;
          for (int j = i + i; j < 30000; j += i) composite[j] = 1;
        }
      }
      return count;
    }
    int main() {
      int count = 0;
      for (int round = 0; round < 8; round++) count = sieve();
      print_str("primes below 30000: ");
      print_int(count);
      print_nl();
      return 0;
    }
  )";

  // 1. Compile.
  auto img = minicc::CompileMiniC(program, "sieve.mc");
  if (!img.ok()) {
    std::fprintf(stderr, "compile error: %s\n", img.error().ToString().c_str());
    return 1;
  }
  std::printf("compiled: %zu bytes of text, %zu bytes of data\n",
              img->text.size(), img->data.size());

  // 2. Run natively — the paper's "ideal" execution.
  vm::Machine machine;
  machine.LoadImage(*img);
  const vm::RunResult native = machine.Run();
  std::printf("\n[native]    %s", machine.OutputString().c_str());
  std::printf("[native]    %llu instructions, %llu cycles\n",
              (unsigned long long)native.instructions,
              (unsigned long long)native.cycles);

  // 3. Run under the software cache: an embedded client with 8 KB of local
  //    code memory, fetching chunks from the server over a 10 Mbps link.
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 8 * 1024;
  softcache::SoftCacheSystem system(*img, config);
  const vm::RunResult cached = system.Run();
  std::printf("\n[softcache] %s", system.OutputString().c_str());
  std::printf("[softcache] %llu instructions, %llu cycles (%.2fx ideal)\n",
              (unsigned long long)cached.instructions,
              (unsigned long long)cached.cycles,
              (double)cached.cycles / (double)native.cycles);
  const auto& stats = system.stats();
  std::printf(
      "[softcache] %llu blocks translated, %llu evictions, %llu bytes over "
      "the wire\n",
      (unsigned long long)stats.blocks_translated,
      (unsigned long long)stats.evictions,
      (unsigned long long)system.channel().stats().total_bytes());
  std::printf(
      "[softcache] exit code matches native: %s\n",
      cached.exit_code == native.exit_code ? "yes" : "NO (bug!)");
  return cached.exit_code == native.exit_code ? 0 : 1;
}
