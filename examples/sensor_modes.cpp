// The paper's Figure 2 scenario: an embedded sensor whose firmware has
// several modes (initialization, calibration, daytime, nighttime) of which
// only one is active at a time. Local code memory is sized to hold roughly
// ONE mode; the software cache pages each mode in as the device transitions
// and then runs it with zero misses — the programmability-without-hardware
// story the paper opens with.
//
//   $ ./sensor_modes
#include <cstdio>
#include <string>

#include "minicc/compiler.h"
#include "softcache/system.h"
#include "util/stats.h"

using namespace sc;

namespace {

// Sensor firmware. Each mode has its own processing kernel; mode changes
// are driven by the input stream (one command byte per simulated period).
const char* kFirmware = R"(
int samples[256];
int history[64];
int calib_offset = 0;
int calib_gain = 256;

/* pseudo sensor: deterministic synthetic readings */
uint sensor_state = 12345;
int read_sensor() {
  sensor_state = sensor_state * 1103515245 + 12345;
  return (int)((sensor_state >> 16) & 1023);
}

/* ---- initialization mode ---- */
void mode_init() {
  int i;
  for (i = 0; i < 256; i++) samples[i] = 0;
  for (i = 0; i < 64; i++) history[i] = 0;
  calib_offset = 0;
  calib_gain = 256;
  print_str("[init] tables cleared\n");
}

/* ---- calibration mode: least-squares-ish fit of offset/gain ---- */
void mode_calibrate() {
  int sum = 0;
  int sumsq = 0;
  int i;
  for (i = 0; i < 200; i++) {
    int v = read_sensor();
    sum += v;
    sumsq += (v >> 4) * (v >> 4);
  }
  calib_offset = sum / 200;
  calib_gain = 200 + sumsq % 100;
  print_str("[calib] offset=");
  print_int(calib_offset);
  print_str(" gain=");
  print_int(calib_gain);
  print_nl();
}

/* ---- daytime mode: windowed average + peak detection ---- */
int day_peaks = 0;
void mode_daytime(int periods) {
  int p;
  for (p = 0; p < periods; p++) {
    int acc = 0;
    int peak = 0;
    int i;
    for (i = 0; i < 256; i++) {
      int v = (read_sensor() - calib_offset) * calib_gain / 256;
      samples[i] = v;
      acc += v;
      if (v > peak) peak = v;
    }
    history[p & 63] = acc / 256;
    if (peak > 900) day_peaks++;
  }
}

/* ---- nighttime mode: low-rate filtering + event counting ---- */
int night_events = 0;
void mode_nighttime(int periods) {
  int p;
  int level = 0;
  for (p = 0; p < periods; p++) {
    int i;
    for (i = 0; i < 64; i++) {
      int v = (read_sensor() - calib_offset) * calib_gain / 256;
      /* exponential smoothing in fixed point */
      level = (level * 7 + v) / 8;
      if (v > level * 2 && v > 300) night_events++;
    }
  }
}

int main() {
  int cmd;
  mode_init();
  mode_calibrate();
  while ((cmd = getchar()) != -1) {
    if (cmd == 'D') mode_daytime(40);
    else if (cmd == 'N') mode_nighttime(40);
    else if (cmd == 'C') mode_calibrate();
    else if (cmd == 'I') mode_init();
  }
  print_str("[done] peaks=");
  print_int(day_peaks);
  print_str(" events=");
  print_int(night_events);
  print_nl();
  return 0;
}
)";

}  // namespace

int main() {
  auto img = minicc::CompileMiniC(kFirmware, "sensor.mc");
  if (!img.ok()) {
    std::fprintf(stderr, "compile error: %s\n", img.error().ToString().c_str());
    return 1;
  }
  std::printf("firmware text: %s (all modes linked)\n",
              util::HumanBytes(img->text.size()).c_str());

  // A day in the life: day mode, night mode, recalibration, day again.
  const std::string schedule = "DDDDNNNNCDDDD";

  // Local memory sized well below the full firmware: one mode at a time.
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 1536;
  softcache::SoftCacheSystem system(*img, config);
  system.SetInput(schedule);
  const vm::RunResult result = system.Run();
  if (result.reason != vm::StopReason::kHalted) {
    std::fprintf(stderr, "fault: %s\n", result.fault_message.c_str());
    return 1;
  }
  std::printf("\n--- device console ---\n%s", system.OutputString().c_str());

  const auto& stats = system.stats();
  std::printf("\n--- softcache behaviour ---\n");
  std::printf("schedule:            %s (one mode active per phase)\n",
              schedule.c_str());
  std::printf("local code memory:   %u B (firmware is %zu B)\n",
              config.tcache_bytes, img->text.size());
  std::printf("blocks translated:   %llu (mode transitions re-page code)\n",
              (unsigned long long)stats.blocks_translated);
  std::printf("evictions:           %llu\n", (unsigned long long)stats.evictions);
  std::printf("instructions:        %llu; miss traps: %llu (%.4f%%)\n",
              (unsigned long long)result.instructions,
              (unsigned long long)stats.tcmiss_traps,
              100.0 * (double)stats.tcmiss_traps / (double)result.instructions);
  std::printf(
      "\nThe device ran firmware %.1fx larger than its code memory; within a\n"
      "mode the loop runs at full speed with no cache checks (Figure 2's\n"
      "'minimum memory = one mode' claim).\n",
      (double)img->text.size() / config.tcache_bytes);
  return 0;
}
