// Remote execution: drives the explicit MC/CC split the ARM prototype
// implements — a cell-phone-class client fetching its code (and, with the
// software D-cache, its data) from a tower-side server over a narrow link.
// Prints the full protocol-level accounting for both directions.
//
//   $ ./remote_execution [link_mbps]
#include <cstdio>
#include <cstdlib>

#include "dcache/dcache.h"
#include "minicc/compiler.h"
#include "softcache/system.h"
#include "util/stats.h"
#include "workloads/workloads.h"

using namespace sc;

int main(int argc, char** argv) {
  const uint64_t mbps = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;

  // The client runs the gzip workload: sensor-style "reduce the data set
  // and send only reduced amounts to higher systems" (Section 2.4).
  const auto* spec = workloads::FindWorkload("gzip");
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput("gzip", 1);

  std::printf("client: ARM-style CC, 6 KB code memory + software D-cache\n");
  std::printf("server: MC holding the %zu-byte program image\n", img.text.size());
  std::printf("link:   %llu Mbps, 2000-cycle latency\n\n",
              (unsigned long long)mbps);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kArm;
  config.tcache_bytes = 6 * 1024;
  config.channel.bits_per_second = mbps * 1'000'000;

  softcache::SoftCacheSystem system(img, config);
  system.SetInput(input);

  // Attach a software D-cache so data also lives behind the link, placed in
  // local memory just past the I-cache regions.
  dcache::DCacheConfig dconfig;
  dconfig.local_base = system.cc().local_limit();
  dconfig.dcache_blocks = 512;
  dconfig.block_bytes = 64;
  dcache::DataCache data_cache(system.machine(), system.mc(), system.channel(),
                               dconfig);
  data_cache.Attach();

  const vm::RunResult result = system.Run();
  if (result.reason != vm::StopReason::kHalted) {
    std::fprintf(stderr, "fault: %s\n", result.fault_message.c_str());
    return 1;
  }
  data_cache.FlushAll();

  // Show the tail of the console (the compressed head is binary).
  const std::string out = system.OutputString();
  const size_t stats_pos = out.find("== gzip stats ==");
  std::printf("--- client console (stats tail) ---\n%s\n",
              stats_pos == std::string::npos ? out.c_str()
                                             : out.c_str() + stats_pos);

  const auto& net = system.channel().stats();
  const auto& code = system.stats();
  const auto& data = data_cache.stats();
  std::printf("--- protocol accounting ---\n");
  std::printf("%-28s %12s\n", "", "count/bytes");
  std::printf("%-28s %12llu\n", "code chunks fetched",
              (unsigned long long)code.blocks_translated);
  std::printf("%-28s %12llu\n", "data block fetches",
              (unsigned long long)data.misses);
  std::printf("%-28s %12llu\n", "data writebacks",
              (unsigned long long)data.writebacks);
  std::printf("%-28s %12llu\n", "scache line spills",
              (unsigned long long)data.scache_spills);
  std::printf("%-28s %12llu\n", "messages client->server",
              (unsigned long long)net.messages_to_server);
  std::printf("%-28s %12llu\n", "messages server->client",
              (unsigned long long)net.messages_to_client);
  std::printf("%-28s %12s\n", "bytes client->server",
              util::HumanBytes(net.bytes_to_server).c_str());
  std::printf("%-28s %12s\n", "bytes server->client",
              util::HumanBytes(net.bytes_to_client).c_str());
  std::printf("%-28s %11.2f%%\n", "run time spent on the wire",
              100.0 * (double)net.total_cycles / (double)result.cycles);
  std::printf(
      "\nTry ./remote_execution 1 (slow link) or 100 (fast link) to see the\n"
      "paper's point that rewriting shifts work to the unconstrained server\n"
      "while the link cost stays a startup transient.\n");
  return 0;
}
