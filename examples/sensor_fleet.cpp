// Sensor fleet: many embedded clients served by ONE memory controller —
// the paper's Figure 1 ("distributed sensors ... continuously connected to
// more powerful servers"). Each client is a full Machine + CacheController
// with its own channel; the server side is a single shared MemoryController
// whose request counter shows the aggregate load. Clients run interleaved
// in round-robin time slices.
//
//   $ ./sensor_fleet [num_clients]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "softcache/cc.h"
#include "softcache/mc.h"
#include "util/stats.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

using namespace sc;

namespace {

struct Client {
  std::unique_ptr<vm::Machine> machine;
  std::unique_ptr<net::Channel> channel;
  std::unique_ptr<softcache::CacheController> cc;
  vm::RunResult last;
  bool done = false;
};

}  // namespace

int main(int argc, char** argv) {
  const int num_clients = argc > 1 ? std::atoi(argv[1]) : 4;
  if (num_clients < 1 || num_clients > 64) {
    std::fprintf(stderr, "usage: sensor_fleet [1..64 clients]\n");
    return 2;
  }

  // Every sensor runs the same firmware image (adpcm encoding its samples)
  // but on different input data — the fleet scenario exactly.
  const auto* spec = workloads::FindWorkload("adpcm_enc");
  const image::Image img = workloads::CompileWorkload(*spec);

  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 4 * 1024;

  // ONE server-side memory controller for the whole fleet.
  softcache::MemoryController mc(img, config.style, config.max_block_instrs,
                                 config.max_trace_blocks);

  std::vector<Client> clients(static_cast<size_t>(num_clients));
  for (int i = 0; i < num_clients; ++i) {
    Client& client = clients[static_cast<size_t>(i)];
    client.machine = std::make_unique<vm::Machine>();
    client.machine->LoadImage(img);
    client.machine->SetInput(
        workloads::MakeInput("adpcm_enc", 1, /*seed=*/100 + i));
    client.channel = std::make_unique<net::Channel>(config.channel);
    client.cc = std::make_unique<softcache::CacheController>(
        *client.machine, mc, *client.channel, config);
    client.cc->Attach();
  }

  std::printf("fleet: %d clients, one MC serving image of %s\n", num_clients,
              util::HumanBytes(img.text.size()).c_str());

  // Round-robin scheduling in 50k-instruction slices until all halt.
  int running = num_clients;
  uint64_t slices = 0;
  while (running > 0) {
    for (Client& client : clients) {
      if (client.done) continue;
      client.last = client.machine->Run(50'000);
      ++slices;
      if (client.last.reason != vm::StopReason::kInstrLimit) {
        client.done = true;
        --running;
      }
    }
  }

  std::printf("\n%-8s %10s %12s %10s %12s %10s\n", "client", "exit", "instrs",
              "chunks", "net bytes", "evicts");
  uint64_t total_bytes = 0;
  for (int i = 0; i < num_clients; ++i) {
    const Client& client = clients[static_cast<size_t>(i)];
    if (client.last.reason == vm::StopReason::kFault) {
      std::printf("sensor%-2d  FAULT: %s\n", i, client.last.fault_message.c_str());
      continue;
    }
    const auto& stats = client.cc->stats();
    const auto& net = client.channel->stats();
    total_bytes += net.total_bytes();
    std::printf("sensor%-2d %10d %12llu %10llu %12llu %10llu\n", i,
                client.last.exit_code,
                (unsigned long long)client.last.instructions,
                (unsigned long long)stats.blocks_translated,
                (unsigned long long)net.total_bytes(),
                (unsigned long long)stats.evictions);
  }
  std::printf("\nserver: %llu requests served across the fleet, %s moved\n",
              (unsigned long long)mc.requests_served(),
              util::HumanBytes(total_bytes).c_str());
  std::printf("scheduling: %llu time slices of 50k instructions\n",
              (unsigned long long)slices);
  std::printf(
      "\nEach sensor paged in only its working set; the server held the one\n"
      "authoritative image — the paper's 'server maintains the lower levels\n"
      "of the memory hierarchy' deployment.\n");
  return 0;
}
