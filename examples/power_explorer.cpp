// Power explorer: walks a workload across local-memory sizes and reports
// the Section 4 power story — where the working set lands, how many SRAM
// banks must stay powered, and the memory-system energy versus a hardware
// cache that burns a tag check on every access.
//
//   $ ./power_explorer [workload]
#include <cstdio>
#include <cstring>

#include "hwsim/cache.h"
#include "hwsim/power.h"
#include "softcache/system.h"
#include "util/stats.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

using namespace sc;

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "adpcm_enc";
  const auto* spec = workloads::FindWorkload(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; try:", name);
    for (const auto& w : workloads::AllWorkloads()) {
      std::fprintf(stderr, " %s", w.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  const image::Image img = workloads::CompileWorkload(*spec);
  const auto input = workloads::MakeInput(name, 4);

  // Hardware baseline for the energy comparison.
  hwsim::ICacheProbe probe(hwsim::CacheConfig{8192, 16, 1});
  vm::Machine native;
  native.LoadImage(img);
  native.SetInput(input);
  native.set_fetch_observer(&probe);
  const vm::RunResult native_run = native.Run();
  if (native_run.reason != vm::StopReason::kHalted) {
    std::fprintf(stderr, "native run failed: %s\n",
                 native_run.fault_message.c_str());
    return 1;
  }
  const hwsim::EnergyModel energy;
  const double hw_energy = hwsim::HardwareCacheEnergy(
      energy, probe.stats().accesses, probe.stats().misses, 16, 1);

  std::printf("workload: %s  (%llu instructions)\n", name,
              (unsigned long long)native_run.instructions);
  std::printf("hardware baseline: 8KB direct-mapped, tag check every fetch\n\n");
  std::printf("%-10s %10s %10s %8s %10s %12s\n", "local mem", "rel.time",
              "wss", "banks", "sw/hw E", "leak vs 8on");
  printf("----------------------------------------------------------------\n");

  const uint32_t kBankBytes = 2048;
  for (const uint32_t size : {2048u, 4096u, 8192u, 16384u, 32768u}) {
    softcache::SoftCacheConfig config;
    config.tcache_bytes = size;
    softcache::SoftCacheSystem system(img, config);
    system.SetInput(input);
    const vm::RunResult run = system.Run();
    if (run.reason != vm::StopReason::kHalted) {
      std::printf("%9.1fK %10s (working set exceeds memory: %s)\n",
                  size / 1024.0, "-", run.fault_message.c_str());
      continue;
    }
    const auto& stats = system.stats();
    const uint64_t wss = stats.tcache_bytes_used_peak;
    const uint32_t banks_total = 16;
    const uint32_t banks = static_cast<uint32_t>(
        std::min<uint64_t>(banks_total, (wss + kBankBytes - 1) / kBankBytes));
    const uint64_t extra =
        run.instructions - native_run.instructions;
    const double sw_energy = hwsim::SoftCacheEnergy(
        energy, native_run.instructions, extra, stats.blocks_translated,
        stats.words_installed, 60);
    const double leak_on = hwsim::BankLeakEnergy(energy, run.cycles, banks, banks_total);
    const double leak_all =
        hwsim::BankLeakEnergy(energy, run.cycles, banks_total, banks_total);
    std::printf("%9.1fK %10.2f %9s %8u %10.3f %11.1f%%\n", size / 1024.0,
                (double)run.cycles / (double)native_run.cycles,
                util::HumanBytes(wss).c_str(), banks, sw_energy / hw_energy,
                100.0 * leak_on / leak_all);
  }
  std::printf(
      "\nReading: rel.time near 1 with sw/hw E below 1 = the software cache\n"
      "runs near full speed while skipping every tag check; the banks\n"
      "column is the Section 4 power-down opportunity (only the working\n"
      "set's banks stay awake).\n");
  return 0;
}
