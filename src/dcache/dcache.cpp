#include "dcache/dcache.h"

#include <algorithm>

#include "image/layout.h"
#include "softcache/protocol.h"
#include "util/check.h"

namespace sc::dcache {

using softcache::MsgType;
using softcache::Reply;
using softcache::Request;

namespace {

bool IsPow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

DataCache::DataCache(vm::Machine& machine, softcache::MemoryController& mc,
                     net::Channel& channel, const DCacheConfig& config)
    : machine_(machine),
      mc_(mc),
      config_(config),
      session_(softcache::MakeMcTransport(mc, channel, config.fault),
               config.retry, &stats_.net, &stats_.session,
               MsgType::kDataWriteback, /*first_seq=*/1000,
               config.client_id) {
  SC_CHECK(IsPow2(config_.block_bytes));
  SC_CHECK_GE(config_.block_bytes, 4u);
  SC_CHECK(IsPow2(config_.scache_bytes));
  SC_CHECK(IsPow2(config_.scache_line_bytes));
  SC_CHECK_EQ(config_.scache_bytes % config_.scache_line_bytes, 0u);
  SC_CHECK_GT(config_.dcache_blocks, 1u);

  data_lo_ = mc_.DataBase();
  stack_lo_ = image::kStackTop & ~0xfffffu;  // 1 MB stack window

  const uint32_t base =
      config_.local_base != 0 ? config_.local_base : image::kLocalBase;
  dcache_base_ = base;
  scache_base_ = dcache_base_ + config_.dcache_blocks * config_.block_bytes;
  pinned_base_ = scache_base_ + config_.scache_bytes;

  slot_used_.resize(config_.dcache_blocks, false);
  scache_line_tag_.resize(config_.scache_bytes / config_.scache_line_bytes,
                          UINT32_MAX);
  scache_line_dirty_.resize(scache_line_tag_.size(), false);

  // Identify pinned scalar globals through the symbol table (the stand-in
  // for the rewriter's constant-address analysis).
  if (config_.pin_scalar_globals) {
    uint32_t offset = 0;
    for (const image::Symbol& sym : mc_.server().image().symbols) {
      if (sym.kind == image::SymbolKind::kObject && sym.size == 4 &&
          sym.addr % 4 == 0) {
        pinned_offsets_[sym.addr] = offset;
        pinned_touched_[sym.addr] = false;
        offset += 4;
      }
    }
    pinned_bytes_ = offset;
  }
  SC_CHECK_LE(pinned_base_ + pinned_bytes_, machine_.mem_size());
}

void DataCache::Attach() {
  machine_.SetDataHook(this, data_lo_, image::kStackTop + 16);
}

uint32_t DataCache::GuaranteedLatencyCycles() const {
  // Worst on-chip case: predictor miss, full binary search depth.
  uint32_t depth = 1;
  while ((1u << depth) < config_.dcache_blocks) ++depth;
  return config_.slow_hit_base_cycles + depth * config_.slow_hit_step_cycles;
}

// ---------------------------------------------------------------------------
// Server transfer helpers
// ---------------------------------------------------------------------------

void DataCache::FailRun(const std::string& what) {
  failed_ = true;
  machine_.RaiseFault(what);
}

Reply DataCache::Call(Request request) {
  if (failed_) {
    // The run is already stopping; don't burn more retry attempts.
    Reply error;
    error.type = MsgType::kError;
    return error;
  }
  uint64_t link_cycles = 0;
  auto reply = session_.Call(std::move(request), &link_cycles);
  Charge(link_cycles);
  if (!reply.ok()) {
    FailRun("dcache: " + reply.error().message);
    Reply error;
    error.type = MsgType::kError;
    return error;
  }
  return std::move(*reply);
}

void DataCache::FetchBlock(uint32_t tag, uint32_t slot) {
  Request request;
  request.type = MsgType::kDataRequest;
  request.addr = tag * config_.block_bytes;
  request.length = config_.block_bytes;
  const Reply reply = Call(request);
  if (reply.type != MsgType::kDataReply ||
      reply.payload.size() != config_.block_bytes) {
    FailRun("dcache: data fetch failed");
    return;
  }
  machine_.WriteBlock(dcache_base_ + slot * config_.block_bytes,
                      reply.payload.data(), config_.block_bytes);
}

void DataCache::WritebackSlot(uint32_t slot, uint32_t tag) {
  Request request;
  request.type = MsgType::kDataWriteback;
  request.addr = tag * config_.block_bytes;
  request.length = config_.block_bytes;
  request.payload.resize(config_.block_bytes);
  machine_.ReadBlock(dcache_base_ + slot * config_.block_bytes,
                     request.payload.data(), config_.block_bytes);
  const Reply reply = Call(request);
  if (reply.type != MsgType::kWritebackAck) {
    FailRun("dcache: writeback rejected by server");
    return;
  }
  ++stats_.writebacks;
}

// ---------------------------------------------------------------------------
// dcache path
// ---------------------------------------------------------------------------

int DataCache::FindBlock(uint32_t tag) const {
  int lo = 0;
  int hi = static_cast<int>(sorted_.size()) - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (sorted_[mid].tag == tag) return mid;
    if (sorted_[mid].tag < tag) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

uint32_t DataCache::TranslateDcache(uint32_t vaddr, bool is_store) {
  const uint32_t tag = vaddr / config_.block_bytes;
  const uint32_t offset = vaddr % config_.block_bytes;
  const uint32_t site = machine_.pc();

  // 1. Predicted probe (the Figure 10 bottom sequence).
  int found = -1;
  SitePrediction& pred = predictions_[site];
  if (config_.prediction != Prediction::kNone && !sorted_.empty()) {
    ++stats_.prediction_probes;
    int guess = -1;
    switch (config_.prediction) {
      case Prediction::kLastIndex:
        guess = pred.last_index;
        break;
      case Prediction::kStride:
        guess = pred.last_index >= 0 ? pred.last_index + pred.stride : -1;
        break;
      case Prediction::kSecondChance:
        guess = pred.last_index;
        break;
      case Prediction::kNone:
        break;
    }
    Charge(config_.fast_hit_cycles);
    if (guess >= 0 && guess < static_cast<int>(sorted_.size()) &&
        sorted_[guess].tag == tag) {
      found = guess;
      ++stats_.prediction_hits;
    } else if (config_.prediction == Prediction::kSecondChance && guess >= 0 &&
               guess + 1 < static_cast<int>(sorted_.size()) &&
               sorted_[guess + 1].tag == tag) {
      Charge(4);  // second probe
      found = guess + 1;
      ++stats_.prediction_hits;
    }
  }

  if (found >= 0) {
    ++stats_.fast_hits;
  } else {
    // 2. Binary search: a slow hit if present.
    uint32_t depth = 1;
    while ((1u << depth) < std::max<uint32_t>(2, static_cast<uint32_t>(sorted_.size()))) {
      ++depth;
    }
    Charge(config_.slow_hit_base_cycles + depth * config_.slow_hit_step_cycles);
    found = FindBlock(tag);
    if (found >= 0) {
      ++stats_.slow_hits;
    } else {
      // 3. Miss: allocate a slot (FIFO replacement), fetch from the server.
      ++stats_.misses;
      Charge(config_.miss_trap_cycles);
      uint32_t slot;
      if (fifo_slots_.size() < config_.dcache_blocks) {
        slot = static_cast<uint32_t>(fifo_slots_.size());
      } else {
        slot = fifo_slots_.front();
        fifo_slots_.erase(fifo_slots_.begin());
        // Evict the sorted entry that owns this slot.
        const auto victim = std::find_if(
            sorted_.begin(), sorted_.end(),
            [slot](const Block& b) { return b.slot == slot; });
        SC_CHECK(victim != sorted_.end());
        if (victim->dirty) WritebackSlot(slot, victim->tag);
        sorted_.erase(victim);
      }
      fifo_slots_.push_back(slot);
      FetchBlock(tag, slot);
      // Sorted insertion (the array reorganization the paper charges).
      const auto pos = std::lower_bound(
          sorted_.begin(), sorted_.end(), tag,
          [](const Block& b, uint32_t t) { return b.tag < t; });
      const auto moved = static_cast<uint64_t>(sorted_.end() - pos);
      Charge(moved * config_.reorg_cycles_per_word);
      found = static_cast<int>(pos - sorted_.begin());
      sorted_.insert(pos, Block{tag, slot, false});
    }
    pred.stride = pred.last_index >= 0 ? found - pred.last_index : 0;
    pred.last_index = found;
  }

  Block& block = sorted_[found];
  if (is_store) block.dirty = true;
  return dcache_base_ + block.slot * config_.block_bytes + offset;
}

// ---------------------------------------------------------------------------
// scache path
// ---------------------------------------------------------------------------

uint32_t DataCache::TranslateScache(uint32_t vaddr, bool is_store) {
  ++stats_.scache_accesses;
  const uint32_t line_tag = vaddr / config_.scache_line_bytes;
  const uint32_t line_slot = line_tag % static_cast<uint32_t>(scache_line_tag_.size());
  if (scache_line_tag_[line_slot] != line_tag) {
    // Presence event: the circular buffer wraps onto a different frame line.
    ++stats_.scache_line_switches;
    Charge(config_.scache_line_switch_cycles);
    const uint32_t old_tag = scache_line_tag_[line_slot];
    const uint32_t slot_addr =
        scache_base_ + line_slot * config_.scache_line_bytes;
    if (old_tag != UINT32_MAX && scache_line_dirty_[line_slot]) {
      // Spill the displaced line to the server.
      ++stats_.scache_spills;
      Request request;
      request.type = MsgType::kDataWriteback;
      request.addr = old_tag * config_.scache_line_bytes;
      request.length = config_.scache_line_bytes;
      request.payload.resize(config_.scache_line_bytes);
      machine_.ReadBlock(slot_addr, request.payload.data(),
                         config_.scache_line_bytes);
      const Reply spill_reply = Call(request);
      if (spill_reply.type != MsgType::kWritebackAck) {
        FailRun("dcache: scache spill rejected by server");
        return scache_base_ + (vaddr % config_.scache_bytes);
      }
    }
    // Fill the line from the server (fresh stack lines read back zeros).
    ++stats_.scache_fills;
    Request request;
    request.type = MsgType::kDataRequest;
    request.addr = line_tag * config_.scache_line_bytes;
    request.length = config_.scache_line_bytes;
    const Reply reply = Call(request);
    if (reply.type != MsgType::kDataReply ||
        reply.payload.size() != config_.scache_line_bytes) {
      FailRun("dcache: scache fill failed");
      return scache_base_ + (vaddr % config_.scache_bytes);
    }
    machine_.WriteBlock(slot_addr, reply.payload.data(),
                        config_.scache_line_bytes);
    scache_line_tag_[line_slot] = line_tag;
    scache_line_dirty_[line_slot] = false;
  }
  if (is_store) scache_line_dirty_[line_slot] = true;
  return scache_base_ + (vaddr % config_.scache_bytes);
}

// ---------------------------------------------------------------------------
// pinned scalars
// ---------------------------------------------------------------------------

uint32_t DataCache::TranslatePinned(uint32_t vaddr, bool is_store, bool* handled) {
  *handled = false;
  const uint32_t base = vaddr & ~3u;
  const auto it = pinned_offsets_.find(base);
  if (it == pinned_offsets_.end()) return 0;
  *handled = true;
  if (!pinned_touched_[base]) {
    // First touch: fetch the scalar from the server and pin it.
    pinned_touched_[base] = true;
    Request request;
    request.type = MsgType::kDataRequest;
    request.addr = base;
    request.length = 4;
    const Reply reply = Call(request);
    if (reply.type != MsgType::kDataReply || reply.payload.size() != 4) {
      FailRun("dcache: pinned scalar fetch failed");
    } else {
      machine_.WriteBlock(pinned_base_ + it->second, reply.payload.data(), 4);
    }
  }
  (void)is_store;  // pinned scalars write back only at FlushAll
  ++stats_.pinned_hits;
  return pinned_base_ + it->second + (vaddr & 3u);
}

// ---------------------------------------------------------------------------
// Hook entry and flush
// ---------------------------------------------------------------------------

uint32_t DataCache::Translate(vm::Machine& m, uint32_t vaddr, uint32_t size,
                              bool is_store) {
  (void)m;
  (void)size;
  CommitPendingWriteThrough();
  ++stats_.accesses;
  uint32_t paddr;
  if (vaddr >= stack_lo_) {
    paddr = TranslateScache(vaddr, is_store);
  } else {
    bool pinned = false;
    paddr = TranslatePinned(vaddr, is_store, &pinned);
    if (!pinned) {
      paddr = TranslateDcache(vaddr, is_store);
      if (is_store && config_.write_through) {
        // Push the store straight to the server (the block copy was already
        // updated by the VM after this translation returns; we forward the
        // value from the about-to-be-written location's current block after
        // the fact is impossible here, so write-through sends the whole
        // block — simple and correct, like a write-through line buffer).
        const uint32_t tag = vaddr / config_.block_bytes;
        const int idx = FindBlock(tag);
        SC_CHECK_GE(idx, 0);
        ++stats_.write_throughs;
        pending_wt_slot_ = sorted_[idx].slot;
        pending_wt_tag_ = tag;
      }
    }
  }
  // Bank-conflict accounting (novel capability 3): would this access and
  // the previous one serialize on banked SRAM?
  if (config_.banks > 1) {
    const uint32_t bank = (paddr / 4) % config_.banks;
    if (has_last_bank_ && bank == last_bank_) ++stats_.bank_conflicts;
    last_bank_ = bank;
    has_last_bank_ = true;
  }
  return paddr;
}

void DataCache::CommitPendingWriteThrough() {
  if (pending_wt_slot_ == UINT32_MAX) return;
  WritebackSlot(pending_wt_slot_, pending_wt_tag_);
  const int idx = FindBlock(pending_wt_tag_);
  if (idx >= 0) sorted_[idx].dirty = false;
  pending_wt_slot_ = UINT32_MAX;
}

void DataCache::FlushAll() {
  CommitPendingWriteThrough();
  // Blocks first, pinned scalars last: a block may hold a stale shadow of a
  // pinned address, and the pinned value must win at the server.
  for (const Block& block : sorted_) {
    if (block.dirty) WritebackSlot(block.slot, block.tag);
  }
  for (Block& block : sorted_) block.dirty = false;
  for (uint32_t line = 0; line < scache_line_tag_.size(); ++line) {
    if (scache_line_tag_[line] != UINT32_MAX && scache_line_dirty_[line]) {
      Request request;
      request.type = MsgType::kDataWriteback;
      request.addr = scache_line_tag_[line] * config_.scache_line_bytes;
      request.length = config_.scache_line_bytes;
      request.payload.resize(config_.scache_line_bytes);
      machine_.ReadBlock(scache_base_ + line * config_.scache_line_bytes,
                         request.payload.data(), config_.scache_line_bytes);
      if (Call(request).type != MsgType::kWritebackAck) {
        FailRun("dcache: scache flush rejected by server");
        return;
      }
      scache_line_dirty_[line] = false;
    }
  }
  for (const auto& [base, offset] : pinned_offsets_) {
    if (!pinned_touched_[base]) continue;
    Request request;
    request.type = MsgType::kDataWriteback;
    request.addr = base;
    request.length = 4;
    request.payload.resize(4);
    machine_.ReadBlock(pinned_base_ + offset, request.payload.data(), 4);
    if (Call(request).type != MsgType::kWritebackAck) {
      FailRun("dcache: pinned flush rejected by server");
      return;
    }
  }
  if (failed_) return;
  // End-of-run barrier: if a crash fired after our last RPC, nobody would
  // ever replay the journal; confirm the epoch and replay if needed.
  uint64_t link_cycles = 0;
  auto status = session_.Synchronize(&link_cycles);
  Charge(link_cycles);
  if (!status.ok()) FailRun("dcache: " + status.error().message);
}

}  // namespace sc::dcache
