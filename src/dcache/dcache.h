// Software data cache — an implementation of the paper's Section 3 design.
//
// The paper only sketches this design ("a paper design for a software data
// cache"); this module realizes it on the VM's DataHook interface:
//
//   * scache — the stack cache: a circular buffer over the stack address
//     range. Because stack use is LIFO and contiguous, presence checks hoist
//     to frame entry/exit; per-access tag checks are eliminated. Capacity
//     overflow (deep recursion) spills frame lines to the server and
//     re-fetches them on return — the modeled "presence check" events.
//   * dcache — the general-purpose cache: fully associative, fixed-size
//     blocks kept in sorted tag order. Each access first probes a predicted
//     index (per load/store site, keyed by PC); a tag match there is a fast
//     hit. On predictor miss, a binary search over the sorted tags finds the
//     block — a "slow hit", the latency the design can guarantee without
//     consulting the server. A true miss fetches the block from the MC over
//     the channel (write-back, FIFO replacement).
//   * pinned scalars — accesses to 4-byte global objects (identified through
//     the symbol table, standing in for the rewriter's constant-address
//     specialization of Figure 10 top) are redirected to a permanently
//     resident pinned region: zero tag-check cost after the first touch.
//
// Cycle costs follow the instruction sequences of Figure 10: a fast hit
// executes the 9-instruction predicted probe; a slow hit adds a binary
// search; a pinned access costs nothing beyond the original load/store.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/image.h"
#include "net/channel.h"
#include "net/transport.h"
#include "softcache/mc.h"
#include "softcache/reliable.h"
#include "softcache/session.h"
#include "softcache/stats.h"
#include "vm/machine.h"

namespace sc::dcache {

enum class Prediction : uint8_t {
  kNone,          // always binary-search (every hit is a slow hit)
  kLastIndex,     // per-site: predict the index that hit last time
  kStride,        // per-site: predict last index + observed stride
  kSecondChance,  // last index, then index+1, then binary search
};

struct DCacheConfig {
  uint32_t dcache_blocks = 64;
  uint32_t block_bytes = 32;        // power of two
  uint32_t scache_bytes = 4096;     // power of two; circular stack buffer
  uint32_t scache_line_bytes = 64;  // spill/fill granularity
  bool pin_scalar_globals = true;
  Prediction prediction = Prediction::kLastIndex;
  // Write policy: write-back (default) holds dirty blocks locally until
  // eviction/flush; write-through pushes every store to the server
  // immediately (simpler invalidation, more traffic).
  bool write_through = false;
  // Local SRAM banking for the parallel-access analysis (the paper's novel
  // capability 3: "execute multiple load/store operations in parallel").
  uint32_t banks = 4;

  // Cycle costs of the rewritten access sequences (Figure 10).
  uint32_t fast_hit_cycles = 8;      // predicted probe sequence (minus the load)
  uint32_t slow_hit_step_cycles = 6; // per binary-search iteration
  uint32_t slow_hit_base_cycles = 10;
  uint32_t miss_trap_cycles = 40;    // handler entry + replacement bookkeeping
  uint32_t reorg_cycles_per_word = 1;  // keeping the array sorted
  uint32_t scache_line_switch_cycles = 6;  // presence check at frame events

  // Base of the local-memory arrays (dcache blocks, then scache buffer,
  // then the pinned region). Must not overlap the I-cache regions when both
  // are in use.
  uint32_t local_base = 0;  // 0 = place at image::kLocalBase

  // Link fault injection (all zeros = reliable loopback transport) and the
  // retry/backoff policy that recovers from it.
  net::FaultConfig fault;
  softcache::RetryConfig retry;
  // MC session this client owns (0 = seed-identical wire format).
  uint32_t client_id = 0;
};

struct DCacheStats {
  uint64_t accesses = 0;
  uint64_t pinned_hits = 0;
  uint64_t fast_hits = 0;
  uint64_t slow_hits = 0;
  uint64_t misses = 0;
  uint64_t writebacks = 0;
  uint64_t scache_accesses = 0;
  uint64_t scache_line_switches = 0;
  uint64_t scache_spills = 0;
  uint64_t scache_fills = 0;
  uint64_t prediction_hits = 0;    // predictor produced the right index
  uint64_t prediction_probes = 0;
  uint64_t write_throughs = 0;     // stores pushed straight to the server
  // Bank analysis: consecutive accesses hitting the same local SRAM bank
  // (would serialize on banked hardware; distinct banks could go parallel).
  uint64_t bank_conflicts = 0;
  uint64_t cycles = 0;             // total extra cycles charged
  // MC link reliability counters (retries/timeouts under fault injection).
  softcache::LinkStats net;
  // Crash-recovery session counters (epoch changes, journal replays).
  softcache::SessionStats session;

  double fast_hit_rate() const {
    const uint64_t cached = fast_hits + slow_hits + misses;
    return cached == 0 ? 0.0 : static_cast<double>(fast_hits) / static_cast<double>(cached);
  }
  double miss_rate() const {
    const uint64_t cached = fast_hits + slow_hits + misses;
    return cached == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(cached);
  }
};

class DataCache : public vm::DataHook {
 public:
  // `mc` provides the authoritative memory (fetch/writeback protocol);
  // `channel` prices the transfers.
  DataCache(vm::Machine& machine, softcache::MemoryController& mc,
            net::Channel& channel, const DCacheConfig& config);

  // Installs this cache as the machine's data hook covering all of data,
  // heap and stack. Call once before running.
  void Attach();

  // vm::DataHook
  uint32_t Translate(vm::Machine& m, uint32_t vaddr, uint32_t size,
                     bool is_store) override;

  // Writes every dirty block (and dirty scache lines) back to the MC, then
  // synchronizes the session so journaled writebacks survive a crash nobody
  // RPC'd after.
  void FlushAll();

  // True once any server RPC failed terminally (link give-up or recovery
  // exhaustion). A fault has been raised on the machine; srun exits nonzero.
  bool failed() const { return failed_; }

  // The session's transport (crash-schedule wiring, tests).
  net::Transport& transport() { return session_.transport(); }

  const DCacheStats& stats() const { return stats_; }
  // Worst-case latency of an on-chip access: the slow-hit bound the paper
  // calls the "guaranteed memory latency".
  uint32_t GuaranteedLatencyCycles() const;

  uint32_t local_limit() const { return pinned_base_ + pinned_bytes_; }

 private:
  struct Block {
    uint32_t tag = 0;      // vaddr / block_bytes
    uint32_t slot = 0;     // which storage slot in local memory holds it
    bool dirty = false;
  };

  uint32_t TranslateDcache(uint32_t vaddr, bool is_store);
  // Write-through stores are committed to the server on the *next* hook
  // entry (the VM performs the store after Translate returns) and at flush.
  void CommitPendingWriteThrough();
  uint32_t TranslateScache(uint32_t vaddr, bool is_store);
  uint32_t TranslatePinned(uint32_t vaddr, bool is_store, bool* handled);
  // Binary search over sorted_; returns index or -1.
  int FindBlock(uint32_t tag) const;
  void FetchBlock(uint32_t tag, uint32_t slot);
  void WritebackSlot(uint32_t slot, uint32_t tag);
  // Runs the RPC through the session (which assigns seqs and handles crash
  // recovery), charges its cycles. A terminal failure (link give-up,
  // recovery exhaustion) raises a clean fault and returns a kError reply —
  // a data cache cannot run without its backing store, but it degrades to a
  // diagnostic instead of aborting the process.
  softcache::Reply Call(softcache::Request request);
  // Marks the run failed and raises a machine fault (first fault wins).
  void FailRun(const std::string& what);
  void Charge(uint64_t cycles) {
    machine_.Charge(cycles);
    stats_.cycles += cycles;
  }

  vm::Machine& machine_;
  softcache::MemoryController& mc_;
  DCacheConfig config_;
  DCacheStats stats_;
  // Declared after stats_: the session records into stats_.net/.session.
  softcache::Session session_;
  bool failed_ = false;

  uint32_t data_lo_ = 0;   // cached data range: [data_lo_, stack_lo_)
  uint32_t stack_lo_ = 0;  // stack range: [stack_lo_, kStackTop]

  uint32_t dcache_base_ = 0;   // local storage for dcache blocks
  uint32_t scache_base_ = 0;   // local circular stack buffer
  uint32_t pinned_base_ = 0;   // local pinned-scalar region
  uint32_t pinned_bytes_ = 0;

  // Sorted by tag (the paper's sorted block array).
  std::vector<Block> sorted_;
  std::vector<uint32_t> fifo_slots_;  // slot replacement order
  std::vector<bool> slot_used_;

  // Per-site predictions, keyed by the PC of the load/store.
  struct SitePrediction {
    int32_t last_index = -1;
    int32_t stride = 0;
  };
  std::unordered_map<uint32_t, SitePrediction> predictions_;

  // scache line bookkeeping: tag per line slot (vaddr / line_bytes), or ~0.
  std::vector<uint32_t> scache_line_tag_;
  std::vector<bool> scache_line_dirty_;

  // Pinned scalar globals: vaddr -> offset in pinned region (~0 = untouched).
  std::unordered_map<uint32_t, uint32_t> pinned_offsets_;
  std::unordered_map<uint32_t, bool> pinned_touched_;

  // Deferred write-through state.
  uint32_t pending_wt_slot_ = UINT32_MAX;
  uint32_t pending_wt_tag_ = 0;
  // Bank-conflict tracking.
  uint32_t last_bank_ = 0;
  bool has_last_bank_ = false;
};

}  // namespace sc::dcache
