// Function-level execution profiler (the repo's stand-in for gprof).
//
// Attaches to the VM as a FetchObserver and attributes every instruction
// fetch to the function whose symbol range contains it. Provides:
//   * per-function sample counts (Figure 9's ">= 90% of run time" hot set);
//   * the dynamic text footprint — bytes of *distinct* instructions actually
//     fetched (Table 1's "Dynamic .text" column);
//   * the hot-code footprint: total code size of the smallest set of
//     functions covering a target fraction of execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.h"
#include "vm/machine.h"

namespace sc::profile {

struct FunctionProfile {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;       // bytes of code
  uint64_t samples = 0;    // instruction fetches attributed
};

class Profiler : public vm::FetchObserver {
 public:
  explicit Profiler(const image::Image& image);

  void OnFetch(uint32_t pc) override;

  // Per-function profile, sorted by descending sample count.
  std::vector<FunctionProfile> Report() const;

  // Bytes of distinct instructions fetched (dynamic .text, Table 1).
  uint64_t DynamicTextBytes() const;
  // Bytes of the full text segment (static .text, Table 1).
  uint64_t StaticTextBytes() const { return text_size_; }

  // Smallest set of functions (greedy by sample count) covering at least
  // `fraction` of all samples; returns their total code size in bytes.
  // This is the paper's gprof methodology for sizing CC memory (Figure 9).
  uint64_t HotCodeBytes(double fraction) const;
  // The names of that hot set (diagnostics).
  std::vector<std::string> HotFunctions(double fraction) const;

  uint64_t total_samples() const { return total_samples_; }

 private:
  struct Range {
    uint32_t start;
    uint32_t end;
    uint32_t index;  // into counts_/functions metadata
  };
  const Range* FindRange(uint32_t pc) const;
  std::vector<uint32_t> HotIndices(double fraction) const;

  uint32_t text_base_;
  uint32_t text_size_;
  std::vector<Range> ranges_;          // sorted by start
  std::vector<FunctionProfile> funcs_;
  std::vector<uint64_t> counts_;
  std::vector<bool> touched_;          // per text word
  uint64_t total_samples_ = 0;
  uint64_t unattributed_ = 0;
  mutable const Range* last_hit_ = nullptr;
};

}  // namespace sc::profile
