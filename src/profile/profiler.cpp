#include "profile/profiler.h"

#include <algorithm>

#include "util/check.h"

namespace sc::profile {

Profiler::Profiler(const image::Image& image)
    : text_base_(image.text_base),
      text_size_(static_cast<uint32_t>(image.text.size())) {
  uint32_t index = 0;
  for (const image::Symbol* sym : image.Functions()) {
    ranges_.push_back(Range{sym->addr, sym->addr + sym->size, index});
    FunctionProfile fp;
    fp.name = sym->name;
    fp.addr = sym->addr;
    fp.size = sym->size;
    funcs_.push_back(std::move(fp));
    ++index;
  }
  std::sort(ranges_.begin(), ranges_.end(),
            [](const Range& a, const Range& b) { return a.start < b.start; });
  counts_.resize(funcs_.size(), 0);
  touched_.resize(text_size_ / 4, false);
}

const Profiler::Range* Profiler::FindRange(uint32_t pc) const {
  if (last_hit_ != nullptr && pc >= last_hit_->start && pc < last_hit_->end) {
    return last_hit_;
  }
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), pc,
      [](uint32_t value, const Range& range) { return value < range.start; });
  if (it == ranges_.begin()) return nullptr;
  --it;
  if (pc >= it->start && pc < it->end) {
    last_hit_ = &*it;
    return last_hit_;
  }
  return nullptr;
}

void Profiler::OnFetch(uint32_t pc) {
  ++total_samples_;
  if (pc >= text_base_ && pc < text_base_ + text_size_) {
    touched_[(pc - text_base_) / 4] = true;
  }
  const Range* range = FindRange(pc);
  if (range == nullptr) {
    ++unattributed_;
    return;
  }
  ++counts_[range->index];
}

std::vector<FunctionProfile> Profiler::Report() const {
  std::vector<FunctionProfile> out = funcs_;
  for (size_t i = 0; i < out.size(); ++i) out[i].samples = counts_[i];
  std::sort(out.begin(), out.end(), [](const FunctionProfile& a,
                                       const FunctionProfile& b) {
    if (a.samples != b.samples) return a.samples > b.samples;
    return a.addr < b.addr;
  });
  return out;
}

uint64_t Profiler::DynamicTextBytes() const {
  uint64_t words = 0;
  for (bool touched : touched_) words += touched ? 1 : 0;
  return words * 4;
}

std::vector<uint32_t> Profiler::HotIndices(double fraction) const {
  SC_CHECK_GT(fraction, 0.0);
  SC_CHECK_LE(fraction, 1.0);
  std::vector<uint32_t> order(funcs_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    if (counts_[a] != counts_[b]) return counts_[a] > counts_[b];
    return funcs_[a].addr < funcs_[b].addr;
  });
  const double target = fraction * static_cast<double>(total_samples_);
  std::vector<uint32_t> hot;
  uint64_t covered = 0;
  for (uint32_t i : order) {
    if (static_cast<double>(covered) >= target) break;
    if (counts_[i] == 0) break;
    hot.push_back(i);
    covered += counts_[i];
  }
  return hot;
}

uint64_t Profiler::HotCodeBytes(double fraction) const {
  uint64_t bytes = 0;
  for (uint32_t i : HotIndices(fraction)) bytes += funcs_[i].size;
  return bytes;
}

std::vector<std::string> Profiler::HotFunctions(double fraction) const {
  std::vector<std::string> names;
  for (uint32_t i : HotIndices(fraction)) names.push_back(funcs_[i].name);
  return names;
}

}  // namespace sc::profile
