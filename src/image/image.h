// Program image: text + data segments, entry point and a symbol table.
//
// This is the artifact the assembler and MiniC compiler produce and the unit
// the memory controller (server side) is "given as input" — the analogue of
// the gcc-generated ELF image in the paper's ARM prototype. A compact binary
// serialization is provided so images round-trip through files or the
// simulated network.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sc::image {

enum class SymbolKind : uint8_t { kFunction = 0, kObject = 1 };

struct Symbol {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;
  SymbolKind kind = SymbolKind::kFunction;
};

class Image {
 public:
  uint32_t entry = 0;

  uint32_t text_base = 0;
  std::vector<uint8_t> text;

  uint32_t data_base = 0;
  std::vector<uint8_t> data;

  uint32_t bss_base = 0;
  uint32_t bss_size = 0;

  std::vector<Symbol> symbols;

  uint32_t text_end() const { return text_base + static_cast<uint32_t>(text.size()); }
  uint32_t data_end() const { return data_base + static_cast<uint32_t>(data.size()); }
  uint32_t bss_end() const { return bss_base + bss_size; }
  // First address past all static storage; the heap starts here.
  uint32_t heap_base() const;

  bool ContainsText(uint32_t addr) const {
    return addr >= text_base && addr < text_end();
  }

  // Reads the instruction word at `addr` (must lie in text, aligned).
  uint32_t TextWord(uint32_t addr) const;

  const Symbol* FindSymbol(std::string_view name) const;
  // The function symbol whose [addr, addr+size) range contains `addr`.
  const Symbol* FunctionAt(uint32_t addr) const;
  // All function symbols, sorted by address.
  std::vector<const Symbol*> Functions() const;

  // Binary serialization (magic "SRKI", version 1).
  std::vector<uint8_t> Serialize() const;
  static util::Result<Image> Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace sc::image
