// The flat physical memory map used by every component of the simulation.
//
//   0x0000_0000 .. 0x0000_0fff   null guard (any access faults)
//   0x0001_0000 .. text          program text as linked (the "server copy";
//                                in softcache mode the client never fetches
//                                from here)
//   0x0010_0000 .. data/bss      initialized globals then zeroed bss
//   heap                         grows up from the end of bss (SYS_BRK)
//   0x00ff_fff0                  initial stack pointer, stack grows down
//   0x0100_0000 .. local         the embedded client's on-chip local memory;
//                                the tcache, stub table, scache and dcache
//                                arrays live here in softcache mode
#pragma once

#include <cstdint>

namespace sc::image {

inline constexpr uint32_t kNullGuardEnd = 0x0000'1000;
inline constexpr uint32_t kTextBase = 0x0001'0000;
inline constexpr uint32_t kDataBase = 0x0010'0000;
inline constexpr uint32_t kStackTop = 0x00ff'fff0;
inline constexpr uint32_t kLocalBase = 0x0100'0000;
inline constexpr uint32_t kLocalLimit = 0x0110'0000;  // up to 1 MB of local memory
inline constexpr uint32_t kDefaultMemBytes = 0x0120'0000;

}  // namespace sc::image
