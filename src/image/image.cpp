#include "image/image.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace sc::image {
namespace {

constexpr uint32_t kMagic = 0x534b'4931;  // "SKI1"

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Cursor over serialized bytes with bounds checking.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool ReadU32(uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = static_cast<uint32_t>(bytes_[pos_]) |
        static_cast<uint32_t>(bytes_[pos_ + 1]) << 8 |
        static_cast<uint32_t>(bytes_[pos_ + 2]) << 16 |
        static_cast<uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }

  bool ReadBytes(std::vector<uint8_t>& out) {
    uint32_t n = 0;
    if (!ReadU32(n) || pos_ + n > bytes_.size()) return false;
    out.assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
               bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool ReadString(std::string& out) {
    uint32_t n = 0;
    if (!ReadU32(n) || pos_ + n > bytes_.size()) return false;
    out.assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
               bytes_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint32_t Image::heap_base() const {
  const uint32_t end = std::max(data_end(), bss_end());
  return (end + 15u) & ~15u;
}

uint32_t Image::TextWord(uint32_t addr) const {
  SC_CHECK(ContainsText(addr)) << "addr 0x" << std::hex << addr;
  SC_CHECK_EQ(addr % 4, 0u);
  const size_t off = addr - text_base;
  uint32_t word = 0;
  std::memcpy(&word, text.data() + off, 4);
  return word;
}

const Symbol* Image::FindSymbol(std::string_view name) const {
  for (const Symbol& sym : symbols) {
    if (sym.name == name) return &sym;
  }
  return nullptr;
}

const Symbol* Image::FunctionAt(uint32_t addr) const {
  const Symbol* best = nullptr;
  for (const Symbol& sym : symbols) {
    if (sym.kind != SymbolKind::kFunction) continue;
    if (addr >= sym.addr && addr < sym.addr + sym.size) {
      if (best == nullptr || sym.addr > best->addr) best = &sym;
    }
  }
  return best;
}

std::vector<const Symbol*> Image::Functions() const {
  std::vector<const Symbol*> out;
  for (const Symbol& sym : symbols) {
    if (sym.kind == SymbolKind::kFunction) out.push_back(&sym);
  }
  std::sort(out.begin(), out.end(),
            [](const Symbol* a, const Symbol* b) { return a->addr < b->addr; });
  return out;
}

std::vector<uint8_t> Image::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(out, kMagic);
  PutU32(out, entry);
  PutU32(out, text_base);
  PutBytes(out, text);
  PutU32(out, data_base);
  PutBytes(out, data);
  PutU32(out, bss_base);
  PutU32(out, bss_size);
  PutU32(out, static_cast<uint32_t>(symbols.size()));
  for (const Symbol& sym : symbols) {
    PutString(out, sym.name);
    PutU32(out, sym.addr);
    PutU32(out, sym.size);
    PutU32(out, static_cast<uint32_t>(sym.kind));
  }
  return out;
}

util::Result<Image> Image::Deserialize(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  Image img;
  uint32_t magic = 0;
  if (!r.ReadU32(magic)) return util::Error{"image: truncated header"};
  if (magic != kMagic) return util::Error{"image: bad magic"};
  uint32_t nsyms = 0;
  if (!r.ReadU32(img.entry) || !r.ReadU32(img.text_base) ||
      !r.ReadBytes(img.text) || !r.ReadU32(img.data_base) ||
      !r.ReadBytes(img.data) || !r.ReadU32(img.bss_base) ||
      !r.ReadU32(img.bss_size) || !r.ReadU32(nsyms)) {
    return util::Error{"image: truncated body"};
  }
  if (img.text.size() % 4 != 0) return util::Error{"image: text not word-sized"};
  for (uint32_t i = 0; i < nsyms; ++i) {
    Symbol sym;
    uint32_t kind = 0;
    if (!r.ReadString(sym.name) || !r.ReadU32(sym.addr) || !r.ReadU32(sym.size) ||
        !r.ReadU32(kind)) {
      return util::Error{"image: truncated symbol table"};
    }
    if (kind > 1) return util::Error{"image: bad symbol kind"};
    sym.kind = static_cast<SymbolKind>(kind);
    img.symbols.push_back(std::move(sym));
  }
  if (!r.AtEnd()) return util::Error{"image: trailing bytes"};
  return img;
}

}  // namespace sc::image
