// SRK32: the 32-bit RISC instruction set used throughout this repository.
//
// SRK32 stands in for the paper's SPARC/ARM targets. It deliberately has the
// properties the SoftCache design depends on and nothing more:
//   * fixed 32-bit instructions, so a rewriter can patch branches in place;
//   * PC-relative direct branches/jumps whose targets are encoded in the
//     instruction word (the state a rewriter specializes);
//   * a unique call instruction (JAL / JALR-with-link) and a unique return
//     idiom (JALR zero, ra, 0), satisfying the paper's decreed limitation
//     that "procedure call and return use unique instructions";
//   * computed jumps (JALR through a register) that are ambiguous at rewrite
//     time and exercise the hash-table fallback.
//
// Encoding formats (bit 31 is the MSB):
//   R:  op[31:26] rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]
//   I:  op[31:26] rd[25:21] rs1[20:16] imm16[15:0]        (imm sign-extended,
//       except ANDI/ORI/XORI which zero-extend, MIPS-style, so that LUI+ORI
//       can synthesize any 32-bit constant)
//   B:  op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]       (word offset, PC+4)
//   J:  op[31:26] imm26[25:0]                             (word offset, PC+4)
//
// Two opcodes exist purely for the software cache runtime and are never
// produced by the compiler or assembler-visible programs:
//   TCMISS  (J format; imm26 = unsigned stub index) — a cache-miss stub.
//   TCJALR  (I format; same fields as JALR) — a computed jump that must be
//            resolved through the cache controller's hash table.
#pragma once

#include <cstdint>
#include <string>

namespace sc::isa {

inline constexpr int kNumRegs = 32;
inline constexpr uint32_t kInstrBytes = 4;

// Architectural register numbers with ABI roles (see docs in README).
enum Reg : uint8_t {
  kZero = 0,  // hardwired zero
  kAt = 1,    // assembler temporary (reserved for sasm pseudo-ops)
  kRv = 2,    // return value
  kA0 = 3, kA1 = 4, kA2 = 5, kA3 = 6, kA4 = 7, kA5 = 8,           // arguments
  kT0 = 9, kT1 = 10, kT2 = 11, kT3 = 12, kT4 = 13, kT5 = 14,     // caller-saved
  kT6 = 15, kT7 = 16, kT8 = 17,
  kS0 = 18, kS1 = 19, kS2 = 20, kS3 = 21, kS4 = 22, kS5 = 23,    // callee-saved
  kS6 = 24, kS7 = 25, kS8 = 26,
  kK0 = 27,   // reserved for the cache-controller runtime
  kGp = 28,   // global pointer
  kSp = 29,   // stack pointer
  kFp = 30,   // frame pointer
  kRa = 31,   // return address
};

enum class Opcode : uint8_t {
  kIllegal = 0,
  kAlu,    // R: rd = rs1 <funct> rs2
  kAddi,   // I: rd = rs1 + imm
  kAndi,
  kOri,
  kXori,
  kSlti,
  kSltiu,
  kSlli,   // I: shamt = imm & 31
  kSrli,
  kSrai,
  kLui,    // I: rd = imm << 16 (rs1 ignored)
  kLw,     // I: rd = mem32[rs1 + imm]
  kLh,
  kLhu,
  kLb,
  kLbu,
  kSw,     // I: mem32[rs1 + imm] = rd   (rd field holds the source register)
  kSh,
  kSb,
  kBeq,    // B: if (rs1 == rs2) pc = pc + 4 + imm*4
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kJ,      // J: pc = pc + 4 + imm*4
  kJal,    // J: ra = pc + 4; pc = pc + 4 + imm*4
  kJalr,   // I: t = rs1 + imm; rd = pc + 4; pc = t & ~3
  kSys,    // I: system call, service number = imm (see vm/syscalls.h)
  kHalt,   // stop the machine (exit code in a0)
  kTcMiss, // J: softcache miss stub; imm26 = unsigned stub index
  kTcJalr, // I: computed jump resolved via the CC hash table
  kCount,
};

enum class AluOp : uint16_t {
  kAdd = 0,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kSlt,
  kSltu,
  kMul,
  kDiv,
  kDivu,
  kRem,
  kRemu,
  kCount,
};

enum class Format : uint8_t { kR, kI, kB, kJ };

// Decoded instruction. `imm` holds:
//   I format: the sign-extended 16-bit immediate (shift amount for shifts);
//   B/J formats: the signed *word* offset relative to PC+4;
//   TCMISS: the unsigned 26-bit stub index.
struct Instr {
  Opcode op = Opcode::kIllegal;
  AluOp funct = AluOp::kAdd;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;

  bool operator==(const Instr&) const = default;
};

// Instruction-class predicates used by the chunker and rewriter.
Format FormatOf(Opcode op);
bool IsConditionalBranch(Opcode op);  // BEQ..BGEU
bool IsDirectJump(Opcode op);         // J, JAL
bool IsControlTransfer(Opcode op);    // branches, jumps, JALR/TCJALR, HALT, SYS(exit)
const char* MnemonicOf(Opcode op);
const char* MnemonicOf(AluOp funct);
const char* RegName(uint8_t reg);

// Immediate ranges.
inline constexpr int32_t kImm16Min = -32768;
inline constexpr int32_t kImm16Max = 32767;
inline constexpr int32_t kImm26Min = -(1 << 25);
inline constexpr int32_t kImm26Max = (1 << 25) - 1;
bool FitsImm16(int64_t v);
bool FitsImm26(int64_t v);
// True for ANDI/ORI/XORI/LUI, whose 16-bit immediate is zero-extended.
bool HasZeroExtendedImm(Opcode op);

// Encodes `instr` into a 32-bit word. SC_CHECKs field ranges — callers
// (assembler/compiler/rewriter) must have validated user input already.
uint32_t Encode(const Instr& instr);

// Decodes a word. Never fails: unknown opcodes decode to op == kIllegal.
Instr Decode(uint32_t word);

// Branch/jump target arithmetic, shared by the VM, chunker and rewriter.
inline uint32_t BranchTarget(uint32_t pc, int32_t word_offset) {
  return pc + 4 + static_cast<uint32_t>(word_offset) * 4;
}
// Word offset that makes an instruction at `pc` reach `target`.
int32_t OffsetFor(uint32_t pc, uint32_t target);

// Human-readable disassembly of one instruction at address `pc`.
std::string Disassemble(uint32_t word, uint32_t pc);

// Convenience encoders (used heavily by codegen, the rewriter, and tests).
uint32_t EncAlu(AluOp funct, uint8_t rd, uint8_t rs1, uint8_t rs2);
uint32_t EncI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm);
uint32_t EncBranch(Opcode op, uint8_t rs1, uint8_t rs2, int32_t word_offset);
uint32_t EncJ(Opcode op, int32_t word_offset);
uint32_t EncTcMiss(uint32_t stub_index);
inline uint32_t EncNop() { return EncI(Opcode::kAddi, kZero, kZero, 0); }
inline uint32_t EncHalt() { return Encode(Instr{.op = Opcode::kHalt}); }
inline uint32_t EncRet() { return EncI(Opcode::kJalr, kZero, kRa, 0); }

// True iff `word` decodes to the return idiom JALR zero, ra, 0. The paper's
// programming-model limitation makes this the *only* way compiled code
// returns from a procedure, so the rewriter can rely on it.
bool IsReturn(uint32_t word);

}  // namespace sc::isa
