#include "isa/isa.h"

#include <array>
#include <cstdio>

#include "util/check.h"

namespace sc::isa {
namespace {

struct OpInfo {
  const char* mnemonic;
  Format format;
};

constexpr std::array<OpInfo, static_cast<size_t>(Opcode::kCount)> kOpTable = {{
    {"illegal", Format::kR},  // kIllegal
    {"alu", Format::kR},      // kAlu (mnemonic comes from funct)
    {"addi", Format::kI},
    {"andi", Format::kI},
    {"ori", Format::kI},
    {"xori", Format::kI},
    {"slti", Format::kI},
    {"sltiu", Format::kI},
    {"slli", Format::kI},
    {"srli", Format::kI},
    {"srai", Format::kI},
    {"lui", Format::kI},
    {"lw", Format::kI},
    {"lh", Format::kI},
    {"lhu", Format::kI},
    {"lb", Format::kI},
    {"lbu", Format::kI},
    {"sw", Format::kI},
    {"sh", Format::kI},
    {"sb", Format::kI},
    {"beq", Format::kB},
    {"bne", Format::kB},
    {"blt", Format::kB},
    {"bge", Format::kB},
    {"bltu", Format::kB},
    {"bgeu", Format::kB},
    {"j", Format::kJ},
    {"jal", Format::kJ},
    {"jalr", Format::kI},
    {"sys", Format::kI},
    {"halt", Format::kR},
    {"tcmiss", Format::kJ},
    {"tcjalr", Format::kI},
}};

constexpr std::array<const char*, static_cast<size_t>(AluOp::kCount)> kAluNames = {
    "add", "sub", "and", "or",   "xor", "sll", "srl", "sra",
    "slt", "sltu", "mul", "div", "divu", "rem", "remu",
};

constexpr std::array<const char*, kNumRegs> kRegNames = {
    "zero", "at", "rv", "a0", "a1", "a2", "a3", "a4", "a5", "t0", "t1",
    "t2",   "t3", "t4", "t5", "t6", "t7", "t8", "s0", "s1", "s2", "s3",
    "s4",   "s5", "s6", "s7", "s8", "k0", "gp", "sp", "fp", "ra",
};

int32_t SignExtend16(uint32_t v) { return static_cast<int16_t>(v & 0xffff); }

int32_t SignExtend26(uint32_t v) {
  v &= 0x03ffffff;
  if (v & 0x02000000) v |= 0xfc000000;
  return static_cast<int32_t>(v);
}

}  // namespace

Format FormatOf(Opcode op) {
  SC_CHECK_LT(static_cast<size_t>(op), kOpTable.size());
  return kOpTable[static_cast<size_t>(op)].format;
}

bool IsConditionalBranch(Opcode op) {
  return op >= Opcode::kBeq && op <= Opcode::kBgeu;
}

bool IsDirectJump(Opcode op) { return op == Opcode::kJ || op == Opcode::kJal; }

bool IsControlTransfer(Opcode op) {
  return IsConditionalBranch(op) || IsDirectJump(op) || op == Opcode::kJalr ||
         op == Opcode::kTcJalr || op == Opcode::kTcMiss || op == Opcode::kHalt;
}

const char* MnemonicOf(Opcode op) {
  SC_CHECK_LT(static_cast<size_t>(op), kOpTable.size());
  return kOpTable[static_cast<size_t>(op)].mnemonic;
}

const char* MnemonicOf(AluOp funct) {
  SC_CHECK_LT(static_cast<size_t>(funct), kAluNames.size());
  return kAluNames[static_cast<size_t>(funct)];
}

const char* RegName(uint8_t reg) {
  SC_CHECK_LT(reg, kNumRegs);
  return kRegNames[reg];
}

bool FitsImm16(int64_t v) { return v >= kImm16Min && v <= kImm16Max; }
bool FitsImm26(int64_t v) { return v >= kImm26Min && v <= kImm26Max; }

bool HasZeroExtendedImm(Opcode op) {
  return op == Opcode::kAndi || op == Opcode::kOri || op == Opcode::kXori ||
         op == Opcode::kLui;
}

uint32_t Encode(const Instr& instr) {
  SC_CHECK_LT(static_cast<size_t>(instr.op), static_cast<size_t>(Opcode::kCount));
  SC_CHECK_LT(instr.rd, kNumRegs);
  SC_CHECK_LT(instr.rs1, kNumRegs);
  SC_CHECK_LT(instr.rs2, kNumRegs);
  const uint32_t op = static_cast<uint32_t>(instr.op) << 26;
  switch (FormatOf(instr.op)) {
    case Format::kR: {
      SC_CHECK_LT(static_cast<uint32_t>(instr.funct), 1u << 11);
      return op | static_cast<uint32_t>(instr.rd) << 21 |
             static_cast<uint32_t>(instr.rs1) << 16 |
             static_cast<uint32_t>(instr.rs2) << 11 |
             static_cast<uint32_t>(instr.funct);
    }
    case Format::kI: {
      if (HasZeroExtendedImm(instr.op)) {
        SC_CHECK_GE(instr.imm, 0);
        SC_CHECK_LE(instr.imm, 0xffff);
      } else {
        SC_CHECK(FitsImm16(instr.imm)) << "imm16 out of range: " << instr.imm;
      }
      return op | static_cast<uint32_t>(instr.rd) << 21 |
             static_cast<uint32_t>(instr.rs1) << 16 |
             (static_cast<uint32_t>(instr.imm) & 0xffff);
    }
    case Format::kB: {
      SC_CHECK(FitsImm16(instr.imm)) << "branch offset out of range: " << instr.imm;
      return op | static_cast<uint32_t>(instr.rs1) << 21 |
             static_cast<uint32_t>(instr.rs2) << 16 |
             (static_cast<uint32_t>(instr.imm) & 0xffff);
    }
    case Format::kJ: {
      if (instr.op == Opcode::kTcMiss) {
        SC_CHECK_GE(instr.imm, 0);
        SC_CHECK_LE(instr.imm, kImm26Max * 2 + 1);  // unsigned 26-bit index
      } else {
        SC_CHECK(FitsImm26(instr.imm)) << "imm26 out of range: " << instr.imm;
      }
      return op | (static_cast<uint32_t>(instr.imm) & 0x03ffffff);
    }
  }
  SC_UNREACHABLE();
  return 0;  // not reached
}

Instr Decode(uint32_t word) {
  Instr instr;
  const uint32_t opbits = word >> 26;
  if (opbits >= static_cast<uint32_t>(Opcode::kCount)) {
    instr.op = Opcode::kIllegal;
    return instr;
  }
  instr.op = static_cast<Opcode>(opbits);
  switch (FormatOf(instr.op)) {
    case Format::kR: {
      instr.rd = static_cast<uint8_t>((word >> 21) & 31);
      instr.rs1 = static_cast<uint8_t>((word >> 16) & 31);
      instr.rs2 = static_cast<uint8_t>((word >> 11) & 31);
      const uint32_t funct = word & 0x7ff;
      if (instr.op == Opcode::kAlu &&
          funct >= static_cast<uint32_t>(AluOp::kCount)) {
        instr.op = Opcode::kIllegal;
        return instr;
      }
      instr.funct = static_cast<AluOp>(funct);
      break;
    }
    case Format::kI:
      instr.rd = static_cast<uint8_t>((word >> 21) & 31);
      instr.rs1 = static_cast<uint8_t>((word >> 16) & 31);
      instr.imm = HasZeroExtendedImm(instr.op)
                      ? static_cast<int32_t>(word & 0xffff)
                      : SignExtend16(word);
      break;
    case Format::kB:
      instr.rs1 = static_cast<uint8_t>((word >> 21) & 31);
      instr.rs2 = static_cast<uint8_t>((word >> 16) & 31);
      instr.imm = SignExtend16(word);
      break;
    case Format::kJ:
      instr.imm = (instr.op == Opcode::kTcMiss)
                      ? static_cast<int32_t>(word & 0x03ffffff)
                      : SignExtend26(word);
      break;
  }
  return instr;
}

int32_t OffsetFor(uint32_t pc, uint32_t target) {
  SC_CHECK_EQ(pc % 4, 0u);
  SC_CHECK_EQ(target % 4, 0u);
  return static_cast<int32_t>(target - (pc + 4)) / 4;
}

std::string Disassemble(uint32_t word, uint32_t pc) {
  const Instr in = Decode(word);
  char buf[96];
  switch (in.op) {
    case Opcode::kIllegal:
      std::snprintf(buf, sizeof buf, ".word 0x%08x", word);
      break;
    case Opcode::kAlu:
      std::snprintf(buf, sizeof buf, "%-6s %s, %s, %s", MnemonicOf(in.funct),
                    RegName(in.rd), RegName(in.rs1), RegName(in.rs2));
      break;
    case Opcode::kLui:
      std::snprintf(buf, sizeof buf, "%-6s %s, 0x%x", MnemonicOf(in.op),
                    RegName(in.rd), static_cast<uint32_t>(in.imm) & 0xffff);
      break;
    case Opcode::kLw:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kSw:
    case Opcode::kSh:
    case Opcode::kSb:
      std::snprintf(buf, sizeof buf, "%-6s %s, %d(%s)", MnemonicOf(in.op),
                    RegName(in.rd), in.imm, RegName(in.rs1));
      break;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      std::snprintf(buf, sizeof buf, "%-6s %s, %s, 0x%x", MnemonicOf(in.op),
                    RegName(in.rs1), RegName(in.rs2), BranchTarget(pc, in.imm));
      break;
    case Opcode::kJ:
    case Opcode::kJal:
      std::snprintf(buf, sizeof buf, "%-6s 0x%x", MnemonicOf(in.op),
                    BranchTarget(pc, in.imm));
      break;
    case Opcode::kJalr:
    case Opcode::kTcJalr:
      std::snprintf(buf, sizeof buf, "%-6s %s, %s, %d", MnemonicOf(in.op),
                    RegName(in.rd), RegName(in.rs1), in.imm);
      break;
    case Opcode::kSys:
      std::snprintf(buf, sizeof buf, "%-6s %d", MnemonicOf(in.op), in.imm);
      break;
    case Opcode::kHalt:
      std::snprintf(buf, sizeof buf, "halt");
      break;
    case Opcode::kTcMiss:
      std::snprintf(buf, sizeof buf, "%-6s #%u", MnemonicOf(in.op),
                    static_cast<uint32_t>(in.imm));
      break;
    default:
      std::snprintf(buf, sizeof buf, "%-6s %s, %s, %d", MnemonicOf(in.op),
                    RegName(in.rd), RegName(in.rs1), in.imm);
      break;
  }
  return buf;
}

uint32_t EncAlu(AluOp funct, uint8_t rd, uint8_t rs1, uint8_t rs2) {
  return Encode(Instr{.op = Opcode::kAlu, .funct = funct, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

uint32_t EncI(Opcode op, uint8_t rd, uint8_t rs1, int32_t imm) {
  SC_CHECK_EQ(static_cast<int>(FormatOf(op)), static_cast<int>(Format::kI));
  return Encode(Instr{.op = op, .rd = rd, .rs1 = rs1, .imm = imm});
}

uint32_t EncBranch(Opcode op, uint8_t rs1, uint8_t rs2, int32_t word_offset) {
  SC_CHECK(IsConditionalBranch(op));
  return Encode(Instr{.op = op, .rs1 = rs1, .rs2 = rs2, .imm = word_offset});
}

uint32_t EncJ(Opcode op, int32_t word_offset) {
  SC_CHECK(op == Opcode::kJ || op == Opcode::kJal);
  return Encode(Instr{.op = op, .imm = word_offset});
}

uint32_t EncTcMiss(uint32_t stub_index) {
  return Encode(Instr{.op = Opcode::kTcMiss, .imm = static_cast<int32_t>(stub_index)});
}

bool IsReturn(uint32_t word) {
  const Instr in = Decode(word);
  return in.op == Opcode::kJalr && in.rd == kZero && in.rs1 == kRa && in.imm == 0;
}

}  // namespace sc::isa
