// MPEG-2-style video encoder in MiniC (the mpeg2enc stand-in): the first
// frame is intra-coded (8x8 DCT + quantization), subsequent frames use
// 16x16-macroblock full-search motion estimation over a +-7 pixel window
// followed by residual DCT/quantization. The largest workload by code size,
// like mpeg2enc in Table 1.
// Input: [u16 w][u16 h][u8 nframes][frame pixels ...].
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kMpeg2encSource = R"MINIC(
/* ---- frame storage ---- */
char cur_frame[16384];
char ref_frame[16384];
int width = 0;
int height = 0;

/* ---- DCT machinery (same fixed-point scheme as cjpeg) ---- */
int dct_cos[64] = {
  4096, 4096, 4096, 4096, 4096, 4096, 4096, 4096,
  4017, 3406, 2276, 799, -799, -2276, -3406, -4017,
  3784, 1567, -1567, -3784, -3784, -1567, 1567, 3784,
  3406, -799, -4017, -2276, 2276, 4017, 799, -3406,
  2896, -2896, -2896, 2896, 2896, -2896, -2896, 2896,
  2276, -4017, 799, 3406, -3406, -799, 4017, -2276,
  1567, -3784, 3784, -1567, -1567, 3784, -3784, 1567,
  799, -2276, 3406, -4017, 4017, -3406, 2276, -799 };

int intra_quant[64] = {
  8, 16, 19, 22, 26, 27, 29, 34,
  16, 16, 22, 24, 27, 29, 34, 37,
  19, 22, 26, 27, 29, 34, 34, 38,
  22, 22, 26, 27, 29, 34, 37, 40,
  22, 26, 27, 29, 32, 35, 40, 48,
  26, 27, 29, 32, 35, 40, 48, 58,
  26, 27, 29, 34, 38, 46, 56, 69,
  27, 29, 35, 38, 46, 56, 69, 83 };

int block[64];
int temp_block[64];

void forward_dct() {
  int u;
  int x;
  for (u = 0; u < 8; u++) {
    int y;
    for (y = 0; y < 8; y++) {
      int acc = 0;
      for (x = 0; x < 8; x++) acc += block[y * 8 + x] * dct_cos[u * 8 + x];
      temp_block[y * 8 + u] = acc >> 9;
    }
  }
  for (u = 0; u < 8; u++) {
    int v;
    for (v = 0; v < 8; v++) {
      int acc = 0;
      for (x = 0; x < 8; x++) acc += temp_block[x * 8 + u] * dct_cos[v * 8 + x];
      block[v * 8 + u] = acc >> 18;
    }
  }
}

int quantize_block(int inter) {
  int nonzero = 0;
  int i;
  for (i = 0; i < 64; i++) {
    int q = inter ? 16 : intra_quant[i];
    int v = block[i];
    if (v >= 0) v = v / q;
    else v = -((-v) / q);
    block[i] = v;
    if (v != 0) nonzero++;
  }
  return nonzero;
}

/* ---- motion estimation ---- */
int sad_16x16(int cx, int cy, int rx, int ry) {
  int sad = 0;
  int y;
  for (y = 0; y < 16; y++) {
    int x;
    for (x = 0; x < 16; x++) {
      int a = (int)cur_frame[(cy + y) * width + cx + x];
      int b = (int)ref_frame[(ry + y) * width + rx + x];
      int d = a - b;
      if (d < 0) d = -d;
      sad += d;
    }
  }
  return sad;
}

int best_mx = 0;
int best_my = 0;

int full_search(int cx, int cy) {
  int best = 0x7fffffff;
  best_mx = 0;
  best_my = 0;
  int dy;
  for (dy = -7; dy <= 7; dy++) {
    int dx;
    for (dx = -7; dx <= 7; dx++) {
      int rx = cx + dx;
      int ry = cy + dy;
      if (rx < 0 || ry < 0 || rx + 16 > width || ry + 16 > height) continue;
      int sad = sad_16x16(cx, cy, rx, ry);
      if (sad < best) {
        best = sad;
        best_mx = dx;
        best_my = dy;
      }
    }
  }
  return best;
}

/* ---- output ---- */
uint out_checksum = 2166136261;
int out_bits = 0;
int mv_bits = 0;
int coef_bits = 0;
int intra_blocks = 0;
int inter_blocks = 0;

void account(int value, int bits) {
  out_checksum = (out_checksum ^ (uint)value) * 16777619;
  out_bits += bits;
}

int coeff_cost(int v) {
  int m = v < 0 ? -v : v;
  int bits = 2;
  while (m > 0) { bits += 2; m = m >> 1; }
  return bits;
}

void code_block(int inter) {
  int nz = quantize_block(inter);
  int i;
  for (i = 0; i < 64; i++) {
    if (block[i] != 0) {
      int c = coeff_cost(block[i]);
      account(block[i], c);
      coef_bits += c;
    }
  }
  account(nz, 6);
  if (inter) inter_blocks++;
  else intra_blocks++;
}

void load_intra_block(int px, int py) {
  int y;
  for (y = 0; y < 8; y++) {
    int x;
    for (x = 0; x < 8; x++) {
      block[y * 8 + x] = (int)cur_frame[(py + y) * width + px + x] - 128;
    }
  }
}

void load_residual_block(int px, int py, int mx, int my) {
  int y;
  for (y = 0; y < 8; y++) {
    int x;
    for (x = 0; x < 8; x++) {
      int a = (int)cur_frame[(py + y) * width + px + x];
      int b = (int)ref_frame[(py + y + my) * width + px + x + mx];
      block[y * 8 + x] = a - b;
    }
  }
}

void encode_intra_frame() {
  int by;
  for (by = 0; by + 8 <= height; by += 8) {
    int bx;
    for (bx = 0; bx + 8 <= width; bx += 8) {
      load_intra_block(bx, by);
      forward_dct();
      code_block(0);
    }
  }
}

void encode_inter_frame() {
  int my_;
  for (my_ = 0; my_ + 16 <= height; my_ += 16) {
    int mx_;
    for (mx_ = 0; mx_ + 16 <= width; mx_ += 16) {
      full_search(mx_, my_);
      account(best_mx * 16 + best_my, 12);
      mv_bits += 12;
      int sy;
      for (sy = 0; sy < 16; sy += 8) {
        int sx;
        for (sx = 0; sx < 16; sx += 8) {
          load_residual_block(mx_ + sx, my_ + sy, best_mx, best_my);
          forward_dct();
          code_block(1);
        }
      }
    }
  }
}

/* ---- I/O and driver ---- */
void fail_input(char *why) {
  print_str("mpeg2enc: ");
  print_str(why);
  print_nl();
  exit(2);
}

int read_u16() {
  char b[2];
  if (read_bytes(b, 2) != 2) return -1;
  return (int)b[0] | ((int)b[1] << 8);
}

void swap_frames() {
  int i;
  int n = width * height;
  for (i = 0; i < n; i++) ref_frame[i] = cur_frame[i];
}

void print_stats(int frames) {
  print_nl();
  print_str("== mpeg2enc stats ==");
  print_nl();
  print_str("frames:       ");
  print_int(frames);
  print_nl();
  print_str("intra blocks: ");
  print_int(intra_blocks);
  print_nl();
  print_str("inter blocks: ");
  print_int(inter_blocks);
  print_nl();
  print_str("mv bits:      ");
  print_int(mv_bits);
  print_nl();
  print_str("coef bits:    ");
  print_int(coef_bits);
  print_nl();
  print_str("total bits:   ");
  print_int(out_bits);
  print_nl();
  print_str("checksum:     ");
  print_hex(out_checksum);
  print_nl();
}

int main() {
  width = read_u16();
  height = read_u16();
  int nframes = getchar();
  if (width < 16 || height < 16 || nframes <= 0) fail_input("bad header");
  if (width * height > 16384) fail_input("frame too large");
  int f;
  for (f = 0; f < nframes; f++) {
    if (read_bytes(cur_frame, width * height) != width * height) {
      fail_input("truncated frame");
    }
    if (f == 0) encode_intra_frame();
    else encode_inter_frame();
    swap_frames();
  }
  print_stats(nframes);
  return (int)(out_checksum & 127);
}
)MINIC";

}  // namespace sc::workloads
