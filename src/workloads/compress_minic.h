// LZW compressor in MiniC — the stand-in for SPEC CPU95 129.compress.
//
// Implements classic LZW with a chained hash table and growing code width
// (9..14 bits), plus a decompressor used by the self-test mode. Input:
//   [u8 mode][u32 length][bytes...]   mode 0 = compress, 1 = round-trip test
// Output: packed code stream followed by statistics. The decompressor and
// diagnostic routines are cold in mode 0 — exactly the hot/cold split
// Table 1 and Figure 5 measure.
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kCompressSource = R"MINIC(
/* ---- LZW tables ---- */
int HASH_SIZE = 18013;        /* prime > 2^14 */
int MAX_CODES = 16384;        /* 14-bit codes */

int hash_head[18013];         /* hash bucket -> code or -1 */
int code_prefix[16384];       /* code -> prefix code */
int code_suffix[16384];       /* code -> appended byte */
int hash_next[16384];         /* chain links */
int next_code = 0;
int code_bits = 9;

/* ---- bit-packed output ---- */
uint bit_buffer = 0;
int bit_count = 0;
uint out_checksum = 2166136261;
int out_bytes = 0;
char out_ring[4096];
int out_ring_len = 0;

void flush_ring() {
  if (out_ring_len > 0) {
    write_bytes(out_ring, out_ring_len);
    out_ring_len = 0;
  }
}

void put_byte(int b) {
  out_checksum = (out_checksum ^ (uint)(b & 255)) * 16777619;
  out_ring[out_ring_len] = (char)b;
  out_ring_len++;
  if (out_ring_len == 4096) flush_ring();
  out_bytes++;
}

void put_code(int code) {
  bit_buffer |= (uint)code << bit_count;
  bit_count += code_bits;
  while (bit_count >= 8) {
    put_byte((int)(bit_buffer & 255));
    bit_buffer = bit_buffer >> 8;
    bit_count -= 8;
  }
}

void flush_bits() {
  if (bit_count > 0) put_byte((int)(bit_buffer & 255));
  bit_buffer = 0;
  bit_count = 0;
}

/* ---- dictionary ---- */
void dict_reset() {
  int i;
  for (i = 0; i < HASH_SIZE; i++) hash_head[i] = -1;
  next_code = 256;
  code_bits = 9;
}

int dict_probe(int prefix, int suffix) {
  int h = ((prefix << 8) ^ suffix) % HASH_SIZE;
  if (h < 0) h += HASH_SIZE;
  int code = hash_head[h];
  while (code >= 0) {
    if (code_prefix[code] == prefix && code_suffix[code] == suffix) return code;
    code = hash_next[code];
  }
  return -1;
}

void dict_insert(int prefix, int suffix) {
  if (next_code >= MAX_CODES) return;
  int h = ((prefix << 8) ^ suffix) % HASH_SIZE;
  if (h < 0) h += HASH_SIZE;
  code_prefix[next_code] = prefix;
  code_suffix[next_code] = suffix;
  hash_next[next_code] = hash_head[h];
  hash_head[h] = next_code;
  next_code++;
  if (next_code == (1 << code_bits) && code_bits < 14) code_bits++;
}

/* ---- input ---- */
char in_buf[4096];
int in_len = 0;
int in_pos = 0;
int in_total = 0;
int in_limit = 0;

int next_byte() {
  if (in_total >= in_limit) return -1;
  if (in_pos >= in_len) {
    int want = in_limit - in_total;
    if (want > 4096) want = 4096;
    in_len = read_bytes(in_buf, want);
    in_pos = 0;
    if (in_len <= 0) return -1;
  }
  in_total++;
  int v = (int)in_buf[in_pos];
  in_pos++;
  return v;
}

int read_u32() {
  char b[4];
  if (read_bytes(b, 4) != 4) return -1;
  return (int)b[0] | ((int)b[1] << 8) | ((int)b[2] << 16) | ((int)b[3] << 24);
}

void fail_input(char *why) {
  print_str("compress: ");
  print_str(why);
  print_nl();
  exit(2);
}

/* ---- compression ---- */
int do_compress() {
  dict_reset();
  int prefix = next_byte();
  if (prefix < 0) fail_input("empty input");
  int c;
  while ((c = next_byte()) >= 0) {
    int code = dict_probe(prefix, c);
    if (code >= 0) {
      prefix = code;
    } else {
      put_code(prefix);
      dict_insert(prefix, c);
      prefix = c;
    }
  }
  put_code(prefix);
  flush_bits();
  flush_ring();
  return in_total;
}

/* ---- decompression (cold in mode 0; used by the self-test) ---- */
char decode_stack[16384];
uint dec_checksum = 2166136261;
int dec_count = 0;

int stored_codes[65536];
int stored_ncodes = 0;

void store_code_for_test(int code) { stored_codes[stored_ncodes++] = code; }

void emit_decoded(int b) {
  dec_checksum = (dec_checksum ^ (uint)(b & 255)) * 16777619;
  dec_count++;
}

int dprefix[16384];
int dsuffix[16384];

int do_decompress_stored() {
  /* rebuild from stored_codes; mirrors the canonical LZW decoder */
  int dnext = 256;
  int pos = 0;
  if (stored_ncodes == 0) return 0;
  int prev = stored_codes[pos]; pos++;
  emit_decoded(prev);
  int prev_first = prev;
  while (pos < stored_ncodes) {
    int code = stored_codes[pos]; pos++;
    int top = 0;
    int cur = code;
    if (code >= dnext) {        /* KwKwK case */
      decode_stack[top] = (char)prev_first;
      top++;
      cur = prev;
    }
    while (cur >= 256) {
      decode_stack[top] = (char)dsuffix[cur];
      top++;
      cur = dprefix[cur];
    }
    decode_stack[top] = (char)cur;
    top++;
    prev_first = cur;
    while (top > 0) {
      top--;
      emit_decoded((int)decode_stack[top]);
    }
    if (dnext < 16384) {
      dprefix[dnext] = prev;
      dsuffix[dnext] = prev_first;
      dnext++;
    }
    prev = code;
  }
  return dec_count;
}

/* Self-test mode: compress while recording codes, then decompress and check
   the round trip reproduces the input checksum. */
uint src_checksum = 2166136261;

int do_selftest() {
  dict_reset();
  stored_ncodes = 0;
  int prefix = next_byte();
  if (prefix < 0) fail_input("empty input");
  src_checksum = (src_checksum ^ (uint)prefix) * 16777619;
  int c;
  while ((c = next_byte()) >= 0) {
    src_checksum = (src_checksum ^ (uint)c) * 16777619;
    int code = dict_probe(prefix, c);
    if (code >= 0) {
      prefix = code;
    } else {
      store_code_for_test(prefix);
      dict_insert(prefix, c);
      prefix = c;
    }
  }
  store_code_for_test(prefix);
  do_decompress_stored();
  if (dec_count != in_total) return 1;
  if (dec_checksum != src_checksum) return 2;
  return 0;
}

void print_stats(int mode) {
  print_nl();
  print_str("== compress stats ==");
  print_nl();
  print_str("mode:        ");
  print_int(mode);
  print_nl();
  print_str("input bytes: ");
  print_int(in_total);
  print_nl();
  print_str("out bytes:   ");
  print_int(out_bytes);
  print_nl();
  print_str("dict codes:  ");
  print_int(next_code);
  print_nl();
  print_str("checksum:    ");
  print_hex(out_checksum);
  print_nl();
  if (in_total > 0 && out_bytes > 0) {
    print_str("ratio x100:  ");
    print_int((out_bytes * 100) / in_total);
    print_nl();
  }
}

int main() {
  char header[1];
  if (read_bytes(header, 1) != 1) fail_input("missing mode byte");
  int mode = (int)header[0];
  in_limit = read_u32();
  if (in_limit <= 0) fail_input("bad length");
  if (mode == 0) {
    do_compress();
    print_stats(mode);
    return (int)(out_checksum & 127);
  }
  if (mode == 1) {
    int rc = do_selftest();
    print_str("selftest: ");
    print_int(rc);
    print_nl();
    print_stats(mode);
    return rc;
  }
  fail_input("unknown mode");
  return 3;
}
)MINIC";

}  // namespace sc::workloads
