// LZSS compressor in MiniC — the gzip stand-in used by the ARM experiments.
//
// Greedy LZ77 with a 4 KB window and 3-byte hash chains; output is a
// flag-byte stream (8 items per flag byte: literal or 12-bit offset + 4-bit
// length pair). A decompressor self-test mode exists and stays cold in the
// normal compression mode. No computed jumps anywhere — this workload must
// run under the ARM-style prototype.
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kGzipSource = R"MINIC(
int WINDOW = 4096;
int MIN_MATCH = 3;
int MAX_MATCH = 18;

char window_buf[4096];
int hash_head[4096];     /* hash of 3 bytes -> most recent position+1 */
int hash_prev[4096];     /* position -> previous position+1 in chain */

char in_data[65536];
int in_size = 0;

uint out_checksum = 2166136261;
int out_count = 0;
char out_data[65536];
int literals = 0;
int matches = 0;

void emit(int b) {
  out_checksum = (out_checksum ^ (uint)(b & 255)) * 16777619;
  out_data[out_count] = (char)b;
  out_count++;
}

int hash3(int pos) {
  int h = ((int)in_data[pos] << 6) ^ ((int)in_data[pos + 1] << 3) ^
          (int)in_data[pos + 2];
  return h & 4095;
}

/* Finds the longest match for in_data[pos..] within the window.
   Returns length, stores offset via pointer. */
int find_match(int pos, int *offset_out) {
  if (pos + MIN_MATCH > in_size) return 0;
  int limit = in_size - pos;
  if (limit > MAX_MATCH) limit = MAX_MATCH;
  int best_len = 0;
  int best_off = 0;
  int tries = 32;                 /* chain cap, like gzip's max_chain */
  int cand = hash_head[hash3(pos)] - 1;
  while (cand >= 0 && tries > 0) {
    if (pos - cand > WINDOW - 1) break;
    int len = 0;
    while (len < limit && in_data[cand + len] == in_data[pos + len]) len++;
    if (len > best_len) {
      best_len = len;
      best_off = pos - cand;
      if (len == limit) break;
    }
    cand = hash_prev[cand & 4095] - 1;
    tries--;
  }
  *offset_out = best_off;
  return best_len;
}

void insert_hash(int pos) {
  if (pos + MIN_MATCH > in_size) return;
  int h = hash3(pos);
  hash_prev[pos & 4095] = hash_head[h];
  hash_head[h] = pos + 1;
}

int do_compress() {
  int pos = 0;
  int flag_pos = -1;
  int flag_bits = 8;
  while (pos < in_size) {
    if (flag_bits == 8) {
      flag_pos = out_count;
      emit(0);
      flag_bits = 0;
    }
    int offset = 0;
    int len = find_match(pos, &offset);
    if (len >= MIN_MATCH) {
      /* match: flag bit 1, then offset(12) | len-3(4) packed in 2 bytes */
      out_data[flag_pos] = (char)((int)out_data[flag_pos] | (1 << flag_bits));
      emit(offset & 255);
      emit(((offset >> 8) & 15) | ((len - MIN_MATCH) << 4));
      int k;
      for (k = 0; k < len; k++) insert_hash(pos + k);
      pos += len;
      matches++;
    } else {
      emit((int)in_data[pos]);
      insert_hash(pos);
      pos++;
      literals++;
    }
    flag_bits++;
  }
  /* re-checksum the flag bytes that were patched after emission */
  out_checksum = 2166136261;
  int i;
  for (i = 0; i < out_count; i++) {
    out_checksum = (out_checksum ^ (uint)((int)out_data[i] & 255)) * 16777619;
  }
  return out_count;
}

/* ---- decompressor: cold except in self-test mode ---- */
char dec_data[65536];
int dec_count = 0;

int do_decompress() {
  dec_count = 0;
  int pos = 0;
  while (pos < out_count) {
    int flags = (int)out_data[pos];
    pos++;
    int bit;
    for (bit = 0; bit < 8 && pos < out_count; bit++) {
      if (flags & (1 << bit)) {
        int lo = (int)out_data[pos];
        int hi = (int)out_data[pos + 1];
        pos += 2;
        int offset = lo | ((hi & 15) << 8);
        int len = (hi >> 4) + MIN_MATCH;
        int k;
        for (k = 0; k < len; k++) {
          dec_data[dec_count] = dec_data[dec_count - offset];
          dec_count++;
        }
      } else {
        dec_data[dec_count] = out_data[pos];
        dec_count++;
        pos++;
      }
    }
  }
  return dec_count;
}

void fail_input(char *why) {
  print_str("gzip: ");
  print_str(why);
  print_nl();
  exit(2);
}

int read_u32() {
  char b[4];
  if (read_bytes(b, 4) != 4) return -1;
  return (int)b[0] | ((int)b[1] << 8) | ((int)b[2] << 16) | ((int)b[3] << 24);
}

void print_stats(int mode) {
  print_nl();
  print_str("== gzip stats ==");
  print_nl();
  print_str("mode:     ");
  print_int(mode);
  print_nl();
  print_str("in:       ");
  print_int(in_size);
  print_nl();
  print_str("out:      ");
  print_int(out_count);
  print_nl();
  print_str("literals: ");
  print_int(literals);
  print_nl();
  print_str("matches:  ");
  print_int(matches);
  print_nl();
  print_str("checksum: ");
  print_hex(out_checksum);
  print_nl();
  if (in_size > 0) {
    print_str("ratio:    ");
    print_int((out_count * 100) / in_size);
    print_nl();
  }
}

int main() {
  char header[1];
  if (read_bytes(header, 1) != 1) fail_input("missing mode");
  int mode = (int)header[0];
  in_size = read_u32();
  if (in_size <= 0 || in_size > 65536) fail_input("bad length");
  if (read_bytes(in_data, in_size) != in_size) fail_input("truncated data");
  int i;
  for (i = 0; i < 4096; i++) { hash_head[i] = 0; hash_prev[i] = 0; }
  do_compress();
  if (mode == 1) {
    do_decompress();
    if (dec_count != in_size) { print_str("selftest: length mismatch"); print_nl(); return 9; }
    for (i = 0; i < in_size; i++) {
      if (dec_data[i] != in_data[i]) { print_str("selftest: data mismatch"); print_nl(); return 8; }
    }
    print_str("selftest: ok");
    print_nl();
  }
  write_bytes(out_data, out_count < 512 ? out_count : 512);
  print_stats(mode);
  return (int)(out_checksum & 127);
}
)MINIC";

}  // namespace sc::workloads
