// Dijkstra shortest paths in MiniC — the network-routing kernel a sensor
// mesh would run (pointer-free adjacency matrix + simple priority scan, the
// classic MiBench formulation). Input:
//   [u8 nodes][u8 queries][adjacency weights, one byte each, 0 = no edge]
//   then queries of [u8 src][u8 dst].
// Output: per-query distances + stats. ARM-prototype safe.
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kDijkstraSource = R"MINIC(
int NONE = 0x7fffffff;
char adj[16384];         /* nodes x nodes, weight bytes */
int dist[128];
char visited[128];
int prev_hop[128];
int nodes = 0;
int relaxations = 0;
int scans = 0;

void fail_input(char *why) {
  print_str("dijkstra: ");
  print_str(why);
  print_nl();
  exit(2);
}

int shortest_path(int src, int dst) {
  int i;
  for (i = 0; i < nodes; i++) {
    dist[i] = NONE;
    visited[i] = 0;
    prev_hop[i] = -1;
  }
  dist[src] = 0;
  for (;;) {
    /* extract-min by linear scan (the MiBench way) */
    int best = -1;
    int best_d = NONE;
    for (i = 0; i < nodes; i++) {
      scans++;
      if (!visited[i] && dist[i] < best_d) {
        best = i;
        best_d = dist[i];
      }
    }
    if (best < 0) break;
    if (best == dst) break;
    visited[best] = 1;
    for (i = 0; i < nodes; i++) {
      int w = (int)adj[best * nodes + i];
      if (w > 0 && !visited[i]) {
        int nd = dist[best] + w;
        if (nd < dist[i]) {
          dist[i] = nd;
          prev_hop[i] = best;
          relaxations++;
        }
      }
    }
  }
  return dist[dst];
}

int path_length(int dst) {
  int hops = 0;
  int cur = dst;
  while (cur >= 0 && hops <= nodes) {
    cur = prev_hop[cur];
    hops++;
  }
  return hops - 1;
}

int main() {
  nodes = getchar();
  int queries = getchar();
  if (nodes < 2 || nodes > 128 || queries < 1) fail_input("bad header");
  if (read_bytes(adj, nodes * nodes) != nodes * nodes) {
    fail_input("truncated adjacency");
  }
  uint checksum = 2166136261;
  int q;
  for (q = 0; q < queries; q++) {
    int src = getchar();
    int dst = getchar();
    if (src < 0 || dst < 0 || src >= nodes || dst >= nodes) {
      fail_input("bad query");
    }
    int d = shortest_path(src, dst);
    int hops = d == NONE ? -1 : path_length(dst);
    print_int(src);
    print_str(" -> ");
    print_int(dst);
    print_str(": ");
    if (d == NONE) print_str("unreachable");
    else print_int(d);
    print_str(" (");
    print_int(hops);
    print_str(" hops)");
    print_nl();
    checksum = (checksum ^ (uint)d) * 16777619;
  }
  print_str("== dijkstra stats ==");
  print_nl();
  print_str("nodes:       ");
  print_int(nodes);
  print_nl();
  print_str("relaxations: ");
  print_int(relaxations);
  print_nl();
  print_str("scans:       ");
  print_int(scans);
  print_nl();
  print_str("checksum:    ");
  print_hex(checksum);
  print_nl();
  return (int)(checksum & 127);
}
)MINIC";

}  // namespace sc::workloads
