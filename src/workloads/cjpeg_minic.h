// Baseline JPEG-style grayscale encoder in MiniC (the MediaBench cjpeg
// stand-in): 8x8 blocks, integer DCT (fixed-point separable), quantization,
// zigzag scan, run-length + variable-length entropy coding with a static
// table. Input: [u16 w][u16 h][u8 quality][pixels row-major].
// No computed jumps — runs under the ARM-style prototype.
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kCjpegSource = R"MINIC(
int base_quant[64] = {
  16, 11, 10, 16, 24, 40, 51, 61,
  12, 12, 14, 19, 26, 58, 60, 55,
  14, 13, 16, 24, 40, 57, 69, 56,
  14, 17, 22, 29, 51, 87, 80, 62,
  18, 22, 37, 56, 68, 109, 103, 77,
  24, 35, 55, 64, 81, 104, 113, 92,
  49, 64, 78, 87, 103, 121, 120, 101,
  72, 92, 95, 98, 112, 100, 103, 99 };

int zigzag[64] = {
  0, 1, 8, 16, 9, 2, 3, 10,
  17, 24, 32, 25, 18, 11, 4, 5,
  12, 19, 26, 33, 40, 48, 41, 34,
  27, 20, 13, 6, 7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36,
  29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46,
  53, 60, 61, 54, 47, 55, 62, 63 };

int quant[64];

/* Scales the base table for a quality setting (cold: runs once). */
void build_quant(int quality) {
  int scale;
  if (quality <= 0) quality = 1;
  if (quality > 100) quality = 100;
  if (quality < 50) scale = 5000 / quality;
  else scale = 200 - quality * 2;
  int i;
  for (i = 0; i < 64; i++) {
    int q = (base_quant[i] * scale + 50) / 100;
    if (q < 1) q = 1;
    if (q > 255) q = 255;
    quant[i] = q;
  }
}

/* Fixed-point constants: cos((2k+1)*u*pi/16) * 4096. */
int dct_cos[64] = {
  4096, 4096, 4096, 4096, 4096, 4096, 4096, 4096,
  4017, 3406, 2276, 799, -799, -2276, -3406, -4017,
  3784, 1567, -1567, -3784, -3784, -1567, 1567, 3784,
  3406, -799, -4017, -2276, 2276, 4017, 799, -3406,
  2896, -2896, -2896, 2896, 2896, -2896, -2896, 2896,
  2276, -4017, 799, 3406, -3406, -799, 4017, -2276,
  1567, -3784, 3784, -1567, -1567, 3784, -3784, 1567,
  799, -2276, 3406, -4017, 4017, -3406, 2276, -799 };

int block[64];
int temp_block[64];

/* Separable 2-D DCT on block[], fixed point. */
void forward_dct() {
  int u;
  int x;
  /* rows */
  for (u = 0; u < 8; u++) {
    int y;
    for (y = 0; y < 8; y++) {
      int acc = 0;
      for (x = 0; x < 8; x++) acc += block[y * 8 + x] * dct_cos[u * 8 + x];
      temp_block[y * 8 + u] = acc >> 9;
    }
  }
  /* columns */
  for (u = 0; u < 8; u++) {
    int v;
    for (v = 0; v < 8; v++) {
      int acc = 0;
      for (x = 0; x < 8; x++) acc += temp_block[x * 8 + u] * dct_cos[v * 8 + x];
      /* scale: 2/8 * 2/8 with the 4096 fixed point folded in */
      block[v * 8 + u] = acc >> 18;
    }
  }
}

void quantize() {
  int i;
  for (i = 0; i < 64; i++) {
    int v = block[i];
    if (v >= 0) block[i] = v / quant[i];
    else block[i] = -((-v) / quant[i]);
  }
}

/* ---- entropy coding: run-length of zeros + simple VLC ---- */
uint bit_buffer = 0;
int bit_count = 0;
uint out_checksum = 2166136261;
int out_bytes = 0;
int coded_coeffs = 0;
int zero_runs = 0;

void put_bits(int value, int nbits) {
  bit_buffer |= (uint)(value & ((1 << nbits) - 1)) << bit_count;
  bit_count += nbits;
  while (bit_count >= 8) {
    int b = (int)(bit_buffer & 255);
    out_checksum = (out_checksum ^ (uint)b) * 16777619;
    bit_buffer = bit_buffer >> 8;
    bit_count -= 8;
    out_bytes++;
  }
}

int magnitude_bits(int v) {
  int m = v < 0 ? -v : v;
  int bits = 0;
  while (m > 0) { bits++; m = m >> 1; }
  return bits;
}

void encode_coeff(int run, int value) {
  int nbits = magnitude_bits(value);
  /* (run,size) pair as 4+4 bits, then the value bits */
  put_bits(run, 4);
  put_bits(nbits, 4);
  if (nbits > 0) {
    int v = value;
    if (v < 0) v = v + (1 << nbits) - 1;   /* JPEG-style negative coding */
    put_bits(v, nbits);
  }
  coded_coeffs++;
}

int prev_dc = 0;

void encode_block() {
  /* DC: difference from previous block */
  int dc = block[0];
  encode_coeff(0, dc - prev_dc);
  prev_dc = dc;
  /* AC: zigzag with zero runs */
  int run = 0;
  int k;
  for (k = 1; k < 64; k++) {
    int v = block[zigzag[k]];
    if (v == 0) {
      run++;
      if (run == 16) { put_bits(15, 4); put_bits(0, 4); run = 0; zero_runs++; }
    } else {
      encode_coeff(run, v);
      run = 0;
    }
  }
  if (run > 0) { put_bits(0, 8); zero_runs++; }  /* end of block */
}

/* ---- image handling ---- */
char pixels[65536];
int width = 0;
int height = 0;

void fail_input(char *why) {
  print_str("cjpeg: ");
  print_str(why);
  print_nl();
  exit(2);
}

int read_u16() {
  char b[2];
  if (read_bytes(b, 2) != 2) return -1;
  return (int)b[0] | ((int)b[1] << 8);
}

void load_block(int bx, int by) {
  int y;
  for (y = 0; y < 8; y++) {
    int x;
    for (x = 0; x < 8; x++) {
      int px = bx * 8 + x;
      int py = by * 8 + y;
      int v;
      if (px < width && py < height) v = (int)pixels[py * width + px];
      else v = 128;                       /* edge padding */
      block[y * 8 + x] = v - 128;          /* level shift */
    }
  }
}

void print_stats() {
  print_nl();
  print_str("== cjpeg stats ==");
  print_nl();
  print_str("image:    ");
  print_int(width);
  print_str("x");
  print_int(height);
  print_nl();
  print_str("out:      ");
  print_int(out_bytes);
  print_nl();
  print_str("coeffs:   ");
  print_int(coded_coeffs);
  print_nl();
  print_str("eob/runs: ");
  print_int(zero_runs);
  print_nl();
  print_str("checksum: ");
  print_hex(out_checksum);
  print_nl();
}

int main() {
  width = read_u16();
  height = read_u16();
  int quality = getchar();
  if (width <= 0 || height <= 0 || quality < 0) fail_input("bad header");
  if (width * height > 65536) fail_input("image too large");
  if (read_bytes(pixels, width * height) != width * height) {
    fail_input("truncated pixels");
  }
  build_quant(quality);
  int blocks_x = (width + 7) / 8;
  int blocks_y = (height + 7) / 8;
  int by;
  for (by = 0; by < blocks_y; by++) {
    int bx;
    for (bx = 0; bx < blocks_x; bx++) {
      load_block(bx, by);
      forward_dct();
      quantize();
      encode_block();
    }
  }
  put_bits(0x7f, 7);  /* flush */
  print_stats();
  return (int)(out_checksum & 127);
}
)MINIC";

}  // namespace sc::workloads
