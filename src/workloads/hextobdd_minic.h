// hextobdd in MiniC — a binary-decision-diagram package driven by
// hex-encoded truth tables (the paper's "local graph manipulation
// application"). Builds ROBDDs via a unique table, combines them with a
// memoized apply(), and reports node and satisfying-assignment counts.
// Pointer-chasing and hashing dominate, a very different profile from the
// compression codecs.
// Input: [u8 nvars][u8 nfuncs][truth tables, hex chars, 2^nvars bits each].
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kHextobddSource = R"MINIC(
/* ---- node store ----
   node 0 = FALSE terminal, node 1 = TRUE terminal. */
int MAX_NODES = 32768;
int node_var[32768];
int node_lo[32768];
int node_hi[32768];
int node_count = 2;

/* unique table: open hashing with chains */
int UNIQ_SIZE = 16381;
int uniq_head[16381];
int uniq_next[32768];

/* apply memo cache */
int MEMO_SIZE = 16384;
int memo_key_f[16384];
int memo_key_g[16384];
int memo_op[16384];
int memo_val[16384];

int nvars = 0;

void tables_init() {
  int i;
  node_var[0] = 999; node_lo[0] = 0; node_hi[0] = 0;
  node_var[1] = 999; node_lo[1] = 1; node_hi[1] = 1;
  node_count = 2;
  for (i = 0; i < UNIQ_SIZE; i++) uniq_head[i] = -1;
  for (i = 0; i < MEMO_SIZE; i++) memo_op[i] = -1;
}

void fail(char *why) {
  print_str("hextobdd: ");
  print_str(why);
  print_nl();
  exit(2);
}

/* Finds or creates the node (var, lo, hi), maintaining reduction rules. */
int mk_node(int var, int lo, int hi) {
  if (lo == hi) return lo;
  int h = (var * 12582917 + lo * 4256249 + hi * 741457) % UNIQ_SIZE;
  if (h < 0) h += UNIQ_SIZE;
  int n = uniq_head[h];
  while (n >= 0) {
    if (node_var[n] == var && node_lo[n] == lo && node_hi[n] == hi) return n;
    n = uniq_next[n];
  }
  if (node_count >= MAX_NODES) fail("node table full");
  n = node_count;
  node_count++;
  node_var[n] = var;
  node_lo[n] = lo;
  node_hi[n] = hi;
  uniq_next[n] = uniq_head[h];
  uniq_head[h] = n;
  return n;
}

/* ops: 0 = AND, 1 = OR, 2 = XOR */
int apply_op(int op, int a, int b) {
  if (op == 0) return a & b;
  if (op == 1) return a | b;
  return a ^ b;
}

int apply(int op, int f, int g) {
  if (f <= 1 && g <= 1) return apply_op(op, f, g);
  /* terminal shortcuts */
  if (op == 0) {
    if (f == 0 || g == 0) return 0;
    if (f == 1) return g;
    if (g == 1) return f;
  }
  if (op == 1) {
    if (f == 1 || g == 1) return 1;
    if (f == 0) return g;
    if (g == 0) return f;
  }
  if (op == 2) {
    if (f == 0) return g;
    if (g == 0) return f;
  }
  int slot = ((f * 31 + g) * 7 + op) % MEMO_SIZE;
  if (slot < 0) slot += MEMO_SIZE;
  if (memo_op[slot] == op && memo_key_f[slot] == f && memo_key_g[slot] == g) {
    return memo_val[slot];
  }
  int vf = node_var[f];
  int vg = node_var[g];
  int var = vf < vg ? vf : vg;
  int f_lo = f; int f_hi = f;
  int g_lo = g; int g_hi = g;
  if (vf == var) { f_lo = node_lo[f]; f_hi = node_hi[f]; }
  if (vg == var) { g_lo = node_lo[g]; g_hi = node_hi[g]; }
  int lo = apply(op, f_lo, g_lo);
  int hi = apply(op, f_hi, g_hi);
  int r = mk_node(var, lo, hi);
  memo_op[slot] = op;
  memo_key_f[slot] = f;
  memo_key_g[slot] = g;
  memo_val[slot] = r;
  return r;
}

/* Builds a BDD from a truth table bit array over [index, index+len). */
char truth[4096];

int build_from_truth(int var, int index, int len) {
  if (len == 1) return (int)truth[index] ? 1 : 0;
  int half = len / 2;
  int lo = build_from_truth(var + 1, index, half);
  int hi = build_from_truth(var + 1, index + half, half);
  return mk_node(var, lo, hi);
}

/* Counts BDD nodes reachable from f (graph walk with a visited mark). */
char visited[32768];

int count_reachable(int f) {
  if (f <= 1) return 0;
  if (visited[f]) return 0;
  visited[f] = 1;
  return 1 + count_reachable(node_lo[f]) + count_reachable(node_hi[f]);
}

int bdd_size(int f) {
  int i;
  for (i = 0; i < node_count; i++) visited[i] = 0;
  return count_reachable(f);
}

/* Counts satisfying assignments (scaled by 2^missing-vars). */
int sat_count(int f, int var) {
  if (f == 0) return 0;
  if (f == 1) return 1 << (nvars - var);
  int skip_lo = node_var[f] - var;
  int lo = sat_count(node_lo[f], node_var[f] + 1);
  int hi = sat_count(node_hi[f], node_var[f] + 1);
  return (lo + hi) << skip_lo;
}

/* Evaluates f under assignment bits. */
int bdd_eval(int f, int bits) {
  while (f > 1) {
    if (bits & (1 << node_var[f])) f = node_hi[f];
    else f = node_lo[f];
  }
  return f;
}

int hex_digit(int c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/* Reads 2^nvars truth bits as hex characters into truth[]. */
void read_truth() {
  int bits = 1 << nvars;
  int i;
  for (i = 0; i < bits; i += 4) {
    int c = getchar();
    int d = hex_digit(c);
    if (d < 0) fail("bad hex digit");
    truth[i] = (char)((d >> 3) & 1);
    truth[i + 1] = (char)((d >> 2) & 1);
    truth[i + 2] = (char)((d >> 1) & 1);
    truth[i + 3] = (char)(d & 1);
  }
}

int funcs[64];

int main() {
  nvars = getchar();
  int nfuncs = getchar();
  if (nvars < 2 || nvars > 12) fail("bad nvars");
  if (nfuncs < 1 || nfuncs > 64) fail("bad nfuncs");
  tables_init();

  uint checksum = 2166136261;
  int i;
  for (i = 0; i < nfuncs; i++) {
    read_truth();
    funcs[i] = build_from_truth(0, 0, 1 << nvars);
  }

  /* Combine all pairs with rotating operators, like a verification pass. */
  int combined = funcs[0];
  for (i = 1; i < nfuncs; i++) {
    combined = apply(i % 3, combined, funcs[i]);
    checksum = (checksum ^ (uint)bdd_size(combined)) * 16777619;
  }

  /* Evaluate on a few assignments and fold into the checksum. */
  for (i = 0; i < 64; i++) {
    checksum = (checksum ^ (uint)bdd_eval(combined, i * 2654435761)) * 16777619;
  }

  print_str("== hextobdd stats ==");
  print_nl();
  print_str("vars:      ");
  print_int(nvars);
  print_nl();
  print_str("functions: ");
  print_int(nfuncs);
  print_nl();
  print_str("nodes:     ");
  print_int(node_count);
  print_nl();
  print_str("size(comb):");
  print_int(bdd_size(combined));
  print_nl();
  print_str("satcount:  ");
  print_int(sat_count(combined, 0));
  print_nl();
  print_str("checksum:  ");
  print_hex(checksum);
  print_nl();
  return (int)(checksum & 127);
}
)MINIC";

}  // namespace sc::workloads
