#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "minicc/compiler.h"
#include "util/check.h"
#include "util/rng.h"
#include "workloads/adpcm_minic.h"
#include "workloads/cjpeg_minic.h"
#include "workloads/compress_minic.h"
#include "workloads/dijkstra_minic.h"
#include "workloads/gzip_minic.h"
#include "workloads/hextobdd_minic.h"
#include "workloads/mpeg2enc_minic.h"
#include "workloads/sha256_minic.h"

namespace sc::workloads {
namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU16(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

}  // namespace

const std::vector<WorkloadSpec>& AllWorkloads() {
  static const std::vector<WorkloadSpec> specs = [] {
    std::vector<WorkloadSpec> list;
    list.push_back({"compress95", std::string(kCompressSource), false});
    list.push_back({"adpcm_enc",
                    std::string(kAdpcmCommon) + std::string(kAdpcmEncMain), true});
    list.push_back({"adpcm_dec",
                    std::string(kAdpcmCommon) + std::string(kAdpcmDecMain), true});
    list.push_back({"hextobdd", std::string(kHextobddSource), false});
    list.push_back({"mpeg2enc", std::string(kMpeg2encSource), true});
    list.push_back({"gzip", std::string(kGzipSource), true});
    list.push_back({"cjpeg", std::string(kCjpegSource), true});
    list.push_back({"sha256", std::string(kSha256Source), true});
    list.push_back({"dijkstra", std::string(kDijkstraSource), true});
    return list;
  }();
  return specs;
}

const WorkloadSpec* FindWorkload(const std::string& name) {
  for (const WorkloadSpec& spec : AllWorkloads()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

image::Image CompileWorkload(const WorkloadSpec& spec) {
  auto img = minicc::CompileMiniC(spec.source, spec.name);
  SC_CHECK(img.ok()) << "workload '" << spec.name
                     << "' failed to compile: " << img.error().ToString();
  return std::move(*img);
}

// ---------------------------------------------------------------------------
// Input generators
// ---------------------------------------------------------------------------

// Markov-ish English-like text: word soup from a small vocabulary with
// punctuation and repetition, compressible like real prose.
std::vector<uint8_t> MakeTextCorpus(uint32_t bytes, uint64_t seed) {
  static const char* const kWords[] = {
      "the",     "sensor",  "network", "cache",   "memory",  "embedded",
      "server",  "client",  "data",    "code",    "system",  "power",
      "dynamic", "binary",  "rewrite", "miss",    "hit",     "block",
      "signal",  "sample",  "packet",  "channel", "node",    "remote",
      "measure", "process", "filter",  "update",  "state",   "energy",
  };
  constexpr int kNumWords = static_cast<int>(std::size(kWords));
  util::Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(bytes);
  int words_on_line = 0;
  while (out.size() < bytes) {
    const char* word = kWords[rng.Below(kNumWords)];
    // Repetition: sometimes reuse the previous word (compressible).
    for (const char* p = word; *p != '\0'; ++p) out.push_back(static_cast<uint8_t>(*p));
    ++words_on_line;
    if (rng.Chance(1, 12)) out.push_back('.');
    if (words_on_line >= 10) {
      out.push_back('\n');
      words_on_line = 0;
    } else {
      out.push_back(' ');
    }
  }
  out.resize(bytes);
  return out;
}

std::vector<uint8_t> MakeCompressInput(uint8_t mode, uint32_t bytes, uint64_t seed) {
  std::vector<uint8_t> out;
  out.push_back(mode);
  PutU32(out, bytes);
  const std::vector<uint8_t> text = MakeTextCorpus(bytes, seed);
  out.insert(out.end(), text.begin(), text.end());
  return out;
}

std::vector<uint8_t> MakeAdpcmPcmInput(uint32_t samples, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<uint8_t> out;
  PutU32(out, samples);
  // Audio-like: two sine components plus noise, slowly varying amplitude.
  double phase1 = 0.0;
  double phase2 = 0.3;
  for (uint32_t i = 0; i < samples; ++i) {
    const double amp = 6000.0 + 4000.0 * std::sin(static_cast<double>(i) / 2000.0);
    const double value = amp * std::sin(phase1) + 0.35 * amp * std::sin(phase2) +
                         (rng.NextDouble() - 0.5) * 600.0;
    phase1 += 0.05 + 0.01 * std::sin(static_cast<double>(i) / 500.0);
    phase2 += 0.13;
    const int32_t sample = std::clamp(static_cast<int32_t>(value), -32768, 32767);
    PutU16(out, static_cast<uint32_t>(sample) & 0xffff);
  }
  return out;
}

namespace {

// Host-side replica of the MiniC IMA ADPCM encoder, used only to produce
// valid code streams for the decoder workload.
class HostAdpcmEncoder {
 public:
  int Encode(int sample) {
    static const int kStep[89] = {
        7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
        19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
        50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
        130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
        337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
        876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
        2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
        5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
        15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
    static const int kIndex[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                   -1, -1, -1, -1, 2, 4, 6, 8};
    const int step = kStep[index_];
    int diff = sample - pred_;
    int code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    if (diff >= step) {
      code |= 4;
      diff -= step;
    }
    if (diff >= (step >> 1)) {
      code |= 2;
      diff -= step >> 1;
    }
    if (diff >= (step >> 2)) code |= 1;
    int diffq = step >> 3;
    if (code & 4) diffq += step;
    if (code & 2) diffq += step >> 1;
    if (code & 1) diffq += step >> 2;
    pred_ = (code & 8) ? pred_ - diffq : pred_ + diffq;
    pred_ = std::clamp(pred_, -32768, 32767);
    index_ = std::clamp(index_ + kIndex[code], 0, 88);
    return code;
  }

 private:
  int pred_ = 0;
  int index_ = 0;
};

}  // namespace

std::vector<uint8_t> MakeAdpcmCodeInput(uint32_t samples, uint64_t seed) {
  const std::vector<uint8_t> pcm = MakeAdpcmPcmInput(samples, seed);
  HostAdpcmEncoder encoder;
  std::vector<uint8_t> out;
  PutU32(out, samples);
  int pending = -1;
  for (uint32_t i = 0; i < samples; ++i) {
    const size_t off = 4 + static_cast<size_t>(i) * 2;
    int sample = pcm[off] | (pcm[off + 1] << 8);
    if (sample >= 0x8000) sample -= 0x10000;
    const int code = encoder.Encode(sample);
    if (pending < 0) {
      pending = code;
    } else {
      out.push_back(static_cast<uint8_t>(pending | (code << 4)));
      pending = -1;
    }
  }
  if (pending >= 0) out.push_back(static_cast<uint8_t>(pending));
  return out;
}

std::vector<uint8_t> MakeGzipInput(uint8_t mode, uint32_t bytes, uint64_t seed) {
  SC_CHECK_LE(bytes, 65536u);
  std::vector<uint8_t> out;
  out.push_back(mode);
  PutU32(out, bytes);
  const std::vector<uint8_t> text = MakeTextCorpus(bytes, seed);
  out.insert(out.end(), text.begin(), text.end());
  return out;
}

std::vector<uint8_t> MakeCjpegInput(uint32_t width, uint32_t height,
                                    uint8_t quality, uint64_t seed) {
  SC_CHECK_LE(width * height, 65536u);
  util::Rng rng(seed);
  std::vector<uint8_t> out;
  PutU16(out, width);
  PutU16(out, height);
  out.push_back(quality);
  // Synthetic photo: smooth gradients, a few rectangles and disks, noise.
  std::vector<uint8_t> img(static_cast<size_t>(width) * height);
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      double v = 96.0 + 64.0 * std::sin(static_cast<double>(x) / 23.0) +
                 48.0 * std::cos(static_cast<double>(y) / 17.0);
      img[y * width + x] = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  for (int shape = 0; shape < 12; ++shape) {
    const uint32_t cx = static_cast<uint32_t>(rng.Below(width));
    const uint32_t cy = static_cast<uint32_t>(rng.Below(height));
    const uint32_t r = 4 + static_cast<uint32_t>(rng.Below(width / 6 + 1));
    const uint8_t level = static_cast<uint8_t>(rng.Below(256));
    for (uint32_t y = (cy > r ? cy - r : 0); y < std::min(height, cy + r); ++y) {
      for (uint32_t x = (cx > r ? cx - r : 0); x < std::min(width, cx + r); ++x) {
        const int64_t dx = static_cast<int64_t>(x) - cx;
        const int64_t dy = static_cast<int64_t>(y) - cy;
        if (dx * dx + dy * dy <= static_cast<int64_t>(r) * r) {
          img[y * width + x] = level;
        }
      }
    }
  }
  for (auto& px : img) {
    const int noisy = px + static_cast<int>(rng.Below(9)) - 4;
    px = static_cast<uint8_t>(std::clamp(noisy, 0, 255));
  }
  out.insert(out.end(), img.begin(), img.end());
  return out;
}

std::vector<uint8_t> MakeMpegInput(uint32_t width, uint32_t height,
                                   uint8_t frames, uint64_t seed) {
  SC_CHECK_LE(width * height, 16384u);
  util::Rng rng(seed);
  std::vector<uint8_t> out;
  PutU16(out, width);
  PutU16(out, height);
  out.push_back(frames);
  // A textured background with moving blobs: later frames are shifted
  // versions so motion estimation has real matches to find.
  std::vector<uint8_t> base(static_cast<size_t>(width) * height);
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      base[y * width + x] = static_cast<uint8_t>(
          128 + 60 * std::sin(x / 7.0) * std::cos(y / 9.0) +
          static_cast<int>(rng.Below(13)) - 6);
    }
  }
  for (uint8_t f = 0; f < frames; ++f) {
    const int shift_x = (f * 3) % 8;
    const int shift_y = (f * 2) % 6;
    for (uint32_t y = 0; y < height; ++y) {
      for (uint32_t x = 0; x < width; ++x) {
        const uint32_t sx = (x + shift_x) % width;
        const uint32_t sy = (y + shift_y) % height;
        int v = base[sy * width + sx];
        // A moving bright square (new content every frame).
        const uint32_t bx = (f * 11) % (width - 8);
        const uint32_t by = (f * 7) % (height - 8);
        if (x >= bx && x < bx + 8 && y >= by && y < by + 8) v = 230;
        out.push_back(static_cast<uint8_t>(v));
      }
    }
  }
  return out;
}

std::vector<uint8_t> MakeHextobddInput(uint8_t nvars, uint8_t nfuncs, uint64_t seed) {
  SC_CHECK_GE(nvars, 2);
  SC_CHECK_LE(nvars, 12);
  util::Rng rng(seed);
  std::vector<uint8_t> out;
  out.push_back(nvars);
  out.push_back(nfuncs);
  const uint32_t hex_chars = (1u << nvars) / 4;
  static const char kHex[] = "0123456789abcdef";
  for (uint8_t f = 0; f < nfuncs; ++f) {
    // Structured functions (not pure noise) so the BDDs stay reduced:
    // threshold/parity/interval mixtures over the assignment index.
    const int kind = static_cast<int>(rng.Below(4));
    const uint32_t param = rng.Next32();
    for (uint32_t i = 0; i < hex_chars; ++i) {
      int digit = 0;
      for (int bit = 0; bit < 4; ++bit) {
        const uint32_t index = i * 4 + static_cast<uint32_t>(bit);
        bool value = false;
        switch (kind) {
          case 0: value = (index & (param | 1u)) != 0; break;                 // OR mask
          case 1: value = __builtin_popcount(index ^ param) % 2 == 0; break;  // parity
          case 2: value = index > (param % (1u << nvars)); break;             // threshold
          default: value = ((index * 2654435761u) ^ param) % 5 < 2; break;    // pseudo
        }
        digit = (digit << 1) | (value ? 1 : 0);
      }
      out.push_back(static_cast<uint8_t>(kHex[digit]));
    }
  }
  return out;
}

std::vector<uint8_t> MakeSha256Input(uint32_t bytes, uint64_t seed) {
  std::vector<uint8_t> out;
  PutU32(out, bytes);
  const std::vector<uint8_t> payload = MakeTextCorpus(bytes, seed);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<uint8_t> MakeDijkstraInput(uint8_t nodes, uint8_t queries, uint64_t seed) {
  SC_CHECK_GE(nodes, 2);
  util::Rng rng(seed);
  std::vector<uint8_t> out;
  out.push_back(nodes);
  out.push_back(queries);
  // Sparse random mesh: each node links to ~4 neighbours with weights 1-50.
  std::vector<uint8_t> adj(static_cast<size_t>(nodes) * nodes, 0);
  for (uint32_t n = 0; n < nodes; ++n) {
    // A ring edge keeps the graph mostly connected.
    const uint32_t next = (n + 1) % nodes;
    const uint8_t w = static_cast<uint8_t>(1 + rng.Below(50));
    adj[n * nodes + next] = w;
    adj[next * nodes + n] = w;
    for (int extra = 0; extra < 3; ++extra) {
      const uint32_t peer = static_cast<uint32_t>(rng.Below(nodes));
      if (peer == n) continue;
      const uint8_t pw = static_cast<uint8_t>(1 + rng.Below(50));
      adj[n * nodes + peer] = pw;
      adj[peer * nodes + n] = pw;
    }
  }
  out.insert(out.end(), adj.begin(), adj.end());
  for (uint8_t q = 0; q < queries; ++q) {
    out.push_back(static_cast<uint8_t>(rng.Below(nodes)));
    out.push_back(static_cast<uint8_t>(rng.Below(nodes)));
  }
  return out;
}

std::vector<uint8_t> MakeInput(const std::string& workload_name, int scale,
                               uint64_t seed) {
  SC_CHECK_GE(scale, 1);
  const uint32_t s = static_cast<uint32_t>(scale);
  if (workload_name == "compress95") {
    return MakeCompressInput(0, 20'000 * s, seed);
  }
  if (workload_name == "adpcm_enc") return MakeAdpcmPcmInput(8'000 * s, seed);
  if (workload_name == "adpcm_dec") return MakeAdpcmCodeInput(16'000 * s, seed);
  if (workload_name == "gzip") {
    return MakeGzipInput(0, std::min(65536u, 16'000 * s), seed);
  }
  if (workload_name == "cjpeg") {
    const uint32_t dim = std::min(248u, 96u + 24u * s);
    return MakeCjpegInput(dim, dim, 75, seed);
  }
  if (workload_name == "mpeg2enc") {
    return MakeMpegInput(96, 64, static_cast<uint8_t>(std::min(30u, 2u + s)), seed);
  }
  if (workload_name == "sha256") return MakeSha256Input(40'000 * s, seed);
  if (workload_name == "dijkstra") {
    return MakeDijkstraInput(static_cast<uint8_t>(std::min(120u, 40u + 20u * s)),
                             static_cast<uint8_t>(std::min(60u, 8u * s)), seed);
  }
  if (workload_name == "hextobdd") {
    return MakeHextobddInput(static_cast<uint8_t>(std::min(11u, 7u + s / 2)),
                             static_cast<uint8_t>(std::min(48u, 10u + 6u * s)), seed);
  }
  SC_UNREACHABLE() << "unknown workload " << workload_name;
  return {};
}

}  // namespace sc::workloads
