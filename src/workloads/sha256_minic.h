// SHA-256 in MiniC: integrity hashing for sensor payloads (heavy uint
// arithmetic, a large constant table, long straight-line rounds — a very
// different instruction mix from the compression codecs).
// Input: [u32 length][bytes...]. Output: the digest in hex + stats.
// No computed jumps: ARM-prototype safe.
#pragma once

#include <string_view>

namespace sc::workloads {

inline constexpr std::string_view kSha256Source = R"MINIC(
uint K[64] = {
  0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
  0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
  0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
  0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
  0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
  0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
  0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
  0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
  0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
  0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
  0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
  0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
  0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
  0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
  0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
  0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2 };

uint H[8];
uint W[64];
char block_buf[64];
int msg_blocks = 0;

uint rotr(uint x, int n) { return (x >> n) | (x << (32 - n)); }

void sha_init() {
  H[0] = 0x6a09e667; H[1] = 0xbb67ae85; H[2] = 0x3c6ef372; H[3] = 0xa54ff53a;
  H[4] = 0x510e527f; H[5] = 0x9b05688c; H[6] = 0x1f83d9ab; H[7] = 0x5be0cd19;
}

void sha_block() {
  int t;
  for (t = 0; t < 16; t++) {
    W[t] = ((uint)block_buf[t * 4] << 24) | ((uint)block_buf[t * 4 + 1] << 16) |
           ((uint)block_buf[t * 4 + 2] << 8) | (uint)block_buf[t * 4 + 3];
  }
  for (t = 16; t < 64; t++) {
    uint s0 = rotr(W[t - 15], 7) ^ rotr(W[t - 15], 18) ^ (W[t - 15] >> 3);
    uint s1 = rotr(W[t - 2], 17) ^ rotr(W[t - 2], 19) ^ (W[t - 2] >> 10);
    W[t] = W[t - 16] + s0 + W[t - 7] + s1;
  }
  uint a = H[0]; uint b = H[1]; uint c = H[2]; uint d = H[3];
  uint e = H[4]; uint f = H[5]; uint g = H[6]; uint h = H[7];
  for (t = 0; t < 64; t++) {
    uint S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    uint ch = (e & f) ^ ((~e) & g);
    uint temp1 = h + S1 + ch + K[t] + W[t];
    uint S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    uint maj = (a & b) ^ (a & c) ^ (b & c);
    uint temp2 = S0 + maj;
    h = g; g = f; f = e; e = d + temp1;
    d = c; c = b; b = a; a = temp1 + temp2;
  }
  H[0] += a; H[1] += b; H[2] += c; H[3] += d;
  H[4] += e; H[5] += f; H[6] += g; H[7] += h;
  msg_blocks++;
}

int read_u32() {
  char b[4];
  if (read_bytes(b, 4) != 4) return -1;
  return (int)b[0] | ((int)b[1] << 8) | ((int)b[2] << 16) | ((int)b[3] << 24);
}

void fail_input(char *why) {
  print_str("sha256: ");
  print_str(why);
  print_nl();
  exit(2);
}

int main() {
  int length = read_u32();
  if (length < 0) fail_input("missing header");
  sha_init();
  int remaining = length;
  while (remaining >= 64) {
    if (read_bytes(block_buf, 64) != 64) fail_input("truncated data");
    sha_block();
    remaining -= 64;
  }
  /* final block(s) with padding */
  int tail = read_bytes(block_buf, remaining);
  if (tail != remaining) fail_input("truncated tail");
  block_buf[remaining] = (char)0x80;
  {
    int i;
    for (i = remaining + 1; i < 64; i++) block_buf[i] = 0;
    if (remaining + 1 > 56) {
      sha_block();
      for (i = 0; i < 64; i++) block_buf[i] = 0;
    }
    /* 64-bit big-endian bit length (length < 2^29 so the low word is enough) */
    {
      uint bits = (uint)length * 8;
      block_buf[60] = (char)((bits >> 24) & 255);
      block_buf[61] = (char)((bits >> 16) & 255);
      block_buf[62] = (char)((bits >> 8) & 255);
      block_buf[63] = (char)(bits & 255);
    }
    sha_block();
  }
  {
    int i;
    for (i = 0; i < 8; i++) print_hex(H[i]);
  }
  print_nl();
  print_str("== sha256 stats ==");
  print_nl();
  print_str("bytes:  ");
  print_int(length);
  print_nl();
  print_str("blocks: ");
  print_int(msg_blocks);
  print_nl();
  return (int)(H[0] & 127);
}
)MINIC";

}  // namespace sc::workloads
