// Benchmark workload registry.
//
// Seven MiniC programs mirror the paper's benchmark set:
//   compress95  — LZW compression            (SPEC CPU95 129.compress)
//   adpcm_enc   — IMA ADPCM encoder          (MediaBench adpcmenc)
//   adpcm_dec   — IMA ADPCM decoder          (MediaBench adpcmdec)
//   gzip        — LZSS compression           (gzip)
//   cjpeg       — DCT image encoder          (MediaBench cjpeg)
//   mpeg2enc    — motion-estimation encoder  (mpeg2enc)
//   hextobdd    — BDD graph package          (local hextobdd application)
//
// Each workload has a deterministic input generator parameterized by a
// scale factor (1 = quick test, larger = benchmark length) and a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "image/image.h"

namespace sc::workloads {

struct WorkloadSpec {
  std::string name;
  std::string source;  // complete MiniC program
  // True when the program contains no computed jumps (dense switches or
  // function pointers) and can run under the ARM-style prototype.
  bool arm_safe = false;
};

// All registered workloads, in Table 1 order (compress, adpcm, hextobdd,
// mpeg2enc) followed by the ARM-prototype set additions (gzip, cjpeg) and
// two extra sensor-flavoured kernels (sha256, dijkstra) that are not part
// of the paper's benchmark set but round out the library.
const std::vector<WorkloadSpec>& AllWorkloads();
const WorkloadSpec* FindWorkload(const std::string& name);

// Compiles a workload (SC_CHECK-fails on compiler errors: the sources are
// part of the repository and must always build).
image::Image CompileWorkload(const WorkloadSpec& spec);

// Deterministic inputs. `scale` grows the input roughly linearly.
std::vector<uint8_t> MakeInput(const std::string& workload_name, int scale,
                               uint64_t seed = 1);

// Individual generators (exposed for tests).
std::vector<uint8_t> MakeTextCorpus(uint32_t bytes, uint64_t seed);
std::vector<uint8_t> MakeCompressInput(uint8_t mode, uint32_t bytes, uint64_t seed);
std::vector<uint8_t> MakeAdpcmPcmInput(uint32_t samples, uint64_t seed);
std::vector<uint8_t> MakeAdpcmCodeInput(uint32_t samples, uint64_t seed);
std::vector<uint8_t> MakeGzipInput(uint8_t mode, uint32_t bytes, uint64_t seed);
std::vector<uint8_t> MakeCjpegInput(uint32_t width, uint32_t height,
                                    uint8_t quality, uint64_t seed);
std::vector<uint8_t> MakeMpegInput(uint32_t width, uint32_t height,
                                   uint8_t frames, uint64_t seed);
std::vector<uint8_t> MakeHextobddInput(uint8_t nvars, uint8_t nfuncs, uint64_t seed);
std::vector<uint8_t> MakeSha256Input(uint32_t bytes, uint64_t seed);
std::vector<uint8_t> MakeDijkstraInput(uint8_t nodes, uint8_t queries, uint64_t seed);

}  // namespace sc::workloads
