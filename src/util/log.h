// Leveled logging. Off by default so benchmark output stays clean;
// enable with sc::util::SetLogLevel or the SOFTCACHE_LOG env variable
// (0=off, 1=info, 2=debug, 3=trace).
#pragma once

#include <sstream>
#include <string>

namespace sc::util {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& line);

namespace internal {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace sc::util

#define SC_LOG(level)                                       \
  if (!::sc::util::LogEnabled(::sc::util::LogLevel::level)) \
    ;                                                       \
  else                                                      \
    ::sc::util::internal::LogStream(::sc::util::LogLevel::level)
