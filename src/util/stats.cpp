#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace sc::util {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::min() const {
  SC_CHECK_GT(count_, 0u);
  return min_;
}

double Accumulator::max() const {
  SC_CHECK_GT(count_, 0u);
  return max_;
}

double Accumulator::mean() const {
  SC_CHECK_GT(count_, 0u);
  return mean_;
}

double Accumulator::variance() const {
  SC_CHECK_GT(count_, 0u);
  return m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  SC_CHECK_LT(lo, hi);
  SC_CHECK_GT(buckets, 0);
  counts_.resize(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  const double span = hi_ - lo_;
  int i = static_cast<int>((x - lo_) / span * static_cast<double>(counts_.size()));
  i = std::clamp(i, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

double Histogram::bucket_low(int i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(total_);
  uint64_t cumulative = 0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t count = counts_[i];
    if (count == 0) continue;
    if (static_cast<double>(cumulative + count) >= rank) {
      // Interpolate within this bucket by the fraction of rank it covers.
      const double into =
          std::clamp((rank - static_cast<double>(cumulative)) /
                         static_cast<double>(count),
                     0.0, 1.0);
      return lo_ + width * (static_cast<double>(i) + into);
    }
    cumulative += count;
  }
  return hi_;
}

std::string Histogram::ToAscii(int max_width) const {
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (int i = 0; i < buckets(); ++i) {
    const int width =
        static_cast<int>(static_cast<double>(counts_[static_cast<size_t>(i)]) /
                         static_cast<double>(peak) * max_width);
    std::snprintf(line, sizeof line, "%10.3f | ", bucket_low(i));
    out += line;
    out.append(static_cast<size_t>(width), '#');
    std::snprintf(line, sizeof line, " %llu\n",
                  static_cast<unsigned long long>(counts_[static_cast<size_t>(i)]));
    out += line;
  }
  return out;
}

std::string WithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  const int len = static_cast<int>(digits.size());
  for (int i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ',';
    out += digits[static_cast<size_t>(i)];
  }
  return out;
}

std::string HumanBytes(uint64_t n) {
  char buf[64];
  if (n < 1024) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(n));
  } else if (n < 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(n) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f MB", static_cast<double>(n) / (1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace sc::util
