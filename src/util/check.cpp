#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace sc::util {

void FatalError(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[softcache fatal] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace sc::util
