// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic pieces of the repository (workload input generators,
// property-test program generators) draw from this generator with explicit
// seeds so every experiment regenerates bit-identically. std::mt19937 is
// avoided only to guarantee cross-platform stability of the stream.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace sc::util {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    SC_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const uint64_t r = Next64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    SC_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next64() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace sc::util
