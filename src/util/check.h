// Assertion and fatal-error helpers.
//
// SC_CHECK is for programming errors (violated invariants inside this
// library); it is always on, regardless of NDEBUG, because a simulator that
// silently continues past a broken invariant produces wrong science.
// User-level errors (bad assembly, bad MiniC source, malformed images) are
// reported through sc::util::Error / Result instead and never abort.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace sc::util {

// Prints `message` (with file:line) to stderr and aborts.
[[noreturn]] void FatalError(const char* file, int line, const std::string& message);

namespace internal {
// Accumulates a message via operator<< then aborts in the destructor.
class FatalStream {
 public:
  FatalStream(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalStream() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  FatalStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace sc::util

#define SC_CHECK(cond)                                              \
  if (cond) {                                                       \
  } else                                                            \
    ::sc::util::internal::FatalStream(__FILE__, __LINE__)           \
        << "SC_CHECK failed: " #cond " "

#define SC_CHECK_EQ(a, b) SC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SC_CHECK_NE(a, b) SC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SC_CHECK_LT(a, b) SC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SC_CHECK_LE(a, b) SC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SC_CHECK_GT(a, b) SC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SC_CHECK_GE(a, b) SC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define SC_UNREACHABLE() \
  ::sc::util::internal::FatalStream(__FILE__, __LINE__) << "unreachable: "
