#include "util/result.h"

#include <sstream>

namespace sc::util {

std::string Error::ToString() const {
  std::ostringstream out;
  if (!file.empty()) {
    out << file << ":";
    if (line > 0) {
      out << line << ":";
      if (column > 0) out << column << ":";
    }
    out << " ";
  }
  out << message;
  return out.str();
}

}  // namespace sc::util
