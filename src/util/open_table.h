// A small open-addressed hash table (linear probing, power-of-two capacity,
// backward-shift deletion) for the softcache's hot lookup paths.
//
// The resolve path of the cache controller performs a map lookup on every
// TCMISS and every invariant check; std::unordered_map pays a heap node per
// entry and a modulo per probe. This table keeps all slots in one flat
// vector sized up front (the caller knows the worst case: blocks per tcache,
// cells per cell region), probes with a mask, and erases without tombstones
// so lookups never degrade over time. Not a general container: keys must be
// trivially copyable integers and values trivially destructible enough to
// move around (both true for the id/address maps it replaces).
#pragma once

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace sc::util {

template <typename Key, typename Value>
class OpenTable {
 public:
  // `expected` is the anticipated number of live entries; the table is sized
  // so that holding `expected` keys stays under the resize load factor. It
  // still grows if the estimate is exceeded.
  explicit OpenTable(size_t expected = 16) {
    size_t capacity = 16;
    while (capacity * kMaxLoadNum < expected * kMaxLoadDen) capacity *= 2;
    slots_.resize(capacity);
    mask_ = capacity - 1;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Value* Find(Key key) {
    size_t i = Probe(key);
    return slots_[i].full ? &slots_[i].value : nullptr;
  }
  const Value* Find(Key key) const {
    size_t i = Probe(key);
    return slots_[i].full ? &slots_[i].value : nullptr;
  }
  bool Contains(Key key) const { return Find(key) != nullptr; }

  // Returns the value for `key`, SC_CHECK-failing when absent (the
  // std::map::at contract the call sites relied on).
  const Value& At(Key key) const {
    const Value* v = Find(key);
    SC_CHECK(v != nullptr) << "OpenTable::At: missing key";
    return *v;
  }

  // Inserts or overwrites.
  void Put(Key key, Value value) {
    if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) Grow();
    size_t i = Probe(key);
    if (!slots_[i].full) {
      slots_[i].full = true;
      slots_[i].key = key;
      ++size_;
    }
    slots_[i].value = std::move(value);
  }

  // Removes `key` if present. Backward-shift deletion: subsequent displaced
  // entries in the probe chain are moved up so no tombstones accumulate.
  bool Erase(Key key) {
    size_t i = Probe(key);
    if (!slots_[i].full) return false;
    size_t hole = i;
    size_t j = (i + 1) & mask_;
    while (slots_[j].full) {
      const size_t home = Hash(slots_[j].key) & mask_;
      // Move slot j into the hole if its home position does not sit strictly
      // between the hole and j (cyclically) — the standard Robin-Hood /
      // backward-shift condition.
      const bool between = ((j - home) & mask_) >= ((j - hole) & mask_);
      if (between) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].full = false;
    slots_[hole].value = Value{};
    --size_;
    return true;
  }

  // Visits every (key, value) pair in unspecified (but deterministic) order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.full) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool full = false;
  };

  // Resize threshold 7/8: probes stay short while wasting little memory.
  static constexpr size_t kMaxLoadNum = 7;
  static constexpr size_t kMaxLoadDen = 8;

  static size_t Hash(Key key) {
    // splitmix64 finalizer: cheap and well-distributed for the dense ids and
    // word-aligned addresses used as keys.
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  // Index of `key`'s slot if present, else of the empty slot to insert at.
  size_t Probe(Key key) const {
    size_t i = Hash(key) & mask_;
    while (slots_[i].full && slots_[i].key != key) i = (i + 1) & mask_;
    return i;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.full) Put(slot.key, std::move(slot.value));
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace sc::util
