// Small statistics helpers shared by benchmarks and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sc::util {

// Streaming accumulator for count/min/max/mean/variance (Welford).
class Accumulator {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
};

// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket. Used for eviction-rate timelines and latency spreads.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  uint64_t bucket_count(int i) const { return counts_.at(i); }
  int buckets() const { return static_cast<int>(counts_.size()); }
  double bucket_low(int i) const;
  uint64_t total() const { return total_; }

  // Value at percentile p (0..100), linearly interpolated inside the bucket
  // where the cumulative count crosses p% of total. Returns lo for an empty
  // histogram. Samples clamped into the first/last bucket bound the result
  // by the histogram range, as with any fixed-bucket estimate.
  double Percentile(double p) const;

  // Renders a compact ASCII bar chart, one bucket per line.
  std::string ToAscii(int max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Formats n with thousands separators ("12,345,678") for report tables.
std::string WithCommas(uint64_t n);

// Formats a byte count with a human unit ("24.0 KB").
std::string HumanBytes(uint64_t n);

}  // namespace sc::util
