// Result<T>: value-or-error return type for user-level failures.
//
// Used by the assembler, compiler, image loader and protocol decoders, where
// failure is an expected outcome of bad input rather than a bug. Library
// invariant violations use SC_CHECK instead (see check.h).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace sc::util {

// A user-facing error: message plus an optional source location
// (file/line/column used by the assembler and MiniC front end).
struct Error {
  std::string message;
  std::string file;
  int line = 0;
  int column = 0;

  // Renders "file:line:col: message" (omitting unset parts).
  std::string ToString() const;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : value_(std::move(error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    SC_CHECK(ok()) << error().ToString();
    return std::get<T>(value_);
  }
  T& value() & {
    SC_CHECK(ok()) << error().ToString();
    return std::get<T>(value_);
  }
  T&& value() && {
    SC_CHECK(ok()) << error().ToString();
    return std::get<T>(std::move(value_));
  }

  const Error& error() const {
    SC_CHECK(!ok());
    return std::get<Error>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> value_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    SC_CHECK(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace sc::util
