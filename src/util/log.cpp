#include "util/log.h"

#include <cstdio>
#include <cstdlib>

namespace sc::util {
namespace {

LogLevel ReadInitialLevel() {
  if (const char* env = std::getenv("SOFTCACHE_LOG")) {
    const int v = std::atoi(env);
    if (v >= 0 && v <= 3) return static_cast<LogLevel>(v);
  }
  return LogLevel::kOff;
}

LogLevel g_level = ReadInitialLevel();

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(g_level) &&
         level != LogLevel::kOff;
}

void LogLine(LogLevel level, const std::string& line) {
  static const char* const kNames[] = {"off", "info", "debug", "trace"};
  std::fprintf(stderr, "[sc:%s] %s\n", kNames[static_cast<int>(level)], line.c_str());
}

}  // namespace sc::util
