// Pluggable datagram transport between cache controller and memory
// controller.
//
// The Channel remains the pure cost model; a Transport adds *delivery
// semantics* on top of it. LoopbackTransport preserves the historical
// behavior — every frame arrives intact, immediately, exactly once, so it is
// a function call with cycle accounting and reproduces the reliable-link
// numbers bit for bit. FaultyTransport injects deterministic, seeded faults
// (drop, single-bit corruption, duplication, extra delay) on the serialized
// frames in both directions, which turns the protocol's checksum/seq fields
// from decoration into load-bearing code. Receivers see raw datagram
// semantics: a frame may arrive zero, one or two times, possibly corrupted,
// possibly stale; recovering is the reliability layer's job
// (softcache::ReliableLink — timeout, bounded retransmission, exponential
// backoff, strict seq matching).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "net/fault_schedule.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace sc::net {

// Serialized request frame in, serialized reply frame out — the server's
// Handle() entry point, kept opaque so transports never parse frames.
using FrameHandler =
    std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

// Fault-injection knobs. All probabilities are per frame copy and per
// direction; the stream is fully determined by `seed`, so any run with an
// equal config replays bit-identically.
struct FaultConfig {
  uint64_t seed = 1;
  double drop = 0.0;       // P(frame lost in flight)
  double corrupt = 0.0;    // P(one random bit flipped)
  double duplicate = 0.0;  // P(frame delivered twice)
  double delay = 0.0;      // P(reply delivery delayed by delay_cycles)
  uint64_t delay_cycles = 5'000;

  // Crash schedules: each knob makes the server "process" die (its crash
  // handler fires — for the MC that is Restart()) as a request arrives; the
  // triggering request is lost with it, so the client sees a timeout and
  // retransmits into the restarted server. `crash` is a per-arrival
  // probability; `crash_after_requests` crashes once on the Nth arrival;
  // `crash_period` crashes on every Nth arrival; `crash_at_cycle` crashes
  // once at the first arrival at/after guest cycle C (needs a cycle source,
  // wired by SoftCacheSystem). All compose; seeded, so schedules replay
  // bit-identically.
  double crash = 0.0;
  uint64_t crash_after_requests = 0;
  uint64_t crash_period = 0;
  uint64_t crash_at_cycle = 0;

  bool crash_enabled() const {
    return crash > 0 || crash_after_requests > 0 || crash_period > 0 ||
           crash_at_cycle > 0;
  }
  bool enabled() const {
    return drop > 0 || corrupt > 0 || duplicate > 0 || delay > 0 ||
           crash_enabled();
  }
};

struct TransportStats {
  uint64_t frames_sent = 0;       // client->server submissions
  uint64_t frames_delivered = 0;  // frames handed to the client by Recv
  uint64_t frames_dropped = 0;    // lost copies, both directions
  uint64_t frames_corrupted = 0;  // bit-flipped copies, both directions
  uint64_t frames_duplicated = 0; // duplicated copies, both directions
  uint64_t frames_delayed = 0;    // delayed reply deliveries
  uint64_t server_crashes = 0;    // crash-schedule firings (server restarts)
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Transmits one serialized request frame toward the server. Returns the
  // client-visible cycle cost of the transmission. Whether (and how many
  // times, and how intact) the frame reaches the server is up to the
  // implementation.
  virtual uint64_t Send(const std::vector<uint8_t>& frame) = 0;

  // Delivers the next frame addressed to the client, if one is pending.
  // Returns false when nothing is in flight — with these synchronous
  // transports that means nothing will ever arrive for the outstanding
  // request, i.e. the caller's timeout fires. On success `cycles` holds the
  // client-visible delivery cost.
  virtual bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) = 0;

  virtual const TransportStats& stats() const = 0;

  // Optional guest-cycle source for cycle-triggered crash schedules; a
  // transport without crash support ignores it.
  virtual void set_cycle_source(const uint64_t*) {}
};

// The reliable link: zero-copy, in-order, exactly-once. Charges the channel
// in the same order as the historical direct-call path (request bytes at
// Send, reply bytes at Recv), so cost accounting is unchanged.
class LoopbackTransport : public Transport {
 public:
  LoopbackTransport(Channel& channel, FrameHandler handler)
      : channel_(channel), handler_(std::move(handler)) {}

  uint64_t Send(const std::vector<uint8_t>& frame) override {
    ++stats_.frames_sent;
    OBS_INSTANT("net", "tx", "bytes", static_cast<uint64_t>(frame.size()));
    const uint64_t cycles = channel_.SendToServer(frame.size());
    inbox_.push_back(handler_(frame));
    return cycles;
  }

  bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override {
    if (inbox_.empty()) return false;
    *frame = std::move(inbox_.front());
    inbox_.pop_front();
    *cycles = channel_.SendToClient(frame->size());
    ++stats_.frames_delivered;
    OBS_INSTANT("net", "rx", "bytes", static_cast<uint64_t>(frame->size()));
    return true;
  }

  const TransportStats& stats() const override { return stats_; }

 private:
  Channel& channel_;
  FrameHandler handler_;
  std::deque<std::vector<uint8_t>> inbox_;
  TransportStats stats_;
};

// The unreliable link. Fault order per copy: drop, then corrupt, then (for
// replies) delay. Duplication forks an independent copy that rolls its own
// faults, so a duplicated frame can arrive once intact and once corrupted.
// Wire bytes are accounted on the channel for every transmitted copy,
// including copies that are later lost — retransmissions are real traffic,
// which is exactly what the bench_net loss sweep measures.
class FaultyTransport : public Transport {
 public:
  FaultyTransport(Channel& channel, FrameHandler handler,
                  const FaultConfig& config);

  uint64_t Send(const std::vector<uint8_t>& frame) override;
  bool Recv(std::vector<uint8_t>* frame, uint64_t* cycles) override;
  const TransportStats& stats() const override { return stats_; }
  void set_cycle_source(const uint64_t* cycles) override {
    cycle_source_ = cycles;
  }

  // Invoked when a crash schedule fires; the server owner wires this to
  // MemoryController::Restart(). The request that triggered the crash is
  // dropped (the server was down when it arrived).
  void set_crash_handler(std::function<void()> handler) {
    crash_handler_ = std::move(handler);
  }

 private:
  struct Inbound {
    std::vector<uint8_t> frame;
    uint64_t cycles = 0;
  };

  bool Roll(double probability);
  void FlipRandomBit(std::vector<uint8_t>* frame);
  // Evaluates the crash schedules for one request arrival (delegates to the
  // shared net::FaultSchedule evaluator; draw order is unchanged).
  bool ShouldCrash();
  // One request copy crossing the client->server leg.
  void DeliverToServer(const std::vector<uint8_t>& frame);
  // One reply (possibly duplicated) crossing the server->client leg.
  void DeliverToClient(const std::vector<uint8_t>& frame);

  Channel& channel_;
  FrameHandler handler_;
  FaultConfig config_;
  util::Rng rng_;
  std::deque<Inbound> inbox_;
  TransportStats stats_;
  std::function<void()> crash_handler_;
  const uint64_t* cycle_source_ = nullptr;
  // Crash-schedule evaluator state (knobs copied from config_ at
  // construction; `arrived` doubles as the historical requests_arrived_).
  FaultSchedule crash_schedule_;
};

}  // namespace sc::net
