// A frame switch fanning N client transports into one server endpoint.
//
// Each client transport is built over one *port* of the switch: the port's
// FrameHandler forwards the frame to the server handler tagged with the
// port number, and the server (softcache::MemoryController::HandlePort)
// cross-checks the client id embedded in the frame's type word — byte 5 of
// the wire frame, see softcache/protocol.h — against the arrival port, so a
// frame spoofing another client's id is rejected at the demux boundary and
// can never touch that client's session state.
//
// The switch itself is deliberately dumb: no queueing, no arbitration, no
// cost model. Per-port cost and fault injection live in the per-client
// Channel/Transport pair built on top of each port (exactly as in the
// single-client stack), which keeps one client's simulated traffic shaping
// independent of its neighbors'.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/transport.h"
#include "util/check.h"

namespace sc::net {

// The server side of a switch: handles one frame arriving on `port`.
using PortFrameHandler = std::function<std::vector<uint8_t>(
    uint32_t port, const std::vector<uint8_t>& frame)>;

class Switch {
 public:
  // Frames are routed by an 8-bit id, so a switch has at most this many
  // ports (mirrors softcache::kMaxClients without depending on it).
  static constexpr uint32_t kMaxPorts = 256;

  explicit Switch(PortFrameHandler server) : server_(std::move(server)) {
    SC_CHECK(server_ != nullptr);
  }

  // A FrameHandler bound to `port`: every frame sent through it reaches the
  // server tagged with that port number. The returned closure references
  // this switch and must not outlive it.
  FrameHandler Port(uint32_t port) {
    SC_CHECK_LT(port, kMaxPorts);
    if (port >= port_frames_.size()) port_frames_.resize(port + 1, 0);
    return [this, port](const std::vector<uint8_t>& frame) {
      ++frames_switched_;
      ++port_frames_[port];
      return server_(port, frame);
    };
  }

  uint64_t frames_switched() const { return frames_switched_; }
  const uint64_t* frames_switched_counter() const { return &frames_switched_; }
  uint64_t port_frames(uint32_t port) const {
    return port < port_frames_.size() ? port_frames_[port] : 0;
  }
  // Ports a Port() handler has been created for (not all need have traffic).
  size_t ports() const { return port_frames_.size(); }

 private:
  PortFrameHandler server_;
  uint64_t frames_switched_ = 0;
  std::vector<uint64_t> port_frames_;
};

}  // namespace sc::net
