// A frame switch fanning N client transports into one server endpoint.
//
// Each client transport is built over one *port* of the switch: the port's
// FrameHandler forwards the frame to the server handler tagged with the
// port number, and the server (softcache::MemoryController::HandlePort)
// cross-checks the client id embedded in the frame's type word — byte 5 of
// the wire frame, see softcache/protocol.h — against the arrival port, so a
// frame spoofing another client's id is rejected at the demux boundary and
// can never touch that client's session state.
//
// The switch models the shared broadcast medium between the clients and the
// server: it carries no queueing or cost model of its own (per-port cost and
// fault injection live in the per-client Channel/Transport pair built on top
// of each port), but every reply crossing it is visible to an optional
// reply observer — the hook the content-addressed shared-reply path uses to
// let every attached client snoop every body-bearing reply.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "util/check.h"

namespace sc::net {

// The server side of a switch: handles one frame arriving on `port`.
using PortFrameHandler = std::function<std::vector<uint8_t>(
    uint32_t port, const std::vector<uint8_t>& frame)>;

// Observes every (port, request, reply) pair crossing the switch, after the
// server handler produced the reply and before the reply is returned to the
// arrival port — i.e. the instant the reply hits the broadcast medium.
using ReplyObserver = std::function<void(
    uint32_t port, const std::vector<uint8_t>& request,
    const std::vector<uint8_t>& reply)>;

class Switch {
 public:
  // Frames are routed by a 12-bit id, so a switch has at most this many
  // ports (mirrors softcache::kMaxClients without depending on it).
  static constexpr uint32_t kMaxPorts = 4096;

  explicit Switch(PortFrameHandler server) : server_(std::move(server)) {
    SC_CHECK(server_ != nullptr);
  }

  // Non-movable: Port() closures capture `this`, so the switch must stay at
  // one address for as long as any handler it issued is alive.
  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  ~Switch() { alive_ = false; }

  // A FrameHandler bound to `port`: every frame sent through it reaches the
  // server tagged with that port number.
  //
  // Lifetime contract: the returned closure references this switch and must
  // not outlive it. Invoking a handler after the switch is destroyed is
  // checked (not UB-silent) in debug builds via the liveness flag below —
  // transports built over a port must be torn down before the switch.
  FrameHandler Port(uint32_t port) {
    SC_CHECK_LT(port, kMaxPorts);
    // Counter slots are indexed by port number, so creating ports out of
    // order (e.g. Port(5) before Port(2)) grows the vector to cover the
    // highest port seen; `ports_created_` tracks the real creation count
    // separately so it never over-reports on sparse/out-of-order creation.
    if (port >= port_frames_.size()) {
      port_frames_.resize(port + 1, 0);
      port_created_.resize(port + 1, false);
    }
    if (!port_created_[port]) {
      port_created_[port] = true;
      ++ports_created_;
    }
    return [this, port](const std::vector<uint8_t>& frame) {
      SC_CHECK(alive_) << "switch port handler outlived its switch";
      {
        // Port handlers fire on their client's host thread; the counters are
        // shared across ports, so bump them under the counter lock. (The
        // server handler needs no lock here — it provides its own
        // serialization, e.g. the McServerLoop.)
        std::lock_guard<std::mutex> lock(count_mu_);
        ++frames_switched_;
        ++port_frames_[port];
      }
      std::vector<uint8_t> reply = server_(port, frame);
      if (reply_observer_) reply_observer_(port, frame, reply);
      return reply;
    };
  }

  // Installs the broadcast-medium observer (nullptr to clear). Fires on the
  // thread that carried the frame; a multi-threaded caller provides its own
  // synchronization inside the observer.
  void set_reply_observer(ReplyObserver observer) {
    reply_observer_ = std::move(observer);
  }

  uint64_t frames_switched() const {
    std::lock_guard<std::mutex> lock(count_mu_);
    return frames_switched_;
  }
  // Raw pointer for MetricsRegistry: snapshots are taken after the fleet has
  // quiesced (threads joined), so the unlocked read is ordered by the join.
  const uint64_t* frames_switched_counter() const { return &frames_switched_; }
  uint64_t port_frames(uint32_t port) const {
    std::lock_guard<std::mutex> lock(count_mu_);
    return port < port_frames_.size() ? port_frames_[port] : 0;
  }
  // Number of ports a Port() handler has been created for (not all need have
  // traffic). Counts actual creations, independent of creation order.
  size_t ports() const { return ports_created_; }
  // Highest port number created plus one (the counter-vector extent).
  size_t port_span() const { return port_frames_.size(); }

 private:
  PortFrameHandler server_;
  ReplyObserver reply_observer_;
  mutable std::mutex count_mu_;
  uint64_t frames_switched_ = 0;
  std::vector<uint64_t> port_frames_;
  std::vector<bool> port_created_;
  size_t ports_created_ = 0;
  bool alive_ = true;
};

}  // namespace sc::net
