#include "net/transport.h"

namespace sc::net {

FaultyTransport::FaultyTransport(Channel& channel, FrameHandler handler,
                                 const FaultConfig& config)
    : channel_(channel),
      handler_(std::move(handler)),
      config_(config),
      rng_(config.seed) {
  crash_schedule_.rate = config.crash;
  crash_schedule_.after = config.crash_after_requests;
  crash_schedule_.period = config.crash_period;
  crash_schedule_.at_cycle = config.crash_at_cycle;
}

bool FaultyTransport::Roll(double probability) {
  // Zero-probability faults must not consume RNG state, so the stream for
  // (say) a drop-only config does not depend on the other knobs.
  if (probability <= 0.0) return false;
  return rng_.NextDouble() < probability;
}

void FaultyTransport::FlipRandomBit(std::vector<uint8_t>* frame) {
  if (frame->empty()) return;
  const uint64_t bit = rng_.Below(frame->size() * 8);
  (*frame)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

uint64_t FaultyTransport::Send(const std::vector<uint8_t>& frame) {
  ++stats_.frames_sent;
  OBS_INSTANT("net", "tx", "bytes", static_cast<uint64_t>(frame.size()));
  const uint64_t cycles = channel_.SendToServer(frame.size());
  DeliverToServer(frame);
  if (Roll(config_.duplicate)) {
    ++stats_.frames_duplicated;
    channel_.SendToServer(frame.size());  // the duplicate burns wire time too
    DeliverToServer(frame);
  }
  return cycles;
}

bool FaultyTransport::ShouldCrash() {
  return crash_schedule_.Due(rng_, cycle_source_);
}

void FaultyTransport::DeliverToServer(const std::vector<uint8_t>& frame) {
  if (crash_handler_ && config_.crash_enabled() && ShouldCrash()) {
    ++stats_.server_crashes;
    OBS_INSTANT("net", "crash", "arrivals", crash_schedule_.arrived);
    crash_handler_();
    return;  // the server was down; this request died with it
  }
  if (Roll(config_.drop)) {
    ++stats_.frames_dropped;
    OBS_INSTANT("net", "drop", "bytes", static_cast<uint64_t>(frame.size()));
    return;
  }
  std::vector<uint8_t> copy = frame;
  if (Roll(config_.corrupt)) {
    ++stats_.frames_corrupted;
    OBS_INSTANT("net", "corrupt", "bytes", static_cast<uint64_t>(copy.size()));
    FlipRandomBit(&copy);
  }
  DeliverToClient(handler_(copy));
}

void FaultyTransport::DeliverToClient(const std::vector<uint8_t>& frame) {
  int copies = 1;
  if (Roll(config_.duplicate)) {
    ++stats_.frames_duplicated;
    copies = 2;
  }
  for (int c = 0; c < copies; ++c) {
    Inbound in;
    in.frame = frame;
    in.cycles = channel_.SendToClient(frame.size());
    if (Roll(config_.drop)) {
      ++stats_.frames_dropped;
      OBS_INSTANT("net", "drop", "bytes", static_cast<uint64_t>(frame.size()));
      continue;
    }
    if (Roll(config_.corrupt)) {
      ++stats_.frames_corrupted;
      OBS_INSTANT("net", "corrupt",
                  "bytes", static_cast<uint64_t>(in.frame.size()));
      FlipRandomBit(&in.frame);
    }
    if (Roll(config_.delay)) {
      ++stats_.frames_delayed;
      OBS_INSTANT("net", "delay", "extra_cycles", config_.delay_cycles);
      in.cycles += config_.delay_cycles;
    }
    inbox_.push_back(std::move(in));
  }
}

bool FaultyTransport::Recv(std::vector<uint8_t>* frame, uint64_t* cycles) {
  if (inbox_.empty()) return false;
  *frame = std::move(inbox_.front().frame);
  *cycles = inbox_.front().cycles;
  inbox_.pop_front();
  ++stats_.frames_delivered;
  OBS_INSTANT("net", "rx", "bytes", static_cast<uint64_t>(frame->size()));
  return true;
}

}  // namespace sc::net
