// Simulated client<->server message channel.
//
// Stands in for the paper's 10 Mbps Ethernet between the embedded client
// (CC) and the server (MC). The channel is reliable and in-order; what it
// models is *cost*: a fixed per-message latency plus serialization time at a
// configured bandwidth, expressed in client CPU cycles, and exact byte
// accounting for both directions (the paper reports 60 application bytes of
// protocol overhead per chunk — bench_net reproduces that number from this
// accounting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace sc::net {

struct ChannelConfig {
  // Client core clock; the paper's ARM prototype is a 200 MHz SA-110.
  uint64_t clock_hz = 200'000'000;
  // Link bandwidth; the Skiff boards had 10 Mbps Ethernet.
  uint64_t bits_per_second = 10'000'000;
  // Fixed per-message latency (propagation + interrupt + protocol stack),
  // charged once per message.
  uint64_t latency_cycles = 2'000;
};

struct ChannelStats {
  uint64_t messages_to_server = 0;
  uint64_t messages_to_client = 0;
  uint64_t bytes_to_server = 0;
  uint64_t bytes_to_client = 0;
  uint64_t total_cycles = 0;

  uint64_t total_bytes() const { return bytes_to_server + bytes_to_client; }
  uint64_t total_messages() const { return messages_to_server + messages_to_client; }

  // Binds this struct's counters into `registry` under `prefix` (e.g.
  // "net.channel." -> net.channel.bytes_to_server). The struct must outlive
  // the registry.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->RegisterCounter(prefix + "messages_to_server",
                              &messages_to_server);
    registry->RegisterCounter(prefix + "messages_to_client",
                              &messages_to_client);
    registry->RegisterCounter(prefix + "bytes_to_server", &bytes_to_server);
    registry->RegisterCounter(prefix + "bytes_to_client", &bytes_to_client);
    registry->RegisterCounter(prefix + "cycles", &total_cycles);
  }
};

class Channel {
 public:
  explicit Channel(const ChannelConfig& config = {}) : config_(config) {}

  // Cycle cost of moving one `bytes`-long message across the link. The
  // intermediate product (bits * clock_hz) is computed in 128 bits: at the
  // default 200 MHz it overflows uint64_t for payloads past ~11.5 GB, which
  // a hostile or synthetic workload can reach long before the counters
  // themselves wrap (regression-tested in tests/net_test.cpp).
  uint64_t CyclesFor(uint64_t bytes) const {
    SC_CHECK_GT(config_.bits_per_second, 0u);
    const unsigned __int128 bits =
        static_cast<unsigned __int128>(bytes) * 8 * config_.clock_hz;
    const uint64_t wire_cycles = static_cast<uint64_t>(
        (bits + config_.bits_per_second - 1) / config_.bits_per_second);
    return config_.latency_cycles + wire_cycles;
  }

  // Accounts for a client->server message and returns its cycle cost.
  uint64_t SendToServer(uint64_t bytes) {
    ++stats_.messages_to_server;
    stats_.bytes_to_server += bytes;
    const uint64_t cycles = CyclesFor(bytes);
    stats_.total_cycles += cycles;
    return cycles;
  }

  // Accounts for a server->client message and returns its cycle cost.
  uint64_t SendToClient(uint64_t bytes) {
    ++stats_.messages_to_client;
    stats_.bytes_to_client += bytes;
    const uint64_t cycles = CyclesFor(bytes);
    stats_.total_cycles += cycles;
    return cycles;
  }

  const ChannelStats& stats() const { return stats_; }
  const ChannelConfig& config() const { return config_; }
  void ResetStats() { stats_ = ChannelStats{}; }

 private:
  ChannelConfig config_;
  ChannelStats stats_;
};

}  // namespace sc::net
