// FaultSchedule: the shared deterministic when-to-fire evaluator behind
// every fault injector in the repository.
//
// PR 1 gave the transport seeded per-frame faults; PR 4 added crash
// schedules (rate / after-N / every-Nth / at-cycle); the memory-fault
// injector (softcache/integrity.h) wants the exact same four knobs over a
// different event stream (integrity ticks instead of request arrivals).
// This struct extracts the one evaluation order they all share so the
// schedules stay bit-compatible:
//
//   1. the arrival counter increments;
//   2. `after`  fires once, on the first arrival at/past N;
//   3. `period` fires on every Nth arrival;
//   4. `at_cycle` fires once, on the first arrival at/past guest cycle C
//      (needs a cycle source; silently inert without one);
//   5. `rate` is rolled UNCONDITIONALLY LAST, and a zero rate consumes no
//      RNG state — so the stream of a probabilistic schedule never depends
//      on the deterministic knobs' firings, and vice versa.
//
// FaultyTransport::ShouldCrash delegates here (its historical draw order is
// exactly the above), and MemFaultInjector evaluates one schedule per fault
// domain on an independent RNG stream.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace sc::net {

struct FaultSchedule {
  // Knobs (all zero = never fires).
  double rate = 0.0;       // per-arrival firing probability
  uint64_t after = 0;      // fire once on the first arrival at/past N
  uint64_t period = 0;     // fire on every Nth arrival
  uint64_t at_cycle = 0;   // fire once at the first arrival at/past cycle C

  // State.
  uint64_t arrived = 0;
  bool fired_after = false;
  bool fired_at_cycle = false;

  bool enabled() const {
    return rate > 0 || after > 0 || period > 0 || at_cycle > 0;
  }

  // Zero-probability rolls must not consume RNG state, so the stream for a
  // deterministic-only schedule does not depend on the rate knob.
  static bool Roll(util::Rng& rng, double probability) {
    if (probability <= 0.0) return false;
    return rng.NextDouble() < probability;
  }

  // Evaluates one arrival. `cycle_source` may be null (at_cycle inert).
  bool Due(util::Rng& rng, const uint64_t* cycle_source) {
    ++arrived;
    bool due = false;
    if (after > 0 && !fired_after && arrived >= after) {
      fired_after = true;
      due = true;
    }
    if (period > 0 && arrived % period == 0) due = true;
    if (at_cycle > 0 && !fired_at_cycle && cycle_source != nullptr &&
        *cycle_source >= at_cycle) {
      fired_at_cycle = true;
      due = true;
    }
    // Rolled unconditionally last; see the evaluation-order contract above.
    if (Roll(rng, rate)) due = true;
    return due;
  }
};

}  // namespace sc::net
