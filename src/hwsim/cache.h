// Trace-driven hardware cache model.
//
// The Figure 6 baseline is a direct-mapped L1 instruction cache with 16-byte
// blocks; the model is generalized to set-associative with LRU so ablation
// benches can sweep associativity. It attaches to the VM as a FetchObserver
// (instruction stream) or can be fed addresses directly (data stream).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "vm/machine.h"

namespace sc::hwsim {

struct CacheConfig {
  uint32_t size_bytes = 8 * 1024;
  uint32_t block_bytes = 16;
  uint32_t associativity = 1;  // 1 = direct-mapped
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  // Accesses `addr`; returns true on hit.
  bool Access(uint32_t addr);

  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return config_; }
  void Reset();

  uint32_t num_sets() const { return num_sets_; }

  // Bits of tag storage required per data bit, for 32-bit addresses: the
  // overhead the Figure 6 caption cites as 11-18%. Includes a valid bit.
  double TagOverheadFraction() const;

 private:
  struct Line {
    uint32_t tag = 0;
    uint64_t last_use = 0;
    bool valid = false;
  };

  CacheConfig config_;
  uint32_t num_sets_;
  uint32_t offset_bits_;
  uint32_t index_bits_;
  std::vector<Line> lines_;  // num_sets * associativity
  CacheStats stats_;
  uint64_t tick_ = 0;
};

// FetchObserver adapter: counts every instruction fetch against the cache.
class ICacheProbe : public vm::FetchObserver {
 public:
  explicit ICacheProbe(const CacheConfig& config) : cache_(config) {}
  void OnFetch(uint32_t pc) override { cache_.Access(pc); }
  Cache& cache() { return cache_; }
  const CacheStats& stats() const { return cache_.stats(); }

 private:
  Cache cache_;
};

}  // namespace sc::hwsim
