// Analytical memory-system power model.
//
// Encodes (a) the published StrongARM SA-110 power breakdown the paper cites
// [Montanaro et al. 1996]: I-cache 27%, D-cache 16%, write buffer 2% — 45%
// of chip power in the caches; and (b) a simple per-access energy model that
// separates tag-array energy from data-array energy, so the softcache's
// "hits execute no tag checks" claim can be turned into an energy number.
// All absolute energies are normalized (data-array read of one word = 1.0);
// results are reported as ratios, never joules.
#pragma once

#include <cstdint>

namespace sc::hwsim {

// Fraction of StrongARM SA-110 chip power by unit (Montanaro et al., cited
// as [10] in the paper).
struct StrongArmPowerBreakdown {
  double icache = 0.27;
  double dcache = 0.16;
  double write_buffer = 0.02;

  double caches_total() const { return icache + dcache + write_buffer; }
};

struct EnergyModel {
  // Energy of reading one word from an SRAM data array (the unit).
  double data_read = 1.0;
  // Energy of one tag-array read + compare, relative to data_read. Tag
  // arrays are narrower but pay comparators and are on the critical path;
  // 0.25-0.5 is typical for small caches with ~20-bit tags vs 128-bit lines.
  double tag_check = 0.35;
  // Extra energy for reading a wider line on refill, per word.
  double refill_per_word = 1.0;
  // Idle (leakage) power of one powered SRAM bank, per cycle, relative to
  // data_read per access. Used by the bank power-down experiment.
  double bank_leak_per_cycle = 0.001;
  // Leakage of a bank in sleep mode (state-retentive), per cycle.
  double bank_sleep_per_cycle = 0.0001;
};

// Memory-system energy of running a program on a hardware cache:
// every access pays tag check(s) + data read; misses pay refills.
// `assoc_tag_checks` is the number of tag comparisons per access (ways
// probed; 1 for direct-mapped).
double HardwareCacheEnergy(const EnergyModel& model, uint64_t accesses,
                           uint64_t misses, uint32_t block_bytes,
                           uint32_t assoc_tag_checks);

// Memory-system energy of the software I-cache: hits are plain SRAM reads
// (no tag array), extra rewriting-added instructions are extra SRAM reads,
// and misses pay the refill plus `miss_overhead_words` of handler reads.
double SoftCacheEnergy(const EnergyModel& model, uint64_t instructions,
                       uint64_t extra_instructions, uint64_t misses,
                       uint64_t refill_words, uint64_t miss_overhead_words);

// Bank power-down: leakage of `total_banks` banks over `cycles` when only
// `powered_banks` stay awake (rest in state-retentive sleep).
double BankLeakEnergy(const EnergyModel& model, uint64_t cycles,
                      uint32_t powered_banks, uint32_t total_banks);

}  // namespace sc::hwsim
