#include "hwsim/power.h"

namespace sc::hwsim {

double HardwareCacheEnergy(const EnergyModel& model, uint64_t accesses,
                           uint64_t misses, uint32_t block_bytes,
                           uint32_t assoc_tag_checks) {
  const double per_access =
      model.tag_check * static_cast<double>(assoc_tag_checks) + model.data_read;
  const double per_miss =
      model.refill_per_word * (static_cast<double>(block_bytes) / 4.0);
  return per_access * static_cast<double>(accesses) +
         per_miss * static_cast<double>(misses);
}

double SoftCacheEnergy(const EnergyModel& model, uint64_t instructions,
                       uint64_t extra_instructions, uint64_t misses,
                       uint64_t refill_words, uint64_t miss_overhead_words) {
  return model.data_read * static_cast<double>(instructions + extra_instructions) +
         model.refill_per_word * static_cast<double>(refill_words) +
         model.data_read * static_cast<double>(misses * miss_overhead_words);
}

double BankLeakEnergy(const EnergyModel& model, uint64_t cycles,
                      uint32_t powered_banks, uint32_t total_banks) {
  const double awake = model.bank_leak_per_cycle *
                       static_cast<double>(powered_banks) *
                       static_cast<double>(cycles);
  const double asleep = model.bank_sleep_per_cycle *
                        static_cast<double>(total_banks - powered_banks) *
                        static_cast<double>(cycles);
  return awake + asleep;
}

}  // namespace sc::hwsim
