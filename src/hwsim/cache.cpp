#include "hwsim/cache.h"

namespace sc::hwsim {
namespace {

uint32_t Log2Exact(uint32_t v) {
  SC_CHECK_GT(v, 0u);
  SC_CHECK_EQ(v & (v - 1), 0u) << "value must be a power of two: " << v;
  uint32_t bits = 0;
  while ((1u << bits) < v) ++bits;
  return bits;
}

}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  SC_CHECK_GT(config_.associativity, 0u);
  SC_CHECK_EQ(config_.size_bytes % (config_.block_bytes * config_.associativity), 0u);
  num_sets_ = config_.size_bytes / (config_.block_bytes * config_.associativity);
  offset_bits_ = Log2Exact(config_.block_bytes);
  index_bits_ = Log2Exact(num_sets_);
  lines_.resize(static_cast<size_t>(num_sets_) * config_.associativity);
}

void Cache::Reset() {
  for (Line& line : lines_) line = Line{};
  stats_ = CacheStats{};
  tick_ = 0;
}

bool Cache::Access(uint32_t addr) {
  ++stats_.accesses;
  ++tick_;
  const uint32_t set = (addr >> offset_bits_) & (num_sets_ - 1);
  const uint32_t tag = addr >> (offset_bits_ + index_bits_);
  Line* base = &lines_[static_cast<size_t>(set) * config_.associativity];
  Line* victim = base;
  for (uint32_t way = 0; way < config_.associativity; ++way) {
    Line& line = base[way];
    if (line.valid && line.tag == tag) {
      line.last_use = tick_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  ++stats_.misses;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  return false;
}

double Cache::TagOverheadFraction() const {
  // Per line: tag bits + 1 valid bit, versus 8 bits per data byte.
  const uint32_t tag_bits = 32 - offset_bits_ - index_bits_;
  const double overhead_bits = static_cast<double>(tag_bits) + 1.0;
  const double data_bits = static_cast<double>(config_.block_bytes) * 8.0;
  return overhead_bits / data_bits;
}

}  // namespace sc::hwsim
