#include "sasm/assembler.h"

#include <cctype>
#include <cstring>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "isa/isa.h"
#include "util/check.h"

namespace sc::sasm {
namespace {

using isa::Opcode;
using util::Error;
using util::Result;

enum class Section { kText, kData, kBss };

struct Operand {
  enum Kind { kReg, kImm, kSym, kMem, kHi, kLo } kind;
  uint8_t reg = 0;       // kReg, and base register for kMem
  int64_t imm = 0;       // kImm, and offset for kMem (when no symbol)
  std::string sym;       // kSym / kHi / kLo
};

struct Line {
  int number = 0;
  std::string label;                 // "name:" prefix if present
  std::string mnemonic;              // directive or instruction (lowercased)
  std::vector<Operand> operands;
  std::string string_arg;            // for .asciiz
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$'; }
bool IsIdentChar(char c) { return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)); }

std::optional<uint8_t> ParseRegister(std::string_view name) {
  for (uint8_t r = 0; r < isa::kNumRegs; ++r) {
    if (name == isa::RegName(r)) return r;
  }
  if (name.size() >= 2 && name[0] == 'r') {
    int value = 0;
    for (size_t i = 1; i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) return std::nullopt;
      value = value * 10 + (name[i] - '0');
    }
    if (value < isa::kNumRegs) return static_cast<uint8_t>(value);
  }
  return std::nullopt;
}

// The parser for a single line of assembly.
class LineParser {
 public:
  LineParser(std::string_view text, std::string file, int line_number)
      : text_(text), file_(std::move(file)), line_number_(line_number) {}

  Result<Line> Parse() {
    Line line;
    line.number = line_number_;
    SkipSpace();
    // Optional "label:" prefix (possibly the whole line).
    if (!AtEnd() && IsIdentStart(Peek())) {
      const size_t save = pos_;
      std::string ident = ReadIdent();
      SkipSpace();
      if (!AtEnd() && Peek() == ':') {
        ++pos_;
        line.label = std::move(ident);
        SkipSpace();
        if (!AtEnd() && IsIdentStart(Peek())) {
          line.mnemonic = Lower(ReadIdent());
        }
      } else {
        pos_ = save;
        line.mnemonic = Lower(ReadIdent());
      }
    }
    if (line.mnemonic.empty()) {
      SkipSpace();
      if (!AtEnd()) return Err("expected instruction or directive");
      return line;
    }
    // .asciiz takes a string literal.
    if (line.mnemonic == ".asciiz" || line.mnemonic == ".ascii") {
      SkipSpace();
      auto str = ReadStringLiteral();
      if (!str.ok()) return str.error();
      line.string_arg = *str;
      SkipSpace();
      if (!AtEnd()) return Err("trailing characters after string");
      return line;
    }
    // Comma-separated operands.
    SkipSpace();
    while (!AtEnd()) {
      auto op = ReadOperand();
      if (!op.ok()) return op.error();
      line.operands.push_back(*op);
      SkipSpace();
      if (AtEnd()) break;
      if (Peek() != ',') return Err("expected ','");
      ++pos_;
      SkipSpace();
    }
    return line;
  }

 private:
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size() || text_[pos_] == '#' || text_[pos_] == ';';
  }
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string ReadIdent() {
    const size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  static std::string Lower(std::string s) {
    for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
  }

  Error Err(const std::string& message) {
    return Error{message, file_, line_number_, static_cast<int>(pos_) + 1};
  }

  Result<std::string> ReadStringLiteral() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Err("expected '\"'");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case 'r': c = '\r'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: return Err("bad escape in string");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return Err("unterminated string");
    ++pos_;
    return out;
  }

  Result<int64_t> ReadNumber() {
    bool negative = false;
    if (Peek() == '-') {
      negative = true;
      ++pos_;
    } else if (Peek() == '+') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      // Character literal.
      ++pos_;
      if (pos_ >= text_.size()) return Err("bad char literal");
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '\'': c = '\''; break;
          default: return Err("bad escape in char literal");
        }
      }
      if (pos_ >= text_.size() || text_[pos_] != '\'') return Err("bad char literal");
      ++pos_;
      int64_t v = static_cast<unsigned char>(c);
      return negative ? -v : v;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Err("expected number");
    }
    int64_t value = 0;
    if (text_.substr(pos_).starts_with("0x") || text_.substr(pos_).starts_with("0X")) {
      pos_ += 2;
      if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
        return Err("bad hex number");
      }
      while (pos_ < text_.size() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
        const char c = text_[pos_++];
        const int digit = std::isdigit(static_cast<unsigned char>(c))
                              ? c - '0'
                              : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
        value = value * 16 + digit;
      }
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        value = value * 10 + (text_[pos_++] - '0');
      }
    }
    return negative ? -value : value;
  }

  Result<Operand> ReadOperand() {
    SkipSpace();
    if (pos_ >= text_.size()) return Err("expected operand");
    const char c = Peek();
    // %hi(sym) / %lo(sym)
    if (c == '%') {
      ++pos_;
      const std::string which = Lower(ReadIdent());
      if (which != "hi" && which != "lo") return Err("expected %hi or %lo");
      SkipSpace();
      if (pos_ >= text_.size() || Peek() != '(') return Err("expected '('");
      ++pos_;
      SkipSpace();
      const std::string sym = ReadIdent();
      if (sym.empty()) return Err("expected symbol");
      SkipSpace();
      if (pos_ >= text_.size() || Peek() != ')') return Err("expected ')'");
      ++pos_;
      Operand op;
      op.kind = which == "hi" ? Operand::kHi : Operand::kLo;
      op.sym = sym;
      return op;
    }
    if (IsIdentStart(c)) {
      const std::string ident = ReadIdent();
      if (auto reg = ParseRegister(ident)) {
        return Operand{.kind = Operand::kReg, .reg = *reg};
      }
      Operand op;
      op.kind = Operand::kSym;
      op.sym = ident;
      return op;
    }
    // Number, possibly "imm(reg)" memory form.
    auto num = ReadNumber();
    if (!num.ok()) return num.error();
    SkipSpace();
    if (pos_ < text_.size() && Peek() == '(') {
      ++pos_;
      SkipSpace();
      const std::string regname = ReadIdent();
      const auto reg = ParseRegister(regname);
      if (!reg) return Err("expected base register");
      SkipSpace();
      if (pos_ >= text_.size() || Peek() != ')') return Err("expected ')'");
      ++pos_;
      Operand op;
      op.kind = Operand::kMem;
      op.reg = *reg;
      op.imm = *num;
      return op;
    }
    Operand op;
    op.kind = Operand::kImm;
    op.imm = *num;
    return op;
  }

  std::string_view text_;
  std::string file_;
  int line_number_;
  size_t pos_ = 0;
};

struct InstrSpec {
  Opcode op;
  enum Shape {
    kRdRs1Rs2,   // alu ops
    kRdRs1Imm,   // addi etc., jalr
    kRdImm,      // lui
    kMemOp,      // lw rd, off(rs1)
    kBranch,     // beq rs1, rs2, target
    kJump,       // j/jal target
    kSysShape,   // sys n
    kNone,       // halt
  } shape;
  isa::AluOp funct = isa::AluOp::kAdd;
};

const std::map<std::string, InstrSpec, std::less<>>& InstrTable() {
  static const std::map<std::string, InstrSpec, std::less<>> table = [] {
    std::map<std::string, InstrSpec, std::less<>> t;
    const struct { const char* name; isa::AluOp funct; } alu_ops[] = {
        {"add", isa::AluOp::kAdd},   {"sub", isa::AluOp::kSub},
        {"and", isa::AluOp::kAnd},   {"or", isa::AluOp::kOr},
        {"xor", isa::AluOp::kXor},   {"sll", isa::AluOp::kSll},
        {"srl", isa::AluOp::kSrl},   {"sra", isa::AluOp::kSra},
        {"slt", isa::AluOp::kSlt},   {"sltu", isa::AluOp::kSltu},
        {"mul", isa::AluOp::kMul},   {"div", isa::AluOp::kDiv},
        {"divu", isa::AluOp::kDivu}, {"rem", isa::AluOp::kRem},
        {"remu", isa::AluOp::kRemu},
    };
    for (const auto& a : alu_ops) {
      t[a.name] = InstrSpec{Opcode::kAlu, InstrSpec::kRdRs1Rs2, a.funct};
    }
    const struct { const char* name; Opcode op; InstrSpec::Shape shape; } others[] = {
        {"addi", Opcode::kAddi, InstrSpec::kRdRs1Imm},
        {"andi", Opcode::kAndi, InstrSpec::kRdRs1Imm},
        {"ori", Opcode::kOri, InstrSpec::kRdRs1Imm},
        {"xori", Opcode::kXori, InstrSpec::kRdRs1Imm},
        {"slti", Opcode::kSlti, InstrSpec::kRdRs1Imm},
        {"sltiu", Opcode::kSltiu, InstrSpec::kRdRs1Imm},
        {"slli", Opcode::kSlli, InstrSpec::kRdRs1Imm},
        {"srli", Opcode::kSrli, InstrSpec::kRdRs1Imm},
        {"srai", Opcode::kSrai, InstrSpec::kRdRs1Imm},
        {"lui", Opcode::kLui, InstrSpec::kRdImm},
        {"lw", Opcode::kLw, InstrSpec::kMemOp},
        {"lh", Opcode::kLh, InstrSpec::kMemOp},
        {"lhu", Opcode::kLhu, InstrSpec::kMemOp},
        {"lb", Opcode::kLb, InstrSpec::kMemOp},
        {"lbu", Opcode::kLbu, InstrSpec::kMemOp},
        {"sw", Opcode::kSw, InstrSpec::kMemOp},
        {"sh", Opcode::kSh, InstrSpec::kMemOp},
        {"sb", Opcode::kSb, InstrSpec::kMemOp},
        {"beq", Opcode::kBeq, InstrSpec::kBranch},
        {"bne", Opcode::kBne, InstrSpec::kBranch},
        {"blt", Opcode::kBlt, InstrSpec::kBranch},
        {"bge", Opcode::kBge, InstrSpec::kBranch},
        {"bltu", Opcode::kBltu, InstrSpec::kBranch},
        {"bgeu", Opcode::kBgeu, InstrSpec::kBranch},
        {"j", Opcode::kJ, InstrSpec::kJump},
        {"jal", Opcode::kJal, InstrSpec::kJump},
        {"jalr", Opcode::kJalr, InstrSpec::kRdRs1Imm},
        {"sys", Opcode::kSys, InstrSpec::kSysShape},
        {"halt", Opcode::kHalt, InstrSpec::kNone},
    };
    for (const auto& o : others) t[o.name] = InstrSpec{o.op, o.shape};
    return t;
  }();
  return table;
}

// How many machine instructions a (pseudo-)instruction expands to.
int ExpansionSize(const std::string& mnemonic, const std::vector<Operand>& ops) {
  if (mnemonic == "li") {
    // li expands to lui+ori unless the value fits addi's imm16.
    if (ops.size() == 2 && ops[1].kind == Operand::kImm && isa::FitsImm16(ops[1].imm)) {
      return 1;
    }
    return 2;
  }
  if (mnemonic == "la") return 2;
  if (mnemonic == "not") return 2;
  return 1;
}

class Assembler {
 public:
  Assembler(std::string_view source, std::string_view filename, const Options& options)
      : source_(source), file_(filename), options_(options) {}

  Result<image::Image> Run() {
    auto lines = ParseAll();
    if (!lines.ok()) return lines.error();
    if (auto st = PassOne(*lines); !st.ok()) return st.error();
    if (auto st = PassTwo(*lines); !st.ok()) return st.error();
    return Finish();
  }

 private:
  Result<std::vector<Line>> ParseAll() {
    std::vector<Line> lines;
    int number = 1;
    size_t start = 0;
    while (start <= source_.size()) {
      size_t end = source_.find('\n', start);
      if (end == std::string_view::npos) end = source_.size();
      LineParser parser(source_.substr(start, end - start), file_, number);
      auto line = parser.Parse();
      if (!line.ok()) return line.error();
      if (!line->label.empty() || !line->mnemonic.empty()) {
        lines.push_back(std::move(*line));
      }
      ++number;
      if (end == source_.size()) break;
      start = end + 1;
    }
    return lines;
  }

  Error Err(const Line& line, const std::string& message) {
    return Error{message, file_, line.number, 0};
  }

  // --- Pass 1: compute addresses for all labels. ---
  util::Status PassOne(const std::vector<Line>& lines) {
    Section section = Section::kText;
    uint32_t text_pc = options_.text_base;
    uint32_t data_pc = options_.data_base;
    uint32_t bss_pc = 0;  // offset; rebased after data size is known
    for (const Line& line : lines) {
      uint32_t* pc = section == Section::kText ? &text_pc
                     : section == Section::kData ? &data_pc
                                                 : &bss_pc;
      if (!line.label.empty()) {
        if (labels_.count(line.label) != 0) {
          return Err(line, "duplicate label '" + line.label + "'");
        }
        labels_[line.label] = LabelInfo{*pc, section};
      }
      const std::string& m = line.mnemonic;
      if (m.empty()) continue;
      if (m == ".text") { section = Section::kText; continue; }
      if (m == ".data") { section = Section::kData; continue; }
      if (m == ".bss") { section = Section::kBss; continue; }
      if (m == ".entry") {
        if (line.operands.size() != 1 || line.operands[0].kind != Operand::kSym) {
          return Err(line, ".entry takes a symbol");
        }
        entry_symbol_ = line.operands[0].sym;
        continue;
      }
      if (m == ".func") {
        if (line.operands.size() != 1 || line.operands[0].kind != Operand::kSym) {
          return Err(line, ".func takes a name");
        }
        if (section != Section::kText) return Err(line, ".func outside .text");
        if (!open_func_.empty()) return Err(line, "nested .func");
        open_func_ = line.operands[0].sym;
        func_start_ = text_pc;
        if (labels_.count(open_func_) != 0) {
          return Err(line, "duplicate symbol '" + open_func_ + "'");
        }
        labels_[open_func_] = LabelInfo{text_pc, Section::kText};
        continue;
      }
      if (m == ".endfunc") {
        if (open_func_.empty()) return Err(line, ".endfunc without .func");
        functions_.push_back(image::Symbol{open_func_, func_start_,
                                           text_pc - func_start_,
                                           image::SymbolKind::kFunction});
        open_func_.clear();
        continue;
      }
      if (m == ".align") {
        if (line.operands.size() != 1 || line.operands[0].kind != Operand::kImm) {
          return Err(line, ".align takes a constant");
        }
        const uint32_t a = static_cast<uint32_t>(line.operands[0].imm);
        if (a == 0 || (a & (a - 1)) != 0) return Err(line, ".align must be power of 2");
        *pc = (*pc + a - 1) & ~(a - 1);
        continue;
      }
      if (m == ".space") {
        if (line.operands.size() != 1 || line.operands[0].kind != Operand::kImm) {
          return Err(line, ".space takes a constant");
        }
        *pc += static_cast<uint32_t>(line.operands[0].imm);
        continue;
      }
      if (m == ".word") { *pc += 4 * static_cast<uint32_t>(line.operands.size()); continue; }
      if (m == ".half") { *pc += 2 * static_cast<uint32_t>(line.operands.size()); continue; }
      if (m == ".byte") { *pc += static_cast<uint32_t>(line.operands.size()); continue; }
      if (m == ".asciiz") { *pc += static_cast<uint32_t>(line.string_arg.size()) + 1; continue; }
      if (m == ".ascii") { *pc += static_cast<uint32_t>(line.string_arg.size()); continue; }
      if (m.front() == '.') return Err(line, "unknown directive '" + m + "'");
      // Instruction (or pseudo).
      if (section != Section::kText) return Err(line, "instruction outside .text");
      *pc += 4u * static_cast<uint32_t>(ExpansionSize(m, line.operands));
    }
    if (!open_func_.empty()) {
      return Error{"unterminated .func '" + open_func_ + "'", std::string(file_), 0, 0};
    }
    text_size_ = text_pc - options_.text_base;
    data_size_ = data_pc - options_.data_base;
    bss_size_ = bss_pc;
    // Rebase bss labels after data.
    bss_base_ = options_.data_base + ((data_size_ + 3) & ~3u);
    for (auto& [name, info] : labels_) {
      if (info.section == Section::kBss) info.addr += bss_base_;
    }
    return util::Status::Ok();
  }

  Result<uint32_t> ResolveSym(const Line& line, const std::string& sym) {
    const auto it = labels_.find(sym);
    if (it == labels_.end()) return Err(line, "undefined symbol '" + sym + "'");
    return it->second.addr;
  }

  // Resolves an operand to a 32-bit value (immediates, symbols, %hi/%lo).
  Result<int64_t> ResolveValue(const Line& line, const Operand& op) {
    switch (op.kind) {
      case Operand::kImm: return op.imm;
      case Operand::kSym: {
        auto addr = ResolveSym(line, op.sym);
        if (!addr.ok()) return addr.error();
        return static_cast<int64_t>(*addr);
      }
      case Operand::kHi: {
        auto addr = ResolveSym(line, op.sym);
        if (!addr.ok()) return addr.error();
        return static_cast<int64_t>(*addr >> 16);
      }
      case Operand::kLo: {
        auto addr = ResolveSym(line, op.sym);
        if (!addr.ok()) return addr.error();
        return static_cast<int64_t>(*addr & 0xffff);
      }
      default: return Err(line, "expected immediate or symbol");
    }
  }

  void EmitWord(Section section, uint32_t value) {
    auto& bytes = section == Section::kText ? text_ : data_;
    bytes.push_back(static_cast<uint8_t>(value));
    bytes.push_back(static_cast<uint8_t>(value >> 8));
    bytes.push_back(static_cast<uint8_t>(value >> 16));
    bytes.push_back(static_cast<uint8_t>(value >> 24));
  }

  // --- Pass 2: encode. ---
  util::Status PassTwo(const std::vector<Line>& lines) {
    Section section = Section::kText;
    for (const Line& line : lines) {
      const std::string& m = line.mnemonic;
      if (m.empty()) continue;
      if (m == ".text") { section = Section::kText; continue; }
      if (m == ".data") { section = Section::kData; continue; }
      if (m == ".bss") { section = Section::kBss; continue; }
      if (m == ".entry" || m == ".func" || m == ".endfunc") continue;
      if (m == ".align") {
        const uint32_t a = static_cast<uint32_t>(line.operands[0].imm);
        auto& bytes = section == Section::kText ? text_ : data_;
        if (section != Section::kBss) {
          const uint32_t base = section == Section::kText ? options_.text_base
                                                          : options_.data_base;
          while ((base + bytes.size()) % a != 0) bytes.push_back(0);
        }
        continue;
      }
      if (m == ".space") {
        const uint32_t n = static_cast<uint32_t>(line.operands[0].imm);
        if (section != Section::kBss) {
          auto& bytes = section == Section::kText ? text_ : data_;
          bytes.insert(bytes.end(), n, 0);
        }
        continue;
      }
      if (m == ".word" || m == ".half" || m == ".byte") {
        if (section == Section::kBss) return Err(line, "initialized data in .bss");
        auto& bytes = section == Section::kText ? text_ : data_;
        for (const Operand& op : line.operands) {
          auto v = ResolveValue(line, op);
          if (!v.ok()) return v.error();
          const uint32_t value = static_cast<uint32_t>(*v);
          if (m == ".word") {
            EmitWord(section, value);
          } else if (m == ".half") {
            bytes.push_back(static_cast<uint8_t>(value));
            bytes.push_back(static_cast<uint8_t>(value >> 8));
          } else {
            bytes.push_back(static_cast<uint8_t>(value));
          }
        }
        continue;
      }
      if (m == ".asciiz" || m == ".ascii") {
        if (section == Section::kBss) return Err(line, "string in .bss");
        auto& bytes = section == Section::kText ? text_ : data_;
        bytes.insert(bytes.end(), line.string_arg.begin(), line.string_arg.end());
        if (m == ".asciiz") bytes.push_back(0);
        continue;
      }
      if (m.front() == '.') continue;  // validated in pass 1
      if (auto st = EmitInstruction(line); !st.ok()) return st;
    }
    return util::Status::Ok();
  }

  uint32_t CurrentTextPc() const {
    return options_.text_base + static_cast<uint32_t>(text_.size());
  }

  util::Status EmitInstruction(const Line& line) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    const auto need = [&](size_t n) -> util::Status {
      if (ops.size() != n) {
        return Err(line, m + " expects " + std::to_string(n) + " operands");
      }
      return util::Status::Ok();
    };
    const auto reg_at = [&](size_t i) -> Result<uint8_t> {
      if (ops[i].kind != Operand::kReg) return Err(line, "operand must be a register");
      return ops[i].reg;
    };

    // --- Pseudo-instructions ---
    if (m == "nop") {
      if (auto st = need(0); !st.ok()) return st;
      EmitWord(Section::kText, isa::EncNop());
      return util::Status::Ok();
    }
    if (m == "ret") {
      if (auto st = need(0); !st.ok()) return st;
      EmitWord(Section::kText, isa::EncRet());
      return util::Status::Ok();
    }
    if (m == "mv") {
      if (auto st = need(2); !st.ok()) return st;
      auto rd = reg_at(0), rs = reg_at(1);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      EmitWord(Section::kText, isa::EncI(Opcode::kAddi, *rd, *rs, 0));
      return util::Status::Ok();
    }
    if (m == "not") {
      if (auto st = need(2); !st.ok()) return st;
      auto rd = reg_at(0), rs = reg_at(1);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      // ~x == -x - 1 (XORI zero-extends its immediate).
      EmitWord(Section::kText, isa::EncAlu(isa::AluOp::kSub, *rd, isa::kZero, *rs));
      EmitWord(Section::kText, isa::EncI(Opcode::kAddi, *rd, *rd, -1));
      return util::Status::Ok();
    }
    if (m == "neg") {
      if (auto st = need(2); !st.ok()) return st;
      auto rd = reg_at(0), rs = reg_at(1);
      if (!rd.ok()) return rd.error();
      if (!rs.ok()) return rs.error();
      EmitWord(Section::kText, isa::EncAlu(isa::AluOp::kSub, *rd, isa::kZero, *rs));
      return util::Status::Ok();
    }
    if (m == "li") {
      if (auto st = need(2); !st.ok()) return st;
      auto rd = reg_at(0);
      if (!rd.ok()) return rd.error();
      auto v = ResolveValue(line, ops[1]);
      if (!v.ok()) return v.error();
      const uint32_t value = static_cast<uint32_t>(*v);
      if (ops[1].kind == Operand::kImm && isa::FitsImm16(ops[1].imm)) {
        EmitWord(Section::kText,
                 isa::EncI(Opcode::kAddi, *rd, isa::kZero, static_cast<int32_t>(value)));
      } else {
        EmitWord(Section::kText,
                 isa::EncI(Opcode::kLui, *rd, 0, static_cast<int32_t>(value >> 16)));
        EmitWord(Section::kText,
                 isa::EncI(Opcode::kOri, *rd, *rd, static_cast<int32_t>(value & 0xffff)));
      }
      return util::Status::Ok();
    }
    if (m == "la") {
      if (auto st = need(2); !st.ok()) return st;
      auto rd = reg_at(0);
      if (!rd.ok()) return rd.error();
      if (ops[1].kind != Operand::kSym) return Err(line, "la expects a symbol");
      auto v = ResolveSym(line, ops[1].sym);
      if (!v.ok()) return v.error();
      EmitWord(Section::kText, isa::EncI(Opcode::kLui, *rd, 0, static_cast<int32_t>(*v >> 16)));
      EmitWord(Section::kText,
               isa::EncI(Opcode::kOri, *rd, *rd, static_cast<int32_t>(*v & 0xffff)));
      return util::Status::Ok();
    }
    if (m == "b" || m == "call") {
      if (auto st = need(1); !st.ok()) return st;
      if (ops[0].kind != Operand::kSym) return Err(line, m + " expects a label");
      auto target = ResolveSym(line, ops[0].sym);
      if (!target.ok()) return target.error();
      const int32_t offset = isa::OffsetFor(CurrentTextPc(), *target);
      if (!isa::FitsImm26(offset)) return Err(line, "jump target out of range");
      EmitWord(Section::kText,
               isa::EncJ(m == "b" ? Opcode::kJ : Opcode::kJal, offset));
      return util::Status::Ok();
    }

    // --- Real instructions ---
    const auto it = InstrTable().find(m);
    if (it == InstrTable().end()) return Err(line, "unknown instruction '" + m + "'");
    const InstrSpec& spec = it->second;
    switch (spec.shape) {
      case InstrSpec::kRdRs1Rs2: {
        if (auto st = need(3); !st.ok()) return st;
        auto rd = reg_at(0), rs1 = reg_at(1), rs2 = reg_at(2);
        if (!rd.ok()) return rd.error();
        if (!rs1.ok()) return rs1.error();
        if (!rs2.ok()) return rs2.error();
        EmitWord(Section::kText, isa::EncAlu(spec.funct, *rd, *rs1, *rs2));
        return util::Status::Ok();
      }
      case InstrSpec::kRdRs1Imm: {
        if (auto st = need(3); !st.ok()) return st;
        auto rd = reg_at(0), rs1 = reg_at(1);
        if (!rd.ok()) return rd.error();
        if (!rs1.ok()) return rs1.error();
        auto v = ResolveValue(line, ops[2]);
        if (!v.ok()) return v.error();
        if (!isa::FitsImm16(*v)) return Err(line, "immediate out of range");
        EmitWord(Section::kText,
                 isa::EncI(spec.op, *rd, *rs1, static_cast<int32_t>(*v)));
        return util::Status::Ok();
      }
      case InstrSpec::kRdImm: {
        if (auto st = need(2); !st.ok()) return st;
        auto rd = reg_at(0);
        if (!rd.ok()) return rd.error();
        auto v = ResolveValue(line, ops[1]);
        if (!v.ok()) return v.error();
        if (*v < 0 || *v > 0xffff) return Err(line, "lui immediate out of range");
        EmitWord(Section::kText,
                 isa::EncI(spec.op, *rd, 0, static_cast<int32_t>(*v)));
        return util::Status::Ok();
      }
      case InstrSpec::kMemOp: {
        if (auto st = need(2); !st.ok()) return st;
        auto rd = reg_at(0);
        if (!rd.ok()) return rd.error();
        if (ops[1].kind == Operand::kMem) {
          if (!isa::FitsImm16(ops[1].imm)) return Err(line, "offset out of range");
          EmitWord(Section::kText, isa::EncI(spec.op, *rd, ops[1].reg,
                                             static_cast<int32_t>(ops[1].imm)));
          return util::Status::Ok();
        }
        return Err(line, "expected offset(reg) operand");
      }
      case InstrSpec::kBranch: {
        if (auto st = need(3); !st.ok()) return st;
        auto rs1 = reg_at(0), rs2 = reg_at(1);
        if (!rs1.ok()) return rs1.error();
        if (!rs2.ok()) return rs2.error();
        if (ops[2].kind != Operand::kSym) return Err(line, "branch target must be a label");
        auto target = ResolveSym(line, ops[2].sym);
        if (!target.ok()) return target.error();
        const int32_t offset = isa::OffsetFor(CurrentTextPc(), *target);
        if (!isa::FitsImm16(offset)) return Err(line, "branch target out of range");
        EmitWord(Section::kText, isa::EncBranch(spec.op, *rs1, *rs2, offset));
        return util::Status::Ok();
      }
      case InstrSpec::kJump: {
        if (auto st = need(1); !st.ok()) return st;
        if (ops[0].kind != Operand::kSym) return Err(line, "jump target must be a label");
        auto target = ResolveSym(line, ops[0].sym);
        if (!target.ok()) return target.error();
        const int32_t offset = isa::OffsetFor(CurrentTextPc(), *target);
        if (!isa::FitsImm26(offset)) return Err(line, "jump target out of range");
        EmitWord(Section::kText, isa::EncJ(spec.op, offset));
        return util::Status::Ok();
      }
      case InstrSpec::kSysShape: {
        if (auto st = need(1); !st.ok()) return st;
        auto v = ResolveValue(line, ops[0]);
        if (!v.ok()) return v.error();
        if (!isa::FitsImm16(*v)) return Err(line, "syscall number out of range");
        EmitWord(Section::kText,
                 isa::EncI(Opcode::kSys, 0, 0, static_cast<int32_t>(*v)));
        return util::Status::Ok();
      }
      case InstrSpec::kNone: {
        if (auto st = need(0); !st.ok()) return st;
        EmitWord(Section::kText, isa::EncHalt());
        return util::Status::Ok();
      }
    }
    SC_UNREACHABLE();
    return util::Status::Ok();  // not reached
  }

  Result<image::Image> Finish() {
    image::Image img;
    img.text_base = options_.text_base;
    img.text = std::move(text_);
    img.data_base = options_.data_base;
    img.data = std::move(data_);
    img.bss_base = bss_base_;
    img.bss_size = bss_size_;
    img.symbols = std::move(functions_);
    // Export remaining labels as object symbols so tests can find data.
    for (const auto& [name, info] : labels_) {
      if (info.section != Section::kText && img.FindSymbol(name) == nullptr) {
        img.symbols.push_back(
            image::Symbol{name, info.addr, 0, image::SymbolKind::kObject});
      }
    }
    const std::string entry = entry_symbol_.empty() ? "_start" : entry_symbol_;
    const auto it = labels_.find(entry);
    if (it == labels_.end()) {
      return Error{"entry symbol '" + entry + "' not defined", std::string(file_), 0, 0};
    }
    img.entry = it->second.addr;
    return img;
  }

  struct LabelInfo {
    uint32_t addr;
    Section section;
  };

  std::string_view source_;
  std::string file_;
  Options options_;
  std::map<std::string, LabelInfo, std::less<>> labels_;
  std::vector<image::Symbol> functions_;
  std::string entry_symbol_;
  std::string open_func_;
  uint32_t func_start_ = 0;
  uint32_t text_size_ = 0;
  uint32_t data_size_ = 0;
  uint32_t bss_size_ = 0;
  uint32_t bss_base_ = 0;
  std::vector<uint8_t> text_;
  std::vector<uint8_t> data_;
};

}  // namespace

Result<image::Image> Assemble(std::string_view source, std::string_view filename,
                              const Options& options) {
  return Assembler(source, filename, options).Run();
}

}  // namespace sc::sasm
