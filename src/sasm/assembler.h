// Two-pass assembler for SRK32 text assembly.
//
// Syntax summary (full reference in README):
//   sections    .text  .data  .bss
//   data        .word v|label, ...   .half ...   .byte ...   .asciiz "s"
//               .space n   .align n
//   symbols     label:            local label
//               .func name / .endfunc   function symbol spanning the range
//               .entry name       program entry point (default: _start)
//   instrs      addi rd, rs1, imm      lw rd, off(rs1)      beq r1, r2, label
//               jal label              jalr rd, rs, imm     sys n      halt
//   pseudo      li rd, imm32   la rd, label   mv rd, rs   not/neg rd, rs
//               b label   call label   ret   nop
//   operands    registers by ABI name (a0, t3, sp, ...) or rN; immediates in
//               decimal, 0x hex, or 'c' character form; %hi(sym), %lo(sym).
//
// Used by tests, examples and handwritten runtime stubs; the MiniC compiler
// emits machine code directly and does not go through this assembler.
#pragma once

#include <string>
#include <string_view>

#include "image/image.h"
#include "image/layout.h"
#include "util/result.h"

namespace sc::sasm {

struct Options {
  uint32_t text_base = image::kTextBase;
  uint32_t data_base = image::kDataBase;
};

// Assembles `source` into a loadable image. The first error aborts assembly
// and is returned with file/line info.
util::Result<image::Image> Assemble(std::string_view source,
                                    std::string_view filename = "<asm>",
                                    const Options& options = Options{});

}  // namespace sc::sasm
