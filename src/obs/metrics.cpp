#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace sc::obs {
namespace {

void AppendJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// JSON numbers: doubles print round-trippably; NaN/inf (never expected, but
// a gauge function could misbehave) degrade to 0 to keep the file valid.
void AppendJsonDouble(std::ostream& out, double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) {
    out << 0;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

Timeline::Timeline(size_t max_samples, size_t bins)
    : max_samples_(max_samples == 0 ? 1 : max_samples),
      bins_(bins == 0 ? 1 : bins) {}

void Timeline::Add(uint64_t t) {
  ++total_;
  if (!collapsed_) {
    samples_.push_back(t);
    if (samples_.size() >= max_samples_) Collapse();
    return;
  }
  AddToBins(t);
}

void Timeline::RemoveLast(uint64_t t) {
  SC_CHECK_GT(total_, 0u);
  --total_;
  if (!collapsed_) {
    SC_CHECK(!samples_.empty());
    SC_CHECK_EQ(samples_.back(), t);
    samples_.pop_back();
    return;
  }
  const size_t bin = static_cast<size_t>(t / bin_width_);
  SC_CHECK_LT(bin, bin_counts_.size());
  SC_CHECK_GT(bin_counts_[bin], 0u);
  --bin_counts_[bin];
}

void Timeline::Collapse() {
  collapsed_ = true;
  bin_counts_.assign(bins_, 0);
  uint64_t max_t = 0;
  for (const uint64_t t : samples_) max_t = std::max(max_t, t);
  bin_width_ = 1;
  while (max_t / bin_width_ >= bins_) bin_width_ *= 2;
  for (const uint64_t t : samples_) {
    ++bin_counts_[static_cast<size_t>(t / bin_width_)];
  }
  samples_.clear();
  samples_.shrink_to_fit();
}

void Timeline::AddToBins(uint64_t t) {
  while (t / bin_width_ >= bins_) {
    // Double the bin width: merge adjacent bin pairs in place.
    for (size_t i = 0; i < bins_ / 2; ++i) {
      bin_counts_[i] = bin_counts_[2 * i] + bin_counts_[2 * i + 1];
    }
    std::fill(bin_counts_.begin() + static_cast<long>(bins_ / 2),
              bin_counts_.end(), 0);
    bin_width_ *= 2;
  }
  ++bin_counts_[static_cast<size_t>(t / bin_width_)];
}

uint64_t Timeline::CountInRange(uint64_t lo, uint64_t hi) const {
  if (hi <= lo) return 0;
  uint64_t count = 0;
  if (!collapsed_) {
    for (const uint64_t t : samples_) {
      if (t >= lo && t < hi) ++count;
    }
    return count;
  }
  for (size_t i = 0; i < bin_counts_.size(); ++i) {
    if (bin_counts_[i] == 0) continue;
    const uint64_t mid = static_cast<uint64_t>(i) * bin_width_ + bin_width_ / 2;
    if (mid >= lo && mid < hi) count += bin_counts_[i];
  }
  return count;
}

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

Series::Series(size_t max_points) : max_points_(max_points < 2 ? 2 : max_points) {}

void Series::Add(uint64_t t, uint64_t value) {
  ++observations_;
  if (tick_++ % stride_ != 0) return;  // thinned out at the current stride
  points_.push_back(Point{t, value});
  if (points_.size() >= max_points_) {
    // Thin uniformly: keep every other point, double the stride.
    std::vector<Point> kept;
    kept.reserve(points_.size() / 2 + 1);
    for (size_t i = 0; i < points_.size(); i += 2) kept.push_back(points_[i]);
    points_ = std::move(kept);
    stride_ *= 2;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const uint64_t* source) {
  SC_CHECK(source != nullptr);
  SC_CHECK(counters_.emplace(name, source).second)
      << "duplicate counter: " << name;
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    std::function<double()> fn) {
  SC_CHECK(fn != nullptr);
  SC_CHECK(gauges_.emplace(name, std::move(fn)).second)
      << "duplicate gauge: " << name;
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const util::Histogram* hist) {
  SC_CHECK(hist != nullptr);
  SC_CHECK(histograms_.emplace(name, hist).second)
      << "duplicate histogram: " << name;
}

void MetricsRegistry::RegisterTimeline(const std::string& name,
                                       const Timeline* timeline) {
  SC_CHECK(timeline != nullptr);
  SC_CHECK(timelines_.emplace(name, timeline).second)
      << "duplicate timeline: " << name;
}

void MetricsRegistry::RegisterSeries(const std::string& name,
                                     const Series* series) {
  SC_CHECK(series != nullptr);
  SC_CHECK(series_.emplace(name, series).second)
      << "duplicate series: " << name;
}

void MetricsRegistry::RegisterTable(
    const std::string& name,
    std::function<std::vector<std::pair<uint64_t, uint64_t>>()> fn,
    size_t max_rows) {
  SC_CHECK(fn != nullptr);
  SC_CHECK(tables_.emplace(name, Table{std::move(fn), max_rows}).second)
      << "duplicate table: " << name;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  for (const auto& [name, source] : counters_) snap.counters[name] = *source;
  for (const auto& [name, fn] : gauges_) snap.gauges[name] = fn();
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::Snapshot::Delta(
    const Snapshot& before, const Snapshot& after) {
  Snapshot delta;
  for (const auto& [name, value] : after.counters) {
    const auto it = before.counters.find(name);
    const uint64_t prev = it == before.counters.end() ? 0 : it->second;
    delta.counters[name] = value - prev;  // wraps negative deltas (resets)
  }
  for (const auto& [name, prev] : before.counters) {
    if (after.counters.count(name) == 0) delta.counters[name] = 0 - prev;
  }
  for (const auto& [name, value] : after.gauges) {
    const auto it = before.gauges.find(name);
    delta.gauges[name] = value - (it == before.gauges.end() ? 0.0 : it->second);
  }
  for (const auto& [name, prev] : before.gauges) {
    if (after.gauges.count(name) == 0) delta.gauges[name] = -prev;
  }
  return delta;
}

std::string MetricsRegistry::Snapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(out, name);
    out << ':';
    AppendJsonDouble(out, value);
  }
  out << "}}";
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  out << "{\n\"counters\":{";
  bool first = true;
  for (const auto& [name, source] : counters_) {
    if (!first) out << ',';
    first = false;
    out << "\n  ";
    AppendJsonString(out, name);
    out << ':' << *source;
  }
  out << "\n},\n\"gauges\":{";
  first = true;
  for (const auto& [name, fn] : gauges_) {
    if (!first) out << ',';
    first = false;
    out << "\n  ";
    AppendJsonString(out, name);
    out << ':';
    AppendJsonDouble(out, fn());
  }
  out << "\n},\n\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out << ',';
    first = false;
    out << "\n  ";
    AppendJsonString(out, name);
    out << ":{\"total\":" << hist->total() << ",\"p50\":";
    AppendJsonDouble(out, hist->Percentile(50));
    out << ",\"p95\":";
    AppendJsonDouble(out, hist->Percentile(95));
    out << ",\"p99\":";
    AppendJsonDouble(out, hist->Percentile(99));
    out << ",\"buckets\":[";
    for (int i = 0; i < hist->buckets(); ++i) {
      if (i > 0) out << ',';
      out << "{\"lo\":";
      AppendJsonDouble(out, hist->bucket_low(i));
      out << ",\"count\":" << hist->bucket_count(i) << '}';
    }
    out << "]}";
  }
  out << "\n},\n\"timelines\":{";
  first = true;
  for (const auto& [name, timeline] : timelines_) {
    if (!first) out << ',';
    first = false;
    out << "\n  ";
    AppendJsonString(out, name);
    out << ":{\"total\":" << timeline->total()
        << ",\"collapsed\":" << (timeline->collapsed() ? "true" : "false");
    if (timeline->collapsed()) {
      out << ",\"bin_width\":" << timeline->bin_width() << ",\"bins\":[";
      const auto& bins = timeline->bin_counts();
      // Trailing zero bins carry no information; trim them.
      size_t last = bins.size();
      while (last > 0 && bins[last - 1] == 0) --last;
      for (size_t i = 0; i < last; ++i) {
        if (i > 0) out << ',';
        out << bins[i];
      }
      out << ']';
    } else {
      out << ",\"samples\":[";
      const auto& samples = timeline->samples();
      for (size_t i = 0; i < samples.size(); ++i) {
        if (i > 0) out << ',';
        out << samples[i];
      }
      out << ']';
    }
    out << '}';
  }
  out << "\n},\n\"series\":{";
  first = true;
  for (const auto& [name, series] : series_) {
    if (!first) out << ',';
    first = false;
    out << "\n  ";
    AppendJsonString(out, name);
    out << ":{\"stride\":" << series->stride() << ",\"points\":[";
    const auto& points = series->points();
    for (size_t i = 0; i < points.size(); ++i) {
      if (i > 0) out << ',';
      out << '[' << points[i].t << ',' << points[i].value << ']';
    }
    out << "]}";
  }
  out << "\n},\n\"tables\":{";
  first = true;
  for (const auto& [name, table] : tables_) {
    if (!first) out << ',';
    first = false;
    out << "\n  ";
    AppendJsonString(out, name);
    out << ":[";
    std::vector<std::pair<uint64_t, uint64_t>> rows = table.fn();
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                return a.second != b.second ? a.second > b.second
                                            : a.first < b.first;
              });
    if (rows.size() > table.max_rows) rows.resize(table.max_rows);
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"key\":" << rows[i].first << ",\"count\":" << rows[i].second
          << '}';
    }
    out << ']';
  }
  out << "\n}\n}";
  return out.str();
}

}  // namespace sc::obs
