#include "obs/trace_mux.h"

#include <ostream>

#include "obs/metrics.h"

namespace sc::obs {
namespace {

void WriteJsonLabel(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

Tracer* TraceMux::AddLane(const std::string& process, const std::string& thread,
                          uint64_t pid, uint64_t tid) {
  lanes_.emplace_back();
  Lane& lane = lanes_.back();
  lane.process = process;
  lane.thread = thread;
  lane.pid = pid;
  lane.tid = tid;
  return &lane.tracer;
}

void TraceMux::EnableAll(size_t capacity) {
  for (Lane& lane : lanes_) lane.tracer.Enable(capacity);
}

uint64_t TraceMux::TotalDropped() const {
  uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.tracer.dropped_events();
  return total;
}

void TraceMux::RegisterMetrics(MetricsRegistry* registry) const {
  for (const Lane& lane : lanes_) {
    registry->RegisterCounter(
        "obs.lane." + lane.process + "." + lane.thread + ".dropped_events",
        lane.tracer.dropped_events_counter());
  }
}

void TraceMux::ExportChromeJson(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  // Metadata first: label every pid row once and every (pid, tid) row.
  // Perfetto reads these "M" events to name the lanes.
  for (const Lane& lane : lanes_) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << lane.pid
        << ",\"tid\":" << lane.tid << ",\"args\":{\"name\":";
    WriteJsonLabel(out, lane.process);
    out << "}},\n";
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << lane.pid
        << ",\"tid\":" << lane.tid << ",\"args\":{\"name\":";
    WriteJsonLabel(out, lane.thread);
    out << "}}";
  }
  for (const Lane& lane : lanes_) {
    lane.tracer.ExportEventsJson(out, lane.pid, lane.tid, &first);
  }
  out << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
      << "\"clock\":\"guest cycles (1 trace us = 1 cycle)\",\"lanes\":[";
  bool lfirst = true;
  for (const Lane& lane : lanes_) {
    if (!lfirst) out << ',';
    lfirst = false;
    out << "{\"process\":";
    WriteJsonLabel(out, lane.process);
    out << ",\"thread\":";
    WriteJsonLabel(out, lane.thread);
    out << ",\"pid\":" << lane.pid << ",\"tid\":" << lane.tid
        << ",\"events\":" << lane.tracer.recorded_events()
        << ",\"dropped_events\":" << lane.tracer.dropped_events() << "}";
  }
  out << "],\"dropped_events\":" << TotalDropped() << "}}";
}

}  // namespace sc::obs
