// TraceMux: a registry of per-agent trace lanes merged into one
// Chrome/Perfetto trace.
//
// A fleet run has many timelines — one per client VM plus the server loop
// and its memo shards — and each gets its own thread-confined Tracer ring
// (see trace.h). The mux owns the lanes, assigns stable pid/tid rows
// (clients are processes, server lanes are threads of process 0), emits
// the process_name/thread_name metadata events Perfetto uses to label
// rows, and splices every lane's re-balanced event stream into a single
// {"traceEvents": [...]} document. Flow events recorded with the same id
// across lanes render as arrows connecting the slices — that is how a
// TCMISS in a client lane is visibly linked to its ticket and translate
// spans in the server lanes.
//
// Lane storage is a deque so Tracer addresses stay stable across AddLane
// calls; instrumented code holds raw lane pointers for a whole run.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "obs/trace.h"

namespace sc::obs {

class MetricsRegistry;

class TraceMux {
 public:
  struct Lane {
    std::string process;  // Perfetto process row label
    std::string thread;   // Perfetto thread row label
    uint64_t pid = 0;
    uint64_t tid = 0;
    Tracer tracer;
  };

  TraceMux() = default;
  TraceMux(const TraceMux&) = delete;
  TraceMux& operator=(const TraceMux&) = delete;

  // Registers a lane and returns its tracer (stable address for the mux's
  // lifetime). The (pid, tid) pair should be unique per lane; the names
  // label the Perfetto rows.
  Tracer* AddLane(const std::string& process, const std::string& thread,
                  uint64_t pid, uint64_t tid);

  // Enables every lane's ring at `capacity` events.
  void EnableAll(size_t capacity = Tracer::kDefaultCapacity);

  size_t lane_count() const { return lanes_.size(); }
  const std::deque<Lane>& lanes() const { return lanes_; }

  // Sum of dropped events across lanes (each lane also warns individually
  // on export, and per-lane counts are exported in otherData).
  uint64_t TotalDropped() const;

  // Registers one obs.lane.<process>.<thread>.dropped_events counter per
  // lane so a truncated lane is visible in the metrics JSON, not just on
  // stderr.
  void RegisterMetrics(MetricsRegistry* registry) const;

  // Writes the merged Chrome trace: metadata events naming every lane,
  // then each lane's re-balanced stream stamped with its pid/tid.
  void ExportChromeJson(std::ostream& out) const;

 private:
  std::deque<Lane> lanes_;
};

}  // namespace sc::obs
