#include "obs/trace.h"

#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>

#include "util/check.h"
#include "util/log.h"

namespace sc::obs {
namespace {

// Thread-local: each host thread has its own tracer slot, so per-client
// lanes installed by fleet workers never alias (see trace.h contract).
thread_local Tracer* g_tracer = nullptr;

const char* PhaseName(Phase ph) {
  switch (ph) {
    case Phase::kBegin: return "B";
    case Phase::kEnd: return "E";
    case Phase::kInstant: return "i";
    case Phase::kFlowStart: return "s";
    case Phase::kFlowStep: return "t";
    case Phase::kFlowEnd: return "f";
  }
  return "i";
}

// Event names and categories are string literals under our control, but
// escape anyway so the output is valid JSON no matter what.
void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void WriteEvent(std::ostream& out, const TraceEvent& event, Phase ph,
                uint64_t ts, uint64_t pid, uint64_t tid) {
  out << "{\"name\":";
  WriteJsonString(out, event.name);
  out << ",\"cat\":";
  WriteJsonString(out, event.cat);
  out << ",\"ph\":\"" << PhaseName(ph) << "\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"ts\":" << ts;
  if (ph == Phase::kInstant) out << ",\"s\":\"t\"";
  if (ph == Phase::kFlowStart || ph == Phase::kFlowStep ||
      ph == Phase::kFlowEnd) {
    out << ",\"id\":" << event.flow_id;
    // Bind the arrow head to the enclosing slice rather than the next one.
    if (ph == Phase::kFlowEnd) out << ",\"bp\":\"e\"";
  }
  if (event.arg_count > 0 && ph != Phase::kEnd) {
    out << ",\"args\":{";
    for (uint8_t i = 0; i < event.arg_count; ++i) {
      if (i > 0) out << ',';
      WriteJsonString(out, event.arg_name[i]);
      out << ':' << event.arg_val[i];
    }
    out << '}';
  }
  out << '}';
}

}  // namespace

void SetTracer(Tracer* tracer) { g_tracer = tracer; }
Tracer* tracer() { return g_tracer; }

void EnsureEchoTracerForLogging() {
  if (g_tracer != nullptr) return;
  if (!util::LogEnabled(util::LogLevel::kTrace)) return;
  // Process-lifetime, echo-only (no ring): events become log lines and
  // nothing is buffered. Shared across threads (each thread's slot may
  // point here), so it must not assert single-thread writes; LogLine
  // serializes the actual output.
  static Tracer echo_tracer;
  echo_tracer.set_echo_log(true);
  echo_tracer.set_thread_affine(false);
  g_tracer = &echo_tracer;
}

void Tracer::Enable(size_t capacity) {
  if (ring_.size() != capacity) {
    ring_.assign(capacity == 0 ? 1 : capacity, TraceEvent{});
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
  }
  owner_bound_ = false;
  enabled_ = true;
}

void Tracer::CheckThread() {
  if (!thread_affine_) return;
  if (!owner_bound_) {
    owner_ = std::this_thread::get_id();
    owner_bound_ = true;
    return;
  }
  SC_CHECK(owner_ == std::this_thread::get_id())
      << "trace lane written from two threads; lanes are thread-confined "
         "(see src/obs/trace.h) — give each thread its own lane or "
         "serialize writes and call set_thread_affine(false)";
}

void Tracer::Record(Phase ph, const char* cat, const char* name, uint8_t nargs,
                    const char* a0, uint64_t v0, const char* a1, uint64_t v1) {
  if (!enabled() ) return;
  ++seq_;
  TraceEvent event;
  event.ts = Now();
  event.name = name;
  event.cat = cat;
  event.ph = ph;
  event.arg_count = nargs;
  event.arg_name[0] = a0;
  event.arg_val[0] = v0;
  event.arg_name[1] = a1;
  event.arg_val[1] = v1;
  if (echo_log_ && util::LogEnabled(util::LogLevel::kTrace)) {
    std::ostringstream line;
    line << event.cat << '.' << event.name << ' ' << PhaseName(ph) << " ts="
         << event.ts;
    for (uint8_t i = 0; i < nargs; ++i) {
      line << ' ' << event.arg_name[i] << '=' << event.arg_val[i];
    }
    util::LogLine(util::LogLevel::kTrace, line.str());
  }
  if (!enabled_ || ring_.empty()) return;  // echo-only tracer: no buffering
  CheckThread();
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;  // overwrote the oldest event
  }
}

void Tracer::RecordFlow(Phase ph, const char* cat, const char* name,
                        uint64_t flow_id) {
  if (!enabled_ || ring_.empty()) return;
  ++seq_;
  CheckThread();
  TraceEvent event;
  event.ts = Now();
  event.flow_id = flow_id;
  event.name = name;
  event.cat = cat;
  event.ph = ph;
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> events;
  events.reserve(count_);
  const size_t start = (head_ + ring_.size() - count_) % ring_.size();
  for (size_t i = 0; i < count_; ++i) {
    events.push_back(ring_[(start + i) % ring_.size()]);
  }
  return events;
}

void Tracer::ExportEventsJson(std::ostream& out, uint64_t pid, uint64_t tid,
                              bool* first) const {
  if (dropped_ > 0) {
    std::fprintf(stderr,
                 "[obs] warning: trace lane pid=%llu tid=%llu dropped %llu "
                 "events (ring capacity %zu); raise the capacity or trace a "
                 "shorter window\n",
                 static_cast<unsigned long long>(pid),
                 static_cast<unsigned long long>(tid),
                 static_cast<unsigned long long>(dropped_), ring_.size());
  }
  const std::vector<TraceEvent> events = Snapshot();
  const auto emit = [&out, first, pid, tid](const TraceEvent& event, Phase ph,
                                            uint64_t ts) {
    if (!*first) out << ",\n";
    *first = false;
    WriteEvent(out, event, ph, ts, pid, tid);
  };
  // Re-balance: a wrapped ring may start with E events whose B was
  // overwritten — skip those; spans still open at the end are closed at the
  // last timestamp so the stream always nests. The open-span stack is local
  // to this lane: one lane wrapping never eats another lane's E events.
  std::vector<const TraceEvent*> open;
  uint64_t last_ts = 0;
  for (const TraceEvent& event : events) {
    last_ts = event.ts;
    switch (event.ph) {
      case Phase::kBegin:
        open.push_back(&event);
        emit(event, Phase::kBegin, event.ts);
        break;
      case Phase::kEnd:
        if (open.empty()) continue;  // orphan from a wrapped ring
        open.pop_back();
        emit(event, Phase::kEnd, event.ts);
        break;
      case Phase::kInstant:
      case Phase::kFlowStart:
      case Phase::kFlowStep:
      case Phase::kFlowEnd:
        emit(event, event.ph, event.ts);
        break;
    }
  }
  for (size_t i = open.size(); i > 0; --i) {
    emit(*open[i - 1], Phase::kEnd, last_ts);
  }
}

void Tracer::ExportChromeJson(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  ExportEventsJson(out, /*pid=*/0, /*tid=*/0, &first);
  out << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
      << "\"clock\":\"guest cycles (1 trace us = 1 cycle)\","
      << "\"dropped_events\":" << dropped_ << "}}";
}

}  // namespace sc::obs
