// Unified metrics registry: one named, typed view over every counter the
// system keeps, with snapshot/delta semantics and JSON export.
//
// The registry deliberately owns no storage for scalar metrics. The
// existing stats structs (softcache::SoftCacheStats, LinkStats,
// PrefetchStats, net::ChannelStats, ...) remain the single source of truth
// that the hot paths increment; the registry absorbs them by registering a
// *name -> pointer* binding per field, so there is exactly one counter per
// fact and zero double-counting. Richer shapes — histograms, bounded
// timelines, value series, top-N tables — are registered the same way, as
// views over objects owned by the instrumented components.
//
// Exports:
//   * TakeSnapshot()      — scalar state (counters + gauges) at an instant.
//   * Snapshot::Delta     — per-key differences between two snapshots.
//   * ToJson()            — the full registry: scalars, histograms with
//                           p50/p95/p99, timelines, series, tables.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace sc::obs {

// Bounded timeline of event timestamps (e.g. "an eviction happened at cycle
// t"). Exact up to `max_samples` raw timestamps; past that it collapses
// into a fixed number of uniform time bins (doubling the bin width whenever
// the range outgrows them), so memory stays O(max_samples + bins) for the
// whole run while totals remain exact and range counts stay bin-accurate.
class Timeline {
 public:
  explicit Timeline(size_t max_samples = kDefaultMaxSamples,
                    size_t bins = kDefaultBins);

  void Add(uint64_t t);
  // Undoes the most recent Add(t) (rollback paths). `t` must be the value
  // passed to that Add.
  void RemoveLast(uint64_t t);

  uint64_t total() const { return total_; }
  // Events with timestamp in [lo, hi). Exact in sample mode; in collapsed
  // mode a bin counts toward the range iff its midpoint lies inside.
  uint64_t CountInRange(uint64_t lo, uint64_t hi) const;

  bool collapsed() const { return collapsed_; }
  // Raw timestamps, oldest first. Valid only before collapse.
  const std::vector<uint64_t>& samples() const { return samples_; }
  // Collapsed representation: bin `i` covers [i*bin_width, (i+1)*bin_width).
  uint64_t bin_width() const { return bin_width_; }
  const std::vector<uint64_t>& bin_counts() const { return bin_counts_; }

  static constexpr size_t kDefaultMaxSamples = 65536;
  static constexpr size_t kDefaultBins = 4096;

 private:
  void Collapse();
  void AddToBins(uint64_t t);

  size_t max_samples_;
  size_t bins_;
  uint64_t total_ = 0;
  bool collapsed_ = false;
  std::vector<uint64_t> samples_;
  std::vector<uint64_t> bin_counts_;
  uint64_t bin_width_ = 1;
};

// Bounded (time, value) series (e.g. tcache occupancy over the run). Keeps
// at most `max_points` points by doubling a sampling stride whenever the
// buffer fills: the series thins uniformly instead of truncating, so the
// whole run stays visible at decreasing resolution. The latest point is
// always retained exactly.
class Series {
 public:
  explicit Series(size_t max_points = 8192);

  void Add(uint64_t t, uint64_t value);

  struct Point {
    uint64_t t;
    uint64_t value;
  };
  const std::vector<Point>& points() const { return points_; }
  uint64_t stride() const { return stride_; }
  uint64_t total_observations() const { return observations_; }

 private:
  size_t max_points_;
  uint64_t stride_ = 1;
  uint64_t tick_ = 0;
  uint64_t observations_ = 0;
  std::vector<Point> points_;
};

class MetricsRegistry {
 public:
  // Scalar state at an instant; the unit of delta computation.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;

    // after - before, per key (keys present in either side appear; missing
    // values count as zero). Counter deltas are signed to stay honest about
    // resets.
    static Snapshot Delta(const Snapshot& before, const Snapshot& after);
    std::string ToJson() const;
    bool operator==(const Snapshot& other) const {
      return counters == other.counters && gauges == other.gauges;
    }
  };

  // All Register* calls bind a name to externally-owned storage; the source
  // must outlive the registry (or at least every export call).
  void RegisterCounter(const std::string& name, const uint64_t* source);
  void RegisterGauge(const std::string& name, std::function<double()> fn);
  void RegisterHistogram(const std::string& name, const util::Histogram* hist);
  void RegisterTimeline(const std::string& name, const Timeline* timeline);
  void RegisterSeries(const std::string& name, const Series* series);
  // A table of (key, count) rows, e.g. per-chunk fetch heat by address.
  // The function is evaluated at export time; rows are exported sorted by
  // descending count, capped at `max_rows`.
  void RegisterTable(const std::string& name,
                     std::function<std::vector<std::pair<uint64_t, uint64_t>>()> fn,
                     size_t max_rows = 32);

  Snapshot TakeSnapshot() const;
  // Full registry export (scalars + histograms with percentiles + timelines
  // + series + tables) as one JSON object.
  std::string ToJson() const;

  size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size() +
           timelines_.size() + series_.size() + tables_.size();
  }

 private:
  struct Table {
    std::function<std::vector<std::pair<uint64_t, uint64_t>>()> fn;
    size_t max_rows;
  };
  // Ordered maps: exports are deterministically sorted by name.
  std::map<std::string, const uint64_t*> counters_;
  std::map<std::string, std::function<double()>> gauges_;
  std::map<std::string, const util::Histogram*> histograms_;
  std::map<std::string, const Timeline*> timelines_;
  std::map<std::string, const Series*> series_;
  std::map<std::string, Table> tables_;
};

}  // namespace sc::obs
