// Structured event tracing: a low-overhead, ring-buffered recorder for
// spans (B/E pairs), instant events and flow events, timestamped in guest
// cycles, with a Chrome trace-event JSON exporter (loadable in
// chrome://tracing and Perfetto).
//
// Design constraints, in priority order:
//   * Zero cost when off. Every instrumentation site compiles to one load
//     of the current tracer pointer and a branch; no allocation, no
//     formatting, no string copies happen unless a tracer is installed and
//     enabled. A test asserts that cycle counts and every stats counter are
//     bit-identical with tracing on and off (observation never charges
//     guest cycles).
//   * Bounded memory. Events land in a fixed-capacity ring buffer
//     preallocated at Enable(); when the ring wraps, the oldest events are
//     overwritten and counted in dropped_events(). Event names/categories
//     must be string literals (the ring stores the pointers).
//   * Honest export. The exporter re-balances the span stream so the JSON
//     always contains properly nested B/E pairs: orphan E events from a
//     wrapped ring are skipped (per lane, never across lanes), spans still
//     open at export time are closed at the last recorded timestamp, and a
//     lane that dropped events says so — a warning goes to stderr at export
//     time and the count is exported in the JSON, never silently truncated.
//
// Thread-confinement contract (replacing the original single-threaded
// design): the installed tracer is a THREAD-LOCAL pointer, and each Tracer
// ring accepts writes from exactly one thread at a time. Fleet runs under
// `host_threads` give every client VM its own lane (a Tracer installed in
// that worker's thread-local slot while it runs the client) and the server
// loop its own lanes, written only under the loop's serialization mutex
// (those lanes opt out of the single-thread assert via
// set_thread_affine(false); their writes are ordered by the lock instead).
// Record() asserts the rule, so a lane leaking across threads fails fast
// instead of silently corrupting the ring. TraceMux (trace_mux.h) merges
// lanes into one Chrome trace with proper pid/tid rows.
//
// Timestamps come from an external clock pointer — normally vm::Machine's
// cycle counter — so a lane's timeline is its client's notion of time.
// Lanes without a clock source (the server lanes) run on a manual clock:
// AdvanceClockFloor() pushes the lane's clock forward to the guest-cycle
// timestamp the triggering request was enqueued at, so server spans sort
// causally after the client events that caused them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <thread>
#include <vector>

namespace sc::obs {

enum class Phase : uint8_t {
  kBegin,      // Chrome "B"
  kEnd,        // Chrome "E"
  kInstant,    // Chrome "i"
  kFlowStart,  // Chrome "s" — start of a cross-lane causal arrow
  kFlowStep,   // Chrome "t" — intermediate point of the arrow
  kFlowEnd,    // Chrome "f" — arrow head (binds to the enclosing slice)
};

// One recorded event. `name` and `cat` must point at string literals (or
// other storage outliving the tracer); up to two integer args ride along.
// Flow phases additionally carry the flow id linking the arrow's points.
struct TraceEvent {
  uint64_t ts = 0;  // guest cycles
  uint64_t flow_id = 0;
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name[2] = {nullptr, nullptr};
  uint64_t arg_val[2] = {0, 0};
  Phase ph = Phase::kInstant;
  uint8_t arg_count = 0;
};

class Tracer {
 public:
  // A tracer starts disabled; Enable() preallocates the ring.
  Tracer() = default;

  // Preallocates a ring of `capacity` events and starts recording.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_ || echo_log_; }
  bool recording() const { return enabled_; }

  // Timestamp source (usually &machine.cycles()'s storage, via
  // vm::Machine::cycles_counter()). Null falls back to a manual clock: the
  // event sequence number, raised through AdvanceClockFloor().
  void SetClockSource(const uint64_t* cycles) { clock_ = cycles; }

  // Manual-clock lanes only (no clock source): raises the lane clock to at
  // least `t`. Server lanes call this with the triggering ticket's
  // guest-cycle enqueue timestamp so their spans sort after their cause.
  // Monotone: a lower `t` never moves the clock backwards.
  void AdvanceClockFloor(uint64_t t) {
    if (t > floor_) floor_ = t;
  }

  // The timestamp the next event would get; lets callers stamp cross-lane
  // metadata (e.g. a ticket's enqueue time) from this lane's clock.
  uint64_t CurrentTimestamp() const {
    if (clock_ != nullptr) return *clock_;
    return seq_ > floor_ ? seq_ : floor_;
  }

  // Thread confinement (see file comment). Default on: the first Record()
  // binds the ring to the calling thread and later writes from any other
  // thread are fatal. Lanes whose writes are serialized externally (the
  // server lanes, under the loop mutex) opt out.
  void set_thread_affine(bool affine) { thread_affine_ = affine; }
  bool thread_affine() const { return thread_affine_; }
  // Re-arms the confinement check when lane ownership legitimately moves to
  // a new thread: the threaded fleet scheduler attaches clients on the main
  // thread, then hands each client's lane to the worker that runs it. Call
  // only from the new owner, with the old owner provably done writing.
  void RebindThread() { owner_bound_ = false; }

  // Echo mode: every recorded event is additionally emitted as one
  // SOFTCACHE_LOG trace-level log line. This is the single source of
  // miss-path trace logging — instrumentation sites emit exactly once, so
  // enabling logs and tracing together never double-reports.
  void set_echo_log(bool echo) { echo_log_ = echo; }
  bool echo_log() const { return echo_log_; }

  void Begin(const char* cat, const char* name) { Record(Phase::kBegin, cat, name, 0, nullptr, 0, nullptr, 0); }
  void Begin(const char* cat, const char* name, const char* a0, uint64_t v0) {
    Record(Phase::kBegin, cat, name, 1, a0, v0, nullptr, 0);
  }
  void Begin(const char* cat, const char* name, const char* a0, uint64_t v0,
             const char* a1, uint64_t v1) {
    Record(Phase::kBegin, cat, name, 2, a0, v0, a1, v1);
  }
  void End(const char* cat, const char* name) { Record(Phase::kEnd, cat, name, 0, nullptr, 0, nullptr, 0); }
  void Instant(const char* cat, const char* name) { Record(Phase::kInstant, cat, name, 0, nullptr, 0, nullptr, 0); }
  void Instant(const char* cat, const char* name, const char* a0, uint64_t v0) {
    Record(Phase::kInstant, cat, name, 1, a0, v0, nullptr, 0);
  }
  void Instant(const char* cat, const char* name, const char* a0, uint64_t v0,
               const char* a1, uint64_t v1) {
    Record(Phase::kInstant, cat, name, 2, a0, v0, a1, v1);
  }

  // Flow events: one kFlowStart, any number of kFlowSteps (possibly in
  // other lanes) and one kFlowEnd sharing `flow_id` render as an arrow
  // connecting their enclosing slices across lanes.
  void FlowStart(const char* cat, const char* name, uint64_t flow_id) {
    RecordFlow(Phase::kFlowStart, cat, name, flow_id);
  }
  void FlowStep(const char* cat, const char* name, uint64_t flow_id) {
    RecordFlow(Phase::kFlowStep, cat, name, flow_id);
  }
  void FlowEnd(const char* cat, const char* name, uint64_t flow_id) {
    RecordFlow(Phase::kFlowEnd, cat, name, flow_id);
  }

  size_t recorded_events() const { return ring_.size() == 0 ? 0 : count_; }
  uint64_t dropped_events() const { return dropped_; }
  const uint64_t* dropped_events_counter() const { return &dropped_; }
  size_t capacity() const { return ring_.size(); }

  // Events in recording order (oldest first), after any ring wrap.
  std::vector<TraceEvent> Snapshot() const;

  // Writes the Chrome trace-event JSON object ({"traceEvents": [...]}).
  // Timestamps are exported as-is: 1 trace "microsecond" == 1 guest cycle.
  // The stream is always valid JSON with balanced, properly nested B/E
  // pairs (see class comment). Warns on stderr when events were dropped.
  void ExportChromeJson(std::ostream& out) const;

  // Emits this lane's re-balanced event stream as comma-separated Chrome
  // event objects stamped with `pid`/`tid` (no surrounding array). `*first`
  // suppresses the leading comma exactly once across lanes; TraceMux uses
  // this to splice lanes into one trace. Orphan E events are skipped using
  // THIS lane's open-span stack only — a wrapped lane never unbalances its
  // neighbors.
  void ExportEventsJson(std::ostream& out, uint64_t pid, uint64_t tid,
                        bool* first) const;

  static constexpr size_t kDefaultCapacity = 1u << 18;

 private:
  void Record(Phase ph, const char* cat, const char* name, uint8_t nargs,
              const char* a0, uint64_t v0, const char* a1, uint64_t v1);
  void RecordFlow(Phase ph, const char* cat, const char* name,
                  uint64_t flow_id);
  void CheckThread();
  uint64_t Now() const { return CurrentTimestamp(); }

  bool enabled_ = false;
  bool echo_log_ = false;
  bool thread_affine_ = true;
  bool owner_bound_ = false;
  std::thread::id owner_;
  const uint64_t* clock_ = nullptr;
  uint64_t floor_ = 0;  // manual-clock floor (AdvanceClockFloor)
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;    // next write position
  size_t count_ = 0;   // live events in the ring (<= ring_.size())
  uint64_t dropped_ = 0;
  uint64_t seq_ = 0;   // fallback clock + total event ordinal
};

// Current-thread tracer registration. Instrumentation sites call tracer()
// and no-op on nullptr; the owner (srun, a test, a bench, a fleet worker)
// installs a tracer for the duration of a run — or of one scheduling step,
// for per-client lanes — and removes it afterwards. The slot is
// thread-local: installing a lane on one thread never affects another.
void SetTracer(Tracer* tracer);
Tracer* tracer();

// Installs a process-lifetime echo-only tracer when SOFTCACHE_LOG is at
// trace level and no tracer is installed yet, so `SOFTCACHE_LOG=3` alone
// (no --trace file) still prints the miss-path event stream as log lines.
// Called from SoftCacheSystem; harmless to call repeatedly.
void EnsureEchoTracerForLogging();

// RAII tracer swap: installs `lane` in this thread's slot for the scope.
// The server loop and the fleet schedulers use this to route each section
// of work into its lane.
class TracerScope {
 public:
  explicit TracerScope(Tracer* lane) : prev_(tracer()) { SetTracer(lane); }
  ~TracerScope() { SetTracer(prev_); }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  Tracer* prev_;
};

// RAII span: records B at construction and E at destruction iff a tracer is
// installed and enabled at construction time.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name) {
    Tracer* t = obs::tracer();
    if (t != nullptr && t->enabled()) {
      t->Begin(cat, name);
      tracer_ = t;
      cat_ = cat;
      name_ = name;
    }
  }
  SpanGuard(const char* cat, const char* name, const char* a0, uint64_t v0) {
    Tracer* t = obs::tracer();
    if (t != nullptr && t->enabled()) {
      t->Begin(cat, name, a0, v0);
      tracer_ = t;
      cat_ = cat;
      name_ = name;
    }
  }
  SpanGuard(const char* cat, const char* name, const char* a0, uint64_t v0,
            const char* a1, uint64_t v1) {
    Tracer* t = obs::tracer();
    if (t != nullptr && t->enabled()) {
      t->Begin(cat, name, a0, v0, a1, v1);
      tracer_ = t;
      cat_ = cat;
      name_ = name;
    }
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->End(cat_, name_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
};

}  // namespace sc::obs

// Convenience macros. OBS_SPAN introduces a scope-long span; OBS_INSTANT
// records a point event. Both are a pointer load + branch when tracing is
// off.
#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)
#define OBS_SPAN(...) \
  ::sc::obs::SpanGuard OBS_CONCAT(obs_span_, __LINE__)(__VA_ARGS__)
#define OBS_INSTANT(...)                                    \
  do {                                                      \
    ::sc::obs::Tracer* obs_t_ = ::sc::obs::tracer();        \
    if (obs_t_ != nullptr && obs_t_->enabled()) {           \
      obs_t_->Instant(__VA_ARGS__);                         \
    }                                                       \
  } while (0)
