// Structured event tracing: a low-overhead, ring-buffered recorder for
// spans (B/E pairs) and instant events, timestamped in guest cycles, with a
// Chrome trace-event JSON exporter (loadable in chrome://tracing and
// Perfetto).
//
// Design constraints, in priority order:
//   * Zero cost when off. Every instrumentation site compiles to one load
//     of the global tracer pointer and a branch; no allocation, no
//     formatting, no string copies happen unless a tracer is installed and
//     enabled. A test asserts that cycle counts and every stats counter are
//     bit-identical with tracing on and off (observation never charges
//     guest cycles).
//   * Bounded memory. Events land in a fixed-capacity ring buffer
//     preallocated at Enable(); when the ring wraps, the oldest events are
//     overwritten and counted in dropped_events(). Event names/categories
//     must be string literals (the ring stores the pointers).
//   * Honest export. The exporter re-balances the span stream so the JSON
//     always contains properly nested B/E pairs: orphan E events from a
//     wrapped ring are skipped, and spans still open at export time are
//     closed at the last recorded timestamp.
//
// The simulator is single-threaded, so there is exactly one (optional)
// global tracer and no locking. Timestamps come from an external clock
// pointer — normally vm::Machine's cycle counter — so the whole
// client/server timeline shares the client's notion of time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sc::obs {

enum class Phase : uint8_t {
  kBegin,    // Chrome "B"
  kEnd,      // Chrome "E"
  kInstant,  // Chrome "i"
};

// One recorded event. `name` and `cat` must point at string literals (or
// other storage outliving the tracer); up to two integer args ride along.
struct TraceEvent {
  uint64_t ts = 0;  // guest cycles
  const char* name = nullptr;
  const char* cat = nullptr;
  const char* arg_name[2] = {nullptr, nullptr};
  uint64_t arg_val[2] = {0, 0};
  Phase ph = Phase::kInstant;
  uint8_t arg_count = 0;
};

class Tracer {
 public:
  // A tracer starts disabled; Enable() preallocates the ring.
  Tracer() = default;

  // Preallocates a ring of `capacity` events and starts recording.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_ || echo_log_; }
  bool recording() const { return enabled_; }

  // Timestamp source (usually &machine.cycles()'s storage, via
  // vm::Machine::cycles_counter()). Null falls back to an event sequence
  // number, which still orders events correctly.
  void SetClockSource(const uint64_t* cycles) { clock_ = cycles; }

  // Echo mode: every recorded event is additionally emitted as one
  // SOFTCACHE_LOG trace-level log line. This is the single source of
  // miss-path trace logging — instrumentation sites emit exactly once, so
  // enabling logs and tracing together never double-reports.
  void set_echo_log(bool echo) { echo_log_ = echo; }
  bool echo_log() const { return echo_log_; }

  void Begin(const char* cat, const char* name) { Record(Phase::kBegin, cat, name, 0, nullptr, 0, nullptr, 0); }
  void Begin(const char* cat, const char* name, const char* a0, uint64_t v0) {
    Record(Phase::kBegin, cat, name, 1, a0, v0, nullptr, 0);
  }
  void Begin(const char* cat, const char* name, const char* a0, uint64_t v0,
             const char* a1, uint64_t v1) {
    Record(Phase::kBegin, cat, name, 2, a0, v0, a1, v1);
  }
  void End(const char* cat, const char* name) { Record(Phase::kEnd, cat, name, 0, nullptr, 0, nullptr, 0); }
  void Instant(const char* cat, const char* name) { Record(Phase::kInstant, cat, name, 0, nullptr, 0, nullptr, 0); }
  void Instant(const char* cat, const char* name, const char* a0, uint64_t v0) {
    Record(Phase::kInstant, cat, name, 1, a0, v0, nullptr, 0);
  }
  void Instant(const char* cat, const char* name, const char* a0, uint64_t v0,
               const char* a1, uint64_t v1) {
    Record(Phase::kInstant, cat, name, 2, a0, v0, a1, v1);
  }

  size_t recorded_events() const { return ring_.size() == 0 ? 0 : count_; }
  uint64_t dropped_events() const { return dropped_; }
  size_t capacity() const { return ring_.size(); }

  // Events in recording order (oldest first), after any ring wrap.
  std::vector<TraceEvent> Snapshot() const;

  // Writes the Chrome trace-event JSON object ({"traceEvents": [...]}).
  // Timestamps are exported as-is: 1 trace "microsecond" == 1 guest cycle.
  // The stream is always valid JSON with balanced, properly nested B/E
  // pairs (see class comment).
  void ExportChromeJson(std::ostream& out) const;

  static constexpr size_t kDefaultCapacity = 1u << 18;

 private:
  void Record(Phase ph, const char* cat, const char* name, uint8_t nargs,
              const char* a0, uint64_t v0, const char* a1, uint64_t v1);
  uint64_t Now() { return clock_ != nullptr ? *clock_ : seq_; }

  bool enabled_ = false;
  bool echo_log_ = false;
  const uint64_t* clock_ = nullptr;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;    // next write position
  size_t count_ = 0;   // live events in the ring (<= ring_.size())
  uint64_t dropped_ = 0;
  uint64_t seq_ = 0;   // fallback clock + total event ordinal
};

// Global tracer registration. Instrumentation sites call tracer() and
// no-op on nullptr; the owner (srun, a test, a bench) installs a tracer for
// the duration of a run and removes it afterwards.
void SetTracer(Tracer* tracer);
Tracer* tracer();

// Installs a process-lifetime echo-only tracer when SOFTCACHE_LOG is at
// trace level and no tracer is installed yet, so `SOFTCACHE_LOG=3` alone
// (no --trace file) still prints the miss-path event stream as log lines.
// Called from SoftCacheSystem; harmless to call repeatedly.
void EnsureEchoTracerForLogging();

// RAII span: records B at construction and E at destruction iff a tracer is
// installed and enabled at construction time.
class SpanGuard {
 public:
  SpanGuard(const char* cat, const char* name) {
    Tracer* t = obs::tracer();
    if (t != nullptr && t->enabled()) {
      t->Begin(cat, name);
      tracer_ = t;
      cat_ = cat;
      name_ = name;
    }
  }
  SpanGuard(const char* cat, const char* name, const char* a0, uint64_t v0) {
    Tracer* t = obs::tracer();
    if (t != nullptr && t->enabled()) {
      t->Begin(cat, name, a0, v0);
      tracer_ = t;
      cat_ = cat;
      name_ = name;
    }
  }
  SpanGuard(const char* cat, const char* name, const char* a0, uint64_t v0,
            const char* a1, uint64_t v1) {
    Tracer* t = obs::tracer();
    if (t != nullptr && t->enabled()) {
      t->Begin(cat, name, a0, v0, a1, v1);
      tracer_ = t;
      cat_ = cat;
      name_ = name;
    }
  }
  ~SpanGuard() {
    if (tracer_ != nullptr) tracer_->End(cat_, name_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
};

}  // namespace sc::obs

// Convenience macros. OBS_SPAN introduces a scope-long span; OBS_INSTANT
// records a point event. Both are a pointer load + branch when tracing is
// off.
#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)
#define OBS_SPAN(...) \
  ::sc::obs::SpanGuard OBS_CONCAT(obs_span_, __LINE__)(__VA_ARGS__)
#define OBS_INSTANT(...)                                    \
  do {                                                      \
    ::sc::obs::Tracer* obs_t_ = ::sc::obs::tracer();        \
    if (obs_t_ != nullptr && obs_t_->enabled()) {           \
      obs_t_->Instant(__VA_ARGS__);                         \
    }                                                       \
  } while (0)
