// Chunking: how the memory controller breaks the program into pieces.
//
// SPARC-style chunks are basic blocks: instructions from the requested
// address up to and including the first control transfer (or a size cap).
// ARM-style chunks are whole procedures, located via the image symbol table.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"
#include "isa/isa.h"
#include "util/result.h"

namespace sc::softcache {

enum class ExitKind : uint8_t {
  kNone,         // block ends in return or halt — no successor to link
  kFallthrough,  // unconditional successor (fallthrough, or a J's target)
  kBranch,       // conditional branch: taken target + fallthrough
  kCall,         // JAL: callee + continuation
  kComputed,     // JALR through a register: resolved via the hash table
};

// A chunk of original program code, as shipped by the MC.
struct Chunk {
  uint32_t orig_addr = 0;          // address of the first instruction
  std::vector<uint32_t> words;     // original instruction words
  ExitKind exit = ExitKind::kNone; // how the chunk's terminator exits
  uint32_t taken_target = 0;       // kBranch taken / kCall callee / kFallthrough target
  uint32_t fall_target = 0;        // kBranch fallthrough / kCall continuation
  // For procedure chunks: offset (in words) of the requested entry point.
  uint32_t entry_word = 0;
  // True when a terminating J was folded into a kFallthrough exit (the
  // original block occupies one more word than `words` holds).
  bool jump_folded = false;

  uint32_t orig_span_bytes() const {
    return (static_cast<uint32_t>(words.size()) + (jump_folded ? 1 : 0)) * 4;
  }

  uint32_t size_bytes() const { return static_cast<uint32_t>(words.size()) * 4; }
};

// Extracts the basic block starting at `pc`. The terminating control
// transfer is *included* in words for branch/call/computed/return blocks;
// a J terminator is folded into a kFallthrough exit (the J itself is
// dropped; the rewriter materializes the jump in an exit slot).
// Fails on addresses outside text or on malformed code (e.g. an illegal
// opcode or a computed jump through ra, which the programming model
// forbids).
//
// `max_blocks` > 1 enables trace chunking (the paper: a chunk "could
// certainly be a larger sequence of instructions, such as a trace"): the
// chunk continues through up to max_blocks-1 conditional branches, which
// become mid-chunk side exits; the taken targets remain encoded in the
// branch words themselves, so the wire format is unchanged.
util::Result<Chunk> ChunkBasicBlock(const image::Image& image, uint32_t pc,
                                    uint32_t max_instrs, uint32_t max_blocks = 1);

// Extracts the whole procedure containing `pc` (via the symbol table),
// with entry_word set to the requested address's offset.
util::Result<Chunk> ChunkProcedure(const image::Image& image, uint32_t pc);

// Static control-flow successors of `chunk`, in natural execution-likelihood
// order (fallthrough/continuation first, then taken targets and callees).
// For basic-block/trace chunks these come from the exit metadata plus the
// mid-chunk side-exit branches; for procedure chunks they are the callees of
// every JAL in the body. Addresses outside `image`'s text are omitted; the
// chunk's own start is never returned. This is the edge set the memory
// controller walks when predicting which chunks to prefetch.
std::vector<uint32_t> ChunkSuccessors(const image::Image& image,
                                      const Chunk& chunk);

}  // namespace sc::softcache
