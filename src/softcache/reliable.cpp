#include "softcache/reliable.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"
#include "softcache/mc.h"
#include "softcache/stats.h"
#include "util/check.h"

namespace sc::softcache {

ReliableLink::ReliableLink(std::unique_ptr<net::Transport> transport,
                           const RetryConfig& retry, LinkStats* stats)
    : transport_(std::move(transport)),
      retry_(retry),
      stats_(stats),
      jitter_rng_(retry.jitter_seed) {
  SC_CHECK(transport_ != nullptr);
  SC_CHECK(stats_ != nullptr);
  SC_CHECK_GT(retry_.max_attempts, 0u);
  SC_CHECK_GT(retry_.timeout_cycles, 0u);
}

util::Result<Reply> ReliableLink::Call(const Request& request,
                                       uint64_t* cycles) {
  OBS_SPAN("link", "call", "seq", request.seq,
           "type", static_cast<uint64_t>(request.type));
  // A traced miss passes through here on its way to the wire: add the
  // transmit point of its causal flow arrow inside the link.call slice.
  if (request.rid != 0) {
    if (obs::Tracer* t = obs::tracer(); t != nullptr && t->recording()) {
      t->FlowStep("flow", "miss", FlowId(request.client_id, request.rid));
    }
  }
  ++stats_->requests;
  const std::vector<uint8_t> frame = request.Serialize();
  uint64_t timeout = retry_.timeout_cycles;
  // Cycles this call has charged so far — the attempt deadline's clock.
  uint64_t spent = 0;
  const auto charge = [&](uint64_t c) {
    *cycles += c;
    spent += c;
  };
  for (uint32_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_->retries;
      OBS_INSTANT("link", "retry", "seq", request.seq, "attempt", attempt);
    }
    charge(transport_->Send(frame));
    std::vector<uint8_t> reply_bytes;
    uint64_t recv_cycles = 0;
    while (transport_->Recv(&reply_bytes, &recv_cycles)) {
      charge(recv_cycles);
      auto reply = Reply::Parse(reply_bytes);
      if (!reply.ok()) {
        ++stats_->corrupt_frames;
        OBS_INSTANT("link", "corrupt_frame", "seq", request.seq);
        continue;
      }
      if (reply->seq != request.seq) {
        // A duplicate of an earlier reply, or the MC's seq-0 answer to a
        // request that was corrupted in flight. Either way: not ours.
        ++stats_->stale_replies;
        OBS_INSTANT("link", "stale_reply", "want", request.seq,
                    "got", reply->seq);
        continue;
      }
      if (reply->client_id != (request.client_id & kClientIdMask)) {
        // A seq collision with another client's session (each client owns a
        // disjoint seq range, so this only happens under hostile traffic or
        // a misbehaving switch). Not ours.
        ++stats_->stale_replies;
        OBS_INSTANT("link", "stale_reply", "want", request.seq,
                    "got_client", reply->client_id);
        continue;
      }
      return std::move(*reply);
    }
    // Nothing pending matches: the request or every copy of its reply was
    // lost. Wait out the backoff and retransmit.
    ++stats_->timeouts;
    uint64_t wait = timeout;
    if (retry_.backoff_jitter > 0) {
      // Scale by a uniform factor in [1-j, 1+j). Drawn only on this branch,
      // so jitter-off calls replay the historical stream bit-identically.
      const double factor = 1.0 - retry_.backoff_jitter +
                            2.0 * retry_.backoff_jitter *
                                jitter_rng_.NextDouble();
      wait = std::max<uint64_t>(1, static_cast<uint64_t>(
                                       static_cast<double>(timeout) * factor));
    }
    OBS_INSTANT("link", "timeout", "seq", request.seq, "waited", wait);
    charge(wait);
    timeout = std::min(timeout * 2, retry_.max_timeout_cycles);
    if (retry_.attempt_deadline_cycles != 0 &&
        spent >= retry_.attempt_deadline_cycles) {
      // Hard deadline: the op has stalled the guest long enough. Give up
      // now rather than burn the remaining attempt budget.
      ++stats_->giveups;
      OBS_INSTANT("link", "giveup", "seq", request.seq, "deadline", spent);
      return util::Error{"transport: deadline after " +
                         std::to_string(attempt + 1) + " attempts (" +
                         std::to_string(spent) + " cycles)"};
    }
  }
  ++stats_->giveups;
  OBS_INSTANT("link", "giveup", "seq", request.seq);
  return util::Error{"transport: no reply after " +
                     std::to_string(retry_.max_attempts) + " attempts"};
}

std::unique_ptr<net::Transport> MakeTransport(net::FrameHandler handler,
                                              net::Channel& channel,
                                              const net::FaultConfig& fault,
                                              std::function<void()> crash) {
  if (fault.enabled()) {
    auto transport = std::make_unique<net::FaultyTransport>(
        channel, std::move(handler), fault);
    if (fault.crash_enabled() && crash) {
      transport->set_crash_handler(std::move(crash));
    }
    return transport;
  }
  return std::make_unique<net::LoopbackTransport>(channel, std::move(handler));
}

std::unique_ptr<net::Transport> MakeMcTransport(MemoryController& mc,
                                                net::Channel& channel,
                                                const net::FaultConfig& fault) {
  return MakeTransport(
      [&mc](const std::vector<uint8_t>& bytes) { return mc.Handle(bytes); },
      channel, fault, [&mc] { mc.Restart(); });
}

}  // namespace sc::softcache
