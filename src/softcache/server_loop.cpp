#include "softcache/server_loop.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "softcache/protocol.h"
#include "util/check.h"

namespace sc::softcache {

namespace {

// Thread-local service context: which pool worker (if any) this thread is,
// and the enqueue timestamp of the ticket it is currently inside. Thread-
// local (not members) because several workers service tickets concurrently.
thread_local int tls_worker = -1;
thread_local uint64_t tls_enqueue_ts = 0;

}  // namespace

McServerLoop::McServerLoop(PortHandler handler, LaneRouter router,
                           const McServerLoopConfig& config)
    : handler_(std::move(handler)),
      router_(std::move(router)),
      max_queue_(config.max_queue),
      worker_count_(config.workers),
      lanes_(std::max<uint32_t>(config.lanes, 1)),
      worker_stats_(config.workers),
      worker_lanes_(config.workers, nullptr),
      // Queue waits are host time: sub-microsecond uncontended, tens of
      // microseconds when many client threads arrive at once. One bucket
      // per 8 us to 1 ms; slower outliers clamp into the last bucket.
      queue_wait_ns_(0, 1e6, 128) {
  SC_CHECK(handler_ != nullptr) << "McServerLoop needs a port handler";
  threads_.reserve(config.workers);
  for (uint32_t w = 0; w < config.workers; ++w) {
    threads_.emplace_back([this, w] { WorkerMain(w); });
  }
}

McServerLoop::~McServerLoop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int McServerLoop::current_worker() { return tls_worker; }

uint64_t McServerLoop::current_ticket_enqueue_ts() { return tls_enqueue_ts; }

void McServerLoop::set_trace_lane(obs::Tracer* lane) {
  std::lock_guard<std::mutex> lock(mu_);
  loop_lane_ = lane;
}

void McServerLoop::set_worker_trace_lane(uint32_t worker, obs::Tracer* lane) {
  std::lock_guard<std::mutex> lock(mu_);
  SC_CHECK_LT(worker, worker_lanes_.size()) << "no such worker";
  worker_lanes_[worker] = lane;
}

std::vector<uint8_t> McServerLoop::Service(Ticket* t, obs::Tracer* lane) {
  if (lane == nullptr || !lane->recording()) {
    tls_enqueue_ts = 0;
    return handler_(t->port, *t->frame);
  }
  // Service lanes run on manual clocks: raise this one to the ticket's
  // guest-cycle enqueue time so the span sorts causally after the client
  // events that produced the frame.
  tls_enqueue_ts = t->enqueue_ts;
  lane->AdvanceClockFloor(t->enqueue_ts);
  lane->Begin("loop", "ticket", "port", t->port);
  // A traced miss (nonzero rid nibble) gets its causal arrow routed through
  // this ticket slice.
  if (const uint32_t rid = PeekFrameRid(*t->frame); rid != 0) {
    lane->FlowStep("flow", "miss", FlowId(PeekFrameClientId(*t->frame), rid));
  }
  std::vector<uint8_t> reply = handler_(t->port, *t->frame);
  lane->End("loop", "ticket");
  tls_enqueue_ts = 0;
  return reply;
}

void McServerLoop::NoteDequeue(Lane* lane, Ticket* t) {
  // Dropping below the bound re-admits one deferred submitter.
  if (max_queue_ != 0 && lane->queue.size() + 1 == max_queue_) {
    cv_.notify_all();
  }
  queue_wait_ns_.Add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t->enqueue_host)
          .count()));
}

McServerLoop::Ticket* McServerLoop::NextOwnedTicket(uint32_t worker,
                                                    uint32_t* lane_out) {
  if (exclusive_active_ || exclusive_waiters_ != 0) return nullptr;
  const uint32_t n = static_cast<uint32_t>(lanes_.size());
  const uint32_t workers_n = worker_count_;
  // Static ownership: worker w drains exactly the lanes congruent to w
  // modulo the pool size, so a given lane — hence a given memo shard and
  // its trace lane — is only ever touched by one worker thread.
  for (uint32_t l = worker; l < n; l += workers_n) {
    if (!lanes_[l].queue.empty()) {
      Ticket* t = lanes_[l].queue.front();
      lanes_[l].queue.pop_front();
      NoteDequeue(&lanes_[l], t);
      *lane_out = l;
      return t;
    }
  }
  return nullptr;
}

void McServerLoop::WorkerMain(uint32_t w) {
  tls_worker = static_cast<int>(w);
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t burst = 0;  // tickets serviced since the last idle wait
  for (;;) {
    if (shutdown_) return;
    uint32_t lane_index = 0;
    Ticket* t = NextOwnedTicket(w, &lane_index);
    if (t == nullptr) {
      if (burst != 0) {
        ++stats_.batches_drained;
        burst = 0;
      }
      work_cv_.wait(lock);
      continue;
    }
    ++busy_;
    obs::Tracer* lane = worker_lanes_[w];
    lock.unlock();
    const auto start = std::chrono::steady_clock::now();
    std::vector<uint8_t> reply = Service(t, lane);
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    lock.lock();
    --busy_;
    ++burst;
    worker_stats_[w].frames++;
    worker_stats_[w].busy_ns += ns;
    worker_stats_[w].busy_hist_ns.Add(static_cast<double>(ns));
    t->reply = std::move(reply);
    t->done = true;
    // Wakes the ticket's submitter, deferred submitters, and any exclusive
    // waiting for busy_ to reach zero.
    cv_.notify_all();
  }
}

std::vector<uint8_t> McServerLoop::Submit(uint32_t port,
                                          const std::vector<uint8_t>& frame) {
  Ticket ticket;
  ticket.port = port;
  ticket.frame = &frame;
  // Stamp the enqueue moment: guest cycles from the enqueuing thread's own
  // trace lane (its clock — no cross-thread reads), host time for the
  // queue-wait histogram.
  if (obs::Tracer* lane = obs::tracer();
      lane != nullptr && lane->recording()) {
    ticket.enqueue_ts = lane->CurrentTimestamp();
  }
  ticket.enqueue_host = std::chrono::steady_clock::now();

  // Route outside every lock; garbage frames fold to lane 0 and get their
  // error reply from whichever slice services them.
  uint32_t lane_index = 0;
  if (router_ != nullptr && lanes_.size() > 1) {
    lane_index = router_(port, frame) % static_cast<uint32_t>(lanes_.size());
  }

  std::unique_lock<std::mutex> lock(mu_);
  Lane& lane = lanes_[lane_index];
  // Backpressure: defer while this lane sits at its bound. The waiter holds
  // no queued ticket, so service (the pump, or the lane's owning worker)
  // always has a live thread to drain the lane — deferral cannot deadlock.
  // The single-threaded schedulers never defer: their depth is at most 1.
  if (max_queue_ != 0 && lane.queue.size() >= max_queue_) {
    ++stats_.requests_deferred;
    cv_.wait(lock, [&] { return lane.queue.size() < max_queue_; });
  }
  lane.queue.push_back(&ticket);
  ++stats_.requests_enqueued;
  stats_.queue_depth_sum += lane.queue.size();
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, lane.queue.size());

  if (worker_count_ != 0) {
    // Worker pool: hand the ticket to the lane's owner and wait.
    work_cv_.notify_all();
    cv_.wait(lock, [&] { return ticket.done; });
    return std::move(ticket.reply);
  }

  // Borrowed-thread mode: pump the lane ourselves (or wait for the thread
  // already pumping it to complete our ticket).
  while (!ticket.done) {
    if (exclusive_active_ || exclusive_waiters_ != 0) {
      // An exclusive section is running or parked waiting: don't start new
      // service until it has finished (it would starve otherwise).
      cv_.wait(lock);
    } else if (!lane.pumping) {
      // Become the pumper: drain the lane in arrival order. Tickets that
      // arrive while we are inside the server core are seen on the next
      // iteration (the queue is re-checked under mu_ every pass), so one
      // drain services every frame queued behind ours too.
      lane.pumping = true;
      while (!lane.queue.empty() && !exclusive_active_ &&
             exclusive_waiters_ == 0) {
        Ticket* t = lane.queue.front();
        lane.queue.pop_front();
        NoteDequeue(&lane, t);
        ++busy_;
        obs::Tracer* trace = loop_lane_;
        lock.unlock();
        std::vector<uint8_t> reply = Service(t, trace);
        lock.lock();
        --busy_;
        t->reply = std::move(reply);
        t->done = true;
      }
      lane.pumping = false;
      ++stats_.batches_drained;
      cv_.notify_all();
    } else {
      // Another thread is pumping this lane; it will complete our ticket.
      cv_.wait(lock);
    }
  }
  return std::move(ticket.reply);
}

void McServerLoop::RunExclusive(const std::function<void()>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.exclusive_sections;
  // Park-all: raising exclusive_waiters_ stops pumpers and workers from
  // starting new tickets; busy_ reaching zero means every in-flight handler
  // has drained. Concurrent exclusives serialize on exclusive_active_.
  ++exclusive_waiters_;
  cv_.wait(lock, [this] { return !exclusive_active_ && busy_ == 0; });
  --exclusive_waiters_;
  exclusive_active_ = true;
  lock.unlock();
  fn();
  lock.lock();
  exclusive_active_ = false;
  // Resume the lanes: wake parked pumpers/submitters and idle workers.
  cv_.notify_all();
  work_cv_.notify_all();
}

void McServerLoop::RegisterMetrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->RegisterCounter(prefix + "requests_enqueued",
                            &stats_.requests_enqueued);
  registry->RegisterCounter(prefix + "batches_drained",
                            &stats_.batches_drained);
  registry->RegisterCounter(prefix + "max_queue_depth",
                            &stats_.max_queue_depth);
  registry->RegisterCounter(prefix + "queue_depth_sum",
                            &stats_.queue_depth_sum);
  registry->RegisterCounter(prefix + "exclusive_sections",
                            &stats_.exclusive_sections);
  registry->RegisterCounter(prefix + "requests_deferred",
                            &stats_.requests_deferred);
  registry->RegisterGauge(prefix + "queue_depth", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t depth = 0;
    for (const Lane& lane : lanes_) depth += lane.queue.size();
    return static_cast<double>(depth);
  });
  registry->RegisterGauge(prefix + "avg_queue_depth", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_.requests_enqueued == 0
               ? 0.0
               : static_cast<double>(stats_.queue_depth_sum) /
                     static_cast<double>(stats_.requests_enqueued);
  });
  // Host-time histogram: excluded from snapshot determinism on purpose.
  registry->RegisterHistogram(prefix + "queue_wait_ns", &queue_wait_ns_);
  // Per-pool-worker service counters: mc.worker<i>.* alongside mc.loop.*.
  // The vector is sized once in the constructor, so the addresses are
  // stable for the registry's whole lifetime.
  const std::string root = prefix.substr(0, prefix.find('.') + 1);
  for (size_t w = 0; w < worker_stats_.size(); ++w) {
    const std::string wp = root + "worker" + std::to_string(w) + ".";
    registry->RegisterCounter(wp + "frames", &worker_stats_[w].frames);
    // Host wall-clock, so a histogram (per-ticket service ns): host-time
    // metrics stay out of the scalar snapshot determinism checks.
    registry->RegisterHistogram(wp + "busy_ns",
                                &worker_stats_[w].busy_hist_ns);
  }
}

}  // namespace sc::softcache
