#include "softcache/server_loop.h"

#include <algorithm>

#include "obs/metrics.h"

namespace sc::softcache {

std::vector<uint8_t> McServerLoop::Submit(uint32_t port,
                                          const std::vector<uint8_t>& frame) {
  Ticket ticket;
  ticket.port = port;
  ticket.frame = &frame;

  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&ticket);
  ++stats_.requests_enqueued;
  stats_.queue_depth_sum += queue_.size();
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, queue_.size());

  while (!ticket.done) {
    if (!pumping_) {
      // Become the pumper: drain the queue in arrival order. Tickets that
      // arrive while we are inside the server core are seen on the next
      // iteration (the queue is re-checked under mu_ every pass), so one
      // drain services every frame queued behind ours too.
      pumping_ = true;
      while (!queue_.empty()) {
        Ticket* t = queue_.front();
        queue_.pop_front();
        lock.unlock();
        std::vector<uint8_t> reply;
        {
          std::lock_guard<std::mutex> server_lock(server_mu_);
          reply = handler_(t->port, *t->frame);
        }
        lock.lock();
        t->reply = std::move(reply);
        t->done = true;
      }
      pumping_ = false;
      ++stats_.batches_drained;
      cv_.notify_all();
    } else {
      // Another thread is pumping; it will complete our ticket.
      cv_.wait(lock);
    }
  }
  return std::move(ticket.reply);
}

void McServerLoop::RunExclusive(const std::function<void()>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.exclusive_sections;
  }
  std::lock_guard<std::mutex> server_lock(server_mu_);
  fn();
}

void McServerLoop::RegisterMetrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->RegisterCounter(prefix + "requests_enqueued",
                            &stats_.requests_enqueued);
  registry->RegisterCounter(prefix + "batches_drained",
                            &stats_.batches_drained);
  registry->RegisterCounter(prefix + "max_queue_depth",
                            &stats_.max_queue_depth);
  registry->RegisterCounter(prefix + "queue_depth_sum",
                            &stats_.queue_depth_sum);
  registry->RegisterCounter(prefix + "exclusive_sections",
                            &stats_.exclusive_sections);
  registry->RegisterGauge(prefix + "avg_queue_depth", [this] {
    return stats_.requests_enqueued == 0
               ? 0.0
               : static_cast<double>(stats_.queue_depth_sum) /
                     static_cast<double>(stats_.requests_enqueued);
  });
}

}  // namespace sc::softcache
