#include "softcache/server_loop.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "softcache/protocol.h"

namespace sc::softcache {

McServerLoop::McServerLoop(PortHandler handler, size_t max_queue)
    : handler_(std::move(handler)),
      max_queue_(max_queue),
      // Queue waits are host time: sub-microsecond uncontended, tens of
      // microseconds when many client threads arrive at once. One bucket
      // per 8 us to 1 ms; slower outliers clamp into the last bucket.
      queue_wait_ns_(0, 1e6, 128) {}

std::vector<uint8_t> McServerLoop::Service(Ticket* t) {
  if (loop_lane_ == nullptr || !loop_lane_->recording()) {
    current_enqueue_ts_ = 0;
    return handler_(t->port, *t->frame);
  }
  // The loop lane runs on a manual clock: raise it to the ticket's
  // guest-cycle enqueue time so this span sorts causally after the client
  // events that produced the frame.
  current_enqueue_ts_ = t->enqueue_ts;
  loop_lane_->AdvanceClockFloor(t->enqueue_ts);
  loop_lane_->Begin("loop", "ticket", "port", t->port);
  // A traced miss (nonzero rid nibble) gets its causal arrow routed through
  // this ticket slice.
  if (const uint32_t rid = PeekFrameRid(*t->frame); rid != 0) {
    loop_lane_->FlowStep("flow", "miss",
                         FlowId(PeekFrameClientId(*t->frame), rid));
  }
  std::vector<uint8_t> reply = handler_(t->port, *t->frame);
  loop_lane_->End("loop", "ticket");
  current_enqueue_ts_ = 0;
  return reply;
}

std::vector<uint8_t> McServerLoop::Submit(uint32_t port,
                                          const std::vector<uint8_t>& frame) {
  Ticket ticket;
  ticket.port = port;
  ticket.frame = &frame;
  // Stamp the enqueue moment: guest cycles from the enqueuing thread's own
  // trace lane (its clock — no cross-thread reads), host time for the
  // queue-wait histogram.
  if (obs::Tracer* lane = obs::tracer();
      lane != nullptr && lane->recording()) {
    ticket.enqueue_ts = lane->CurrentTimestamp();
  }
  ticket.enqueue_host = std::chrono::steady_clock::now();

  std::unique_lock<std::mutex> lock(mu_);
  // Backpressure: defer while the queue sits at its bound. The waiter holds
  // no queued ticket, so the pump (run by an admitted ticket's owner) always
  // has a live thread to drain the queue — deferral cannot deadlock. The
  // single-threaded schedulers never defer: their queue depth is at most 1.
  if (max_queue_ != 0 && queue_.size() >= max_queue_) {
    ++stats_.requests_deferred;
    cv_.wait(lock, [this] { return queue_.size() < max_queue_; });
  }
  queue_.push_back(&ticket);
  ++stats_.requests_enqueued;
  stats_.queue_depth_sum += queue_.size();
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, queue_.size());

  while (!ticket.done) {
    if (!pumping_) {
      // Become the pumper: drain the queue in arrival order. Tickets that
      // arrive while we are inside the server core are seen on the next
      // iteration (the queue is re-checked under mu_ every pass), so one
      // drain services every frame queued behind ours too.
      pumping_ = true;
      while (!queue_.empty()) {
        Ticket* t = queue_.front();
        queue_.pop_front();
        // Dropping below the bound re-admits one deferred submitter.
        if (max_queue_ != 0 && queue_.size() + 1 == max_queue_) {
          cv_.notify_all();
        }
        queue_wait_ns_.Add(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t->enqueue_host)
                .count()));
        lock.unlock();
        std::vector<uint8_t> reply;
        {
          std::lock_guard<std::mutex> server_lock(server_mu_);
          reply = Service(t);
        }
        lock.lock();
        t->reply = std::move(reply);
        t->done = true;
      }
      pumping_ = false;
      ++stats_.batches_drained;
      cv_.notify_all();
    } else {
      // Another thread is pumping; it will complete our ticket.
      cv_.wait(lock);
    }
  }
  return std::move(ticket.reply);
}

void McServerLoop::RunExclusive(const std::function<void()>& fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.exclusive_sections;
  }
  std::lock_guard<std::mutex> server_lock(server_mu_);
  fn();
}

void McServerLoop::RegisterMetrics(obs::MetricsRegistry* registry,
                                   const std::string& prefix) const {
  registry->RegisterCounter(prefix + "requests_enqueued",
                            &stats_.requests_enqueued);
  registry->RegisterCounter(prefix + "batches_drained",
                            &stats_.batches_drained);
  registry->RegisterCounter(prefix + "max_queue_depth",
                            &stats_.max_queue_depth);
  registry->RegisterCounter(prefix + "queue_depth_sum",
                            &stats_.queue_depth_sum);
  registry->RegisterCounter(prefix + "exclusive_sections",
                            &stats_.exclusive_sections);
  registry->RegisterCounter(prefix + "requests_deferred",
                            &stats_.requests_deferred);
  registry->RegisterGauge(prefix + "queue_depth", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(queue_.size());
  });
  registry->RegisterGauge(prefix + "avg_queue_depth", [this] {
    return stats_.requests_enqueued == 0
               ? 0.0
               : static_cast<double>(stats_.queue_depth_sum) /
                     static_cast<double>(stats_.requests_enqueued);
  });
  // Host-time histogram: excluded from snapshot determinism on purpose.
  registry->RegisterHistogram(prefix + "queue_wait_ns", &queue_wait_ns_);
}

}  // namespace sc::softcache
