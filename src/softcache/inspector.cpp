#include "softcache/inspector.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "softcache/cc.h"
#include "softcache/mc.h"
#include "softcache/system.h"
#include "vm/machine.h"
#include "vm/superblock.h"

namespace sc::softcache {
namespace {

// Digests are 64-bit; hex strings keep them exact in every JSON reader.
std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

}  // namespace

void Inspector::WriteClient(std::ostream& out, uint32_t id,
                            const vm::Machine& machine, CacheController& cc) {
  out << "{\"id\":" << id << ",\"cycles\":" << machine.cycles()
      << ",\"instructions\":" << machine.instructions();

  // Tcache occupancy map: every resident rewritten block, tcache order.
  out << ",\"tcache\":{\"base\":" << cc.local_base()
      << ",\"capacity_bytes\":" << (cc.cells_base() - cc.local_base())
      << ",\"live_bytes\":" << cc.live_tcache_bytes() << ",\"blocks\":[";
  bool first = true;
  for (const CacheController::BlockView& block : cc.SnapshotBlocks()) {
    if (!first) out << ",";
    first = false;
    out << "{\"orig\":" << block.orig_addr << ",\"span\":" << block.orig_span
        << ",\"tc\":" << block.tc_addr << ",\"bytes\":" << block.tc_bytes
        << ",\"in_edges\":" << block.in_edges
        << ",\"out_edges\":" << block.out_edges
        << ",\"pinned\":" << (block.pinned ? "true" : "false") << "}";
  }
  out << "]}";

  // Prefetch staging buffer (raw untranslated chunks), FIFO order.
  out << ",\"staged\":{\"bytes\":" << cc.staged_bytes() << ",\"chunks\":[";
  first = true;
  for (const auto& [orig, cost] : cc.SnapshotStaged()) {
    if (!first) out << ",";
    first = false;
    out << "{\"orig\":" << orig << ",\"cost\":" << cost << "}";
  }
  out << "]}";

  // Threaded-engine superblock cache and its chain graph (absent under the
  // interpreter, where the machine never builds one).
  const vm::SbStats& sb_stats = machine.sb_stats();
  out << ",\"superblocks\":{\"fills\":" << sb_stats.fills
      << ",\"chains\":" << sb_stats.chains
      << ",\"invalidations\":" << sb_stats.invalidations
      << ",\"flushes\":" << sb_stats.flushes;
  if (const vm::SuperblockCache* sb_cache = machine.sb_cache()) {
    out << ",\"live\":" << sb_cache->live_blocks()
        << ",\"pool\":" << sb_cache->pool_size() << ",\"blocks\":[";
    first = true;
    sb_cache->ForEachLive([&](const vm::Superblock& sb,
                              const vm::Superblock* taken,
                              const vm::Superblock* fall) {
      if (!first) out << ",";
      first = false;
      out << "{\"start\":" << sb.start << ",\"span\":" << sb.span
          << ",\"ops\":" << sb.n_ops << ",\"taken\":";
      if (taken != nullptr) {
        out << taken->start;
      } else {
        out << "null";
      }
      out << ",\"fall\":";
      if (fall != nullptr) {
        out << fall->start;
      } else {
        out << "null";
      }
      out << "}";
    });
    out << "]}";
  } else {
    out << ",\"live\":0,\"pool\":0,\"blocks\":[]}";
  }

  // Shared-reply snoop store residency (null when the mode is off).
  if (ChunkContentStore* store = cc.content_store()) {
    out << ",\"content_store\":{\"capacity_bytes\":" << store->capacity_bytes()
        << ",\"bytes\":" << store->bytes() << ",\"chunks\":[";
    first = true;
    for (const ChunkContentStore::EntryView& entry : store->SnapshotEntries()) {
      if (!first) out << ",";
      first = false;
      out << "{\"digest\":\"" << HexU64(entry.digest)
          << "\",\"addr\":" << entry.addr << ",\"bytes\":" << entry.bytes
          << "}";
    }
    out << "]}";
  } else {
    out << ",\"content_store\":null";
  }
  out << "}";
}

void Inspector::WriteServer(std::ostream& out, const MemoryController& mc) {
  const McServer& server = mc.server();
  out << "{\"shards\":" << server.shards()
      << ",\"memo_entries\":" << server.memo_entries()
      << ",\"published_digests\":" << server.published_digests();

  out << ",\"shard_stats\":[";
  for (uint32_t s = 0; s < server.shards(); ++s) {
    if (s != 0) out << ",";
    out << "{\"translates\":" << server.shard_translates(s)
        << ",\"memo_hits\":" << server.shard_memo_hits(s)
        << ",\"entries\":" << server.shard_memo_entries(s) << "}";
  }
  out << "]";

  // Memoized-translation residency with fleet demand heat, (shard, addr)
  // order.
  out << ",\"memo\":[";
  bool first = true;
  for (const McServer::MemoEntryView& entry : server.SnapshotMemo()) {
    if (!first) out << ",";
    first = false;
    out << "{\"shard\":" << entry.shard << ",\"addr\":" << entry.addr
        << ",\"span\":" << entry.span_bytes << ",\"words\":" << entry.words
        << ",\"heat\":" << entry.heat << "}";
  }
  out << "]";

  // Per-session COW overlay footprints and journal watermarks.
  out << ",\"sessions\":[";
  first = true;
  for (uint32_t id : mc.SessionIds()) {
    const McSession* session = mc.FindSession(id);
    if (session == nullptr) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << id << ",\"epoch\":" << session->epoch()
        << ",\"applied_text_ops\":" << session->applied_text_ops()
        << ",\"stable_text_ops\":" << session->stable_text_ops()
        << ",\"applied_data_ops\":" << session->applied_data_ops()
        << ",\"stable_data_ops\":" << session->stable_data_ops()
        << ",\"private_text\":"
        << (session->has_private_text() ? "true" : "false")
        << ",\"data_pages\":" << session->private_data_pages()
        << ",\"stable_data_pages\":" << session->stable_private_data_pages()
        << ",\"pending_text\":" << session->pending_text_writes()
        << ",\"pending_data\":" << session->pending_data_writes()
        << ",\"page_indexes\":[";
    bool first_page = true;
    for (uint32_t page : session->PrivateDataPageIndexes()) {
      if (!first_page) out << ",";
      first_page = false;
      out << page;
    }
    out << "]}";
  }
  out << "]}";
}

void Inspector::WriteJson(std::ostream& out, const std::string& reason,
                          Scope scope) {
  out << "{\"softcache_inspector\":1,\"reason\":\"" << reason
      << "\",\"seq\":" << seq_ << ",\"scope\":\""
      << (scope == Scope::kFull ? "full" : "server") << "\"";
  ++seq_;

  out << ",\"clients\":[";
  if (scope == Scope::kFull) {
    if (solo_ != nullptr) {
      WriteClient(out, 0, solo_->machine(), solo_->cc());
    } else {
      for (size_t i = 0; i < fleet_->clients(); ++i) {
        if (i != 0) out << ",";
        WriteClient(out, static_cast<uint32_t>(i), fleet_->machine(i),
                    fleet_->cc(i));
      }
    }
  }
  out << "]";

  out << ",\"server\":";
  WriteServer(out, solo_ != nullptr ? solo_->mc() : fleet_->mc());
  out << "}\n";
}

bool Inspector::WriteFile(const std::string& path, const std::string& reason,
                          Scope scope) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[obs] inspector: cannot open %s\n", path.c_str());
    return false;
  }
  WriteJson(out, reason, scope);
  return true;
}

}  // namespace sc::softcache
