// SoftCacheSystem: convenience wiring of the full client/server stack.
//
// Owns the client Machine, the server MemoryController, the simulated
// Channel between them and the CacheController, and runs a program end to
// end under the software cache. This is the top-level public API most
// examples and benchmarks use; the pieces remain individually constructible
// for finer-grained experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "image/image.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "softcache/cc.h"
#include "softcache/config.h"
#include "softcache/mc.h"
#include "vm/machine.h"

namespace sc::softcache {

class SoftCacheSystem {
 public:
  // The image must outlive the system.
  SoftCacheSystem(const image::Image& image, const SoftCacheConfig& config = {});

  // Provides the program's input stream (SYS_READ / SYS_GETCHAR).
  void SetInput(std::vector<uint8_t> input) { machine_.SetInput(std::move(input)); }
  void SetInput(const std::string& input) {
    machine_.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  }

  // Runs until halt/fault or the instruction budget is exhausted.
  vm::RunResult Run(uint64_t max_instructions = UINT64_MAX);

  vm::Machine& machine() { return machine_; }
  CacheController& cc() { return *cc_; }
  MemoryController& mc() { return *mc_; }
  net::Channel& channel() { return channel_; }
  const SoftCacheStats& stats() const { return cc_->stats(); }
  std::string OutputString() const { return machine_.OutputString(); }

  // Software miss rate as the paper defines it for Figure 7: basic blocks
  // translated divided by instructions executed.
  double MissRate() const;

  // Binds every counter/histogram/timeline/series/table the stack keeps
  // into `registry` under dotted names ("cc.evictions", "net.link.retries",
  // ...). Views only: the registry must not outlive this system.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  vm::Machine machine_;
  net::Channel channel_;
  std::unique_ptr<MemoryController> mc_;
  std::unique_ptr<CacheController> cc_;
  bool attached_ = false;
};

// Runs `image` natively (no software cache) with the given input; the
// baseline every benchmark normalizes against.
vm::RunResult RunNative(const image::Image& image, const std::string& input,
                        std::string* output = nullptr,
                        uint64_t max_instructions = UINT64_MAX);

}  // namespace sc::softcache
