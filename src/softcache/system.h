// SoftCacheSystem: convenience wiring of the full client/server stack.
//
// Owns the client Machine, the server MemoryController, the simulated
// Channel between them and the CacheController, and runs a program end to
// end under the software cache. This is the top-level public API most
// examples and benchmarks use; the pieces remain individually constructible
// for finer-grained experiments.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "image/image.h"
#include "net/channel.h"
#include "net/switch.h"
#include "obs/metrics.h"
#include "obs/trace_mux.h"
#include "softcache/cc.h"
#include "softcache/config.h"
#include "softcache/mc.h"
#include "softcache/server_loop.h"
#include "vm/machine.h"

namespace sc::softcache {

class SoftCacheSystem {
 public:
  // The image must outlive the system. `server_config` tunes the server core
  // (memo shards/bound, and the server-side memo fault stream).
  SoftCacheSystem(const image::Image& image, const SoftCacheConfig& config = {},
                  const McServerConfig& server_config = {});

  // Provides the program's input stream (SYS_READ / SYS_GETCHAR).
  void SetInput(std::vector<uint8_t> input) { machine_.SetInput(std::move(input)); }
  void SetInput(const std::string& input) {
    machine_.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  }

  // Runs until halt/fault or the instruction budget is exhausted. With
  // integrity enabled the run is sliced into integrity quanta: after every
  // quantum the CC evaluates one integrity tick (fault injection +
  // verify/scrub), and the server memo is scrubbed whenever the client
  // scrubbed — the tick stream is a pure function of the instruction count,
  // so it replays identically under the multi-client schedulers.
  vm::RunResult Run(uint64_t max_instructions = UINT64_MAX);

  vm::Machine& machine() { return machine_; }
  CacheController& cc() { return *cc_; }
  MemoryController& mc() { return *mc_; }
  net::Channel& channel() { return channel_; }
  const SoftCacheStats& stats() const { return cc_->stats(); }
  std::string OutputString() const { return machine_.OutputString(); }

  // Software miss rate as the paper defines it for Figure 7: basic blocks
  // translated divided by instructions executed.
  double MissRate() const;

  // Binds every counter/histogram/timeline/series/table the stack keeps
  // into `registry` under dotted names ("cc.evictions", "net.link.retries",
  // ...). Views only: the registry must not outlive this system.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

 private:
  vm::Machine machine_;
  net::Channel channel_;
  std::unique_ptr<MemoryController> mc_;
  std::unique_ptr<CacheController> cc_;
  bool attached_ = false;
  // Instructions per integrity tick; 0 = integrity off (unsliced Run).
  uint64_t integrity_quantum_ = 0;
};

// Runs `image` natively (no software cache) with the given input; the
// baseline every benchmark normalizes against.
vm::RunResult RunNative(const image::Image& image, const std::string& input,
                        std::string* output = nullptr,
                        uint64_t max_instructions = UINT64_MAX);

// --- Multi-client: one memory controller serving N cache controllers ---

struct MultiClientConfig {
  // Number of clients (each gets its own Machine/Channel/CC and the MC
  // session whose id equals its index). Bounded by the 12-bit wire id.
  uint32_t clients = 1;
  // The per-client configuration template. client_id and transport_factory
  // are overridden per client (each client gets its index as id and a
  // transport over its own switch port); everything else applies verbatim
  // to every client.
  SoftCacheConfig base;
  // Optional per-client fault schedules: client i uses client_faults[i]
  // when present, base.fault otherwise. Lets each client carry its own
  // seeded loss/crash schedule (crashes restart only that client's
  // session).
  std::vector<net::FaultConfig> client_faults;
  // Scheduler quantum, in guest instructions per scheduling step.
  uint64_t quantum_instructions = 1024;
  // Server-core tuning: memo shards, memo bound, published-digest window.
  McServerConfig server;
  // Host threads running client VMs: 0/1 = the deterministic guest-cycle
  // round-robin scheduler (single host thread; traces, metrics and wire
  // traffic reproduce bit-identically). >1 = each client VM runs to
  // completion on a pool of this many host threads, with server access
  // serialized through the event loop. Guest results stay solo-identical
  // either way; what threading changes is the host-side interleaving, so
  // cross-client cycle comparisons are meaningless. Tracing works under
  // both schedulers once AttachTraceMux has split the instrumentation into
  // thread-confined per-agent lanes; only the lane interleaving (not any
  // guest-visible result) varies with threading.
  uint32_t host_threads = 0;
};

// CLI-level validation of a --clients value: [1, kMaxClients], returning an
// error string instead of crashing (the MultiClientSystem constructor treats
// violations as programmer error and SC_CHECKs).
inline bool ValidateClientCount(int64_t clients, std::string* error) {
  if (clients < 1) {
    *error = "clients must be >= 1";
    return false;
  }
  if (clients > static_cast<int64_t>(kMaxClients)) {
    *error = "clients must be <= " + std::to_string(kMaxClients) +
             " (12-bit wire id space)";
    return false;
  }
  return true;
}

// CLI-level validation of the server parallelism knobs (--shards /
// --workers against --clients). NO silent clamping: every nonsensical
// combination is a clean error the CLI turns into exit 2. The
// MultiClientSystem constructor treats violations as programmer error and
// SC_CHECKs instead.
inline bool ValidateServerParallelism(int64_t shards, int64_t workers,
                                      int64_t clients, std::string* error) {
  if (shards < 1) {
    *error = "shards must be >= 1 (the server core needs at least one slice)";
    return false;
  }
  if (shards > static_cast<int64_t>(kMaxClients)) {
    *error = "shards must be <= " + std::to_string(kMaxClients);
    return false;
  }
  if (workers < 0) {
    *error = "workers must be >= 0 (0 = borrowed-thread serving)";
    return false;
  }
  if (workers > shards) {
    *error = "workers must be <= shards (" + std::to_string(workers) + " > " +
             std::to_string(shards) +
             "): each worker statically owns whole shard lanes, so extra "
             "workers would never run";
    return false;
  }
  if (workers > 0 && clients < 2) {
    *error = "workers requires a multi-client run (--clients >= 2); solo runs "
             "call the server directly";
    return false;
  }
  return true;
}

// N independent guest machines sharing ONE MemoryController through a
// net::Switch, interleaved by a deterministic guest-cycle round-robin
// scheduler: each step runs the machine whose clock is furthest behind
// (ties break to the lowest index) for one quantum. Because every client
// owns disjoint server-side session state and its own channel/transport,
// each client's guest execution is bit-identical to its solo run — the
// sharing shows up only in server-side work (memoized translations).
class MultiClientSystem {
 public:
  // The image must outlive the system.
  MultiClientSystem(const image::Image& image, const MultiClientConfig& config);

  void SetInput(size_t client, std::vector<uint8_t> input) {
    clients_[client].machine->SetInput(std::move(input));
  }
  void SetInput(size_t client, const std::string& input) {
    SetInput(client, std::vector<uint8_t>(input.begin(), input.end()));
  }

  // Runs every client to halt/fault (or its per-client instruction budget)
  // under the round-robin scheduler. Returns one result per client.
  std::vector<vm::RunResult> RunAll(uint64_t max_instructions_each = UINT64_MAX);

  // End-of-run barrier: per-client Session::Synchronize for every client
  // running under a crash schedule. Returns false if any client failed.
  bool SyncSessions();

  size_t clients() const { return clients_.size(); }
  vm::Machine& machine(size_t client) { return *clients_[client].machine; }
  CacheController& cc(size_t client) { return *clients_[client].cc; }
  net::Channel& channel(size_t client) { return *clients_[client].channel; }
  MemoryController& mc() { return *mc_; }
  const MemoryController& mc() const { return *mc_; }
  net::Switch& net_switch() { return switch_; }
  McServerLoop& server_loop() { return loop_; }
  std::string OutputString(size_t client) const {
    return clients_[client].machine->OutputString();
  }

  // Per-client metrics under "c<i>." prefixes (c0.cc.evictions,
  // c1.net.channel.bytes_to_server, c0.vm.instructions, ...) plus the
  // shared server under "mc." (aggregates, memo stats, per-session s<id>.*
  // counters and heat tables) and the switch frame counter.
  void RegisterMetrics(obs::MetricsRegistry* registry) const;

  // --- Fleet observability wiring ---

  // Splits instrumentation into per-agent trace lanes inside `mux`: one
  // lane per client VM (process "client <i>", pid i+1, clocked by that
  // machine's guest cycle counter) plus server lanes (the event loop at
  // pid 0 tid 0, one lane per memo shard at pid 0 tid 1+s, and — when a
  // worker pool serves — one lane per worker at pid 0 tid 1+shards+w, all
  // on manual clocks advanced to each ticket's guest-cycle enqueue stamp).
  // The schedulers install the matching lane into the thread-local tracer
  // slot around every client step and every server dispatch, so each lane
  // stays thread-confined even under host_threads > 1. Call once, before
  // RunAll; `mux` must outlive this system. Enabling the lanes (and
  // exporting the merged trace) is the caller's job via the mux.
  void AttachTraceMux(obs::TraceMux* mux);

  // Periodic live inspection: `hook` runs every time the fleet-min guest
  // cycle count (min over unfinished clients) crosses a multiple of
  // `every_cycles`, with every client VM quiescent — the round-robin
  // scheduler calls it between steps; the threaded scheduler parks all
  // workers at quantum boundaries first (a fleet-wide safepoint), so the
  // hook may freely read any client or server state. Pass 0 to disable.
  using InspectionHook = std::function<void(uint64_t fleet_min_cycles)>;
  void set_inspection_hook(uint64_t every_cycles, InspectionHook hook) {
    inspect_every_ = every_cycles;
    inspection_hook_ = std::move(hook);
  }

  // Runs after a crash-schedule restart of `client_id`'s session, while the
  // server core is still exclusively held (other clients keep running, so
  // only server-side state may be read: a server-only inspection scope).
  using RecoveryHook = std::function<void(uint32_t client_id)>;
  void set_recovery_hook(RecoveryHook hook) {
    recovery_hook_ = std::move(hook);
  }

 private:
  struct Client {
    std::unique_ptr<vm::Machine> machine;
    std::unique_ptr<net::Channel> channel;
    std::unique_ptr<CacheController> cc;
    bool attached = false;
    bool done = false;
    vm::RunResult result;
  };

  // Runs every client to completion on a pool of config.host_threads host
  // threads (the RunAll threaded branch).
  void RunAllThreaded(uint64_t max_instructions_each);
  // Broadcast-medium snoop: parses one reply frame and feeds every client's
  // content store (shared_reply mode only).
  void SnoopReply(const std::vector<uint8_t>& reply_bytes);
  // Picks the server lane a dispatched frame's spans belong in. Borrowed-
  // thread mode: the shard lane for chunk-translate requests, the loop lane
  // for everything else. Worker mode: ALWAYS the shard lane of the slice
  // the loop's router queued the frame to — the identical mapping, so each
  // shard lane has exactly one writer (the worker statically owning that
  // lane). Null when no mux is attached.
  obs::Tracer* ServerLaneForFrame(const std::vector<uint8_t>& frame) const;
  // Round-robin-scheduler half of the periodic-inspection contract: fires
  // the hook whenever the fleet-min cycle count crossed the next threshold.
  void MaybeInspectRoundRobin();

  MultiClientConfig config_;
  std::unique_ptr<MemoryController> mc_;
  McServerLoop loop_;
  net::Switch switch_;
  std::vector<Client> clients_;

  // Observability (all null/zero unless AttachTraceMux / the hook setters
  // ran): non-owning lane pointers into the attached mux.
  std::vector<obs::Tracer*> client_lanes_;
  obs::Tracer* loop_lane_ = nullptr;
  std::vector<obs::Tracer*> shard_lanes_;
  std::vector<obs::Tracer*> worker_lanes_;
  uint64_t inspect_every_ = 0;
  uint64_t next_inspect_at_ = 0;
  InspectionHook inspection_hook_;
  RecoveryHook recovery_hook_;
};

}  // namespace sc::softcache
