// Session: the epoch-fenced client endpoint that survives MC restarts.
//
// A Session wraps a ReliableLink and adds crash recovery on top of frame
// recovery. The reliability layer below it makes individual frames
// survivable (loss, corruption, duplication); this layer makes the *server*
// survivable. Every reply the MC sends is stamped with its boot epoch
// (protocol.h); when a Call observes a reply from a different epoch than the
// one it last adopted, the server has crashed and restarted, losing its
// volatile state — unflushed writes, the replay cache, the prefetch
// temperature. The Session then:
//
//   1. quiesces the owner (the CC drops staged prefetch chunks, which may
//      describe pre-crash server decisions), discarding the mismatched reply
//      (its content may predate the replay);
//   2. re-handshakes with kHello; the kHelloAck carries the new epoch plus
//      the server's *stable* op watermark for this client's write type;
//   3. truncates the journal to the suffix above the watermark (those ops
//      were flushed into the stable image and survived the crash) and
//      replays the remainder, in order, with fresh seqs under the new epoch;
//   4. re-issues or answers the original operation and resumes.
//
// The journal holds every non-idempotent op (kTextWrite for the CC,
// kDataWriteback for the D-cache) since the last durable barrier. The MC
// flushes pending writes to its stable image every kMcWriteFlushIntervalOps
// applied ops of a type (mc.h); the client mirrors that constant, so an ack
// of op `i` proves ops below floor((i+1)/interval)*interval are durable and
// their journal entries can be dropped. The MC rejects stale-epoch writes,
// which keeps its applied-op count exactly equal to this client's op index
// stream — the watermark can therefore be used as an exact journal offset.
//
// Recovery is bounded (RetryConfig::max_recovery_attempts, covering crash
// schedules that fire again mid-recovery); exhaustion degrades to a clean
// util::Error so the owner can Fail the run instead of hanging or aborting.
// A crash-free run takes none of these paths and its wire traffic is
// byte-identical to the pre-session protocol.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "softcache/protocol.h"
#include "softcache/reliable.h"
#include "softcache/stats.h"
#include "util/result.h"

namespace sc::softcache {

class Session {
 public:
  // `journal_type` is the one write-type this client sends (selects which
  // kHelloAck watermark applies); `first_seq` seeds the sequence counter
  // (each client owns a disjoint seq range); `client_id` is stamped into
  // every outgoing frame so a shared MC routes it to this client's session
  // (id 0 — the default — serializes byte-identically to the seed
  // protocol). `link_stats`/`stats` must outlive the session.
  Session(std::unique_ptr<net::Transport> transport, const RetryConfig& retry,
          LinkStats* link_stats, SessionStats* stats, MsgType journal_type,
          uint32_t first_seq, uint32_t client_id = 0);

  // Invoked once per recovery, before the handshake: the owner drops any
  // state derived from pre-crash server decisions (staged prefetch chunks).
  void set_quiesce_hook(std::function<void()> hook) {
    quiesce_ = std::move(hook);
  }

  // One logical RPC. Assigns seq + epoch, journals write-type requests, and
  // transparently recovers from epoch mismatches. The returned Reply is from
  // the current epoch; it may be kError (protocol-level failure is the
  // caller's business). Errors are clean diagnostics: link give-up or
  // recovery exhaustion.
  util::Result<Reply> Call(Request request, uint64_t* cycles);

  // End-of-run barrier: if the journal is non-empty, confirm the server
  // still holds the current epoch (re-handshaking and replaying if not), so
  // ops acked before a crash nobody RPC'd after are not silently lost.
  util::Status Synchronize(uint64_t* cycles);

  net::Transport& transport() { return link_.transport(); }
  uint32_t epoch() const { return epoch_; }
  uint32_t client_id() const { return client_id_; }
  size_t journal_size() const { return journal_.size(); }

 private:
  struct JournalEntry {
    uint64_t index = 0;  // absolute op ordinal (0-based, never reused)
    uint32_t addr = 0;
    std::vector<uint8_t> payload;
  };

  bool EpochMatches(uint32_t reply_epoch) const {
    return reply_epoch == (epoch_ & kEpochMask);
  }
  // One attempt: assigns a fresh seq + the current epoch and runs the
  // reliable link (which retransmits frames but never re-stamps them).
  util::Result<Reply> CallOnce(Request& request, uint64_t* cycles);
  // Drops journal entries proven durable by an ack of op `acked_ops - 1`.
  void TruncateDurable(uint64_t acked_ops);
  // Handshake + journal replay. When `original` is non-null it is the
  // journaled op (index `want_index`) whose Call triggered recovery; its
  // replay reply is returned (synthesized when the watermark proved it
  // durable). Otherwise the returned Reply is meaningless on success.
  util::Result<Reply> Recover(uint64_t* cycles, const Request* original,
                              uint64_t want_index);

  ReliableLink link_;
  RetryConfig retry_;
  SessionStats* stats_;
  MsgType journal_type_;
  MsgType ack_type_;
  uint32_t seq_;
  uint32_t client_id_;
  uint32_t epoch_ = 0;
  uint64_t next_index_ = 0;  // ordinal of the next journaled op
  std::deque<JournalEntry> journal_;
  std::function<void()> quiesce_;
};

}  // namespace sc::softcache
