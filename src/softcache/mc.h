// Memory controller: the server side of the softcache.
//
// The MC owns the full program image (given to it "as a gcc-generated ELF
// binary image" in the paper; here as an image::Image) plus the program's
// data segments, and services chunk/data requests arriving as serialized
// protocol frames. It has no access to the client's Machine — the only
// coupling is the byte protocol, keeping the MC/CC split a real boundary.
//
// The paper's economic argument is that one powerful server amortizes its
// cost across many cheap embedded clients, so the MC is layered:
//
//   McServer   — the shared core: the pristine program image, the chunker,
//                a memoized translation cache (translate each chunk ONCE,
//                serve the memoized artifact to every client), and the
//                shared read-only data store.
//   McSession  — everything per-client: boot-epoch handling, the replay
//                cache, pending write buffers and journal watermarks,
//                learned prefetch temperature, and copy-on-write private
//                text/data segments (shared pages served read-only, faulted
//                to private on the first kTextWrite / kDataWriteback).
//   MemoryController — the endpoint facade: demultiplexes frames onto
//                sessions by the client id packed in the type word (or by
//                switch port via HandlePort), and keeps the single-client
//                accessor surface (which simply reads session 0) stable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "image/image.h"
#include "image/layout.h"
#include "softcache/chunker.h"
#include "softcache/config.h"
#include "softcache/integrity.h"
#include "softcache/protocol.h"
#include "util/open_table.h"
#include "util/stats.h"

namespace sc::obs {
class MetricsRegistry;
}

namespace sc::softcache {

// Packs/unpacks the chunk metadata carried in Reply::aux:
// exit kind in bits 31..28, jump_folded in bit 27, entry word in bits 26..0.
inline uint32_t PackChunkMeta(ExitKind exit, uint32_t entry_word, bool folded) {
  return (static_cast<uint32_t>(exit) << 28) | (folded ? 1u << 27 : 0u) |
         (entry_word & 0x07ffffff);
}
inline ExitKind UnpackExit(uint32_t aux) {
  return static_cast<ExitKind>(aux >> 28);
}
inline bool UnpackJumpFolded(uint32_t aux) { return (aux >> 27) & 1; }
inline uint32_t UnpackEntryWord(uint32_t aux) { return aux & 0x07ffffff; }

// Content digest of a translated chunk, computed over exactly the fields a
// chunk reply carries on the wire (addr, packed meta, branch target, words);
// a snooping client computing ChunkDigest over the received frame's fields
// gets the same value, so digest equality means bit-identical installed code.
inline uint64_t DigestOfChunk(const Chunk& chunk) {
  return ChunkDigest(
      chunk.orig_addr,
      PackChunkMeta(chunk.exit, chunk.entry_word, chunk.jump_folded),
      chunk.taken_target,
      reinterpret_cast<const uint8_t*>(chunk.words.data()),
      chunk.words.size() * 4);
}

// Flush-barrier interval: every N applied write ops of one type (text writes
// or data writebacks) a session folds its pending-write buffer into its
// stable image. Clients mirror this constant to truncate their upstream
// journals: once `floor((acked_ops)/N)*N` ops of a type are acked, that
// prefix is durable across a crash and need never be replayed (see
// docs/PROTOCOL.md).
inline constexpr uint32_t kMcWriteFlushIntervalOps = 32;

// Granularity of a session's copy-on-write private data segment: data is
// served from the server's shared pristine store until a session's first
// writeback touches a page, which faults a private copy of just that page.
inline constexpr uint32_t kMcCowPageBytes = 4096;

// Shared-core counters. These are the server-side aggregates across every
// session (for a single-client run they equal the per-session counters), and
// their addresses are stable for the MC's lifetime (metrics registry).
//
// Ownership: every field is written only under McServer::stats_mu_ (via
// McServer::BumpStats) — one owning lock per counter, no field is ever
// touched under two different locks. Readers (tests, benches, the metrics
// registry) read the plain fields at quiescence: after the run, or inside a
// park-all exclusive section / fleet safepoint when no frame is in flight.
struct McServerStats {
  uint64_t requests_served = 0;      // every frame handled, incl. garbage
  uint64_t replays_suppressed = 0;   // write retransmits answered from cache
  uint64_t batches_served = 0;       // kChunkBatchReply frames built
  uint64_t chunks_prefetched = 0;    // speculative chunks shipped in batches
  uint64_t restarts = 0;             // session restart (crash) events
  uint64_t stale_epoch_rejects = 0;  // pre-restart-epoch writes rejected
  uint64_t write_flushes = 0;        // flush barriers crossed
  uint64_t translates = 0;           // chunk cuts actually performed
  uint64_t translate_memo_hits = 0;  // cuts served from the memo cache
  uint64_t memo_invalidations = 0;   // memo entries dropped by text writes
  uint64_t memo_evictions = 0;       // memo entries displaced by the bound
  uint64_t misrouted_frames = 0;     // embedded client id != switch port
  uint64_t shared_requests = 0;      // kChunkSharedRequest frames handled
  uint64_t digest_replies = 0;       // coalesced (payload-less) chunk replies
  uint64_t digest_bytes_saved = 0;   // body bytes the digest path kept off
                                     // the wire
  // Server-side integrity fault domain (the memoized translation cache).
  uint64_t memo_flips_injected = 0;      // bits flipped into memo entries
  uint64_t memo_corruptions_detected = 0;  // digest mismatches found
  uint64_t memo_heals = 0;           // entries re-cut from the pristine image
  uint64_t memo_scrubs = 0;          // background memo scrub passes
};

// Shared-core tuning. The defaults reproduce the single-server behavior
// (one shard, a memo bound far above any workload's chunk population, no
// digest coalescing unless a client asks for it).
struct McServerConfig {
  // Memo/chunker shards: the pristine text's address range is partitioned
  // into `shards` contiguous slices, each owning the memo cache (and the
  // translation work) for chunk addresses in its slice. Every chunk address
  // maps to exactly one shard, so fleet-wide translation work stays "once
  // per chunk" no matter how many shards serve it.
  uint32_t shards = 1;
  // Total memoized-translation entries across all shards. When a shard's
  // slice of the budget fills, the entry with the lowest fleet-wide demand
  // temperature is evicted (re-translation on a later demand is the cost of
  // staying bounded under text-write invalidation churn).
  size_t memo_capacity = 4096;
  // Published-digest window: how many broadcast chunk digests the server
  // remembers. Forgetting one only costs a redundant body transmission.
  size_t published_capacity = 8192;
  // Server-side memory-fault injection into memoized translations, ticked
  // once per CutShared arrival. The memo is NOT trusted either way: every
  // entry is digest-stamped on insert and verified on every hit, with a
  // mismatch healed by re-translating from the pristine image (invisible
  // to the requesting client beyond server-side counters).
  MemFaultConfig memfault;
  // Event-loop backpressure bound: the deepest any McServerLoop lane queue
  // may grow before submitters defer (0 = unbounded, the historical
  // behavior). See server_loop.h.
  size_t max_queue = 0;
  // Dedicated server worker threads draining the per-shard lane queues.
  // 0 = the legacy borrowed-thread pump (a single lane drained by whichever
  // client thread submits; exactly one frame in the core at a time). With
  // workers >= 1 the loop routes each frame to its shard's lane and `workers`
  // dedicated threads drain the lanes with static ownership
  // (lane l -> worker l % workers), so translations in different shards
  // proceed concurrently. Requires workers <= shards (validated at the CLI;
  // the MultiClientSystem constructor SC_CHECKs).
  uint32_t workers = 0;
};

// The shared server core: immutable per-program state plus the memoized
// translation cache. The pristine image and shared data store are never
// mutated — client writes land in per-session copy-on-write overlays — so
// one translation artifact is valid for every session reading shared text.
//
// Concurrency: there is NO core-wide lock. Each memo shard is an
// independently owned slice — its mutex covers that slice's memo map, heat
// table, fault-injector stream and service-time histogram — so translations
// in different address ranges proceed concurrently. The only cross-shard
// state is the published-digest window (its own leaf mutex) and the
// aggregate stats (stats_mu_, also a leaf). At most one shard lock is ever
// held at a time (range scans lock shards one-by-one in ascending index
// order); the full lock-order table lives in docs/DESIGN.md.
class McServer {
 public:
  McServer(const image::Image& image, Style style, uint32_t max_block_instrs,
           uint32_t max_trace_blocks, const McServerConfig& config = {})
      : image_(image),
        style_(style),
        max_block_instrs_(max_block_instrs),
        max_trace_blocks_(max_trace_blocks),
        config_(config),
        shards_(config.shards == 0 ? 1 : config.shards),
        memo_shards_(shards_) {
    // The server holds the authoritative copy of ALL program memory: the
    // pristine text plus data/bss/heap/stack backing for the D-cache
    // protocol. Sessions overlay their private writes on top.
    data_ = image.data;
    data_.resize(image::kStackTop + 16 - image.data_base, 0);
    if (config_.memfault.enabled()) {
      // One independent fault stream per shard slice (substream = shard
      // index), so concurrent shards never contend on — or perturb — each
      // other's RNG. Shard 0's stream is byte-identical to the historical
      // single-stream injector.
      for (uint32_t s = 0; s < shards_; ++s) {
        memo_shards_[s].inj = std::make_unique<MemFaultInjector>(
            config_.memfault, FaultDomain::kMemo, s);
      }
    }
  }

  const image::Image& image() const { return image_; }
  Style style() const { return style_; }
  uint32_t DataBase() const { return image_.data_base; }
  uint32_t DataLimit() const {
    return image_.data_base + static_cast<uint32_t>(data_.size());
  }
  // The shared pristine data store (no session overlays applied).
  const std::vector<uint8_t>& shared_data() const { return data_; }

  // Memoized translation from the shared pristine text: the first request
  // for a chunk address pays the cut, every later request (from ANY session)
  // is a memo hit. The memo key is the requested address — the chunking
  // style and block-size caps are fixed per server, so (addr, style,
  // max_block_instrs) degenerates to addr alone.
  util::Result<Chunk> CutShared(uint32_t addr);

  // Un-memoized translation from a session's private text image (after that
  // session's first kTextWrite made its text diverge from the shared copy).
  util::Result<Chunk> CutPrivate(const image::Image& text_image,
                                 uint32_t addr);

  // Background memo scrub: verifies every memoized entry against its
  // install-time digest, healing mismatches by re-cutting from the pristine
  // image (the server's stable store — corruption can never propagate past
  // it). Guest-invisible; counters only. Called from single-threaded
  // schedulers at client scrub boundaries; host-thread-parallel runs rely
  // on the verify-on-hit path alone.
  void ScrubMemo();

  // Drops every memoized chunk overlapping [addr, addr+len). Called on any
  // session's kTextWrite: the writing session stops reading shared text
  // entirely (COW), but the write still signals that the artifact may be
  // rebuilt, and other sessions' already-installed copies are untouched
  // (they hold their own installed words client-side).
  void InvalidateMemoRange(uint32_t addr, uint32_t len);

  // --- Content-addressed reply coalescing (see protocol.h) ---
  // Records that a chunk body with this digest was transmitted on the
  // broadcast medium (every attached client snooped it). Bounded FIFO.
  void PublishDigest(uint64_t digest);
  // True while the server still believes every attached client holds the
  // body for `digest`; a false negative only costs a redundant body.
  bool DigestPublished(uint64_t digest) const {
    std::lock_guard<std::mutex> lock(published_mu_);
    return published_.count(digest) != 0;
  }

  // The shard serving chunk address `addr`: contiguous slices of the
  // pristine text range, addresses outside text fold into shard 0.
  uint32_t ShardFor(uint32_t addr) const;
  uint32_t shards() const { return shards_; }
  uint64_t shard_translates(uint32_t shard) const {
    std::lock_guard<std::mutex> lock(memo_shards_[shard].mu);
    return memo_shards_[shard].translates;
  }
  uint64_t shard_memo_hits(uint32_t shard) const {
    std::lock_guard<std::mutex> lock(memo_shards_[shard].mu);
    return memo_shards_[shard].memo_hits;
  }
  size_t shard_memo_entries(uint32_t shard) const {
    std::lock_guard<std::mutex> lock(memo_shards_[shard].mu);
    return memo_shards_[shard].memo.size();
  }
  size_t memo_entries() const;
  size_t published_digests() const {
    std::lock_guard<std::mutex> lock(published_mu_);
    return published_.size();
  }

  // Host nanoseconds per translation request (memo hits and cuts both
  // count — the histogram measures what a request costs the shard, and a
  // hit is the cheap mode). One histogram per shard, written under that
  // shard's mutex; host time only, never part of snapshot determinism, and
  // only exported at quiescence.
  const util::Histogram& shard_service_ns(uint32_t shard) const {
    return memo_shards_[shard].service_ns;
  }

  // Memo-cache residency rows for the Inspector: every memoized chunk with
  // its owning shard, translated size, and fleet-wide demand heat.
  // Deterministically ordered (shard, then address).
  struct MemoEntryView {
    uint32_t shard = 0;
    uint32_t addr = 0;
    uint32_t span_bytes = 0;
    uint32_t words = 0;
    uint32_t heat = 0;
  };
  std::vector<MemoEntryView> SnapshotMemo() const;

  // Quiescent read surface (see the McServerStats ownership comment).
  const McServerStats& stats() const { return stats_; }

  // The one write path for the aggregate stats: every mutation happens
  // under stats_mu_, a leaf lock (safe to take while holding a shard mutex,
  // never the other way around).
  template <typename F>
  void BumpStats(F&& f) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    f(stats_);
  }

 private:
  // One memoized translation plus the content digest stamped at insert.
  // The digest reuses DigestOfChunk, so "memo entry verifies" and "reply
  // frame verifies client-side" are the same 64-bit statement.
  struct MemoEntry {
    Chunk chunk;
    uint64_t digest = 0;
  };

  // One independently owned slice of the server core: the memoized
  // translations for this shard's address range, the demand-heat table that
  // ranks their eviction, the shard's integrity fault stream, and its
  // service-time histogram — all guarded by the slice's own mutex, so two
  // shards never serialize against each other.
  struct MemoShard {
    mutable std::mutex mu;
    std::map<uint32_t, MemoEntry> memo;  // requested addr -> translation
    // Demand temperature per chunk start in this shard's range (every
    // CutShared demand, across all sessions); the eviction-ranking signal.
    util::OpenTable<uint32_t, uint32_t> heat{256};
    // This shard's memo fault stream (null = no injection configured).
    std::unique_ptr<MemFaultInjector> inj;
    // Service-time spread: one bucket per ~8 us up to 1 ms; memo hits land
    // in the first bucket, cold cuts spread out, outliers clamp.
    util::Histogram service_ns{0, 1e6, 128};
    uint64_t translates = 0;
    uint64_t memo_hits = 0;
  };

  util::Result<Chunk> Cut(const image::Image& text_image, uint32_t addr) const;
  // Displaces the lowest-heat entry of `shard` (called when a shard's slice
  // of the memo budget is full). Caller holds shard->mu.
  void EvictColdest(MemoShard* shard);
  // Fault injection: flips one bit in a uniformly chosen memoized chunk of
  // `shard` (the slice the triggering demand hit — each slice is its own
  // fault domain). False when that slice's memo is empty. Caller holds
  // shard->mu.
  bool CorruptMemoBit(MemoShard* shard);

  image::Image image_;  // pristine; NEVER mutated (writes go to sessions)
  Style style_;
  uint32_t max_block_instrs_;
  uint32_t max_trace_blocks_;
  McServerConfig config_;
  uint32_t shards_;
  std::vector<uint8_t> data_;  // pristine shared data/bss/heap/stack
  // Deque, not vector: slices hold mutexes (non-movable) and their
  // addresses must stay stable for the registry's histogram pointers.
  mutable std::deque<MemoShard> memo_shards_;
  // Published-digest window (bounded FIFO). Deliberately cross-shard: a
  // digest names content, not an address range, and the window must answer
  // "did this body ever cross the broadcast medium" fleet-wide. Guarded by
  // its own leaf mutex (never held together with any other lock).
  mutable std::mutex published_mu_;
  std::map<uint64_t, uint8_t> published_;
  std::deque<uint64_t> published_fifo_;
  // Aggregate-stat leaf lock; see BumpStats.
  std::mutex stats_mu_;
  McServerStats stats_;
};

// Per-session counters (one McSession per client id).
struct McSessionStats {
  uint64_t requests = 0;
  uint64_t replays_suppressed = 0;
  uint64_t batches_served = 0;
  uint64_t chunks_prefetched = 0;
  uint64_t restarts = 0;
  uint64_t stale_epoch_rejects = 0;
  uint64_t write_flushes = 0;
  uint64_t text_cow_faults = 0;      // 0 or 1: private text materialized
  uint64_t data_cow_page_faults = 0; // private data pages materialized
  uint64_t shared_requests = 0;      // kChunkSharedRequest frames from this id
  uint64_t digest_replies = 0;       // payload-less replies this session got
};

// One client's server-side state: epoch fencing, replay cache, pending
// writes + journal watermarks, learned temperature, and the copy-on-write
// overlays holding this client's private view of text and data.
class McSession {
 public:
  McSession(McServer& server, uint32_t client_id)
      : server_(server), client_id_(client_id) {}

  // Handles one parsed request addressed to this session (epoch fence,
  // replay cache, dispatch); returns the serialized reply frame.
  std::vector<uint8_t> HandleRequest(const Request& request);

  // A serialized kError reply stamped with this session's id and epoch; used
  // by the facade for frames that fail to parse (seq 0 = unattributable).
  std::vector<uint8_t> ErrorFrame(uint32_t seq, const std::string& message);

  // Crash model: this session's server-side process dies and comes back up.
  // All volatile state is lost — the replay cache, the pending (unflushed)
  // write buffers, and the learned prefetch temperature — while the stable
  // image (pristine state plus every flushed write) persists. The boot epoch
  // increments so the client can detect the restart from the epoch stamped
  // into every reply. Other sessions are unaffected.
  void Restart();

  uint32_t client_id() const { return client_id_; }
  uint32_t epoch() const { return epoch_; }
  // Applied = every acked write op this boot lineage; stable = the flushed
  // prefix that survives a crash. Exposed for tests and the kHelloAck
  // watermarks.
  uint64_t applied_text_ops() const { return applied_text_ops_; }
  uint64_t stable_text_ops() const { return stable_text_ops_; }
  uint64_t applied_data_ops() const { return applied_data_ops_; }
  uint64_t stable_data_ops() const { return stable_data_ops_; }

  // This session's view of program text: the shared pristine image until the
  // first kTextWrite, the private COW copy afterwards.
  const image::Image& text_view() const {
    return private_image_ ? *private_image_ : server_.image();
  }
  bool has_private_text() const { return private_image_ != nullptr; }
  size_t private_data_pages() const { return data_pages_.size(); }
  size_t stable_private_data_pages() const { return stable_pages_.size(); }
  // Working-overlay page indexes (kMcCowPageBytes each), ascending; the
  // Inspector's COW footprint rows.
  std::vector<uint32_t> PrivateDataPageIndexes() const {
    std::vector<uint32_t> pages;
    pages.reserve(data_pages_.size());
    for (const auto& [index, bytes] : data_pages_) pages.push_back(index);
    return pages;
  }
  // Writes applied to the working overlay but not yet flushed (exactly what
  // a crash would lose right now).
  size_t pending_text_writes() const { return pending_text_.size(); }
  size_t pending_data_writes() const { return pending_data_.size(); }

  // Reads `len` bytes at `addr` through this session's data overlay (private
  // pages where faulted, the shared store elsewhere). Caller checks bounds.
  void ReadData(uint32_t addr, uint32_t len, uint8_t* out) const;

  // Copies this session's private working pages over `flat` (a buffer laid
  // out like the server's shared data store). Legacy whole-store view.
  void OverlayData(std::vector<uint8_t>* flat) const;
  // Increments whenever the working data overlay changes (write / restart);
  // lets cached flat views invalidate in O(1).
  uint64_t data_version() const { return data_version_; }

  // Demand reference count ("temperature") of a chunk start, as learned
  // from this session's past kChunkRequests.
  uint32_t Temperature(uint32_t addr) const {
    const uint32_t* t = temperature_.Find(addr);
    return t == nullptr ? 0 : *t;
  }
  // (chunk start address, demand count) rows of the temperature table.
  std::vector<std::pair<uint64_t, uint64_t>> TemperatureRows() const {
    std::vector<std::pair<uint64_t, uint64_t>> rows;
    rows.reserve(temperature_.size());
    temperature_.ForEach([&rows](uint32_t addr, uint32_t count) {
      rows.emplace_back(addr, count);
    });
    return rows;
  }

  const McSessionStats& stats() const { return stats_; }

 private:
  // Replay cache entry: a recently applied write-type request, identified by
  // (type, seq, addr, payload checksum), with the reply it produced. An
  // unreliable transport may deliver the same write twice (duplication) or
  // the client may retransmit after losing the ack; re-applying would be
  // wrong in general (the client may have mutated the region in between via
  // a later request), so identical frames are answered from cache. Entries
  // are epoch-tagged: a match from before a restart must never be served
  // (the write it acknowledges may not have survived the crash).
  struct ReplayEntry {
    uint32_t type = 0;
    uint32_t seq = 0;
    uint32_t addr = 0;
    uint32_t payload_checksum = 0;
    uint32_t epoch = 0;
    std::vector<uint8_t> reply_bytes;
  };

  // A write applied to the working overlay but not yet folded into the
  // stable overlay — exactly the state a crash loses.
  struct PendingWrite {
    uint32_t addr = 0;
    std::vector<uint8_t> bytes;
  };

  using PageMap = std::map<uint32_t, std::vector<uint8_t>>;  // page index -> bytes

  Reply HandleParsed(const Request& request);
  Reply ErrorReply(uint32_t seq, const std::string& message) const;
  // Builds the kChunkBatchReply for a demanded chunk: walks the static CFG
  // from `primary` up to the hinted depth, ranks candidates (temperature
  // policy) and packs the winners behind the demanded chunk until the
  // chunk-count/byte budgets run out. With `publish_digests` every packed
  // body's digest is published (the batch is about to cross the broadcast
  // medium and be snooped fleet-wide).
  Reply BatchReply(const Request& request, const Chunk& primary,
                   const PrefetchHints& hints, bool publish_digests);
  // Translation through the server: memoized while this session reads shared
  // text, un-memoized once it holds a private (written) text image.
  util::Result<Chunk> CutChunk(uint32_t addr);

  // Stamps this session's id + epoch into the reply and serializes it.
  std::vector<uint8_t> Finish(Reply reply) const;
  // Materializes the private text image (first kTextWrite).
  void FaultTextPrivate();
  // Writes `len` bytes at `addr` into `pages`, faulting any missing page
  // from the server's shared pristine store first.
  void WritePages(PageMap* pages, uint32_t addr, const uint8_t* src,
                  size_t len, bool count_faults);
  void RecordTextWrite(uint32_t addr, const std::vector<uint8_t>& bytes);
  void RecordDataWrite(uint32_t addr, const std::vector<uint8_t>& bytes);

  McServer& server_;
  uint32_t client_id_;
  std::deque<ReplayEntry> replay_cache_;

  // COW text: null while this session reads the shared pristine image; a
  // private copy after its first kTextWrite. `stable_text_` mirrors the
  // private text as of the last flush barrier.
  std::unique_ptr<image::Image> private_image_;
  std::vector<uint8_t> stable_text_;

  // COW data: private working pages overlaying the shared store, plus the
  // stable pages (pristine + flushed writes) a crash reverts to.
  PageMap data_pages_;
  PageMap stable_pages_;
  uint64_t data_version_ = 0;

  std::vector<PendingWrite> pending_text_;
  std::vector<PendingWrite> pending_data_;
  uint64_t applied_text_ops_ = 0;
  uint64_t stable_text_ops_ = 0;
  uint64_t applied_data_ops_ = 0;
  uint64_t stable_data_ops_ = 0;
  uint32_t epoch_ = 0;

  // Per-chunk demand counts (prefetch "temperature"), keyed by the chunk
  // start address this client asked for.
  util::OpenTable<uint32_t, uint32_t> temperature_{256};
  McSessionStats stats_;
};

// The MC endpoint: one shared server core plus a session per client id.
// Single-client code (and every pre-multi-client test) keeps working
// unchanged: the legacy accessors read session 0, which the constructor
// pre-creates, and client id 0 frames serialize byte-identically to the
// seed protocol.
class MemoryController {
 public:
  MemoryController(const image::Image& image, Style style,
                   uint32_t max_block_instrs, uint32_t max_trace_blocks = 1,
                   const McServerConfig& server_config = {})
      : server_(image, style, max_block_instrs, max_trace_blocks,
                server_config) {
    session(0);  // legacy accessors are defined in terms of session 0
  }

  // Handles one request frame; returns the reply frame. Routes by the client
  // id embedded in the frame's type word (a direct, un-switched endpoint
  // trusts the embedded id).
  std::vector<uint8_t> Handle(const std::vector<uint8_t>& request_bytes);

  // Handles a frame arriving on switch port `port`: the embedded client id
  // must match the port, otherwise the frame is rejected as misrouted
  // (spoofed) without touching any session's state.
  std::vector<uint8_t> HandlePort(uint32_t port,
                                  const std::vector<uint8_t>& request_bytes);

  // Restarts every session (the whole server process dies). Single-client
  // runs see exactly the pre-refactor crash model.
  void Restart();
  // Restarts one client's session; all other sessions are unaffected.
  void RestartSession(uint32_t client_id);

  McServer& server() { return server_; }
  const McServer& server() const { return server_; }
  // The session for `client_id`, created on first use. The returned
  // reference is stable for the controller's lifetime (the map holds
  // unique_ptrs); only the map itself is guarded (sessions_mu_) — the
  // session OBJECT is owned by its client's frame path (stop-and-wait keeps
  // at most one frame per client in flight) plus the loop's park-all
  // exclusive section for restarts.
  McSession& session(uint32_t client_id);
  // Null if no frame (or session() call) has touched that id yet.
  const McSession* FindSession(uint32_t client_id) const;
  size_t sessions_active() const {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    return sessions_.size();
  }
  // Active session ids, ascending (Inspector iteration).
  std::vector<uint32_t> SessionIds() const {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    std::vector<uint32_t> ids;
    ids.reserve(sessions_.size());
    for (const auto& [id, sess] : sessions_) ids.push_back(id);
    return ids;
  }

  // Registers server aggregates plus per-session counters/heat-tables under
  // `prefix` (e.g. "mc." -> mc.requests_served, mc.s0.requests, ...).
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix = "mc.") const;

  // --- Legacy single-client surface (session 0 / server aggregates) ---
  uint32_t epoch() const { return Session0().epoch(); }
  uint64_t restarts() const { return server_.stats().restarts; }
  uint64_t stale_epoch_rejects() const {
    return server_.stats().stale_epoch_rejects;
  }
  uint64_t applied_text_ops() const { return Session0().applied_text_ops(); }
  uint64_t stable_text_ops() const { return Session0().stable_text_ops(); }
  uint64_t applied_data_ops() const { return Session0().applied_data_ops(); }
  uint64_t stable_data_ops() const { return Session0().stable_data_ops(); }

  // Session 0's view of program text (the shared pristine image until its
  // first kTextWrite).
  const image::Image& image() const { return Session0().text_view(); }

  uint32_t DataBase() const { return server_.DataBase(); }
  uint32_t DataLimit() const { return server_.DataLimit(); }
  // Session 0's flat view of the data store (shared store with its private
  // pages overlaid); rebuilt lazily when the overlay changes.
  const std::vector<uint8_t>& data() const;

  uint64_t requests_served() const { return server_.stats().requests_served; }
  uint64_t replays_suppressed() const {
    return server_.stats().replays_suppressed;
  }
  uint64_t batches_served() const { return server_.stats().batches_served; }
  uint64_t chunks_prefetched() const {
    return server_.stats().chunks_prefetched;
  }
  uint32_t Temperature(uint32_t addr) const {
    return Session0().Temperature(addr);
  }
  std::vector<std::pair<uint64_t, uint64_t>> TemperatureRows() const {
    return Session0().TemperatureRows();
  }

  // Test-only tap observing every (request bytes, reply bytes) pair exactly
  // as they cross the wire; used to prove kOff traffic is byte-identical to
  // the seed protocol.
  using FrameTap = std::function<void(const std::vector<uint8_t>& request,
                                      const std::vector<uint8_t>& reply)>;
  void set_frame_tap(FrameTap tap) { tap_ = std::move(tap); }

 private:
  // port < 0 means "no switch": trust the embedded client id.
  std::vector<uint8_t> HandleRouted(int64_t port,
                                    const std::vector<uint8_t>& request_bytes);
  std::vector<uint8_t> HandleInner(int64_t port,
                                   const std::vector<uint8_t>& request_bytes);
  const McSession& Session0() const { return *FindSession(0); }

  McServer server_;
  // Guards the session MAP only (lookup/insert); held never across a
  // handler, so frame handling for different clients proceeds concurrently.
  mutable std::mutex sessions_mu_;
  std::map<uint32_t, std::unique_ptr<McSession>> sessions_;
  // The tap is a test-only observation point; serialize it so taps written
  // for single-threaded tests stay correct under concurrent handlers.
  std::mutex tap_mu_;
  FrameTap tap_;
  // Cached flat data view for the legacy data() accessor.
  mutable std::vector<uint8_t> legacy_data_;
  mutable uint64_t legacy_data_version_ = ~0ull;
};

}  // namespace sc::softcache
