// Memory controller: the server side of the softcache.
//
// The MC owns the full program image (given to it "as a gcc-generated ELF
// binary image" in the paper; here as an image::Image) plus the program's
// data segments, and services chunk/data requests arriving as serialized
// protocol frames. It has no access to the client's Machine — the only
// coupling is the byte protocol, keeping the MC/CC split a real boundary.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "image/image.h"
#include "image/layout.h"
#include "softcache/chunker.h"
#include "softcache/config.h"
#include "softcache/protocol.h"
#include "util/open_table.h"

namespace sc::softcache {

// Packs/unpacks the chunk metadata carried in Reply::aux:
// exit kind in bits 31..28, jump_folded in bit 27, entry word in bits 26..0.
inline uint32_t PackChunkMeta(ExitKind exit, uint32_t entry_word, bool folded) {
  return (static_cast<uint32_t>(exit) << 28) | (folded ? 1u << 27 : 0u) |
         (entry_word & 0x07ffffff);
}
inline ExitKind UnpackExit(uint32_t aux) {
  return static_cast<ExitKind>(aux >> 28);
}
inline bool UnpackJumpFolded(uint32_t aux) { return (aux >> 27) & 1; }
inline uint32_t UnpackEntryWord(uint32_t aux) { return aux & 0x07ffffff; }

// Flush-barrier interval: every N applied write ops of one type (text writes
// or data writebacks) the MC folds its pending-write buffer into the stable
// image. Clients mirror this constant to truncate their upstream journals:
// once `floor((acked_ops)/N)*N` ops of a type are acked, that prefix is
// durable across a crash and need never be replayed (see docs/PROTOCOL.md).
inline constexpr uint32_t kMcWriteFlushIntervalOps = 32;

class MemoryController {
 public:
  MemoryController(const image::Image& image, Style style,
                   uint32_t max_block_instrs, uint32_t max_trace_blocks = 1)
      : image_(image),
        style_(style),
        max_block_instrs_(max_block_instrs),
        max_trace_blocks_(max_trace_blocks) {
    // The MC holds the authoritative copy of ALL mutable program memory:
    // its own Image copy for text (mutable so self-modifying programs can
    // push updates via kTextWrite), plus data/bss/heap/stack backing store
    // for the D-cache protocol.
    data_ = image.data;
    data_.resize(image::kStackTop + 16 - image.data_base, 0);
    stable_text_ = image_.text;
  }

  // Handles one request frame; returns the reply frame.
  std::vector<uint8_t> Handle(const std::vector<uint8_t>& request_bytes);

  // Crash model: the server process dies and comes back up. All volatile
  // state is lost — the replay cache, the pending (unflushed) text-write and
  // writeback buffers, and the learned prefetch temperature — while the
  // stable program image (initial image plus every flushed write) persists.
  // The boot epoch increments so clients can detect the restart from the
  // epoch stamped into every reply.
  void Restart();

  uint32_t epoch() const { return epoch_; }
  uint64_t restarts() const { return restarts_; }
  // Write-type requests rejected because they carried a pre-restart epoch.
  uint64_t stale_epoch_rejects() const { return stale_epoch_rejects_; }
  // Applied = every acked write op this boot lineage; stable = the flushed
  // prefix that survives a crash. Exposed for tests and the kHelloAck
  // watermarks.
  uint64_t applied_text_ops() const { return applied_text_ops_; }
  uint64_t stable_text_ops() const { return stable_text_ops_; }
  uint64_t applied_data_ops() const { return applied_data_ops_; }
  uint64_t stable_data_ops() const { return stable_data_ops_; }

  const image::Image& image() const { return image_; }

  // Server-side view of a data word (tests/verification).
  uint32_t DataBase() const { return image_.data_base; }
  uint32_t DataLimit() const {
    return image_.data_base + static_cast<uint32_t>(data_.size());
  }
  const std::vector<uint8_t>& data() const { return data_; }

  uint64_t requests_served() const { return requests_served_; }
  // Write-type requests answered from the replay cache instead of being
  // applied a second time (retransmitted kTextWrite / kDataWriteback).
  uint64_t replays_suppressed() const { return replays_suppressed_; }

  // Prefetch service counters: batched replies built, and extra chunks
  // shipped speculatively inside them.
  uint64_t batches_served() const { return batches_served_; }
  uint64_t chunks_prefetched() const { return chunks_prefetched_; }
  // Demand reference count ("temperature") of a chunk start, as learned
  // from past kChunkRequests (tests/benchmarks).
  uint32_t Temperature(uint32_t addr) const {
    const uint32_t* t = temperature_.Find(addr);
    return t == nullptr ? 0 : *t;
  }

  // Stable counter addresses for the metrics registry (valid for the MC's
  // lifetime).
  const uint64_t* requests_served_counter() const { return &requests_served_; }
  const uint64_t* replays_suppressed_counter() const {
    return &replays_suppressed_;
  }
  const uint64_t* batches_served_counter() const { return &batches_served_; }
  const uint64_t* chunks_prefetched_counter() const {
    return &chunks_prefetched_;
  }
  const uint64_t* restarts_counter() const { return &restarts_; }
  const uint64_t* stale_epoch_rejects_counter() const {
    return &stale_epoch_rejects_;
  }
  const uint64_t* write_flushes_counter() const { return &write_flushes_; }
  // (chunk start address, demand count) rows of the temperature table.
  std::vector<std::pair<uint64_t, uint64_t>> TemperatureRows() const {
    std::vector<std::pair<uint64_t, uint64_t>> rows;
    rows.reserve(temperature_.size());
    temperature_.ForEach([&rows](uint32_t addr, uint32_t count) {
      rows.emplace_back(addr, count);
    });
    return rows;
  }

  // Test-only tap observing every (request bytes, reply bytes) pair exactly
  // as they cross the wire; used to prove kOff traffic is byte-identical to
  // the seed protocol.
  using FrameTap = std::function<void(const std::vector<uint8_t>& request,
                                      const std::vector<uint8_t>& reply)>;
  void set_frame_tap(FrameTap tap) { tap_ = std::move(tap); }

 private:
  std::vector<uint8_t> HandleInner(const std::vector<uint8_t>& request_bytes);
  Reply HandleParsed(const Request& request);
  Reply ErrorReply(uint32_t seq, const std::string& message) const;
  // Extracts one chunk at `addr` with the configured chunking style.
  util::Result<Chunk> CutChunk(uint32_t addr) const;
  // Builds the kChunkBatchReply for a demanded chunk: walks the static CFG
  // from `primary` up to the hinted depth, ranks candidates (temperature
  // policy) and packs the winners behind the demanded chunk until the
  // chunk-count/byte budgets run out.
  Reply BatchReply(const Request& request, const Chunk& primary,
                   const PrefetchHints& hints);

  // Replay cache entry: a recently applied write-type request, identified by
  // (type, seq, addr, payload checksum), with the reply it produced. An
  // unreliable transport may deliver the same write twice (duplication) or
  // the client may retransmit after losing the ack; re-applying would be
  // wrong in general (the client may have mutated the region in between via
  // a later request), so identical frames are answered from cache. Entries
  // are epoch-tagged: a match from before a restart must never be served
  // (the write it acknowledges may not have survived the crash).
  struct ReplayEntry {
    uint32_t type = 0;
    uint32_t seq = 0;
    uint32_t addr = 0;
    uint32_t payload_checksum = 0;
    uint32_t epoch = 0;
    std::vector<uint8_t> reply_bytes;
  };

  // A write applied to the working image but not yet folded into the stable
  // image — exactly the state a crash loses.
  struct PendingWrite {
    uint32_t addr = 0;
    std::vector<uint8_t> bytes;
  };

  // Stamps the current epoch into the reply and serializes it.
  std::vector<uint8_t> Finish(Reply reply) const;
  void RecordTextWrite(uint32_t addr, const std::vector<uint8_t>& bytes);
  void RecordDataWrite(uint32_t addr, const std::vector<uint8_t>& bytes);

  image::Image image_;  // server-side copy; text mutable via kTextWrite
  Style style_;
  uint32_t max_block_instrs_;
  uint32_t max_trace_blocks_;
  std::vector<uint8_t> data_;
  uint64_t requests_served_ = 0;
  uint64_t replays_suppressed_ = 0;
  std::deque<ReplayEntry> replay_cache_;

  // Crash-survivable state. `stable_text_` mirrors image_.text as of the
  // last flush barrier; `stable_data_` is materialized lazily just before
  // the first data writeback mutates data_ (runs without a D-cache never
  // pay the copy). The pending lists hold writes applied to the working
  // image since the last barrier of their type.
  std::vector<uint8_t> stable_text_;
  std::vector<uint8_t> stable_data_;
  std::vector<PendingWrite> pending_text_;
  std::vector<PendingWrite> pending_data_;
  uint64_t applied_text_ops_ = 0;
  uint64_t stable_text_ops_ = 0;
  uint64_t applied_data_ops_ = 0;
  uint64_t stable_data_ops_ = 0;
  uint32_t epoch_ = 0;
  uint64_t restarts_ = 0;
  uint64_t stale_epoch_rejects_ = 0;
  uint64_t write_flushes_ = 0;

  // Per-chunk demand counts (prefetch "temperature"), keyed by the chunk
  // start address the client asked for.
  util::OpenTable<uint32_t, uint32_t> temperature_{256};
  uint64_t batches_served_ = 0;
  uint64_t chunks_prefetched_ = 0;
  FrameTap tap_;
};

}  // namespace sc::softcache
