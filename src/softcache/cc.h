// Cache controller: the client side of the softcache.
//
// The CC owns the embedded device's local memory layout:
//
//   [local_base, local_base + tcache_bytes)        the tcache (rewritten code)
//   [cells_base, cells_base + cells_bytes)         "forward cells": permanent
//       one-word jump cells used as (a) landing pads for return addresses
//       fixed up during eviction (SPARC style) and (b) the ARM prototype's
//       per-call-site redirector stubs. A cell holds either `J <tcache addr>`
//       or a TCMISS stub that re-translates its target on demand.
//
// Translated blocks encode cache state in their control transfers:
//   * a branch/call whose target is resident jumps straight to the target's
//     tcache copy — zero tag checks on the hot path;
//   * a branch/call whose target is absent jumps to an exit slot holding a
//     TCMISS stub; firing it fetches the chunk from the MC over the channel,
//     installs and rewrites it, back-patches the branch, and resumes;
//   * computed jumps become TCJALR and resolve through the tcache map (the
//     hash table of Figure 4) at a fixed per-lookup cost.
//
// Block layout in the tcache (SPARC style, basic-block chunks):
//   [ body words (1:1 copy of original instructions) ]
//   [ slot A ]   fallthrough/continuation exit: TCMISS -> later `J fall`
//   [ slot B ]   taken/callee exit: TCMISS (dead after the branch is patched)
// Slot A+B are the paper's "two new instructions per translated basic
// block". Blocks ending in return/halt have no slots.
//
// ARM style translates whole procedures, expanding every call site
//   jal f   ->   lui ra, %hi(cell); ori ra, %lo(cell); j f_or_stub
// so return addresses always point at permanent cells and eviction never
// walks the stack. Computed jumps are unsupported (translation fails), as in
// the paper's prototype.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/channel.h"
#include "obs/metrics.h"
#include "softcache/config.h"
#include "softcache/content_store.h"
#include "softcache/mc.h"
#include "softcache/reliable.h"
#include "softcache/session.h"
#include "softcache/stats.h"
#include "util/open_table.h"
#include "util/stats.h"
#include "vm/machine.h"

namespace sc::softcache {

// How a patch site is rewritten when its target becomes resident.
enum class PatchKind : uint8_t {
  kBranch16,  // rewrite the imm16 of a conditional branch
  kJump26,    // rewrite the imm26 of a J/JAL
  kSlot,      // overwrite the whole word with `J target`
};

class CacheController : public vm::TrapHandler {
 public:
  CacheController(vm::Machine& machine, MemoryController& mc, net::Channel& channel,
                  const SoftCacheConfig& config);

  // Installs the trap handler, restricts execution to local memory, and
  // redirects the machine's PC to the translated entry point.
  void Attach();

  // vm::TrapHandler
  uint32_t OnTcMiss(vm::Machine& m, uint32_t stub_index) override;
  uint32_t OnTcJalr(vm::Machine& m, const isa::Instr& instr, uint32_t pc) override;
  uint32_t OnIcacheInvalidate(vm::Machine& m, uint32_t addr, uint32_t len,
                              uint32_t pc) override;

  const SoftCacheStats& stats() const { return stats_; }

  // The session's transport (crash-schedule wiring, tests).
  net::Transport& transport() { return session_.transport(); }

  // This client's snoop store on the broadcast medium; null unless
  // config.shared_reply is on. The fleet wiring (MultiClientSystem) feeds it
  // from the switch's reply observer; stats() tracks its traffic under
  // `shared.*`.
  ChunkContentStore* content_store() { return content_store_.get(); }
  // The owner's shared-reply stats block, for the snoop fan-out (which runs
  // outside this class but accounts to the store's owner).
  SharedReplyStats* shared_stats() { return &stats_.shared; }
  // End-of-run barrier: make sure every journaled text write survived any
  // crash nobody RPC'd after (no-op when the journal is empty). Returns
  // false with a fault raised on unrecoverable failure.
  bool SyncSession();

  // --- Integrity fault domain (config.integrity; see integrity.h) ---
  // One integrity tick: evaluates the per-domain fault injectors and, every
  // scrub_every-th tick, runs the background scrub over every client-side
  // cached artifact (tcache blocks, staged chunks, content-store bodies,
  // decoded superblocks). The schedulers call this once per client quantum
  // (quantum_instructions retired), so the tick stream is a pure function
  // of this client's instruction count — identical across engines and
  // schedulers. Returns true when this tick ran a scrub pass (the system
  // layer scrubs the server memo on the same cadence where safe). No-op
  // returning false when integrity is off.
  bool IntegrityTick();
  bool integrity_enabled() const { return config_.integrity.enabled; }
  // Fires after a corrupted tcache block is quarantined (evicted), with the
  // chunk's original address — srun hooks a post-quarantine Inspector
  // snapshot here. Called before the heal refetch, so the snapshot shows
  // the degraded cache.
  void set_quarantine_hook(std::function<void(uint32_t orig_addr)> hook) {
    quarantine_hook_ = std::move(hook);
  }
  // Test hook: the address of a byte inside some resident tcache block that
  // does NOT contain the machine's current pc (0 when nothing qualifies).
  // Lets integrity tests plant a corruption without knowing the layout.
  uint32_t AnyResidentTcacheByteForTest() const;

  // --- Derived observability series (exported via SoftCacheSystem::
  // RegisterMetrics; all observation-only — never charges guest cycles) ---
  // Client-visible cycles per successfully handled TCMISS, bucketed.
  const util::Histogram& miss_latency() const { return miss_latency_; }
  // (cycle, live tcache bytes) after every install/evict/flush.
  const obs::Series& occupancy_series() const { return occupancy_; }
  // Per-chunk demand-fetch counts (chunk heat as seen by this client),
  // keyed by original chunk address.
  std::vector<std::pair<uint64_t, uint64_t>> ChunkFetchCounts() const;

  // Binds everything this client keeps — the stats block plus the derived
  // histogram/series/table shapes — into `registry` under `prefix` ("" for
  // the single-client system, "c3." for client 3 of a fleet). Views only:
  // the registry must not outlive this controller.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    stats_.RegisterMetrics(registry, prefix);
    registry->RegisterHistogram(prefix + "cc.miss_latency_cycles",
                                &miss_latency_);
    registry->RegisterSeries(prefix + "cc.tcache_occupancy_bytes",
                             &occupancy_);
    registry->RegisterTable(prefix + "cc.chunk_fetches",
                            [this] { return ChunkFetchCounts(); });
  }

  // --- Pinning (the paper's "novel capability": flexible data/code pinning
  // at arbitrary boundaries without dedicating a memory region) ---
  // Pins the translated block for `orig_addr` (translating it if absent):
  // the eviction policies skip it, so it behaves like fixed local memory
  // (interrupt handlers, hot ISRs). Returns false (with a fault raised) if
  // translation fails. FlushAll preserves pinned blocks too.
  bool Pin(uint32_t orig_addr);
  // Unpins; the block becomes an ordinary eviction candidate again.
  void Unpin(uint32_t orig_addr);
  uint64_t pinned_bytes() const;

  // --- Introspection (tests and benchmarks) ---
  bool IsResident(uint32_t orig_addr) const;
  size_t ResidentBlocks() const { return blocks_.size(); }
  uint32_t local_base() const { return local_base_; }
  uint32_t cells_base() const { return cells_base_; }
  uint32_t local_limit() const { return cells_base_ + cells_bytes_; }
  uint64_t live_tcache_bytes() const { return live_bytes_; }

  // Validates every cross-structure invariant (edges consistent both ways,
  // stubs point at live TCMISS words, map entries match blocks, no block
  // overlap). Fatal on violation; called from tests after every phase.
  void CheckInvariants() const;

  // Human-readable dump of the whole rewriting state: every resident block
  // (address ranges, exit states, edges), live stubs, and forward cells.
  // Debugging surface for srun --dump-tcache and failing tests.
  std::string DumpState() const;

  // Machine-readable tcache occupancy row, one per resident block, for the
  // Inspector (docs/OBSERVABILITY.md). Ordered by tcache address.
  struct BlockView {
    uint32_t orig_addr = 0;
    uint32_t orig_span = 0;
    uint32_t tc_addr = 0;
    uint32_t tc_bytes = 0;
    uint32_t out_edges = 0;
    uint32_t in_edges = 0;
    bool pinned = false;
  };
  std::vector<BlockView> SnapshotBlocks() const;
  // (orig_addr, staged wire cost) per staged prefetch chunk, FIFO order.
  std::vector<std::pair<uint32_t, uint32_t>> SnapshotStaged() const;
  uint64_t staged_bytes() const { return staged_bytes_; }
  const vm::Machine& machine() const { return machine_; }

 private:
  struct InEdge {
    uint64_t from_block;   // source block id; 0 for permanent cells
    uint32_t patch_addr;   // the word that currently points at the target
    PatchKind kind;
    uint32_t miss_slot;    // where the TCMISS goes on unlink
    uint32_t target_orig;  // original target address (stub recreation)
  };

  struct Block {
    uint64_t id = 0;
    uint32_t orig_addr = 0;
    uint32_t orig_span = 0;  // bytes of original code this block covers
    uint32_t tc_addr = 0;
    uint32_t tc_bytes = 0;
    uint32_t body_words = 0;
    uint32_t slot_words = 0;
    ExitKind exit = ExitKind::kNone;
    bool pinned = false;  // exempt from eviction (Pin/Unpin)
    // Integrity stamp over the installed tcache words (0 with integrity
    // off); refreshed after every legitimate patch write. `poisoned` marks
    // a block installed under the degradation ladder (its tcache range is
    // poisoned on the machine; eviction unpoisons).
    uint64_t digest = 0;
    bool poisoned = false;
    uint32_t taken_orig = 0;
    uint32_t fall_orig = 0;
    uint32_t slot_a = 0;  // 0 = absent
    uint32_t slot_b = 0;
    // Trace chunking: mid-chunk side exits as (slot address, taken target).
    std::vector<std::pair<uint32_t, uint32_t>> mid_slots;
    // ARM mode: original word index -> tcache word index. Empty in SPARC
    // mode (identity mapping).
    std::vector<uint32_t> index_map;
    std::vector<InEdge> in_edges;
    // (target block id, patch_addr) for every linked outgoing edge.
    std::vector<std::pair<uint64_t, uint32_t>> out_edges;
    // (stub id, generation) for stubs whose TCMISS words live inside this
    // block. Entries go stale when a stub is freed by back-patching; the
    // generation check at eviction prevents freeing a reused id.
    std::vector<std::pair<uint32_t, uint64_t>> own_stubs;
  };

  struct StubInfo {
    bool live = false;
    uint32_t target_orig = 0;
    uint32_t patch_addr = 0;
    PatchKind kind = PatchKind::kSlot;
    uint32_t miss_slot = 0;
    uint64_t from_block = 0;  // 0 for permanent cells
    // Distinguishes reuses of the same stub id: translation during a miss
    // can evict the trapping block, free its stub, and hand the id to a new
    // stub — the trap handler must notice its snapshot went stale.
    uint64_t generation = 0;
  };

  // --- Translation ---
  struct Resolution {
    uint32_t tc_addr = 0;
    Block* block = nullptr;
    bool translated = false;
  };
  // Resolves an original PC to a tcache PC, translating on miss. Returns a
  // null block on failure (a fault has been raised on the machine).
  Resolution ResolveEntry(uint32_t orig_pc);
  // Finds the resident block for `orig_pc` without translating: an exact
  // block start, or (ARM style) a procedure containing the interior address.
  // Returns nullptr when absent; on success, a non-null `tc_addr` receives
  // the translated address of orig_pc.
  Block* FindResident(uint32_t orig_pc, uint32_t* tc_addr = nullptr);
  Block* Translate(uint32_t orig_pc);
  Block* InstallSparc(const Chunk& chunk);
  Block* InstallArm(const Chunk& chunk);
  util::Result<Chunk> FetchChunk(uint32_t orig_pc);
  // Second round trip after a digest reply whose body the snoop store no
  // longer holds: a plain kChunkRequest, always answered with a full body.
  util::Result<Chunk> FetchChunkFullBody(uint32_t orig_pc);

  // --- Prefetch staging ---
  // Prefetched chunks wait here as raw untranslated words — no tcache space,
  // no translation work — until demanded (TakeStaged) or FIFO-evicted.
  // Cost accounting mirrors the wire cost (sub-header + words).
  static uint32_t StagedCost(const Chunk& chunk);
  void StageChunk(Chunk&& chunk);
  // Moves the staged chunk covering `orig_pc` into `*out` (exact start, or —
  // ARM style — a procedure containing the interior address). False on miss.
  bool TakeStaged(uint32_t orig_pc, Chunk* out);
  // Drops staged chunks overlapping [addr, addr+len): their words are stale
  // once the program rewrites that text.
  void DropStagedRange(uint32_t addr, uint32_t len);
  void UnstageAt(uint32_t orig_addr);
  // Session quiesce hook: drops every staged prefetch chunk. Staged chunks
  // encode pre-crash MC decisions; after a restart the conservative move is
  // to refetch on demand.
  void QuiesceForRecovery();
  // Charges client-visible miss-handling cycles.
  void Charge(uint64_t cycles) {
    machine_.Charge(cycles);
    stats_.miss_cycles += cycles;
  }

  // --- Allocation / eviction ---
  // Returns 0 on failure (fault raised).
  uint32_t Allocate(uint32_t bytes);
  void EvictBlock(uint64_t block_id);
  void FlushAll();

  // --- Linking ---
  uint32_t NewStub(const StubInfo& info);
  void FreeStub(uint32_t stub_id);
  void WriteStubWord(uint32_t addr, uint32_t stub_id);
  // Points patch_addr (of the given kind) at `target_tc` and registers the
  // in-edge on `target`.
  void LinkEdge(const StubInfo& stub, Block& target, uint32_t target_tc);
  // Restores one in-edge of an evicted block to its missing state.
  void UnlinkEdge(const InEdge& edge);
  // Returns the permanent forward cell for `cont_orig`, creating it if
  // needed. If `known_tc` is nonzero the cell is set to `J known_tc` and an
  // in-edge is registered on `owner`; otherwise the cell holds a TCMISS.
  uint32_t ForwardCell(uint32_t cont_orig, uint32_t known_tc, Block* owner);

  // --- Invalidation support ---
  // Maps a tcache address inside `block` back to its original address.
  uint32_t OrigForTcacheAddr(const Block& block, uint32_t tc_addr) const;
  // Replaces return addresses pointing into the evicted block — in the ra
  // register and in every stack frame — with forward-cell addresses (SPARC
  // style; the ARM style routes returns through cells up front).
  void FixStaleReturnAddresses(const Block& block);

  Block* BlockById(uint64_t id);
  void Fail(const std::string& what);

  // --- Integrity internals ---
  // FNV-1a over the block's current tcache bytes (ChunkDigest keyed by the
  // original address, so two blocks with equal bytes still differ).
  uint64_t BlockDigest(const Block& block) const;
  // A legitimate patch wrote `addr`: restamp the containing block, if any.
  void RefreshDigestAt(uint32_t addr);
  // Verify-on-use: true when the block's bytes match its stamp. On
  // mismatch the block is quarantined (possibly raising the heal-budget
  // fault) and false is returned — the caller refetches via the miss path.
  bool VerifyResident(Block* block);
  // Evicts a corrupted block, records the heal debt, and advances the
  // degradation ladder. Returns false when the heal budget is exhausted
  // (a fault has been raised).
  bool Quarantine(Block* block);
  // The background scrub pass: walk every domain, quarantine/drop
  // mismatches, charge the walk.
  void ScrubCachedState();
  uint64_t StagedDigest(const Chunk& chunk) const;

  // Per-domain injectors (null with integrity off).
  std::unique_ptr<MemFaultInjector> inj_tcache_;
  std::unique_ptr<MemFaultInjector> inj_staged_;
  std::unique_ptr<MemFaultInjector> inj_store_;
  std::unique_ptr<MemFaultInjector> inj_sb_;
  // Chunks quarantined and awaiting their heal reinstall (keyed by original
  // address), the per-chunk quarantine counts driving the poison ladder,
  // and the chunks demoted to per-instruction dispatch.
  std::set<uint32_t> pending_heal_;
  std::map<uint32_t, uint32_t> heal_counts_;
  std::set<uint32_t> poisoned_origs_;
  // Digest per staged prefetch chunk, keyed like staged_.
  std::map<uint32_t, uint64_t> staged_digest_;
  std::function<void(uint32_t)> quarantine_hook_;
  // Latched when the heal budget is exhausted: the run is degrading to a
  // clean Fail, so no further verification/healing work happens.
  bool integrity_fatal_ = false;

  vm::Machine& machine_;
  MemoryController& mc_;
  SoftCacheConfig config_;
  SoftCacheStats stats_;
  // Declared after stats_: the session records into stats_.net/.session.
  Session session_;
  // Snoop store for content-addressed shared replies (null when off).
  std::unique_ptr<ChunkContentStore> content_store_;
  // Observability series (see accessors above).
  util::Histogram miss_latency_;
  obs::Series occupancy_;
  util::OpenTable<uint32_t, uint32_t> fetch_counts_;

  uint32_t local_base_ = 0;
  uint32_t cells_base_ = 0;
  uint32_t cells_bytes_ = 0;
  uint32_t cells_used_ = 0;

  uint64_t next_block_id_ = 1;
  uint32_t alloc_cursor_ = 0;  // offset within the tcache region
  uint64_t live_bytes_ = 0;

  std::map<uint32_t, Block> blocks_;  // keyed by tc_addr
  // id -> tc_addr. Hit on every TCMISS resolution and invariant check; an
  // open-addressed flat table sized at construction from the worst-case
  // resident-block count.
  util::OpenTable<uint64_t, uint32_t> block_tc_;
  // Original start -> block id; ordered so the ARM style can find the
  // procedure containing an interior address (and eviction scans stay
  // address-ordered).
  std::map<uint32_t, uint64_t> by_orig_;
  std::vector<StubInfo> stubs_;
  std::vector<uint32_t> free_stub_ids_;
  uint64_t stub_generation_ = 0;
  // orig -> cell addr; sized from the cell region (one word per cell).
  util::OpenTable<uint32_t, uint32_t> cell_for_orig_;
  // Staging buffer for prefetched chunks, keyed by orig_addr (ordered for
  // the ARM interior-address lookup), bounded by config.prefetch.staging_bytes
  // with FIFO displacement.
  std::map<uint32_t, Chunk> staged_;
  std::deque<uint32_t> staged_fifo_;
  uint64_t staged_bytes_ = 0;

  // Causal tracing (see FetchChunk): rolling 4-bit request id and the flow
  // arrow currently open between fetch and install. Touched only while the
  // thread's trace lane is recording.
  uint32_t next_rid_ = 1;
  uint32_t current_rid_ = 0;
  uint64_t pending_flow_id_ = 0;
};

}  // namespace sc::softcache
