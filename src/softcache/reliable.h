// Reliability layer over an unreliable transport: the CC/dcache side of the
// request/reply protocol.
//
// Every client RPC goes through ReliableLink::Call, which implements a
// classic stop-and-wait ARQ in simulated cycles:
//
//   send frame -> drain replies {
//     unparseable  -> count corrupt, keep draining
//     wrong seq    -> count stale (duplicate/late reply), keep draining
//     matching seq -> done (kError replies are returned to the caller)
//   } -> nothing matched: timeout, double the backoff, retransmit
//
// Retransmission is bounded by max_attempts; an exhausted call returns an
// Error and the caller decides whether that is fatal. Write-type requests
// (kTextWrite, kDataWriteback) may be retransmitted after the server already
// applied them — the MC's replay cache (mc.h) recognizes the identical frame
// and answers from cache instead of applying it twice.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/transport.h"
#include "softcache/protocol.h"
#include "util/result.h"
#include "util/rng.h"

namespace sc::softcache {

class MemoryController;
struct LinkStats;

struct RetryConfig {
  // Backoff schedule, in client cycles: first retransmission waits
  // timeout_cycles, each following one doubles, capped at
  // max_timeout_cycles. The defaults sit well above one round trip of the
  // default 10 Mbps channel so a loopback run can never time out.
  uint64_t timeout_cycles = 100'000;
  uint64_t max_timeout_cycles = 1'600'000;
  // Attempts per RPC (first send included). At per-attempt failure rates as
  // bad as ~0.6 (all fault knobs at 0.2), 32 attempts make giveup
  // probability negligible (~5e-8 per call) while still bounding the loop.
  uint32_t max_attempts = 32;
  // Bound on back-to-back session recoveries (handshake + journal replay)
  // one logical operation may trigger before the Session degrades to a
  // clean error — covers crash schedules that keep firing mid-recovery.
  uint32_t max_recovery_attempts = 8;
  // Hard per-op deadline, in client cycles charged by ONE Call (sends,
  // deliveries and backoff waits). A call that reaches the deadline gives
  // up even with retransmission attempts left, so the worst-case stall a
  // dead server can impose is bounded in guest time, not just in attempt
  // count. 0 = unbounded (the historical behavior).
  uint64_t attempt_deadline_cycles = 0;
  // Backoff jitter fraction in [0, 1): each wait is scaled by a uniform
  // factor in [1-jitter, 1+jitter) drawn from a seeded stream, decorrelating
  // the retry storms of clients that lost the same broadcast. 0 = the exact
  // historical deterministic doubling (the jitter stream is never drawn).
  double backoff_jitter = 0.0;
  uint64_t jitter_seed = 1;
};

class ReliableLink {
 public:
  // `stats` must outlive the link (it lives in the owner's stats block).
  ReliableLink(std::unique_ptr<net::Transport> transport,
               const RetryConfig& retry, LinkStats* stats);

  // Performs one request/reply RPC. `*cycles` accumulates every
  // client-visible cost: transmissions, deliveries, and backoff waits. The
  // returned Reply has the matching seq but may be kError — protocol-level
  // failure is the caller's business; this layer only guarantees delivery.
  util::Result<Reply> Call(const Request& request, uint64_t* cycles);

  net::Transport& transport() { return *transport_; }

 private:
  std::unique_ptr<net::Transport> transport_;
  RetryConfig retry_;
  LinkStats* stats_;
  util::Rng jitter_rng_;  // drawn only when backoff_jitter > 0
};

// Builds a client transport over an arbitrary server endpoint (e.g. one
// port of a net::Switch): a LoopbackTransport when `fault` is all zeros
// (bit-identical to the historical direct-call path), otherwise a
// FaultyTransport seeded from the config, with `crash` invoked at each
// scheduled server crash (typically MemoryController::RestartSession).
std::unique_ptr<net::Transport> MakeTransport(net::FrameHandler handler,
                                              net::Channel& channel,
                                              const net::FaultConfig& fault,
                                              std::function<void()> crash);

// The single-client convenience wrapper: frames go straight to mc.Handle
// and a scheduled crash restarts every session (there is only one).
std::unique_ptr<net::Transport> MakeMcTransport(MemoryController& mc,
                                                net::Channel& channel,
                                                const net::FaultConfig& fault);

}  // namespace sc::softcache
