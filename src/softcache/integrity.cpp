#include "softcache/integrity.h"

namespace sc::softcache {

namespace {

// Fixed per-domain salts (arbitrary odd 64-bit constants): xor-ing the user
// seed keeps every domain's stream independent while the whole storm stays
// a pure function of MemFaultConfig::seed.
uint64_t DomainSalt(FaultDomain domain) {
  switch (domain) {
    case FaultDomain::kTcache:
      return 0x7463616368650001ull;  // "tcache"
    case FaultDomain::kStaged:
      return 0x7374616765640003ull;  // "staged"
    case FaultDomain::kStore:
      return 0x73746f7265000005ull;  // "store"
    case FaultDomain::kSuperblock:
      return 0x7375706572620007ull;  // "superb"
    case FaultDomain::kMemo:
      return 0x6d656d6f00000009ull;  // "memo"
  }
  return 0x6465666175780b0bull;
}

}  // namespace

MemFaultInjector::MemFaultInjector(const MemFaultConfig& config,
                                   FaultDomain domain, uint32_t substream)
    : rng_(config.seed ^ DomainSalt(domain) ^
           (substream * 0x9e3779b97f4a7c15ull)) {
  schedule_.rate = config.rate;
  schedule_.after = config.after;
  schedule_.period = config.period;
  schedule_.at_cycle = config.at_cycle;
}

void IntegrityStats::RegisterMetrics(obs::MetricsRegistry* registry,
                                     const std::string& prefix) const {
  registry->RegisterCounter(prefix + "ticks", &ticks);
  registry->RegisterCounter(prefix + "flips_injected", &flips_injected);
  registry->RegisterCounter(prefix + "scrubs", &scrubs);
  registry->RegisterCounter(prefix + "scrubbed_words", &scrubbed_words);
  registry->RegisterCounter(prefix + "corruptions_detected",
                            &corruptions_detected);
  registry->RegisterCounter(prefix + "quarantines", &quarantines);
  registry->RegisterCounter(prefix + "heals", &heals);
  registry->RegisterCounter(prefix + "staged_drops", &staged_drops);
  registry->RegisterCounter(prefix + "store_drops", &store_drops);
  registry->RegisterCounter(prefix + "sb_drops", &sb_drops);
  registry->RegisterCounter(prefix + "poisoned_blocks", &poisoned_blocks);
  registry->RegisterCounter(prefix + "heal_failures", &heal_failures);
}

}  // namespace sc::softcache
