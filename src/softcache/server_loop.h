// McServerLoop: the event-driven front end of the memory controller.
//
// The seed server was a synchronous function call: each client's transport
// invoked MemoryController::HandlePort and got the reply on the stack. This
// loop replaces that with an inbound request queue and an explicit pump:
//
//   * every arriving frame becomes a *ticket* on the inbound queue;
//   * the first thread to find no pumper active becomes the pumper and
//     drains the queue in arrival order — servicing its own ticket AND any
//     other clients' tickets queued behind it (batch drain);
//   * threads whose tickets are already queued block on a condition variable
//     until the pumper completes them.
//
// Single-threaded callers (the deterministic round-robin scheduler) pass
// through with one enqueue + one drain per frame and zero contention, so
// replies — and therefore wire traffic and guest execution — are unchanged.
// Multi-threaded callers (host-thread-parallel client VMs) get per-client
// replies in flight concurrently with exactly one thread inside the server
// core at a time; the queue-depth statistics then measure real arrival
// concurrency at the server.
//
// RunExclusive serializes out-of-band server mutations (crash injection's
// per-session restart fires on a client thread, inside its transport's Send)
// against the pump, so a restart can never interleave with frame handling.
//
// Observability: the loop owns the server's "loop" trace lane (one
// loop.ticket span per serviced frame, written only under server_mu_ — the
// lane opts out of the thread-affinity assert because the lock already
// serializes it) and a host-nanosecond ticket queue-wait histogram
// (enqueue -> handler entry). Neither ever charges guest cycles; the wait
// histogram is host time and deliberately excluded from snapshot/delta
// determinism checks (only counters and gauges snapshot).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace sc::obs {
class MetricsRegistry;
class Tracer;
}

namespace sc::softcache {

struct McServerLoopStats {
  uint64_t requests_enqueued = 0;  // tickets admitted to the inbound queue
  uint64_t batches_drained = 0;    // pump passes (one per queue drain)
  uint64_t max_queue_depth = 0;    // deepest inbound queue ever observed
  uint64_t queue_depth_sum = 0;    // sum of depth-at-enqueue (avg = sum/enq)
  uint64_t exclusive_sections = 0; // RunExclusive invocations
  uint64_t requests_deferred = 0;  // submits parked by the queue bound
};

class McServerLoop {
 public:
  // Handles one frame arriving on a port (MemoryController::HandlePort, or a
  // test double). Invoked by exactly one thread at a time.
  using PortHandler = std::function<std::vector<uint8_t>(
      uint32_t port, const std::vector<uint8_t>& frame)>;

  // `max_queue` bounds the inbound ticket queue (0 = unbounded, the
  // historical behavior). A submitter arriving at a full queue defers —
  // parks on the condition variable WITHOUT holding a queued ticket — and
  // retries once the pump drains the depth below the bound, so the server's
  // memory footprint under a flood is bounded while the pump itself can
  // always make progress (no admitted ticket ever waits on admission).
  explicit McServerLoop(PortHandler handler, size_t max_queue = 0);

  McServerLoop(const McServerLoop&) = delete;
  McServerLoop& operator=(const McServerLoop&) = delete;

  // The switch's server handler: enqueues the frame, pumps (or waits) until
  // its reply is ready, and returns it. Safe to call from many threads.
  std::vector<uint8_t> Submit(uint32_t port, const std::vector<uint8_t>& frame);

  // Runs `fn` with the server core exclusively held (no frame handling in
  // flight). Used for crash-schedule restarts arriving off the frame path.
  void RunExclusive(const std::function<void()>& fn);

  const McServerLoopStats& stats() const { return stats_; }

  // The server's "loop" trace lane (owned by the TraceMux; null = untraced).
  // The lane must have set_thread_affine(false): it is written by whichever
  // thread pumps, always under server_mu_.
  void set_trace_lane(obs::Tracer* lane) { loop_lane_ = lane; }

  // Guest-cycle timestamp (enqueuing client's lane clock) of the ticket the
  // pump is currently servicing; 0 when untraced. Valid only while inside
  // the PortHandler (i.e. under server_mu_) — the downstream shard lanes use
  // it to advance their manual clocks causally.
  uint64_t current_ticket_enqueue_ts() const { return current_enqueue_ts_; }

  // Host nanoseconds each ticket spent queued before the handler took it.
  const util::Histogram& queue_wait_ns() const { return queue_wait_ns_; }

  // Registers the queue counters under `prefix` (e.g. "mc.loop.").
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  struct Ticket {
    uint32_t port = 0;
    const std::vector<uint8_t>* frame = nullptr;
    std::vector<uint8_t> reply;
    bool done = false;
    // Observability: guest-cycle time on the enqueuing thread's lane clock
    // (0 if that thread is untraced) and host enqueue time for the
    // queue-wait histogram.
    uint64_t enqueue_ts = 0;
    std::chrono::steady_clock::time_point enqueue_host;
  };

  // Emits the loop-lane span + causal flow step for one ticket and runs the
  // handler. Called with server_mu_ held.
  std::vector<uint8_t> Service(Ticket* t);

  PortHandler handler_;
  const size_t max_queue_;

  // mu_ guards the queue, the pumper flag and the loop stats; server_mu_
  // guards the server core itself (held while handling one frame or one
  // exclusive section, never while waiting on cv_). Mutable so the
  // queue-depth gauge can lock from const registration lambdas.
  mutable std::mutex mu_;
  std::mutex server_mu_;
  std::condition_variable cv_;
  std::deque<Ticket*> queue_;
  bool pumping_ = false;
  McServerLoopStats stats_;

  obs::Tracer* loop_lane_ = nullptr;    // written under server_mu_
  uint64_t current_enqueue_ts_ = 0;     // written under server_mu_
  util::Histogram queue_wait_ns_;       // written under mu_
};

}  // namespace sc::softcache
