// McServerLoop: the event-driven front end of the memory controller.
//
// The seed server was a synchronous function call: each client's transport
// invoked MemoryController::HandlePort and got the reply on the stack. This
// loop replaces that with inbound request queues and explicit service:
//
//   * every arriving frame becomes a *ticket*, routed to a **lane** (one
//     bounded queue per memo shard when a router is installed, a single
//     lane otherwise);
//   * in the legacy borrowed-thread mode (workers = 0) the first submitter
//     to find its lane unpumped becomes the pumper and drains the lane in
//     arrival order — servicing its own ticket AND any other clients'
//     tickets queued behind it (batch drain);
//   * with a worker pool (workers >= 1) dedicated server threads drain the
//     lanes with static ownership (lane l belongs to worker l % workers),
//     so frames routed to different shards are serviced concurrently —
//     there is no core-wide lock anywhere on the frame path;
//   * threads whose tickets are queued block on a condition variable until
//     their reply is ready.
//
// Single-threaded callers (the deterministic round-robin scheduler) have at
// most one frame in flight fleet-wide, so ticket service order — and hence
// replies, wire traffic and guest execution — is identical no matter how
// many workers drain the lanes.
//
// RunExclusive is a park-all barrier (the same publish/park/resume shape as
// the threaded scheduler's inspection safepoint): out-of-band server
// mutations (crash-schedule restarts, whole-fleet snapshots) first stop new
// ticket service, wait for every in-flight handler to finish, run, then
// wake the lanes back up. A restart can therefore never interleave with
// frame handling, worker pool or not.
//
// Lock ownership (the loop side of the table in docs/DESIGN.md): ONE mutex
// (mu_) owns every queue, flag, loop counter and the queue-wait histogram —
// no loop statistic is ever touched under two different locks. Handlers run
// with no loop lock held; the server core below has its own per-shard
// ownership (see mc.h).
//
// Observability: in borrowed-thread mode the loop owns the server's "loop"
// trace lane (one loop.ticket span per serviced frame; the lane opts out of
// the thread-affinity assert because exactly one pumper runs at a time). In
// worker mode each worker owns a "worker <w>" lane and writes its tickets
// there — single writer per lane by construction. The host-nanosecond
// queue-wait histogram (enqueue -> handler entry) never charges guest
// cycles and is excluded from snapshot determinism.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace sc::obs {
class MetricsRegistry;
class Tracer;
}

namespace sc::softcache {

struct McServerLoopStats {
  uint64_t requests_enqueued = 0;  // tickets admitted to the lane queues
  uint64_t batches_drained = 0;    // contiguous drain bursts (pump or worker)
  uint64_t max_queue_depth = 0;    // deepest single lane ever observed
  uint64_t queue_depth_sum = 0;    // sum of lane depth-at-enqueue
  uint64_t exclusive_sections = 0; // RunExclusive invocations
  uint64_t requests_deferred = 0;  // submits parked by the lane bound
};

// Per-worker service counters (mc.worker<i>.* in the metrics registry).
// `frames` is deterministic for a deterministic run (frame->lane->worker is a
// pure function) and exports as a counter; `busy_ns` is host wall-clock and
// exports as a histogram of per-ticket service times, keeping it out of the
// snapshot determinism checks like every other host-time metric.
struct McWorkerStats {
  uint64_t frames = 0;   // tickets this worker serviced
  uint64_t busy_ns = 0;  // host ns spent inside the handler
  util::Histogram busy_hist_ns{0, 1e6, 128};  // the same time, per ticket
};

// How the loop's queues and threads are shaped. The default reproduces the
// historical single-queue borrowed-thread pump exactly.
struct McServerLoopConfig {
  // Lane (queue) count; with a router installed this should equal the
  // server's shard count so each shard's translations queue independently.
  uint32_t lanes = 1;
  // Dedicated worker threads; 0 = borrowed-thread pump (exactly one frame
  // in the core at a time, zero threads spawned). Workers beyond the lane
  // count would never own a lane (validated at the CLI).
  uint32_t workers = 0;
  // Per-lane ticket bound (0 = unbounded). A submitter arriving at a full
  // lane defers — parks WITHOUT holding a queued ticket — and retries once
  // the lane drains below the bound, so the server's memory footprint under
  // a flood stays bounded while service always makes progress.
  size_t max_queue = 0;
};

class McServerLoop {
 public:
  // Handles one frame arriving on a port (MemoryController::HandlePort, or
  // a test double). With workers = 0 invoked by exactly one thread at a
  // time; with a worker pool invoked concurrently from different lanes (the
  // core's per-shard ownership makes that safe).
  using PortHandler = std::function<std::vector<uint8_t>(
      uint32_t port, const std::vector<uint8_t>& frame)>;

  // Maps an arriving frame to the lane that must service it (frames that
  // touch the same server slice must map to the same lane). Must be pure
  // and thread-safe; called outside every lock. Return values are folded
  // into range with `% lanes`.
  using LaneRouter = std::function<uint32_t(
      uint32_t port, const std::vector<uint8_t>& frame)>;

  // Legacy shape: one unbounded-or-bounded lane, borrowed-thread pump.
  explicit McServerLoop(PortHandler handler, size_t max_queue = 0)
      : McServerLoop(std::move(handler), nullptr,
                     McServerLoopConfig{1, 0, max_queue}) {}

  // Full shape: router + lanes + optional worker pool.
  McServerLoop(PortHandler handler, LaneRouter router,
               const McServerLoopConfig& config);

  McServerLoop(const McServerLoop&) = delete;
  McServerLoop& operator=(const McServerLoop&) = delete;

  // Stops and joins the worker pool (after completing in-flight tickets).
  ~McServerLoop();

  // The switch's server handler: enqueues the frame on its lane, pumps (or
  // waits) until its reply is ready, and returns it. Safe to call from many
  // threads.
  std::vector<uint8_t> Submit(uint32_t port, const std::vector<uint8_t>& frame);

  // Park-all barrier: stops new ticket service, waits for every in-flight
  // handler to drain, runs `fn` with the core exclusively held, then
  // resumes the lanes. Used for crash-schedule restarts arriving off the
  // frame path and whole-server snapshots. Must not be called from inside a
  // handler (it would wait on itself).
  void RunExclusive(const std::function<void()>& fn);

  // Quiescent read surface: loop counters are written only under mu_; read
  // them after the run (or inside an exclusive section / safepoint).
  const McServerLoopStats& stats() const { return stats_; }
  const std::vector<McWorkerStats>& worker_stats() const {
    return worker_stats_;
  }

  uint32_t lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  uint32_t workers() const { return worker_count_; }

  // The server's "loop" trace lane (owned by the TraceMux; null = untraced),
  // used by borrowed-thread pumping. The lane must have
  // set_thread_affine(false): it is written by whichever thread pumps,
  // one at a time.
  void set_trace_lane(obs::Tracer* lane);
  // Worker `w`'s trace lane; written only by that worker's thread.
  void set_worker_trace_lane(uint32_t worker, obs::Tracer* lane);

  // Index of the worker servicing the current ticket on THIS thread, or -1
  // on non-worker threads (borrowed-thread pumping, tests). Valid inside
  // the PortHandler; lets the handler pick the worker's trace lane.
  static int current_worker();

  // Guest-cycle timestamp (enqueuing client's lane clock) of the ticket
  // THIS thread is currently servicing; 0 when untraced. Valid only while
  // inside the PortHandler — downstream shard lanes use it to advance their
  // manual clocks causally. Thread-local, so concurrent workers each see
  // their own ticket's stamp.
  static uint64_t current_ticket_enqueue_ts();

  // Host nanoseconds each ticket spent queued before a handler took it.
  const util::Histogram& queue_wait_ns() const { return queue_wait_ns_; }

  // Registers the queue counters under `prefix` (e.g. "mc.loop."), plus
  // `<prefix-root>worker<i>.*` per pool worker.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;

 private:
  struct Ticket {
    uint32_t port = 0;
    const std::vector<uint8_t>* frame = nullptr;
    std::vector<uint8_t> reply;
    bool done = false;
    // Observability: guest-cycle time on the enqueuing thread's lane clock
    // (0 if that thread is untraced) and host enqueue time for the
    // queue-wait histogram.
    uint64_t enqueue_ts = 0;
    std::chrono::steady_clock::time_point enqueue_host;
  };

  // One inbound queue. `pumping` is only used in borrowed-thread mode (a
  // submitter is draining this lane); worker lanes are drained by their
  // statically owning worker instead.
  struct Lane {
    std::deque<Ticket*> queue;
    bool pumping = false;
  };

  // Emits the ticket span + causal flow step on `lane` (null = untraced)
  // and runs the handler. Called with NO loop lock held.
  std::vector<uint8_t> Service(Ticket* t, obs::Tracer* lane);

  // Pops the next ticket from a lane this worker owns (round-robin over
  // owned lanes); null when none are ready or an exclusive is pending.
  // Caller holds mu_.
  Ticket* NextOwnedTicket(uint32_t worker, uint32_t* lane_out);
  // Bookkeeping shared by pump and worker pop paths. Caller holds mu_.
  void NoteDequeue(Lane* lane, Ticket* t);

  void WorkerMain(uint32_t w);

  PortHandler handler_;
  LaneRouter router_;
  const size_t max_queue_;
  // Fixed at construction BEFORE any worker thread spawns: workers read it
  // as their lane-ownership stride, and the first worker can start running
  // while the constructor is still populating threads_ — so threads_.size()
  // must never be consulted on the worker path.
  const uint32_t worker_count_;

  // THE loop lock: queues, flags, stats, histogram, trace-lane pointers.
  // Mutable so const registration lambdas can lock for gauges.
  mutable std::mutex mu_;
  // Ticket completion, pump handoff, deferred admission, exclusive parking.
  std::condition_variable cv_;
  // Worker wakeups (new ticket, exclusive finished, shutdown).
  std::condition_variable work_cv_;

  std::deque<Lane> lanes_;
  uint64_t busy_ = 0;               // threads currently inside the handler
  uint32_t exclusive_waiters_ = 0;  // RunExclusive calls waiting to park all
  bool exclusive_active_ = false;   // an exclusive section is running
  bool shutdown_ = false;
  McServerLoopStats stats_;
  std::vector<McWorkerStats> worker_stats_;

  obs::Tracer* loop_lane_ = nullptr;          // read/written under mu_
  std::vector<obs::Tracer*> worker_lanes_;    // read/written under mu_
  util::Histogram queue_wait_ns_;             // written under mu_

  std::vector<std::thread> threads_;  // the worker pool (empty = legacy)
};

}  // namespace sc::softcache
