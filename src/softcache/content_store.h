// ChunkContentStore: a client's snoop buffer on the broadcast medium.
//
// On a shared bus or radio (the embedded fleets the paper targets) every
// reply the server transmits is physically audible to every attached client.
// The content-addressed shared-reply path exploits that: each client keeps
// this small bounded store of chunk bodies it has overheard, keyed by the
// 64-bit content digest of protocol.h. When the server answers one of the
// client's own requests with a payload-less kChunkDigestReply, the client
// installs the body from here — the bytes crossed the medium exactly once,
// no matter how many clients demanded the chunk.
//
// The store is deliberately lossy: a FIFO byte bound displaces the oldest
// bodies, and a digest the store no longer holds just costs one fallback
// round trip with a full body (see CacheController::FetchChunk). Entries
// share their body buffers across all clients' stores (shared_ptr), so a
// 256-client fleet pays for each snooped body once, not 256 times.
//
// Thread safety: Snoop and Lookup take an internal mutex, because in
// host-thread-parallel runs the snoop fan-out runs on whichever client
// thread carried the frame while the owner looks up on its own thread.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "softcache/stats.h"
#include "util/rng.h"

namespace sc::softcache {

class ChunkContentStore {
 public:
  // One overheard chunk body in wire form (see protocol.h kChunkReply:
  // addr, packed meta, branch target, instruction words).
  struct StoredChunk {
    uint32_t addr = 0;
    uint32_t aux = 0;
    uint32_t extra = 0;
    std::shared_ptr<const std::vector<uint8_t>> words;
  };

  // `capacity_bytes` bounds the sum of stored body bytes (FIFO displacement).
  explicit ChunkContentStore(uint32_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  // Records one body overheard on the medium. The digest is computed once by
  // the broadcaster (it covers addr/aux/extra/words, so it need not be
  // recomputed per attached client). `stats` is the owning client's
  // shared-reply block; may be null.
  void Snoop(uint64_t digest, uint32_t addr, uint32_t aux, uint32_t extra,
             std::shared_ptr<const std::vector<uint8_t>> words,
             SharedReplyStats* stats);

  // Fetches the stored body for `digest` if it is still resident.
  bool Lookup(uint64_t digest, StoredChunk* out) const;

  // Integrity variant: recomputes the stored body's content digest and
  // treats a mismatch as a miss, erasing the corrupted entry (the fallback
  // full-body fetch then heals it the same way a displaced body would).
  // `dropped_corrupt` (may be null) reports whether an entry was dropped.
  bool VerifiedLookup(uint64_t digest, StoredChunk* out, bool* dropped_corrupt);

  // Fault injection: flips one bit in a uniformly chosen stored body.
  // The entry's buffer is replaced with a corrupted private copy — bodies
  // are shared across every client's store, and only THIS store's copy is
  // hit by this store's fault stream. False when the store is empty.
  bool CorruptBit(util::Rng& rng);

  // Background scrub: verifies every entry against its digest key, erasing
  // mismatches. Returns entries dropped; `words_scanned` (may be null)
  // accumulates body words walked.
  uint32_t ScrubIntegrity(uint64_t* words_scanned);

  size_t entries() const;
  uint64_t bytes() const;
  uint32_t capacity_bytes() const { return capacity_bytes_; }

  // Residency rows for the Inspector: (digest, chunk addr, body bytes) per
  // stored body, ascending by digest (map order). Takes the internal mutex.
  struct EntryView {
    uint64_t digest = 0;
    uint32_t addr = 0;
    uint32_t bytes = 0;
  };
  std::vector<EntryView> SnapshotEntries() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<EntryView> views;
    views.reserve(entries_.size());
    for (const auto& [digest, chunk] : entries_) {
      views.push_back(EntryView{
          digest, chunk.addr,
          chunk.words == nullptr ? 0u
                                 : static_cast<uint32_t>(chunk.words->size())});
    }
    return views;
  }

 private:
  const uint32_t capacity_bytes_;
  mutable std::mutex mu_;
  std::map<uint64_t, StoredChunk> entries_;
  std::deque<uint64_t> fifo_;
  uint64_t bytes_ = 0;
};

}  // namespace sc::softcache
