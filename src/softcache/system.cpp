#include "softcache/system.h"

#include "obs/trace.h"

namespace sc::softcache {

SoftCacheSystem::SoftCacheSystem(const image::Image& image,
                                 const SoftCacheConfig& config)
    : channel_(config.channel) {
  // SOFTCACHE_LOG=3 with no explicit tracer: install the echo-only tracer
  // so the miss-path event stream still appears as log lines.
  obs::EnsureEchoTracerForLogging();
  machine_.LoadImage(image);
  mc_ = std::make_unique<MemoryController>(image, config.style,
                                           config.max_block_instrs,
                                           config.max_trace_blocks);
  cc_ = std::make_unique<CacheController>(machine_, *mc_, channel_, config);
  if (config.fault.crash_at_cycle != 0) {
    // Cycle-triggered crash schedules need to see guest time.
    cc_->transport().set_cycle_source(machine_.cycles_counter());
  }
  if (obs::Tracer* t = obs::tracer()) {
    if (t->enabled()) t->SetClockSource(machine_.cycles_counter());
  }
}

vm::RunResult SoftCacheSystem::Run(uint64_t max_instructions) {
  if (!attached_) {
    cc_->Attach();
    attached_ = true;
  }
  return machine_.Run(max_instructions);
}

void SoftCacheSystem::RegisterMetrics(obs::MetricsRegistry* registry) const {
  const SoftCacheStats& s = cc_->stats();
  // CC translation/trap/rewriting activity.
  registry->RegisterCounter("cc.blocks_translated", &s.blocks_translated);
  registry->RegisterCounter("cc.words_installed", &s.words_installed);
  registry->RegisterCounter("cc.evictions", &s.evictions);
  registry->RegisterCounter("cc.flushes", &s.flushes);
  registry->RegisterCounter("cc.tcmiss_traps", &s.tcmiss_traps);
  registry->RegisterCounter("cc.patch_only_misses", &s.patch_only_misses);
  registry->RegisterCounter("cc.hash_lookups", &s.hash_lookups);
  registry->RegisterCounter("cc.hash_lookup_misses", &s.hash_lookup_misses);
  registry->RegisterCounter("cc.patches_applied", &s.patches_applied);
  registry->RegisterCounter("cc.stack_walk_frames", &s.stack_walk_frames);
  registry->RegisterCounter("cc.return_addr_fixups", &s.return_addr_fixups);
  registry->RegisterCounter("cc.tcache_bytes_used_peak",
                            &s.tcache_bytes_used_peak);
  registry->RegisterCounter("cc.extra_words_live", &s.extra_words_live);
  registry->RegisterCounter("cc.return_stub_words", &s.return_stub_words);
  registry->RegisterCounter("cc.redirector_words", &s.redirector_words);
  registry->RegisterCounter("cc.miss_cycles", &s.miss_cycles);
  // Prefetch staging (CC side).
  registry->RegisterCounter("prefetch.batches", &s.prefetch.batches);
  registry->RegisterCounter("prefetch.chunks_prefetched",
                            &s.prefetch.chunks_prefetched);
  registry->RegisterCounter("prefetch.staged", &s.prefetch.staged);
  registry->RegisterCounter("prefetch.hits", &s.prefetch.hits);
  registry->RegisterCounter("prefetch.demand_fetches",
                            &s.prefetch.demand_fetches);
  registry->RegisterCounter("prefetch.dropped", &s.prefetch.dropped);
  registry->RegisterCounter("prefetch.evictions", &s.prefetch.evictions);
  registry->RegisterCounter("prefetch.invalidated", &s.prefetch.invalidated);
  registry->RegisterGauge("prefetch.accuracy",
                          [&s] { return s.prefetch.accuracy(); });
  registry->RegisterGauge("prefetch.coverage",
                          [&s] { return s.prefetch.coverage(); });
  // Reliable-link retry machinery.
  registry->RegisterCounter("net.link.requests", &s.net.requests);
  registry->RegisterCounter("net.link.retries", &s.net.retries);
  registry->RegisterCounter("net.link.timeouts", &s.net.timeouts);
  registry->RegisterCounter("net.link.corrupt_frames", &s.net.corrupt_frames);
  registry->RegisterCounter("net.link.stale_replies", &s.net.stale_replies);
  registry->RegisterCounter("net.link.giveups", &s.net.giveups);
  // Crash-recovery session machinery.
  registry->RegisterCounter("session.epoch_changes", &s.session.epoch_changes);
  registry->RegisterCounter("session.recoveries", &s.session.recoveries);
  registry->RegisterCounter("session.journaled_ops", &s.session.journaled_ops);
  registry->RegisterCounter("session.journal_replays",
                            &s.session.journal_replays);
  registry->RegisterCounter("session.journal_truncated",
                            &s.session.journal_truncated);
  registry->RegisterCounter("session.recovery_cycles",
                            &s.session.recovery_cycles);
  registry->RegisterCounter("session.recovery_failures",
                            &s.session.recovery_failures);
  // Channel wire accounting.
  const net::ChannelStats& ch = channel_.stats();
  registry->RegisterCounter("net.channel.messages_to_server",
                            &ch.messages_to_server);
  registry->RegisterCounter("net.channel.messages_to_client",
                            &ch.messages_to_client);
  registry->RegisterCounter("net.channel.bytes_to_server", &ch.bytes_to_server);
  registry->RegisterCounter("net.channel.bytes_to_client", &ch.bytes_to_client);
  registry->RegisterCounter("net.channel.cycles", &ch.total_cycles);
  // MC service counters.
  registry->RegisterCounter("mc.requests_served",
                            mc_->requests_served_counter());
  registry->RegisterCounter("mc.replays_suppressed",
                            mc_->replays_suppressed_counter());
  registry->RegisterCounter("mc.batches_served", mc_->batches_served_counter());
  registry->RegisterCounter("mc.chunks_prefetched",
                            mc_->chunks_prefetched_counter());
  registry->RegisterCounter("mc.restarts", mc_->restarts_counter());
  registry->RegisterCounter("mc.stale_epoch_rejects",
                            mc_->stale_epoch_rejects_counter());
  registry->RegisterCounter("mc.write_flushes", mc_->write_flushes_counter());
  // VM progress.
  registry->RegisterCounter("vm.instructions", machine_.instructions_counter());
  registry->RegisterCounter("vm.cycles", machine_.cycles_counter());
  // Derived shapes.
  registry->RegisterHistogram("cc.miss_latency_cycles", &cc_->miss_latency());
  registry->RegisterTimeline("cc.eviction_timeline", &s.eviction_timeline);
  registry->RegisterSeries("cc.tcache_occupancy_bytes",
                           &cc_->occupancy_series());
  registry->RegisterTable("cc.chunk_fetches",
                          [this] { return cc_->ChunkFetchCounts(); });
  registry->RegisterTable("mc.chunk_temperature",
                          [this] { return mc_->TemperatureRows(); });
}

double SoftCacheSystem::MissRate() const {
  const uint64_t instrs = machine_.instructions();
  if (instrs == 0) return 0.0;
  return static_cast<double>(stats().blocks_translated) /
         static_cast<double>(instrs);
}

vm::RunResult RunNative(const image::Image& image, const std::string& input,
                        std::string* output, uint64_t max_instructions) {
  vm::Machine machine;
  machine.LoadImage(image);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  const vm::RunResult result = machine.Run(max_instructions);
  if (output != nullptr) *output = machine.OutputString();
  return result;
}

}  // namespace sc::softcache
