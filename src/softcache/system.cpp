#include "softcache/system.h"

#include <algorithm>

#include "obs/trace.h"
#include "softcache/reliable.h"
#include "util/check.h"

namespace sc::softcache {

SoftCacheSystem::SoftCacheSystem(const image::Image& image,
                                 const SoftCacheConfig& config)
    : channel_(config.channel) {
  // SOFTCACHE_LOG=3 with no explicit tracer: install the echo-only tracer
  // so the miss-path event stream still appears as log lines.
  obs::EnsureEchoTracerForLogging();
  machine_.LoadImage(image);
  mc_ = std::make_unique<MemoryController>(image, config.style,
                                           config.max_block_instrs,
                                           config.max_trace_blocks);
  cc_ = std::make_unique<CacheController>(machine_, *mc_, channel_, config);
  if (config.fault.crash_at_cycle != 0) {
    // Cycle-triggered crash schedules need to see guest time.
    cc_->transport().set_cycle_source(machine_.cycles_counter());
  }
  if (obs::Tracer* t = obs::tracer()) {
    if (t->enabled()) t->SetClockSource(machine_.cycles_counter());
  }
}

vm::RunResult SoftCacheSystem::Run(uint64_t max_instructions) {
  if (!attached_) {
    cc_->Attach();
    attached_ = true;
  }
  return machine_.Run(max_instructions);
}

void SoftCacheSystem::RegisterMetrics(obs::MetricsRegistry* registry) const {
  // Each subsystem registers its own block next to the stats it owns; this
  // is just composition. The names are unchanged from when this function
  // enumerated every counter by hand (obs_test pins them).
  cc_->RegisterMetrics(registry, "");
  channel_.stats().RegisterMetrics(registry, "net.channel.");
  mc_->RegisterMetrics(registry, "mc.");
  registry->RegisterCounter("vm.instructions", machine_.instructions_counter());
  registry->RegisterCounter("vm.cycles", machine_.cycles_counter());
}

double SoftCacheSystem::MissRate() const {
  const uint64_t instrs = machine_.instructions();
  if (instrs == 0) return 0.0;
  return static_cast<double>(stats().blocks_translated) /
         static_cast<double>(instrs);
}

MultiClientSystem::MultiClientSystem(const image::Image& image,
                                     const MultiClientConfig& config)
    : config_(config),
      switch_([this](uint32_t port, const std::vector<uint8_t>& frame) {
        return mc_->HandlePort(port, frame);
      }) {
  SC_CHECK_GE(config.clients, 1u) << "MultiClientSystem needs a client";
  SC_CHECK_LE(config.clients, kMaxClients) << "exceeds 8-bit wire id space";
  obs::EnsureEchoTracerForLogging();
  mc_ = std::make_unique<MemoryController>(image, config.base.style,
                                           config.base.max_block_instrs,
                                           config.base.max_trace_blocks);
  clients_.reserve(config.clients);
  for (uint32_t i = 0; i < config.clients; ++i) {
    Client client;
    client.machine = std::make_unique<vm::Machine>();
    client.machine->LoadImage(image);
    client.channel = std::make_unique<net::Channel>(config.base.channel);

    SoftCacheConfig cfg = config.base;
    cfg.client_id = i;
    if (i < config.client_faults.size()) cfg.fault = config.client_faults[i];
    const net::FaultConfig fault = cfg.fault;
    // Each client talks through its own switch port; a crash on that port
    // restarts only this client's server-side session, never its neighbors'.
    cfg.transport_factory = [this, i, fault](MemoryController&,
                                             net::Channel& channel) {
      return MakeTransport(switch_.Port(i), channel, fault,
                           [this, i] { mc_->RestartSession(i); });
    };
    client.cc = std::make_unique<CacheController>(*client.machine, *mc_,
                                                  *client.channel, cfg);
    if (fault.crash_at_cycle != 0) {
      client.cc->transport().set_cycle_source(
          client.machine->cycles_counter());
    }
    // Pre-create the session so per-session metrics exist before traffic.
    mc_->session(i);
    clients_.push_back(std::move(client));
  }
  if (obs::Tracer* t = obs::tracer()) {
    if (t->enabled()) t->SetClockSource(clients_[0].machine->cycles_counter());
  }
}

std::vector<vm::RunResult> MultiClientSystem::RunAll(
    uint64_t max_instructions_each) {
  for (Client& client : clients_) {
    if (!client.attached) {
      client.cc->Attach();
      client.attached = true;
    }
  }
  // Deterministic round-robin on guest time: always step the laggard (the
  // live machine with the smallest cycle count; ties break to the lowest
  // index). Clients share no guest-visible state, so any interleaving gives
  // each one a solo-identical execution — this rule just makes the schedule
  // (and hence traces/metrics) reproducible.
  for (;;) {
    Client* next = nullptr;
    for (Client& client : clients_) {
      if (client.done) continue;
      if (next == nullptr ||
          client.machine->cycles() < next->machine->cycles()) {
        next = &client;
      }
    }
    if (next == nullptr) break;
    const uint64_t executed = next->machine->instructions();
    const uint64_t budget =
        max_instructions_each > executed ? max_instructions_each - executed : 0;
    const uint64_t quantum = std::min(config_.quantum_instructions, budget);
    next->result = next->machine->Run(quantum);
    if (next->result.reason != vm::StopReason::kInstrLimit ||
        next->machine->instructions() >= max_instructions_each) {
      next->done = true;
    }
  }
  std::vector<vm::RunResult> results;
  results.reserve(clients_.size());
  for (Client& client : clients_) results.push_back(client.result);
  return results;
}

bool MultiClientSystem::SyncSessions() {
  bool ok = true;
  for (size_t i = 0; i < clients_.size(); ++i) {
    net::FaultConfig fault = config_.base.fault;
    if (i < config_.client_faults.size()) fault = config_.client_faults[i];
    if (!fault.crash_enabled()) continue;
    if (!clients_[i].cc->SyncSession()) ok = false;
  }
  return ok;
}

void MultiClientSystem::RegisterMetrics(obs::MetricsRegistry* registry) const {
  for (size_t i = 0; i < clients_.size(); ++i) {
    const std::string prefix = "c" + std::to_string(i) + ".";
    const Client& client = clients_[i];
    client.cc->RegisterMetrics(registry, prefix);
    client.channel->stats().RegisterMetrics(registry, prefix + "net.channel.");
    registry->RegisterCounter(prefix + "vm.instructions",
                              client.machine->instructions_counter());
    registry->RegisterCounter(prefix + "vm.cycles",
                              client.machine->cycles_counter());
  }
  mc_->RegisterMetrics(registry, "mc.");
  registry->RegisterCounter("net.switch.frames",
                            switch_.frames_switched_counter());
}

vm::RunResult RunNative(const image::Image& image, const std::string& input,
                        std::string* output, uint64_t max_instructions) {
  vm::Machine machine;
  machine.LoadImage(image);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  const vm::RunResult result = machine.Run(max_instructions);
  if (output != nullptr) *output = machine.OutputString();
  return result;
}

}  // namespace sc::softcache
