#include "softcache/system.h"

namespace sc::softcache {

SoftCacheSystem::SoftCacheSystem(const image::Image& image,
                                 const SoftCacheConfig& config)
    : channel_(config.channel) {
  machine_.LoadImage(image);
  mc_ = std::make_unique<MemoryController>(image, config.style,
                                           config.max_block_instrs,
                                           config.max_trace_blocks);
  cc_ = std::make_unique<CacheController>(machine_, *mc_, channel_, config);
}

vm::RunResult SoftCacheSystem::Run(uint64_t max_instructions) {
  if (!attached_) {
    cc_->Attach();
    attached_ = true;
  }
  return machine_.Run(max_instructions);
}

double SoftCacheSystem::MissRate() const {
  const uint64_t instrs = machine_.instructions();
  if (instrs == 0) return 0.0;
  return static_cast<double>(stats().blocks_translated) /
         static_cast<double>(instrs);
}

vm::RunResult RunNative(const image::Image& image, const std::string& input,
                        std::string* output, uint64_t max_instructions) {
  vm::Machine machine;
  machine.LoadImage(image);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  const vm::RunResult result = machine.Run(max_instructions);
  if (output != nullptr) *output = machine.OutputString();
  return result;
}

}  // namespace sc::softcache
