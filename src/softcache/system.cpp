#include "softcache/system.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/trace.h"
#include "softcache/reliable.h"
#include "util/check.h"

namespace sc::softcache {

namespace {

// McServerConfig::shards as the MemoryController will actually clamp it.
uint32_t ServerShards(const McServerConfig& config) {
  return config.shards == 0 ? 1 : config.shards;
}

// Applies the SOFTCACHE_WORKERS environment override (used by the CI
// parallel-server job to re-run the whole suite under a worker pool) when
// the caller left workers at the default. Unlike the CLI path — which
// rejects workers > shards outright — the blanket override clamps to the
// shard count, since it applies to fixtures of every shape.
MultiClientConfig WithEffectiveWorkers(MultiClientConfig config) {
  if (config.server.workers == 0 && config.clients > 1) {
    if (const char* env = std::getenv("SOFTCACHE_WORKERS");
        env != nullptr && *env != '\0') {
      const unsigned long parsed = std::strtoul(env, nullptr, 10);
      config.server.workers = static_cast<uint32_t>(
          std::min<unsigned long>(parsed, ServerShards(config.server)));
    }
  }
  return config;
}

}  // namespace

SoftCacheSystem::SoftCacheSystem(const image::Image& image,
                                 const SoftCacheConfig& config,
                                 const McServerConfig& server_config)
    : channel_(config.channel) {
  // SOFTCACHE_LOG=3 with no explicit tracer: install the echo-only tracer
  // so the miss-path event stream still appears as log lines.
  obs::EnsureEchoTracerForLogging();
  machine_.LoadImage(image);
  mc_ = std::make_unique<MemoryController>(image, config.style,
                                           config.max_block_instrs,
                                           config.max_trace_blocks,
                                           server_config);
  cc_ = std::make_unique<CacheController>(machine_, *mc_, channel_, config);
  if (config.fault.crash_at_cycle != 0) {
    // Cycle-triggered crash schedules need to see guest time.
    cc_->transport().set_cycle_source(machine_.cycles_counter());
  }
  if (config.integrity.enabled) {
    integrity_quantum_ = config.integrity.quantum_instructions == 0
                             ? 1024
                             : config.integrity.quantum_instructions;
  }
  if (obs::Tracer* t = obs::tracer()) {
    if (t->enabled()) t->SetClockSource(machine_.cycles_counter());
  }
}

vm::RunResult SoftCacheSystem::Run(uint64_t max_instructions) {
  if (!attached_) {
    cc_->Attach();
    attached_ = true;
  }
  if (integrity_quantum_ == 0) return machine_.Run(max_instructions);
  // Integrity slicing: the machine runs one integrity quantum at a time,
  // with one tick evaluated between quanta (never after the final, partial
  // one). A client scrub pass also scrubs the server memo — in solo and
  // round-robin runs the memo's scrub points are deterministic; the
  // threaded scheduler leans on verify-on-hit instead.
  vm::RunResult result;
  for (;;) {
    const uint64_t executed = machine_.instructions();
    const uint64_t budget =
        max_instructions > executed ? max_instructions - executed : 0;
    const uint64_t quantum = std::min(integrity_quantum_, budget);
    result = machine_.Run(quantum);
    if (result.reason != vm::StopReason::kInstrLimit ||
        machine_.instructions() >= max_instructions) {
      return result;
    }
    if (cc_->IntegrityTick()) mc_->server().ScrubMemo();
  }
}

void SoftCacheSystem::RegisterMetrics(obs::MetricsRegistry* registry) const {
  // Each subsystem registers its own block next to the stats it owns; this
  // is just composition. The names are unchanged from when this function
  // enumerated every counter by hand (obs_test pins them).
  cc_->RegisterMetrics(registry, "");
  channel_.stats().RegisterMetrics(registry, "net.channel.");
  mc_->RegisterMetrics(registry, "mc.");
  registry->RegisterCounter("vm.instructions", machine_.instructions_counter());
  registry->RegisterCounter("vm.cycles", machine_.cycles_counter());
  // Threaded-engine counters (all zero under the interpreter).
  const vm::SbStats& sb = machine_.sb_stats();
  registry->RegisterCounter("vm.sb.fills", &sb.fills);
  registry->RegisterCounter("vm.sb.fill_ops", &sb.fill_ops);
  registry->RegisterCounter("vm.sb.chains", &sb.chains);
  registry->RegisterCounter("vm.sb.invalidations", &sb.invalidations);
  registry->RegisterCounter("vm.sb.flushes", &sb.flushes);
}

double SoftCacheSystem::MissRate() const {
  const uint64_t instrs = machine_.instructions();
  if (instrs == 0) return 0.0;
  return static_cast<double>(stats().blocks_translated) /
         static_cast<double>(instrs);
}

MultiClientSystem::MultiClientSystem(const image::Image& image,
                                     const MultiClientConfig& config)
    : config_(WithEffectiveWorkers(config)),
      // Every frame is routed through the event loop: the switch feeds a
      // per-shard lane queue (single lane in borrowed-thread mode), the
      // loop grants entry into the server core. Single-threaded schedulers
      // pass through with zero contention. With a trace mux attached, the
      // dispatch installs the server lane the frame belongs in for the
      // duration of the handler, so server spans never land in the pumping
      // client's lane; ServerLaneForFrame uses the same frame->shard
      // mapping as the router below, so every lane keeps a single writer.
      loop_(
          [this](uint32_t port, const std::vector<uint8_t>& frame) {
            obs::Tracer* lane = ServerLaneForFrame(frame);
            if (lane == nullptr) return mc_->HandlePort(port, frame);
            lane->AdvanceClockFloor(loop_.current_ticket_enqueue_ts());
            obs::TracerScope scope(lane);
            return mc_->HandlePort(port, frame);
          },
          // Route EVERY frame by its addr word's shard (short or non-chunk
          // frames peek addr 0 -> the first slice): translations for
          // different slices queue — and with a worker pool, run —
          // independently, and frames touching the same slice serialize in
          // arrival order.
          [this](uint32_t /*port*/, const std::vector<uint8_t>& frame) {
            return mc_->server().ShardFor(PeekFrameAddr(frame));
          },
          McServerLoopConfig{
              /*lanes=*/config_.server.workers > 0
                  ? ServerShards(config_.server)
                  : 1,
              /*workers=*/config_.server.workers,
              /*max_queue=*/config_.server.max_queue}),
      switch_([this](uint32_t port, const std::vector<uint8_t>& frame) {
        return loop_.Submit(port, frame);
      }) {
  SC_CHECK_GE(config.clients, 1u) << "MultiClientSystem needs a client";
  SC_CHECK_LE(config.clients, kMaxClients) << "exceeds 12-bit wire id space";
  SC_CHECK_LE(config_.server.workers, ServerShards(config_.server))
      << "workers must be <= shards";
  obs::EnsureEchoTracerForLogging();
  mc_ = std::make_unique<MemoryController>(
      image, config.base.style, config.base.max_block_instrs,
      config.base.max_trace_blocks, config.server);
  clients_.reserve(config.clients);
  for (uint32_t i = 0; i < config.clients; ++i) {
    Client client;
    client.machine = std::make_unique<vm::Machine>();
    client.machine->LoadImage(image);
    client.channel = std::make_unique<net::Channel>(config.base.channel);

    SoftCacheConfig cfg = config.base;
    cfg.client_id = i;
    if (i < config.client_faults.size()) cfg.fault = config.client_faults[i];
    const net::FaultConfig fault = cfg.fault;
    // Each client talks through its own switch port; a crash on that port
    // restarts only this client's server-side session, never its neighbors'.
    // The restart itself fires on the client's host thread (inside its
    // transport's Send), so it is serialized against frame handling through
    // the loop's exclusive section.
    cfg.transport_factory = [this, i, fault](MemoryController&,
                                             net::Channel& channel) {
      return MakeTransport(switch_.Port(i), channel, fault, [this, i] {
        loop_.RunExclusive([this, i] {
          mc_->RestartSession(i);
          // Server-only inspection scope: the core is exclusively held but
          // the other clients keep running on their own threads.
          if (recovery_hook_) recovery_hook_(i);
        });
      });
    };
    client.cc = std::make_unique<CacheController>(*client.machine, *mc_,
                                                  *client.channel, cfg);
    if (fault.crash_at_cycle != 0) {
      client.cc->transport().set_cycle_source(
          client.machine->cycles_counter());
    }
    // Pre-create the session so per-session metrics exist before traffic.
    mc_->session(i);
    clients_.push_back(std::move(client));
  }
  if (config.base.shared_reply) {
    // Broadcast medium: every reply the server transmits is snooped into
    // every attached client's content store (including the requester's own).
    switch_.set_reply_observer([this](uint32_t /*port*/,
                                      const std::vector<uint8_t>& /*request*/,
                                      const std::vector<uint8_t>& reply) {
      SnoopReply(reply);
    });
  }
  if (obs::Tracer* t = obs::tracer()) {
    if (t->enabled()) t->SetClockSource(clients_[0].machine->cycles_counter());
  }
}

void MultiClientSystem::AttachTraceMux(obs::TraceMux* mux) {
  SC_CHECK(loop_lane_ == nullptr) << "AttachTraceMux called twice";
  // Server lanes: the event loop plus one lane per memo shard, all threads
  // of Perfetto process 0. They run on manual clocks advanced to each
  // ticket's guest-cycle enqueue stamp, and are written from whichever
  // thread pumps the loop — always under the loop's server mutex — so they
  // opt out of the single-thread assert (the mutex is their confinement).
  loop_lane_ = mux->AddLane("server", "loop", 0, 0);
  loop_lane_->set_thread_affine(false);
  loop_.set_trace_lane(loop_lane_);
  const uint32_t shards = mc_->server().shards();
  shard_lanes_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    obs::Tracer* lane =
        mux->AddLane("server", "shard " + std::to_string(s), 0, 1 + s);
    lane->set_thread_affine(false);
    shard_lanes_.push_back(lane);
  }
  // Worker-pool lanes: one per dedicated server thread, carrying that
  // worker's loop.ticket spans. Statically single-writer (worker w alone
  // writes lane w), but created here on the attaching thread, so they use
  // the external-serialization contract instead of the affinity assert.
  const uint32_t workers = loop_.workers();
  worker_lanes_.reserve(workers);
  for (uint32_t w = 0; w < workers; ++w) {
    obs::Tracer* lane = mux->AddLane("server", "worker " + std::to_string(w),
                                     0, 1 + shards + w);
    lane->set_thread_affine(false);
    loop_.set_worker_trace_lane(w, lane);
    worker_lanes_.push_back(lane);
  }
  // Client lanes: one Perfetto process per VM, clocked by that machine's
  // guest cycle counter so span timestamps read in guest time no matter
  // which host thread runs the client.
  client_lanes_.reserve(clients_.size());
  for (size_t i = 0; i < clients_.size(); ++i) {
    obs::Tracer* lane = mux->AddLane("client " + std::to_string(i), "vm",
                                     static_cast<uint64_t>(i) + 1, 0);
    lane->SetClockSource(clients_[i].machine->cycles_counter());
    client_lanes_.push_back(lane);
  }
}

obs::Tracer* MultiClientSystem::ServerLaneForFrame(
    const std::vector<uint8_t>& frame) const {
  if (loop_lane_ == nullptr) return nullptr;
  if (loop_.workers() > 0 && !shard_lanes_.empty()) {
    // Worker mode: the frame's spans belong to the slice that serviced it —
    // the identical frame->shard mapping the loop's router used to queue
    // it, so shard lane s is only ever written by the worker that
    // statically owns lane s.
    return shard_lanes_[mc_->server().ShardFor(PeekFrameAddr(frame))];
  }
  const uint32_t type = PeekFrameType(frame);
  if (!shard_lanes_.empty() &&
      (type == static_cast<uint32_t>(MsgType::kChunkRequest) ||
       type == static_cast<uint32_t>(MsgType::kChunkSharedRequest))) {
    return shard_lanes_[mc_->server().ShardFor(PeekFrameAddr(frame))];
  }
  return loop_lane_;
}

void MultiClientSystem::SnoopReply(const std::vector<uint8_t>& reply_bytes) {
  // Parse and digest ONCE per broadcast frame, then hand every client's
  // store a shared reference to the same body buffer — a 256-client fleet
  // pays one allocation and one digest per body crossing the medium.
  auto reply = Reply::Parse(reply_bytes);
  if (!reply.ok()) return;  // errors/acks are not snoopable bodies
  const auto snoop_all = [this](uint32_t addr, uint32_t aux, uint32_t extra,
                                const uint8_t* words, uint32_t nbytes) {
    auto body = std::make_shared<const std::vector<uint8_t>>(words,
                                                             words + nbytes);
    const uint64_t digest = ChunkDigest(addr, aux, extra, words, nbytes);
    for (Client& client : clients_) {
      if (ChunkContentStore* store = client.cc->content_store()) {
        store->Snoop(digest, addr, aux, extra, body,
                     client.cc->shared_stats());
      }
    }
  };
  if (reply->type == MsgType::kChunkReply) {
    if (reply->payload.size() % 4 != 0) return;
    snoop_all(reply->addr, reply->aux, reply->extra, reply->payload.data(),
              static_cast<uint32_t>(reply->payload.size()));
    return;
  }
  if (reply->type == MsgType::kChunkBatchReply) {
    auto views = ParseBatchPayload(reply->payload, reply->aux);
    if (!views.ok()) return;
    for (const BatchChunkView& view : *views) {
      snoop_all(view.addr, view.aux, view.extra, view.words, view.nwords * 4);
    }
  }
}

std::vector<vm::RunResult> MultiClientSystem::RunAll(
    uint64_t max_instructions_each) {
  for (size_t i = 0; i < clients_.size(); ++i) {
    Client& client = clients_[i];
    if (client.attached) continue;
    // Attach under the client's own lane: the first translate/install
    // events belong to that client's timeline, not the caller's.
    obs::TracerScope scope(i < client_lanes_.size() ? client_lanes_[i]
                                                    : obs::tracer());
    client.cc->Attach();
    client.attached = true;
  }
  if (config_.host_threads > 1 && clients_.size() > 1) {
    RunAllThreaded(max_instructions_each);
    std::vector<vm::RunResult> results;
    results.reserve(clients_.size());
    for (Client& client : clients_) results.push_back(client.result);
    return results;
  }
  // Deterministic round-robin on guest time: always step the laggard (the
  // live machine with the smallest cycle count; ties break to the lowest
  // index). Clients share no guest-visible state, so any interleaving gives
  // each one a solo-identical execution — this rule just makes the schedule
  // (and hence traces/metrics) reproducible.
  for (;;) {
    size_t next = clients_.size();
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i].done) continue;
      if (next == clients_.size() ||
          clients_[i].machine->cycles() < clients_[next].machine->cycles()) {
        next = i;
      }
    }
    if (next == clients_.size()) break;
    Client& client = clients_[next];
    const uint64_t executed = client.machine->instructions();
    const uint64_t budget =
        max_instructions_each > executed ? max_instructions_each - executed : 0;
    const uint64_t quantum = std::min(config_.quantum_instructions, budget);
    {
      obs::TracerScope scope(next < client_lanes_.size() ? client_lanes_[next]
                                                         : obs::tracer());
      client.result = client.machine->Run(quantum);
    }
    if (client.result.reason != vm::StopReason::kInstrLimit ||
        client.machine->instructions() >= max_instructions_each) {
      client.done = true;
    } else if (client.cc->integrity_enabled()) {
      // One integrity tick per quantum stepped — the same per-client tick
      // stream a solo run of this client produces. Memo scrub points follow
      // the clients' scrub ticks, as in the solo scheduler.
      if (client.cc->IntegrityTick()) mc_->server().ScrubMemo();
    }
    if (inspect_every_ != 0 && inspection_hook_) MaybeInspectRoundRobin();
  }
  std::vector<vm::RunResult> results;
  results.reserve(clients_.size());
  for (Client& client : clients_) results.push_back(client.result);
  return results;
}

void MultiClientSystem::MaybeInspectRoundRobin() {
  uint64_t fleet_min = UINT64_MAX;
  for (const Client& client : clients_) {
    if (client.done) continue;
    fleet_min = std::min(fleet_min, client.machine->cycles());
  }
  if (fleet_min == UINT64_MAX) return;  // every client finished
  if (next_inspect_at_ == 0) next_inspect_at_ = inspect_every_;
  if (fleet_min < next_inspect_at_) return;
  inspection_hook_(fleet_min);
  // One snapshot per crossing, then re-arm above the observed minimum (a
  // long quantum can step the fleet past several multiples at once).
  next_inspect_at_ = (fleet_min / inspect_every_ + 1) * inspect_every_;
}

void MultiClientSystem::RunAllThreaded(uint64_t max_instructions_each) {
  // Host-thread parallelism trades the deterministic interleaving for
  // concurrent per-client progress: each worker claims the next unfinished
  // client and runs its VM to completion; the server core stays serialized
  // through the event loop, and the snoop fan-out synchronizes per store.
  // Guest-visible results (output/exit/instructions) remain solo-identical —
  // clients share no guest state and the fallback path absorbs any snoop
  // races. Tracing rides per-client lanes: each worker installs the claimed
  // client's lane into its own thread-local slot while running it, so no
  // lane ring is ever written from two threads at once (the handoff from
  // the attaching main thread is re-armed with RebindThread).
  std::atomic<size_t> next_client{0};

  // Periodic-inspection safepoint (armed only when a hook is set): workers
  // run their client in scheduler quanta and park at quantum boundaries
  // while one worker snapshots. Parking never happens inside a server
  // dispatch, so every in-flight ticket drains before the fleet quiesces,
  // and the mutex hands the inspector a happens-before edge over all
  // client state it reads.
  const bool inspect = inspect_every_ != 0 && inspection_hook_ != nullptr;
  // Integrity also forces quantum slicing (the tick cadence), but needs no
  // safepoint: each tick touches only the ticking client's own state plus
  // the internally locked content store. The server memo is not scrubbed
  // under threads — its verify-on-hit path alone guarantees clean replies.
  const bool integrity = config_.base.integrity.enabled;
  std::mutex safepoint_mu;
  std::condition_variable safepoint_cv;
  bool inspecting = false;
  size_t parked = 0;
  size_t active_workers = 0;
  uint64_t next_at = next_inspect_at_ != 0 ? next_inspect_at_ : inspect_every_;
  enum : uint8_t { kPending, kRunning, kFinished };
  std::vector<uint8_t> state(clients_.size(), kPending);
  std::vector<uint64_t> published(clients_.size());
  for (size_t i = 0; i < clients_.size(); ++i) {
    published[i] = clients_[i].machine->cycles();
  }

  // Fleet-min guest cycles over unfinished clients (pending clients count
  // at their attach-time clock); UINT64_MAX once everyone finished.
  const auto fleet_min = [&] {
    uint64_t min_cycles = UINT64_MAX;
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (state[i] == kFinished) continue;
      min_cycles = std::min(min_cycles, published[i]);
    }
    return min_cycles;
  };

  // Quantum-boundary check, entered lock-free of the loop: park while
  // another worker inspects; become the inspector once the fleet minimum
  // crosses the threshold, waiting for every other active worker to park.
  const auto safepoint = [&] {
    std::unique_lock<std::mutex> lock(safepoint_mu);
    for (;;) {
      if (inspecting) {
        ++parked;
        safepoint_cv.notify_all();
        safepoint_cv.wait(lock, [&] { return !inspecting; });
        --parked;
        continue;  // the threshold may already be crossed again
      }
      const uint64_t min_cycles = fleet_min();
      if (min_cycles == UINT64_MAX || min_cycles < next_at) return;
      inspecting = true;
      safepoint_cv.wait(lock, [&] { return parked == active_workers - 1; });
      inspection_hook_(min_cycles);
      next_at = (min_cycles / inspect_every_ + 1) * inspect_every_;
      inspecting = false;
      safepoint_cv.notify_all();
    }
  };

  const auto worker = [&] {
    if (inspect) {
      std::lock_guard<std::mutex> lock(safepoint_mu);
      ++active_workers;
    }
    for (;;) {
      const size_t i = next_client.fetch_add(1);
      if (i >= clients_.size()) break;
      Client& client = clients_[i];
      obs::Tracer* lane = i < client_lanes_.size() ? client_lanes_[i] : nullptr;
      if (lane != nullptr) lane->RebindThread();
      obs::TracerScope scope(lane != nullptr ? lane : obs::tracer());
      if (!inspect && !integrity) {
        client.result = client.machine->Run(max_instructions_each);
      } else {
        {
          std::lock_guard<std::mutex> lock(safepoint_mu);
          state[i] = kRunning;
        }
        for (;;) {
          const uint64_t executed = client.machine->instructions();
          const uint64_t budget = max_instructions_each > executed
                                      ? max_instructions_each - executed
                                      : 0;
          const uint64_t quantum =
              std::min(config_.quantum_instructions, budget);
          client.result = client.machine->Run(quantum);
          const bool finished =
              client.result.reason != vm::StopReason::kInstrLimit ||
              client.machine->instructions() >= max_instructions_each;
          {
            std::lock_guard<std::mutex> lock(safepoint_mu);
            published[i] = client.machine->cycles();
            if (finished) state[i] = kFinished;
          }
          if (finished) break;
          if (integrity) client.cc->IntegrityTick();
          if (inspect) safepoint();
        }
      }
      client.done = true;
    }
    if (inspect) {
      // Exiting shrinks the quorum the inspector waits for.
      std::lock_guard<std::mutex> lock(safepoint_mu);
      --active_workers;
      safepoint_cv.notify_all();
    }
  };
  const size_t nthreads =
      std::min<size_t>(config_.host_threads, clients_.size());
  std::vector<std::thread> threads;
  threads.reserve(nthreads);
  for (size_t t = 0; t < nthreads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  next_inspect_at_ = next_at;
}

bool MultiClientSystem::SyncSessions() {
  bool ok = true;
  for (size_t i = 0; i < clients_.size(); ++i) {
    net::FaultConfig fault = config_.base.fault;
    if (i < config_.client_faults.size()) fault = config_.client_faults[i];
    if (!fault.crash_enabled()) continue;
    if (!clients_[i].cc->SyncSession()) ok = false;
  }
  return ok;
}

void MultiClientSystem::RegisterMetrics(obs::MetricsRegistry* registry) const {
  for (size_t i = 0; i < clients_.size(); ++i) {
    const std::string prefix = "c" + std::to_string(i) + ".";
    const Client& client = clients_[i];
    client.cc->RegisterMetrics(registry, prefix);
    client.channel->stats().RegisterMetrics(registry, prefix + "net.channel.");
    registry->RegisterCounter(prefix + "vm.instructions",
                              client.machine->instructions_counter());
    registry->RegisterCounter(prefix + "vm.cycles",
                              client.machine->cycles_counter());
    const vm::SbStats& sb = client.machine->sb_stats();
    registry->RegisterCounter(prefix + "vm.sb.fills", &sb.fills);
    registry->RegisterCounter(prefix + "vm.sb.fill_ops", &sb.fill_ops);
    registry->RegisterCounter(prefix + "vm.sb.chains", &sb.chains);
    registry->RegisterCounter(prefix + "vm.sb.invalidations",
                              &sb.invalidations);
    registry->RegisterCounter(prefix + "vm.sb.flushes", &sb.flushes);
  }
  mc_->RegisterMetrics(registry, "mc.");
  loop_.RegisterMetrics(registry, "mc.loop.");
  registry->RegisterCounter("net.switch.frames",
                            switch_.frames_switched_counter());
}

vm::RunResult RunNative(const image::Image& image, const std::string& input,
                        std::string* output, uint64_t max_instructions) {
  vm::Machine machine;
  machine.LoadImage(image);
  machine.SetInput(std::vector<uint8_t>(input.begin(), input.end()));
  const vm::RunResult result = machine.Run(max_instructions);
  if (output != nullptr) *output = machine.OutputString();
  return result;
}

}  // namespace sc::softcache
