// Inspector: on-demand deep snapshots of live cache state.
//
// Counters (obs::MetricsRegistry) say how much work happened; the Inspector
// says what the caches HOLD right now: tcache occupancy maps (every resident
// rewritten block with its edges and pin state), superblock-cache contents
// and chain graphs, per-shard memoized translations with their fleet demand
// heat, content-store residency, and each session's copy-on-write overlay
// footprint. Snapshots serialize as deterministic JSON — fixed key order,
// container-order rows, integers only — so two snapshots of identical state
// are byte-identical and `sctop --diff` is meaningful.
//
// Three trigger modes, all wired by tools/srun.cpp:
//   * on demand        srun --inspect=PATH          (final state, scope full)
//   * periodically     srun --inspect-every=N       (every N guest cycles at
//                      a fleet-quiescent point — the round-robin scheduler's
//                      inter-step gap, or the threaded scheduler's safepoint)
//   * on fault/recovery  a "fault" snapshot after a faulted run, and a
//                      server-only "recovery" snapshot from the crash-restart
//                      exclusive section (other clients keep running, so
//                      client state is off-limits there).
//
// Thread safety: the Inspector only reads; the CALLER guarantees quiescence
// (see MultiClientSystem::set_inspection_hook / set_recovery_hook). Scope
// kServerOnly restricts reads to server-side state for the recovery case.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace sc::vm {
class Machine;
}

namespace sc::softcache {

class CacheController;
class MemoryController;
class MultiClientSystem;
class SoftCacheSystem;

class Inspector {
 public:
  // Snapshot breadth: kFull walks every client plus the server; kServerOnly
  // (crash-recovery hook) walks only server-side state.
  enum class Scope { kFull, kServerOnly };

  explicit Inspector(SoftCacheSystem* solo) : solo_(solo) {}
  explicit Inspector(MultiClientSystem* fleet) : fleet_(fleet) {}

  // Writes one snapshot document. `reason` is recorded verbatim ("final",
  // "periodic", "fault", "recovery"); each call bumps the sequence number.
  void WriteJson(std::ostream& out, const std::string& reason,
                 Scope scope = Scope::kFull);

  // WriteJson to a file; false (with a stderr note) if the file won't open.
  bool WriteFile(const std::string& path, const std::string& reason,
                 Scope scope = Scope::kFull);

  uint64_t snapshots_taken() const { return seq_; }

 private:
  void WriteClient(std::ostream& out, uint32_t id, const vm::Machine& machine,
                   CacheController& cc);
  void WriteServer(std::ostream& out, const MemoryController& mc);

  SoftCacheSystem* solo_ = nullptr;
  MultiClientSystem* fleet_ = nullptr;
  uint64_t seq_ = 0;
};

}  // namespace sc::softcache
