#include "softcache/protocol.h"

#include <algorithm>
#include <cstring>

namespace sc::softcache {
namespace {

// True for request types that carry a payload after the fixed frame.
bool IsWriteType(MsgType type) {
  return type == MsgType::kTextWrite || type == MsgType::kDataWriteback;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const std::vector<uint8_t>& bytes, size_t offset) {
  return static_cast<uint32_t>(bytes[offset]) |
         static_cast<uint32_t>(bytes[offset + 1]) << 8 |
         static_cast<uint32_t>(bytes[offset + 2]) << 16 |
         static_cast<uint32_t>(bytes[offset + 3]) << 24;
}

// The type word carries the message type in its low 8 bits, the client id in
// bits 15..8, and the session epoch in its high 16 bits. Client id 0 with
// epoch 0 (single client, no crash has ever occurred) packs to exactly the
// seed protocol's bytes.
uint32_t PackTypeWord(MsgType type, uint32_t epoch, uint32_t client_id) {
  return (static_cast<uint32_t>(type) & kTypeMask) |
         ((client_id & kClientIdMask) << kClientIdShift) |
         ((epoch & kEpochMask) << kEpochShift);
}

// True for the request types whose type byte may carry a tracing rid in its
// high nibble (see the request-id section in protocol.h).
bool CarriesRid(uint32_t type_value) {
  return type_value == static_cast<uint32_t>(MsgType::kChunkRequest) ||
         type_value == static_cast<uint32_t>(MsgType::kChunkSharedRequest);
}

}  // namespace

uint32_t PeekFrameClientId(const std::vector<uint8_t>& frame) {
  if (frame.size() < kRequestBytes) return 0;
  if (GetU32(frame, 0) != kProtocolMagic) return 0;
  // Bits 19..8 of the type word: the low byte plus the low nibble of the
  // next byte (the epoch occupies bits 31..20).
  return static_cast<uint32_t>(frame[5]) |
         (static_cast<uint32_t>(frame[6] & 0x0f) << 8);
}

uint32_t PeekFrameRid(const std::vector<uint8_t>& frame) {
  if (frame.size() < kRequestBytes) return 0;
  if (GetU32(frame, 0) != kProtocolMagic) return 0;
  const uint32_t type_byte = frame[4];
  if (!CarriesRid(type_byte & kRidTypeMask)) return 0;
  return type_byte >> kRidShift;
}

uint32_t PeekFrameType(const std::vector<uint8_t>& frame) {
  if (frame.size() < kRequestBytes) return 0;
  if (GetU32(frame, 0) != kProtocolMagic) return 0;
  const uint32_t type_byte = frame[4];
  if (CarriesRid(type_byte & kRidTypeMask)) return type_byte & kRidTypeMask;
  return type_byte;
}

uint32_t PeekFrameAddr(const std::vector<uint8_t>& frame) {
  if (frame.size() < kRequestBytes) return 0;
  if (GetU32(frame, 0) != kProtocolMagic) return 0;
  return GetU32(frame, 12);
}

uint32_t Checksum(const uint8_t* data, size_t len, uint32_t basis) {
  uint32_t hash = basis;
  if (len == 0) return hash;  // tolerate null `data` from empty vectors
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

uint64_t ChunkDigest(uint32_t addr, uint32_t aux, uint32_t extra,
                     const uint8_t* words, size_t nbytes) {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (uint32_t field : {addr, aux, extra}) {
    mix(static_cast<uint8_t>(field));
    mix(static_cast<uint8_t>(field >> 8));
    mix(static_cast<uint8_t>(field >> 16));
    mix(static_cast<uint8_t>(field >> 24));
  }
  for (size_t i = 0; i < nbytes; ++i) mix(words[i]);
  return hash;
}

std::vector<uint8_t> Request::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(wire_bytes());
  PutU32(out, kProtocolMagic);
  uint32_t type_word = PackTypeWord(type, epoch, client_id);
  // A nonzero tracing rid rides the spare high nibble of the type byte on
  // chunk requests; rid 0 (tracing off) leaves the seed bytes untouched.
  if (rid != 0 && CarriesRid(static_cast<uint32_t>(type))) {
    type_word |= (rid & kRidMask) << kRidShift;
  }
  PutU32(out, type_word);
  PutU32(out, seq);
  PutU32(out, addr);
  PutU32(out, length);
  // Checksum over the first five fields, continued over the payload. A
  // payload-less frame serializes byte-identically to the header-only
  // checksum, so the fixed 24-byte frame format is unchanged.
  PutU32(out, Checksum(payload.data(), payload.size(),
                       Checksum(out.data(), out.size())));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

util::Result<Request> Request::Parse(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kRequestBytes) return util::Error{"request: short frame"};
  if (GetU32(bytes, 0) != kProtocolMagic) return util::Error{"request: bad magic"};
  const uint32_t checksum = GetU32(bytes, 20);
  const size_t payload_len = bytes.size() - kRequestBytes;
  if (checksum != Checksum(bytes.data() + kRequestBytes, payload_len,
                           Checksum(bytes.data(), 20))) {
    return util::Error{"request: checksum mismatch"};
  }
  Request req;
  const uint32_t type_word = GetU32(bytes, 4);
  uint32_t type_value = type_word & kTypeMask;
  // Strip a tracing rid from the high nibble of the type byte — but only
  // when the low nibble is a chunk-request type; every other type byte is
  // taken whole so unknown-type bytes still reach the kError path intact.
  if ((type_value >> kRidShift) != 0 && CarriesRid(type_value & kRidTypeMask)) {
    req.rid = type_value >> kRidShift;
    type_value &= kRidTypeMask;
  }
  req.type = static_cast<MsgType>(type_value);
  req.client_id = (type_word >> kClientIdShift) & kClientIdMask;
  req.epoch = (type_word >> kEpochShift) & kEpochMask;
  req.seq = GetU32(bytes, 8);
  req.addr = GetU32(bytes, 12);
  req.length = GetU32(bytes, 16);
  if (IsWriteType(req.type)) {
    if (req.length != payload_len) {
      return util::Error{"request: length mismatch"};
    }
  } else if (payload_len != 0) {
    return util::Error{"request: unexpected payload"};
  }
  req.payload.assign(bytes.begin() + kRequestBytes, bytes.end());
  return req;
}

std::vector<uint8_t> Reply::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(wire_bytes());
  PutU32(out, kProtocolMagic);
  PutU32(out, PackTypeWord(type, epoch, client_id));
  PutU32(out, seq);
  PutU32(out, addr);
  PutU32(out, aux);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, extra);
  PutU32(out, Checksum(out.data(), out.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32(out, Checksum(payload.data(), payload.size()));
  return out;
}

void AppendBatchChunk(std::vector<uint8_t>* payload, uint32_t addr,
                      uint32_t aux, uint32_t extra, const uint32_t* words,
                      uint32_t nwords) {
  payload->reserve(payload->size() + kBatchChunkHeaderBytes + nwords * 4);
  PutU32(*payload, addr);
  PutU32(*payload, aux);
  PutU32(*payload, extra);
  PutU32(*payload, nwords);
  if (nwords != 0) {
    const size_t offset = payload->size();
    payload->resize(offset + nwords * 4);
    std::memcpy(payload->data() + offset, words, nwords * 4);
  }
}

util::Result<std::vector<BatchChunkView>> ParseBatchPayload(
    const std::vector<uint8_t>& payload, uint32_t count) {
  std::vector<BatchChunkView> chunks;
  // `count` is attacker-controlled (it rides the reply's aux field): bound
  // the reservation by what the payload could actually hold.
  chunks.reserve(std::min<size_t>(
      count, payload.size() / kBatchChunkHeaderBytes));
  size_t offset = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (offset + kBatchChunkHeaderBytes > payload.size()) {
      return util::Error{"batch: short sub-chunk header"};
    }
    BatchChunkView view;
    view.addr = GetU32(payload, offset);
    view.aux = GetU32(payload, offset + 4);
    view.extra = GetU32(payload, offset + 8);
    view.nwords = GetU32(payload, offset + 12);
    offset += kBatchChunkHeaderBytes;
    if (view.nwords > (payload.size() - offset) / 4) {
      return util::Error{"batch: sub-chunk words overflow payload"};
    }
    view.words = payload.data() + offset;
    offset += static_cast<size_t>(view.nwords) * 4;
    chunks.push_back(view);
  }
  if (offset != payload.size()) {
    return util::Error{"batch: trailing bytes after last sub-chunk"};
  }
  return chunks;
}

util::Result<Reply> Reply::Parse(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kReplyHeaderBytes + kReplyTrailerBytes) {
    return util::Error{"reply: short frame"};
  }
  if (GetU32(bytes, 0) != kProtocolMagic) return util::Error{"reply: bad magic"};
  if (GetU32(bytes, 28) != Checksum(bytes.data(), 28)) {
    return util::Error{"reply: header checksum mismatch"};
  }
  Reply reply;
  const uint32_t type_word = GetU32(bytes, 4);
  reply.type = static_cast<MsgType>(type_word & kTypeMask);
  reply.client_id = (type_word >> kClientIdShift) & kClientIdMask;
  reply.epoch = (type_word >> kEpochShift) & kEpochMask;
  reply.seq = GetU32(bytes, 8);
  reply.addr = GetU32(bytes, 12);
  reply.aux = GetU32(bytes, 16);
  const uint32_t payload_len = GetU32(bytes, 20);
  reply.extra = GetU32(bytes, 24);
  if (bytes.size() != kReplyHeaderBytes + payload_len + kReplyTrailerBytes) {
    return util::Error{"reply: length mismatch"};
  }
  reply.payload.assign(bytes.begin() + kReplyHeaderBytes,
                       bytes.begin() + kReplyHeaderBytes + payload_len);
  if (GetU32(bytes, kReplyHeaderBytes + payload_len) !=
      Checksum(reply.payload.data(), reply.payload.size())) {
    return util::Error{"reply: payload checksum mismatch"};
  }
  return reply;
}

}  // namespace sc::softcache
