// Memory-fault injection + integrity metadata: the self-healing fault
// domain of the software cache.
//
// The paper targets embedded SoCs whose on-chip SRAM holds the rewritten
// code — exactly the memory most exposed to soft errors. Up to PR 8 the
// repo's fault model stopped at the wire (frame drop/corrupt/duplicate,
// PR 1) and at whole-server crashes (PR 4): a bit flip inside the tcache,
// the staged-prefetch buffer, the content store, the decoded superblock
// cache, or the server's translation memo would silently execute corrupted
// code. This header supplies the missing pieces:
//
//   * MemFaultConfig — a seeded, deterministic bit-flip schedule with the
//     same four knobs as net::FaultConfig's crash schedules (rate /
//     after-N / every-Nth / at-cycle), evaluated by the shared
//     net::FaultSchedule so the streams replay bit-identically.
//
//   * MemFaultInjector — one schedule + one independent RNG stream per
//     fault DOMAIN (tcache / staged / content store / superblocks / server
//     memo). Independent streams mean turning one domain's faults on never
//     perturbs another domain's schedule, and client-side injection can
//     never perturb the server's.
//
//   * IntegrityConfig — the client-side policy: verify-on-use + periodic
//     scrub cadence (in scheduler quanta), the bounded heal budget, and
//     the poison ladder threshold (a chunk that keeps getting corrupted is
//     demoted to per-instruction superblock dispatch).
//
//   * IntegrityStats — the mem.fault.* counters.
//
// Integrity metadata itself reuses the 64-bit FNV-1a ChunkDigest of
// protocol.h: every install (tcache block, staged chunk, content-store
// body, decoded superblock, memo entry) is stamped with a digest of the
// installed bytes, verify-on-use checks it before the artifact is trusted,
// and the periodic scrub walks everything resident between uses. Healing
// is transparent: a corrupted artifact is quarantined (evicted through the
// existing invalidation paths) and refetched through the normal miss path;
// the server heals memo corruption by re-translating from the pristine
// image. See docs/DESIGN.md ("Fault domains") for the full trust map.
#pragma once

#include <cstdint>
#include <string>

#include "net/fault_schedule.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace sc::softcache {

// Seeded bit-flip schedule, mirroring net::FaultConfig's crash knobs.
// `rate` is a per-opportunity probability; an "opportunity" is one
// integrity tick (client domains, one per scheduler quantum) or one
// translate-request arrival (the server memo domain).
struct MemFaultConfig {
  uint64_t seed = 1;
  double rate = 0.0;     // per-tick flip probability
  uint64_t after = 0;    // flip once on the first tick at/past N
  uint64_t period = 0;   // flip on every Nth tick
  uint64_t at_cycle = 0; // flip once at the first tick at/past guest cycle C

  bool enabled() const {
    return rate > 0 || after > 0 || period > 0 || at_cycle > 0;
  }
};

// Which cached state a MemFaultInjector targets. Each domain owns an
// independent RNG stream (seed xor a per-domain salt).
enum class FaultDomain : uint32_t {
  kTcache = 0,      // rewritten blocks resident in the tcache
  kStaged,          // raw prefetched chunks in the staging buffer
  kStore,           // snooped bodies in the content store
  kSuperblock,      // decoded superblocks (threaded engine)
  kMemo,            // server-side memoized translations
};

class MemFaultInjector {
 public:
  // `substream` splits one domain's storm into independent per-slice
  // streams (e.g. one per server memo shard) that are each still a pure
  // function of the config seed; substream 0 is byte-identical to the
  // historical single-stream injector.
  MemFaultInjector(const MemFaultConfig& config, FaultDomain domain,
                   uint32_t substream = 0);

  // Evaluates one injection opportunity; true = flip a bit now. The cycle
  // source (may be null) feeds the at-cycle knob.
  bool Due(const uint64_t* cycle_source) {
    return schedule_.Due(rng_, cycle_source);
  }

  // Victim-selection draws come from the same per-domain stream.
  util::Rng& rng() { return rng_; }
  uint64_t ticks() const { return schedule_.arrived; }

 private:
  net::FaultSchedule schedule_;
  util::Rng rng_;
};

// Client-side integrity policy. `enabled` turns on digest stamping,
// verify-on-use and the scrub walk even with no faults injected (that is
// the configuration the overhead criterion measures); `memfault` adds the
// seeded corruption storm on top.
struct IntegrityConfig {
  bool enabled = false;
  MemFaultConfig memfault;

  // Scheduler-quantum slicing: integrity ticks fire every this many guest
  // instructions. Matches MultiClientConfig::quantum_instructions so the
  // tick sequence is identical whether the client runs solo, round-robin
  // scheduled, or on a host-thread pool.
  uint64_t quantum_instructions = 1024;

  // Background scrub cadence, in integrity ticks (0 = verify-on-use only).
  // Executable domains (tcache blocks, superblocks) are *injected* only on
  // scrub ticks, inject-then-scrub, so a flip is always detected before
  // the next instruction from that memory can execute.
  uint32_t scrub_every = 8;

  // Degradation ladder, rung 2: total quarantines this client may heal
  // before the run degrades to a clean Fail with a nonzero exit (0 =
  // unbounded).
  uint32_t max_heal_attempts = 64;

  // Degradation ladder, rung 1: after this many heals of the SAME chunk,
  // its tcache range is poisoned — the threaded engine stops forming
  // multi-op superblocks over it and falls back to per-instruction
  // dispatch, interpreter-equivalent (0 = never poison).
  uint32_t poison_after = 4;
};

// The mem.fault.* counter block (client side; the server memo domain
// counts into McServerStats instead).
struct IntegrityStats {
  uint64_t ticks = 0;             // integrity ticks evaluated
  uint64_t flips_injected = 0;    // bits flipped across all client domains
  uint64_t scrubs = 0;            // background scrub passes
  uint64_t scrubbed_words = 0;    // words walked by those passes
  uint64_t corruptions_detected = 0;  // digest mismatches, any domain
  uint64_t quarantines = 0;       // tcache blocks quarantined + evicted
  uint64_t heals = 0;             // quarantined chunks reinstalled clean
  uint64_t staged_drops = 0;      // corrupted staged chunks discarded
  uint64_t store_drops = 0;       // corrupted content-store bodies discarded
  uint64_t sb_drops = 0;          // corrupted superblocks invalidated
  uint64_t poisoned_blocks = 0;   // installs demoted to per-instr dispatch
  uint64_t heal_failures = 0;     // heal budget exhausted (run degraded)

  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const;
};

}  // namespace sc::softcache
