#include "softcache/mc.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sc::softcache {
namespace {

// Adds the scope's host-ns duration to a shard's service-time histogram.
// Host time feeds observability only (p50/p95/p99 per shard); it never
// touches guest cycles or any snapshot-compared counter.
class ShardServiceTimer {
 public:
  explicit ShardServiceTimer(util::Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ShardServiceTimer() {
    hist_->Add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  ShardServiceTimer(const ShardServiceTimer&) = delete;
  ShardServiceTimer& operator=(const ShardServiceTimer&) = delete;

 private:
  util::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// Bounds the replay cache. A stop-and-wait client has at most one write in
// flight, so one entry would do; a few extra make the invariant robust.
constexpr size_t kReplayCacheEntries = 64;

// Server-side caps on speculative work, independent of what the hint field
// asks for (it arrives from an untrusted client).
constexpr uint32_t kMaxPrefetchDepth = 8;
constexpr uint32_t kMaxPrefetchChunks = 32;

// Best-effort client id of a frame that failed to parse: the 12-bit id sits
// at bits 19..8 of the type word (byte 5 plus the low nibble of byte 6).
// Only trusted enough to pick which session stamps the error reply — a
// hostile id here can at worst create an idle session (bounded by
// kMaxClients).
uint32_t PeekClientId(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 8) return 0;
  uint32_t magic = static_cast<uint32_t>(bytes[0]) |
                   static_cast<uint32_t>(bytes[1]) << 8 |
                   static_cast<uint32_t>(bytes[2]) << 16 |
                   static_cast<uint32_t>(bytes[3]) << 24;
  if (magic != kProtocolMagic) return 0;
  return static_cast<uint32_t>(bytes[5]) |
         (static_cast<uint32_t>(bytes[6] & 0x0f) << 8);
}

}  // namespace

// ---------------------------------------------------------------------------
// McServer: the shared core.

util::Result<Chunk> McServer::Cut(const image::Image& text_image,
                                  uint32_t addr) const {
  return style_ == Style::kSparc
             ? ChunkBasicBlock(text_image, addr, max_block_instrs_,
                               max_trace_blocks_)
             : ChunkProcedure(text_image, addr);
}

uint32_t McServer::ShardFor(uint32_t addr) const {
  if (shards_ <= 1) return 0;
  const uint32_t base = image_.text_base;
  const uint32_t end = image_.text_end();
  if (addr < base || addr >= end) return 0;
  const uint32_t slice = (end - base + shards_ - 1) / shards_;
  const uint32_t shard = slice == 0 ? 0 : (addr - base) / slice;
  return shard >= shards_ ? shards_ - 1 : shard;
}

util::Result<Chunk> McServer::CutShared(uint32_t addr) {
  const uint32_t shard_index = ShardFor(addr);
  MemoShard& shard = memo_shards_[shard_index];
  // The slice's own lock covers everything the demand touches — memo map,
  // heat table, fault stream, service histogram — so demands landing in
  // different shards run fully in parallel. The only lock acquired while
  // holding it is the stats_mu_ leaf (BumpStats).
  std::lock_guard<std::mutex> lock(shard.mu);
  const ShardServiceTimer timer(&shard.service_ns);
  // Per-shard memo fault stream: one injection opportunity per translate
  // arrival in this slice (the memo has no scheduler quanta to tick on).
  // Healing is guest-invisible, so arrival-order differences across
  // schedulers only move server-side counters, never client output.
  if (shard.inj != nullptr && shard.inj->Due(nullptr)) {
    if (CorruptMemoBit(&shard)) {
      BumpStats([](McServerStats& s) { ++s.memo_flips_injected; });
    }
  }
  // Fleet-wide demand heat: every demand from every session bumps it (hit
  // or miss), and the memo bound evicts its coldest entry by this signal.
  // Keyed by chunk start address, so slicing the table per shard changes
  // nothing about the values — only who owns them.
  uint32_t* heat = shard.heat.Find(addr);
  if (heat != nullptr) {
    ++*heat;
  } else {
    shard.heat.Put(addr, 1);
  }
  auto it = shard.memo.find(addr);
  if (it != shard.memo.end()) {
    // Verify-on-hit: the memoized artifact is never trusted. A mismatch is
    // healed by re-cutting from the pristine image — the one store
    // corruption cannot reach — so the requester always receives clean
    // bytes, fault storm or not.
    if (DigestOfChunk(it->second.chunk) == it->second.digest) {
      BumpStats([](McServerStats& s) { ++s.translate_memo_hits; });
      ++shard.memo_hits;
      return it->second.chunk;
    }
    OBS_INSTANT("mc", "memo_corrupt", "addr", addr);
    auto healed = Cut(image_, addr);
    SC_CHECK(healed.ok()) << "pristine re-cut failed for memoized addr";
    BumpStats([](McServerStats& s) {
      ++s.memo_corruptions_detected;
      ++s.memo_heals;
      ++s.translates;
    });
    ++shard.translates;
    it->second.chunk = *healed;
    it->second.digest = DigestOfChunk(*healed);
    return healed;
  }
  auto chunk = Cut(image_, addr);
  if (!chunk.ok()) return chunk;  // failures are cheap; not worth memoizing
  BumpStats([](McServerStats& s) { ++s.translates; });
  ++shard.translates;
  const size_t per_shard = std::max<size_t>(1, config_.memo_capacity / shards_);
  if (shard.memo.size() >= per_shard) EvictColdest(&shard);
  shard.memo.emplace(addr, MemoEntry{*chunk, DigestOfChunk(*chunk)});
  return chunk;
}

std::vector<McServer::MemoEntryView> McServer::SnapshotMemo() const {
  // Locks one slice at a time, ascending — a point-in-time view per shard.
  // Deterministic snapshots additionally run at quiescence (the Inspector's
  // safepoint / park-all contract), where the locks are uncontended.
  std::vector<MemoEntryView> views;
  for (uint32_t s = 0; s < shards_; ++s) {
    const MemoShard& shard = memo_shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [addr, entry] : shard.memo) {
      MemoEntryView view;
      view.shard = s;
      view.addr = addr;
      view.span_bytes = entry.chunk.orig_span_bytes();
      view.words = static_cast<uint32_t>(entry.chunk.words.size());
      const uint32_t* heat = shard.heat.Find(addr);
      view.heat = heat == nullptr ? 0 : *heat;
      views.push_back(view);
    }
  }
  return views;
}

void McServer::EvictColdest(MemoShard* shard) {
  auto coldest = shard->memo.begin();
  uint32_t coldest_heat = ~0u;
  for (auto it = shard->memo.begin(); it != shard->memo.end(); ++it) {
    const uint32_t* h = shard->heat.Find(it->first);
    const uint32_t entry_heat = h == nullptr ? 0 : *h;
    if (entry_heat < coldest_heat) {
      coldest_heat = entry_heat;
      coldest = it;
    }
  }
  shard->memo.erase(coldest);
  BumpStats([](McServerStats& s) { ++s.memo_evictions; });
}

util::Result<Chunk> McServer::CutPrivate(const image::Image& text_image,
                                         uint32_t addr) {
  // Private cuts are un-memoized but still shard-attributed (by address
  // range) so a session with COW text shows up in the shard's service time.
  // The cut itself reads only the session's private image and immutable
  // per-server config, so the slice lock is needed for the histogram alone.
  const auto start = std::chrono::steady_clock::now();
  BumpStats([](McServerStats& s) { ++s.translates; });
  auto chunk = Cut(text_image, addr);
  MemoShard& shard = memo_shards_[ShardFor(addr)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.service_ns.Add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return chunk;
}

void McServer::InvalidateMemoRange(uint32_t addr, uint32_t len) {
  const uint64_t lo = addr;
  const uint64_t hi = static_cast<uint64_t>(addr) + len;
  // A memoized chunk's span can cross the shard boundary its start address
  // hashed into, so every shard is scanned — locking one slice at a time in
  // ascending index order (no two shard locks are ever held together).
  // A demand racing in behind the scan can only re-memoize from the
  // PRISTINE text, which this write never touched (the writer went COW), so
  // a "late" re-insert is still a valid artifact.
  uint64_t dropped = 0;
  for (MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.memo.begin(); it != shard.memo.end();) {
      const Chunk& chunk = it->second.chunk;
      const uint64_t chunk_lo = chunk.orig_addr;
      const uint64_t chunk_hi =
          static_cast<uint64_t>(chunk.orig_addr) + chunk.orig_span_bytes();
      if (chunk_lo < hi && lo < chunk_hi) {
        ++dropped;
        it = shard.memo.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (dropped != 0) {
    BumpStats([dropped](McServerStats& s) { s.memo_invalidations += dropped; });
  }
}

bool McServer::CorruptMemoBit(MemoShard* shard) {
  if (shard->memo.empty()) return false;
  util::Rng& rng = shard->inj->rng();
  size_t k = rng.Below(shard->memo.size());
  auto it = shard->memo.begin();
  std::advance(it, static_cast<long>(k));
  Chunk& chunk = it->second.chunk;
  if (chunk.words.empty()) return false;
  const uint64_t bit = rng.Below(chunk.words.size() * 32);
  chunk.words[bit / 32] ^= 1u << (bit % 32);
  OBS_INSTANT("mc", "memo_flip", "addr", it->first);
  return true;
}

void McServer::ScrubMemo() {
  BumpStats([](McServerStats& s) { ++s.memo_scrubs; });
  for (MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [addr, entry] : shard.memo) {
      if (DigestOfChunk(entry.chunk) == entry.digest) continue;
      OBS_INSTANT("mc", "memo_corrupt", "addr", addr);
      auto healed = Cut(image_, addr);
      SC_CHECK(healed.ok()) << "pristine re-cut failed for memoized addr";
      BumpStats([](McServerStats& s) {
        ++s.memo_corruptions_detected;
        ++s.memo_heals;
      });
      entry.chunk = *healed;
      entry.digest = DigestOfChunk(*healed);
    }
  }
}

size_t McServer::memo_entries() const {
  size_t total = 0;
  for (const MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.memo.size();
  }
  return total;
}

void McServer::PublishDigest(uint64_t digest) {
  std::lock_guard<std::mutex> lock(published_mu_);
  if (!published_.emplace(digest, 0).second) return;  // already in window
  published_fifo_.push_back(digest);
  if (published_fifo_.size() > config_.published_capacity) {
    published_.erase(published_fifo_.front());
    published_fifo_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// McSession: per-client state.

std::vector<uint8_t> McSession::HandleRequest(const Request& request) {
  ++stats_.requests;
  const bool is_write = request.type == MsgType::kTextWrite ||
                        request.type == MsgType::kDataWriteback;
  if (!is_write) return Finish(HandleParsed(request));

  // A write stamped with a pre-restart epoch is a retransmission from a
  // client that has not yet observed the crash. Applying it would desync the
  // session's applied-op count from the client's journal indices (the client
  // will re-send it during journal replay); reject it instead. The error
  // reply carries the current epoch, so the client learns about the restart.
  if (request.epoch != (epoch_ & kEpochMask)) {
    ++stats_.stale_epoch_rejects;
    server_.BumpStats([](McServerStats& st) { ++st.stale_epoch_rejects; });
    return Finish(ErrorReply(request.seq, "stale epoch write"));
  }

  // Idempotent writes: an identical retransmitted frame is answered from the
  // replay cache, never applied a second time. Stale-epoch entries never
  // match (the cache is also cleared on restart, but the tag makes the
  // invariant local and testable).
  const uint32_t key_type = static_cast<uint32_t>(request.type);
  const uint32_t key_checksum =
      Checksum(request.payload.data(), request.payload.size());
  for (const ReplayEntry& entry : replay_cache_) {
    if (entry.type == key_type && entry.seq == request.seq &&
        entry.addr == request.addr &&
        entry.payload_checksum == key_checksum && entry.epoch == epoch_) {
      ++stats_.replays_suppressed;
      server_.BumpStats([](McServerStats& st) { ++st.replays_suppressed; });
      return entry.reply_bytes;
    }
  }
  std::vector<uint8_t> reply_bytes = Finish(HandleParsed(request));
  if (replay_cache_.size() >= kReplayCacheEntries) replay_cache_.pop_front();
  replay_cache_.push_back(ReplayEntry{key_type, request.seq, request.addr,
                                      key_checksum, epoch_, reply_bytes});
  return reply_bytes;
}

std::vector<uint8_t> McSession::ErrorFrame(uint32_t seq,
                                           const std::string& message) {
  return Finish(ErrorReply(seq, message));
}

std::vector<uint8_t> McSession::Finish(Reply reply) const {
  reply.epoch = epoch_ & kEpochMask;
  reply.client_id = client_id_ & kClientIdMask;
  return reply.Serialize();
}

Reply McSession::ErrorReply(uint32_t seq, const std::string& message) const {
  Reply reply;
  reply.type = MsgType::kError;
  reply.seq = seq;
  reply.payload.assign(message.begin(), message.end());
  return reply;
}

util::Result<Chunk> McSession::CutChunk(uint32_t addr) {
  // A session whose text has diverged (COW fault) translates from its own
  // image and bypasses the memo entirely — memoized artifacts only describe
  // the shared pristine text.
  if (private_image_) return server_.CutPrivate(*private_image_, addr);
  return server_.CutShared(addr);
}

void McSession::FaultTextPrivate() {
  if (private_image_) return;
  private_image_ = std::make_unique<image::Image>(server_.image());
  stable_text_ = private_image_->text;
  ++stats_.text_cow_faults;
  OBS_INSTANT("mc", "text_cow_fault", "client", client_id_);
}

void McSession::WritePages(PageMap* pages, uint32_t addr, const uint8_t* src,
                           size_t len, bool count_faults) {
  const std::vector<uint8_t>& shared = server_.shared_data();
  uint32_t offset = addr - server_.DataBase();
  size_t remaining = len;
  while (remaining > 0) {
    const uint32_t page = offset / kMcCowPageBytes;
    const uint32_t in_page = offset % kMcCowPageBytes;
    const size_t n = std::min<size_t>(remaining, kMcCowPageBytes - in_page);
    auto it = pages->find(page);
    if (it == pages->end()) {
      // Fault the page private: copy the shared pristine bytes it overlays.
      const size_t base = static_cast<size_t>(page) * kMcCowPageBytes;
      const size_t avail = base < shared.size() ? shared.size() - base : 0;
      std::vector<uint8_t> copy(kMcCowPageBytes, 0);
      if (avail > 0) {
        std::memcpy(copy.data(), shared.data() + base,
                    std::min<size_t>(kMcCowPageBytes, avail));
      }
      it = pages->emplace(page, std::move(copy)).first;
      if (count_faults) ++stats_.data_cow_page_faults;
    }
    std::memcpy(it->second.data() + in_page, src, n);
    src += n;
    offset += static_cast<uint32_t>(n);
    remaining -= n;
  }
}

void McSession::ReadData(uint32_t addr, uint32_t len, uint8_t* out) const {
  const std::vector<uint8_t>& shared = server_.shared_data();
  uint32_t offset = addr - server_.DataBase();
  uint32_t remaining = len;
  while (remaining > 0) {
    const uint32_t page = offset / kMcCowPageBytes;
    const uint32_t in_page = offset % kMcCowPageBytes;
    const uint32_t n =
        std::min<uint32_t>(remaining, kMcCowPageBytes - in_page);
    auto it = data_pages_.find(page);
    if (it != data_pages_.end()) {
      std::memcpy(out, it->second.data() + in_page, n);
    } else {
      std::memcpy(out, shared.data() + offset, n);
    }
    out += n;
    offset += n;
    remaining -= n;
  }
}

void McSession::OverlayData(std::vector<uint8_t>* flat) const {
  for (const auto& [page, bytes] : data_pages_) {
    const size_t base = static_cast<size_t>(page) * kMcCowPageBytes;
    if (base >= flat->size()) continue;
    std::memcpy(flat->data() + base, bytes.data(),
                std::min<size_t>(kMcCowPageBytes, flat->size() - base));
  }
}

void McSession::RecordTextWrite(uint32_t addr,
                                const std::vector<uint8_t>& bytes) {
  pending_text_.push_back(PendingWrite{addr, bytes});
  ++applied_text_ops_;
  if (pending_text_.size() < kMcWriteFlushIntervalOps) return;
  for (const PendingWrite& w : pending_text_) {
    std::memcpy(stable_text_.data() + (w.addr - private_image_->text_base),
                w.bytes.data(), w.bytes.size());
  }
  pending_text_.clear();
  stable_text_ops_ = applied_text_ops_;
  ++stats_.write_flushes;
  server_.BumpStats([](McServerStats& st) { ++st.write_flushes; });
  OBS_INSTANT("mc", "flush_barrier", "text_ops", stable_text_ops_);
}

void McSession::RecordDataWrite(uint32_t addr,
                                const std::vector<uint8_t>& bytes) {
  pending_data_.push_back(PendingWrite{addr, bytes});
  ++applied_data_ops_;
  if (pending_data_.size() < kMcWriteFlushIntervalOps) return;
  for (const PendingWrite& w : pending_data_) {
    WritePages(&stable_pages_, w.addr, w.bytes.data(), w.bytes.size(),
               /*count_faults=*/false);
  }
  pending_data_.clear();
  stable_data_ops_ = applied_data_ops_;
  ++stats_.write_flushes;
  server_.BumpStats([](McServerStats& st) { ++st.write_flushes; });
  OBS_INSTANT("mc", "flush_barrier", "data_ops", stable_data_ops_);
}

void McSession::Restart() {
  if (private_image_) private_image_->text = stable_text_;
  data_pages_ = stable_pages_;
  ++data_version_;
  pending_text_.clear();
  pending_data_.clear();
  applied_text_ops_ = stable_text_ops_;
  applied_data_ops_ = stable_data_ops_;
  replay_cache_.clear();
  temperature_ = util::OpenTable<uint32_t, uint32_t>(256);
  ++epoch_;
  ++stats_.restarts;
  server_.BumpStats([](McServerStats& st) { ++st.restarts; });
  OBS_INSTANT("mc", "restart", "epoch", epoch_, "client", client_id_);
}

Reply McSession::BatchReply(const Request& request, const Chunk& primary,
                            const PrefetchHints& hints, bool publish_digests) {
  // Bound speculative work regardless of what the (possibly hostile) hint
  // field asks for; the byte budget is already wire-capped at 65535.
  const uint32_t depth = hints.depth > kMaxPrefetchDepth ? kMaxPrefetchDepth
                                                         : hints.depth;
  const uint32_t max_chunks = hints.max_chunks > kMaxPrefetchChunks
                                  ? kMaxPrefetchChunks
                                  : hints.max_chunks;

  Reply reply;
  reply.type = MsgType::kChunkBatchReply;
  reply.seq = request.seq;
  reply.addr = primary.orig_addr;
  reply.extra = 0;
  uint32_t count = 0;
  const auto append = [this, &reply, &count,
                       publish_digests](const Chunk& chunk) {
    AppendBatchChunk(&reply.payload, chunk.orig_addr,
                     PackChunkMeta(chunk.exit, chunk.entry_word,
                                   chunk.jump_folded),
                     chunk.taken_target, chunk.words.data(),
                     static_cast<uint32_t>(chunk.words.size()));
    ++count;
    if (publish_digests) server_.PublishDigest(DigestOfChunk(chunk));
  };
  append(primary);

  // Candidate collection: BFS over the static CFG from the demanded chunk to
  // `depth` levels, cutting every reachable chunk once. Admission is decided
  // *globally* after collection — a per-level sort is degenerate whenever a
  // frontier level fits inside the budgets (the sort can reorder a level but
  // never change which chunks are admitted), which is exactly the regime the
  // bundled workloads sit in with ≤2 successors per chunk. Ranking the whole
  // candidate set lets a hot deep chunk displace a cold shallow one.
  const image::Image& text = text_view();
  std::vector<uint32_t> included{primary.orig_addr};
  const auto is_included = [&included](uint32_t addr) {
    for (uint32_t seen : included) {
      if (seen == addr) return true;
    }
    return false;
  };
  struct Candidate {
    Chunk chunk;
    uint32_t order;  // BFS discovery order: the next-N priority
  };
  std::vector<Candidate> candidates;
  std::vector<uint32_t> frontier = ChunkSuccessors(text, primary);
  for (uint32_t level = 0; level < depth && !frontier.empty(); ++level) {
    std::vector<uint32_t> next;
    for (uint32_t addr : frontier) {
      // Bound the walk: ranking only needs enough slack over max_chunks to
      // have something to displace.
      if (candidates.size() >= 2 * kMaxPrefetchChunks) break;
      if (is_included(addr)) continue;
      auto chunk = CutChunk(addr);
      if (!chunk.ok()) continue;  // e.g. successor with no symbol cover
      if (is_included(chunk->orig_addr)) continue;  // ARM: same procedure
      included.push_back(addr);
      if (chunk->orig_addr != addr) included.push_back(chunk->orig_addr);
      for (uint32_t succ : ChunkSuccessors(text, *chunk)) {
        next.push_back(succ);
      }
      candidates.push_back(Candidate{
          std::move(*chunk), static_cast<uint32_t>(candidates.size())});
    }
    frontier = std::move(next);
  }
  // Rank: the temperature policy orders by observed demand heat (hotter
  // first), falling back to BFS order on ties so a cold session degrades
  // gracefully to next-N; next-N is plain BFS order (fallthrough first).
  if (static_cast<PrefetchPolicy>(hints.policy) ==
      PrefetchPolicy::kTemperature) {
    std::stable_sort(candidates.begin(), candidates.end(),
                     [this](const Candidate& a, const Candidate& b) {
                       return Temperature(a.chunk.orig_addr) >
                              Temperature(b.chunk.orig_addr);
                     });
  }
  // Greedy admission under the chunk and byte budgets, in rank order.
  uint32_t budget = hints.byte_budget;
  for (const Candidate& cand : candidates) {
    if (count - 1 >= max_chunks) break;
    const uint32_t cost =
        kBatchChunkHeaderBytes +
        static_cast<uint32_t>(cand.chunk.words.size()) * 4;
    if (cost > budget) continue;
    budget -= cost;
    append(cand.chunk);
    ++stats_.chunks_prefetched;
    server_.BumpStats([](McServerStats& st) { ++st.chunks_prefetched; });
  }
  reply.aux = count;
  ++stats_.batches_served;
  server_.BumpStats([](McServerStats& st) { ++st.batches_served; });
  return reply;
}

Reply McSession::HandleParsed(const Request& request) {
  switch (request.type) {
    case MsgType::kChunkRequest:
    case MsgType::kChunkSharedRequest: {
      const bool shared = request.type == MsgType::kChunkSharedRequest;
      if (shared) {
        ++stats_.shared_requests;
        server_.BumpStats([](McServerStats& st) { ++st.shared_requests; });
      }
      auto chunk = CutChunk(request.addr);
      if (!chunk.ok()) return ErrorReply(request.seq, chunk.error().message);
      // Learn the chunk's demand "temperature" for future prefetch ranking.
      uint32_t* temp = temperature_.Find(chunk->orig_addr);
      if (temp != nullptr) {
        ++*temp;
      } else {
        temperature_.Put(chunk->orig_addr, 1);
      }
      // Content-addressed coalescing: only for opted-in clients reading
      // SHARED text (digests describe the pristine artifact; a COW session's
      // private translations are never published or answered by digest).
      const bool coalesce = shared && private_image_ == nullptr;
      if (coalesce) {
        const uint64_t digest = DigestOfChunk(*chunk);
        if (server_.DigestPublished(digest)) {
          // The body already crossed the broadcast medium; every attached
          // client snooped it, so ship the digest alone.
          ++stats_.digest_replies;
          const uint64_t saved = chunk->words.size() * 4;
          server_.BumpStats([saved](McServerStats& st) {
            ++st.digest_replies;
            st.digest_bytes_saved += saved;
          });
          Reply reply;
          reply.type = MsgType::kChunkDigestReply;
          reply.seq = request.seq;
          reply.addr = chunk->orig_addr;
          reply.aux = static_cast<uint32_t>(digest);
          reply.extra = static_cast<uint32_t>(digest >> 32);
          return reply;
        }
      }
      const PrefetchHints hints = UnpackPrefetchHints(request.length);
      if (hints.policy != 0 && hints.max_chunks > 0) {
        return BatchReply(request, *chunk, hints,
                          /*publish_digests=*/coalesce);
      }
      Reply reply;
      reply.type = MsgType::kChunkReply;
      reply.seq = request.seq;
      reply.addr = chunk->orig_addr;
      reply.aux = PackChunkMeta(chunk->exit, chunk->entry_word, chunk->jump_folded);
      reply.extra = chunk->taken_target;
      reply.payload.resize(chunk->words.size() * 4);
      if (!reply.payload.empty()) {
        std::memcpy(reply.payload.data(), chunk->words.data(),
                    reply.payload.size());
      }
      if (coalesce) server_.PublishDigest(DigestOfChunk(*chunk));
      return reply;
    }
    case MsgType::kDataRequest: {
      if (request.addr < server_.DataBase() ||
          static_cast<uint64_t>(request.addr) + request.length >
              server_.DataLimit()) {
        return ErrorReply(request.seq, "data request out of range");
      }
      Reply reply;
      reply.type = MsgType::kDataReply;
      reply.seq = request.seq;
      reply.addr = request.addr;
      reply.payload.resize(request.length);
      ReadData(request.addr, request.length, reply.payload.data());
      return reply;
    }
    case MsgType::kTextWrite: {
      // Self-modifying code: the client pushes rewritten program text (the
      // "explicit invalidation" contract for dynamic linking and similar).
      // The write faults this session's text private — other sessions keep
      // reading the shared pristine image — and drops any memoized
      // translations overlapping the written range.
      const image::Image& text = text_view();
      if (request.addr < text.text_base ||
          static_cast<uint64_t>(request.addr) + request.payload.size() >
              text.text_end() ||
          request.addr % 4 != 0 || request.payload.size() % 4 != 0) {
        return ErrorReply(request.seq, "text write out of range");
      }
      FaultTextPrivate();
      if (!request.payload.empty()) {
        std::memcpy(
            private_image_->text.data() +
                (request.addr - private_image_->text_base),
            request.payload.data(), request.payload.size());
      }
      server_.InvalidateMemoRange(
          request.addr, static_cast<uint32_t>(request.payload.size()));
      RecordTextWrite(request.addr, request.payload);
      Reply reply;
      reply.type = MsgType::kTextWriteAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    case MsgType::kDataWriteback: {
      if (request.addr < server_.DataBase() ||
          static_cast<uint64_t>(request.addr) + request.payload.size() >
              server_.DataLimit()) {
        return ErrorReply(request.seq, "writeback out of range");
      }
      if (!request.payload.empty()) {
        WritePages(&data_pages_, request.addr, request.payload.data(),
                   request.payload.size(), /*count_faults=*/true);
        ++data_version_;
      }
      RecordDataWrite(request.addr, request.payload);
      Reply reply;
      reply.type = MsgType::kWritebackAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    case MsgType::kHello: {
      // Session handshake: tell the client which boot epoch is live and how
      // many write ops of each type survived into the stable image, so it
      // can truncate its journal to exactly the non-durable suffix.
      Reply reply;
      reply.type = MsgType::kHelloAck;
      reply.seq = request.seq;
      reply.addr = epoch_;
      reply.aux = static_cast<uint32_t>(stable_text_ops_);
      reply.extra = static_cast<uint32_t>(stable_data_ops_);
      return reply;
    }
    default:
      return ErrorReply(request.seq, "unknown request type");
  }
}

// ---------------------------------------------------------------------------
// MemoryController: the endpoint facade.

McSession& MemoryController::session(uint32_t client_id) {
  client_id &= kClientIdMask;
  // sessions_mu_ guards the MAP only; the returned session object is owned
  // by its client's (serialized, stop-and-wait) frame path.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(client_id,
                      std::make_unique<McSession>(server_, client_id))
             .first;
  }
  return *it->second;
}

const McSession* MemoryController::FindSession(uint32_t client_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(client_id & kClientIdMask);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::vector<uint8_t> MemoryController::Handle(
    const std::vector<uint8_t>& request_bytes) {
  return HandleRouted(-1, request_bytes);
}

std::vector<uint8_t> MemoryController::HandlePort(
    uint32_t port, const std::vector<uint8_t>& request_bytes) {
  return HandleRouted(static_cast<int64_t>(port & kClientIdMask),
                      request_bytes);
}

std::vector<uint8_t> MemoryController::HandleRouted(
    int64_t port, const std::vector<uint8_t>& request_bytes) {
  std::vector<uint8_t> reply_bytes = HandleInner(port, request_bytes);
  if (tap_) {
    std::lock_guard<std::mutex> lock(tap_mu_);
    tap_(request_bytes, reply_bytes);
  }
  return reply_bytes;
}

std::vector<uint8_t> MemoryController::HandleInner(
    int64_t port, const std::vector<uint8_t>& request_bytes) {
  server_.BumpStats([](McServerStats& st) { ++st.requests_served; });
  auto request = Request::Parse(request_bytes);
  OBS_SPAN("mc", "handle",
           "type", request.ok() ? static_cast<uint64_t>(request->type) : 0,
           "addr", request.ok() ? request->addr : 0);
  // A traced miss carries a rid: thread its causal arrow through whichever
  // server lane (shard or loop) is installed for this frame.
  if (request.ok() && request->rid != 0) {
    if (obs::Tracer* t = obs::tracer(); t != nullptr && t->recording()) {
      t->FlowStep("flow", "miss", FlowId(request->client_id, request->rid));
    }
  }
  if (!request.ok()) {
    // Unattributable: the seq field cannot be trusted on a corrupted frame.
    // Seq 0 is reserved for these replies; clients never use it.
    const uint32_t id =
        port >= 0 ? static_cast<uint32_t>(port) : PeekClientId(request_bytes);
    return session(id).ErrorFrame(0, request.error().message);
  }
  if (port >= 0 && request->client_id != static_cast<uint32_t>(port)) {
    // Spoofed or misrouted: a frame claiming another client's id must never
    // touch that client's session. Reject on the arrival port.
    server_.BumpStats([](McServerStats& st) { ++st.misrouted_frames; });
    return session(static_cast<uint32_t>(port))
        .ErrorFrame(request->seq, "client id mismatch");
  }
  return session(request->client_id).HandleRequest(*request);
}

void MemoryController::Restart() {
  // Whole-server crash: callers route this through the loop's park-all
  // exclusive section, so no frame is in flight while sessions reset.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& [id, s] : sessions_) s->Restart();
}

void MemoryController::RestartSession(uint32_t client_id) {
  session(client_id).Restart();
}

const std::vector<uint8_t>& MemoryController::data() const {
  const McSession& s0 = Session0();
  if (legacy_data_version_ != s0.data_version()) {
    legacy_data_ = server_.shared_data();
    s0.OverlayData(&legacy_data_);
    legacy_data_version_ = s0.data_version();
  }
  return legacy_data_;
}

void MemoryController::RegisterMetrics(obs::MetricsRegistry* registry,
                                       const std::string& prefix) const {
  const McServerStats& s = server_.stats();
  registry->RegisterCounter(prefix + "requests_served", &s.requests_served);
  registry->RegisterCounter(prefix + "replays_suppressed",
                            &s.replays_suppressed);
  registry->RegisterCounter(prefix + "batches_served", &s.batches_served);
  registry->RegisterCounter(prefix + "chunks_prefetched",
                            &s.chunks_prefetched);
  registry->RegisterCounter(prefix + "restarts", &s.restarts);
  registry->RegisterCounter(prefix + "stale_epoch_rejects",
                            &s.stale_epoch_rejects);
  registry->RegisterCounter(prefix + "write_flushes", &s.write_flushes);
  registry->RegisterCounter(prefix + "translates", &s.translates);
  registry->RegisterCounter(prefix + "translate_memo_hits",
                            &s.translate_memo_hits);
  registry->RegisterCounter(prefix + "translate_memo_invalidations",
                            &s.memo_invalidations);
  registry->RegisterCounter(prefix + "translate_memo_evictions",
                            &s.memo_evictions);
  registry->RegisterCounter(prefix + "misrouted_frames", &s.misrouted_frames);
  registry->RegisterCounter(prefix + "shared_requests", &s.shared_requests);
  registry->RegisterCounter(prefix + "digest_replies", &s.digest_replies);
  registry->RegisterCounter(prefix + "digest_bytes_saved",
                            &s.digest_bytes_saved);
  registry->RegisterCounter(prefix + "memo.flips_injected",
                            &s.memo_flips_injected);
  registry->RegisterCounter(prefix + "memo.corruptions_detected",
                            &s.memo_corruptions_detected);
  registry->RegisterCounter(prefix + "memo.heals", &s.memo_heals);
  registry->RegisterCounter(prefix + "memo.scrubs", &s.memo_scrubs);
  registry->RegisterGauge(prefix + "sessions_active", [this] {
    return static_cast<double>(sessions_active());
  });
  registry->RegisterGauge(prefix + "translate_memo_entries", [this] {
    return static_cast<double>(server_.memo_entries());
  });
  registry->RegisterGauge(prefix + "published_digests", [this] {
    return static_cast<double>(server_.published_digests());
  });
  // Per-shard translation work: mc.shard<i>.*.
  for (uint32_t i = 0; i < server_.shards(); ++i) {
    const std::string sub = prefix + "shard" + std::to_string(i) + ".";
    registry->RegisterGauge(sub + "translates", [this, i] {
      return static_cast<double>(server_.shard_translates(i));
    });
    registry->RegisterGauge(sub + "memo_hits", [this, i] {
      return static_cast<double>(server_.shard_memo_hits(i));
    });
    registry->RegisterGauge(sub + "memo_entries", [this, i] {
      return static_cast<double>(server_.shard_memo_entries(i));
    });
    // Host-ns service time per translation request (p50/p95/p99 in the
    // JSON export; histograms never join snapshot determinism checks).
    registry->RegisterHistogram(sub + "service_ns",
                                &server_.shard_service_ns(i));
  }
  // Legacy name: session 0's heat table (the single-client table).
  if (const McSession* s0 = FindSession(0)) {
    registry->RegisterTable(prefix + "chunk_temperature",
                            [s0] { return s0->TemperatureRows(); });
  }
  // Per-session counters + heat tables: mc.s<id>.*.
  for (const auto& [id, sess] : sessions_) {
    const std::string sub = prefix + "s" + std::to_string(id) + ".";
    const McSessionStats& ss = sess->stats();
    registry->RegisterCounter(sub + "requests", &ss.requests);
    registry->RegisterCounter(sub + "replays_suppressed",
                              &ss.replays_suppressed);
    registry->RegisterCounter(sub + "batches_served", &ss.batches_served);
    registry->RegisterCounter(sub + "chunks_prefetched",
                              &ss.chunks_prefetched);
    registry->RegisterCounter(sub + "restarts", &ss.restarts);
    registry->RegisterCounter(sub + "stale_epoch_rejects",
                              &ss.stale_epoch_rejects);
    registry->RegisterCounter(sub + "write_flushes", &ss.write_flushes);
    registry->RegisterCounter(sub + "text_cow_faults", &ss.text_cow_faults);
    registry->RegisterCounter(sub + "data_cow_page_faults",
                              &ss.data_cow_page_faults);
    registry->RegisterCounter(sub + "shared_requests", &ss.shared_requests);
    registry->RegisterCounter(sub + "digest_replies", &ss.digest_replies);
    const McSession* sp = sess.get();
    registry->RegisterTable(sub + "chunk_temperature",
                            [sp] { return sp->TemperatureRows(); });
  }
}

}  // namespace sc::softcache
