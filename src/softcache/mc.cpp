#include "softcache/mc.h"

#include <cstring>

#include "util/check.h"

namespace sc::softcache {
namespace {

// Bounds the replay cache. A stop-and-wait client has at most one write in
// flight, so even a fleet of clients sharing one MC stays far below this.
constexpr size_t kReplayCacheEntries = 64;

}  // namespace

std::vector<uint8_t> MemoryController::Handle(
    const std::vector<uint8_t>& request_bytes) {
  ++requests_served_;
  auto request = Request::Parse(request_bytes);
  if (!request.ok()) {
    // Unattributable: the seq field cannot be trusted on a corrupted frame.
    // Seq 0 is reserved for these replies; clients never use it.
    return ErrorReply(0, request.error().message).Serialize();
  }
  const bool is_write = request->type == MsgType::kTextWrite ||
                        request->type == MsgType::kDataWriteback;
  if (!is_write) return HandleParsed(*request).Serialize();

  // Idempotent writes: an identical retransmitted frame is answered from the
  // replay cache, never applied a second time.
  const uint32_t key_type = static_cast<uint32_t>(request->type);
  const uint32_t key_checksum =
      Checksum(request->payload.data(), request->payload.size());
  for (const ReplayEntry& entry : replay_cache_) {
    if (entry.type == key_type && entry.seq == request->seq &&
        entry.addr == request->addr &&
        entry.payload_checksum == key_checksum) {
      ++replays_suppressed_;
      return entry.reply_bytes;
    }
  }
  std::vector<uint8_t> reply_bytes = HandleParsed(*request).Serialize();
  if (replay_cache_.size() >= kReplayCacheEntries) replay_cache_.pop_front();
  replay_cache_.push_back(ReplayEntry{key_type, request->seq, request->addr,
                                      key_checksum, reply_bytes});
  return reply_bytes;
}

Reply MemoryController::ErrorReply(uint32_t seq, const std::string& message) const {
  Reply reply;
  reply.type = MsgType::kError;
  reply.seq = seq;
  reply.payload.assign(message.begin(), message.end());
  return reply;
}

Reply MemoryController::HandleParsed(const Request& request) {
  switch (request.type) {
    case MsgType::kChunkRequest: {
      auto chunk = style_ == Style::kSparc
                       ? ChunkBasicBlock(image_, request.addr, max_block_instrs_,
                                         max_trace_blocks_)
                       : ChunkProcedure(image_, request.addr);
      if (!chunk.ok()) return ErrorReply(request.seq, chunk.error().message);
      Reply reply;
      reply.type = MsgType::kChunkReply;
      reply.seq = request.seq;
      reply.addr = chunk->orig_addr;
      reply.aux = PackChunkMeta(chunk->exit, chunk->entry_word, chunk->jump_folded);
      reply.extra = chunk->taken_target;
      reply.payload.resize(chunk->words.size() * 4);
      if (!reply.payload.empty()) {
        std::memcpy(reply.payload.data(), chunk->words.data(),
                    reply.payload.size());
      }
      return reply;
    }
    case MsgType::kDataRequest: {
      if (request.addr < DataBase() ||
          static_cast<uint64_t>(request.addr) + request.length > DataLimit()) {
        return ErrorReply(request.seq, "data request out of range");
      }
      Reply reply;
      reply.type = MsgType::kDataReply;
      reply.seq = request.seq;
      reply.addr = request.addr;
      const uint32_t offset = request.addr - DataBase();
      reply.payload.assign(data_.begin() + offset,
                           data_.begin() + offset + request.length);
      return reply;
    }
    case MsgType::kTextWrite: {
      // Self-modifying code: the client pushes rewritten program text (the
      // "explicit invalidation" contract for dynamic linking and similar).
      if (request.addr < image_.text_base ||
          static_cast<uint64_t>(request.addr) + request.payload.size() >
              image_.text_end() ||
          request.addr % 4 != 0 || request.payload.size() % 4 != 0) {
        return ErrorReply(request.seq, "text write out of range");
      }
      if (!request.payload.empty()) {
        std::memcpy(image_.text.data() + (request.addr - image_.text_base),
                    request.payload.data(), request.payload.size());
      }
      Reply reply;
      reply.type = MsgType::kTextWriteAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    case MsgType::kDataWriteback: {
      if (request.addr < DataBase() ||
          static_cast<uint64_t>(request.addr) + request.payload.size() > DataLimit()) {
        return ErrorReply(request.seq, "writeback out of range");
      }
      if (!request.payload.empty()) {
        std::memcpy(data_.data() + (request.addr - DataBase()),
                    request.payload.data(), request.payload.size());
      }
      Reply reply;
      reply.type = MsgType::kWritebackAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    default:
      return ErrorReply(request.seq, "unknown request type");
  }
}

}  // namespace sc::softcache
