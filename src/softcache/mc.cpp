#include "softcache/mc.h"

#include <cstring>

#include "util/check.h"

namespace sc::softcache {

std::vector<uint8_t> MemoryController::Handle(
    const std::vector<uint8_t>& request_bytes) {
  ++requests_served_;
  auto request = Request::Parse(request_bytes);
  if (!request.ok()) {
    return ErrorReply(0, request.error().message).Serialize();
  }
  return HandleParsed(*request).Serialize();
}

Reply MemoryController::ErrorReply(uint32_t seq, const std::string& message) const {
  Reply reply;
  reply.type = MsgType::kError;
  reply.seq = seq;
  reply.payload.assign(message.begin(), message.end());
  return reply;
}

Reply MemoryController::HandleParsed(const Request& request) {
  switch (request.type) {
    case MsgType::kChunkRequest: {
      auto chunk = style_ == Style::kSparc
                       ? ChunkBasicBlock(image_, request.addr, max_block_instrs_,
                                         max_trace_blocks_)
                       : ChunkProcedure(image_, request.addr);
      if (!chunk.ok()) return ErrorReply(request.seq, chunk.error().message);
      Reply reply;
      reply.type = MsgType::kChunkReply;
      reply.seq = request.seq;
      reply.addr = chunk->orig_addr;
      reply.aux = PackChunkMeta(chunk->exit, chunk->entry_word, chunk->jump_folded);
      reply.extra = chunk->taken_target;
      reply.payload.resize(chunk->words.size() * 4);
      std::memcpy(reply.payload.data(), chunk->words.data(), reply.payload.size());
      return reply;
    }
    case MsgType::kDataRequest: {
      if (request.addr < DataBase() ||
          static_cast<uint64_t>(request.addr) + request.length > DataLimit()) {
        return ErrorReply(request.seq, "data request out of range");
      }
      Reply reply;
      reply.type = MsgType::kDataReply;
      reply.seq = request.seq;
      reply.addr = request.addr;
      const uint32_t offset = request.addr - DataBase();
      reply.payload.assign(data_.begin() + offset,
                           data_.begin() + offset + request.length);
      return reply;
    }
    case MsgType::kTextWrite: {
      // Self-modifying code: the client pushes rewritten program text (the
      // "explicit invalidation" contract for dynamic linking and similar).
      if (request.addr < image_.text_base ||
          static_cast<uint64_t>(request.addr) + request.payload.size() >
              image_.text_end() ||
          request.addr % 4 != 0 || request.payload.size() % 4 != 0) {
        return ErrorReply(request.seq, "text write out of range");
      }
      std::memcpy(image_.text.data() + (request.addr - image_.text_base),
                  request.payload.data(), request.payload.size());
      Reply reply;
      reply.type = MsgType::kTextWriteAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    case MsgType::kDataWriteback: {
      if (request.addr < DataBase() ||
          static_cast<uint64_t>(request.addr) + request.payload.size() > DataLimit()) {
        return ErrorReply(request.seq, "writeback out of range");
      }
      std::memcpy(data_.data() + (request.addr - DataBase()),
                  request.payload.data(), request.payload.size());
      Reply reply;
      reply.type = MsgType::kWritebackAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    default:
      return ErrorReply(request.seq, "unknown request type");
  }
}

}  // namespace sc::softcache
