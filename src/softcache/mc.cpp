#include "softcache/mc.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"
#include "util/check.h"

namespace sc::softcache {
namespace {

// Bounds the replay cache. A stop-and-wait client has at most one write in
// flight, so even a fleet of clients sharing one MC stays far below this.
constexpr size_t kReplayCacheEntries = 64;

// Server-side caps on speculative work, independent of what the hint field
// asks for (it arrives from an untrusted client).
constexpr uint32_t kMaxPrefetchDepth = 8;
constexpr uint32_t kMaxPrefetchChunks = 32;

}  // namespace

std::vector<uint8_t> MemoryController::Handle(
    const std::vector<uint8_t>& request_bytes) {
  std::vector<uint8_t> reply_bytes = HandleInner(request_bytes);
  if (tap_) tap_(request_bytes, reply_bytes);
  return reply_bytes;
}

std::vector<uint8_t> MemoryController::HandleInner(
    const std::vector<uint8_t>& request_bytes) {
  ++requests_served_;
  auto request = Request::Parse(request_bytes);
  OBS_SPAN("mc", "handle",
           "type", request.ok() ? static_cast<uint64_t>(request->type) : 0,
           "addr", request.ok() ? request->addr : 0);
  if (!request.ok()) {
    // Unattributable: the seq field cannot be trusted on a corrupted frame.
    // Seq 0 is reserved for these replies; clients never use it.
    return Finish(ErrorReply(0, request.error().message));
  }
  const bool is_write = request->type == MsgType::kTextWrite ||
                        request->type == MsgType::kDataWriteback;
  if (!is_write) return Finish(HandleParsed(*request));

  // A write stamped with a pre-restart epoch is a retransmission from a
  // client that has not yet observed the crash. Applying it would desync the
  // MC's applied-op count from the client's journal indices (the client will
  // re-send it during journal replay); reject it instead. The error reply
  // carries the current epoch, so the client learns about the restart.
  if (request->epoch != (epoch_ & kEpochMask)) {
    ++stale_epoch_rejects_;
    return Finish(ErrorReply(request->seq, "stale epoch write"));
  }

  // Idempotent writes: an identical retransmitted frame is answered from the
  // replay cache, never applied a second time. Stale-epoch entries never
  // match (the cache is also cleared on restart, but the tag makes the
  // invariant local and testable).
  const uint32_t key_type = static_cast<uint32_t>(request->type);
  const uint32_t key_checksum =
      Checksum(request->payload.data(), request->payload.size());
  for (const ReplayEntry& entry : replay_cache_) {
    if (entry.type == key_type && entry.seq == request->seq &&
        entry.addr == request->addr &&
        entry.payload_checksum == key_checksum && entry.epoch == epoch_) {
      ++replays_suppressed_;
      return entry.reply_bytes;
    }
  }
  std::vector<uint8_t> reply_bytes = Finish(HandleParsed(*request));
  if (replay_cache_.size() >= kReplayCacheEntries) replay_cache_.pop_front();
  replay_cache_.push_back(ReplayEntry{key_type, request->seq, request->addr,
                                      key_checksum, epoch_, reply_bytes});
  return reply_bytes;
}

std::vector<uint8_t> MemoryController::Finish(Reply reply) const {
  reply.epoch = epoch_ & kEpochMask;
  return reply.Serialize();
}

void MemoryController::RecordTextWrite(uint32_t addr,
                                       const std::vector<uint8_t>& bytes) {
  pending_text_.push_back(PendingWrite{addr, bytes});
  ++applied_text_ops_;
  if (pending_text_.size() < kMcWriteFlushIntervalOps) return;
  for (const PendingWrite& w : pending_text_) {
    std::memcpy(stable_text_.data() + (w.addr - image_.text_base),
                w.bytes.data(), w.bytes.size());
  }
  pending_text_.clear();
  stable_text_ops_ = applied_text_ops_;
  ++write_flushes_;
  OBS_INSTANT("mc", "flush_barrier", "text_ops", stable_text_ops_);
}

void MemoryController::RecordDataWrite(uint32_t addr,
                                       const std::vector<uint8_t>& bytes) {
  pending_data_.push_back(PendingWrite{addr, bytes});
  ++applied_data_ops_;
  if (pending_data_.size() < kMcWriteFlushIntervalOps) return;
  for (const PendingWrite& w : pending_data_) {
    std::memcpy(stable_data_.data() + (w.addr - DataBase()), w.bytes.data(),
                w.bytes.size());
  }
  pending_data_.clear();
  stable_data_ops_ = applied_data_ops_;
  ++write_flushes_;
  OBS_INSTANT("mc", "flush_barrier", "data_ops", stable_data_ops_);
}

void MemoryController::Restart() {
  image_.text = stable_text_;
  if (!stable_data_.empty()) data_ = stable_data_;
  pending_text_.clear();
  pending_data_.clear();
  applied_text_ops_ = stable_text_ops_;
  applied_data_ops_ = stable_data_ops_;
  replay_cache_.clear();
  temperature_ = util::OpenTable<uint32_t, uint32_t>(256);
  ++epoch_;
  ++restarts_;
  OBS_INSTANT("mc", "restart", "epoch", epoch_);
}

Reply MemoryController::ErrorReply(uint32_t seq, const std::string& message) const {
  Reply reply;
  reply.type = MsgType::kError;
  reply.seq = seq;
  reply.payload.assign(message.begin(), message.end());
  return reply;
}

util::Result<Chunk> MemoryController::CutChunk(uint32_t addr) const {
  return style_ == Style::kSparc
             ? ChunkBasicBlock(image_, addr, max_block_instrs_,
                               max_trace_blocks_)
             : ChunkProcedure(image_, addr);
}

Reply MemoryController::BatchReply(const Request& request, const Chunk& primary,
                                   const PrefetchHints& hints) {
  // Bound speculative work regardless of what the (possibly hostile) hint
  // field asks for; the byte budget is already wire-capped at 65535.
  const uint32_t depth = hints.depth > kMaxPrefetchDepth ? kMaxPrefetchDepth
                                                         : hints.depth;
  const uint32_t max_chunks = hints.max_chunks > kMaxPrefetchChunks
                                  ? kMaxPrefetchChunks
                                  : hints.max_chunks;

  Reply reply;
  reply.type = MsgType::kChunkBatchReply;
  reply.seq = request.seq;
  reply.addr = primary.orig_addr;
  reply.extra = 0;
  uint32_t count = 0;
  const auto append = [&reply, &count](const Chunk& chunk) {
    AppendBatchChunk(&reply.payload, chunk.orig_addr,
                     PackChunkMeta(chunk.exit, chunk.entry_word,
                                   chunk.jump_folded),
                     chunk.taken_target, chunk.words.data(),
                     static_cast<uint32_t>(chunk.words.size()));
    ++count;
  };
  append(primary);

  // BFS over the static CFG from the demanded chunk. Each frontier level is
  // ranked by temperature when the policy asks for it; within equal
  // temperature the natural order (fallthrough first) is kept, so a cold MC
  // degrades gracefully to next-N prefetching.
  std::vector<uint32_t> included{primary.orig_addr};
  const auto is_included = [&included](uint32_t addr) {
    for (uint32_t seen : included) {
      if (seen == addr) return true;
    }
    return false;
  };
  uint32_t budget = hints.byte_budget;
  std::vector<uint32_t> frontier = ChunkSuccessors(image_, primary);
  for (uint32_t level = 0; level < depth && !frontier.empty(); ++level) {
    if (static_cast<PrefetchPolicy>(hints.policy) ==
        PrefetchPolicy::kTemperature) {
      std::stable_sort(frontier.begin(), frontier.end(),
                       [this](uint32_t a, uint32_t b) {
                         return Temperature(a) > Temperature(b);
                       });
    }
    std::vector<uint32_t> next;
    for (uint32_t addr : frontier) {
      if (count - 1 >= max_chunks) break;
      if (is_included(addr)) continue;
      auto chunk = CutChunk(addr);
      if (!chunk.ok()) continue;  // e.g. successor with no symbol cover
      if (is_included(chunk->orig_addr)) continue;  // ARM: same procedure
      const uint32_t cost = kBatchChunkHeaderBytes +
                            static_cast<uint32_t>(chunk->words.size()) * 4;
      if (cost > budget) continue;
      budget -= cost;
      included.push_back(addr);
      if (chunk->orig_addr != addr) included.push_back(chunk->orig_addr);
      append(*chunk);
      ++chunks_prefetched_;
      for (uint32_t succ : ChunkSuccessors(image_, *chunk)) {
        next.push_back(succ);
      }
    }
    frontier = std::move(next);
  }
  reply.aux = count;
  ++batches_served_;
  return reply;
}

Reply MemoryController::HandleParsed(const Request& request) {
  switch (request.type) {
    case MsgType::kChunkRequest: {
      auto chunk = CutChunk(request.addr);
      if (!chunk.ok()) return ErrorReply(request.seq, chunk.error().message);
      // Learn the chunk's demand "temperature" for future prefetch ranking.
      uint32_t* temp = temperature_.Find(chunk->orig_addr);
      if (temp != nullptr) {
        ++*temp;
      } else {
        temperature_.Put(chunk->orig_addr, 1);
      }
      const PrefetchHints hints = UnpackPrefetchHints(request.length);
      if (hints.policy != 0 && hints.max_chunks > 0) {
        return BatchReply(request, *chunk, hints);
      }
      Reply reply;
      reply.type = MsgType::kChunkReply;
      reply.seq = request.seq;
      reply.addr = chunk->orig_addr;
      reply.aux = PackChunkMeta(chunk->exit, chunk->entry_word, chunk->jump_folded);
      reply.extra = chunk->taken_target;
      reply.payload.resize(chunk->words.size() * 4);
      if (!reply.payload.empty()) {
        std::memcpy(reply.payload.data(), chunk->words.data(),
                    reply.payload.size());
      }
      return reply;
    }
    case MsgType::kDataRequest: {
      if (request.addr < DataBase() ||
          static_cast<uint64_t>(request.addr) + request.length > DataLimit()) {
        return ErrorReply(request.seq, "data request out of range");
      }
      Reply reply;
      reply.type = MsgType::kDataReply;
      reply.seq = request.seq;
      reply.addr = request.addr;
      const uint32_t offset = request.addr - DataBase();
      reply.payload.assign(data_.begin() + offset,
                           data_.begin() + offset + request.length);
      return reply;
    }
    case MsgType::kTextWrite: {
      // Self-modifying code: the client pushes rewritten program text (the
      // "explicit invalidation" contract for dynamic linking and similar).
      if (request.addr < image_.text_base ||
          static_cast<uint64_t>(request.addr) + request.payload.size() >
              image_.text_end() ||
          request.addr % 4 != 0 || request.payload.size() % 4 != 0) {
        return ErrorReply(request.seq, "text write out of range");
      }
      if (!request.payload.empty()) {
        std::memcpy(image_.text.data() + (request.addr - image_.text_base),
                    request.payload.data(), request.payload.size());
      }
      RecordTextWrite(request.addr, request.payload);
      Reply reply;
      reply.type = MsgType::kTextWriteAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    case MsgType::kDataWriteback: {
      if (request.addr < DataBase() ||
          static_cast<uint64_t>(request.addr) + request.payload.size() > DataLimit()) {
        return ErrorReply(request.seq, "writeback out of range");
      }
      // Capture the pristine data image before its first mutation; runs
      // that never write back data skip this copy entirely.
      if (stable_data_.empty()) stable_data_ = data_;
      if (!request.payload.empty()) {
        std::memcpy(data_.data() + (request.addr - DataBase()),
                    request.payload.data(), request.payload.size());
      }
      RecordDataWrite(request.addr, request.payload);
      Reply reply;
      reply.type = MsgType::kWritebackAck;
      reply.seq = request.seq;
      reply.addr = request.addr;
      return reply;
    }
    case MsgType::kHello: {
      // Session handshake: tell the client which boot epoch is live and how
      // many write ops of each type survived into the stable image, so it
      // can truncate its journal to exactly the non-durable suffix.
      Reply reply;
      reply.type = MsgType::kHelloAck;
      reply.seq = request.seq;
      reply.addr = epoch_;
      reply.aux = static_cast<uint32_t>(stable_text_ops_);
      reply.extra = static_cast<uint32_t>(stable_data_ops_);
      return reply;
    }
    default:
      return ErrorReply(request.seq, "unknown request type");
  }
}

}  // namespace sc::softcache
