#include "softcache/chunker.h"

#include <sstream>

namespace sc::softcache {

using isa::Instr;
using isa::Opcode;

namespace {

util::Error ErrAt(uint32_t pc, const std::string& what) {
  std::ostringstream msg;
  msg << what << " at 0x" << std::hex << pc;
  return util::Error{msg.str()};
}

}  // namespace

util::Result<Chunk> ChunkBasicBlock(const image::Image& image, uint32_t pc,
                                    uint32_t max_instrs, uint32_t max_blocks) {
  if (!image.ContainsText(pc) || pc % 4 != 0) {
    return ErrAt(pc, "chunk request outside text");
  }
  SC_CHECK_GE(max_blocks, 1u);
  Chunk chunk;
  chunk.orig_addr = pc;
  uint32_t blocks = 1;
  uint32_t cur = pc;
  for (uint32_t n = 0; n < max_instrs; ++n) {
    if (!image.ContainsText(cur)) {
      return ErrAt(cur, "basic block runs off the end of text");
    }
    const uint32_t word = image.TextWord(cur);
    const Instr in = isa::Decode(word);
    switch (in.op) {
      case Opcode::kIllegal:
      case Opcode::kTcMiss:
      case Opcode::kTcJalr:
        return ErrAt(cur, "illegal instruction in chunk");
      case Opcode::kJ:
        // Fold the jump into the exit; the rewriter emits the jump slot.
        chunk.exit = ExitKind::kFallthrough;
        chunk.taken_target = isa::BranchTarget(cur, in.imm);
        chunk.jump_folded = true;
        return chunk;
      case Opcode::kJal:
        chunk.words.push_back(word);
        chunk.exit = ExitKind::kCall;
        chunk.taken_target = isa::BranchTarget(cur, in.imm);
        chunk.fall_target = cur + 4;
        return chunk;
      case Opcode::kJalr:
        if (isa::IsReturn(word)) {
          chunk.words.push_back(word);
          chunk.exit = ExitKind::kNone;
          return chunk;
        }
        if (in.rs1 == isa::kRa) {
          // The programming model requires ra to be used only by the
          // call/return idiom; a computed jump through ra would hold a
          // tcache address and defeat the hash table.
          return ErrAt(cur, "computed jump through ra violates the programming model");
        }
        chunk.words.push_back(word);
        chunk.exit = ExitKind::kComputed;
        chunk.fall_target = cur + 4;
        return chunk;
      case Opcode::kHalt:
        chunk.words.push_back(word);
        chunk.exit = ExitKind::kNone;
        return chunk;
      default:
        if (isa::IsConditionalBranch(in.op)) {
          chunk.words.push_back(word);
          if (blocks < max_blocks) {
            // Trace chunking: fall through the branch; it becomes a
            // mid-chunk side exit resolved by the installer.
            ++blocks;
            cur += 4;
            break;
          }
          chunk.exit = ExitKind::kBranch;
          chunk.taken_target = isa::BranchTarget(cur, in.imm);
          chunk.fall_target = cur + 4;
          return chunk;
        }
        chunk.words.push_back(word);
        cur += 4;
        break;
    }
  }
  // Size cap reached: cut the block with a fallthrough exit.
  chunk.exit = ExitKind::kFallthrough;
  chunk.taken_target = cur;
  return chunk;
}

util::Result<Chunk> ChunkProcedure(const image::Image& image, uint32_t pc) {
  if (!image.ContainsText(pc) || pc % 4 != 0) {
    return ErrAt(pc, "chunk request outside text");
  }
  const image::Symbol* sym = image.FunctionAt(pc);
  if (sym == nullptr) {
    return ErrAt(pc, "no function symbol covers address");
  }
  if (sym->size == 0 || sym->size % 4 != 0) {
    return ErrAt(pc, "function symbol has bad size");
  }
  Chunk chunk;
  chunk.orig_addr = sym->addr;
  chunk.entry_word = (pc - sym->addr) / 4;
  chunk.words.reserve(sym->size / 4);
  for (uint32_t a = sym->addr; a < sym->addr + sym->size; a += 4) {
    chunk.words.push_back(image.TextWord(a));
  }
  chunk.exit = ExitKind::kNone;  // procedure exits are rewritten per call site
  return chunk;
}

std::vector<uint32_t> ChunkSuccessors(const image::Image& image,
                                      const Chunk& chunk) {
  std::vector<uint32_t> successors;
  const auto add = [&](uint32_t addr) {
    if (addr == chunk.orig_addr || !image.ContainsText(addr) || addr % 4 != 0) {
      return;
    }
    for (uint32_t seen : successors) {
      if (seen == addr) return;
    }
    successors.push_back(addr);
  };

  // Exit-metadata edges (basic-block / trace chunks). Fallthrough-style
  // continuations first: straight-line code is the likeliest next fetch.
  switch (chunk.exit) {
    case ExitKind::kFallthrough:
      add(chunk.taken_target);
      break;
    case ExitKind::kBranch:
      add(chunk.orig_addr + chunk.size_bytes());  // fallthrough
      add(chunk.taken_target);                    // taken
      break;
    case ExitKind::kCall:
      add(chunk.taken_target);                    // callee runs first
      add(chunk.orig_addr + chunk.size_bytes());  // continuation
      break;
    case ExitKind::kComputed:
      add(chunk.orig_addr + chunk.size_bytes());
      break;
    case ExitKind::kNone:
      break;
  }

  // Body edges: mid-chunk side exits (trace chunks) and callees (procedure
  // chunks) are encoded in the instruction words themselves.
  const uint32_t nwords = static_cast<uint32_t>(chunk.words.size());
  for (uint32_t i = 0; i < nwords; ++i) {
    const uint32_t pc = chunk.orig_addr + i * 4;
    const Instr in = isa::Decode(chunk.words[i]);
    const bool is_terminator = i == nwords - 1 && chunk.exit != ExitKind::kNone;
    if (in.op == Opcode::kJal) {
      if (!is_terminator || chunk.exit != ExitKind::kCall) {
        add(isa::BranchTarget(pc, in.imm));  // procedure-chunk call site
      }
    } else if (isa::IsConditionalBranch(in.op)) {
      const uint32_t target = isa::BranchTarget(pc, in.imm);
      // Procedure chunks keep internal branches internal; only targets
      // outside the chunk body are new fetches.
      if (target < chunk.orig_addr || target >= chunk.orig_addr + nwords * 4) {
        add(target);
      } else if (chunk.entry_word == 0 && chunk.exit != ExitKind::kNone) {
        // Trace chunk: internal-looking targets are still block starts the
        // client will request separately (blocks are keyed by entry).
        add(target);
      }
    }
  }
  return successors;
}

}  // namespace sc::softcache
