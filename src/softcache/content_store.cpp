#include "softcache/content_store.h"

#include <utility>

#include "softcache/protocol.h"

namespace sc::softcache {

namespace {

// Recomputes the content digest a stored entry is keyed by.
uint64_t EntryDigest(const ChunkContentStore::StoredChunk& entry) {
  static const std::vector<uint8_t> kEmpty;
  const std::vector<uint8_t>& body =
      entry.words == nullptr ? kEmpty : *entry.words;
  return ChunkDigest(entry.addr, entry.aux, entry.extra, body.data(),
                     body.size());
}

}  // namespace

void ChunkContentStore::Snoop(
    uint64_t digest, uint32_t addr, uint32_t aux, uint32_t extra,
    std::shared_ptr<const std::vector<uint8_t>> words,
    SharedReplyStats* stats) {
  const uint64_t body_bytes = words == nullptr ? 0 : words->size();
  if (body_bytes > capacity_bytes_) return;  // would displace everything
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(digest) != 0) return;  // already held
  while (bytes_ + body_bytes > capacity_bytes_ && !fifo_.empty()) {
    auto oldest = entries_.find(fifo_.front());
    fifo_.pop_front();
    if (oldest == entries_.end()) continue;
    bytes_ -= oldest->second.words->size();
    entries_.erase(oldest);
    if (stats != nullptr) ++stats->store_evictions;
  }
  StoredChunk entry;
  entry.addr = addr;
  entry.aux = aux;
  entry.extra = extra;
  entry.words = std::move(words);
  entries_.emplace(digest, std::move(entry));
  fifo_.push_back(digest);
  bytes_ += body_bytes;
  if (stats != nullptr) {
    ++stats->snooped_chunks;
    stats->snooped_bytes += body_bytes;
  }
}

bool ChunkContentStore::Lookup(uint64_t digest, StoredChunk* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

bool ChunkContentStore::VerifiedLookup(uint64_t digest, StoredChunk* out,
                                       bool* dropped_corrupt) {
  if (dropped_corrupt != nullptr) *dropped_corrupt = false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  if (EntryDigest(it->second) != digest) {
    // Corrupted body: erase so the fallback fetch re-snoops a clean copy.
    // The stale fifo id is tolerated by Snoop's displacement loop.
    bytes_ -= it->second.words == nullptr ? 0 : it->second.words->size();
    entries_.erase(it);
    if (dropped_corrupt != nullptr) *dropped_corrupt = true;
    return false;
  }
  *out = it->second;
  return true;
}

bool ChunkContentStore::CorruptBit(util::Rng& rng) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return false;
  auto it = entries_.begin();
  std::advance(it, static_cast<long>(rng.Below(entries_.size())));
  StoredChunk& entry = it->second;
  if (entry.words == nullptr || entry.words->empty()) return false;
  // Private corrupted copy: the body buffer is shared with every other
  // client's store, and a fault in this client's SRAM must not corrupt
  // theirs (it would also race their lookups).
  auto corrupted = std::make_shared<std::vector<uint8_t>>(*entry.words);
  const uint64_t bit = rng.Below(corrupted->size() * 8);
  (*corrupted)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  entry.words = std::move(corrupted);
  return true;
}

uint32_t ChunkContentStore::ScrubIntegrity(uint64_t* words_scanned) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const uint64_t body_bytes =
        it->second.words == nullptr ? 0 : it->second.words->size();
    if (words_scanned != nullptr) *words_scanned += body_bytes / 4;
    if (EntryDigest(it->second) == it->first) {
      ++it;
      continue;
    }
    bytes_ -= body_bytes;
    it = entries_.erase(it);
    ++dropped;
  }
  return dropped;
}

size_t ChunkContentStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t ChunkContentStore::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace sc::softcache
