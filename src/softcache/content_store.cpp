#include "softcache/content_store.h"

#include <utility>

namespace sc::softcache {

void ChunkContentStore::Snoop(
    uint64_t digest, uint32_t addr, uint32_t aux, uint32_t extra,
    std::shared_ptr<const std::vector<uint8_t>> words,
    SharedReplyStats* stats) {
  const uint64_t body_bytes = words == nullptr ? 0 : words->size();
  if (body_bytes > capacity_bytes_) return;  // would displace everything
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(digest) != 0) return;  // already held
  while (bytes_ + body_bytes > capacity_bytes_ && !fifo_.empty()) {
    auto oldest = entries_.find(fifo_.front());
    fifo_.pop_front();
    if (oldest == entries_.end()) continue;
    bytes_ -= oldest->second.words->size();
    entries_.erase(oldest);
    if (stats != nullptr) ++stats->store_evictions;
  }
  StoredChunk entry;
  entry.addr = addr;
  entry.aux = aux;
  entry.extra = extra;
  entry.words = std::move(words);
  entries_.emplace(digest, std::move(entry));
  fifo_.push_back(digest);
  bytes_ += body_bytes;
  if (stats != nullptr) {
    ++stats->snooped_chunks;
    stats->snooped_bytes += body_bytes;
  }
}

bool ChunkContentStore::Lookup(uint64_t digest, StoredChunk* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

size_t ChunkContentStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t ChunkContentStore::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace sc::softcache
