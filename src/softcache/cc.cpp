#include "softcache/cc.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "image/layout.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/log.h"

namespace sc::softcache {

using isa::Instr;
using isa::Opcode;

CacheController::CacheController(vm::Machine& machine, MemoryController& mc,
                                 net::Channel& channel, const SoftCacheConfig& config)
    : machine_(machine),
      mc_(mc),
      config_(config),
      session_(config.transport_factory
                   ? config.transport_factory(mc, channel)
                   : MakeMcTransport(mc, channel, config.fault),
               config.retry, &stats_.net, &stats_.session, MsgType::kTextWrite,
               // Starts at 1: the MC answers unparseable requests with seq 0,
               // which must never match.
               /*first_seq=*/1, config.client_id),
      // Miss-handling latency spread: one bucket per 512 cycles covers the
      // loopback round trip (~12k cycles) with room for retry storms; worse
      // misses clamp into the last bucket.
      miss_latency_(0, 65536, 128),
      fetch_counts_(256),
      // Flat-table sizing: typical translated blocks run well past 16 bytes
      // (body + exit slots), so tcache_bytes/16 covers the realistic resident
      // population (the table still grows for degenerate one-word blocks);
      // the cell region holds exactly one word per forward cell.
      block_tc_(config.tcache_bytes / 16),
      cell_for_orig_(config.forward_cell_bytes / 4) {
  SC_CHECK_EQ(config_.tcache_bytes % 4, 0u);
  SC_CHECK_GE(config_.tcache_bytes, 64u);
  // Conditional-branch patches must reach anywhere in the tcache (imm16
  // word offsets span +-128 KB).
  SC_CHECK_LE(config_.tcache_bytes, 128u * 1024) << "tcache exceeds branch reach";
  SC_CHECK_EQ(config_.forward_cell_bytes % 4, 0u);
  local_base_ = image::kLocalBase;
  cells_base_ = local_base_ + config_.tcache_bytes;
  cells_bytes_ = config_.forward_cell_bytes;
  SC_CHECK_LE(cells_base_ + cells_bytes_, image::kLocalLimit);
  session_.set_quiesce_hook([this] { QuiesceForRecovery(); });
  if (config_.shared_reply) {
    content_store_ =
        std::make_unique<ChunkContentStore>(config_.shared_store_bytes);
  }
  if (config_.integrity.enabled) {
    // One independent fault stream per client-side domain (integrity.h).
    inj_tcache_ = std::make_unique<MemFaultInjector>(config_.integrity.memfault,
                                                     FaultDomain::kTcache);
    inj_staged_ = std::make_unique<MemFaultInjector>(config_.integrity.memfault,
                                                     FaultDomain::kStaged);
    inj_store_ = std::make_unique<MemFaultInjector>(config_.integrity.memfault,
                                                    FaultDomain::kStore);
    inj_sb_ = std::make_unique<MemFaultInjector>(config_.integrity.memfault,
                                                 FaultDomain::kSuperblock);
    machine_.set_sb_integrity(true);
  }
}

void CacheController::Fail(const std::string& what) {
  machine_.RaiseFault("softcache: " + what);
}

void CacheController::Attach() {
  machine_.set_trap_handler(this);
  if (config_.restrict_exec) {
    machine_.SetExecRange(local_base_, local_limit());
  }
  const Resolution entry = ResolveEntry(machine_.pc());
  if (entry.block == nullptr) return;  // fault already raised
  machine_.set_pc(entry.tc_addr);
}

// ---------------------------------------------------------------------------
// Fetching and translation
// ---------------------------------------------------------------------------

namespace {

// Rebuilds a Chunk from its wire form: (addr, packed meta, extra, words).
// Shared by the plain-reply and batched-reply paths; the fallthrough /
// continuation target is reconstructed as the word after the terminator in
// the original program.
Chunk ChunkFromWire(uint32_t addr, uint32_t aux, uint32_t extra,
                    const uint8_t* words, uint32_t nwords) {
  Chunk chunk;
  chunk.orig_addr = addr;
  chunk.exit = UnpackExit(aux);
  chunk.jump_folded = UnpackJumpFolded(aux);
  chunk.entry_word = UnpackEntryWord(aux);
  chunk.taken_target = extra;
  chunk.words.resize(nwords);
  if (nwords != 0) std::memcpy(chunk.words.data(), words, nwords * 4u);
  if (chunk.exit == ExitKind::kBranch || chunk.exit == ExitKind::kCall ||
      chunk.exit == ExitKind::kComputed) {
    chunk.fall_target = chunk.orig_addr + chunk.size_bytes();
  }
  return chunk;
}

}  // namespace

util::Result<Chunk> CacheController::FetchChunk(uint32_t orig_pc) {
  OBS_SPAN("cc", "fetch", "orig", orig_pc);
  pending_flow_id_ = 0;
  current_rid_ = 0;
  // Per-chunk heat: how often this client demanded each chunk start.
  if (uint32_t* heat = fetch_counts_.Find(orig_pc)) {
    ++*heat;
  } else {
    fetch_counts_.Put(orig_pc, 1);
  }
  // A staged prefetched chunk answers the miss with zero round trips.
  Chunk staged;
  if (TakeStaged(orig_pc, &staged)) {
    ++stats_.prefetch.hits;
    OBS_INSTANT("prefetch", "hit", "orig", orig_pc);
    return staged;
  }

  Request request;
  // An opted-in client asks with kChunkSharedRequest, allowing the server to
  // answer with a payload-less digest when the body already crossed the
  // broadcast medium. The frame is otherwise identical to kChunkRequest.
  request.type = config_.shared_reply ? MsgType::kChunkSharedRequest
                                      : MsgType::kChunkRequest;
  request.addr = orig_pc;
  if (config_.prefetch.policy != PrefetchPolicy::kOff) {
    // The hint rides in the otherwise-unused length field; with the policy
    // nibble zero (kOff) the request is byte-identical to the seed protocol.
    request.length = PackPrefetchHints(
        PrefetchHints{static_cast<uint32_t>(config_.prefetch.policy),
                      config_.prefetch.depth, config_.prefetch.max_chunks,
                      config_.prefetch.byte_budget});
  }

  // Causal tracing: stamp a rolling 4-bit request id into the frame's spare
  // type-byte nibble and open a flow arrow from this fetch span. Only while
  // the lane is actively recording — with tracing off the rid stays 0 and
  // the wire bytes are byte-identical to the seed protocol.
  if (obs::Tracer* t = obs::tracer(); t != nullptr && t->recording()) {
    current_rid_ = next_rid_;
    next_rid_ = next_rid_ >= kRidMask ? 1 : next_rid_ + 1;
    request.rid = current_rid_;
    pending_flow_id_ = FlowId(config_.client_id, current_rid_);
    t->FlowStart("flow", "miss", pending_flow_id_);
  }

  uint64_t link_cycles = 0;
  auto reply = session_.Call(std::move(request), &link_cycles);
  Charge(link_cycles);
  Charge(config_.cost.mc_service_cycles);
  ++stats_.prefetch.demand_fetches;

  if (!reply.ok()) return reply.error();
  if (reply->type == MsgType::kError) {
    return util::Error{"MC error: " + std::string(reply->payload.begin(),
                                                  reply->payload.end())};
  }
  if (reply->type == MsgType::kChunkDigestReply) {
    // The body crossed the medium earlier and we (should have) snooped it.
    ++stats_.shared.digest_replies;
    ChunkContentStore::StoredChunk stored;
    bool store_hit = false;
    if (content_store_ != nullptr) {
      if (config_.integrity.enabled) {
        // Verify-on-use: a corrupted snooped body reads as a miss (and is
        // dropped), so the full-body fallback heals it — corrupted words
        // never reach the install path.
        bool dropped = false;
        store_hit = content_store_->VerifiedLookup(DigestFromReply(*reply),
                                                   &stored, &dropped);
        if (dropped) {
          ++stats_.integrity.corruptions_detected;
          ++stats_.integrity.store_drops;
          OBS_INSTANT("cc", "store_corrupt", "orig", orig_pc);
        }
      } else {
        store_hit = content_store_->Lookup(DigestFromReply(*reply), &stored);
      }
    }
    if (store_hit &&
        (orig_pc < stored.addr ||
         orig_pc >= stored.addr + static_cast<uint32_t>(stored.words->size()))) {
      // The digest binds the chunk's address, so a digest that resolves to a
      // body NOT covering the demanded pc can only come from a corrupted or
      // hostile reply. (Coverage, not equality: ARM whole-procedure chunks
      // legitimately start at the symbol, below a mid-procedure demand.)
      // Installing it would pollute the tcache at the wrong address and
      // never satisfy this miss; treat it as a store miss and refetch
      // ground truth through the full-body path instead.
      if (config_.integrity.enabled) {
        ++stats_.integrity.corruptions_detected;
      }
      OBS_INSTANT("cc", "store_addr_mismatch", "orig", orig_pc);
      store_hit = false;
    }
    if (store_hit) {
      ++stats_.shared.digest_hits;
      stats_.shared.bytes_saved += stored.words->size();
      OBS_INSTANT("shared", "digest_hit", "orig", orig_pc);
      return ChunkFromWire(stored.addr, stored.aux, stored.extra,
                           stored.words->data(),
                           static_cast<uint32_t>(stored.words->size() / 4));
    }
    // The bounded store displaced the body (or the snoop never reached us):
    // fall back to a plain kChunkRequest, which always carries a full body.
    ++stats_.shared.digest_misses;
    OBS_INSTANT("shared", "digest_miss", "orig", orig_pc);
    return FetchChunkFullBody(orig_pc);
  }
  if (reply->type == MsgType::kChunkBatchReply) {
    auto views = ParseBatchPayload(reply->payload, reply->aux);
    if (!views.ok()) return views.error();
    if (views->empty()) return util::Error{"empty batch reply"};
    ++stats_.prefetch.batches;
    // The demanded chunk leads the batch; the rest are speculative and go to
    // the staging buffer.
    const BatchChunkView& head = (*views)[0];
    if (orig_pc < head.addr ||
        orig_pc >= head.addr + static_cast<uint32_t>(head.nwords) * 4) {
      // A legitimate batch always leads with the chunk covering the demanded
      // pc (ARM procedure chunks start at the symbol, which may sit below a
      // mid-procedure demand); anything else is a corrupted or hostile reply
      // and must not reach install.
      return util::Error{"batch head addr mismatch"};
    }
    Chunk chunk =
        ChunkFromWire(head.addr, head.aux, head.extra, head.words, head.nwords);
    for (size_t i = 1; i < views->size(); ++i) {
      const BatchChunkView& view = (*views)[i];
      ++stats_.prefetch.chunks_prefetched;
      StageChunk(
          ChunkFromWire(view.addr, view.aux, view.extra, view.words, view.nwords));
    }
    return chunk;
  }
  if (reply->type != MsgType::kChunkReply || reply->payload.size() % 4 != 0) {
    return util::Error{"malformed chunk reply"};
  }
  return ChunkFromWire(reply->addr, reply->aux, reply->extra,
                       reply->payload.data(),
                       static_cast<uint32_t>(reply->payload.size() / 4));
}

util::Result<Chunk> CacheController::FetchChunkFullBody(uint32_t orig_pc) {
  Request request;
  request.type = MsgType::kChunkRequest;
  request.addr = orig_pc;
  // The digest-miss fallback is the second leg of the same miss: reuse the
  // rid so the server-side spans of both RPCs join the same flow arrow.
  request.rid = current_rid_;
  uint64_t link_cycles = 0;
  auto reply = session_.Call(std::move(request), &link_cycles);
  Charge(link_cycles);
  Charge(config_.cost.mc_service_cycles);
  ++stats_.prefetch.demand_fetches;
  if (!reply.ok()) return reply.error();
  if (reply->type == MsgType::kError) {
    return util::Error{"MC error: " + std::string(reply->payload.begin(),
                                                  reply->payload.end())};
  }
  if (reply->type != MsgType::kChunkReply || reply->payload.size() % 4 != 0) {
    return util::Error{"malformed chunk reply"};
  }
  return ChunkFromWire(reply->addr, reply->aux, reply->extra,
                       reply->payload.data(),
                       static_cast<uint32_t>(reply->payload.size() / 4));
}

// ---------------------------------------------------------------------------
// Prefetch staging
// ---------------------------------------------------------------------------

uint32_t CacheController::StagedCost(const Chunk& chunk) {
  return kBatchChunkHeaderBytes + static_cast<uint32_t>(chunk.words.size()) * 4;
}

void CacheController::UnstageAt(uint32_t orig_addr) {
  const auto it = staged_.find(orig_addr);
  if (it == staged_.end()) return;
  staged_bytes_ -= StagedCost(it->second);
  staged_.erase(it);
  staged_digest_.erase(orig_addr);
  for (auto fifo = staged_fifo_.begin(); fifo != staged_fifo_.end(); ++fifo) {
    if (*fifo == orig_addr) {
      staged_fifo_.erase(fifo);
      break;
    }
  }
}

void CacheController::StageChunk(Chunk&& chunk) {
  const uint32_t cost = StagedCost(chunk);
  // Useless speculation: already translated, already staged, or bigger than
  // the whole staging buffer.
  if (FindResident(chunk.orig_addr) != nullptr ||
      staged_.count(chunk.orig_addr) != 0 ||
      cost > config_.prefetch.staging_bytes) {
    ++stats_.prefetch.dropped;
    OBS_INSTANT("prefetch", "drop", "orig", chunk.orig_addr);
    return;
  }
  while (staged_bytes_ + cost > config_.prefetch.staging_bytes) {
    SC_CHECK(!staged_fifo_.empty());
    OBS_INSTANT("prefetch", "evict_staged", "orig", staged_fifo_.front());
    UnstageAt(staged_fifo_.front());
    ++stats_.prefetch.evictions;
  }
  OBS_INSTANT("prefetch", "stage", "orig", chunk.orig_addr, "bytes", cost);
  staged_fifo_.push_back(chunk.orig_addr);
  staged_bytes_ += cost;
  if (config_.integrity.enabled) {
    staged_digest_[chunk.orig_addr] = StagedDigest(chunk);
  }
  staged_.emplace(chunk.orig_addr, std::move(chunk));
  ++stats_.prefetch.staged;
}

bool CacheController::TakeStaged(uint32_t orig_pc, Chunk* out) {
  auto it = staged_.find(orig_pc);
  if (it == staged_.end() && config_.style == Style::kArm && !staged_.empty()) {
    // ARM style: the demand may land inside a staged procedure.
    auto below = staged_.upper_bound(orig_pc);
    if (below != staged_.begin()) {
      --below;
      const Chunk& chunk = below->second;
      if (orig_pc >= chunk.orig_addr &&
          orig_pc < chunk.orig_addr + chunk.orig_span_bytes()) {
        it = below;
      }
    }
  }
  if (it == staged_.end()) return false;
  if (config_.integrity.enabled) {
    // Verify-on-use: corrupted staged words must never reach the install
    // path. A mismatch discards the chunk and the miss goes over the wire.
    const auto dig = staged_digest_.find(it->first);
    if (dig == staged_digest_.end() ||
        dig->second != StagedDigest(it->second)) {
      ++stats_.integrity.corruptions_detected;
      ++stats_.integrity.staged_drops;
      OBS_INSTANT("cc", "staged_corrupt", "orig", it->first);
      UnstageAt(it->first);
      return false;
    }
  }
  *out = std::move(it->second);
  out->entry_word = (orig_pc - out->orig_addr) / 4;
  const uint32_t key = it->first;
  staged_.erase(it);
  staged_bytes_ -= StagedCost(*out);
  for (auto fifo = staged_fifo_.begin(); fifo != staged_fifo_.end(); ++fifo) {
    if (*fifo == key) {
      staged_fifo_.erase(fifo);
      break;
    }
  }
  return true;
}

void CacheController::QuiesceForRecovery() {
  while (!staged_fifo_.empty()) {
    OBS_INSTANT("prefetch", "invalidate", "orig", staged_fifo_.front());
    UnstageAt(staged_fifo_.front());
    ++stats_.prefetch.invalidated;
  }
}

bool CacheController::SyncSession() {
  uint64_t link_cycles = 0;
  auto status = session_.Synchronize(&link_cycles);
  Charge(link_cycles);
  if (!status.ok()) {
    Fail(status.error().message);
    return false;
  }
  return true;
}

void CacheController::DropStagedRange(uint32_t addr, uint32_t len) {
  std::vector<uint32_t> victims;
  for (const auto& [start, chunk] : staged_) {
    if (start < addr + len && start + chunk.orig_span_bytes() > addr) {
      victims.push_back(start);
    }
  }
  for (uint32_t start : victims) {
    OBS_INSTANT("prefetch", "invalidate", "orig", start);
    UnstageAt(start);
    ++stats_.prefetch.invalidated;
  }
}

CacheController::Block* CacheController::Translate(uint32_t orig_pc) {
  OBS_SPAN("cc", "translate", "orig", orig_pc);
  auto chunk = FetchChunk(orig_pc);
  if (!chunk.ok()) {
    Fail(chunk.error().message);
    return nullptr;
  }
  Block* block = nullptr;
  {
    OBS_SPAN("cc", "install", "orig", chunk->orig_addr);
    // Close the causal arrow opened at FetchChunk: the flow ends at the
    // install slice that makes the missed chunk executable.
    if (pending_flow_id_ != 0) {
      if (obs::Tracer* t = obs::tracer(); t != nullptr && t->recording()) {
        t->FlowEnd("flow", "miss", pending_flow_id_);
      }
      pending_flow_id_ = 0;
    }
    block = config_.style == Style::kSparc ? InstallSparc(*chunk)
                                           : InstallArm(*chunk);
  }
  if (block != nullptr) {
    ++stats_.blocks_translated;
    stats_.words_installed += block->tc_bytes / 4;
    Charge(static_cast<uint64_t>(config_.cost.install_cycles_per_word) *
           (block->tc_bytes / 4));
    occupancy_.Add(machine_.cycles(), live_bytes_);
    if (config_.integrity.enabled) {
      // Stamp after the last install-time write so the digest covers the
      // final bytes; later patches restamp through RefreshDigestAt.
      block->digest = BlockDigest(*block);
      if (pending_heal_.erase(block->orig_addr) != 0) {
        ++stats_.integrity.heals;
        OBS_INSTANT("cc", "heal", "orig", block->orig_addr);
      }
      if (poisoned_origs_.count(block->orig_addr) != 0) {
        // Degradation ladder, rung 1: this chunk keeps getting corrupted;
        // run it per-instruction under the threaded engine from now on.
        machine_.PoisonCodeRange(block->tc_addr, block->tc_bytes);
        block->poisoned = true;
        ++stats_.integrity.poisoned_blocks;
        OBS_INSTANT("cc", "poison", "orig", block->orig_addr);
      }
    }
  }
  return block;
}

CacheController::Block* CacheController::InstallSparc(const Chunk& chunk) {
  const uint32_t body_words = static_cast<uint32_t>(chunk.words.size());
  uint32_t slots = 0;
  switch (chunk.exit) {
    case ExitKind::kNone: slots = 0; break;
    case ExitKind::kFallthrough: slots = 1; break;
    case ExitKind::kComputed: slots = 1; break;
    case ExitKind::kBranch: slots = 2; break;
    case ExitKind::kCall: slots = 2; break;
  }
  // Trace chunking: every conditional branch that is not the terminator is
  // a mid-chunk side exit needing its own miss slot.
  const auto is_mid_branch = [&chunk, body_words](uint32_t i) {
    if (!isa::IsConditionalBranch(isa::Decode(chunk.words[i]).op)) return false;
    return !(i == body_words - 1 && chunk.exit == ExitKind::kBranch);
  };
  uint32_t mid_count = 0;
  for (uint32_t i = 0; i < body_words; ++i) {
    if (is_mid_branch(i)) ++mid_count;
  }
  const uint32_t total_bytes = (body_words + slots + mid_count) * 4;
  const uint32_t tc = Allocate(total_bytes);
  if (tc == 0) return nullptr;

  Block block;
  block.id = next_block_id_++;
  block.orig_addr = chunk.orig_addr;
  block.orig_span = chunk.orig_span_bytes();
  block.tc_addr = tc;
  block.tc_bytes = total_bytes;
  block.body_words = body_words;
  block.exit = chunk.exit;
  block.taken_orig = chunk.taken_target;
  block.fall_orig = chunk.fall_target;
  block.slot_words = slots + mid_count;
  if (slots >= 1) block.slot_a = tc + body_words * 4;
  if (slots >= 2) block.slot_b = tc + (body_words + 1) * 4;
  uint32_t next_mid_slot = tc + (body_words + slots) * 4;

  // Install body words; the terminator (last word) is rewritten to point at
  // the exit slots, and mid-chunk side-exit branches at their miss slots.
  for (uint32_t i = 0; i < body_words; ++i) {
    uint32_t word = chunk.words[i];
    const uint32_t addr = tc + i * 4;
    if (is_mid_branch(i)) {
      const uint32_t orig_pc = chunk.orig_addr + i * 4;
      Instr in = isa::Decode(word);
      const uint32_t taken_orig = isa::BranchTarget(orig_pc, in.imm);
      const uint32_t slot = next_mid_slot;
      next_mid_slot += 4;
      in.imm = isa::OffsetFor(addr, slot);
      machine_.WriteWord(addr, isa::Encode(in));
      const uint32_t stub = NewStub(StubInfo{true, taken_orig, addr,
                                             PatchKind::kBranch16, slot, block.id});
      WriteStubWord(slot, stub);
      block.own_stubs.emplace_back(stub, stubs_[stub].generation);
      block.mid_slots.emplace_back(slot, taken_orig);
      continue;
    }
    if (i == body_words - 1) {
      switch (chunk.exit) {
        case ExitKind::kBranch: {
          Instr in = isa::Decode(word);
          in.imm = isa::OffsetFor(addr, block.slot_b);
          word = isa::Encode(in);
          break;
        }
        case ExitKind::kCall: {
          Instr in = isa::Decode(word);
          SC_CHECK(in.op == Opcode::kJal);
          in.imm = isa::OffsetFor(addr, block.slot_b);
          word = isa::Encode(in);
          break;
        }
        case ExitKind::kComputed: {
          Instr in = isa::Decode(word);
          SC_CHECK(in.op == Opcode::kJalr);
          in.op = Opcode::kTcJalr;
          word = isa::Encode(in);
          break;
        }
        default:
          break;  // kNone keeps the return/halt; kFallthrough has no terminator
      }
    }
    machine_.WriteWord(addr, word);
  }

  // Exit slot A: fallthrough / continuation / folded-jump target.
  if (block.slot_a != 0) {
    const uint32_t target = chunk.exit == ExitKind::kFallthrough
                                ? chunk.taken_target
                                : chunk.fall_target;
    const uint32_t stub = NewStub(StubInfo{true, target, block.slot_a,
                                           PatchKind::kSlot, block.slot_a, block.id});
    WriteStubWord(block.slot_a, stub);
    block.own_stubs.emplace_back(stub, stubs_[stub].generation);
  }
  // Exit slot B: taken target / callee.
  if (block.slot_b != 0) {
    const uint32_t term_addr = tc + (body_words - 1) * 4;
    const PatchKind kind = chunk.exit == ExitKind::kCall ? PatchKind::kJump26
                                                         : PatchKind::kBranch16;
    const uint32_t stub = NewStub(StubInfo{true, chunk.taken_target, term_addr,
                                           kind, block.slot_b, block.id});
    WriteStubWord(block.slot_b, stub);
    block.own_stubs.emplace_back(stub, stubs_[stub].generation);
  }

  const uint32_t tc_addr = block.tc_addr;
  const uint64_t id = block.id;
  stats_.extra_words_live += slots + mid_count;
  by_orig_[block.orig_addr] = id;
  block_tc_.Put(id, tc_addr);
  auto [it, inserted] = blocks_.emplace(tc_addr, std::move(block));
  SC_CHECK(inserted);
  return &it->second;
}

CacheController::Block* CacheController::InstallArm(const Chunk& chunk) {
  const uint32_t orig_words = static_cast<uint32_t>(chunk.words.size());
  // Pass 1: classify and size. Every JAL call site expands to 3 words
  // (lui ra / ori ra / j) plus one appended exit slot.
  std::vector<uint32_t> index_map(orig_words, 0);
  uint32_t tc_words = 0;
  uint32_t call_sites = 0;
  for (uint32_t i = 0; i < orig_words; ++i) {
    index_map[i] = tc_words;
    const uint32_t orig_pc = chunk.orig_addr + i * 4;
    const Instr in = isa::Decode(chunk.words[i]);
    switch (in.op) {
      case Opcode::kJal:
        tc_words += 3;
        ++call_sites;
        break;
      case Opcode::kJalr:
        if (!isa::IsReturn(chunk.words[i])) {
          Fail("ARM-style prototype does not support indirect jumps");
          return nullptr;
        }
        tc_words += 1;
        break;
      case Opcode::kIllegal:
      case Opcode::kTcMiss:
      case Opcode::kTcJalr:
        Fail("illegal instruction in procedure chunk");
        return nullptr;
      default:
        if (isa::IsConditionalBranch(in.op) || in.op == Opcode::kJ) {
          const uint32_t target = isa::BranchTarget(orig_pc, in.imm);
          if (target < chunk.orig_addr ||
              target >= chunk.orig_addr + orig_words * 4) {
            Fail("procedure chunk contains a branch that escapes the procedure");
            return nullptr;
          }
        }
        tc_words += 1;
        break;
    }
  }
  const uint32_t body_tc_words = tc_words;
  const uint32_t total_bytes = (body_tc_words + call_sites) * 4;
  const uint32_t tc = Allocate(total_bytes);
  if (tc == 0) return nullptr;

  Block block;
  block.id = next_block_id_++;
  block.orig_addr = chunk.orig_addr;
  block.orig_span = orig_words * 4;
  block.tc_addr = tc;
  block.tc_bytes = total_bytes;
  block.body_words = body_tc_words;
  block.slot_words = call_sites;
  block.exit = ExitKind::kNone;
  block.index_map = std::move(index_map);

  // Register the block before emission so ForwardCell can link cells to it.
  const uint64_t id = block.id;
  by_orig_[block.orig_addr] = id;
  block_tc_.Put(id, tc);
  auto [map_it, inserted] = blocks_.emplace(tc, std::move(block));
  SC_CHECK(inserted);
  Block& blk = map_it->second;
  // Accounted here (not after emission) so a mid-emission rollback through
  // EvictBlock stays symmetric.
  stats_.extra_words_live += blk.slot_words;

  // Pass 2: emit.
  uint32_t next_slot = tc + body_tc_words * 4;
  for (uint32_t i = 0; i < orig_words; ++i) {
    const uint32_t orig_pc = chunk.orig_addr + i * 4;
    const uint32_t tc_pc = tc + blk.index_map[i] * 4;
    const uint32_t word = chunk.words[i];
    const Instr in = isa::Decode(word);

    if (isa::IsConditionalBranch(in.op) || in.op == Opcode::kJ) {
      // Internal control transfer (validated in pass 1): remap the offset
      // through the index map.
      const uint32_t target_orig = isa::BranchTarget(orig_pc, in.imm);
      const uint32_t target_tc = tc + blk.index_map[(target_orig - chunk.orig_addr) / 4] * 4;
      Instr patched = in;
      patched.imm = isa::OffsetFor(tc_pc, target_tc);
      machine_.WriteWord(tc_pc, isa::Encode(patched));
      continue;
    }
    if (in.op == Opcode::kJal) {
      // Call expansion: route the return address through a permanent cell.
      const uint32_t callee_orig = isa::BranchTarget(orig_pc, in.imm);
      const uint32_t cont_orig = orig_pc + 4;
      const uint32_t cont_tc = tc + blk.index_map[(cont_orig - chunk.orig_addr) / 4] * 4;
      const uint32_t cell = ForwardCell(cont_orig, cont_tc, &blk);
      if (cell == 0) {
        // Forward-cell region exhausted mid-emission: the block is already
        // registered (pass 2 needs ForwardCell to link cells to it), so
        // unwind the registration, the stubs and cell edges created so far.
        // EvictBlock does exactly that unwinding; it just is not an
        // eviction, so take its statistics back.
        EvictBlock(blk.id);
        --stats_.evictions;
        stats_.eviction_timeline.RemoveLast(machine_.cycles());
        return nullptr;
      }
      machine_.WriteWord(tc_pc, isa::EncI(Opcode::kLui, isa::kRa, 0,
                                          static_cast<int32_t>(cell >> 16)));
      machine_.WriteWord(tc_pc + 4, isa::EncI(Opcode::kOri, isa::kRa, isa::kRa,
                                              static_cast<int32_t>(cell & 0xffff)));
      const uint32_t jump_addr = tc_pc + 8;
      const uint32_t slot = next_slot;
      next_slot += 4;
      if (callee_orig == chunk.orig_addr) {
        // Self-recursion: the callee is this very procedure — link directly.
        machine_.WriteWord(jump_addr, isa::EncJ(Opcode::kJ, isa::OffsetFor(jump_addr, tc)));
        blk.in_edges.push_back(InEdge{blk.id, jump_addr, PatchKind::kJump26,
                                      slot, callee_orig});
        blk.out_edges.emplace_back(blk.id, jump_addr);
        // The slot stays dead until the self-edge is unlinked (never — the
        // block dies with it), but keep the layout uniform.
        machine_.WriteWord(slot, isa::EncNop());
      } else {
        const uint32_t stub = NewStub(StubInfo{true, callee_orig, jump_addr,
                                               PatchKind::kJump26, slot, blk.id});
        WriteStubWord(slot, stub);
        machine_.WriteWord(jump_addr, isa::EncJ(Opcode::kJ, isa::OffsetFor(jump_addr, slot)));
        blk.own_stubs.emplace_back(stub, stubs_[stub].generation);
      }
      continue;
    }
    machine_.WriteWord(tc_pc, word);
  }
  // Each call site also adds two ra-setup words beyond the original code.
  return &blk;
}

CacheController::Block* CacheController::FindResident(uint32_t orig_pc,
                                                      uint32_t* tc_addr) {
  // Exact hit on a block start.
  const auto exact = by_orig_.find(orig_pc);
  if (exact != by_orig_.end()) {
    Block* block = BlockById(exact->second);
    SC_CHECK(block != nullptr);
    if (tc_addr != nullptr) *tc_addr = block->tc_addr;
    return block;
  }
  // ARM style: the address may be interior to a resident procedure.
  if (config_.style == Style::kArm && !by_orig_.empty()) {
    auto it = by_orig_.upper_bound(orig_pc);
    if (it != by_orig_.begin()) {
      --it;
      Block* block = BlockById(it->second);
      SC_CHECK(block != nullptr);
      if (orig_pc >= block->orig_addr &&
          orig_pc < block->orig_addr + block->orig_span) {
        if (tc_addr != nullptr) {
          *tc_addr = block->tc_addr +
                     block->index_map[(orig_pc - block->orig_addr) / 4] * 4;
        }
        return block;
      }
    }
  }
  return nullptr;
}

CacheController::Resolution CacheController::ResolveEntry(uint32_t orig_pc) {
  Resolution res;
  if (Block* resident = FindResident(orig_pc, &res.tc_addr)) {
    // Verify-on-use: the block's bytes must still match their install
    // stamp before control is allowed to enter them.
    if (!config_.integrity.enabled || VerifyResident(resident)) {
      res.block = resident;
      return res;
    }
    // The corrupted copy was quarantined; unless the heal budget died with
    // it, fall through to the miss path and refetch a pristine copy.
    res.tc_addr = 0;
    if (integrity_fatal_) return res;  // fault raised
  }
  // Miss: fetch and translate.
  Block* block = Translate(orig_pc);
  if (block == nullptr) return res;  // fault raised
  res.block = block;
  res.translated = true;
  if (config_.style == Style::kArm) {
    res.tc_addr =
        block->tc_addr + block->index_map[(orig_pc - block->orig_addr) / 4] * 4;
  } else {
    res.tc_addr = block->tc_addr;
  }
  return res;
}

// ---------------------------------------------------------------------------
// Allocation and eviction
// ---------------------------------------------------------------------------

uint32_t CacheController::Allocate(uint32_t bytes) {
  SC_CHECK_EQ(bytes % 4, 0u);
  if (bytes > config_.tcache_bytes) {
    std::ostringstream msg;
    msg << "chunk of " << bytes << " bytes exceeds tcache of "
        << config_.tcache_bytes << " bytes";
    Fail(msg.str());
    return 0;
  }
  // Flush-all: when the bump allocator runs out, drop everything unpinned
  // and restart; the ring logic below then only has pinned blocks to skip.
  if (config_.evict == EvictPolicy::kFlushAll &&
      alloc_cursor_ + bytes > config_.tcache_bytes) {
    FlushAll();
  }
  // FIFO ring: wrap the cursor, then evict every block overlapping the
  // allocation window. Pinned blocks are skipped: the window restarts just
  // past them.
  int wraps = 0;
  for (;;) {
    if (alloc_cursor_ + bytes > config_.tcache_bytes) {
      alloc_cursor_ = 0;
      if (++wraps > 2) {
        Fail("tcache allocation failed: pinned blocks leave no room");
        return 0;
      }
    }
    const uint32_t lo = local_base_ + alloc_cursor_;
    const uint32_t hi = lo + bytes;
    bool restarted = false;
    for (;;) {
      // Find any block overlapping [lo, hi).
      auto it = blocks_.lower_bound(lo);
      if (it != blocks_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.tc_addr + prev->second.tc_bytes > lo) it = prev;
      }
      if (it == blocks_.end() || it->second.tc_addr >= hi) break;
      if (it->second.pinned) {
        // Cannot evict: move the allocation window past the pinned block.
        alloc_cursor_ = it->second.tc_addr + it->second.tc_bytes - local_base_;
        restarted = true;
        break;
      }
      EvictBlock(it->second.id);
    }
    if (restarted) continue;
    alloc_cursor_ += bytes;
    live_bytes_ += bytes;
    stats_.tcache_bytes_used_peak =
        std::max(stats_.tcache_bytes_used_peak, live_bytes_);
    return lo;
  }
}

bool CacheController::Pin(uint32_t orig_addr) {
  const Resolution res = ResolveEntry(orig_addr);
  if (res.block == nullptr) return false;
  res.block->pinned = true;
  return true;
}

void CacheController::Unpin(uint32_t orig_addr) {
  // Symmetric with Pin: resolve ARM-interior addresses to the containing
  // procedure, so Pin(p + 8); Unpin(p + 8); really unpins the block.
  Block* block = FindResident(orig_addr);
  if (block == nullptr) return;
  block->pinned = false;
}

uint64_t CacheController::pinned_bytes() const {
  uint64_t total = 0;
  for (const auto& [tc, block] : blocks_) {
    if (block.pinned) total += block.tc_bytes;
  }
  return total;
}

void CacheController::EvictBlock(uint64_t block_id) {
  const uint32_t* tc_ptr = block_tc_.Find(block_id);
  SC_CHECK(tc_ptr != nullptr);
  const uint32_t tc_victim = *tc_ptr;
  Block block = std::move(blocks_.at(tc_victim));
  blocks_.erase(tc_victim);
  block_tc_.Erase(block_id);
  by_orig_.erase(block.orig_addr);

  // Unlink incoming edges: every branch/jump/cell that points here goes back
  // to a miss stub.
  for (const InEdge& edge : block.in_edges) {
    if (edge.from_block == block.id) continue;  // self-edge dies with us
    UnlinkEdge(edge);
  }
  // Remove our outgoing edges from the targets' incoming lists.
  for (const auto& [target_id, patch_addr] : block.out_edges) {
    if (target_id == block.id) continue;
    Block* target = BlockById(target_id);
    if (target == nullptr) continue;  // target already evicted
    auto& edges = target->in_edges;
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [&, pa = patch_addr](const InEdge& e) {
                                 return e.patch_addr == pa;
                               }),
                edges.end());
  }
  // Free stubs whose TCMISS words lived inside this block.
  for (const auto& [stub_id, generation] : block.own_stubs) {
    if (stubs_[stub_id].live && stubs_[stub_id].generation == generation) {
      FreeStub(stub_id);
    }
  }
  // SPARC style: in-flight return addresses may point into this block.
  if (config_.style == Style::kSparc) {
    FixStaleReturnAddresses(block);
  }
  if (block.poisoned) {
    machine_.UnpoisonCodeRange(block.tc_addr, block.tc_bytes);
  }
  live_bytes_ -= block.tc_bytes;
  stats_.extra_words_live -= block.slot_words;
  ++stats_.evictions;
  stats_.eviction_timeline.Add(machine_.cycles());
  occupancy_.Add(machine_.cycles(), live_bytes_);
  OBS_INSTANT("cc", "evict", "orig", block.orig_addr, "bytes", block.tc_bytes);
  // The tcache range is dead, not merely rewritten: drop any superblocks and
  // decode-cache entries built from it now rather than waiting for the next
  // install to overwrite the words.
  machine_.InvalidateCode(block.tc_addr, block.tc_bytes);

#ifdef SOFTCACHE_DEBUG_SCAN
  {
    const uint32_t lo = block.tc_addr, hi = block.tc_addr + block.tc_bytes;
    for (int r = 0; r < 32; ++r) {
      const uint32_t v = machine_.reg(static_cast<uint8_t>(r));
      if (v >= lo && v < hi) {
        fprintf(stderr, "[scan] reg %s holds 0x%x into evicted block %llu\n",
                isa::RegName(static_cast<uint8_t>(r)), v,
                (unsigned long long)block.id);
      }
    }
    for (uint32_t a = machine_.reg(isa::kSp) & ~3u; a < image::kStackTop; a += 4) {
      const uint32_t v = machine_.ReadWord(a);
      if (v >= lo && v < hi) {
        fprintf(stderr, "[scan] stack[0x%x] holds 0x%x into evicted block %llu (sp=0x%x fp=0x%x)\n",
                a, v, (unsigned long long)block.id, machine_.reg(isa::kSp),
                machine_.reg(isa::kFp));
      }
    }
  }
#endif
}

void CacheController::FlushAll() {
  OBS_SPAN("cc", "flush_all");
  ++stats_.flushes;
  std::vector<uint64_t> victims;
  for (const auto& [tc, block] : blocks_) {
    if (!block.pinned) victims.push_back(block.id);
  }
  for (uint64_t id : victims) EvictBlock(id);
  alloc_cursor_ = 0;
  SC_CHECK_EQ(live_bytes_, pinned_bytes());
}

// ---------------------------------------------------------------------------
// Stubs, cells and patching
// ---------------------------------------------------------------------------

uint32_t CacheController::NewStub(const StubInfo& info) {
  uint32_t id;
  if (!free_stub_ids_.empty()) {
    id = free_stub_ids_.back();
    free_stub_ids_.pop_back();
    stubs_[id] = info;
  } else {
    id = static_cast<uint32_t>(stubs_.size());
    stubs_.push_back(info);
  }
  stubs_[id].live = true;
  stubs_[id].generation = ++stub_generation_;
  return id;
}

void CacheController::FreeStub(uint32_t stub_id) {
  SC_CHECK(stubs_.at(stub_id).live);
  stubs_[stub_id].live = false;
  free_stub_ids_.push_back(stub_id);
}

void CacheController::WriteStubWord(uint32_t addr, uint32_t stub_id) {
  machine_.WriteWord(addr, isa::EncTcMiss(stub_id));
  RefreshDigestAt(addr);
}

void CacheController::LinkEdge(const StubInfo& stub, Block& target,
                               uint32_t target_tc) {
  switch (stub.kind) {
    case PatchKind::kBranch16: {
      Instr in = isa::Decode(machine_.ReadWord(stub.patch_addr));
      in.imm = isa::OffsetFor(stub.patch_addr, target_tc);
      SC_CHECK(isa::FitsImm16(in.imm)) << "branch patch out of reach";
      machine_.WriteWord(stub.patch_addr, isa::Encode(in));
      break;
    }
    case PatchKind::kJump26: {
      Instr in = isa::Decode(machine_.ReadWord(stub.patch_addr));
      in.imm = isa::OffsetFor(stub.patch_addr, target_tc);
      machine_.WriteWord(stub.patch_addr, isa::Encode(in));
      break;
    }
    case PatchKind::kSlot:
      machine_.WriteWord(stub.patch_addr,
                         isa::EncJ(Opcode::kJ, isa::OffsetFor(stub.patch_addr, target_tc)));
      break;
  }
  ++stats_.patches_applied;
  RefreshDigestAt(stub.patch_addr);
  OBS_INSTANT("cc", "patch", "addr", stub.patch_addr, "target", target_tc);
  target.in_edges.push_back(InEdge{stub.from_block, stub.patch_addr, stub.kind,
                                   stub.miss_slot, stub.target_orig});
  if (stub.from_block != 0) {
    Block* source = BlockById(stub.from_block);
    SC_CHECK(source != nullptr);
    source->out_edges.emplace_back(target.id, stub.patch_addr);
  }
}

void CacheController::UnlinkEdge(const InEdge& edge) {
  const uint32_t stub = NewStub(StubInfo{true, edge.target_orig, edge.patch_addr,
                                         edge.kind, edge.miss_slot, edge.from_block});
  WriteStubWord(edge.miss_slot, stub);
  if (edge.kind != PatchKind::kSlot) {
    // Re-point the branch/jump at its own miss slot.
    Instr in = isa::Decode(machine_.ReadWord(edge.patch_addr));
    in.imm = isa::OffsetFor(edge.patch_addr, edge.miss_slot);
    machine_.WriteWord(edge.patch_addr, isa::Encode(in));
    RefreshDigestAt(edge.patch_addr);
  }
  if (edge.from_block != 0) {
    Block* source = BlockById(edge.from_block);
    SC_CHECK(source != nullptr);
    source->own_stubs.emplace_back(stub, stubs_[stub].generation);
    auto& outs = source->out_edges;
    outs.erase(std::remove_if(outs.begin(), outs.end(),
                              [&](const auto& oe) {
                                return oe.second == edge.patch_addr;
                              }),
               outs.end());
  }
  ++stats_.patches_applied;
  OBS_INSTANT("cc", "unpatch", "addr", edge.patch_addr);
}

uint32_t CacheController::ForwardCell(uint32_t cont_orig, uint32_t known_tc,
                                      Block* owner) {
  uint32_t cell;
  const uint32_t* existing = cell_for_orig_.Find(cont_orig);
  if (existing != nullptr) {
    cell = *existing;
    if (known_tc == 0) return cell;  // existing content is still valid
    // The cell currently holds a TCMISS (its target was evicted); free that
    // stub before rebinding.
    const Instr in = isa::Decode(machine_.ReadWord(cell));
    if (in.op == Opcode::kTcMiss) {
      FreeStub(static_cast<uint32_t>(in.imm));
    } else {
      // It holds a live J edge to an older copy; that copy must have been
      // evicted before this translation (edge unlink would have restored a
      // TCMISS). Reaching here means the cell already points somewhere live.
      SC_UNREACHABLE() << "forward cell rebound while live";
    }
  } else {
    if (cells_used_ + 4 > cells_bytes_) {
      Fail("forward-cell region exhausted");
      return 0;
    }
    cell = cells_base_ + cells_used_;
    cells_used_ += 4;
    cell_for_orig_.Put(cont_orig, cell);
    if (config_.style == Style::kArm) {
      ++stats_.redirector_words;
    } else {
      ++stats_.return_stub_words;
    }
    if (known_tc == 0) {
      const uint32_t stub = NewStub(
          StubInfo{true, cont_orig, cell, PatchKind::kSlot, cell, 0});
      WriteStubWord(cell, stub);
      return cell;
    }
  }
  // Bind the cell to a known tcache address.
  SC_CHECK(owner != nullptr);
  machine_.WriteWord(cell, isa::EncJ(Opcode::kJ, isa::OffsetFor(cell, known_tc)));
  owner->in_edges.push_back(
      InEdge{0, cell, PatchKind::kSlot, cell, cont_orig});
  return cell;
}

// ---------------------------------------------------------------------------
// Invalidation
// ---------------------------------------------------------------------------

uint32_t CacheController::OrigForTcacheAddr(const Block& block,
                                            uint32_t tc_addr) const {
  if (tc_addr == block.slot_a) {
    return block.exit == ExitKind::kFallthrough ? block.taken_orig
                                                : block.fall_orig;
  }
  if (tc_addr == block.slot_b) return block.taken_orig;
  for (const auto& [slot, taken_orig] : block.mid_slots) {
    if (tc_addr == slot) return taken_orig;
  }
  const uint32_t word = (tc_addr - block.tc_addr) / 4;
  if (block.index_map.empty()) {
    SC_CHECK_LT(word, block.body_words);
    return block.orig_addr + word * 4;  // SPARC: identity layout
  }
  for (uint32_t i = 0; i < block.index_map.size(); ++i) {
    if (block.index_map[i] == word) return block.orig_addr + i * 4;
  }
  SC_UNREACHABLE() << "address maps to the middle of a call expansion";
  return 0;
}

void CacheController::FixStaleReturnAddresses(const Block& block) {
  const uint32_t lo = block.tc_addr;
  const uint32_t hi = block.tc_addr + block.tc_bytes;
  const auto fix = [&](uint32_t value) -> uint32_t {
    if (value < lo || value >= hi) return value;
    const uint32_t cont_orig = OrigForTcacheAddr(block, value);
    const uint32_t cell = ForwardCell(cont_orig, 0, nullptr);
    ++stats_.return_addr_fixups;
    return cell;
  };

  machine_.set_reg(isa::kRa, fix(machine_.reg(isa::kRa)));

  // Walk the frame-pointer chain. The programming model guarantees: fp = 0
  // terminates; saved ra at fp-4; saved caller fp at fp-8; frames strictly
  // increase toward the stack top. Every memory access goes through the
  // machine's data-hook translation so the walker sees the same stack a
  // software D-cache presents to the program.
  uint32_t fp = machine_.reg(isa::kFp);
  uint32_t prev_fp = 0;
  int guard = 0;
  while (fp != 0) {
    if (fp % 4 != 0 || fp <= prev_fp || fp > image::kStackTop ||
        fp < image::kDataBase || ++guard > 100000) {
      Fail("stack walk failed: frame chain violates the programming model");
      return;
    }
    const uint32_t ra_slot = machine_.TranslateForHost(fp - 4, 4, /*is_store=*/false);
    const uint32_t fixed = fix(machine_.ReadWord(ra_slot));
    machine_.WriteWord(machine_.TranslateForHost(fp - 4, 4, /*is_store=*/true),
                       fixed);
    prev_fp = fp;
    fp = machine_.ReadWord(machine_.TranslateForHost(fp - 8, 4, /*is_store=*/false));
    ++stats_.stack_walk_frames;
    Charge(config_.cost.stack_walk_frame_cycles);
  }
}

uint32_t CacheController::OnIcacheInvalidate(vm::Machine& m, uint32_t addr,
                                             uint32_t len, uint32_t pc) {
  OBS_SPAN("cc", "icache_invalidate", "addr", addr, "len", len);
  // Self-modifying code contract (the paper: "self-modifying programs must
  // explicitly invalidate newly-written instructions before they can be
  // used"): forward the client's rewritten text to the MC, then evict every
  // affected tcache block so the next execution re-translates it.
  const uint32_t lo = addr & ~3u;
  const uint32_t hi = (addr + len + 3) & ~3u;
  if (mc_.server().image().ContainsText(lo) && hi <= mc_.server().image().text_end() && hi > lo) {
    Request request;
    request.type = MsgType::kTextWrite;
    request.addr = lo;
    request.length = hi - lo;
    request.payload.resize(hi - lo);
    m.ReadBlock(lo, request.payload.data(), hi - lo);
    uint64_t link_cycles = 0;
    auto reply = session_.Call(std::move(request), &link_cycles);
    Charge(link_cycles);
    if (!reply.ok() || reply->type != MsgType::kTextWriteAck) {
      Fail("text write rejected by MC");
      return 0;
    }
  }
  // The invalidation may cover the very block that issued it; remember the
  // original continuation so execution can be relocated into fresh code.
  uint32_t resume_orig = 0;
  {
    auto it = blocks_.upper_bound(pc);
    if (it != blocks_.begin()) {
      --it;
      const Block& current = it->second;
      if (pc >= current.tc_addr && pc < current.tc_addr + current.tc_bytes &&
          current.orig_addr < addr + len &&
          current.orig_addr + current.orig_span > addr) {
        resume_orig = OrigForTcacheAddr(current, pc + 4);
      }
    }
  }
  // Evict every block whose original range overlaps [addr, addr+len).
  std::vector<uint64_t> victims;
  for (const auto& [tc, block] : blocks_) {
    if (block.orig_addr < addr + len && block.orig_addr + block.orig_span > addr) {
      victims.push_back(block.id);
    }
  }
  for (uint64_t id : victims) {
    if (block_tc_.Contains(id)) EvictBlock(id);
  }
  // Staged prefetched chunks covering the rewritten range hold stale words.
  DropStagedRange(addr, len);
  if (resume_orig == 0) return pc + 4;
  const Resolution res = ResolveEntry(resume_orig);
  if (res.block == nullptr) return 0;  // fault raised
  return res.tc_addr;
}

// ---------------------------------------------------------------------------
// Trap entry points
// ---------------------------------------------------------------------------

uint32_t CacheController::OnTcMiss(vm::Machine& m, uint32_t stub_index) {
  (void)m;
  const uint64_t miss_start = stats_.miss_cycles;
  OBS_SPAN("cc", "tcmiss", "stub", stub_index);
  ++stats_.tcmiss_traps;
  Charge(config_.cost.miss_trap_cycles);
  SC_CHECK_LT(stub_index, stubs_.size());
  const StubInfo stub = stubs_[stub_index];  // snapshot: eviction may free it
  SC_CHECK(stub.live) << "TCMISS fired a dead stub: id=" << stub_index
                      << " pc=0x" << std::hex << m.pc() << " target=0x"
                      << stub.target_orig << " patch=0x" << stub.patch_addr
                      << " slot=0x" << stub.miss_slot << " from=" << std::dec
                      << stub.from_block;

  const Resolution res = ResolveEntry(stub.target_orig);
  if (res.block == nullptr) return 0;  // fault raised
  if (!res.translated) ++stats_.patch_only_misses;

  // Back-patch the branch that missed — unless translation evicted the
  // trapping block (stub freed, possibly reused: detect via generation) or
  // rebound the cell that fired (ARM continuation cells).
  const bool stub_intact = stubs_[stub_index].live &&
                           stubs_[stub_index].generation == stub.generation;
  const bool source_alive =
      stub.from_block == 0 || block_tc_.Contains(stub.from_block);
  if (stub_intact && source_alive) {
    LinkEdge(stub, *res.block, res.tc_addr);
    FreeStub(stub_index);
    Charge(config_.cost.patch_cycles);
  }
  miss_latency_.Add(static_cast<double>(stats_.miss_cycles - miss_start));
  return res.tc_addr;
}

uint32_t CacheController::OnTcJalr(vm::Machine& m, const isa::Instr& instr,
                                   uint32_t pc) {
  OBS_INSTANT("cc", "tcjalr", "pc", pc);
  ++stats_.hash_lookups;
  Charge(config_.cost.hash_lookup_cycles);
  const uint32_t target_orig =
      (m.reg(instr.rs1) + static_cast<uint32_t>(instr.imm)) & ~3u;
  if (!mc_.server().image().ContainsText(target_orig)) {
    std::ostringstream msg;
    msg << "computed jump to non-text address 0x" << std::hex << target_orig;
    Fail(msg.str());
    return 0;
  }
  // Link register: the physical next word (slot A of this block).
  m.set_reg(instr.rd, pc + 4);
  const Resolution res = ResolveEntry(target_orig);
  if (res.block == nullptr) return 0;
  if (res.translated) ++stats_.hash_lookup_misses;
  return res.tc_addr;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

CacheController::Block* CacheController::BlockById(uint64_t id) {
  const uint32_t* tc = block_tc_.Find(id);
  if (tc == nullptr) return nullptr;
  return &blocks_.at(*tc);
}

std::vector<std::pair<uint64_t, uint64_t>> CacheController::ChunkFetchCounts()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(fetch_counts_.size());
  fetch_counts_.ForEach([&out](uint32_t orig, uint32_t count) {
    out.emplace_back(orig, count);
  });
  return out;
}


std::vector<CacheController::BlockView> CacheController::SnapshotBlocks()
    const {
  std::vector<BlockView> views;
  views.reserve(blocks_.size());
  for (const auto& [tc_addr, block] : blocks_) {
    BlockView view;
    view.orig_addr = block.orig_addr;
    view.orig_span = block.orig_span;
    view.tc_addr = block.tc_addr;
    view.tc_bytes = block.tc_bytes;
    view.out_edges = static_cast<uint32_t>(block.out_edges.size());
    view.in_edges = static_cast<uint32_t>(block.in_edges.size());
    view.pinned = block.pinned;
    views.push_back(view);
  }
  return views;
}

std::vector<std::pair<uint32_t, uint32_t>> CacheController::SnapshotStaged()
    const {
  std::vector<std::pair<uint32_t, uint32_t>> staged;
  staged.reserve(staged_fifo_.size());
  for (const uint32_t orig : staged_fifo_) {
    const auto it = staged_.find(orig);
    if (it != staged_.end()) staged.emplace_back(orig, StagedCost(it->second));
  }
  return staged;
}

std::string CacheController::DumpState() const {
  std::ostringstream out;
  out << "=== tcache state ===\n";
  out << "region: [0x" << std::hex << local_base_ << ", 0x" << cells_base_
      << ")  cells: [0x" << cells_base_ << ", 0x" << cells_base_ + cells_used_
      << ")\n" << std::dec;
  out << "blocks: " << blocks_.size() << "  live bytes: " << live_bytes_
      << "  cursor: " << alloc_cursor_ << "\n";
  for (const auto& [tc, block] : blocks_) {
    out << std::hex << "  block#" << std::dec << block.id << std::hex
        << "  tc=[0x" << block.tc_addr << ",0x" << block.tc_addr + block.tc_bytes
        << ")  orig=[0x" << block.orig_addr << ",0x"
        << block.orig_addr + block.orig_span << ")" << std::dec;
    if (block.pinned) out << "  PINNED";
    out << "  in-edges=" << block.in_edges.size()
        << "  out-edges=" << block.out_edges.size();
    if (!block.index_map.empty()) out << "  (procedure chunk)";
    out << "\n";
    // Exit states: decode the slots.
    const auto slot_state = [this](uint32_t slot_addr) -> std::string {
      if (slot_addr == 0) return "-";
      const Instr in = isa::Decode(machine_.ReadWord(slot_addr));
      std::ostringstream s;
      if (in.op == Opcode::kTcMiss) {
        s << "MISSING(stub#" << in.imm << " -> 0x" << std::hex
          << stubs_[static_cast<uint32_t>(in.imm)].target_orig << ")";
      } else if (in.op == Opcode::kJ) {
        s << "LINKED(0x" << std::hex << isa::BranchTarget(slot_addr, in.imm) << ")";
      } else {
        s << isa::MnemonicOf(in.op);
      }
      return s.str();
    };
    if (block.slot_a != 0) out << "    slot A: " << slot_state(block.slot_a) << "\n";
    if (block.slot_b != 0) out << "    slot B: " << slot_state(block.slot_b) << "\n";
    for (const auto& [slot, taken] : block.mid_slots) {
      out << "    mid slot @0x" << std::hex << slot << std::dec << ": "
          << slot_state(slot) << "\n";
    }
  }
  uint32_t live_stub_count = 0;
  for (const StubInfo& stub : stubs_) {
    if (stub.live) ++live_stub_count;
  }
  out << "stubs: " << live_stub_count << " live of " << stubs_.size()
      << " allocated\n";
  out << "forward cells: " << cell_for_orig_.size() << "\n";
  // Address order, for a stable dump independent of the table's probing.
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  cell_for_orig_.ForEach([&cells](uint32_t orig, uint32_t cell) {
    cells.emplace_back(cell, orig);
  });
  std::sort(cells.begin(), cells.end());
  for (const auto& [cell, orig] : cells) {
    const Instr in = isa::Decode(machine_.ReadWord(cell));
    out << "  cell 0x" << std::hex << cell << " for orig 0x" << orig << ": "
        << (in.op == Opcode::kTcMiss ? "MISSING" : "LINKED") << std::dec << "\n";
  }
  if (!staged_.empty()) {
    out << "staged prefetched chunks: " << staged_.size() << " ("
        << staged_bytes_ << " bytes)\n";
    for (const auto& [orig, chunk] : staged_) {
      out << "  staged orig=[0x" << std::hex << orig << ",0x"
          << orig + chunk.orig_span_bytes() << ")" << std::dec << "\n";
    }
  }
  return out.str();
}

bool CacheController::IsResident(uint32_t orig_addr) const {
  return by_orig_.count(orig_addr) != 0;
}

void CacheController::CheckInvariants() const {
  uint64_t total_bytes = 0;
  uint32_t prev_end = 0;
  for (const auto& [tc, block] : blocks_) {
    SC_CHECK_EQ(tc, block.tc_addr);
    SC_CHECK_GE(tc, local_base_);
    SC_CHECK_LE(tc + block.tc_bytes, cells_base_);
    SC_CHECK_GE(tc, prev_end) << "blocks overlap in the tcache";
    prev_end = tc + block.tc_bytes;
    total_bytes += block.tc_bytes;
    // Map consistency.
    SC_CHECK_EQ(by_orig_.at(block.orig_addr), block.id);
    SC_CHECK_EQ(block_tc_.At(block.id), tc);
    // Incoming edges really point at us.
    for (const InEdge& edge : block.in_edges) {
      const Instr in = isa::Decode(machine_.ReadWord(edge.patch_addr));
      uint32_t pointed = 0;
      switch (edge.kind) {
        case PatchKind::kBranch16:
          SC_CHECK(isa::IsConditionalBranch(in.op));
          pointed = isa::BranchTarget(edge.patch_addr, in.imm);
          break;
        case PatchKind::kJump26:
          SC_CHECK(in.op == Opcode::kJ || in.op == Opcode::kJal);
          pointed = isa::BranchTarget(edge.patch_addr, in.imm);
          break;
        case PatchKind::kSlot:
          SC_CHECK(in.op == Opcode::kJ) << "cell does not hold a jump";
          pointed = isa::BranchTarget(edge.patch_addr, in.imm);
          break;
      }
      SC_CHECK_GE(pointed, block.tc_addr);
      SC_CHECK_LT(pointed, block.tc_addr + block.tc_bytes);
    }
    // Outgoing edges are mirrored by the target's incoming list.
    for (const auto& [target_id, patch_addr] : block.out_edges) {
      const uint32_t* target_tc = block_tc_.Find(target_id);
      SC_CHECK(target_tc != nullptr) << "out-edge to evicted block";
      const Block& target = blocks_.at(*target_tc);
      const bool found = std::any_of(
          target.in_edges.begin(), target.in_edges.end(),
          [&, pa = patch_addr](const InEdge& e) { return e.patch_addr == pa; });
      SC_CHECK(found) << "out-edge without matching in-edge";
    }
  }
  SC_CHECK_EQ(total_bytes, live_bytes_);
  // Live stubs hold TCMISS words carrying their own id.
  for (uint32_t id = 0; id < stubs_.size(); ++id) {
    const StubInfo& stub = stubs_[id];
    if (!stub.live) continue;
    const Instr in = isa::Decode(machine_.ReadWord(stub.miss_slot));
    SC_CHECK(in.op == Opcode::kTcMiss) << "live stub slot is not a TCMISS";
    SC_CHECK_EQ(static_cast<uint32_t>(in.imm), id);
  }
  // Cells hold either a live TCMISS or a jump into a live block.
  cell_for_orig_.ForEach([this](uint32_t orig, uint32_t cell) {
    (void)orig;
    const Instr in = isa::Decode(machine_.ReadWord(cell));
    SC_CHECK(in.op == Opcode::kTcMiss || in.op == Opcode::kJ);
    if (in.op == Opcode::kTcMiss) {
      SC_CHECK(stubs_.at(static_cast<uint32_t>(in.imm)).live);
    }
  });
  // Staging accounting: byte counter and FIFO mirror the staged map exactly.
  uint64_t staged_total = 0;
  for (const auto& [orig, chunk] : staged_) {
    SC_CHECK_EQ(orig, chunk.orig_addr);
    SC_CHECK(std::find(staged_fifo_.begin(), staged_fifo_.end(), orig) !=
             staged_fifo_.end());
    staged_total += StagedCost(chunk);
  }
  SC_CHECK_EQ(staged_fifo_.size(), staged_.size());
  SC_CHECK_EQ(staged_total, staged_bytes_);
  SC_CHECK_LE(staged_bytes_, config_.prefetch.staging_bytes);
}

// ---------------------------------------------------------------------------
// Integrity fault domain: digests, scrubbing, quarantine, and healing.

uint64_t CacheController::BlockDigest(const Block& block) const {
  // Covers the installed tcache bytes exactly as the machine will execute
  // them, so any link/unlink patch must restamp (RefreshDigestAt).
  return ChunkDigest(block.orig_addr, block.tc_addr, block.tc_bytes,
                     machine_.mem_data() + block.tc_addr, block.tc_bytes);
}

uint64_t CacheController::StagedDigest(const Chunk& chunk) const {
  return ChunkDigest(chunk.orig_addr, 0, chunk.taken_target,
                     reinterpret_cast<const uint8_t*>(chunk.words.data()),
                     chunk.words.size() * 4);
}

void CacheController::RefreshDigestAt(uint32_t addr) {
  if (!config_.integrity.enabled) return;
  auto it = blocks_.upper_bound(addr);
  if (it == blocks_.begin()) return;
  --it;
  Block& block = it->second;
  if (addr < block.tc_addr || addr >= block.tc_addr + block.tc_bytes) return;
  block.digest = BlockDigest(block);
}

uint32_t CacheController::AnyResidentTcacheByteForTest() const {
  const uint32_t pc = machine_.pc();
  for (const auto& [tc, block] : blocks_) {
    if (pc >= block.tc_addr && pc < block.tc_addr + block.tc_bytes) continue;
    return block.tc_addr + block.tc_bytes / 2;
  }
  return 0;
}

bool CacheController::VerifyResident(Block* block) {
  if (BlockDigest(*block) == block->digest) return true;
  ++stats_.integrity.corruptions_detected;
  OBS_INSTANT("cc", "corrupt", "orig", block->orig_addr);
  Quarantine(block);
  return false;
}

bool CacheController::Quarantine(Block* block) {
  const uint32_t orig = block->orig_addr;
  ++stats_.integrity.quarantines;
  const uint32_t heals_of_this = ++heal_counts_[orig];
  OBS_INSTANT("cc", "quarantine", "orig", orig);
  EvictBlock(block->id);  // unlinks edges, fixes stale returns, invalidates
  if (quarantine_hook_) quarantine_hook_(orig);
  if (config_.integrity.max_heal_attempts != 0 &&
      stats_.integrity.quarantines > config_.integrity.max_heal_attempts) {
    ++stats_.integrity.heal_failures;
    integrity_fatal_ = true;
    Fail("integrity: heal budget exhausted (" +
         std::to_string(stats_.integrity.quarantines) + " quarantines)");
    return false;
  }
  pending_heal_.insert(orig);
  if (config_.integrity.poison_after != 0 &&
      heals_of_this >= config_.integrity.poison_after) {
    poisoned_origs_.insert(orig);
  }
  return true;
}

void CacheController::ScrubCachedState() {
  ++stats_.integrity.scrubs;
  OBS_SPAN("cc", "scrub");
  // Client SRAM domains charge guest cycles for the scan (the embedded CPU
  // walks its own tcache and staging buffer); the cross-client content store
  // and the host-side decoded superblocks do not.
  uint64_t charged_words = 0;
  // Collect first, quarantine after: Quarantine's unlink patches restamp
  // OTHER blocks' digests (RefreshDigestAt), and must never restamp a block
  // we have already decided is corrupt.
  std::vector<uint64_t> corrupt_ids;
  for (auto& [tc, block] : blocks_) {
    charged_words += block.tc_bytes / 4;
    if (BlockDigest(block) != block.digest) corrupt_ids.push_back(block.id);
  }
  for (uint64_t id : corrupt_ids) {
    Block* block = BlockById(id);
    if (block == nullptr) continue;  // evicted by an earlier quarantine
    ++stats_.integrity.corruptions_detected;
    OBS_INSTANT("cc", "corrupt", "orig", block->orig_addr);
    if (!Quarantine(block)) return;  // heal budget exhausted: machine faulted
  }
  std::vector<uint32_t> corrupt_staged;
  for (const auto& [orig, chunk] : staged_) {
    charged_words += chunk.words.size();
    auto it = staged_digest_.find(orig);
    if (it == staged_digest_.end() || StagedDigest(chunk) != it->second) {
      corrupt_staged.push_back(orig);
    }
  }
  for (uint32_t orig : corrupt_staged) {
    ++stats_.integrity.corruptions_detected;
    ++stats_.integrity.staged_drops;
    OBS_INSTANT("cc", "staged_corrupt", "orig", orig);
    UnstageAt(orig);
  }
  stats_.integrity.scrubbed_words += charged_words;
  Charge(charged_words / 16);  // wide compare: 16 words per guest cycle
  if (content_store_ != nullptr) {
    uint64_t store_words = 0;
    const uint32_t dropped = content_store_->ScrubIntegrity(&store_words);
    stats_.integrity.scrubbed_words += store_words;
    stats_.integrity.corruptions_detected += dropped;
    stats_.integrity.store_drops += dropped;
  }
  uint64_t sb_words = 0;
  const uint32_t killed = machine_.ScrubSuperblocks(&sb_words);
  stats_.integrity.scrubbed_words += sb_words;
  stats_.integrity.corruptions_detected += killed;
  stats_.integrity.sb_drops += killed;
}

bool CacheController::IntegrityTick() {
  if (!config_.integrity.enabled || integrity_fatal_) return false;
  ++stats_.integrity.ticks;
  const bool scrub_tick = config_.integrity.scrub_every != 0 &&
                          stats_.integrity.ticks %
                                  config_.integrity.scrub_every ==
                              0;
  if (config_.integrity.memfault.enabled()) {
    const uint64_t* cyc = machine_.cycles_counter();
    // Every domain's Due() is drawn unconditionally each tick so each RNG
    // stream advances as a pure function of tick count, independent of what
    // the other domains (or cache occupancy) happen to do.
    if (inj_staged_->Due(cyc) && !staged_.empty()) {
      util::Rng& rng = inj_staged_->rng();
      auto victim = staged_.begin();
      std::advance(victim, static_cast<long>(rng.Below(staged_.size())));
      if (!victim->second.words.empty()) {
        const uint64_t bit = rng.Below(victim->second.words.size() * 32);
        victim->second.words[bit / 32] ^= 1u << (bit % 32);
        ++stats_.integrity.flips_injected;
        OBS_INSTANT("cc", "mem_flip", "domain", 1, "orig", victim->first);
      }
    }
    if (content_store_ != nullptr && inj_store_->Due(cyc)) {
      if (content_store_->CorruptBit(inj_store_->rng())) {
        ++stats_.integrity.flips_injected;
        OBS_INSTANT("cc", "mem_flip", "domain", 2);
      }
    }
    // Executable domains are injected only on scrub ticks: the flip lands
    // and the scrub below detects it within the same tick, so no corrupted
    // instruction is ever reachable by the engine between ticks.
    if (scrub_tick) {
      if (inj_tcache_->Due(cyc) && !blocks_.empty()) {
        util::Rng& rng = inj_tcache_->rng();
        auto victim = blocks_.begin();
        std::advance(victim, static_cast<long>(rng.Below(blocks_.size())));
        const Block& block = victim->second;
        const uint64_t bit = rng.Below(static_cast<uint64_t>(block.tc_bytes) * 8);
        // Model restriction: spare the block the program counter currently
        // sits in. Quarantining it at a scrub boundary would strand the pc
        // in freed tcache memory, and detecting execution *out of* the
        // corrupted word is beyond a software-only scrub (a real SoC leans
        // on ECC traps there). The victim/bit draws are consumed either
        // way, so the schedule stays a pure function of the tick count.
        const uint32_t pc = machine_.pc();
        if (pc < block.tc_addr || pc >= block.tc_addr + block.tc_bytes) {
          // Poke raw memory, not WriteWord: a real SRAM fault does not pass
          // through the write-invalidate path. The interpreter's decode
          // cache self-validates by word compare; superblocks are killed by
          // the same-tick scrub.
          machine_.mem_data()[block.tc_addr + bit / 8] ^=
              static_cast<uint8_t>(1u << (bit % 8));
          ++stats_.integrity.flips_injected;
          OBS_INSTANT("cc", "mem_flip", "domain", 0, "orig", block.orig_addr);
        }
      }
      if (inj_sb_->Due(cyc) && machine_.CorruptSuperblockBit(inj_sb_->rng())) {
        ++stats_.integrity.flips_injected;
        OBS_INSTANT("cc", "mem_flip", "domain", 3);
      }
    }
  }
  if (!scrub_tick) return false;
  ScrubCachedState();
  return true;
}

}  // namespace sc::softcache
