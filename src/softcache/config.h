// Software-cache configuration.
//
// Two prototype styles, mirroring the paper:
//   * kSparc — basic-block chunks; computed jumps supported through a hash
//     lookup (TCJALR); returns run at full speed; eviction walks the stack
//     to fix in-flight return addresses.
//   * kArm — whole-procedure chunks; call sites are expanded to route return
//     addresses through permanent "redirector" cells so eviction never walks
//     the stack; computed jumps are not supported (translation faults).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/channel.h"
#include "net/transport.h"
#include "softcache/integrity.h"
#include "softcache/reliable.h"

namespace sc::softcache {

class MemoryController;

enum class Style : uint8_t { kSparc, kArm };

// Speculative chunk prefetch (MC-side CFG walk + batched replies).
enum class PrefetchPolicy : uint8_t {
  // No speculation: every miss is one 60-byte round trip, and the wire
  // traffic is byte-identical to the seed protocol.
  kOff,
  // Ship the demanded chunk's static CFG successors in BFS order until the
  // depth/chunk/byte budgets run out.
  kNextN,
  // Like kNextN, but rank candidate successors by the MC's per-chunk
  // reference-count "temperature" (how often each chunk has been demanded),
  // so re-referenced code wins the byte budget.
  kTemperature,
};

struct PrefetchConfig {
  PrefetchPolicy policy = PrefetchPolicy::kOff;
  // CFG walk depth from the demanded chunk (capped at 15 on the wire).
  uint32_t depth = 2;
  // Max extra chunks shipped per batch (capped at 255 on the wire).
  uint32_t max_chunks = 8;
  // Max extra payload bytes (sub-headers + words) per batch (capped at
  // 65535 on the wire).
  uint32_t byte_budget = 4096;
  // CC-side staging buffer bound: prefetched chunks wait here as raw
  // untranslated words, consuming no tcache space, until demanded or
  // FIFO-evicted.
  uint32_t staging_bytes = 16 * 1024;
};

enum class EvictPolicy : uint8_t {
  // Flush the whole tcache when an allocation does not fit (Dynamo-style).
  kFlushAll,
  // Evict blocks in allocation order using a circular bump allocator
  // (fragment-cache-style FIFO ring).
  kFifoRing,
};

struct CostModel {
  // CC-side trap entry/exit overhead for a TCMISS, before any work.
  uint32_t miss_trap_cycles = 30;
  // CC-side cost of installing one instruction word into the tcache.
  uint32_t install_cycles_per_word = 2;
  // CC-side cost of patching one branch/jump/slot word.
  uint32_t patch_cycles = 12;
  // Cost of one hash-table lookup for a computed jump (TCJALR). This is the
  // software fallback path of Figure 4's tcache map.
  uint32_t hash_lookup_cycles = 14;
  // Cost of visiting one stack frame during an eviction stack walk.
  uint32_t stack_walk_frame_cycles = 8;
  // Server-side chunk preparation time, charged to the client's wait. The
  // paper notes this "could easily be reduced to near zero by more powerful
  // MC systems"; it defaults small.
  uint32_t mc_service_cycles = 100;
};

struct SoftCacheConfig {
  Style style = Style::kSparc;
  EvictPolicy evict = EvictPolicy::kFifoRing;

  // Size of the translation cache (code region) in bytes.
  uint32_t tcache_bytes = 24 * 1024;
  // Basic-block chunking cap: a block is cut after this many instructions
  // even without a control transfer (bounds message sizes).
  uint32_t max_block_instrs = 64;
  // Trace chunking (SPARC style only): a chunk may run through up to
  // max_trace_blocks-1 conditional branches, which become mid-chunk side
  // exits. 1 = plain basic blocks (the paper's SPARC prototype).
  uint32_t max_trace_blocks = 1;
  // Size of the permanent forward-cell region (return-address landing pads /
  // ARM redirectors), one word per distinct continuation address.
  uint32_t forward_cell_bytes = 8 * 1024;

  // Speculative prefetch + batched replies. kOff reproduces the seed
  // protocol's wire traffic bit for bit.
  PrefetchConfig prefetch;

  // Which MC session this client owns; stamped into every frame. The
  // default 0 keeps single-client wire traffic byte-identical to the seed
  // protocol. Multi-client systems assign each client a distinct id.
  uint32_t client_id = 0;

  // Content-addressed shared replies (broadcast-medium coalescing): when on,
  // chunk requests go out as kChunkSharedRequest, the CC snoops every
  // body-bearing reply on the switch into a bounded content store, and a
  // payload-less kChunkDigestReply installs from that store. Guest output /
  // exit / instruction counts stay bit-identical to a solo run (installs are
  // digest-verified copies of the same artifact); only wire bytes and
  // therefore channel cycle accounting change. Off = seed-identical traffic.
  bool shared_reply = false;
  // Byte bound of the snoop content store (FIFO displacement; a lost body
  // only costs one full-body fallback fetch).
  uint32_t shared_store_bytes = 256 * 1024;

  // Integrity fault domain: digest stamping + verify-on-use + periodic
  // scrub over every client-side cached artifact, plus an optional seeded
  // bit-flip storm. Off by default: the hot paths skip all digest work and
  // the schedulers never slice for integrity ticks.
  IntegrityConfig integrity;

  CostModel cost;
  net::ChannelConfig channel;
  // Link fault injection (all zeros = reliable loopback transport) and the
  // retry/backoff policy that recovers from it.
  net::FaultConfig fault;
  RetryConfig retry;

  // Test seam: when set, the CC builds its MC transport through this factory
  // instead of MakeMcTransport — lets tests interpose hostile or scripted
  // transports on the CC install path (e.g. malformed batch replies).
  std::function<std::unique_ptr<net::Transport>(MemoryController&,
                                                net::Channel&)>
      transport_factory;

  // Restrict the VM's instruction fetch to the local-memory region, proving
  // the client never executes from the original (server-side) text.
  bool restrict_exec = true;
};

}  // namespace sc::softcache
