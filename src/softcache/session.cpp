#include "softcache/session.h"

#include <string>
#include <utility>

#include "obs/trace.h"
#include "softcache/mc.h"
#include "util/check.h"

namespace sc::softcache {

Session::Session(std::unique_ptr<net::Transport> transport,
                 const RetryConfig& retry, LinkStats* link_stats,
                 SessionStats* stats, MsgType journal_type, uint32_t first_seq,
                 uint32_t client_id)
    : link_(std::move(transport), retry, link_stats),
      retry_(retry),
      stats_(stats),
      journal_type_(journal_type),
      ack_type_(journal_type == MsgType::kTextWrite ? MsgType::kTextWriteAck
                                                    : MsgType::kWritebackAck),
      seq_(first_seq),
      client_id_(client_id & kClientIdMask) {
  SC_CHECK(stats_ != nullptr);
  SC_CHECK(journal_type_ == MsgType::kTextWrite ||
           journal_type_ == MsgType::kDataWriteback);
}

util::Result<Reply> Session::CallOnce(Request& request, uint64_t* cycles) {
  request.seq = seq_++;
  request.epoch = epoch_ & kEpochMask;
  request.client_id = client_id_;
  return link_.Call(request, cycles);
}

void Session::TruncateDurable(uint64_t acked_ops) {
  // An ack of op i (current epoch) proves the MC applied ops 0..i; every
  // flush barrier at or below that is durable. Entries under the barrier
  // can never need replay again.
  const uint64_t durable =
      (acked_ops / kMcWriteFlushIntervalOps) * kMcWriteFlushIntervalOps;
  while (!journal_.empty() && journal_.front().index < durable) {
    journal_.pop_front();
    ++stats_->journal_truncated;
  }
}

util::Result<Reply> Session::Call(Request request, uint64_t* cycles) {
  const bool journaled = request.type == journal_type_;
  uint64_t index = 0;
  if (journaled) {
    index = next_index_++;
    journal_.push_back(JournalEntry{index, request.addr, request.payload});
    ++stats_->journaled_ops;
  }
  for (uint32_t attempt = 0; attempt <= retry_.max_recovery_attempts;
       ++attempt) {
    auto reply = CallOnce(request, cycles);
    if (!reply.ok()) return reply;  // link gave up: clean diagnostic
    if (EpochMatches(reply->epoch)) {
      if (journaled) {
        if (reply->type == MsgType::kError) {
          // The MC rejected the op in the current epoch (a protocol-level
          // failure the caller will treat as fatal); it was never applied,
          // so it must not stay in the journal skewing the op indices.
          journal_.pop_back();
          --next_index_;
        } else {
          TruncateDurable(index + 1);
        }
      }
      return reply;
    }
    // The server restarted since we last talked: discard the reply (its
    // content may predate the journal replay) and recover.
    ++stats_->epoch_changes;
    OBS_INSTANT("session", "epoch_change", "seen", reply->epoch,
                "had", epoch_ & kEpochMask);
    auto recovered = Recover(cycles, journaled ? &request : nullptr, index);
    if (!recovered.ok()) return recovered;
    if (journaled) {
      TruncateDurable(index + 1);
      return recovered;
    }
    // Non-journaled (idempotent) op: re-issue it under the new epoch.
  }
  ++stats_->recovery_failures;
  return util::Error{"session: operation abandoned after " +
                     std::to_string(retry_.max_recovery_attempts) +
                     " recoveries"};
}

util::Result<Reply> Session::Recover(uint64_t* cycles, const Request* original,
                                     uint64_t want_index) {
  OBS_SPAN("session", "recover", "journal",
           static_cast<uint64_t>(journal_.size()));
  const uint64_t start_cycles = *cycles;
  if (quiesce_) quiesce_();
  for (uint32_t attempt = 0; attempt < retry_.max_recovery_attempts;
       ++attempt) {
    // Handshake: learn the live epoch and the stable-op watermark.
    Request hello;
    hello.type = MsgType::kHello;
    util::Result<Reply> ack = util::Error{""};
    {
      OBS_SPAN("session", "handshake", "attempt", attempt);
      ack = CallOnce(hello, cycles);
    }
    if (!ack.ok()) {
      stats_->recovery_cycles += *cycles - start_cycles;
      ++stats_->recovery_failures;
      return ack;
    }
    if (ack->type != MsgType::kHelloAck) {
      stats_->recovery_cycles += *cycles - start_cycles;
      ++stats_->recovery_failures;
      return util::Error{"session: handshake rejected by server"};
    }
    epoch_ = ack->addr;
    const uint64_t watermark =
        journal_type_ == MsgType::kTextWrite ? ack->aux : ack->extra;
    if (!journal_.empty() && watermark > journal_.back().index + 1) {
      // The server claims more of our ops are durable than we ever sent;
      // the session state is unrecoverable.
      stats_->recovery_cycles += *cycles - start_cycles;
      ++stats_->recovery_failures;
      return util::Error{"session: stable watermark beyond journal"};
    }
    while (!journal_.empty() && journal_.front().index < watermark) {
      journal_.pop_front();
      ++stats_->journal_truncated;
      OBS_INSTANT("session", "journal_truncate", "watermark", watermark);
    }

    // Replay the non-durable suffix, in order, under the new epoch.
    OBS_SPAN("session", "replay", "entries",
             static_cast<uint64_t>(journal_.size()));
    bool clean = true;
    Reply captured;
    bool have_captured = false;
    for (const JournalEntry& entry : journal_) {
      Request replay;
      replay.type = journal_type_;
      replay.addr = entry.addr;
      replay.length = static_cast<uint32_t>(entry.payload.size());
      replay.payload = entry.payload;
      auto reply = CallOnce(replay, cycles);
      ++stats_->journal_replays;
      if (!reply.ok()) {
        stats_->recovery_cycles += *cycles - start_cycles;
        ++stats_->recovery_failures;
        return reply;
      }
      if (!EpochMatches(reply->epoch)) {
        // Crashed again mid-replay: re-handshake and start over.
        ++stats_->epoch_changes;
        clean = false;
        break;
      }
      if (reply->type != ack_type_) {
        stats_->recovery_cycles += *cycles - start_cycles;
        ++stats_->recovery_failures;
        return util::Error{"session: journal replay rejected by server"};
      }
      if (original != nullptr && entry.index == want_index) {
        captured = *reply;
        have_captured = true;
      }
    }
    if (!clean) continue;

    ++stats_->recoveries;
    stats_->recovery_cycles += *cycles - start_cycles;
    if (original != nullptr && !have_captured) {
      // The op that triggered recovery sat below the watermark: it was
      // applied and flushed before the crash, only its ack was lost.
      // Synthesize the ack it would have carried.
      captured.type = ack_type_;
      captured.seq = original->seq;
      captured.addr = original->addr;
      captured.epoch = epoch_ & kEpochMask;
      captured.client_id = client_id_;
    }
    return captured;
  }
  stats_->recovery_cycles += *cycles - start_cycles;
  ++stats_->recovery_failures;
  return util::Error{"session: recovery failed after " +
                     std::to_string(retry_.max_recovery_attempts) +
                     " attempts"};
}

util::Status Session::Synchronize(uint64_t* cycles) {
  if (journal_.empty()) return util::Status::Ok();
  Request hello;
  hello.type = MsgType::kHello;
  auto ack = CallOnce(hello, cycles);
  if (!ack.ok()) return ack.error();
  if (ack->type != MsgType::kHelloAck) {
    return util::Error{"session: sync handshake rejected by server"};
  }
  if (ack->addr == epoch_) return util::Status::Ok();  // no crash since
  ++stats_->epoch_changes;
  auto recovered = Recover(cycles, nullptr, 0);
  if (!recovered.ok()) return recovered.error();
  return util::Status::Ok();
}

}  // namespace sc::softcache
