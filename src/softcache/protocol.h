// The MC<->CC wire protocol.
//
// Every CC->MC request is a fixed 24-byte frame; every MC->CC reply is a
// 32-byte header plus payload plus a 4-byte checksum trailer. A chunk fetch
// therefore costs exactly 24 + 36 = 60 application bytes of overhead beyond
// the chunk payload — the figure the paper reports for its ARM prototype
// ("the network overhead for each code chunk downloaded [is] 60 application
// bytes"), reproduced by bench_net.
#pragma once

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace sc::softcache {

inline constexpr uint32_t kProtocolMagic = 0x53434d43;  // "SCMC"
inline constexpr uint32_t kRequestBytes = 24;
inline constexpr uint32_t kReplyHeaderBytes = 32;
inline constexpr uint32_t kReplyTrailerBytes = 4;
// Application-level overhead of one fetch (request + reply framing).
inline constexpr uint32_t kPerChunkOverheadBytes =
    kRequestBytes + kReplyHeaderBytes + kReplyTrailerBytes;

enum class MsgType : uint32_t {
  kChunkRequest = 1,   // CC -> MC: code chunk at `addr`
  kChunkReply = 2,     // MC -> CC: chunk words
  kDataRequest = 3,    // CC -> MC: data block at `addr` (D-cache refill)
  kDataReply = 4,      // MC -> CC: data bytes
  kDataWriteback = 5,  // CC -> MC: dirty data block (payload carried)
  kWritebackAck = 6,   // MC -> CC: writeback acknowledged
  kError = 7,          // MC -> CC: request failed (message text in payload)
  kTextWrite = 8,      // CC -> MC: program text changed (self-modifying code)
  kTextWriteAck = 9,   // MC -> CC: text update applied
  kChunkBatchReply = 10,  // MC -> CC: demanded chunk + prefetched successors
  kHello = 11,     // CC -> MC: session handshake (crash recovery)
  kHelloAck = 12,  // MC -> CC: addr = boot epoch, aux/extra = stable-op
                   // watermarks (text ops / data ops)
  kChunkSharedRequest = 13,  // CC -> MC: chunk request, content-addressed
                             // replies allowed (kChunkDigestReply)
  kChunkDigestReply = 14,    // MC -> CC: aux/extra = chunk digest lo/hi,
                             // no body (client holds the bytes)
};

// --- Sessions, epochs (crash recovery) and client ids (multi-client) ---
//
// The type word packs three fields:
//
//   bits  7..0   message type
//   bits 19..8   client id   (which MC session this frame belongs to)
//   bits 31..20  session epoch
//
// The MC stamps its boot **epoch** into every reply, and clients stamp their
// last-known epoch into every request, riding the high bits of the frame's
// type word. With one MC serving N cache controllers, every client
// additionally stamps its **client id** into bits 19..8 so the server can
// demultiplex frames onto per-client sessions (`net::Switch` routes by
// transport port; the MC cross-checks the embedded id against the port).
// The epoch rides bits 31..20. The id/epoch split is 12/12: fleet-scale
// serving needs thousands of sessions, while the epoch only needs to make
// restarts *detectable* — it compares masked on both sides, so a 12-bit
// wraparound is handled exactly like the old 16-bit one (a client would
// have to sleep through 4096 restarts of its own session to alias).
//
// The seed protocol always wrote bits 31..8 as zero, every message type fits
// in 8 bits, the epoch starts at zero, and the default client id is zero —
// so a crash-free single-client run's wire traffic is byte-identical to the
// seed protocol (property-tested against golden re-encoders in
// tests/prefetch_test.cpp and tests/multiclient_test.cpp). After an MC
// session restart that session's epoch increments; a client that observes a
// mismatched epoch in a reply knows the server lost its volatile state and
// runs the kHello/kHelloAck handshake + journal replay described in
// docs/PROTOCOL.md. The MC rejects write-type requests carrying a stale
// epoch, which keeps its applied-op counters exactly aligned with the
// clients' journal indices. Epochs and crash recovery are per-session: one
// client's crash schedule never bumps another client's epoch.
inline constexpr uint32_t kEpochMask = 0xfff;
inline constexpr uint32_t kTypeMask = 0xff;
inline constexpr uint32_t kClientIdMask = 0xfff;
inline constexpr uint32_t kClientIdShift = 8;
inline constexpr uint32_t kEpochShift = 20;
// The id field is 12 bits wide, so one MC serves at most 4096 sessions.
inline constexpr uint32_t kMaxClients = kClientIdMask + 1;

// --- Request ids (causal tracing) ---
//
// Every message type fits in 4 bits (max value 14), so the high nibble of
// the type byte is spare on the wire. Chunk requests (kChunkRequest,
// kChunkSharedRequest) may stamp a 4-bit rolling **request id** (1..15;
// 0 = "no id") into that nibble so the observability layer can correlate a
// client-lane TCMISS span with the server-lane ticket/translate spans that
// serve it — the merged trace exporter turns matching ids into Perfetto
// flow arrows (docs/OBSERVABILITY.md).
//
// Wire compatibility: the CC stamps a nonzero rid only while its trace
// lane is actively recording, so with tracing off (and for every non-chunk
// type) the nibble stays zero and the frame is byte-identical to the seed
// protocol. Parse strips the nibble back out only when the low nibble is a
// chunk-request type AND the high nibble is nonzero; all other type bytes
// are passed through whole, so unknown-type handling is unchanged.
inline constexpr uint32_t kRidShift = 4;
inline constexpr uint32_t kRidMask = 0xf;
inline constexpr uint32_t kRidTypeMask = 0xf;

// Flow ids are globally unique per in-flight request across a 4096-client
// fleet: the client id makes the namespace, the rid rolls within it.
inline uint64_t FlowId(uint32_t client_id, uint32_t rid) {
  return (static_cast<uint64_t>(client_id & kClientIdMask) << 8) |
         (rid & kRidMask);
}

// Frame peeks for layers that route raw frames without a full Parse (the
// server loop's ticket queue, trace-lane routing). Return 0 on anything
// that is not a well-formed request frame carrying the field.
uint32_t PeekFrameClientId(const std::vector<uint8_t>& frame);
uint32_t PeekFrameRid(const std::vector<uint8_t>& frame);
// The rid-stripped type value (kTypeMask range) and the addr field.
uint32_t PeekFrameType(const std::vector<uint8_t>& frame);
uint32_t PeekFrameAddr(const std::vector<uint8_t>& frame);

// --- Chunk batching (speculative prefetch) ---
//
// A kChunkBatchReply carries several chunks inside one framed payload: the
// demanded chunk first, then the MC's control-flow-predicted successors.
// N chunks thus cost ONE 60-byte frame overhead plus a 16-byte sub-header
// each, instead of N full 60-byte round trips. The outer header's `aux`
// holds the chunk count; each sub-chunk record is:
//
//   | offset | field  | notes                                       |
//   |      0 | addr   | chunk start address                         |
//   |      4 | aux    | PackChunkMeta (exit kind, folded, entry)    |
//   |      8 | extra  | taken/callee target                         |
//   |     12 | nwords | instruction words following                 |
//   |    16+ | words  | nwords * 4 bytes                            |
inline constexpr uint32_t kBatchChunkHeaderBytes = 16;

// A parsed view of one sub-chunk record inside a batch payload. `words`
// points into the payload buffer (valid as long as the Reply is alive).
struct BatchChunkView {
  uint32_t addr = 0;
  uint32_t aux = 0;
  uint32_t extra = 0;
  uint32_t nwords = 0;
  const uint8_t* words = nullptr;
};

// Appends one sub-chunk record to a batch payload under construction.
void AppendBatchChunk(std::vector<uint8_t>* payload, uint32_t addr,
                      uint32_t aux, uint32_t extra, const uint32_t* words,
                      uint32_t nwords);

// Splits a batch payload into `count` sub-chunk views; fails on any length
// inconsistency (short record, trailing bytes, overflowing nwords).
util::Result<std::vector<BatchChunkView>> ParseBatchPayload(
    const std::vector<uint8_t>& payload, uint32_t count);

// --- Prefetch hints ---
//
// A kChunkRequest's `length` field (unused by the seed protocol, where it
// was always zero) carries the client's prefetch budget so the MC knows how
// much speculative work one request may buy:
//
//   bits 31..28  policy  (0 = off: the request is byte-identical to the
//                         seed protocol and gets a plain kChunkReply)
//   bits 27..24  depth   (CFG walk depth from the demanded chunk)
//   bits 23..16  chunks  (max extra chunks per batch)
//   bits 15..0   budget  (max extra payload bytes per batch)
struct PrefetchHints {
  uint32_t policy = 0;
  uint32_t depth = 0;
  uint32_t max_chunks = 0;
  uint32_t byte_budget = 0;
};

inline uint32_t PackPrefetchHints(const PrefetchHints& h) {
  const uint32_t policy = h.policy > 15 ? 15u : h.policy;
  const uint32_t depth = h.depth > 15 ? 15u : h.depth;
  const uint32_t chunks = h.max_chunks > 255 ? 255u : h.max_chunks;
  const uint32_t budget = h.byte_budget > 0xffff ? 0xffffu : h.byte_budget;
  return (policy << 28) | (depth << 24) | (chunks << 16) | budget;
}

inline PrefetchHints UnpackPrefetchHints(uint32_t length) {
  PrefetchHints h;
  h.policy = length >> 28;
  h.depth = (length >> 24) & 0xf;
  h.max_chunks = (length >> 16) & 0xff;
  h.byte_budget = length & 0xffff;
  return h;
}

struct Request {
  MsgType type = MsgType::kChunkRequest;
  uint32_t seq = 0;
  uint32_t addr = 0;
  uint32_t length = 0;  // data requests: bytes wanted
  uint32_t epoch = 0;   // client's last-known server epoch (low 12 bits used)
  uint32_t client_id = 0;  // MC session this frame belongs to (low 12 bits)
  // Tracing request id (chunk requests only; 0 = untraced — see the
  // request-id section above). Never affects request semantics.
  uint32_t rid = 0;
  // Writebacks carry payload after the fixed frame (accounted separately).
  std::vector<uint8_t> payload;

  uint32_t wire_bytes() const {
    return kRequestBytes + static_cast<uint32_t>(payload.size());
  }
  std::vector<uint8_t> Serialize() const;
  static util::Result<Request> Parse(const std::vector<uint8_t>& bytes);
};

struct Reply {
  MsgType type = MsgType::kChunkReply;
  uint32_t seq = 0;
  uint32_t addr = 0;        // original address of the chunk/block
  uint32_t aux = 0;         // chunk replies: packed exit kind | entry word
  uint32_t extra = 0;       // chunk replies: taken/callee/jump target
  uint32_t epoch = 0;       // server boot epoch (low 12 bits used)
  uint32_t client_id = 0;   // MC session the reply belongs to (low 12 bits)
  std::vector<uint8_t> payload;

  uint32_t wire_bytes() const {
    return kReplyHeaderBytes + static_cast<uint32_t>(payload.size()) +
           kReplyTrailerBytes;
  }
  std::vector<uint8_t> Serialize() const;
  static util::Result<Reply> Parse(const std::vector<uint8_t>& bytes);
};

// 32-bit FNV-1a over a byte range; used as the frame checksum. Streamable:
// pass a previous checksum as `basis` to continue it over another range
// (request frames checksum header + payload this way without changing the
// serialized bytes of payload-less frames).
uint32_t Checksum(const uint8_t* data, size_t len,
                  uint32_t basis = 2166136261u);

// --- Content-addressed shared replies (multicast coalescing) ---
//
// On a broadcast medium (the embedded fleets the paper targets share a bus
// or radio) the server transmits each chunk body ONCE: every attached client
// snoops body-bearing replies into a small content store keyed by digest.
// A client that opts in sends kChunkSharedRequest instead of kChunkRequest;
// when the server knows the body already crossed the medium it answers with
// a payload-less kChunkDigestReply (aux = digest low word, extra = digest
// high word, addr = chunk start) and the client installs from its store. A
// client whose store no longer holds the digest (bounded store, missed
// snoop) falls back to a plain kChunkRequest, which is always answered with
// a full body. Clients that never send kChunkSharedRequest never see a
// digest reply, so seed-protocol traffic is unchanged.
//
// The digest is 64-bit FNV-1a over the chunk's complete wire reconstruction
// state: addr, packed meta (aux), extra, then the instruction words. Server
// and snooping clients compute it over identical inputs, so equality means
// bit-identical installed code.
uint64_t ChunkDigest(uint32_t addr, uint32_t aux, uint32_t extra,
                     const uint8_t* words, size_t nbytes);

inline uint64_t DigestFromReply(const Reply& reply) {
  return static_cast<uint64_t>(reply.aux) |
         (static_cast<uint64_t>(reply.extra) << 32);
}

}  // namespace sc::softcache
