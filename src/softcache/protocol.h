// The MC<->CC wire protocol.
//
// Every CC->MC request is a fixed 24-byte frame; every MC->CC reply is a
// 32-byte header plus payload plus a 4-byte checksum trailer. A chunk fetch
// therefore costs exactly 24 + 36 = 60 application bytes of overhead beyond
// the chunk payload — the figure the paper reports for its ARM prototype
// ("the network overhead for each code chunk downloaded [is] 60 application
// bytes"), reproduced by bench_net.
#pragma once

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace sc::softcache {

inline constexpr uint32_t kProtocolMagic = 0x53434d43;  // "SCMC"
inline constexpr uint32_t kRequestBytes = 24;
inline constexpr uint32_t kReplyHeaderBytes = 32;
inline constexpr uint32_t kReplyTrailerBytes = 4;
// Application-level overhead of one fetch (request + reply framing).
inline constexpr uint32_t kPerChunkOverheadBytes =
    kRequestBytes + kReplyHeaderBytes + kReplyTrailerBytes;

enum class MsgType : uint32_t {
  kChunkRequest = 1,   // CC -> MC: code chunk at `addr`
  kChunkReply = 2,     // MC -> CC: chunk words
  kDataRequest = 3,    // CC -> MC: data block at `addr` (D-cache refill)
  kDataReply = 4,      // MC -> CC: data bytes
  kDataWriteback = 5,  // CC -> MC: dirty data block (payload carried)
  kWritebackAck = 6,   // MC -> CC: writeback acknowledged
  kError = 7,          // MC -> CC: request failed (message text in payload)
  kTextWrite = 8,      // CC -> MC: program text changed (self-modifying code)
  kTextWriteAck = 9,   // MC -> CC: text update applied
};

struct Request {
  MsgType type = MsgType::kChunkRequest;
  uint32_t seq = 0;
  uint32_t addr = 0;
  uint32_t length = 0;  // data requests: bytes wanted
  // Writebacks carry payload after the fixed frame (accounted separately).
  std::vector<uint8_t> payload;

  uint32_t wire_bytes() const {
    return kRequestBytes + static_cast<uint32_t>(payload.size());
  }
  std::vector<uint8_t> Serialize() const;
  static util::Result<Request> Parse(const std::vector<uint8_t>& bytes);
};

struct Reply {
  MsgType type = MsgType::kChunkReply;
  uint32_t seq = 0;
  uint32_t addr = 0;        // original address of the chunk/block
  uint32_t aux = 0;         // chunk replies: packed exit kind | entry word
  uint32_t extra = 0;       // chunk replies: taken/callee/jump target
  std::vector<uint8_t> payload;

  uint32_t wire_bytes() const {
    return kReplyHeaderBytes + static_cast<uint32_t>(payload.size()) +
           kReplyTrailerBytes;
  }
  std::vector<uint8_t> Serialize() const;
  static util::Result<Reply> Parse(const std::vector<uint8_t>& bytes);
};

// 32-bit FNV-1a over a byte range; used as the frame checksum. Streamable:
// pass a previous checksum as `basis` to continue it over another range
// (request frames checksum header + payload this way without changing the
// serialized bytes of payload-less frames).
uint32_t Checksum(const uint8_t* data, size_t len,
                  uint32_t basis = 2166136261u);

}  // namespace sc::softcache
