// Counters collected by the cache controller, used by every benchmark.
//
// These structs are the single source of truth the hot paths increment;
// the observability layer (obs::MetricsRegistry, wired up in
// SoftCacheSystem::RegisterMetrics) exports them as named metrics rather
// than keeping parallel copies.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "softcache/integrity.h"

namespace sc::softcache {

// Reliability-layer counters (one ReliableLink per client). On a loopback
// transport everything but `requests` stays zero; under fault injection
// these expose exactly how much work the retry machinery did.
struct LinkStats {
  uint64_t requests = 0;       // Call() invocations (logical RPCs)
  uint64_t retries = 0;        // retransmissions beyond the first attempt
  uint64_t timeouts = 0;       // attempts that expired with no matching reply
  uint64_t corrupt_frames = 0; // replies that failed to parse
  uint64_t stale_replies = 0;  // parseable replies with mismatched seq/id
  uint64_t giveups = 0;        // RPCs abandoned after max_attempts

  // Every stats struct registers its own fields (views over this storage;
  // the struct must outlive the registry). `prefix` carries the full dotted
  // path, e.g. "net.link." or "c3.net.link." for client 3 of a fleet.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->RegisterCounter(prefix + "requests", &requests);
    registry->RegisterCounter(prefix + "retries", &retries);
    registry->RegisterCounter(prefix + "timeouts", &timeouts);
    registry->RegisterCounter(prefix + "corrupt_frames", &corrupt_frames);
    registry->RegisterCounter(prefix + "stale_replies", &stale_replies);
    registry->RegisterCounter(prefix + "giveups", &giveups);
    // Event-name alias: the `link.gaveup` OBS instant and this counter
    // should read the same on a dashboard.
    registry->RegisterCounter(prefix + "gaveup", &giveups);
  }
};

// Session-layer counters (one Session per client). All zero on a crash-free
// run; under a crash schedule these expose exactly how much recovery work
// the epoch fencing + journal replay machinery did.
struct SessionStats {
  uint64_t epoch_changes = 0;      // replies observed with a new server epoch
  uint64_t recoveries = 0;         // completed handshake+replay cycles
  uint64_t journaled_ops = 0;      // non-idempotent ops appended to journal
  uint64_t journal_replays = 0;    // journal entries retransmitted in replay
  uint64_t journal_truncated = 0;  // entries dropped as durable (flush/ack)
  uint64_t recovery_cycles = 0;    // client cycles spent inside recovery
  uint64_t recovery_failures = 0;  // recoveries abandoned after the bound

  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->RegisterCounter(prefix + "epoch_changes", &epoch_changes);
    registry->RegisterCounter(prefix + "recoveries", &recoveries);
    registry->RegisterCounter(prefix + "journaled_ops", &journaled_ops);
    registry->RegisterCounter(prefix + "journal_replays", &journal_replays);
    registry->RegisterCounter(prefix + "journal_truncated",
                              &journal_truncated);
    registry->RegisterCounter(prefix + "recovery_cycles", &recovery_cycles);
    registry->RegisterCounter(prefix + "recovery_failures",
                              &recovery_failures);
  }
};

// Speculative-prefetch counters (CC side). Accuracy is "of the chunks the
// MC shipped speculatively, how many were eventually demanded"; coverage is
// "of all demand fetches, how many were answered from the staging buffer
// with zero round trips".
struct PrefetchStats {
  uint64_t batches = 0;            // kChunkBatchReply frames received
  uint64_t chunks_prefetched = 0;  // extra chunks carried by those batches
  uint64_t staged = 0;             // prefetched chunks actually staged
  uint64_t hits = 0;               // demand fetches served from staging
  uint64_t demand_fetches = 0;     // chunk fetches that went over the wire
  uint64_t dropped = 0;            // arrived already resident or staged
  uint64_t evictions = 0;          // staged chunks displaced by FIFO bound
  uint64_t invalidated = 0;        // staged chunks dropped by text writes

  double accuracy() const {
    return chunks_prefetched == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(chunks_prefetched);
  }
  double coverage() const {
    const uint64_t fetches = hits + demand_fetches;
    return fetches == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(fetches);
  }

  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->RegisterCounter(prefix + "batches", &batches);
    registry->RegisterCounter(prefix + "chunks_prefetched",
                              &chunks_prefetched);
    registry->RegisterCounter(prefix + "staged", &staged);
    registry->RegisterCounter(prefix + "hits", &hits);
    registry->RegisterCounter(prefix + "demand_fetches", &demand_fetches);
    registry->RegisterCounter(prefix + "dropped", &dropped);
    registry->RegisterCounter(prefix + "evictions", &evictions);
    registry->RegisterCounter(prefix + "invalidated", &invalidated);
    registry->RegisterGauge(prefix + "accuracy", [this] { return accuracy(); });
    registry->RegisterGauge(prefix + "coverage", [this] { return coverage(); });
  }
};

// Content-addressed shared-reply counters (CC side): the snoop store's
// traffic plus the digest-reply fast path. All zero unless the client opted
// in (SoftCacheConfig::shared_reply).
struct SharedReplyStats {
  uint64_t snooped_chunks = 0;   // bodies captured off the broadcast medium
  uint64_t snooped_bytes = 0;    // their payload bytes
  uint64_t store_evictions = 0;  // snooped bodies displaced by the byte bound
  uint64_t digest_replies = 0;   // payload-less kChunkDigestReply received
  uint64_t digest_hits = 0;      // installed straight from the snoop store
  uint64_t digest_misses = 0;    // store had lost the body; refetched in full
  uint64_t bytes_saved = 0;      // body bytes the digest path kept off our leg

  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    registry->RegisterCounter(prefix + "snooped_chunks", &snooped_chunks);
    registry->RegisterCounter(prefix + "snooped_bytes", &snooped_bytes);
    registry->RegisterCounter(prefix + "store_evictions", &store_evictions);
    registry->RegisterCounter(prefix + "digest_replies", &digest_replies);
    registry->RegisterCounter(prefix + "digest_hits", &digest_hits);
    registry->RegisterCounter(prefix + "digest_misses", &digest_misses);
    registry->RegisterCounter(prefix + "bytes_saved", &bytes_saved);
  }
};

struct SoftCacheStats {
  // Translation activity. `blocks_translated` is the numerator of the
  // paper's software miss-rate metric (Figure 7): blocks translated divided
  // by instructions executed.
  uint64_t blocks_translated = 0;
  uint64_t words_installed = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;

  // Trap activity.
  uint64_t tcmiss_traps = 0;
  uint64_t patch_only_misses = 0;  // target already resident; just relink
  uint64_t hash_lookups = 0;       // TCJALR resolutions
  uint64_t hash_lookup_misses = 0; // TCJALR that had to translate

  // Rewriting activity.
  uint64_t patches_applied = 0;
  uint64_t stack_walk_frames = 0;
  uint64_t return_addr_fixups = 0;

  // Space accounting (bytes of guest local memory).
  uint64_t tcache_bytes_used_peak = 0;
  uint64_t extra_words_live = 0;   // slot words currently in the tcache
  uint64_t return_stub_words = 0;
  uint64_t redirector_words = 0;

  // Cycle accounting (client-visible miss-handling time).
  uint64_t miss_cycles = 0;

  // Eviction timeline: cycle timestamps of every eviction (Figure 8 bins
  // these into evictions/second). Bounded: exact timestamps up to the
  // sample capacity, collapsing into uniform time bins beyond that, so a
  // pathologically thrashing run can no longer grow this without bound. The
  // cap covers Figure 8's heaviest sustained-paging run (~850k evictions)
  // with exact timestamps.
  obs::Timeline eviction_timeline{1u << 21, 4096};

  // Speculative-prefetch activity.
  PrefetchStats prefetch;

  // Content-addressed shared-reply activity.
  SharedReplyStats shared;

  // Memory-fault / integrity activity (client domains).
  IntegrityStats integrity;

  // MC link reliability counters.
  LinkStats net;

  // Crash-recovery session counters.
  SessionStats session;

  // Registers this struct's own scalars plus its nested stats blocks.
  // `prefix` is the client-level prefix ("" for a single-client system,
  // "c3." for client 3 of a fleet); the canonical subsystem names (cc.*,
  // prefetch.*, net.link.*, session.*) are appended here so every consumer
  // sees the same dotted scheme.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const std::string& prefix) const {
    const std::string cc = prefix + "cc.";
    registry->RegisterCounter(cc + "blocks_translated", &blocks_translated);
    registry->RegisterCounter(cc + "words_installed", &words_installed);
    registry->RegisterCounter(cc + "evictions", &evictions);
    registry->RegisterCounter(cc + "flushes", &flushes);
    registry->RegisterCounter(cc + "tcmiss_traps", &tcmiss_traps);
    registry->RegisterCounter(cc + "patch_only_misses", &patch_only_misses);
    registry->RegisterCounter(cc + "hash_lookups", &hash_lookups);
    registry->RegisterCounter(cc + "hash_lookup_misses", &hash_lookup_misses);
    registry->RegisterCounter(cc + "patches_applied", &patches_applied);
    registry->RegisterCounter(cc + "stack_walk_frames", &stack_walk_frames);
    registry->RegisterCounter(cc + "return_addr_fixups", &return_addr_fixups);
    registry->RegisterCounter(cc + "tcache_bytes_used_peak",
                              &tcache_bytes_used_peak);
    registry->RegisterCounter(cc + "extra_words_live", &extra_words_live);
    registry->RegisterCounter(cc + "return_stub_words", &return_stub_words);
    registry->RegisterCounter(cc + "redirector_words", &redirector_words);
    registry->RegisterCounter(cc + "miss_cycles", &miss_cycles);
    registry->RegisterTimeline(cc + "eviction_timeline", &eviction_timeline);
    prefetch.RegisterMetrics(registry, prefix + "prefetch.");
    shared.RegisterMetrics(registry, prefix + "shared.");
    integrity.RegisterMetrics(registry, prefix + "mem.fault.");
    net.RegisterMetrics(registry, prefix + "net.link.");
    session.RegisterMetrics(registry, prefix + "session.");
  }
};

}  // namespace sc::softcache
