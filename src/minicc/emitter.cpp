#include "minicc/emitter.h"

namespace sc::minicc {

util::Status Emitter::Finalize() {
  for (const Fixup& fx : fixups_) {
    if (!IsBound(fx.label)) {
      return util::Error{"internal: unbound label in emitter"};
    }
    const uint32_t target = AddressOf(fx.label);
    const uint32_t pc = text_base_ + static_cast<uint32_t>(fx.word_index) * 4;
    uint32_t& w = text_.at(fx.word_index);
    switch (fx.kind) {
      case FixupKind::kBranch16: {
        const int32_t offset = isa::OffsetFor(pc, target);
        if (!isa::FitsImm16(offset)) {
          return util::Error{"branch out of range (function too large)"};
        }
        w = (w & 0xffff0000u) | (static_cast<uint32_t>(offset) & 0xffff);
        break;
      }
      case FixupKind::kJump26: {
        const int32_t offset = isa::OffsetFor(pc, target);
        if (!isa::FitsImm26(offset)) {
          return util::Error{"jump out of range (program too large)"};
        }
        w = (w & 0xfc000000u) | (static_cast<uint32_t>(offset) & 0x03ffffff);
        break;
      }
      case FixupKind::kAbsHi:
        w = (w & 0xffff0000u) | (target >> 16);
        break;
      case FixupKind::kAbsLo:
        w = (w & 0xffff0000u) | (target & 0xffff);
        break;
    }
  }
  for (const DataFixup& fx : data_fixups_) {
    if (!IsBound(fx.label)) {
      return util::Error{"internal: unbound label in data fixup"};
    }
    const uint32_t v = AddressOf(fx.label);
    data_.at(fx.byte_offset) = static_cast<uint8_t>(v);
    data_.at(fx.byte_offset + 1) = static_cast<uint8_t>(v >> 8);
    data_.at(fx.byte_offset + 2) = static_cast<uint8_t>(v >> 16);
    data_.at(fx.byte_offset + 3) = static_cast<uint8_t>(v >> 24);
  }
  return util::Status::Ok();
}

std::vector<uint8_t> Emitter::TextBytes() const {
  std::vector<uint8_t> out;
  out.reserve(text_.size() * 4);
  for (uint32_t w : text_) {
    out.push_back(static_cast<uint8_t>(w));
    out.push_back(static_cast<uint8_t>(w >> 8));
    out.push_back(static_cast<uint8_t>(w >> 16));
    out.push_back(static_cast<uint8_t>(w >> 24));
  }
  return out;
}

}  // namespace sc::minicc
