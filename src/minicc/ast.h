// MiniC abstract syntax tree.
//
// The parser produces an untyped AST; name resolution and type checking
// happen in the code generator (a one-pass design typical of small
// compilers). Every node carries a source position for diagnostics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "minicc/token.h"
#include "minicc/types.h"

namespace sc::minicc {

struct Pos {
  int line = 0;
  int column = 0;
};

// ---------- Expressions ----------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  kIntLit,
  kStrLit,
  kIdent,
  kUnary,     // op operand  (also post-inc/dec via is_postfix)
  kBinary,
  kAssign,    // lhs op= rhs (op == kAssign for plain '=')
  kTernary,
  kCall,
  kIndex,     // base[index]
  kMember,    // base.field / base->field
  kSizeof,    // sizeof(type) or sizeof(expr)
  kCast,      // (type)expr
};

struct Expr {
  ExprKind kind;
  Pos pos;

  // kIntLit
  uint32_t int_value = 0;
  // kStrLit / kIdent / kMember field name
  std::string text;
  // kUnary / kBinary / kAssign operator
  Tok op = Tok::kEof;
  bool is_postfix = false;  // for ++/--
  bool is_arrow = false;    // for kMember
  // operands
  ExprPtr a;  // unary operand / binary lhs / assign lhs / cond / callee / base
  ExprPtr b;  // binary rhs / assign rhs / then-expr / index
  ExprPtr c;  // else-expr
  std::vector<ExprPtr> args;  // call arguments
  // kSizeof / kCast target type (null for sizeof(expr))
  const Type* type_arg = nullptr;
};

// ---------- Statements ----------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t {
  kBlock,
  kExpr,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kSwitch,
  kBreak,
  kContinue,
  kReturn,
  kVarDecl,
  kEmpty,
};

struct SwitchCase {
  bool is_default = false;
  int32_t value = 0;
  std::vector<StmtPtr> body;
  Pos pos;
};

struct Stmt {
  StmtKind kind;
  Pos pos;

  std::vector<StmtPtr> body;  // kBlock
  ExprPtr expr;               // kExpr / conditions / kReturn value / switch subject
  StmtPtr then_stmt;          // kIf then / loop body / for body
  StmtPtr else_stmt;          // kIf else
  ExprPtr init_expr;          // for-init expression (when not a decl)
  StmtPtr init_decl;          // for-init declaration
  ExprPtr step_expr;          // for-step
  std::vector<SwitchCase> cases;  // kSwitch

  // kVarDecl
  const Type* decl_type = nullptr;
  std::string decl_name;
  ExprPtr decl_init;  // optional scalar initializer
};

// ---------- Top-level declarations ----------

struct Param {
  const Type* type = nullptr;
  std::string name;
  Pos pos;
};

struct FuncDecl {
  const Type* ret = nullptr;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;  // null for a forward declaration
  Pos pos;
};

// Global variable initializer: at most one of the members is used.
struct GlobalInit {
  ExprPtr scalar;               // = expr (constant-folded at compile time)
  std::vector<ExprPtr> list;    // = { e0, e1, ... }
  bool has_list = false;
};

struct GlobalDecl {
  const Type* type = nullptr;
  std::string name;
  GlobalInit init;
  Pos pos;
};

struct Program {
  TypeTable types;
  std::vector<std::unique_ptr<FuncDecl>> functions;
  std::vector<std::unique_ptr<GlobalDecl>> globals;
};

}  // namespace sc::minicc
