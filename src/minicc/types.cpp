#include "minicc/types.h"

namespace sc::minicc {

uint32_t Type::Size() const {
  switch (kind) {
    case Kind::kVoid: return 0;
    case Kind::kChar: return 1;
    case Kind::kInt:
    case Kind::kUint:
    case Kind::kPtr: return 4;
    case Kind::kArray: return elem->Size() * array_len;
    case Kind::kStruct:
      SC_CHECK(struct_info->complete) << "sizeof incomplete struct " << struct_info->name;
      return struct_info->size;
    case Kind::kFunc: return 4;  // decays to pointer
  }
  SC_UNREACHABLE();
  return 0;
}

uint32_t Type::Align() const {
  switch (kind) {
    case Kind::kVoid: return 1;
    case Kind::kChar: return 1;
    case Kind::kInt:
    case Kind::kUint:
    case Kind::kPtr:
    case Kind::kFunc: return 4;
    case Kind::kArray: return elem->Align();
    case Kind::kStruct: return struct_info->align;
  }
  SC_UNREACHABLE();
  return 1;
}

std::string Type::ToString() const {
  switch (kind) {
    case Kind::kVoid: return "void";
    case Kind::kInt: return "int";
    case Kind::kUint: return "uint";
    case Kind::kChar: return "char";
    case Kind::kPtr: return elem->ToString() + "*";
    case Kind::kArray:
      return elem->ToString() + "[" + std::to_string(array_len) + "]";
    case Kind::kStruct: return "struct " + struct_info->name;
    case Kind::kFunc: {
      std::string s = ret->ToString() + "(";
      for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0) s += ", ";
        s += params[i]->ToString();
      }
      return s + ")";
    }
  }
  SC_UNREACHABLE();
  return "?";
}

TypeTable::TypeTable() {
  void_.kind = Type::Kind::kVoid;
  int_.kind = Type::Kind::kInt;
  uint_.kind = Type::Kind::kUint;
  char_.kind = Type::Kind::kChar;
}

const Type* TypeTable::PtrTo(const Type* pointee) {
  for (const auto& t : owned_) {
    if (t->kind == Type::Kind::kPtr && t->elem == pointee) return t.get();
  }
  auto t = std::make_unique<Type>();
  t->kind = Type::Kind::kPtr;
  t->elem = pointee;
  owned_.push_back(std::move(t));
  return owned_.back().get();
}

const Type* TypeTable::ArrayOf(const Type* elem, uint32_t len) {
  auto t = std::make_unique<Type>();
  t->kind = Type::Kind::kArray;
  t->elem = elem;
  t->array_len = len;
  owned_.push_back(std::move(t));
  return owned_.back().get();
}

const Type* TypeTable::StructType(const StructInfo* info) {
  for (const auto& t : owned_) {
    if (t->kind == Type::Kind::kStruct && t->struct_info == info) return t.get();
  }
  auto t = std::make_unique<Type>();
  t->kind = Type::Kind::kStruct;
  t->struct_info = info;
  owned_.push_back(std::move(t));
  return owned_.back().get();
}

const Type* TypeTable::FuncType(const Type* ret, std::vector<const Type*> params) {
  auto t = std::make_unique<Type>();
  t->kind = Type::Kind::kFunc;
  t->ret = ret;
  t->params = std::move(params);
  owned_.push_back(std::move(t));
  return owned_.back().get();
}

StructInfo* TypeTable::DeclareStruct(const std::string& name) {
  if (StructInfo* existing = FindStruct(name)) return existing;
  auto info = std::make_unique<StructInfo>();
  info->name = name;
  structs_.push_back(std::move(info));
  return structs_.back().get();
}

StructInfo* TypeTable::FindStruct(const std::string& name) {
  for (const auto& info : structs_) {
    if (info->name == name) return info.get();
  }
  return nullptr;
}

bool TypeTable::Same(const Type* a, const Type* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Type::Kind::kVoid:
    case Type::Kind::kInt:
    case Type::Kind::kUint:
    case Type::Kind::kChar: return true;
    case Type::Kind::kPtr: return Same(a->elem, b->elem);
    case Type::Kind::kArray:
      return a->array_len == b->array_len && Same(a->elem, b->elem);
    case Type::Kind::kStruct: return a->struct_info == b->struct_info;
    case Type::Kind::kFunc: {
      if (!Same(a->ret, b->ret) || a->params.size() != b->params.size()) return false;
      for (size_t i = 0; i < a->params.size(); ++i) {
        if (!Same(a->params[i], b->params[i])) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace sc::minicc
