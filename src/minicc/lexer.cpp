#include "minicc/lexer.h"

#include <cctype>
#include <map>

namespace sc::minicc {
namespace {

const std::map<std::string_view, Tok>& Keywords() {
  static const std::map<std::string_view, Tok> kw = {
      {"int", Tok::kInt},         {"uint", Tok::kUint},
      {"char", Tok::kChar},       {"void", Tok::kVoid},
      {"struct", Tok::kStruct},   {"if", Tok::kIf},
      {"else", Tok::kElse},       {"while", Tok::kWhile},
      {"for", Tok::kFor},         {"do", Tok::kDo},
      {"switch", Tok::kSwitch},   {"case", Tok::kCase},
      {"default", Tok::kDefault}, {"break", Tok::kBreak},
      {"continue", Tok::kContinue}, {"return", Tok::kReturn},
      {"sizeof", Tok::kSizeof},
  };
  return kw;
}

}  // namespace

const char* TokName(Tok kind) {
  switch (kind) {
    case Tok::kEof: return "end of input";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kInt: return "'int'";
    case Tok::kUint: return "'uint'";
    case Tok::kChar: return "'char'";
    case Tok::kVoid: return "'void'";
    case Tok::kStruct: return "'struct'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kDo: return "'do'";
    case Tok::kSwitch: return "'switch'";
    case Tok::kCase: return "'case'";
    case Tok::kDefault: return "'default'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kReturn: return "'return'";
    case Tok::kSizeof: return "'sizeof'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kColon: return "':'";
    case Tok::kQuestion: return "'?'";
    case Tok::kAssign: return "'='";
    case Tok::kPlusAssign: return "'+='";
    case Tok::kMinusAssign: return "'-='";
    case Tok::kStarAssign: return "'*='";
    case Tok::kSlashAssign: return "'/='";
    case Tok::kPercentAssign: return "'%='";
    case Tok::kAmpAssign: return "'&='";
    case Tok::kPipeAssign: return "'|='";
    case Tok::kCaretAssign: return "'^='";
    case Tok::kShlAssign: return "'<<='";
    case Tok::kShrAssign: return "'>>='";
    case Tok::kPlus: return "'+'";
    case Tok::kMinus: return "'-'";
    case Tok::kStar: return "'*'";
    case Tok::kSlash: return "'/'";
    case Tok::kPercent: return "'%'";
    case Tok::kAmp: return "'&'";
    case Tok::kPipe: return "'|'";
    case Tok::kCaret: return "'^'";
    case Tok::kTilde: return "'~'";
    case Tok::kBang: return "'!'";
    case Tok::kShl: return "'<<'";
    case Tok::kShr: return "'>>'";
    case Tok::kEq: return "'=='";
    case Tok::kNe: return "'!='";
    case Tok::kLt: return "'<'";
    case Tok::kGt: return "'>'";
    case Tok::kLe: return "'<='";
    case Tok::kGe: return "'>='";
    case Tok::kAndAnd: return "'&&'";
    case Tok::kOrOr: return "'||'";
    case Tok::kPlusPlus: return "'++'";
    case Tok::kMinusMinus: return "'--'";
    case Tok::kDot: return "'.'";
    case Tok::kArrow: return "'->'";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, std::string filename)
    : src_(source), file_(std::move(filename)) {}

char Lexer::Peek(int ahead) const {
  const size_t i = pos_ + static_cast<size_t>(ahead);
  return i < src_.size() ? src_[i] : '\0';
}

char Lexer::Advance() {
  const char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::Match(char expected) {
  if (pos_ < src_.size() && src_[pos_] == expected) {
    Advance();
    return true;
  }
  return false;
}

util::Error Lexer::Err(const std::string& message) const {
  return util::Error{message, file_, line_, column_};
}

util::Result<Token> Lexer::Next() {
  // Skip whitespace and comments.
  for (;;) {
    if (pos_ >= src_.size()) break;
    const char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      Advance();
      continue;
    }
    if (c == '/' && Peek(1) == '/') {
      while (pos_ < src_.size() && Peek() != '\n') Advance();
      continue;
    }
    if (c == '/' && Peek(1) == '*') {
      Advance();
      Advance();
      while (pos_ < src_.size() && !(Peek() == '*' && Peek(1) == '/')) Advance();
      if (pos_ >= src_.size()) return Err("unterminated block comment");
      Advance();
      Advance();
      continue;
    }
    break;
  }

  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (pos_ >= src_.size()) {
    tok.kind = Tok::kEof;
    return tok;
  }

  const char c = Advance();

  // Identifiers / keywords.
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string text(1, c);
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      text.push_back(Advance());
    }
    const auto it = Keywords().find(text);
    if (it != Keywords().end()) {
      tok.kind = it->second;
    } else {
      tok.kind = Tok::kIdent;
      tok.text = std::move(text);
    }
    return tok;
  }

  // Numbers.
  if (std::isdigit(static_cast<unsigned char>(c))) {
    uint64_t value = 0;
    if (c == '0' && (Peek() == 'x' || Peek() == 'X')) {
      Advance();
      if (!std::isxdigit(static_cast<unsigned char>(Peek()))) {
        return Err("bad hex literal");
      }
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
        const char d = Advance();
        const int digit = std::isdigit(static_cast<unsigned char>(d))
                              ? d - '0'
                              : std::tolower(static_cast<unsigned char>(d)) - 'a' + 10;
        value = value * 16 + static_cast<uint64_t>(digit);
        if (value > 0xffffffffull) return Err("integer literal too large");
      }
    } else {
      value = static_cast<uint64_t>(c - '0');
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        value = value * 10 + static_cast<uint64_t>(Advance() - '0');
        if (value > 0xffffffffull) return Err("integer literal too large");
      }
    }
    tok.kind = Tok::kIntLit;
    tok.value = static_cast<uint32_t>(value);
    return tok;
  }

  // Character literal.
  if (c == '\'') {
    if (pos_ >= src_.size()) return Err("unterminated char literal");
    char v = Advance();
    if (v == '\\') {
      if (pos_ >= src_.size()) return Err("unterminated char literal");
      const char esc = Advance();
      switch (esc) {
        case 'n': v = '\n'; break;
        case 't': v = '\t'; break;
        case 'r': v = '\r'; break;
        case '0': v = '\0'; break;
        case '\\': v = '\\'; break;
        case '\'': v = '\''; break;
        case '"': v = '"'; break;
        default: return Err("bad escape in char literal");
      }
    }
    if (pos_ >= src_.size() || Advance() != '\'') {
      return Err("unterminated char literal");
    }
    tok.kind = Tok::kIntLit;
    tok.value = static_cast<uint8_t>(v);
    return tok;
  }

  // String literal.
  if (c == '"') {
    std::string text;
    for (;;) {
      if (pos_ >= src_.size()) return Err("unterminated string literal");
      char v = Advance();
      if (v == '"') break;
      if (v == '\\') {
        if (pos_ >= src_.size()) return Err("unterminated string literal");
        const char esc = Advance();
        switch (esc) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case 'r': v = '\r'; break;
          case '0': v = '\0'; break;
          case '\\': v = '\\'; break;
          case '\'': v = '\''; break;
          case '"': v = '"'; break;
          default: return Err("bad escape in string literal");
        }
      }
      text.push_back(v);
    }
    tok.kind = Tok::kStringLit;
    tok.text = std::move(text);
    return tok;
  }

  switch (c) {
    case '(': tok.kind = Tok::kLParen; return tok;
    case ')': tok.kind = Tok::kRParen; return tok;
    case '{': tok.kind = Tok::kLBrace; return tok;
    case '}': tok.kind = Tok::kRBrace; return tok;
    case '[': tok.kind = Tok::kLBracket; return tok;
    case ']': tok.kind = Tok::kRBracket; return tok;
    case ';': tok.kind = Tok::kSemi; return tok;
    case ',': tok.kind = Tok::kComma; return tok;
    case ':': tok.kind = Tok::kColon; return tok;
    case '?': tok.kind = Tok::kQuestion; return tok;
    case '~': tok.kind = Tok::kTilde; return tok;
    case '.': tok.kind = Tok::kDot; return tok;
    case '+':
      tok.kind = Match('+') ? Tok::kPlusPlus : Match('=') ? Tok::kPlusAssign : Tok::kPlus;
      return tok;
    case '-':
      tok.kind = Match('-')   ? Tok::kMinusMinus
                 : Match('=') ? Tok::kMinusAssign
                 : Match('>') ? Tok::kArrow
                              : Tok::kMinus;
      return tok;
    case '*': tok.kind = Match('=') ? Tok::kStarAssign : Tok::kStar; return tok;
    case '/': tok.kind = Match('=') ? Tok::kSlashAssign : Tok::kSlash; return tok;
    case '%': tok.kind = Match('=') ? Tok::kPercentAssign : Tok::kPercent; return tok;
    case '&':
      tok.kind = Match('&') ? Tok::kAndAnd : Match('=') ? Tok::kAmpAssign : Tok::kAmp;
      return tok;
    case '|':
      tok.kind = Match('|') ? Tok::kOrOr : Match('=') ? Tok::kPipeAssign : Tok::kPipe;
      return tok;
    case '^': tok.kind = Match('=') ? Tok::kCaretAssign : Tok::kCaret; return tok;
    case '!': tok.kind = Match('=') ? Tok::kNe : Tok::kBang; return tok;
    case '=': tok.kind = Match('=') ? Tok::kEq : Tok::kAssign; return tok;
    case '<':
      if (Match('<')) {
        tok.kind = Match('=') ? Tok::kShlAssign : Tok::kShl;
      } else {
        tok.kind = Match('=') ? Tok::kLe : Tok::kLt;
      }
      return tok;
    case '>':
      if (Match('>')) {
        tok.kind = Match('=') ? Tok::kShrAssign : Tok::kShr;
      } else {
        tok.kind = Match('=') ? Tok::kGe : Tok::kGt;
      }
      return tok;
    default:
      return Err(std::string("unexpected character '") + c + "'");
  }
}

}  // namespace sc::minicc
