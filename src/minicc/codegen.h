// MiniC code generation: typed one-pass AST walk producing an SRK32 image.
//
// Calling convention (the "programming model limitations" the paper decrees,
// enforced here by construction):
//   * arguments in a0..a5 (max 6), result in rv;
//   * every function builds a uniform frame:
//       fp = caller's sp; saved ra at fp-4; saved caller fp at fp-8;
//       parameters and locals below; sp = fp - frame_size.
//     The cache controller's stack walker relies on exactly this layout to
//     find all in-stack return addresses at invalidation time.
//   * procedure return is the unique instruction `jalr zero, ra, 0`;
//   * computed jumps (switch tables, calls through function pointers) use
//     `jalr` with a *original-program* address operand — these are the
//     ambiguous pointers the softcache resolves through its hash table.
#pragma once

#include "image/image.h"
#include "image/layout.h"
#include "minicc/ast.h"
#include "util/result.h"

namespace sc::minicc {

struct CodegenOptions {
  uint32_t text_base = image::kTextBase;
  uint32_t data_base = image::kDataBase;
  // Fold constant subexpressions at compile time (semantics identical to
  // runtime evaluation on the VM, including wrapping and shift masking;
  // division by a constant zero is never folded so the runtime fault is
  // preserved).
  bool fold_constants = true;
};

// Lowers a parsed program to a loadable image. Performs name resolution and
// type checking; the first semantic error aborts compilation.
util::Result<image::Image> GenerateCode(Program& program,
                                        std::string_view filename = "<minic>",
                                        const CodegenOptions& options = {});

}  // namespace sc::minicc
