#include "minicc/compiler.h"

#include <algorithm>
#include <string>

#include "minicc/parser.h"
#include "minicc/runtime.h"
#include "minicc/runtime_extra.h"

namespace sc::minicc {

util::Result<image::Image> CompileMiniC(std::string_view source,
                                        std::string_view filename,
                                        const CompileOptions& options) {
  std::string unit(source);
  if (options.link_runtime) {
    unit += "\n";
    unit += kRuntimeSource;
    unit += "\n";
    unit += kRuntimeExtraSource;
  }
  auto program = Parse(unit, filename);
  if (!program.ok()) return program.error();
  return GenerateCode(**program, filename, options.codegen);
}

util::Result<image::Image> CompileMiniCProject(
    const std::vector<SourceFile>& files, const CompileOptions& options) {
  // Concatenate the files into one unit while recording where each file's
  // lines land, so diagnostics can be mapped back.
  struct Span {
    int first_line;  // 1-based line in the concatenated unit
    int line_count;
    const SourceFile* file;
  };
  std::string unit;
  std::vector<Span> spans;
  int line = 1;
  for (const SourceFile& file : files) {
    // Lines this file occupies in the unit (a trailing newline is added
    // when missing, so unterminated files still take count+1 lines).
    const int newlines = static_cast<int>(
        std::count(file.contents.begin(), file.contents.end(), '\n'));
    const bool terminated =
        !file.contents.empty() && file.contents.back() == '\n';
    const int lines = newlines + (terminated ? 0 : 1);
    spans.push_back(Span{line, lines, &file});
    unit += file.contents;
    if (unit.empty() || unit.back() != '\n') unit += '\n';
    line += lines;
  }
  CompileOptions unit_options = options;
  auto img = CompileMiniC(unit, "<project>", unit_options);
  if (img.ok()) return img;
  // Map the error position back to the originating file.
  util::Error error = img.error();
  for (const Span& span : spans) {
    if (error.line >= span.first_line &&
        error.line < span.first_line + span.line_count) {
      error.file = span.file->name;
      error.line = error.line - span.first_line + 1;
      break;
    }
  }
  return error;
}

}  // namespace sc::minicc
