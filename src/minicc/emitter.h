// Machine-code emitter with label/fixup management.
//
// The code generator emits 32-bit SRK32 words into a text buffer and
// initialized bytes into a data buffer. Forward references (branches to
// not-yet-bound labels, absolute addresses of functions, jump-table entries
// in data) are recorded as fixups and patched in Finalize().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.h"
#include "util/result.h"

namespace sc::minicc {

using Label = uint32_t;
inline constexpr Label kNoLabel = UINT32_MAX;

class Emitter {
 public:
  Emitter(uint32_t text_base, uint32_t data_base)
      : text_base_(text_base), data_base_(data_base) {}

  // ----- Labels -----
  Label NewLabel() {
    labels_.push_back(kUnbound);
    return static_cast<Label>(labels_.size() - 1);
  }
  void Bind(Label label) {
    SC_CHECK_EQ(labels_.at(label), kUnbound);
    labels_[label] = TextPc();
  }
  bool IsBound(Label label) const { return labels_.at(label) != kUnbound; }
  uint32_t AddressOf(Label label) const {
    SC_CHECK(IsBound(label));
    return labels_.at(label);
  }

  // ----- Text emission -----
  uint32_t TextPc() const {
    return text_base_ + static_cast<uint32_t>(text_.size()) * 4;
  }
  void Emit(uint32_t word) { text_.push_back(word); }

  // Conditional branch to a label (imm patched at Finalize).
  void EmitBranch(isa::Opcode op, uint8_t rs1, uint8_t rs2, Label target) {
    fixups_.push_back({text_.size(), target, FixupKind::kBranch16});
    Emit(isa::EncBranch(op, rs1, rs2, 0));
  }
  // J / JAL to a label.
  void EmitJump(isa::Opcode op, Label target) {
    fixups_.push_back({text_.size(), target, FixupKind::kJump26});
    Emit(isa::EncJ(op, 0));
  }
  // Loads the absolute address of a label: lui+ori pair.
  void EmitLoadLabel(uint8_t rd, Label target) {
    fixups_.push_back({text_.size(), target, FixupKind::kAbsHi});
    Emit(isa::EncI(isa::Opcode::kLui, rd, 0, 0));
    fixups_.push_back({text_.size(), target, FixupKind::kAbsLo});
    Emit(isa::EncI(isa::Opcode::kOri, rd, rd, 0));
  }
  // Loads a 32-bit constant (1 or 2 instructions).
  void EmitLoadImm(uint8_t rd, uint32_t value) {
    if (isa::FitsImm16(static_cast<int32_t>(value))) {
      Emit(isa::EncI(isa::Opcode::kAddi, rd, isa::kZero,
                     static_cast<int32_t>(value)));
    } else {
      Emit(isa::EncI(isa::Opcode::kLui, rd, 0, static_cast<int32_t>(value >> 16)));
      if ((value & 0xffff) != 0) {
        Emit(isa::EncI(isa::Opcode::kOri, rd, rd, static_cast<int32_t>(value & 0xffff)));
      }
    }
  }

  // Patches the imm16 of a previously emitted I-format word (frame sizes).
  void PatchImm16(size_t word_index, int32_t imm) {
    SC_CHECK(isa::FitsImm16(imm));
    uint32_t& w = text_.at(word_index);
    w = (w & 0xffff0000u) | (static_cast<uint32_t>(imm) & 0xffff);
  }
  size_t NumWords() const { return text_.size(); }

  // ----- Data emission -----
  uint32_t DataPc() const {
    return data_base_ + static_cast<uint32_t>(data_.size());
  }
  void DataAlign(uint32_t align) {
    while (data_.size() % align != 0) data_.push_back(0);
  }
  void DataByte(uint8_t b) { data_.push_back(b); }
  void DataWord(uint32_t v) {
    data_.push_back(static_cast<uint8_t>(v));
    data_.push_back(static_cast<uint8_t>(v >> 8));
    data_.push_back(static_cast<uint8_t>(v >> 16));
    data_.push_back(static_cast<uint8_t>(v >> 24));
  }
  void DataZero(uint32_t n) { data_.insert(data_.end(), n, 0); }
  // A data word holding the absolute address of a text label (jump tables,
  // function-pointer initializers).
  void DataWordLabel(Label target) {
    data_fixups_.push_back({data_.size(), target});
    DataWord(0);
  }

  // ----- Finalization -----
  // Patches all fixups. Returns an error if a label was never bound or a
  // branch is out of range.
  util::Status Finalize();

  std::vector<uint8_t> TextBytes() const;
  const std::vector<uint8_t>& DataBytes() const { return data_; }
  uint32_t text_base() const { return text_base_; }
  uint32_t data_base() const { return data_base_; }

 private:
  enum class FixupKind : uint8_t { kBranch16, kJump26, kAbsHi, kAbsLo };
  struct Fixup {
    size_t word_index;
    Label label;
    FixupKind kind;
  };
  struct DataFixup {
    size_t byte_offset;
    Label label;
  };

  static constexpr uint32_t kUnbound = UINT32_MAX;

  uint32_t text_base_;
  uint32_t data_base_;
  std::vector<uint32_t> text_;
  std::vector<uint8_t> data_;
  std::vector<uint32_t> labels_;
  std::vector<Fixup> fixups_;
  std::vector<DataFixup> data_fixups_;
};

}  // namespace sc::minicc
