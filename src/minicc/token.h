// Token definitions for MiniC.
#pragma once

#include <cstdint>
#include <string>

namespace sc::minicc {

enum class Tok : uint8_t {
  kEof = 0,
  kIdent,
  kIntLit,     // 123, 0x1f, 'c'
  kStringLit,
  // keywords
  kInt, kUint, kChar, kVoid, kStruct, kIf, kElse, kWhile, kFor, kDo,
  kSwitch, kCase, kDefault, kBreak, kContinue, kReturn, kSizeof,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kColon, kQuestion,
  kAssign,           // =
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kAmpAssign, kPipeAssign, kCaretAssign, kShlAssign, kShrAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAndAnd, kOrOr,
  kPlusPlus, kMinusMinus,
  kDot, kArrow,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;    // identifier or string contents
  uint32_t value = 0;  // integer literal value
  int line = 1;
  int column = 1;
};

const char* TokName(Tok kind);

}  // namespace sc::minicc
