// The MiniC runtime library, written in MiniC itself and linked (by source
// concatenation) into every program unless CompileOptions.link_runtime is
// false.
//
// This is the stand-in for libc/crt0 in the paper's benchmarks: it gives
// every program a realistic mass of library code (I/O formatting, string and
// memory routines, an allocator, a PRNG), most of which is cold at run time
// — exactly the property Table 1 and Figure 9 measure.
#pragma once

#include <string_view>

namespace sc::minicc {

inline constexpr std::string_view kRuntimeSource = R"MINIC(
/* ---- MiniC runtime library ---- */

void exit(int code) { __exit(code); }

int putchar(int c) { __putc(c); return c; }
int getchar() { return __getc(); }
int read_bytes(char *p, int n) { return __read(p, n); }
void write_bytes(char *p, int n) { __write(p, n); }

int strlen(char *s) {
  int n = 0;
  while (s[n]) n++;
  return n;
}

int strcmp(char *a, char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return (int)a[i] - (int)b[i];
}

int strncmp(char *a, char *b, int n) {
  int i = 0;
  while (i < n && a[i] && a[i] == b[i]) i++;
  if (i == n) return 0;
  return (int)a[i] - (int)b[i];
}

char *strcpy(char *dst, char *src) {
  int i = 0;
  while (src[i]) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return dst;
}

char *memcpy(char *dst, char *src, int n) {
  int i;
  for (i = 0; i < n; i++) dst[i] = src[i];
  return dst;
}

char *memmove(char *dst, char *src, int n) {
  int i;
  if (dst < src) {
    for (i = 0; i < n; i++) dst[i] = src[i];
  } else {
    for (i = n - 1; i >= 0; i--) dst[i] = src[i];
  }
  return dst;
}

char *memset(char *dst, int c, int n) {
  int i;
  for (i = 0; i < n; i++) dst[i] = (char)c;
  return dst;
}

int memcmp(char *a, char *b, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (a[i] != b[i]) return (int)a[i] - (int)b[i];
  }
  return 0;
}

int abs(int x) { return x < 0 ? -x : x; }
int imin(int a, int b) { return a < b ? a : b; }
int imax(int a, int b) { return a > b ? a : b; }

void print_str(char *s) { __write(s, strlen(s)); }

void print_uint(uint v) {
  char buf[12];
  int i = 11;
  if (v == 0) { __putc('0'); return; }
  while (v > 0) {
    i--;
    buf[i] = (char)('0' + (int)(v % 10));
    v = v / 10;
  }
  __write(&buf[i], 11 - i);
}

void print_int(int v) {
  if (v < 0) {
    __putc('-');
    print_uint((uint)0 - (uint)v);
  } else {
    print_uint((uint)v);
  }
}

void print_hex(uint v) {
  char buf[9];
  int i = 8;
  if (v == 0) { __putc('0'); return; }
  while (v > 0) {
    int d = (int)(v & 15);
    i--;
    if (d < 10) buf[i] = (char)('0' + d);
    else buf[i] = (char)('a' + d - 10);
    v = v >> 4;
  }
  __write(&buf[i], 8 - i);
}

void print_nl() { __putc(10); }

int atoi(char *s) {
  int v = 0;
  int sign = 1;
  int i = 0;
  while (s[i] == ' ' || s[i] == 9) i++;
  if (s[i] == '-') { sign = -1; i++; }
  else if (s[i] == '+') i++;
  while (s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (int)(s[i] - '0');
    i++;
  }
  return v * sign;
}

/* ---- allocator: first-fit free list over __brk ----
   Block header (8 bytes, immediately before the payload):
     [0] payload size in bytes (multiple of 4)
     [1] next free block header, or 0                                   */
int *rt_free_list = 0;

char *malloc(int n) {
  int *prev;
  int *blk;
  int need;
  need = (n + 3) & ~3;
  if (need < 8) need = 8;
  prev = 0;
  blk = rt_free_list;
  while (blk != 0) {
    if (blk[0] >= need) {
      /* split when the remainder can hold a header plus a minimal payload */
      if (blk[0] >= need + 16) {
        int *rest = blk + 2 + need / 4;
        rest[0] = blk[0] - need - 8;
        rest[1] = blk[1];
        blk[0] = need;
        if (prev == 0) rt_free_list = rest;
        else prev[1] = (int)rest;
      } else {
        if (prev == 0) rt_free_list = (int *)blk[1];
        else prev[1] = blk[1];
      }
      return (char *)(blk + 2);
    }
    prev = blk;
    blk = (int *)blk[1];
  }
  blk = (int *)__brk(need + 8);
  if ((int)blk == -1) return 0;
  blk[0] = need;
  blk[1] = 0;
  return (char *)(blk + 2);
}

void free(char *p) {
  int *blk;
  if (p == 0) return;
  blk = (int *)p - 2;
  blk[1] = (int)rt_free_list;
  rt_free_list = blk;
}

char *calloc(int count, int size) {
  int n = count * size;
  char *p = malloc(n);
  if (p != 0) memset(p, 0, n);
  return p;
}

/* ---- PRNG: 32-bit xorshift, deterministic across runs ---- */
uint rt_rand_state = 2463534242;

void srand(uint seed) {
  if (seed == 0) seed = 1;
  rt_rand_state = seed;
}

int rand() {
  uint x = rt_rand_state;
  x = x ^ (x << 13);
  x = x ^ (x >> 17);
  x = x ^ (x << 5);
  rt_rand_state = x;
  return (int)(x & 0x7fffffff);
}
)MINIC";

}  // namespace sc::minicc
