// MiniC lexer: hand-written scanner producing one token at a time.
#pragma once

#include <string>
#include <string_view>

#include "minicc/token.h"
#include "util/result.h"

namespace sc::minicc {

class Lexer {
 public:
  Lexer(std::string_view source, std::string filename);

  // Returns the next token, or an error for malformed input. At end of
  // input, returns kEof tokens forever.
  util::Result<Token> Next();

  const std::string& filename() const { return file_; }

 private:
  char Peek(int ahead = 0) const;
  char Advance();
  bool Match(char expected);
  util::Error Err(const std::string& message) const;

  std::string_view src_;
  std::string file_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace sc::minicc
