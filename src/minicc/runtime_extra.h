// Extended MiniC runtime: the "rest of libc".
//
// These routines are linked into every program (like a statically linked C
// library) but are cold in the benchmark workloads — soft-float arithmetic,
// formatted output, string/search utilities, CRC, sorting. They exist for
// two reasons: (1) they are genuinely usable from MiniC programs, and
// (2) they reproduce the static/dynamic text-size split of Table 1 and
// Figure 9, where statically linked library code dominates the image but
// never joins the working set ("the overhead of libc, crt0, and similar
// routines", Section 2.4).
//
// The soft-float library operates on IEEE-754 single-precision values
// carried in uint. Semantics: round-to-nearest-even, denormals flushed to
// zero, single canonical NaN, no exception flags — the usual embedded
// fast-math libgcc subset.
#pragma once

#include <string_view>

namespace sc::minicc {

inline constexpr std::string_view kRuntimeExtraSource = R"MINIC(
/* ================= soft-float (IEEE-754 single in uint) ================= */

uint F_SIGN = 0x80000000;
uint F_EXPM = 0x7f800000;
uint F_MANM = 0x007fffff;
uint F_NAN  = 0x7fc00000;
uint F_INF  = 0x7f800000;

int f_is_nan(uint a) {
  return (a & F_EXPM) == F_EXPM && (a & F_MANM) != 0;
}
int f_is_inf(uint a) { return (a & F_EXPM) == F_EXPM && (a & F_MANM) == 0; }
int f_is_zero(uint a) { return (a & ~F_SIGN) == 0; }

/* Counts leading zeros of a nonzero word. */
int f_clz(uint v) {
  int n = 0;
  if ((v & 0xffff0000) == 0) { n += 16; v = v << 16; }
  if ((v & 0xff000000) == 0) { n += 8; v = v << 8; }
  if ((v & 0xf0000000) == 0) { n += 4; v = v << 4; }
  if ((v & 0xc0000000) == 0) { n += 2; v = v << 2; }
  if ((v & 0x80000000) == 0) { n += 1; }
  return n;
}

/* Packs sign/exponent/mantissa with round-to-nearest-even. The mantissa
   arrives with 3 extra low bits (guard/round/sticky) and the leading 1 at
   bit 26. */
uint f_pack(uint sign, int exp, uint mant) {
  if (mant == 0) return sign;
  /* normalize so the leading one is at bit 26 */
  int lead = f_clz(mant);
  int shift = 5 - lead;      /* want leading one at bit 31-5 = 26 */
  if (shift > 0) {
    /* shift right, collecting sticky */
    uint sticky = 0;
    while (shift > 0) {
      sticky = sticky | (mant & 1);
      mant = mant >> 1;
      exp = exp + 1;
      shift = shift - 1;
    }
    mant = mant | sticky;
  } else {
    while (shift < 0) {
      mant = mant << 1;
      exp = exp - 1;
      shift = shift + 1;
    }
  }
  /* round to nearest even on the 3 grs bits */
  {
    uint grs = mant & 7;
    mant = mant >> 3;
    if (grs > 4 || (grs == 4 && (mant & 1) != 0)) {
      mant = mant + 1;
      if (mant >> 24) { mant = mant >> 1; exp = exp + 1; }
    }
  }
  if (exp >= 255) return sign | F_INF;
  if (exp <= 0) return sign;                /* flush to zero */
  return sign | ((uint)exp << 23) | (mant & F_MANM);
}

/* Unpacks the magnitude into mant with leading 1 at bit 26 (3 grs bits). */
uint f_unpack_mant(uint a) {
  uint mant = a & F_MANM;
  if ((a & F_EXPM) == 0) return 0;          /* denormal: flushed */
  return (mant | 0x00800000) << 3;
}

int f_unpack_exp(uint a) { return (int)((a & F_EXPM) >> 23); }

uint fneg(uint a) { return a ^ F_SIGN; }
uint fabsf_(uint a) { return a & ~F_SIGN; }

uint fadd(uint a, uint b) {
  if (f_is_nan(a) || f_is_nan(b)) return F_NAN;
  if (f_is_inf(a)) {
    if (f_is_inf(b) && ((a ^ b) & F_SIGN) != 0) return F_NAN;
    return a;
  }
  if (f_is_inf(b)) return b;
  if (f_is_zero(a)) return f_is_zero(b) ? (a & b) : b;
  if (f_is_zero(b)) return a;

  uint sa = a & F_SIGN;
  uint sb = b & F_SIGN;
  int ea = f_unpack_exp(a);
  int eb = f_unpack_exp(b);
  uint ma = f_unpack_mant(a);
  uint mb = f_unpack_mant(b);

  /* align to the larger exponent */
  if (ea < eb) {
    uint tu; int ti;
    tu = ma; ma = mb; mb = tu;
    ti = ea; ea = eb; eb = ti;
    tu = sa; sa = sb; sb = tu;
  }
  {
    int d = ea - eb;
    if (d > 27) { mb = 0; }
    else {
      uint sticky = 0;
      while (d > 0) { sticky = sticky | (mb & 1); mb = mb >> 1; d = d - 1; }
      mb = mb | sticky;
    }
  }
  if (sa == sb) {
    return f_pack(sa, ea, ma + mb);
  }
  if (ma > mb) return f_pack(sa, ea, ma - mb);
  if (mb > ma) return f_pack(sb, ea, mb - ma);
  return 0;  /* exact cancellation -> +0 */
}

uint fsub(uint a, uint b) { return fadd(a, fneg(b)); }

uint fmul(uint a, uint b) {
  if (f_is_nan(a) || f_is_nan(b)) return F_NAN;
  uint sign = (a ^ b) & F_SIGN;
  if (f_is_inf(a) || f_is_inf(b)) {
    if (f_is_zero(a) || f_is_zero(b)) return F_NAN;
    return sign | F_INF;
  }
  if (f_is_zero(a) || f_is_zero(b)) return sign;
  {
    int exp = f_unpack_exp(a) + f_unpack_exp(b) - 127;
    /* 24x24 -> take the high ~27 bits via split multiply */
    uint ma = (a & F_MANM) | 0x00800000;
    uint mb = (b & F_MANM) | 0x00800000;
    uint a_hi = ma >> 12;
    uint a_lo = ma & 0xfff;
    uint b_hi = mb >> 12;
    uint b_lo = mb & 0xfff;
    uint hi = a_hi * b_hi;                   /* << 24 */
    uint mid = a_hi * b_lo + a_lo * b_hi;    /* << 12 */
    uint lo = a_lo * b_lo;                   /* << 0  */
    /* product = hi<<24 | mid<<12 | lo; keep top bits + sticky.
       full product has leading one at bit 46 or 47. Build the top 28 bits. */
    uint p_hi = hi + (mid >> 12);
    uint p_lo = ((mid & 0xfff) << 12) + lo;  /* low 24 bits (may carry) */
    p_hi = p_hi + (p_lo >> 24);
    p_lo = p_lo & 0xffffff;
    /* want mantissa with leading one at bit 26: p_hi has it at 22 or 23 */
    /* mant = product >> 20, with the dropped bits folded into sticky; the
       value passed to pack is product/2^46 * 2^(exp-127), so exp is exactly
       ea + eb - 127. */
    uint mant;
    uint sticky = (p_lo & 0xfffff) != 0 ? 1 : 0;
    mant = (p_hi << 4) | (p_lo >> 20) | sticky;
    return f_pack(sign, exp, mant);
  }
}

uint fdiv(uint a, uint b) {
  if (f_is_nan(a) || f_is_nan(b)) return F_NAN;
  uint sign = (a ^ b) & F_SIGN;
  if (f_is_inf(a)) return f_is_inf(b) ? F_NAN : (sign | F_INF);
  if (f_is_inf(b)) return sign;
  if (f_is_zero(b)) return f_is_zero(a) ? F_NAN : (sign | F_INF);
  if (f_is_zero(a)) return sign;
  {
    int exp = f_unpack_exp(a) - f_unpack_exp(b) + 127;
    uint ma = (a & F_MANM) | 0x00800000;
    uint mb = (b & F_MANM) | 0x00800000;
    /* long division producing 27 quotient bits + sticky */
    uint quo = 0;
    uint rem = ma;
    int i;
    for (i = 0; i < 27; i++) {
      quo = quo << 1;
      if (rem >= mb) { rem = rem - mb; quo = quo | 1; }
      rem = rem << 1;
    }
    /* quo = floor((ma/mb) * 2^26) with sticky, so pack sees exactly
       (ma/mb) * 2^(exp-127) with exp = ea - eb + 127. */
    if (rem != 0) quo = quo | 1;  /* sticky */
    return f_pack(sign, exp, quo);
  }
}

/* Comparison: returns -1, 0, 1; NaN compares as -2. */
int fcmp(uint a, uint b) {
  if (f_is_nan(a) || f_is_nan(b)) return -2;
  if (f_is_zero(a) && f_is_zero(b)) return 0;
  {
    int sa = (a & F_SIGN) != 0 ? 1 : 0;
    int sb = (b & F_SIGN) != 0 ? 1 : 0;
    if (sa != sb) return sa ? -1 : 1;
    if (a == b) return 0;
    if (sa) return a > b ? -1 : 1;
    return a > b ? 1 : -1;
  }
}

/* int -> float */
uint itof(int v) {
  if (v == 0) return 0;
  {
    uint sign = 0;
    uint mag = (uint)v;
    if (v < 0) { sign = F_SIGN; mag = (uint)(-v); }
    /* place leading one at bit 26 with 3 grs bits */
    {
      int lead = f_clz(mag);
      int exp = 127 + (31 - lead);
      uint mant;
      if (lead >= 5) {
        mant = mag << (lead - 5);
      } else {
        int shift = 5 - lead;
        uint sticky = 0;
        mant = mag;
        while (shift > 0) {
          sticky = sticky | (mant & 1);
          mant = mant >> 1;
          shift = shift - 1;
        }
        mant = mant | sticky;
      }
      return f_pack(sign, exp, mant);
    }
  }
}

/* float -> int, truncating; saturates on overflow; NaN -> 0. */
int ftoi(uint a) {
  if (f_is_nan(a)) return 0;
  if (f_is_zero(a)) return 0;
  {
    int exp = f_unpack_exp(a) - 127;
    uint mant = (a & F_MANM) | 0x00800000;
    int neg = (a & F_SIGN) != 0;
    if (exp < 0) return 0;
    if (exp >= 31) return neg ? (int)0x80000000 : 0x7fffffff;
    if (exp >= 23) mant = mant << (exp - 23);
    else mant = mant >> (23 - exp);
    return neg ? -(int)mant : (int)mant;
  }
}

/* Newton-Raphson square root on floats. */
uint fsqrt(uint a) {
  if (f_is_nan(a) || (a & F_SIGN) != 0) return f_is_zero(a) ? a : F_NAN;
  if (f_is_zero(a) || f_is_inf(a)) return a;
  {
    /* initial guess via exponent halving */
    uint x = ((a >> 1) + 0x1fc00000);
    int i;
    uint half = 0x3f000000;  /* 0.5f */
    for (i = 0; i < 4; i++) {
      /* x = 0.5 * (x + a / x) */
      x = fmul(half, fadd(x, fdiv(a, x)));
    }
    return x;
  }
}

/* ================= formatted output ================= */

/* Writes int v into buf with given base (2..16); returns length. */
int format_int(char *buf, int v, int base) {
  char tmp[36];
  int i = 0;
  int n = 0;
  uint mag;
  int neg = 0;
  if (base < 2 || base > 16) base = 10;
  if (v < 0 && base == 10) { neg = 1; mag = (uint)(-v); }
  else mag = (uint)v;
  if (mag == 0) { tmp[i] = '0'; i++; }
  while (mag != 0) {
    int d = (int)(mag % (uint)base);
    if (d < 10) tmp[i] = (char)('0' + d);
    else tmp[i] = (char)('a' + d - 10);
    i++;
    mag = mag / (uint)base;
  }
  if (neg) { buf[n] = '-'; n++; }
  while (i > 0) { i--; buf[n] = tmp[i]; n++; }
  buf[n] = 0;
  return n;
}

/* Right-justifies int v in a field of `width` spaces. */
void print_int_pad(int v, int width) {
  char buf[36];
  int n = format_int(buf, v, 10);
  while (n < width) { __putc(' '); width--; }
  print_str(buf);
}

/* Prints a Q16.16 fixed-point value with 3 decimals. */
void print_fixed16(int q) {
  if (q < 0) { __putc('-'); q = -q; }
  print_uint((uint)(q >> 16));
  __putc('.');
  {
    int frac = q & 0xffff;
    int i;
    for (i = 0; i < 3; i++) {
      frac = frac * 10;
      __putc('0' + (frac >> 16));
      frac = frac & 0xffff;
    }
  }
}

/* Minimal printf: %d %u %x %s %c %%. */
void mini_printf(char *fmt, int a0, int a1, int a2) {
  int argi = 0;
  int i = 0;
  while (fmt[i]) {
    if (fmt[i] != '%') { __putc((int)fmt[i]); i++; continue; }
    i++;
    {
      int arg = 0;
      if (argi == 0) arg = a0;
      if (argi == 1) arg = a1;
      if (argi == 2) arg = a2;
      if (fmt[i] == 'd') { print_int(arg); argi++; }
      else if (fmt[i] == 'u') { print_uint((uint)arg); argi++; }
      else if (fmt[i] == 'x') { print_hex((uint)arg); argi++; }
      else if (fmt[i] == 's') { print_str((char *)arg); argi++; }
      else if (fmt[i] == 'c') { __putc(arg); argi++; }
      else if (fmt[i] == '%') { __putc('%'); }
      else { __putc('%'); __putc((int)fmt[i]); }
      i++;
    }
  }
}

/* ================= string & memory utilities ================= */

int isdigit_(int c) { return c >= '0' && c <= '9'; }
int isalpha_(int c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int isspace_(int c) {
  return c == ' ' || c == 9 || c == 10 || c == 13 || c == 11 || c == 12;
}
int toupper_(int c) { return c >= 'a' && c <= 'z' ? c - 32 : c; }
int tolower_(int c) { return c >= 'A' && c <= 'Z' ? c + 32 : c; }

char *strchr_(char *s, int c) {
  int i = 0;
  while (s[i]) {
    if ((int)s[i] == c) return &s[i];
    i++;
  }
  if (c == 0) return &s[i];
  return 0;
}

char *strrchr_(char *s, int c) {
  char *last = 0;
  int i = 0;
  while (s[i]) {
    if ((int)s[i] == c) last = &s[i];
    i++;
  }
  return last;
}

char *strstr_(char *hay, char *needle) {
  int n = strlen(needle);
  int i = 0;
  if (n == 0) return hay;
  while (hay[i]) {
    if (hay[i] == needle[0] && strncmp(&hay[i], needle, n) == 0) return &hay[i];
    i++;
  }
  return 0;
}

char *strcat_(char *dst, char *src) {
  strcpy(&dst[strlen(dst)], src);
  return dst;
}

char *strncpy_(char *dst, char *src, int n) {
  int i = 0;
  while (i < n && src[i]) { dst[i] = src[i]; i++; }
  while (i < n) { dst[i] = 0; i++; }
  return dst;
}

char *memchr_(char *p, int c, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if ((int)p[i] == (c & 255)) return &p[i];
  }
  return 0;
}

/* strtol with base 0/8/10/16 detection. */
int strtol_(char *s, int base) {
  int i = 0;
  int sign = 1;
  int v = 0;
  while (isspace_((int)s[i])) i++;
  if (s[i] == '-') { sign = -1; i++; }
  else if (s[i] == '+') i++;
  if (base == 0) {
    if (s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) { base = 16; i += 2; }
    else if (s[i] == '0') { base = 8; i++; }
    else base = 10;
  } else if (base == 16 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    i += 2;
  }
  for (;;) {
    int c = (int)s[i];
    int d;
    if (isdigit_(c)) d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else break;
    if (d >= base) break;
    v = v * base + d;
    i++;
  }
  return v * sign;
}

/* ================= CRC-32 (IEEE, table-driven) ================= */

uint crc32_table[256];
int crc32_ready = 0;

void crc32_init() {
  int i;
  for (i = 0; i < 256; i++) {
    uint c = (uint)i;
    int k;
    for (k = 0; k < 8; k++) {
      if (c & 1) c = 0xedb88320 ^ (c >> 1);
      else c = c >> 1;
    }
    crc32_table[i] = c;
  }
  crc32_ready = 1;
}

uint crc32(char *data, int n) {
  uint c = 0xffffffff;
  int i;
  if (!crc32_ready) crc32_init();
  for (i = 0; i < n; i++) {
    c = crc32_table[(c ^ (uint)data[i]) & 255] ^ (c >> 8);
  }
  return c ^ 0xffffffff;
}

/* ================= sorting & searching ================= */

void qsort_ints_range(int *a, int lo, int hi) {
  if (lo >= hi) return;
  {
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
      while (a[i] < pivot) i++;
      while (a[j] > pivot) j--;
      if (i <= j) {
        int t = a[i];
        a[i] = a[j];
        a[j] = t;
        i++;
        j--;
      }
    }
    qsort_ints_range(a, lo, j);
    qsort_ints_range(a, i, hi);
  }
}

void qsort_ints(int *a, int n) { qsort_ints_range(a, 0, n - 1); }

/* Generic quicksort over word arrays with a comparison callback. */
void qsort_by_range(int *a, int lo, int hi, int (*cmp)(int, int)) {
  if (lo >= hi) return;
  {
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
      while (cmp(a[i], pivot) < 0) i++;
      while (cmp(a[j], pivot) > 0) j--;
      if (i <= j) {
        int t = a[i];
        a[i] = a[j];
        a[j] = t;
        i++;
        j--;
      }
    }
    qsort_by_range(a, lo, j, cmp);
    qsort_by_range(a, i, hi, cmp);
  }
}

void qsort_by(int *a, int n, int (*cmp)(int, int)) {
  qsort_by_range(a, 0, n - 1, cmp);
}

/* Binary search over a sorted int array; returns index or -1. */
int bsearch_int(int *a, int n, int key) {
  int lo = 0;
  int hi = n - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (a[mid] == key) return mid;
    if (a[mid] < key) lo = mid + 1;
    else hi = mid - 1;
  }
  return -1;
}

/* ================= misc numeric helpers ================= */

uint umulhi(uint a, uint b) {
  uint a_hi = a >> 16;
  uint a_lo = a & 0xffff;
  uint b_hi = b >> 16;
  uint b_lo = b & 0xffff;
  uint mid = a_hi * b_lo + ((a_lo * b_lo) >> 16);
  uint mid2 = a_lo * b_hi + (mid & 0xffff);
  return a_hi * b_hi + (mid >> 16) + (mid2 >> 16);
}

int gcd(int a, int b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

int ipow(int base, int e) {
  int r = 1;
  while (e > 0) {
    if (e & 1) r = r * base;
    base = base * base;
    e = e >> 1;
  }
  return r;
}

int isqrt(int v) {
  int r = 0;
  int bit = 1 << 30;
  if (v < 0) return 0;
  while (bit > v) bit = bit >> 2;
  while (bit != 0) {
    if (v >= r + bit) {
      v = v - (r + bit);
      r = (r >> 1) + bit;
    } else {
      r = r >> 1;
    }
    bit = bit >> 2;
  }
  return r;
}
)MINIC";

}  // namespace sc::minicc
