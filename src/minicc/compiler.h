// MiniC compiler driver: source text in, loadable SRK32 image out.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "image/image.h"
#include "minicc/codegen.h"
#include "util/result.h"

namespace sc::minicc {

struct CompileOptions {
  // Appends the MiniC runtime library (runtime.h) to the unit.
  bool link_runtime = true;
  CodegenOptions codegen;
};

// Compiles one MiniC translation unit to an image. Parse and semantic errors
// carry file/line/column positions (positions inside the appended runtime
// refer to lines past the end of the user source).
util::Result<image::Image> CompileMiniC(std::string_view source,
                                        std::string_view filename = "<minic>",
                                        const CompileOptions& options = {});

// Multi-file projects: the sources are compiled as one program (MiniC has
// no declaration-order requirement across functions, so whole-program
// compilation subsumes linking); diagnostics are mapped back to the
// originating file and line.
struct SourceFile {
  std::string name;
  std::string contents;
};
util::Result<image::Image> CompileMiniCProject(
    const std::vector<SourceFile>& files, const CompileOptions& options = {});

}  // namespace sc::minicc
