// MiniC type system.
//
// Scalar types are int (signed 32-bit), uint (unsigned 32-bit) and char
// (unsigned 8-bit). Compound types are pointers, one-dimensional arrays,
// structs, and function types (used both for declared functions and through
// function pointers). All pointers are 4 bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"

namespace sc::minicc {

struct StructInfo;

struct Type {
  enum class Kind : uint8_t {
    kVoid,
    kInt,
    kUint,
    kChar,
    kPtr,
    kArray,
    kStruct,
    kFunc,
  };

  Kind kind = Kind::kVoid;
  const Type* elem = nullptr;        // kPtr pointee / kArray element
  uint32_t array_len = 0;            // kArray
  const StructInfo* struct_info = nullptr;  // kStruct
  const Type* ret = nullptr;         // kFunc
  std::vector<const Type*> params;   // kFunc

  bool IsVoid() const { return kind == Kind::kVoid; }
  bool IsInteger() const {
    return kind == Kind::kInt || kind == Kind::kUint || kind == Kind::kChar;
  }
  // char is unsigned in MiniC (like ARM's default char).
  bool IsSigned() const { return kind == Kind::kInt; }
  bool IsPtr() const { return kind == Kind::kPtr; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsStruct() const { return kind == Kind::kStruct; }
  bool IsFunc() const { return kind == Kind::kFunc; }
  // Scalar = fits in a register (integers and pointers).
  bool IsScalar() const { return IsInteger() || IsPtr(); }

  uint32_t Size() const;
  uint32_t Align() const;
  std::string ToString() const;
};

struct StructField {
  std::string name;
  const Type* type = nullptr;
  uint32_t offset = 0;
};

struct StructInfo {
  std::string name;
  std::vector<StructField> fields;
  uint32_t size = 0;
  uint32_t align = 4;
  bool complete = false;

  const StructField* FindField(const std::string& field_name) const {
    for (const StructField& f : fields) {
      if (f.name == field_name) return &f;
    }
    return nullptr;
  }
};

// Owns all Type and StructInfo nodes for one compilation.
class TypeTable {
 public:
  TypeTable();

  const Type* VoidType() const { return &void_; }
  const Type* IntType() const { return &int_; }
  const Type* UintType() const { return &uint_; }
  const Type* CharType() const { return &char_; }

  const Type* PtrTo(const Type* pointee);
  const Type* ArrayOf(const Type* elem, uint32_t len);
  const Type* StructType(const StructInfo* info);
  const Type* FuncType(const Type* ret, std::vector<const Type*> params);

  StructInfo* DeclareStruct(const std::string& name);
  StructInfo* FindStruct(const std::string& name);

  // Structural type equality (pointer identity is not guaranteed).
  static bool Same(const Type* a, const Type* b);

 private:
  Type void_, int_, uint_, char_;
  std::vector<std::unique_ptr<Type>> owned_;
  std::vector<std::unique_ptr<StructInfo>> structs_;
};

}  // namespace sc::minicc
