#include "minicc/parser.h"

#include <vector>

#include "minicc/lexer.h"
#include "util/check.h"

namespace sc::minicc {
namespace {

using util::Error;
using util::Result;

class Parser {
 public:
  Parser(std::string_view source, std::string_view filename)
      : file_(filename) {
    Lexer lexer(source, file_);
    for (;;) {
      auto tok = lexer.Next();
      if (!tok.ok()) {
        lex_error_ = tok.error();
        break;
      }
      tokens_.push_back(*tok);
      if (tok->kind == Tok::kEof) break;
    }
  }

  Result<std::unique_ptr<Program>> Run() {
    if (lex_error_) return *lex_error_;
    program_ = std::make_unique<Program>();
    while (Peek().kind != Tok::kEof) {
      if (auto st = ParseTopLevel(); !st.ok()) return st.error();
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(Tok kind) const { return Peek().kind == kind; }
  bool Match(Tok kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  Error Err(const std::string& message) const {
    return Error{message, file_, Peek().line, Peek().column};
  }
  Error ErrAt(const Token& tok, const std::string& message) const {
    return Error{message, file_, tok.line, tok.column};
  }

  util::Status Expect(Tok kind, const char* context) {
    if (Match(kind)) return util::Status::Ok();
    return Err(std::string("expected ") + TokName(kind) + " " + context + ", got " +
               TokName(Peek().kind));
  }

  static Pos PosOf(const Token& tok) { return Pos{tok.line, tok.column}; }

  bool AtTypeStart() const {
    const Tok k = Peek().kind;
    return k == Tok::kInt || k == Tok::kUint || k == Tok::kChar ||
           k == Tok::kVoid || k == Tok::kStruct;
  }

  // Parses a base type: int | uint | char | void | struct Name.
  Result<const Type*> ParseBaseType() {
    const Token tok = Advance();
    switch (tok.kind) {
      case Tok::kInt: return program_->types.IntType();
      case Tok::kUint: return program_->types.UintType();
      case Tok::kChar: return program_->types.CharType();
      case Tok::kVoid: return program_->types.VoidType();
      case Tok::kStruct: {
        if (!Check(Tok::kIdent)) return Err("expected struct name");
        const std::string name = Advance().text;
        StructInfo* info = program_->types.DeclareStruct(name);
        return program_->types.StructType(info);
      }
      default:
        return ErrAt(tok, std::string("expected type, got ") + TokName(tok.kind));
    }
  }

  // Parses pointer stars following a base type.
  const Type* ParseStars(const Type* base) {
    while (Match(Tok::kStar)) base = program_->types.PtrTo(base);
    return base;
  }

  // Parses a full abstract type (for sizeof/casts): base stars.
  Result<const Type*> ParseTypeName() {
    auto base = ParseBaseType();
    if (!base.ok()) return base.error();
    return ParseStars(*base);
  }

  // Parses a declarator after the base type: either
  //   stars name ([N])?            — ordinary variable
  //   stars (*name)(params)        — function pointer
  // Returns type + name.
  struct Declarator {
    const Type* type = nullptr;
    std::string name;
    Pos pos;
  };

  Result<Declarator> ParseDeclarator(const Type* base) {
    const Type* type = ParseStars(base);
    // Function pointer: ( * name ) ( params )
    if (Check(Tok::kLParen)) {
      Advance();
      if (auto st = Expect(Tok::kStar, "in function-pointer declarator"); !st.ok()) {
        return st.error();
      }
      if (!Check(Tok::kIdent)) return Err("expected function-pointer name");
      const Token name_tok = Advance();
      // Optional array length: T (*name[N])(params).
      uint32_t fp_array_len = 0;
      if (Match(Tok::kLBracket)) {
        if (!Check(Tok::kIntLit)) return Err("array length must be an integer literal");
        fp_array_len = Advance().value;
        if (fp_array_len == 0) return ErrAt(name_tok, "zero-length array");
        if (auto st = Expect(Tok::kRBracket, "after array length"); !st.ok()) {
          return st.error();
        }
      }
      if (auto st = Expect(Tok::kRParen, "after function-pointer name"); !st.ok()) {
        return st.error();
      }
      if (auto st = Expect(Tok::kLParen, "before function-pointer parameters"); !st.ok()) {
        return st.error();
      }
      std::vector<const Type*> params;
      if (!Check(Tok::kRParen)) {
        do {
          auto p = ParseTypeName();
          if (!p.ok()) return p.error();
          params.push_back(*p);
        } while (Match(Tok::kComma));
      }
      if (auto st = Expect(Tok::kRParen, "after function-pointer parameters"); !st.ok()) {
        return st.error();
      }
      const Type* fn = program_->types.FuncType(type, std::move(params));
      const Type* fnptr = program_->types.PtrTo(fn);
      if (fp_array_len > 0) fnptr = program_->types.ArrayOf(fnptr, fp_array_len);
      return Declarator{fnptr, name_tok.text, PosOf(name_tok)};
    }
    if (!Check(Tok::kIdent)) return Err("expected declarator name");
    const Token name_tok = Advance();
    if (Match(Tok::kLBracket)) {
      if (!Check(Tok::kIntLit)) return Err("array length must be an integer literal");
      const uint32_t len = Advance().value;
      if (auto st = Expect(Tok::kRBracket, "after array length"); !st.ok()) {
        return st.error();
      }
      if (len == 0) return ErrAt(name_tok, "zero-length array");
      type = program_->types.ArrayOf(type, len);
    }
    return Declarator{type, name_tok.text, PosOf(name_tok)};
  }

  util::Status ParseTopLevel() {
    // struct definition?
    if (Check(Tok::kStruct) && Peek(1).kind == Tok::kIdent &&
        Peek(2).kind == Tok::kLBrace) {
      return ParseStructDef();
    }
    auto base = ParseBaseType();
    if (!base.ok()) return base.error();

    auto decl = ParseDeclarator(*base);
    if (!decl.ok()) return decl.error();

    // Function definition or declaration: name followed by '('.
    if (Check(Tok::kLParen) && !decl->type->IsPtr()) {
      return ParseFunctionRest(decl->type, decl->name, decl->pos);
    }
    if (Check(Tok::kLParen)) {
      // "int* f(...)" — pointer-returning function.
      return ParseFunctionRest(decl->type, decl->name, decl->pos);
    }
    return ParseGlobalRest(*decl);
  }

  util::Status ParseStructDef() {
    Advance();  // struct
    const Token name_tok = Advance();
    StructInfo* info = program_->types.DeclareStruct(name_tok.text);
    if (info->complete) return ErrAt(name_tok, "struct redefined");
    Advance();  // {
    uint32_t offset = 0;
    uint32_t max_align = 1;
    while (!Check(Tok::kRBrace)) {
      auto base = ParseBaseType();
      if (!base.ok()) return base.error();
      do {
        auto decl = ParseDeclarator(*base);
        if (!decl.ok()) return decl.error();
        if (decl->type->IsStruct() && !decl->type->struct_info->complete) {
          return Err("field of incomplete struct type");
        }
        if (info->FindField(decl->name) != nullptr) {
          return Err("duplicate field '" + decl->name + "'");
        }
        const uint32_t align = decl->type->Align();
        offset = (offset + align - 1) & ~(align - 1);
        info->fields.push_back(StructField{decl->name, decl->type, offset});
        offset += decl->type->Size();
        max_align = std::max(max_align, align);
      } while (Match(Tok::kComma));
      if (auto st = Expect(Tok::kSemi, "after struct field"); !st.ok()) return st;
    }
    Advance();  // }
    if (auto st = Expect(Tok::kSemi, "after struct definition"); !st.ok()) return st;
    info->align = max_align;
    info->size = (offset + max_align - 1) & ~(max_align - 1);
    if (info->size == 0) info->size = max_align;  // empty struct still has size
    info->complete = true;
    return util::Status::Ok();
  }

  util::Status ParseFunctionRest(const Type* ret, const std::string& name, Pos pos) {
    Advance();  // (
    auto fn = std::make_unique<FuncDecl>();
    fn->ret = ret;
    fn->name = name;
    fn->pos = pos;
    if (!Check(Tok::kRParen)) {
      if (Check(Tok::kVoid) && Peek(1).kind == Tok::kRParen) {
        Advance();  // void
      } else {
        do {
          auto base = ParseBaseType();
          if (!base.ok()) return base.error();
          auto decl = ParseDeclarator(*base);
          if (!decl.ok()) return decl.error();
          if (decl->type->IsArray() || decl->type->IsStruct()) {
            return Err("array/struct parameters must be passed by pointer");
          }
          fn->params.push_back(Param{decl->type, decl->name, decl->pos});
        } while (Match(Tok::kComma));
      }
    }
    if (auto st = Expect(Tok::kRParen, "after parameters"); !st.ok()) return st;
    if (Match(Tok::kSemi)) {
      program_->functions.push_back(std::move(fn));  // forward declaration
      return util::Status::Ok();
    }
    auto body = ParseBlock();
    if (!body.ok()) return body.error();
    fn->body = std::move(*body);
    program_->functions.push_back(std::move(fn));
    return util::Status::Ok();
  }

  util::Status ParseGlobalRest(const Declarator& first) {
    Declarator current = {first.type, first.name, first.pos};
    for (;;) {
      auto g = std::make_unique<GlobalDecl>();
      g->type = current.type;
      g->name = current.name;
      g->pos = current.pos;
      if (g->type->IsVoid()) return Err("global of void type");
      if (Match(Tok::kAssign)) {
        if (Match(Tok::kLBrace)) {
          g->init.has_list = true;
          if (!Check(Tok::kRBrace)) {
            do {
              auto e = ParseAssignment();
              if (!e.ok()) return e.error();
              g->init.list.push_back(std::move(*e));
            } while (Match(Tok::kComma) && !Check(Tok::kRBrace));
          }
          if (auto st = Expect(Tok::kRBrace, "after initializer list"); !st.ok()) {
            return st;
          }
        } else {
          auto e = ParseAssignment();
          if (!e.ok()) return e.error();
          g->init.scalar = std::move(*e);
        }
      }
      program_->globals.push_back(std::move(g));
      if (Match(Tok::kSemi)) return util::Status::Ok();
      if (!Match(Tok::kComma)) return Err("expected ',' or ';' after global");
      // Next declarator shares the ORIGINAL base type? In C, stars bind per
      // declarator; MiniC requires one declarator per line for pointer
      // clarity, so reject "int a, *b;" style by reparsing with the scalar
      // base of the first declarator.
      const Type* base = first.type;
      while (base->IsPtr() || base->IsArray()) base = base->elem;
      auto decl = ParseDeclarator(base);
      if (!decl.ok()) return decl.error();
      current = *decl;
    }
  }

  // ---------- Statements ----------

  Result<StmtPtr> ParseBlock() {
    if (auto st = Expect(Tok::kLBrace, "to open block"); !st.ok()) return st.error();
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->pos = PosOf(Peek());
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) return Err("unterminated block");
      auto s = ParseStatement();
      if (!s.ok()) return s.error();
      block->body.push_back(std::move(*s));
    }
    Advance();  // }
    return block;
  }

  Result<StmtPtr> ParseVarDecl() {
    auto base = ParseBaseType();
    if (!base.ok()) return base.error();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kBlock;  // a decl line can declare several vars
    stmt->pos = PosOf(Peek());
    do {
      auto decl = ParseDeclarator(*base);
      if (!decl.ok()) return decl.error();
      auto var = std::make_unique<Stmt>();
      var->kind = StmtKind::kVarDecl;
      var->pos = decl->pos;
      var->decl_type = decl->type;
      var->decl_name = decl->name;
      if (Match(Tok::kAssign)) {
        auto e = ParseAssignment();
        if (!e.ok()) return e.error();
        var->decl_init = std::move(*e);
      }
      stmt->body.push_back(std::move(var));
    } while (Match(Tok::kComma));
    if (auto st = Expect(Tok::kSemi, "after declaration"); !st.ok()) return st.error();
    if (stmt->body.size() == 1) return std::move(stmt->body[0]);
    return stmt;
  }

  Result<StmtPtr> ParseStatement() {
    if (nesting_ >= kMaxNesting) return Err("statements nested too deeply");
    const DepthGuard guard(&nesting_);
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kLBrace: return ParseBlock();
      case Tok::kSemi: {
        Advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kEmpty;
        s->pos = PosOf(tok);
        return s;
      }
      case Tok::kIf: {
        Advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kIf;
        s->pos = PosOf(tok);
        if (auto st = Expect(Tok::kLParen, "after 'if'"); !st.ok()) return st.error();
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.error();
        s->expr = std::move(*cond);
        if (auto st = Expect(Tok::kRParen, "after condition"); !st.ok()) return st.error();
        auto then_stmt = ParseStatement();
        if (!then_stmt.ok()) return then_stmt.error();
        s->then_stmt = std::move(*then_stmt);
        if (Match(Tok::kElse)) {
          auto else_stmt = ParseStatement();
          if (!else_stmt.ok()) return else_stmt.error();
          s->else_stmt = std::move(*else_stmt);
        }
        return s;
      }
      case Tok::kWhile: {
        Advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kWhile;
        s->pos = PosOf(tok);
        if (auto st = Expect(Tok::kLParen, "after 'while'"); !st.ok()) return st.error();
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.error();
        s->expr = std::move(*cond);
        if (auto st = Expect(Tok::kRParen, "after condition"); !st.ok()) return st.error();
        auto body = ParseStatement();
        if (!body.ok()) return body.error();
        s->then_stmt = std::move(*body);
        return s;
      }
      case Tok::kDo: {
        Advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kDoWhile;
        s->pos = PosOf(tok);
        auto body = ParseStatement();
        if (!body.ok()) return body.error();
        s->then_stmt = std::move(*body);
        if (auto st = Expect(Tok::kWhile, "after do-body"); !st.ok()) return st.error();
        if (auto st = Expect(Tok::kLParen, "after 'while'"); !st.ok()) return st.error();
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.error();
        s->expr = std::move(*cond);
        if (auto st = Expect(Tok::kRParen, "after condition"); !st.ok()) return st.error();
        if (auto st = Expect(Tok::kSemi, "after do-while"); !st.ok()) return st.error();
        return s;
      }
      case Tok::kFor: {
        Advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kFor;
        s->pos = PosOf(tok);
        if (auto st = Expect(Tok::kLParen, "after 'for'"); !st.ok()) return st.error();
        if (!Check(Tok::kSemi)) {
          if (AtTypeStart()) {
            auto decl = ParseVarDecl();  // consumes the ';'
            if (!decl.ok()) return decl.error();
            s->init_decl = std::move(*decl);
          } else {
            auto e = ParseExpr();
            if (!e.ok()) return e.error();
            s->init_expr = std::move(*e);
            if (auto st = Expect(Tok::kSemi, "after for-init"); !st.ok()) return st.error();
          }
        } else {
          Advance();  // ;
        }
        if (!Check(Tok::kSemi)) {
          auto cond = ParseExpr();
          if (!cond.ok()) return cond.error();
          s->expr = std::move(*cond);
        }
        if (auto st = Expect(Tok::kSemi, "after for-condition"); !st.ok()) return st.error();
        if (!Check(Tok::kRParen)) {
          auto step = ParseExpr();
          if (!step.ok()) return step.error();
          s->step_expr = std::move(*step);
        }
        if (auto st = Expect(Tok::kRParen, "after for-step"); !st.ok()) return st.error();
        auto body = ParseStatement();
        if (!body.ok()) return body.error();
        s->then_stmt = std::move(*body);
        return s;
      }
      case Tok::kSwitch: return ParseSwitch();
      case Tok::kBreak: {
        Advance();
        if (auto st = Expect(Tok::kSemi, "after 'break'"); !st.ok()) return st.error();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kBreak;
        s->pos = PosOf(tok);
        return s;
      }
      case Tok::kContinue: {
        Advance();
        if (auto st = Expect(Tok::kSemi, "after 'continue'"); !st.ok()) return st.error();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kContinue;
        s->pos = PosOf(tok);
        return s;
      }
      case Tok::kReturn: {
        Advance();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kReturn;
        s->pos = PosOf(tok);
        if (!Check(Tok::kSemi)) {
          auto e = ParseExpr();
          if (!e.ok()) return e.error();
          s->expr = std::move(*e);
        }
        if (auto st = Expect(Tok::kSemi, "after 'return'"); !st.ok()) return st.error();
        return s;
      }
      default:
        if (AtTypeStart()) return ParseVarDecl();
        {
          auto e = ParseExpr();
          if (!e.ok()) return e.error();
          if (auto st = Expect(Tok::kSemi, "after expression"); !st.ok()) {
            return st.error();
          }
          auto s = std::make_unique<Stmt>();
          s->kind = StmtKind::kExpr;
          s->pos = PosOf(tok);
          s->expr = std::move(*e);
          return s;
        }
    }
  }

  Result<StmtPtr> ParseSwitch() {
    const Token tok = Advance();  // switch
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kSwitch;
    s->pos = PosOf(tok);
    if (auto st = Expect(Tok::kLParen, "after 'switch'"); !st.ok()) return st.error();
    auto subject = ParseExpr();
    if (!subject.ok()) return subject.error();
    s->expr = std::move(*subject);
    if (auto st = Expect(Tok::kRParen, "after switch subject"); !st.ok()) return st.error();
    if (auto st = Expect(Tok::kLBrace, "to open switch body"); !st.ok()) return st.error();
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) return Err("unterminated switch");
      SwitchCase sw_case;
      sw_case.pos = PosOf(Peek());
      if (Match(Tok::kCase)) {
        // Constant expression: integer literal with optional unary minus.
        bool negative = Match(Tok::kMinus);
        if (!Check(Tok::kIntLit)) return Err("case value must be an integer literal");
        const uint32_t v = Advance().value;
        sw_case.value = negative ? -static_cast<int32_t>(v) : static_cast<int32_t>(v);
      } else if (Match(Tok::kDefault)) {
        sw_case.is_default = true;
      } else {
        return Err("expected 'case' or 'default'");
      }
      if (auto st = Expect(Tok::kColon, "after case label"); !st.ok()) return st.error();
      while (!Check(Tok::kCase) && !Check(Tok::kDefault) && !Check(Tok::kRBrace)) {
        if (Check(Tok::kEof)) return Err("unterminated switch");
        auto body_stmt = ParseStatement();
        if (!body_stmt.ok()) return body_stmt.error();
        sw_case.body.push_back(std::move(*body_stmt));
      }
      s->cases.push_back(std::move(sw_case));
    }
    Advance();  // }
    return s;
  }

  // ---------- Expressions (precedence climbing) ----------

  Result<ExprPtr> ParseExpr() { return ParseAssignment(); }

  // Recursion guard: recursive-descent depth is bounded so hostile input
  // errors out instead of overflowing the host stack.
  static constexpr int kMaxNesting = 256;
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  static bool IsAssignOp(Tok kind) {
    switch (kind) {
      case Tok::kAssign:
      case Tok::kPlusAssign:
      case Tok::kMinusAssign:
      case Tok::kStarAssign:
      case Tok::kSlashAssign:
      case Tok::kPercentAssign:
      case Tok::kAmpAssign:
      case Tok::kPipeAssign:
      case Tok::kCaretAssign:
      case Tok::kShlAssign:
      case Tok::kShrAssign:
        return true;
      default:
        return false;
    }
  }

  Result<ExprPtr> ParseAssignment() {
    if (nesting_ >= kMaxNesting) return Err("expression nested too deeply");
    const DepthGuard guard(&nesting_);
    auto lhs = ParseTernary();
    if (!lhs.ok()) return lhs;
    if (IsAssignOp(Peek().kind)) {
      const Token op = Advance();
      auto rhs = ParseAssignment();
      if (!rhs.ok()) return rhs;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kAssign;
      e->pos = PosOf(op);
      e->op = op.kind;
      e->a = std::move(*lhs);
      e->b = std::move(*rhs);
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseTernary() {
    auto cond = ParseBinary(0);
    if (!cond.ok()) return cond;
    if (Match(Tok::kQuestion)) {
      auto then_e = ParseExpr();
      if (!then_e.ok()) return then_e;
      if (auto st = Expect(Tok::kColon, "in ternary"); !st.ok()) return st.error();
      auto else_e = ParseAssignment();
      if (!else_e.ok()) return else_e;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kTernary;
      e->pos = (*cond)->pos;
      e->a = std::move(*cond);
      e->b = std::move(*then_e);
      e->c = std::move(*else_e);
      return e;
    }
    return cond;
  }

  // Binary operator precedence (low to high).
  static int Precedence(Tok kind) {
    switch (kind) {
      case Tok::kOrOr: return 1;
      case Tok::kAndAnd: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq:
      case Tok::kNe: return 6;
      case Tok::kLt:
      case Tok::kGt:
      case Tok::kLe:
      case Tok::kGe: return 7;
      case Tok::kShl:
      case Tok::kShr: return 8;
      case Tok::kPlus:
      case Tok::kMinus: return 9;
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent: return 10;
      default: return 0;
    }
  }

  Result<ExprPtr> ParseBinary(int min_prec) {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    for (;;) {
      const Tok op = Peek().kind;
      const int prec = Precedence(op);
      if (prec == 0 || prec < min_prec) return lhs;
      const Token op_tok = Advance();
      auto rhs = ParseBinary(prec + 1);
      if (!rhs.ok()) return rhs;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->pos = PosOf(op_tok);
      e->op = op;
      e->a = std::move(*lhs);
      e->b = std::move(*rhs);
      *lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseUnary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kPlus:
        Advance();
        return ParseUnary();
      case Tok::kMinus:
      case Tok::kBang:
      case Tok::kTilde:
      case Tok::kStar:
      case Tok::kAmp: {
        Advance();
        auto operand = ParseUnary();
        if (!operand.ok()) return operand;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUnary;
        e->pos = PosOf(tok);
        e->op = tok.kind;
        e->a = std::move(*operand);
        return e;
      }
      case Tok::kPlusPlus:
      case Tok::kMinusMinus: {
        Advance();
        auto operand = ParseUnary();
        if (!operand.ok()) return operand;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kUnary;
        e->pos = PosOf(tok);
        e->op = tok.kind;
        e->is_postfix = false;
        e->a = std::move(*operand);
        return e;
      }
      case Tok::kSizeof: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kSizeof;
        e->pos = PosOf(tok);
        if (auto st = Expect(Tok::kLParen, "after sizeof"); !st.ok()) return st.error();
        if (AtTypeStart()) {
          auto type = ParseTypeName();
          if (!type.ok()) return type.error();
          e->type_arg = *type;
        } else {
          auto operand = ParseExpr();
          if (!operand.ok()) return operand;
          e->a = std::move(*operand);
        }
        if (auto st = Expect(Tok::kRParen, "after sizeof"); !st.ok()) return st.error();
        return e;
      }
      case Tok::kLParen:
        // Cast: (type)expr — only when '(' is followed by a type keyword.
        if (Peek(1).kind == Tok::kInt || Peek(1).kind == Tok::kUint ||
            Peek(1).kind == Tok::kChar || Peek(1).kind == Tok::kVoid ||
            Peek(1).kind == Tok::kStruct) {
          Advance();  // (
          auto type = ParseTypeName();
          if (!type.ok()) return type.error();
          if (auto st = Expect(Tok::kRParen, "after cast type"); !st.ok()) {
            return st.error();
          }
          auto operand = ParseUnary();
          if (!operand.ok()) return operand;
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kCast;
          e->pos = PosOf(tok);
          e->type_arg = *type;
          e->a = std::move(*operand);
          return e;
        }
        return ParsePostfix();
      default:
        return ParsePostfix();
    }
  }

  Result<ExprPtr> ParsePostfix() {
    auto e = ParsePrimary();
    if (!e.ok()) return e;
    for (;;) {
      const Token& tok = Peek();
      if (Match(Tok::kLBracket)) {
        auto index = ParseExpr();
        if (!index.ok()) return index;
        if (auto st = Expect(Tok::kRBracket, "after index"); !st.ok()) return st.error();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kIndex;
        node->pos = PosOf(tok);
        node->a = std::move(*e);
        node->b = std::move(*index);
        *e = std::move(node);
        continue;
      }
      if (Match(Tok::kLParen)) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kCall;
        node->pos = PosOf(tok);
        node->a = std::move(*e);
        if (!Check(Tok::kRParen)) {
          do {
            auto arg = ParseAssignment();
            if (!arg.ok()) return arg;
            node->args.push_back(std::move(*arg));
          } while (Match(Tok::kComma));
        }
        if (auto st = Expect(Tok::kRParen, "after arguments"); !st.ok()) {
          return st.error();
        }
        *e = std::move(node);
        continue;
      }
      if (Check(Tok::kDot) || Check(Tok::kArrow)) {
        const bool arrow = Advance().kind == Tok::kArrow;
        if (!Check(Tok::kIdent)) return Err("expected field name");
        const Token field = Advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kMember;
        node->pos = PosOf(field);
        node->is_arrow = arrow;
        node->text = field.text;
        node->a = std::move(*e);
        *e = std::move(node);
        continue;
      }
      if (Check(Tok::kPlusPlus) || Check(Tok::kMinusMinus)) {
        const Token op = Advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kUnary;
        node->pos = PosOf(op);
        node->op = op.kind;
        node->is_postfix = true;
        node->a = std::move(*e);
        *e = std::move(node);
        continue;
      }
      return e;
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kIntLit: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIntLit;
        e->pos = PosOf(tok);
        e->int_value = tok.value;
        return e;
      }
      case Tok::kStringLit: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kStrLit;
        e->pos = PosOf(tok);
        e->text = tok.text;
        return e;
      }
      case Tok::kIdent: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIdent;
        e->pos = PosOf(tok);
        e->text = tok.text;
        return e;
      }
      case Tok::kLParen: {
        Advance();
        auto e = ParseExpr();
        if (!e.ok()) return e;
        if (auto st = Expect(Tok::kRParen, "after expression"); !st.ok()) {
          return st.error();
        }
        return e;
      }
      default:
        return Err(std::string("expected expression, got ") + TokName(tok.kind));
    }
  }

  std::string file_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int nesting_ = 0;
  std::optional<Error> lex_error_;
  std::unique_ptr<Program> program_;
};

}  // namespace

util::Result<std::unique_ptr<Program>> Parse(std::string_view source,
                                             std::string_view filename) {
  return Parser(source, filename).Run();
}

}  // namespace sc::minicc
