#include "minicc/codegen.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "minicc/emitter.h"
#include "util/check.h"

namespace sc::minicc {
namespace {

using isa::AluOp;
using isa::Opcode;
using util::Error;
using util::Result;

// A scalar expression result held in a temp register.
struct Value {
  uint8_t reg = 0;
  const Type* type = nullptr;
};

// Temp register pool: t0..t8.
class RegPool {
 public:
  Result<uint8_t> Alloc(const Pos& pos, const std::string& file) {
    for (uint8_t i = 0; i < kCount; ++i) {
      if (!used_[i]) {
        used_[i] = true;
        return static_cast<uint8_t>(isa::kT0 + i);
      }
    }
    return Error{"expression too complex (out of temp registers)", file, pos.line,
                 pos.column};
  }
  void Free(uint8_t reg) {
    SC_CHECK_GE(reg, isa::kT0);
    SC_CHECK_LE(reg, isa::kT8);
    SC_CHECK(used_[reg - isa::kT0]);
    used_[reg - isa::kT0] = false;
  }
  std::vector<uint8_t> Live() const {
    std::vector<uint8_t> out;
    for (uint8_t i = 0; i < kCount; ++i) {
      if (used_[i]) out.push_back(static_cast<uint8_t>(isa::kT0 + i));
    }
    return out;
  }

 private:
  static constexpr int kCount = 9;
  bool used_[kCount] = {};
};

// A constant value from global-initializer evaluation: either a plain
// integer or the address of a text label (function pointer initializers).
struct ConstValue {
  uint32_t value = 0;
  Label label = kNoLabel;  // when set, value is an addend to the label address
};

struct FunctionInfo {
  const FuncDecl* decl = nullptr;
  Label label = kNoLabel;
  const Type* type = nullptr;  // kFunc type
};

struct GlobalInfo {
  const Type* type = nullptr;
  uint32_t addr = 0;
};

struct LocalVar {
  const Type* type = nullptr;
  int32_t fp_offset = 0;
};

// System-call builtins exposed to MiniC sources.
struct Builtin {
  const char* name;
  int32_t syscall;
  int num_args;
  bool has_result;
};
constexpr Builtin kBuiltins[] = {
    {"__exit", 0, 1, false},  {"__putc", 1, 1, false},
    {"__getc", 2, 0, true},   {"__write", 3, 2, false},
    {"__read", 4, 2, true},   {"__brk", 5, 1, true},
    {"__cycles", 6, 0, true}, {"__icache_inval", 7, 2, false},
};

class Codegen {
 public:
  Codegen(Program& program, std::string_view filename, const CodegenOptions& options)
      : prog_(program),
        file_(filename),
        emit_(options.text_base, options.data_base),
        options_fold_(options.fold_constants) {}

  Result<image::Image> Run() {
    if (auto st = RegisterFunctions(); !st.ok()) return st.error();
    if (auto st = LayoutGlobals(); !st.ok()) return st.error();
    if (auto st = EmitStart(); !st.ok()) return st.error();
    for (const auto& fn : prog_.functions) {
      if (fn->body == nullptr) continue;
      if (auto st = EmitFunction(*fn); !st.ok()) return st.error();
    }
    if (auto st = InitGlobals(); !st.ok()) return st.error();
    if (auto st = emit_.Finalize(); !st.ok()) return st.error();
    return BuildImage();
  }

 private:
  Error Err(const Pos& pos, const std::string& message) {
    return Error{message, file_, pos.line, pos.column};
  }

  // ---------- Setup passes ----------

  util::Status RegisterFunctions() {
    for (const auto& fn : prog_.functions) {
      std::vector<const Type*> params;
      for (const Param& p : fn->params) params.push_back(p.type);
      const Type* type = prog_.types.FuncType(fn->ret, std::move(params));
      auto it = functions_.find(fn->name);
      if (it != functions_.end()) {
        if (!TypeTable::Same(it->second.type, type)) {
          return Err(fn->pos, "conflicting declarations of '" + fn->name + "'");
        }
        if (fn->body != nullptr) {
          if (it->second.decl->body != nullptr) {
            return Err(fn->pos, "function '" + fn->name + "' redefined");
          }
          it->second.decl = fn.get();
        }
        continue;
      }
      if (fn->params.size() > 6) {
        return Err(fn->pos, "MiniC limit: at most 6 parameters");
      }
      functions_[fn->name] = FunctionInfo{fn.get(), emit_.NewLabel(), type};
    }
    for (const auto& [name, info] : functions_) {
      if (info.decl->body == nullptr) {
        return Err(info.decl->pos, "function '" + name + "' declared but never defined");
      }
    }
    return util::Status::Ok();
  }

  // Assigns every global an address in the data segment (uninitialized
  // globals are zero-filled data; MiniC folds bss into data for simplicity).
  util::Status LayoutGlobals() {
    for (const auto& g : prog_.globals) {
      if (globals_.count(g->name) != 0 || functions_.count(g->name) != 0) {
        return Err(g->pos, "duplicate global '" + g->name + "'");
      }
      if (g->type->IsStruct() && !g->type->struct_info->complete) {
        return Err(g->pos, "global of incomplete struct type");
      }
      emit_.DataAlign(g->type->Align());
      globals_[g->name] = GlobalInfo{g->type, emit_.DataPc()};
      global_syms_.push_back(image::Symbol{g->name, emit_.DataPc(), g->type->Size(),
                                           image::SymbolKind::kObject});
      emit_.DataZero(g->type->Size());
    }
    return util::Status::Ok();
  }

  // Fills in global initializers (done after functions are registered so
  // function-pointer tables can reference their labels).
  util::Status InitGlobals() {
    for (const auto& g : prog_.globals) {
      const GlobalInfo& info = globals_.at(g->name);
      if (g->init.scalar != nullptr) {
        if (g->type->IsArray() && g->type->elem->kind == Type::Kind::kChar &&
            g->init.scalar->kind == ExprKind::kStrLit) {
          // char buf[N] = "text";
          const std::string& s = g->init.scalar->text;
          if (s.size() + 1 > g->type->Size()) {
            return Err(g->pos, "string initializer too long");
          }
          if (auto st = PatchDataBytes(info.addr, s); !st.ok()) return st;
          continue;
        }
        if (!g->type->IsScalar()) {
          return Err(g->pos, "scalar initializer for non-scalar global");
        }
        auto v = EvalConst(*g->init.scalar);
        if (!v.ok()) return v.error();
        if (auto st = PatchDataConst(info.addr, g->type->Size(), *v); !st.ok()) return st;
        continue;
      }
      if (g->init.has_list) {
        if (!g->type->IsArray()) {
          return Err(g->pos, "initializer list requires an array type");
        }
        if (g->init.list.size() > g->type->array_len) {
          return Err(g->pos, "too many initializers");
        }
        const uint32_t elem_size = g->type->elem->Size();
        if (!g->type->elem->IsScalar()) {
          return Err(g->pos, "initializer list elements must be scalar");
        }
        uint32_t addr = info.addr;
        for (const ExprPtr& e : g->init.list) {
          auto v = EvalConst(*e);
          if (!v.ok()) return v.error();
          if (auto st = PatchDataConst(addr, elem_size, *v); !st.ok()) return st;
          addr += elem_size;
        }
      }
    }
    return util::Status::Ok();
  }

  util::Status PatchDataBytes(uint32_t addr, const std::string& s) {
    for (size_t i = 0; i < s.size(); ++i) {
      data_patches_.push_back({addr + static_cast<uint32_t>(i),
                               static_cast<uint8_t>(s[i])});
    }
    return util::Status::Ok();
  }

  util::Status PatchDataConst(uint32_t addr, uint32_t size, const ConstValue& v) {
    if (v.label != kNoLabel) {
      SC_CHECK_EQ(size, 4u);
      label_patches_.push_back({addr, v.label, v.value});
      return util::Status::Ok();
    }
    for (uint32_t i = 0; i < size; ++i) {
      data_patches_.push_back({addr + i, static_cast<uint8_t>(v.value >> (8 * i))});
    }
    return util::Status::Ok();
  }

  // Constant-expression evaluation for global initializers.
  Result<ConstValue> EvalConst(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return ConstValue{e.int_value, kNoLabel};
      case ExprKind::kStrLit:
        return ConstValue{InternString(e.text), kNoLabel};
      case ExprKind::kSizeof: {
        auto size = SizeofValue(e);
        if (!size.ok()) return size.error();
        return ConstValue{*size, kNoLabel};
      }
      case ExprKind::kIdent: {
        const auto fit = functions_.find(e.text);
        if (fit != functions_.end()) return ConstValue{0, fit->second.label};
        const auto git = globals_.find(e.text);
        if (git != globals_.end() && git->second.type->IsArray()) {
          return ConstValue{git->second.addr, kNoLabel};
        }
        return Err(e.pos, "initializer must be constant");
      }
      case ExprKind::kUnary: {
        if (e.op == Tok::kAmp && e.a->kind == ExprKind::kIdent) {
          const auto git = globals_.find(e.a->text);
          if (git != globals_.end()) return ConstValue{git->second.addr, kNoLabel};
          const auto fit = functions_.find(e.a->text);
          if (fit != functions_.end()) return ConstValue{0, fit->second.label};
          return Err(e.pos, "initializer must be constant");
        }
        auto v = EvalConst(*e.a);
        if (!v.ok()) return v;
        if (v->label != kNoLabel) return Err(e.pos, "bad constant expression");
        switch (e.op) {
          case Tok::kMinus: return ConstValue{0u - v->value, kNoLabel};
          case Tok::kTilde: return ConstValue{~v->value, kNoLabel};
          case Tok::kBang: return ConstValue{v->value == 0 ? 1u : 0u, kNoLabel};
          default: return Err(e.pos, "bad constant expression");
        }
      }
      case ExprKind::kBinary: {
        auto a = EvalConst(*e.a);
        if (!a.ok()) return a;
        auto b = EvalConst(*e.b);
        if (!b.ok()) return b;
        if (a->label != kNoLabel || b->label != kNoLabel) {
          return Err(e.pos, "bad constant expression");
        }
        const uint32_t x = a->value;
        const uint32_t y = b->value;
        switch (e.op) {
          case Tok::kPlus: return ConstValue{x + y, kNoLabel};
          case Tok::kMinus: return ConstValue{x - y, kNoLabel};
          case Tok::kStar: return ConstValue{x * y, kNoLabel};
          case Tok::kSlash:
            if (y == 0) return Err(e.pos, "division by zero in constant");
            return ConstValue{static_cast<uint32_t>(static_cast<int32_t>(x) /
                                                    static_cast<int32_t>(y)),
                              kNoLabel};
          case Tok::kPercent:
            if (y == 0) return Err(e.pos, "division by zero in constant");
            return ConstValue{static_cast<uint32_t>(static_cast<int32_t>(x) %
                                                    static_cast<int32_t>(y)),
                              kNoLabel};
          case Tok::kShl: return ConstValue{x << (y & 31), kNoLabel};
          case Tok::kShr: return ConstValue{x >> (y & 31), kNoLabel};
          case Tok::kAmp: return ConstValue{x & y, kNoLabel};
          case Tok::kPipe: return ConstValue{x | y, kNoLabel};
          case Tok::kCaret: return ConstValue{x ^ y, kNoLabel};
          default: return Err(e.pos, "bad constant expression");
        }
      }
      case ExprKind::kCast:
        return EvalConst(*e.a);
      default:
        return Err(e.pos, "initializer must be constant");
    }
  }

  Result<uint32_t> SizeofValue(const Expr& e) {
    SC_CHECK(e.kind == ExprKind::kSizeof);
    if (e.type_arg != nullptr) return e.type_arg->Size();
    auto type = TypeOf(*e.a);
    if (!type.ok()) return type.error();
    return (*type)->Size();
  }

  // Lightweight type inference (no emission) for sizeof(expr).
  Result<const Type*> TypeOf(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: return prog_.types.IntType();
      case ExprKind::kStrLit: return prog_.types.PtrTo(prog_.types.CharType());
      case ExprKind::kIdent: {
        if (const LocalVar* local = FindLocal(e.text)) return local->type;
        const auto git = globals_.find(e.text);
        if (git != globals_.end()) return git->second.type;
        const auto fit = functions_.find(e.text);
        if (fit != functions_.end()) return prog_.types.PtrTo(fit->second.type);
        return Err(e.pos, "unknown identifier '" + e.text + "'");
      }
      case ExprKind::kUnary: {
        if (e.op == Tok::kStar) {
          auto t = TypeOf(*e.a);
          if (!t.ok()) return t;
          if (!(*t)->IsPtr() && !(*t)->IsArray()) return Err(e.pos, "deref of non-pointer");
          return (*t)->elem;
        }
        if (e.op == Tok::kAmp) {
          auto t = TypeOf(*e.a);
          if (!t.ok()) return t;
          return prog_.types.PtrTo(*t);
        }
        return TypeOf(*e.a);
      }
      case ExprKind::kIndex: {
        auto t = TypeOf(*e.a);
        if (!t.ok()) return t;
        if (!(*t)->IsPtr() && !(*t)->IsArray()) return Err(e.pos, "index of non-array");
        return (*t)->elem;
      }
      case ExprKind::kMember: {
        auto t = TypeOf(*e.a);
        if (!t.ok()) return t;
        const Type* base = *t;
        if (e.is_arrow) {
          if (!base->IsPtr()) return Err(e.pos, "-> on non-pointer");
          base = base->elem;
        }
        if (!base->IsStruct()) return Err(e.pos, "member of non-struct");
        const StructField* f = base->struct_info->FindField(e.text);
        if (f == nullptr) return Err(e.pos, "no field '" + e.text + "'");
        return f->type;
      }
      case ExprKind::kCast: return e.type_arg;
      default: return Err(e.pos, "sizeof of this expression is not supported");
    }
  }

  uint32_t InternString(const std::string& s) {
    const auto it = string_pool_.find(s);
    if (it != string_pool_.end()) return it->second;
    emit_.DataAlign(1);
    const uint32_t addr = emit_.DataPc();
    for (char c : s) emit_.DataByte(static_cast<uint8_t>(c));
    emit_.DataByte(0);
    string_pool_[s] = addr;
    return addr;
  }

  // ---------- Function emission ----------

  util::Status EmitStart() {
    const auto it = functions_.find("main");
    if (it == functions_.end()) {
      return Error{"no 'main' function", file_, 0, 0};
    }
    entry_ = emit_.TextPc();
    // fp starts at 0 (register file is zeroed), terminating the stack walk.
    emit_.EmitJump(Opcode::kJal, it->second.label);
    emit_.Emit(isa::EncI(Opcode::kAddi, isa::kA0, isa::kRv, 0));
    emit_.Emit(isa::EncI(Opcode::kSys, 0, 0, vm_exit_syscall_));
    start_size_ = emit_.TextPc() - entry_;
    return util::Status::Ok();
  }

  util::Status EmitFunction(const FuncDecl& fn) {
    const FunctionInfo& info = functions_.at(fn.name);
    const uint32_t fn_start = emit_.TextPc();
    emit_.Bind(info.label);

    // Reset per-function state.
    scopes_.clear();
    scopes_.emplace_back();
    frame_cursor_ = 8;  // below saved ra (fp-4) and saved fp (fp-8)
    max_frame_ = 8;
    current_ret_ = fn.ret;
    epilogue_ = emit_.NewLabel();
    break_stack_.clear();
    continue_stack_.clear();

    // Prologue: build the uniform frame (see codegen.h).
    const size_t sp_adjust_index = emit_.NumWords();
    emit_.Emit(isa::EncI(Opcode::kAddi, isa::kSp, isa::kSp, 0));  // patched
    const size_t ra_save_index = emit_.NumWords();
    emit_.Emit(isa::EncI(Opcode::kSw, isa::kRa, isa::kSp, 0));    // patched
    const size_t fp_save_index = emit_.NumWords();
    emit_.Emit(isa::EncI(Opcode::kSw, isa::kFp, isa::kSp, 0));    // patched
    const size_t fp_set_index = emit_.NumWords();
    emit_.Emit(isa::EncI(Opcode::kAddi, isa::kFp, isa::kSp, 0));  // patched

    // Spill parameters into their frame slots.
    for (size_t i = 0; i < fn.params.size(); ++i) {
      const Param& p = fn.params[i];
      auto slot = AllocLocal(p.type, p.name, p.pos);
      if (!slot.ok()) return slot.error();
      emit_.Emit(isa::EncI(Opcode::kSw, static_cast<uint8_t>(isa::kA0 + i),
                           isa::kFp, *slot));
    }

    if (auto st = EmitStmt(*fn.body); !st.ok()) return st;

    // Epilogue (single exit).
    emit_.Bind(epilogue_);
    emit_.Emit(isa::EncI(Opcode::kLw, isa::kRa, isa::kFp, -4));
    emit_.Emit(isa::EncI(Opcode::kAddi, isa::kSp, isa::kFp, 0));
    emit_.Emit(isa::EncI(Opcode::kLw, isa::kFp, isa::kSp, -8));
    emit_.Emit(isa::EncRet());

    // Patch the frame size.
    const int32_t frame = static_cast<int32_t>((max_frame_ + 7) & ~7u);
    if (frame > 4096) {
      return Err(fn.pos, "frame too large (large locals should be globals)");
    }
    emit_.PatchImm16(sp_adjust_index, -frame);
    emit_.PatchImm16(ra_save_index, frame - 4);
    emit_.PatchImm16(fp_save_index, frame - 8);
    emit_.PatchImm16(fp_set_index, frame);

    func_syms_.push_back(image::Symbol{fn.name, fn_start, emit_.TextPc() - fn_start,
                                       image::SymbolKind::kFunction});
    return util::Status::Ok();
  }

  Result<int32_t> AllocLocal(const Type* type, const std::string& name, const Pos& pos) {
    if (type->IsVoid()) return Err(pos, "variable of void type");
    if (type->IsStruct() && !type->struct_info->complete) {
      return Err(pos, "variable of incomplete struct type");
    }
    auto& scope = scopes_.back();
    if (scope.count(name) != 0) {
      return Err(pos, "redeclaration of '" + name + "'");
    }
    const uint32_t align = std::max(type->Align(), 4u);
    frame_cursor_ = (frame_cursor_ + type->Size() + align - 1) & ~(align - 1);
    max_frame_ = std::max(max_frame_, frame_cursor_);
    const int32_t offset = -static_cast<int32_t>(frame_cursor_);
    scope[name] = LocalVar{type, offset};
    return offset;
  }

  const LocalVar* FindLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // ---------- Statements ----------

  util::Status EmitStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        const uint32_t saved_cursor = frame_cursor_;
        for (const StmtPtr& child : s.body) {
          if (auto st = EmitStmt(*child); !st.ok()) return st;
        }
        scopes_.pop_back();
        frame_cursor_ = saved_cursor;  // reuse sibling-scope slots
        return util::Status::Ok();
      }
      case StmtKind::kEmpty:
        return util::Status::Ok();
      case StmtKind::kExpr: {
        auto v = EmitExprForEffect(*s.expr);
        if (!v.ok()) return v.error();
        return util::Status::Ok();
      }
      case StmtKind::kVarDecl: {
        auto slot = AllocLocal(s.decl_type, s.decl_name, s.pos);
        if (!slot.ok()) return slot.error();
        if (s.decl_init != nullptr) {
          if (!s.decl_type->IsScalar()) {
            return Err(s.pos, "initializer for non-scalar local");
          }
          auto v = EmitValue(*s.decl_init);
          if (!v.ok()) return v.error();
          auto cv = Coerce(*v, s.decl_type, s.pos);
          if (!cv.ok()) return cv.error();
          EmitStore(cv->reg, isa::kFp, *slot, s.decl_type);
          regs_.Free(cv->reg);
        }
        return util::Status::Ok();
      }
      case StmtKind::kIf: {
        const Label else_label = emit_.NewLabel();
        if (auto st = EmitCondBranch(*s.expr, else_label, /*branch_if_true=*/false);
            !st.ok()) {
          return st;
        }
        if (auto st = EmitStmt(*s.then_stmt); !st.ok()) return st;
        if (s.else_stmt != nullptr) {
          const Label end_label = emit_.NewLabel();
          emit_.EmitJump(Opcode::kJ, end_label);
          emit_.Bind(else_label);
          if (auto st = EmitStmt(*s.else_stmt); !st.ok()) return st;
          emit_.Bind(end_label);
        } else {
          emit_.Bind(else_label);
        }
        return util::Status::Ok();
      }
      case StmtKind::kWhile: {
        const Label head = emit_.NewLabel();
        const Label end = emit_.NewLabel();
        emit_.Bind(head);
        if (auto st = EmitCondBranch(*s.expr, end, false); !st.ok()) return st;
        break_stack_.push_back(end);
        continue_stack_.push_back(head);
        if (auto st = EmitStmt(*s.then_stmt); !st.ok()) return st;
        break_stack_.pop_back();
        continue_stack_.pop_back();
        emit_.EmitJump(Opcode::kJ, head);
        emit_.Bind(end);
        return util::Status::Ok();
      }
      case StmtKind::kDoWhile: {
        const Label head = emit_.NewLabel();
        const Label cont = emit_.NewLabel();
        const Label end = emit_.NewLabel();
        emit_.Bind(head);
        break_stack_.push_back(end);
        continue_stack_.push_back(cont);
        if (auto st = EmitStmt(*s.then_stmt); !st.ok()) return st;
        break_stack_.pop_back();
        continue_stack_.pop_back();
        emit_.Bind(cont);
        if (auto st = EmitCondBranch(*s.expr, head, true); !st.ok()) return st;
        emit_.Bind(end);
        return util::Status::Ok();
      }
      case StmtKind::kFor: {
        scopes_.emplace_back();
        const uint32_t saved_cursor = frame_cursor_;
        if (s.init_decl != nullptr) {
          if (auto st = EmitStmt(*s.init_decl); !st.ok()) return st;
        } else if (s.init_expr != nullptr) {
          auto v = EmitExprForEffect(*s.init_expr);
          if (!v.ok()) return v.error();
        }
        const Label head = emit_.NewLabel();
        const Label cont = emit_.NewLabel();
        const Label end = emit_.NewLabel();
        emit_.Bind(head);
        if (s.expr != nullptr) {
          if (auto st = EmitCondBranch(*s.expr, end, false); !st.ok()) return st;
        }
        break_stack_.push_back(end);
        continue_stack_.push_back(cont);
        if (auto st = EmitStmt(*s.then_stmt); !st.ok()) return st;
        break_stack_.pop_back();
        continue_stack_.pop_back();
        emit_.Bind(cont);
        if (s.step_expr != nullptr) {
          auto v = EmitExprForEffect(*s.step_expr);
          if (!v.ok()) return v.error();
        }
        emit_.EmitJump(Opcode::kJ, head);
        emit_.Bind(end);
        scopes_.pop_back();
        frame_cursor_ = saved_cursor;
        return util::Status::Ok();
      }
      case StmtKind::kSwitch:
        return EmitSwitch(s);
      case StmtKind::kBreak:
        if (break_stack_.empty()) return Err(s.pos, "'break' outside loop/switch");
        emit_.EmitJump(Opcode::kJ, break_stack_.back());
        return util::Status::Ok();
      case StmtKind::kContinue:
        if (continue_stack_.empty()) return Err(s.pos, "'continue' outside loop");
        emit_.EmitJump(Opcode::kJ, continue_stack_.back());
        return util::Status::Ok();
      case StmtKind::kReturn: {
        if (s.expr != nullptr) {
          if (current_ret_->IsVoid()) return Err(s.pos, "returning a value from void");
          auto v = EmitValue(*s.expr);
          if (!v.ok()) return v.error();
          auto cv = Coerce(*v, current_ret_, s.pos);
          if (!cv.ok()) return cv.error();
          emit_.Emit(isa::EncI(Opcode::kAddi, isa::kRv, cv->reg, 0));
          regs_.Free(cv->reg);
        } else if (!current_ret_->IsVoid()) {
          return Err(s.pos, "missing return value");
        }
        emit_.EmitJump(Opcode::kJ, epilogue_);
        return util::Status::Ok();
      }
    }
    SC_UNREACHABLE();
    return util::Status::Ok();
  }

  util::Status EmitSwitch(const Stmt& s) {
    auto subject = EmitValue(*s.expr);
    if (!subject.ok()) return subject.error();
    if (!subject->type->IsInteger()) return Err(s.pos, "switch subject must be integer");

    const Label end = emit_.NewLabel();
    Label default_label = end;
    std::vector<std::pair<int32_t, Label>> case_labels;
    for (const SwitchCase& c : s.cases) {
      if (c.is_default) {
        default_label = emit_.NewLabel();
      } else {
        for (const auto& [v, l] : case_labels) {
          if (v == c.value) return Err(c.pos, "duplicate case value");
        }
        case_labels.emplace_back(c.value, emit_.NewLabel());
      }
    }

    // Dense value sets dispatch through a jump table in the data segment —
    // the table holds *original text addresses*, which at run time feed a
    // computed jump: exactly the ambiguous-pointer case the softcache
    // resolves via its hash table.
    int64_t min_v = INT64_MAX;
    int64_t max_v = INT64_MIN;
    for (const auto& [v, l] : case_labels) {
      min_v = std::min<int64_t>(min_v, v);
      max_v = std::max<int64_t>(max_v, v);
    }
    const bool dense = case_labels.size() >= 4 &&
                       (max_v - min_v + 1) <= 3 * static_cast<int64_t>(case_labels.size()) &&
                       (max_v - min_v + 1) <= 1024;
    if (dense) {
      const uint32_t range = static_cast<uint32_t>(max_v - min_v + 1);
      auto idx = regs_.Alloc(s.pos, file_);
      if (!idx.ok()) return idx.error();
      // idx = subject - min; if (idx >= range) goto default
      emit_.EmitLoadImm(*idx, static_cast<uint32_t>(min_v));
      emit_.Emit(isa::EncAlu(AluOp::kSub, *idx, subject->reg, *idx));
      auto bound = regs_.Alloc(s.pos, file_);
      if (!bound.ok()) return bound.error();
      emit_.EmitLoadImm(*bound, range);
      emit_.EmitBranch(Opcode::kBgeu, *idx, *bound, default_label);
      // target = table[idx]; jump
      emit_.DataAlign(4);
      const uint32_t table_addr = emit_.DataPc();
      std::map<int32_t, Label> by_value(case_labels.begin(), case_labels.end());
      for (int64_t v = min_v; v <= max_v; ++v) {
        const auto it = by_value.find(static_cast<int32_t>(v));
        if (it != by_value.end()) {
          emit_.DataWordLabel(it->second);
        } else {
          jump_table_default_patches_.push_back({emit_.DataPc(), default_label});
          emit_.DataWord(0);
        }
      }
      emit_.Emit(isa::EncI(Opcode::kSlli, *idx, *idx, 2));
      emit_.EmitLoadImm(*bound, table_addr);
      emit_.Emit(isa::EncAlu(AluOp::kAdd, *idx, *idx, *bound));
      emit_.Emit(isa::EncI(Opcode::kLw, *idx, *idx, 0));
      emit_.Emit(isa::EncI(Opcode::kJalr, isa::kZero, *idx, 0));
      regs_.Free(*bound);
      regs_.Free(*idx);
    } else {
      auto tmp = regs_.Alloc(s.pos, file_);
      if (!tmp.ok()) return tmp.error();
      for (const auto& [v, l] : case_labels) {
        emit_.EmitLoadImm(*tmp, static_cast<uint32_t>(v));
        emit_.EmitBranch(Opcode::kBeq, subject->reg, *tmp, l);
      }
      regs_.Free(*tmp);
      emit_.EmitJump(Opcode::kJ, default_label);
    }
    regs_.Free(subject->reg);

    // Case bodies, in source order, with C fall-through.
    break_stack_.push_back(end);
    size_t label_i = 0;
    for (const SwitchCase& c : s.cases) {
      if (c.is_default) {
        emit_.Bind(default_label);
      } else {
        emit_.Bind(case_labels[label_i].second);
        ++label_i;
      }
      for (const StmtPtr& body_stmt : c.body) {
        if (auto st = EmitStmt(*body_stmt); !st.ok()) return st;
      }
    }
    break_stack_.pop_back();
    emit_.Bind(end);
    return util::Status::Ok();
  }

  // Emits a conditional branch on `cond` to `target`. Short-circuits && and
  // || without materializing a 0/1 value.
  util::Status EmitCondBranch(const Expr& cond, Label target, bool branch_if_true) {
    if (cond.kind == ExprKind::kBinary && cond.op == Tok::kAndAnd) {
      if (branch_if_true) {
        const Label skip = emit_.NewLabel();
        if (auto st = EmitCondBranch(*cond.a, skip, false); !st.ok()) return st;
        if (auto st = EmitCondBranch(*cond.b, target, true); !st.ok()) return st;
        emit_.Bind(skip);
      } else {
        if (auto st = EmitCondBranch(*cond.a, target, false); !st.ok()) return st;
        if (auto st = EmitCondBranch(*cond.b, target, false); !st.ok()) return st;
      }
      return util::Status::Ok();
    }
    if (cond.kind == ExprKind::kBinary && cond.op == Tok::kOrOr) {
      if (branch_if_true) {
        if (auto st = EmitCondBranch(*cond.a, target, true); !st.ok()) return st;
        if (auto st = EmitCondBranch(*cond.b, target, true); !st.ok()) return st;
      } else {
        const Label skip = emit_.NewLabel();
        if (auto st = EmitCondBranch(*cond.a, skip, true); !st.ok()) return st;
        if (auto st = EmitCondBranch(*cond.b, target, false); !st.ok()) return st;
        emit_.Bind(skip);
      }
      return util::Status::Ok();
    }
    if (cond.kind == ExprKind::kUnary && cond.op == Tok::kBang) {
      return EmitCondBranch(*cond.a, target, !branch_if_true);
    }
    // Comparison operators branch directly.
    if (cond.kind == ExprKind::kBinary) {
      Opcode op = Opcode::kIllegal;
      bool swap = false;
      switch (cond.op) {
        case Tok::kEq: op = Opcode::kBeq; break;
        case Tok::kNe: op = Opcode::kBne; break;
        case Tok::kLt: op = Opcode::kBlt; break;
        case Tok::kGe: op = Opcode::kBge; break;
        case Tok::kGt: op = Opcode::kBlt; swap = true; break;
        case Tok::kLe: op = Opcode::kBge; swap = true; break;
        default: break;
      }
      if (op != Opcode::kIllegal) {
        auto a = EmitValue(*cond.a);
        if (!a.ok()) return a.error();
        auto b = EmitValue(*cond.b);
        if (!b.ok()) return b.error();
        const bool unsigned_cmp = IsUnsignedCompare(a->type, b->type);
        if (op == Opcode::kBlt && unsigned_cmp) op = Opcode::kBltu;
        if (op == Opcode::kBge && unsigned_cmp) op = Opcode::kBgeu;
        if (!branch_if_true) {
          // Invert the condition.
          switch (op) {
            case Opcode::kBeq: op = Opcode::kBne; break;
            case Opcode::kBne: op = Opcode::kBeq; break;
            case Opcode::kBlt: op = Opcode::kBge; break;
            case Opcode::kBge: op = Opcode::kBlt; break;
            case Opcode::kBltu: op = Opcode::kBgeu; break;
            case Opcode::kBgeu: op = Opcode::kBltu; break;
            default: SC_UNREACHABLE();
          }
        }
        const uint8_t r1 = swap ? b->reg : a->reg;
        const uint8_t r2 = swap ? a->reg : b->reg;
        emit_.EmitBranch(op, r1, r2, target);
        regs_.Free(a->reg);
        regs_.Free(b->reg);
        return util::Status::Ok();
      }
    }
    // General scalar condition: compare against zero.
    auto v = EmitValue(cond);
    if (!v.ok()) return v.error();
    if (!v->type->IsScalar()) return Err(cond.pos, "condition must be scalar");
    emit_.EmitBranch(branch_if_true ? Opcode::kBne : Opcode::kBeq, v->reg,
                     isa::kZero, target);
    regs_.Free(v->reg);
    return util::Status::Ok();
  }

  // ---------- Expressions ----------

  // Evaluates for side effects; frees the result register.
  util::Status EmitExprForEffect(const Expr& e) {
    auto v = EmitValueAllowVoid(e);
    if (!v.ok()) return v.error();
    if (v->type != nullptr && !v->type->IsVoid()) regs_.Free(v->reg);
    return util::Status::Ok();
  }

  Result<Value> EmitValueAllowVoid(const Expr& e) {
    if (e.kind == ExprKind::kCall) return EmitCall(e, /*need_value=*/false);
    if (e.kind == ExprKind::kAssign) return EmitAssign(e);
    if (e.kind == ExprKind::kUnary &&
        (e.op == Tok::kPlusPlus || e.op == Tok::kMinusMinus)) {
      return EmitIncDec(e);
    }
    return EmitValue(e);
  }

  // Compile-time evaluation of constant subexpressions, with semantics
  // exactly matching the SRK32 VM (wrapping arithmetic, 5-bit shift masks,
  // INT_MIN/-1 wrap). Returns nullopt when not a foldable constant.
  std::optional<uint32_t> TryFold(const Expr& e) {
    if (!options_fold_) return std::nullopt;
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.int_value;
      case ExprKind::kSizeof:
        if (e.type_arg != nullptr) return e.type_arg->Size();
        return std::nullopt;
      case ExprKind::kCast: {
        if (e.type_arg == nullptr || !e.type_arg->IsInteger()) return std::nullopt;
        const auto v = TryFold(*e.a);
        if (!v) return std::nullopt;
        return e.type_arg->kind == Type::Kind::kChar ? (*v & 0xff) : *v;
      }
      case ExprKind::kUnary: {
        const auto v = TryFold(*e.a);
        if (!v) return std::nullopt;
        switch (e.op) {
          case Tok::kMinus: return 0u - *v;
          case Tok::kTilde: return ~*v;
          case Tok::kBang: return *v == 0 ? 1u : 0u;
          default: return std::nullopt;
        }
      }
      case ExprKind::kBinary: {
        const auto a = TryFold(*e.a);
        if (!a) return std::nullopt;
        const auto b = TryFold(*e.b);
        if (!b) return std::nullopt;
        const int32_t sa = static_cast<int32_t>(*a);
        const int32_t sb = static_cast<int32_t>(*b);
        switch (e.op) {
          case Tok::kPlus: return *a + *b;
          case Tok::kMinus: return *a - *b;
          case Tok::kStar: return *a * *b;
          case Tok::kSlash:
            if (*b == 0) return std::nullopt;  // preserve the runtime fault
            if (sa == INT32_MIN && sb == -1) return *a;
            return static_cast<uint32_t>(sa / sb);
          case Tok::kPercent:
            if (*b == 0) return std::nullopt;
            if (sa == INT32_MIN && sb == -1) return 0u;
            return static_cast<uint32_t>(sa % sb);
          case Tok::kAmp: return *a & *b;
          case Tok::kPipe: return *a | *b;
          case Tok::kCaret: return *a ^ *b;
          case Tok::kShl: return *a << (*b & 31);
          case Tok::kShr:
            return static_cast<uint32_t>(sa >> (*b & 31));  // literals are int
          case Tok::kLt: return sa < sb ? 1u : 0u;
          case Tok::kGt: return sa > sb ? 1u : 0u;
          case Tok::kLe: return sa <= sb ? 1u : 0u;
          case Tok::kGe: return sa >= sb ? 1u : 0u;
          case Tok::kEq: return *a == *b ? 1u : 0u;
          case Tok::kNe: return *a != *b ? 1u : 0u;
          default: return std::nullopt;  // && and || stay short-circuit
        }
      }
      default:
        return std::nullopt;
    }
  }

  // Loads a scalar value into a fresh temp register.
  Result<Value> EmitValue(const Expr& e) {
    if (e.kind == ExprKind::kUnary || e.kind == ExprKind::kBinary ||
        e.kind == ExprKind::kCast) {
      if (const auto folded = TryFold(e)) {
        auto r = regs_.Alloc(e.pos, file_);
        if (!r.ok()) return r.error();
        emit_.EmitLoadImm(*r, *folded);
        const Type* type = e.kind == ExprKind::kCast ? e.type_arg
                                                     : prog_.types.IntType();
        return Value{*r, type};
      }
    }
    switch (e.kind) {
      case ExprKind::kIntLit: {
        auto r = regs_.Alloc(e.pos, file_);
        if (!r.ok()) return r.error();
        emit_.EmitLoadImm(*r, e.int_value);
        return Value{*r, prog_.types.IntType()};
      }
      case ExprKind::kStrLit: {
        auto r = regs_.Alloc(e.pos, file_);
        if (!r.ok()) return r.error();
        emit_.EmitLoadImm(*r, InternString(e.text));
        return Value{*r, prog_.types.PtrTo(prog_.types.CharType())};
      }
      case ExprKind::kIdent: {
        if (const LocalVar* local = FindLocal(e.text)) {
          auto r = regs_.Alloc(e.pos, file_);
          if (!r.ok()) return r.error();
          if (local->type->IsArray()) {
            emit_.Emit(isa::EncI(Opcode::kAddi, *r, isa::kFp, local->fp_offset));
            return Value{*r, prog_.types.PtrTo(local->type->elem)};
          }
          if (local->type->IsStruct()) {
            return Err(e.pos, "struct used as a value (use a pointer)");
          }
          EmitLoad(*r, isa::kFp, local->fp_offset, local->type);
          return Value{*r, local->type};
        }
        const auto git = globals_.find(e.text);
        if (git != globals_.end()) {
          auto r = regs_.Alloc(e.pos, file_);
          if (!r.ok()) return r.error();
          const GlobalInfo& g = git->second;
          if (g.type->IsArray()) {
            emit_.EmitLoadImm(*r, g.addr);
            return Value{*r, prog_.types.PtrTo(g.type->elem)};
          }
          if (g.type->IsStruct()) {
            return Err(e.pos, "struct used as a value (use a pointer)");
          }
          emit_.EmitLoadImm(*r, g.addr);
          EmitLoad(*r, *r, 0, g.type);
          return Value{*r, g.type};
        }
        const auto fit = functions_.find(e.text);
        if (fit != functions_.end()) {
          auto r = regs_.Alloc(e.pos, file_);
          if (!r.ok()) return r.error();
          emit_.EmitLoadLabel(*r, fit->second.label);
          return Value{*r, prog_.types.PtrTo(fit->second.type)};
        }
        return Err(e.pos, "unknown identifier '" + e.text + "'");
      }
      case ExprKind::kSizeof: {
        auto size = SizeofValue(e);
        if (!size.ok()) return size.error();
        auto r = regs_.Alloc(e.pos, file_);
        if (!r.ok()) return r.error();
        emit_.EmitLoadImm(*r, *size);
        return Value{*r, prog_.types.UintType()};
      }
      case ExprKind::kCast: {
        if (e.type_arg->IsVoid()) return Err(e.pos, "cast to void");
        auto v = EmitValue(*e.a);
        if (!v.ok()) return v;
        if (!v->type->IsScalar()) return Err(e.pos, "cast of non-scalar");
        if (e.type_arg->kind == Type::Kind::kChar) {
          emit_.Emit(isa::EncI(Opcode::kAndi, v->reg, v->reg, 0xff));
        }
        return Value{v->reg, e.type_arg};
      }
      case ExprKind::kUnary:
        return EmitUnary(e);
      case ExprKind::kBinary:
        return EmitBinary(e);
      case ExprKind::kAssign: {
        auto v = EmitAssign(e);
        if (!v.ok()) return v;
        return v;
      }
      case ExprKind::kTernary:
        return EmitTernary(e);
      case ExprKind::kCall:
        return EmitCall(e, /*need_value=*/true);
      case ExprKind::kIndex:
      case ExprKind::kMember: {
        auto addr = EmitAddr(e);
        if (!addr.ok()) return addr;
        const Type* type = addr->type;
        if (type->IsArray()) {
          return Value{addr->reg, prog_.types.PtrTo(type->elem)};  // decay
        }
        if (type->IsStruct()) {
          return Err(e.pos, "struct used as a value (use a pointer)");
        }
        EmitLoad(addr->reg, addr->reg, 0, type);
        return Value{addr->reg, type};
      }
    }
    SC_UNREACHABLE();
    return Err(e.pos, "unreachable");
  }

  // Computes the address of an lvalue into a fresh temp register. The
  // returned Value's type is the type of the *object at that address*.
  Result<Value> EmitAddr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdent: {
        if (const LocalVar* local = FindLocal(e.text)) {
          auto r = regs_.Alloc(e.pos, file_);
          if (!r.ok()) return r.error();
          emit_.Emit(isa::EncI(Opcode::kAddi, *r, isa::kFp, local->fp_offset));
          return Value{*r, local->type};
        }
        const auto git = globals_.find(e.text);
        if (git != globals_.end()) {
          auto r = regs_.Alloc(e.pos, file_);
          if (!r.ok()) return r.error();
          emit_.EmitLoadImm(*r, git->second.addr);
          return Value{*r, git->second.type};
        }
        const auto fit = functions_.find(e.text);
        if (fit != functions_.end()) {
          auto r = regs_.Alloc(e.pos, file_);
          if (!r.ok()) return r.error();
          emit_.EmitLoadLabel(*r, fit->second.label);
          return Value{*r, fit->second.type};
        }
        return Err(e.pos, "unknown identifier '" + e.text + "'");
      }
      case ExprKind::kUnary: {
        if (e.op != Tok::kStar) return Err(e.pos, "not an lvalue");
        auto v = EmitValue(*e.a);
        if (!v.ok()) return v;
        if (!v->type->IsPtr()) return Err(e.pos, "dereference of non-pointer");
        return Value{v->reg, v->type->elem};
      }
      case ExprKind::kIndex: {
        auto base = EmitValue(*e.a);  // arrays decay to pointers here
        if (!base.ok()) return base;
        if (!base->type->IsPtr()) return Err(e.pos, "indexing a non-pointer");
        const Type* elem = base->type->elem;
        auto index = EmitValue(*e.b);
        if (!index.ok()) return index;
        if (!index->type->IsInteger()) return Err(e.pos, "index must be integer");
        EmitScale(index->reg, elem->Size());
        emit_.Emit(isa::EncAlu(AluOp::kAdd, base->reg, base->reg, index->reg));
        regs_.Free(index->reg);
        return Value{base->reg, elem};
      }
      case ExprKind::kMember: {
        Result<Value> base = e.is_arrow ? EmitValue(*e.a) : EmitAddr(*e.a);
        if (!base.ok()) return base;
        const Type* struct_type = base->type;
        if (e.is_arrow) {
          if (!struct_type->IsPtr()) return Err(e.pos, "-> on non-pointer");
          struct_type = struct_type->elem;
        }
        if (!struct_type->IsStruct()) return Err(e.pos, "member of non-struct");
        const StructField* field = struct_type->struct_info->FindField(e.text);
        if (field == nullptr) {
          return Err(e.pos, "no field '" + e.text + "' in struct " +
                                struct_type->struct_info->name);
        }
        if (field->offset != 0) {
          emit_.Emit(isa::EncI(Opcode::kAddi, base->reg, base->reg,
                               static_cast<int32_t>(field->offset)));
        }
        return Value{base->reg, field->type};
      }
      default:
        return Err(e.pos, "not an lvalue");
    }
  }

  Result<Value> EmitUnary(const Expr& e) {
    switch (e.op) {
      case Tok::kMinus: {
        auto v = EmitValue(*e.a);
        if (!v.ok()) return v;
        if (!v->type->IsInteger()) return Err(e.pos, "negation of non-integer");
        emit_.Emit(isa::EncAlu(AluOp::kSub, v->reg, isa::kZero, v->reg));
        return Value{v->reg, Promote(v->type)};
      }
      case Tok::kTilde: {
        auto v = EmitValue(*e.a);
        if (!v.ok()) return v;
        if (!v->type->IsInteger()) return Err(e.pos, "~ of non-integer");
        // ~x == -x - 1 (XORI zero-extends, so it cannot produce ~).
        emit_.Emit(isa::EncAlu(AluOp::kSub, v->reg, isa::kZero, v->reg));
        emit_.Emit(isa::EncI(Opcode::kAddi, v->reg, v->reg, -1));
        return Value{v->reg, Promote(v->type)};
      }
      case Tok::kBang: {
        auto v = EmitValue(*e.a);
        if (!v.ok()) return v;
        if (!v->type->IsScalar()) return Err(e.pos, "! of non-scalar");
        emit_.Emit(isa::EncI(Opcode::kSltiu, v->reg, v->reg, 1));
        return Value{v->reg, prog_.types.IntType()};
      }
      case Tok::kStar: {
        auto v = EmitValue(*e.a);
        if (!v.ok()) return v;
        if (!v->type->IsPtr()) return Err(e.pos, "dereference of non-pointer");
        const Type* elem = v->type->elem;
        if (elem->IsStruct()) return Err(e.pos, "struct used as a value");
        if (elem->IsArray()) return Value{v->reg, prog_.types.PtrTo(elem->elem)};
        if (elem->IsFunc()) return Value{v->reg, v->type};  // *f == f for fn ptrs
        EmitLoad(v->reg, v->reg, 0, elem);
        return Value{v->reg, elem};
      }
      case Tok::kAmp: {
        auto addr = EmitAddr(*e.a);
        if (!addr.ok()) return addr;
        return Value{addr->reg, prog_.types.PtrTo(addr->type)};
      }
      case Tok::kPlusPlus:
      case Tok::kMinusMinus:
        return EmitIncDec(e);
      default:
        return Err(e.pos, "bad unary operator");
    }
  }

  Result<Value> EmitIncDec(const Expr& e) {
    auto addr = EmitAddr(*e.a);
    if (!addr.ok()) return addr;
    const Type* type = addr->type;
    if (!type->IsScalar()) return Err(e.pos, "++/-- on non-scalar");
    auto old_v = regs_.Alloc(e.pos, file_);
    if (!old_v.ok()) return old_v.error();
    EmitLoad(*old_v, addr->reg, 0, type);
    auto new_v = regs_.Alloc(e.pos, file_);
    if (!new_v.ok()) return new_v.error();
    int32_t step = 1;
    if (type->IsPtr()) step = static_cast<int32_t>(type->elem->Size());
    if (e.op == Tok::kMinusMinus) step = -step;
    emit_.Emit(isa::EncI(Opcode::kAddi, *new_v, *old_v, step));
    EmitStore(*new_v, addr->reg, 0, type);
    regs_.Free(addr->reg);
    if (e.is_postfix) {
      regs_.Free(*new_v);
      return Value{*old_v, type};
    }
    regs_.Free(*old_v);
    return Value{*new_v, type};
  }

  Result<Value> EmitTernary(const Expr& e) {
    auto result = regs_.Alloc(e.pos, file_);
    if (!result.ok()) return result.error();
    const Label else_label = emit_.NewLabel();
    const Label end_label = emit_.NewLabel();
    if (auto st = EmitCondBranch(*e.a, else_label, false); !st.ok()) return st.error();
    auto then_v = EmitValue(*e.b);
    if (!then_v.ok()) return then_v;
    if (!then_v->type->IsScalar()) return Err(e.pos, "ternary arm must be scalar");
    emit_.Emit(isa::EncI(Opcode::kAddi, *result, then_v->reg, 0));
    regs_.Free(then_v->reg);
    emit_.EmitJump(Opcode::kJ, end_label);
    emit_.Bind(else_label);
    auto else_v = EmitValue(*e.c);
    if (!else_v.ok()) return else_v;
    if (!else_v->type->IsScalar()) return Err(e.pos, "ternary arm must be scalar");
    emit_.Emit(isa::EncI(Opcode::kAddi, *result, else_v->reg, 0));
    const Type* type = then_v->type;
    regs_.Free(else_v->reg);
    emit_.Bind(end_label);
    return Value{*result, type};
  }

  // Maps compound-assign tokens to the underlying binary operator.
  static Tok UnderlyingOp(Tok op) {
    switch (op) {
      case Tok::kPlusAssign: return Tok::kPlus;
      case Tok::kMinusAssign: return Tok::kMinus;
      case Tok::kStarAssign: return Tok::kStar;
      case Tok::kSlashAssign: return Tok::kSlash;
      case Tok::kPercentAssign: return Tok::kPercent;
      case Tok::kAmpAssign: return Tok::kAmp;
      case Tok::kPipeAssign: return Tok::kPipe;
      case Tok::kCaretAssign: return Tok::kCaret;
      case Tok::kShlAssign: return Tok::kShl;
      case Tok::kShrAssign: return Tok::kShr;
      default: return Tok::kEof;
    }
  }

  Result<Value> EmitAssign(const Expr& e) {
    auto addr = EmitAddr(*e.a);
    if (!addr.ok()) return addr;
    const Type* type = addr->type;
    if (!type->IsScalar()) return Err(e.pos, "assignment to non-scalar");
    auto rhs = EmitValue(*e.b);
    if (!rhs.ok()) return rhs;
    if (e.op == Tok::kAssign) {
      auto cv = Coerce(*rhs, type, e.pos);
      if (!cv.ok()) return cv.error();
      EmitStore(cv->reg, addr->reg, 0, type);
      regs_.Free(addr->reg);
      return Value{cv->reg, type};
    }
    // Compound assignment: load old value, apply op, store.
    auto old_v = regs_.Alloc(e.pos, file_);
    if (!old_v.ok()) return old_v.error();
    EmitLoad(*old_v, addr->reg, 0, type);
    auto result = ApplyBinaryOp(UnderlyingOp(e.op), Value{*old_v, type}, *rhs, e.pos);
    if (!result.ok()) return result;
    auto cv = Coerce(*result, type, e.pos);
    if (!cv.ok()) return cv.error();
    EmitStore(cv->reg, addr->reg, 0, type);
    regs_.Free(addr->reg);
    return Value{cv->reg, type};
  }

  Result<Value> EmitBinary(const Expr& e) {
    if (e.op == Tok::kAndAnd || e.op == Tok::kOrOr) {
      // Materialize short-circuit result as 0/1.
      auto result = regs_.Alloc(e.pos, file_);
      if (!result.ok()) return result.error();
      const Label false_label = emit_.NewLabel();
      const Label end_label = emit_.NewLabel();
      if (auto st = EmitCondBranch(e, false_label, false); !st.ok()) return st.error();
      emit_.Emit(isa::EncI(Opcode::kAddi, *result, isa::kZero, 1));
      emit_.EmitJump(Opcode::kJ, end_label);
      emit_.Bind(false_label);
      emit_.Emit(isa::EncI(Opcode::kAddi, *result, isa::kZero, 0));
      emit_.Bind(end_label);
      return Value{*result, prog_.types.IntType()};
    }
    auto a = EmitValue(*e.a);
    if (!a.ok()) return a;
    auto b = EmitValue(*e.b);
    if (!b.ok()) return b;
    return ApplyBinaryOp(e.op, *a, *b, e.pos);
  }

  // Applies a binary operator to two register values. Result reuses a's
  // register; b's register is freed.
  Result<Value> ApplyBinaryOp(Tok op, Value a, Value b, const Pos& pos) {
    // Pointer arithmetic.
    if (op == Tok::kPlus && a.type->IsPtr() && b.type->IsInteger()) {
      EmitScale(b.reg, a.type->elem->Size());
      emit_.Emit(isa::EncAlu(AluOp::kAdd, a.reg, a.reg, b.reg));
      regs_.Free(b.reg);
      return Value{a.reg, a.type};
    }
    if (op == Tok::kPlus && a.type->IsInteger() && b.type->IsPtr()) {
      EmitScale(a.reg, b.type->elem->Size());
      emit_.Emit(isa::EncAlu(AluOp::kAdd, a.reg, a.reg, b.reg));
      regs_.Free(b.reg);
      return Value{a.reg, b.type};
    }
    if (op == Tok::kMinus && a.type->IsPtr() && b.type->IsInteger()) {
      EmitScale(b.reg, a.type->elem->Size());
      emit_.Emit(isa::EncAlu(AluOp::kSub, a.reg, a.reg, b.reg));
      regs_.Free(b.reg);
      return Value{a.reg, a.type};
    }
    if (op == Tok::kMinus && a.type->IsPtr() && b.type->IsPtr()) {
      emit_.Emit(isa::EncAlu(AluOp::kSub, a.reg, a.reg, b.reg));
      const uint32_t size = a.type->elem->Size();
      if (size > 1) {
        if ((size & (size - 1)) == 0) {
          int shift = 0;
          while ((1u << shift) < size) ++shift;
          emit_.Emit(isa::EncI(Opcode::kSrai, a.reg, a.reg, shift));
        } else {
          emit_.EmitLoadImm(b.reg, size);
          emit_.Emit(isa::EncAlu(AluOp::kDiv, a.reg, a.reg, b.reg));
        }
      }
      regs_.Free(b.reg);
      return Value{a.reg, prog_.types.IntType()};
    }

    // Comparisons.
    switch (op) {
      case Tok::kEq:
      case Tok::kNe: {
        emit_.Emit(isa::EncAlu(AluOp::kXor, a.reg, a.reg, b.reg));
        if (op == Tok::kEq) {
          emit_.Emit(isa::EncI(Opcode::kSltiu, a.reg, a.reg, 1));
        } else {
          emit_.Emit(isa::EncAlu(AluOp::kSltu, a.reg, isa::kZero, a.reg));
        }
        regs_.Free(b.reg);
        return Value{a.reg, prog_.types.IntType()};
      }
      case Tok::kLt:
      case Tok::kGt:
      case Tok::kLe:
      case Tok::kGe: {
        const bool unsigned_cmp = IsUnsignedCompare(a.type, b.type);
        const AluOp slt = unsigned_cmp ? AluOp::kSltu : AluOp::kSlt;
        switch (op) {
          case Tok::kLt:
            emit_.Emit(isa::EncAlu(slt, a.reg, a.reg, b.reg));
            break;
          case Tok::kGt:
            emit_.Emit(isa::EncAlu(slt, a.reg, b.reg, a.reg));
            break;
          case Tok::kLe:
            emit_.Emit(isa::EncAlu(slt, a.reg, b.reg, a.reg));
            emit_.Emit(isa::EncI(Opcode::kXori, a.reg, a.reg, 1));
            break;
          case Tok::kGe:
            emit_.Emit(isa::EncAlu(slt, a.reg, a.reg, b.reg));
            emit_.Emit(isa::EncI(Opcode::kXori, a.reg, a.reg, 1));
            break;
          default: SC_UNREACHABLE();
        }
        regs_.Free(b.reg);
        return Value{a.reg, prog_.types.IntType()};
      }
      default:
        break;
    }

    // Integer arithmetic / bitwise.
    if (!a.type->IsInteger() || !b.type->IsInteger()) {
      return Err(pos, "invalid operand types for binary operator");
    }
    const Type* result_type = Promote2(a.type, b.type);
    const bool is_unsigned = result_type->kind == Type::Kind::kUint;
    AluOp funct;
    switch (op) {
      case Tok::kPlus: funct = AluOp::kAdd; break;
      case Tok::kMinus: funct = AluOp::kSub; break;
      case Tok::kStar: funct = AluOp::kMul; break;
      case Tok::kSlash: funct = is_unsigned ? AluOp::kDivu : AluOp::kDiv; break;
      case Tok::kPercent: funct = is_unsigned ? AluOp::kRemu : AluOp::kRem; break;
      case Tok::kAmp: funct = AluOp::kAnd; break;
      case Tok::kPipe: funct = AluOp::kOr; break;
      case Tok::kCaret: funct = AluOp::kXor; break;
      case Tok::kShl: funct = AluOp::kSll; break;
      case Tok::kShr:
        // Shift signedness follows the *left* operand.
        funct = a.type->kind == Type::Kind::kInt ? AluOp::kSra : AluOp::kSrl;
        break;
      default:
        return Err(pos, "bad binary operator");
    }
    emit_.Emit(isa::EncAlu(funct, a.reg, a.reg, b.reg));
    regs_.Free(b.reg);
    return Value{a.reg, result_type};
  }

  Result<Value> EmitCall(const Expr& e, bool need_value) {
    // Builtin syscalls.
    if (e.a->kind == ExprKind::kIdent) {
      for (const Builtin& bi : kBuiltins) {
        if (e.a->text == bi.name) return EmitBuiltin(e, bi, need_value);
      }
    }

    // Resolve the callee: direct call to a named function, or an indirect
    // call through a function-pointer value.
    const FunctionInfo* direct = nullptr;
    const Type* fn_type = nullptr;
    if (e.a->kind == ExprKind::kIdent) {
      const auto it = functions_.find(e.a->text);
      if (it != functions_.end() && FindLocal(e.a->text) == nullptr &&
          globals_.count(e.a->text) == 0) {
        direct = &it->second;
        fn_type = it->second.type;
      }
    }
    std::optional<Value> callee;
    if (direct == nullptr) {
      // Indirect: (*f)(...) or f(...) where f is a function pointer.
      const Expr* callee_expr = e.a.get();
      if (callee_expr->kind == ExprKind::kUnary && callee_expr->op == Tok::kStar) {
        callee_expr = callee_expr->a.get();
      }
      auto v = EmitValue(*callee_expr);
      if (!v.ok()) return v;
      if (!v->type->IsPtr() || !v->type->elem->IsFunc()) {
        return Err(e.pos, "call of non-function");
      }
      fn_type = v->type->elem;
      callee = *v;
    }

    if (e.args.size() != fn_type->params.size()) {
      return Err(e.pos, "wrong number of arguments");
    }
    if (e.args.size() > 6) return Err(e.pos, "MiniC limit: at most 6 arguments");

    // Evaluate arguments into temps.
    std::vector<Value> arg_values;
    for (size_t i = 0; i < e.args.size(); ++i) {
      auto v = EmitValue(*e.args[i]);
      if (!v.ok()) return v;
      auto cv = Coerce(*v, fn_type->params[i], e.args[i]->pos);
      if (!cv.ok()) return cv.error();
      arg_values.push_back(*cv);
    }
    // Move them to the argument registers and free the temps.
    for (size_t i = 0; i < arg_values.size(); ++i) {
      emit_.Emit(isa::EncI(Opcode::kAddi, static_cast<uint8_t>(isa::kA0 + i),
                           arg_values[i].reg, 0));
      regs_.Free(arg_values[i].reg);
    }
    // Spill any remaining live temps (caller-saved) around the call. The
    // callee's address register (indirect calls) must be excluded from the
    // spill set only if still allocated — it is, so spill it too and reload.
    std::vector<uint8_t> live = regs_.Live();
    if (callee) {
      // Don't spill the callee register (it's consumed by the call itself).
      live.erase(std::find(live.begin(), live.end(), callee->reg));
    }
    for (uint8_t r : live) PushReg(r);

    if (direct != nullptr) {
      emit_.EmitJump(Opcode::kJal, direct->label);
    } else {
      emit_.Emit(isa::EncI(Opcode::kJalr, isa::kRa, callee->reg, 0));
      regs_.Free(callee->reg);
    }

    for (auto it = live.rbegin(); it != live.rend(); ++it) PopReg(*it);

    if (fn_type->ret->IsVoid()) {
      if (need_value) return Err(e.pos, "void function used as a value");
      return Value{0, prog_.types.VoidType()};
    }
    auto r = regs_.Alloc(e.pos, file_);
    if (!r.ok()) return r.error();
    emit_.Emit(isa::EncI(Opcode::kAddi, *r, isa::kRv, 0));
    return Value{*r, fn_type->ret};
  }

  Result<Value> EmitBuiltin(const Expr& e, const Builtin& bi, bool need_value) {
    if (static_cast<int>(e.args.size()) != bi.num_args) {
      return Err(e.pos, std::string(bi.name) + " expects " +
                            std::to_string(bi.num_args) + " arguments");
    }
    std::vector<Value> arg_values;
    for (const ExprPtr& arg : e.args) {
      auto v = EmitValue(*arg);
      if (!v.ok()) return v;
      if (!v->type->IsScalar()) return Err(arg->pos, "builtin argument must be scalar");
      arg_values.push_back(*v);
    }
    for (size_t i = 0; i < arg_values.size(); ++i) {
      emit_.Emit(isa::EncI(Opcode::kAddi, static_cast<uint8_t>(isa::kA0 + i),
                           arg_values[i].reg, 0));
      regs_.Free(arg_values[i].reg);
    }
    emit_.Emit(isa::EncI(Opcode::kSys, 0, 0, bi.syscall));
    if (!bi.has_result) {
      if (need_value) return Err(e.pos, std::string(bi.name) + " returns void");
      return Value{0, prog_.types.VoidType()};
    }
    auto r = regs_.Alloc(e.pos, file_);
    if (!r.ok()) return r.error();
    emit_.Emit(isa::EncI(Opcode::kAddi, *r, isa::kRv, 0));
    return Value{*r, prog_.types.IntType()};
  }

  // ---------- Emission helpers ----------

  void EmitLoad(uint8_t rd, uint8_t base, int32_t offset, const Type* type) {
    const Opcode op = type->Size() == 1 ? Opcode::kLbu : Opcode::kLw;
    emit_.Emit(isa::EncI(op, rd, base, offset));
  }
  void EmitStore(uint8_t rs, uint8_t base, int32_t offset, const Type* type) {
    const Opcode op = type->Size() == 1 ? Opcode::kSb : Opcode::kSw;
    emit_.Emit(isa::EncI(op, rs, base, offset));
  }

  // Multiplies `reg` in place by a constant element size.
  void EmitScale(uint8_t reg, uint32_t size) {
    if (size == 1) return;
    if ((size & (size - 1)) == 0) {
      int shift = 0;
      while ((1u << shift) < size) ++shift;
      emit_.Emit(isa::EncI(Opcode::kSlli, reg, reg, shift));
      return;
    }
    // Non-power-of-two struct sizes: multiply via the at register.
    emit_.EmitLoadImm(isa::kAt, size);
    emit_.Emit(isa::EncAlu(AluOp::kMul, reg, reg, isa::kAt));
  }

  void PushReg(uint8_t reg) {
    emit_.Emit(isa::EncI(Opcode::kAddi, isa::kSp, isa::kSp, -4));
    emit_.Emit(isa::EncI(Opcode::kSw, reg, isa::kSp, 0));
  }
  void PopReg(uint8_t reg) {
    emit_.Emit(isa::EncI(Opcode::kLw, reg, isa::kSp, 0));
    emit_.Emit(isa::EncI(Opcode::kAddi, isa::kSp, isa::kSp, 4));
  }

  const Type* Promote(const Type* t) {
    return t->kind == Type::Kind::kChar ? prog_.types.IntType() : t;
  }
  const Type* Promote2(const Type* a, const Type* b) {
    const Type* pa = Promote(a);
    const Type* pb = Promote(b);
    if (pa->kind == Type::Kind::kUint || pb->kind == Type::Kind::kUint) {
      return prog_.types.UintType();
    }
    return prog_.types.IntType();
  }
  static bool IsUnsignedCompare(const Type* a, const Type* b) {
    if (a->IsPtr() || b->IsPtr()) return true;
    return a->kind == Type::Kind::kUint || b->kind == Type::Kind::kUint;
  }

  // Implicit conversion of `v` to `target` (integer narrowing, pointer
  // compatibility). Returns the (possibly adjusted) value.
  Result<Value> Coerce(Value v, const Type* target, const Pos& pos) {
    if (TypeTable::Same(v.type, target)) return v;
    if (v.type->IsInteger() && target->IsInteger()) {
      if (target->kind == Type::Kind::kChar) {
        emit_.Emit(isa::EncI(Opcode::kAndi, v.reg, v.reg, 0xff));
      }
      return Value{v.reg, target};
    }
    // Pointer conversions are permissive (MiniC has no void* — any pointer
    // converts to any pointer, like pre-ANSI C).
    if (v.type->IsPtr() && target->IsPtr()) return Value{v.reg, target};
    // Integer 0 (or any integer) to pointer and back: permitted explicitly
    // for allocator-style code.
    if (v.type->IsInteger() && target->IsPtr()) return Value{v.reg, target};
    if (v.type->IsPtr() && target->IsInteger()) return Value{v.reg, target};
    return Err(pos, "cannot convert " + v.type->ToString() + " to " +
                        target->ToString());
  }

  // ---------- Image assembly ----------

  Result<image::Image> BuildImage() {
    image::Image img;
    img.entry = entry_;
    img.text_base = emit_.text_base();
    img.text = emit_.TextBytes();
    img.data_base = emit_.data_base();
    img.data = emit_.DataBytes();
    img.bss_base = img.data_end();
    img.bss_size = 0;
    for (const auto& patch : data_patches_) {
      const uint32_t off = patch.addr - img.data_base;
      SC_CHECK_LT(off, img.data.size());
      img.data[off] = patch.value;
    }
    const auto patch_word = [&img](uint32_t addr, uint32_t value) {
      const uint32_t off = addr - img.data_base;
      SC_CHECK_LE(off + 4, img.data.size());
      img.data[off] = static_cast<uint8_t>(value);
      img.data[off + 1] = static_cast<uint8_t>(value >> 8);
      img.data[off + 2] = static_cast<uint8_t>(value >> 16);
      img.data[off + 3] = static_cast<uint8_t>(value >> 24);
    };
    for (const auto& patch : label_patches_) {
      patch_word(patch.addr, emit_.AddressOf(patch.label) + patch.addend);
    }
    for (const auto& patch : jump_table_default_patches_) {
      patch_word(patch.addr, emit_.AddressOf(patch.label));
    }
    img.symbols = std::move(func_syms_);
    img.symbols.push_back(image::Symbol{"_start", entry_, start_size_,
                                        image::SymbolKind::kFunction});
    for (auto& sym : global_syms_) img.symbols.push_back(std::move(sym));
    return img;
  }

  Program& prog_;
  std::string file_;
  Emitter emit_;
  bool options_fold_ = true;

  std::map<std::string, FunctionInfo, std::less<>> functions_;
  std::map<std::string, GlobalInfo, std::less<>> globals_;
  std::map<std::string, uint32_t, std::less<>> string_pool_;

  std::vector<std::map<std::string, LocalVar>> scopes_;
  RegPool regs_;
  uint32_t frame_cursor_ = 8;
  uint32_t max_frame_ = 8;
  const Type* current_ret_ = nullptr;
  Label epilogue_ = kNoLabel;
  std::vector<Label> break_stack_;
  std::vector<Label> continue_stack_;

  uint32_t entry_ = 0;
  uint32_t start_size_ = 0;
  static constexpr int32_t vm_exit_syscall_ = 0;

  struct BytePatch {
    uint32_t addr;
    uint8_t value;
  };
  struct LabelPatch {
    uint32_t addr;
    Label label;
    uint32_t addend = 0;
  };
  std::vector<BytePatch> data_patches_;
  std::vector<LabelPatch> label_patches_;
  std::vector<LabelPatch> jump_table_default_patches_;
  std::vector<image::Symbol> func_syms_;
  std::vector<image::Symbol> global_syms_;
};

}  // namespace

util::Result<image::Image> GenerateCode(Program& program, std::string_view filename,
                                        const CodegenOptions& options) {
  return Codegen(program, filename, options).Run();
}

}  // namespace sc::minicc
