// MiniC recursive-descent parser.
#pragma once

#include <memory>
#include <string_view>

#include "minicc/ast.h"
#include "util/result.h"

namespace sc::minicc {

// Parses a full translation unit. The returned Program owns the type table
// and all declarations. The first syntax error aborts the parse.
util::Result<std::unique_ptr<Program>> Parse(std::string_view source,
                                             std::string_view filename = "<minic>");

}  // namespace sc::minicc
