#include "vm/machine.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "obs/trace.h"
#include "util/check.h"

namespace sc::vm {

using isa::AluOp;
using isa::Instr;
using isa::Opcode;

Machine::Machine(uint32_t mem_bytes)
    : mem_(mem_bytes, 0), engine_(DefaultEngine()) {
  SC_CHECK_GE(mem_bytes, image::kLocalBase) << "memory must cover local region";
}

void Machine::set_engine(Engine engine) {
  if (engine == engine_) return;
  engine_ = engine;
  // Superblocks translated before an interpreter interlude can go stale
  // without notice (the interpreter's guest stores rely on the decode
  // cache's word compare, which superblocks skip), so drop them.
  FlushSuperblocks();
}

void Machine::SetExecRange(uint32_t lo, uint32_t hi) {
  if (exec_lo_ != lo || exec_hi_ != hi) FlushSuperblocks();
  exec_lo_ = lo;
  exec_hi_ = hi;
}

void Machine::set_cost_model(const CostModel& cost) {
  FlushSuperblocks();
  cost_ = cost;
}

void Machine::FlushSuperblocks() {
  if (sb_cache_ != nullptr && sb_cache_->live_blocks() > 0) {
    sb_cache_->FlushMark(&sb_stats_);
    sb_interrupt_ = true;
  }
  SyncSuperblockBounds();
}

void Machine::SyncSuperblockBounds() {
  sb_lo_ = sb_cache_ == nullptr ? UINT32_MAX : sb_cache_->lo();
  sb_hi_ = sb_cache_ == nullptr ? 0 : sb_cache_->hi();
}

void Machine::SuperblockStoreSlow(uint32_t paddr, uint32_t size) {
  if (sb_cache_->Invalidate(paddr, size, &sb_stats_)) {
    sb_interrupt_ = true;
    SyncSuperblockBounds();
  }
}

void Machine::LoadImage(const image::Image& img) {
  SC_CHECK_LE(img.text_base + img.text.size(), mem_.size());
  SC_CHECK_LE(img.data_base + img.data.size(), mem_.size());
  SC_CHECK_LE(static_cast<size_t>(img.bss_base) + img.bss_size, mem_.size());
  // .data() of an empty section is null; memcpy requires non-null even for
  // zero-length copies.
  if (!img.text.empty()) {
    std::memcpy(mem_.data() + img.text_base, img.text.data(), img.text.size());
  }
  if (!img.data.empty()) {
    std::memcpy(mem_.data() + img.data_base, img.data.data(), img.data.size());
  }
  std::memset(mem_.data() + img.bss_base, 0, img.bss_size);
  pc_ = img.entry;
  regs_.fill(0);
  regs_[isa::kSp] = image::kStackTop;
  brk_ = img.heap_base();
  pending_stop_ = StopReason::kRunning;
}

uint32_t Machine::ReadWord(uint32_t addr) const {
  SC_CHECK_LE(static_cast<uint64_t>(addr) + 4, mem_.size());
  uint32_t v = 0;
  std::memcpy(&v, mem_.data() + addr, 4);
  return v;
}

void Machine::WriteWord(uint32_t addr, uint32_t value) {
  SC_CHECK_LE(static_cast<uint64_t>(addr) + 4, mem_.size());
  std::memcpy(mem_.data() + addr, &value, 4);
  InvalidateDecode(addr, 4);
}

void Machine::ReadBlock(uint32_t addr, void* out, uint32_t len) const {
  SC_CHECK_LE(static_cast<uint64_t>(addr) + len, mem_.size());
  std::memcpy(out, mem_.data() + addr, len);
}

void Machine::WriteBlock(uint32_t addr, const void* bytes, uint32_t len) {
  SC_CHECK_LE(static_cast<uint64_t>(addr) + len, mem_.size());
  std::memcpy(mem_.data() + addr, bytes, len);
  InvalidateDecode(addr, len);
}

void Machine::InvalidateDecode(uint32_t addr, uint32_t len) {
  if (len == 0) return;
  if (exec_lo_ != exec_hi_ &&
      (addr >= exec_hi_ || static_cast<uint64_t>(addr) + len <= exec_lo_)) {
    return;  // outside the executable range: never fetched
  }
  // Superblocks invalidate on the same plumbing as the decode cache: every
  // WriteWord/WriteBlock (cache-controller install/patch/evict, recovery
  // journal replay, COW text writes, dcache block moves) lands here.
  if (sb_cache_ != nullptr &&
      sb_cache_->Invalidate(addr, len, &sb_stats_)) {
    sb_interrupt_ = true;
    SyncSuperblockBounds();
  }
  if (decode_cache_.empty()) return;
  const uint32_t first = addr >> 2;
  const uint32_t last = (addr + len - 1) >> 2;
  const DecodeEntry reset{0, isa::Decode(0)};
  if (last - first + 1 >= kDecodeCacheEntries) {
    std::fill(decode_cache_.begin(), decode_cache_.end(), reset);
    return;
  }
  for (uint32_t w = first; w <= last; ++w) {
    decode_cache_[w & kDecodeCacheMask] = reset;
  }
}

void Machine::RaiseFault(const std::string& message) {
  if (pending_stop_ == StopReason::kRunning) {
    pending_stop_ = StopReason::kFault;
    fault_message_ = message;
  }
}

RunResult Machine::MakeResult(StopReason reason) {
  RunResult r;
  r.reason = reason;
  r.exit_code = exit_code_;
  r.fault_message = fault_message_;
  r.instructions = instret_;
  r.cycles = cycles_;
  return r;
}

RunResult Machine::FaultHere(const char* what) {
  std::ostringstream msg;
  msg << what << " at pc=0x" << std::hex << pc_;
  RaiseFault(msg.str());
  return MakeResult(pending_stop_);
}

RunResult Machine::FaultIllegal(uint32_t word) {
  std::ostringstream msg;
  msg << "illegal instruction 0x" << std::hex << word << " at pc=0x" << pc_;
  RaiseFault(msg.str());
  return MakeResult(pending_stop_);
}

void Machine::FaultDataAddr(const char* what, uint32_t addr, uint32_t size) {
  std::ostringstream msg;
  msg << what << " (" << size << " bytes) at 0x" << std::hex << addr
      << " pc=0x" << pc_;
  RaiseFault(msg.str());
}

void Machine::FaultSyscall(int32_t number) {
  std::ostringstream msg;
  msg << "unknown syscall " << number << " at pc=0x" << std::hex << pc_;
  RaiseFault(msg.str());
}

bool Machine::CheckDataAddr(uint32_t addr, uint32_t size) {
  if (addr < image::kNullGuardEnd) {
    FaultDataAddr("null-guard data access", addr, size);
    return false;
  }
  if (static_cast<uint64_t>(addr) + size > mem_.size()) {
    FaultDataAddr("out-of-range data access", addr, size);
    return false;
  }
  if (size > 1 && addr % size != 0) {
    FaultDataAddr("misaligned data access", addr, size);
    return false;
  }
  return true;
}

uint32_t Machine::TranslateData(uint32_t addr, uint32_t size, bool is_store) {
  if (data_hook_ != nullptr && addr >= data_hook_lo_ && addr < data_hook_hi_) {
    return data_hook_->Translate(*this, addr, size, is_store);
  }
  return addr;
}

void Machine::DoSyscall(int32_t number, uint32_t* next_pc) {
  switch (number) {
    case kSysExit:
      pending_stop_ = StopReason::kHalted;
      exit_code_ = static_cast<int32_t>(regs_[isa::kA0]);
      break;
    case kSysPutChar:
      output_.push_back(static_cast<uint8_t>(regs_[isa::kA0]));
      break;
    case kSysGetChar:
      regs_[isa::kRv] = input_pos_ < input_.size()
                            ? input_[input_pos_++]
                            : static_cast<uint32_t>(-1);
      break;
    case kSysWrite: {
      const uint32_t ptr = regs_[isa::kA0];
      const uint32_t len = regs_[isa::kA1];
      if (static_cast<uint64_t>(ptr) + len > mem_.size()) {
        RaiseFault("SYS_WRITE out of range");
        return;
      }
      // Byte-wise through the data hook so a software D-cache sees console
      // I/O buffers coherently.
      for (uint32_t i = 0; i < len; ++i) {
        const uint32_t paddr = TranslateData(ptr + i, 1, /*is_store=*/false);
        if (pending_stop_ != StopReason::kRunning) return;
        output_.push_back(mem_[paddr]);
      }
      break;
    }
    case kSysRead: {
      const uint32_t ptr = regs_[isa::kA0];
      const uint32_t len = regs_[isa::kA1];
      if (static_cast<uint64_t>(ptr) + len > mem_.size()) {
        RaiseFault("SYS_READ out of range");
        return;
      }
      uint32_t n = 0;
      while (n < len && input_pos_ < input_.size()) {
        const uint32_t paddr = TranslateData(ptr + n, 1, /*is_store=*/true);
        if (pending_stop_ != StopReason::kRunning) return;
        mem_[paddr] = input_[input_pos_++];
        // SYS_READ can scribble over translated text (self-modifying code
        // staged through the input stream); superblocks cannot rely on the
        // interpreter's fetch-time word compare, so kill overlaps here.
        if (paddr >= sb_lo_ && paddr < sb_hi_) SuperblockStoreSlow(paddr, 1);
        ++n;
      }
      regs_[isa::kRv] = n;
      break;
    }
    case kSysBrk: {
      // sbrk semantics: grow the break by a0 bytes, return the old break.
      const uint32_t grow = regs_[isa::kA0];
      const uint32_t old = brk_;
      // The heap must stay below the stack red zone.
      if (static_cast<uint64_t>(brk_) + grow > image::kStackTop - 0x10000) {
        regs_[isa::kRv] = static_cast<uint32_t>(-1);
        return;
      }
      brk_ += grow;
      regs_[isa::kRv] = old;
      break;
    }
    case kSysCycles:
      regs_[isa::kRv] = static_cast<uint32_t>(cycles_);
      break;
    case kSysIcacheInval:
      if (trap_handler_ != nullptr) {
        *next_pc = trap_handler_->OnIcacheInvalidate(*this, regs_[isa::kA0],
                                                     regs_[isa::kA1], pc_);
      }
      break;
    default:
      FaultSyscall(number);
      break;
  }
}

RunResult Machine::Run(uint64_t max_instructions) {
  return engine_ == Engine::kThreaded ? RunThreaded(max_instructions)
                                      : RunInterp(max_instructions);
}

RunResult Machine::RunInterp(uint64_t max_instructions) {
  if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
  if (decode_cache_.empty()) {
    // {0, Decode(0)} satisfies the cache invariant (instr == Decode(word)),
    // so no separate valid bit is needed.
    decode_cache_.assign(kDecodeCacheEntries, DecodeEntry{0, isa::Decode(0)});
  }

  for (uint64_t executed = 0; executed < max_instructions; ++executed) {
    // --- Fetch ---
    if (pc_ % 4 != 0 || static_cast<uint64_t>(pc_) + 4 > mem_.size() ||
        pc_ < image::kNullGuardEnd) {
      return FaultHere("bad fetch address");
    }
    if (exec_lo_ != exec_hi_ && (pc_ < exec_lo_ || pc_ >= exec_hi_)) {
      return FaultHere("fetch outside permitted range");
    }
    if (fetch_observer_ != nullptr) fetch_observer_->OnFetch(pc_);

    uint32_t word = 0;
    std::memcpy(&word, mem_.data() + pc_, 4);
    // Decode through the cache; a trap handler may rewrite code mid-step, so
    // `in` is a copy, never a reference into the cache.
    DecodeEntry& entry = decode_cache_[(pc_ >> 2) & kDecodeCacheMask];
    if (entry.word != word) {
      entry.word = word;
      entry.instr = isa::Decode(word);
      OBS_INSTANT("vm", "decode_fill", "pc", pc_);
    }
    const Instr in = entry.instr;
    ++instret_;
    uint32_t next_pc = pc_ + 4;

    // --- Execute ---
    switch (in.op) {
      case Opcode::kAlu: {
        const uint32_t a = regs_[in.rs1];
        const uint32_t b = regs_[in.rs2];
        uint32_t result = 0;
        uint32_t cost = cost_.alu;
        switch (in.funct) {
          case AluOp::kAdd: result = a + b; break;
          case AluOp::kSub: result = a - b; break;
          case AluOp::kAnd: result = a & b; break;
          case AluOp::kOr: result = a | b; break;
          case AluOp::kXor: result = a ^ b; break;
          case AluOp::kSll: result = a << (b & 31); break;
          case AluOp::kSrl: result = a >> (b & 31); break;
          case AluOp::kSra:
            result = static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                           static_cast<int32_t>(b & 31));
            break;
          case AluOp::kSlt:
            result = static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0;
            break;
          case AluOp::kSltu: result = a < b ? 1 : 0; break;
          case AluOp::kMul:
            result = a * b;
            cost = cost_.mul;
            break;
          case AluOp::kDiv:
          case AluOp::kDivu:
          case AluOp::kRem:
          case AluOp::kRemu: {
            cost = cost_.div;
            if (b == 0) return FaultHere("division by zero");
            const int32_t sa = static_cast<int32_t>(a);
            const int32_t sb = static_cast<int32_t>(b);
            // INT_MIN / -1 overflows; define it as wrapping (result INT_MIN).
            switch (in.funct) {
              case AluOp::kDiv:
                result = (sa == INT32_MIN && sb == -1)
                             ? a
                             : static_cast<uint32_t>(sa / sb);
                break;
              case AluOp::kDivu: result = a / b; break;
              case AluOp::kRem:
                result = (sa == INT32_MIN && sb == -1)
                             ? 0
                             : static_cast<uint32_t>(sa % sb);
                break;
              case AluOp::kRemu: result = a % b; break;
              default: SC_UNREACHABLE();
            }
            break;
          }
          default: SC_UNREACHABLE() << "bad ALU funct";
        }
        set_reg(in.rd, result);
        cycles_ += cost;
        break;
      }
      case Opcode::kAddi:
        set_reg(in.rd, regs_[in.rs1] + static_cast<uint32_t>(in.imm));
        cycles_ += cost_.alu;
        break;
      case Opcode::kAndi:
        set_reg(in.rd, regs_[in.rs1] & static_cast<uint32_t>(in.imm));
        cycles_ += cost_.alu;
        break;
      case Opcode::kOri:
        set_reg(in.rd, regs_[in.rs1] | static_cast<uint32_t>(in.imm));
        cycles_ += cost_.alu;
        break;
      case Opcode::kXori:
        set_reg(in.rd, regs_[in.rs1] ^ static_cast<uint32_t>(in.imm));
        cycles_ += cost_.alu;
        break;
      case Opcode::kSlti:
        set_reg(in.rd, static_cast<int32_t>(regs_[in.rs1]) < in.imm ? 1 : 0);
        cycles_ += cost_.alu;
        break;
      case Opcode::kSltiu:
        set_reg(in.rd, regs_[in.rs1] < static_cast<uint32_t>(in.imm) ? 1 : 0);
        cycles_ += cost_.alu;
        break;
      case Opcode::kSlli:
        set_reg(in.rd, regs_[in.rs1] << (in.imm & 31));
        cycles_ += cost_.alu;
        break;
      case Opcode::kSrli:
        set_reg(in.rd, regs_[in.rs1] >> (in.imm & 31));
        cycles_ += cost_.alu;
        break;
      case Opcode::kSrai:
        set_reg(in.rd, static_cast<uint32_t>(
                           static_cast<int32_t>(regs_[in.rs1]) >> (in.imm & 31)));
        cycles_ += cost_.alu;
        break;
      case Opcode::kLui:
        set_reg(in.rd, static_cast<uint32_t>(in.imm) << 16);
        cycles_ += cost_.alu;
        break;

      case Opcode::kLw:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLb:
      case Opcode::kLbu: {
        const uint32_t vaddr = regs_[in.rs1] + static_cast<uint32_t>(in.imm);
        const uint32_t size =
            in.op == Opcode::kLw ? 4 : (in.op == Opcode::kLb || in.op == Opcode::kLbu) ? 1 : 2;
        if (!CheckDataAddr(vaddr, size)) return MakeResult(pending_stop_);
        const uint32_t paddr = TranslateData(vaddr, size, /*is_store=*/false);
        if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
        uint32_t value = 0;
        switch (in.op) {
          case Opcode::kLw: {
            std::memcpy(&value, mem_.data() + paddr, 4);
            break;
          }
          case Opcode::kLh: {
            int16_t v16 = 0;
            std::memcpy(&v16, mem_.data() + paddr, 2);
            value = static_cast<uint32_t>(static_cast<int32_t>(v16));
            break;
          }
          case Opcode::kLhu: {
            uint16_t v16 = 0;
            std::memcpy(&v16, mem_.data() + paddr, 2);
            value = v16;
            break;
          }
          case Opcode::kLb:
            value = static_cast<uint32_t>(
                static_cast<int32_t>(static_cast<int8_t>(mem_[paddr])));
            break;
          case Opcode::kLbu: value = mem_[paddr]; break;
          default: SC_UNREACHABLE();
        }
        set_reg(in.rd, value);
        cycles_ += cost_.load;
        break;
      }

      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb: {
        const uint32_t vaddr = regs_[in.rs1] + static_cast<uint32_t>(in.imm);
        const uint32_t size = in.op == Opcode::kSw ? 4 : in.op == Opcode::kSh ? 2 : 1;
        if (!CheckDataAddr(vaddr, size)) return MakeResult(pending_stop_);
        const uint32_t paddr = TranslateData(vaddr, size, /*is_store=*/true);
        if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
        const uint32_t value = regs_[in.rd];
        switch (in.op) {
          case Opcode::kSw: std::memcpy(mem_.data() + paddr, &value, 4); break;
          case Opcode::kSh: {
            const uint16_t v16 = static_cast<uint16_t>(value);
            std::memcpy(mem_.data() + paddr, &v16, 2);
            break;
          }
          case Opcode::kSb: mem_[paddr] = static_cast<uint8_t>(value); break;
          default: SC_UNREACHABLE();
        }
        cycles_ += cost_.store;
        break;
      }

      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: {
        const uint32_t a = regs_[in.rs1];
        const uint32_t b = regs_[in.rs2];
        bool taken = false;
        switch (in.op) {
          case Opcode::kBeq: taken = a == b; break;
          case Opcode::kBne: taken = a != b; break;
          case Opcode::kBlt:
            taken = static_cast<int32_t>(a) < static_cast<int32_t>(b);
            break;
          case Opcode::kBge:
            taken = static_cast<int32_t>(a) >= static_cast<int32_t>(b);
            break;
          case Opcode::kBltu: taken = a < b; break;
          case Opcode::kBgeu: taken = a >= b; break;
          default: SC_UNREACHABLE();
        }
        if (taken) next_pc = isa::BranchTarget(pc_, in.imm);
        cycles_ += cost_.branch;
        break;
      }

      case Opcode::kJ:
        next_pc = isa::BranchTarget(pc_, in.imm);
        cycles_ += cost_.jump;
        break;
      case Opcode::kJal:
        set_reg(isa::kRa, pc_ + 4);
        next_pc = isa::BranchTarget(pc_, in.imm);
        cycles_ += cost_.jump;
        break;
      case Opcode::kJalr: {
        const uint32_t target = (regs_[in.rs1] + static_cast<uint32_t>(in.imm)) & ~3u;
        set_reg(in.rd, pc_ + 4);
        next_pc = target;
        cycles_ += cost_.jump;
        break;
      }

      case Opcode::kSys:
        cycles_ += cost_.syscall;
        DoSyscall(in.imm, &next_pc);
        if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
        break;

      case Opcode::kHalt:
        pending_stop_ = StopReason::kHalted;
        exit_code_ = static_cast<int32_t>(regs_[isa::kA0]);
        return MakeResult(pending_stop_);

      case Opcode::kTcMiss: {
        if (trap_handler_ == nullptr) {
          return FaultHere("TCMISS with no trap handler");
        }
        next_pc = trap_handler_->OnTcMiss(*this, static_cast<uint32_t>(in.imm));
        if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
        break;
      }
      case Opcode::kTcJalr: {
        if (trap_handler_ == nullptr) {
          return FaultHere("TCJALR with no trap handler");
        }
        cycles_ += cost_.jump;
        next_pc = trap_handler_->OnTcJalr(*this, in, pc_);
        if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
        break;
      }

      case Opcode::kIllegal:
      default:
        return FaultIllegal(word);
    }

    pc_ = next_pc;
  }
  return MakeResult(StopReason::kInstrLimit);
}

}  // namespace sc::vm
