// Superblock translation + the direct-threaded execution engine.
//
// Machine::RunThreaded lives here (it is a Machine member so the handlers
// touch regs_/mem_/cycles_ directly, exactly like the interpreter loop).
// See superblock.h for the engine contract; tests/engine_test.cpp proves
// bit-identical behavior against the interpreter on every workload, random
// programs, and self-modifying code.

#include <cstdlib>
#include <cstring>

#include "obs/trace.h"
#include "util/check.h"
#include "vm/machine.h"

// Computed goto (direct threading) on GCC/Clang; a dense-switch fallback
// keeps the engine portable and gives a second implementation to diff
// against (-DSOFTCACHE_NO_COMPUTED_GOTO).
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(SOFTCACHE_NO_COMPUTED_GOTO)
#define SC_SB_COMPUTED_GOTO 1
#else
#define SC_SB_COMPUTED_GOTO 0
#endif

namespace sc::vm {

using isa::AluOp;
using isa::Instr;
using isa::Opcode;

Engine DefaultEngine() {
  static const Engine engine = [] {
    const char* v = std::getenv("SOFTCACHE_ENGINE");
    if (v != nullptr &&
        (std::strcmp(v, "threaded") == 0 || std::strcmp(v, "superblock") == 0)) {
      return Engine::kThreaded;
    }
    return Engine::kInterp;
  }();
  return engine;
}

bool SuperblockCache::Invalidate(uint32_t addr, uint32_t len, SbStats* stats) {
  if (live_ == 0) return false;
  const uint64_t end = static_cast<uint64_t>(addr) + len;
  if (addr >= hi_ || end <= lo_) return false;
  // Full-range hit or a huge write: cheaper to flush than to scan.
  if (addr <= lo_ && end >= hi_) {
    FlushMark(stats);
    return true;
  }
  // A block overlaps [addr, end) iff its start lies in (addr - kSbMaxBytes,
  // end) and start + span > addr; scan that bounded window of possible
  // starts against the index.
  bool any = false;
  const uint32_t first =
      addr > kSbMaxBytes - 4 ? (addr - (kSbMaxBytes - 4)) & ~3u : 0;
  for (uint64_t a = first; a < end; a += 4) {
    const uint32_t start = static_cast<uint32_t>(a);
    Superblock** p = index_.Find(start);
    if (p == nullptr) continue;
    Superblock* sb = *p;
    if (!sb->valid || sb->start + sb->span <= addr) continue;
    sb->valid = false;
    index_.Erase(start);
    --live_;
    ++stats->invalidations;
    any = true;
  }
  if (any) OBS_INSTANT("vm", "sb.invalidate", "addr", addr);
  return any;
}

void SuperblockCache::FlushMark(SbStats* stats) {
  for (Superblock& sb : pool_) sb.valid = false;
  live_ = 0;
  lo_ = UINT32_MAX;
  hi_ = 0;
  reclaim_pending_ = true;
  ++stats->flushes;
  OBS_INSTANT("vm", "sb.invalidate", "addr", 0);
}

uint64_t SbDigest(const Superblock& sb) {
  // FNV-1a 64, matching the constants of softcache's ChunkDigest; only
  // semantic fields are mixed (see the declaration comment).
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(sb.start);
  mix(sb.span);
  mix(sb.n_ops);
  for (uint32_t i = 0; i < sb.n_ops; ++i) {
    const SbOp& op = sb.ops[i];
    mix(op.pc);
    mix(static_cast<uint32_t>(op.imm));
    mix(op.cost);
    mix((static_cast<uint64_t>(op.kind) << 24) |
        (static_cast<uint64_t>(op.rd) << 16) |
        (static_cast<uint64_t>(op.rs1) << 8) | op.rs2);
  }
  return h;
}

uint32_t SuperblockCache::ScrubCorrupt(SbStats* stats,
                                       uint64_t* words_scanned) {
  uint32_t corrupt = 0;
  for (Superblock& sb : pool_) {
    if (!sb.valid) continue;
    if (words_scanned != nullptr) *words_scanned += sb.n_ops;
    if (sb.digest == SbDigest(sb)) continue;
    sb.valid = false;
    index_.Erase(sb.start);
    --live_;
    ++stats->invalidations;
    ++corrupt;
  }
  if (corrupt > 0) OBS_INSTANT("vm", "sb.scrub_kill", "blocks", corrupt);
  return corrupt;
}

bool SuperblockCache::CorruptBit(util::Rng& rng) {
  if (live_ == 0) return false;
  uint64_t k = rng.Below(live_);
  for (Superblock& sb : pool_) {
    if (!sb.valid) continue;
    if (k > 0) {
      --k;
      continue;
    }
    SbOp& op = sb.ops[rng.Below(sb.n_ops)];
    op.imm ^= static_cast<int32_t>(1u << rng.Below(32));
    return true;
  }
  return false;  // unreachable while live_ is consistent
}

namespace {

bool IsTerminator(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
    case Opcode::kJ:
    case Opcode::kJal:
    case Opcode::kJalr:
    case Opcode::kSys:
    case Opcode::kHalt:
    case Opcode::kTcMiss:
    case Opcode::kTcJalr:
    case Opcode::kIllegal:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Machine::set_sb_integrity(bool on) {
  if (sb_integrity_ == on) return;
  sb_integrity_ = on;
  // Pre-existing blocks carry no stamp (or a stale toggle's stamps);
  // rebuild everything under the new policy.
  FlushSuperblocks();
}

uint32_t Machine::ScrubSuperblocks(uint64_t* words_scanned) {
  if (!sb_integrity_ || sb_cache_ == nullptr) return 0;
  const uint32_t killed = sb_cache_->ScrubCorrupt(&sb_stats_, words_scanned);
  if (killed > 0) SyncSuperblockBounds();
  return killed;
}

bool Machine::CorruptSuperblockBit(util::Rng& rng) {
  if (sb_cache_ == nullptr) return false;
  return sb_cache_->CorruptBit(rng);
}

void Machine::PoisonCodeRange(uint32_t addr, uint32_t len) {
  if (len == 0) return;
  poison_.emplace_back(addr, addr + len);
  // Existing multi-op blocks over the range must be re-formed under the cut.
  if (sb_cache_ != nullptr &&
      sb_cache_->Invalidate(addr, len, &sb_stats_)) {
    sb_interrupt_ = true;
    SyncSuperblockBounds();
  }
  OBS_INSTANT("vm", "sb.poison", "addr", addr);
}

void Machine::UnpoisonCodeRange(uint32_t addr, uint32_t len) {
  const uint64_t end = static_cast<uint64_t>(addr) + len;
  for (size_t i = 0; i < poison_.size();) {
    if (poison_[i].first >= addr && poison_[i].second <= end) {
      poison_[i] = poison_.back();
      poison_.pop_back();
    } else {
      ++i;
    }
  }
  // 1-op blocks formed under the cut stay valid — they are semantically
  // correct, just conservative — and the caller (eviction) invalidates the
  // range anyway before new code lands there.
}

Superblock* Machine::TranslateSuperblock(uint32_t start,
                                         const void* const* handlers) {
  SuperblockCache& cache = *sb_cache_;
  if (cache.pool_size() >= kSbMaxBlocks) {
    // Pool exhausted (churn backstop): mark everything dead; the dispatch
    // loop reclaims storage at its next top-of-loop.
    cache.FlushMark(&sb_stats_);
    sb_interrupt_ = true;
    SyncSuperblockBounds();
  }
  Superblock* sb = cache.NewBlock();
  sb->start = start;
  uint32_t pc = start;
  uint32_t n = 0;
  bool terminated = false;
  while (n < kSbMaxOps) {
    // The caller validated `start`; later pcs re-run the interpreter's fetch
    // checks here so execution never needs them.
    if (pc % 4 != 0 || static_cast<uint64_t>(pc) + 4 > mem_.size() ||
        pc < image::kNullGuardEnd) {
      break;
    }
    if (exec_lo_ != exec_hi_ && (pc < exec_lo_ || pc >= exec_hi_)) break;
    // Degradation-ladder cut: a clean run never extends into a poisoned
    // word (it gets its own block), see the matching post-append cut below.
    if (!poison_.empty() && n > 0 && InPoison(pc)) break;
    uint32_t word = 0;
    std::memcpy(&word, mem_.data() + pc, 4);
    const Instr in = isa::Decode(word);
    SbOp& op = sb->ops[n++];
    op.pc = pc;
    op.rd = in.rd;
    op.rs1 = in.rs1;
    op.rs2 = in.rs2;
    op.imm = in.imm;
    switch (in.op) {
      case Opcode::kAlu:
        // SbKind mirrors AluOp order (kSbAdd..kSbRemu).
        op.kind = static_cast<uint8_t>(kSbAdd + static_cast<int>(in.funct));
        op.cost = in.funct == AluOp::kMul ? cost_.mul
                  : (in.funct == AluOp::kDiv || in.funct == AluOp::kDivu ||
                     in.funct == AluOp::kRem || in.funct == AluOp::kRemu)
                      ? cost_.div
                      : cost_.alu;
        break;
      case Opcode::kAddi:
      case Opcode::kAndi:
      case Opcode::kOri:
      case Opcode::kXori:
      case Opcode::kSlti:
      case Opcode::kSltiu:
      case Opcode::kSlli:
      case Opcode::kSrli:
      case Opcode::kSrai:
      case Opcode::kLui:
        // SbKind mirrors the opcode order kAddi..kLui.
        op.kind = static_cast<uint8_t>(
            kSbAddi + (static_cast<int>(in.op) - static_cast<int>(Opcode::kAddi)));
        op.cost = cost_.alu;
        break;
      case Opcode::kLw:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLb:
      case Opcode::kLbu:
        op.kind = static_cast<uint8_t>(
            kSbLw + (static_cast<int>(in.op) - static_cast<int>(Opcode::kLw)));
        op.cost = cost_.load;
        break;
      case Opcode::kSw:
      case Opcode::kSh:
      case Opcode::kSb:
        op.kind = static_cast<uint8_t>(
            kSbSw + (static_cast<int>(in.op) - static_cast<int>(Opcode::kSw)));
        op.cost = cost_.store;
        break;
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        op.kind = static_cast<uint8_t>(
            kSbBeq + (static_cast<int>(in.op) - static_cast<int>(Opcode::kBeq)));
        op.cost = cost_.branch;
        op.imm = static_cast<int32_t>(isa::BranchTarget(pc, in.imm));
        break;
      case Opcode::kJ:
        op.kind = kSbJ;
        op.cost = cost_.jump;
        op.imm = static_cast<int32_t>(isa::BranchTarget(pc, in.imm));
        break;
      case Opcode::kJal:
        op.kind = kSbJal;
        op.cost = cost_.jump;
        op.imm = static_cast<int32_t>(isa::BranchTarget(pc, in.imm));
        break;
      case Opcode::kJalr:
        op.kind = kSbJalr;
        op.cost = cost_.jump;
        break;
      case Opcode::kSys:
        op.kind = kSbSys;
        op.cost = cost_.syscall;
        break;
      case Opcode::kHalt:
        op.kind = kSbHalt;
        break;
      case Opcode::kTcMiss:
        op.kind = kSbTcMiss;
        break;
      case Opcode::kTcJalr:
        op.kind = kSbTcJalr;
        op.cost = cost_.jump;
        break;
      case Opcode::kIllegal:
      default:
        op.kind = kSbIllegal;
        op.imm = static_cast<int32_t>(word);  // raw word for the fault text
        break;
    }
    op.handler = handlers != nullptr ? handlers[op.kind] : nullptr;
    if (IsTerminator(in.op)) {
      terminated = true;
      pc += 4;
      break;
    }
    pc += 4;
    // Degradation-ladder cut: a poisoned op ends its block immediately, so
    // blocks over poisoned words carry exactly one real instruction and the
    // threaded engine dispatches them one at a time.
    if (!poison_.empty() && InPoison(op.pc)) break;
  }
  sb->span = terminated ? pc - start : (n * 4);
  if (!terminated) {
    // Cut at kSbMaxOps or at the edge of the fetchable range: a synthetic
    // zero-instruction terminator continues at `pc` (which, if invalid, the
    // dispatch loop faults on with the interpreter's exact message).
    SbOp& op = sb->ops[n++];
    op = SbOp{};
    op.pc = pc;
    op.kind = kSbFallthrough;
    op.handler = handlers != nullptr ? handlers[kSbFallthrough] : nullptr;
  }
  sb->n_ops = n;
  if (sb_integrity_) sb->digest = SbDigest(*sb);
  cache.Publish(sb);
  SyncSuperblockBounds();
  ++sb_stats_.fills;
  sb_stats_.fill_ops += terminated ? n : n - 1;
  OBS_INSTANT("vm", "sb.fill", "pc", start);
  return sb;
}

// --- The threaded inner loop ---
//
// Per-op bookkeeping mirrors the interpreter's exact ordering: budget check,
// FetchObserver, instret, then the semantic action with the cycle charge at
// the interpreter's position (e.g. before DoSyscall, after a load completes,
// never for a faulting divide). Everything else the interpreter does per
// instruction — fetch-address validation, the memory fetch, the decode-cache
// probe, the opcode switch, next-pc arithmetic — is gone: it happened once,
// at translation time.
//
// The retired-instruction and cycle counters live in locals (`ret`, `cyc`)
// inside the dispatch region so straight-line ALU runs touch no Machine
// members at all; SB_FLUSH publishes them before anything that can observe
// the members (fault construction, syscalls, trap handlers, the data hook,
// observers, OBS events whose tracer clock reads cycles_) and SB_RELOAD
// reacquires them after call-outs that may Charge(). pc_ is only written
// where someone can read it: fault paths, call-outs, and block exits.

#if SC_SB_COMPUTED_GOTO
#define SB_CASE(k) h_##k
#define SB_NEXT()      \
  do {                 \
    ++op;              \
    goto* op->handler; \
  } while (0)
#define SB_DISPATCH() goto* op->handler
#else
#define SB_CASE(k) case k
#define SB_NEXT()  \
  do {             \
    ++op;          \
    goto dispatch; \
  } while (0)
#define SB_DISPATCH() goto dispatch
#endif

#define SB_FLUSH() \
  do {             \
    instret_ = ret; \
    cycles_ = cyc;  \
  } while (0)

#define SB_RELOAD() \
  do {              \
    ret = instret_; \
    cyc = cycles_;  \
  } while (0)

#define SB_PRE()                                  \
  do {                                            \
    if (remaining == 0) {                         \
      pc_ = op->pc;                               \
      SB_FLUSH();                                 \
      return MakeResult(StopReason::kInstrLimit); \
    }                                             \
    --remaining;                                  \
    if (observer != nullptr) {                    \
      pc_ = op->pc;                               \
      SB_FLUSH();                                 \
      observer->OnFetch(op->pc);                  \
      SB_RELOAD();                                \
      observer = fetch_observer_;                 \
    }                                             \
    ++ret;                                        \
  } while (0)

// Binary ALU op: `a` and `b` are the operand registers.
#define SB_ALU(kind, expr)             \
  SB_CASE(kind) : {                    \
    SB_PRE();                          \
    const uint32_t a = regs_[op->rs1]; \
    const uint32_t b = regs_[op->rs2]; \
    set_reg(op->rd, (expr));           \
    cyc += op->cost;                   \
    SB_NEXT();                         \
  }

// Immediate ALU op: `a` is rs1, `imm` the decoded immediate.
#define SB_ALUI(kind, expr)            \
  SB_CASE(kind) : {                    \
    SB_PRE();                          \
    const uint32_t a = regs_[op->rs1]; \
    const int32_t imm = op->imm;       \
    set_reg(op->rd, (expr));           \
    cyc += op->cost;                   \
    SB_NEXT();                         \
  }

// Conditional branch terminator with block chaining on both edges. pc_ is
// only materialized on the unchained (dispatch-loop) path.
#define SB_BRANCH(kind, cond)                 \
  SB_CASE(kind) : {                           \
    SB_PRE();                                 \
    const uint32_t a = regs_[op->rs1];        \
    const uint32_t b = regs_[op->rs2];        \
    cyc += op->cost;                          \
    if (cond) {                               \
      Superblock* nxt = sb->taken;            \
      if (nxt != nullptr && nxt->valid) {     \
        sb = nxt;                             \
        op = sb->ops;                         \
        SB_DISPATCH();                        \
      }                                       \
      pc_ = static_cast<uint32_t>(op->imm);   \
      chain_slot = &sb->taken;                \
    } else {                                  \
      Superblock* nxt = sb->fall;             \
      if (nxt != nullptr && nxt->valid) {     \
        sb = nxt;                             \
        op = sb->ops;                         \
        SB_DISPATCH();                        \
      }                                       \
      pc_ = op->pc + 4;                       \
      chain_slot = &sb->fall;                 \
    }                                         \
    SB_FLUSH();                               \
    goto outer;                               \
  }

// A load. The fast path (no data hook over the address) validates with an
// inline predicate and reads mem_ directly — no out-of-line call, no member
// flush. The hook path mirrors the interpreter's full sequence around
// TranslateData (which may Charge miss cycles and issue RPCs whose crash
// schedules read the cycle counter).
#define SB_LOAD(kind, nbytes, read_stmt)                                 \
  SB_CASE(kind) : {                                                      \
    SB_PRE();                                                            \
    const uint32_t vaddr = regs_[op->rs1] + static_cast<uint32_t>(op->imm); \
    if (data_hook_ == nullptr || vaddr < data_hook_lo_ ||                \
        vaddr >= data_hook_hi_) {                                        \
      if (!DataAddrOk(vaddr, nbytes, mem_.size())) {                     \
        pc_ = op->pc;                                                    \
        SB_FLUSH();                                                      \
        CheckDataAddr(vaddr, nbytes);                                    \
        return MakeResult(pending_stop_);                                \
      }                                                                  \
      const uint32_t paddr = vaddr;                                      \
      read_stmt;                                                         \
      cyc += op->cost;                                                   \
      SB_NEXT();                                                         \
    }                                                                    \
    pc_ = op->pc;                                                        \
    SB_FLUSH();                                                          \
    if (!CheckDataAddr(vaddr, nbytes)) return MakeResult(pending_stop_); \
    const uint32_t paddr = TranslateData(vaddr, nbytes, false);          \
    if (pending_stop_ != StopReason::kRunning) {                         \
      return MakeResult(pending_stop_);                                  \
    }                                                                    \
    SB_RELOAD();                                                         \
    read_stmt;                                                           \
    cyc += op->cost;                                                     \
    if (sb_interrupt_) {                                                 \
      pc_ = op->pc + 4;                                                  \
      SB_FLUSH();                                                        \
      goto outer;                                                        \
    }                                                                    \
    SB_NEXT();                                                           \
  }

// A store. Both paths keep the self-modifying-code guard: a store landing
// inside the superblocked text range kills overlapping blocks (two compares
// hot, cold call on overlap) and forces a block exit if the running block
// might be stale.
#define SB_STORE(kind, nbytes, write_stmt)                               \
  SB_CASE(kind) : {                                                      \
    SB_PRE();                                                            \
    const uint32_t vaddr = regs_[op->rs1] + static_cast<uint32_t>(op->imm); \
    if (data_hook_ == nullptr || vaddr < data_hook_lo_ ||                \
        vaddr >= data_hook_hi_) {                                        \
      if (!DataAddrOk(vaddr, nbytes, mem_.size())) {                     \
        pc_ = op->pc;                                                    \
        SB_FLUSH();                                                      \
        CheckDataAddr(vaddr, nbytes);                                    \
        return MakeResult(pending_stop_);                                \
      }                                                                  \
      const uint32_t paddr = vaddr;                                      \
      write_stmt;                                                        \
      cyc += op->cost;                                                   \
      if (paddr < sb_hi_ && paddr + nbytes > sb_lo_) {                   \
        pc_ = op->pc;                                                    \
        SB_FLUSH();                                                      \
        SuperblockStoreSlow(paddr, nbytes);                              \
        if (sb_interrupt_) {                                             \
          pc_ = op->pc + 4;                                              \
          goto outer;                                                    \
        }                                                                \
      }                                                                  \
      SB_NEXT();                                                         \
    }                                                                    \
    pc_ = op->pc;                                                        \
    SB_FLUSH();                                                          \
    if (!CheckDataAddr(vaddr, nbytes)) return MakeResult(pending_stop_); \
    const uint32_t paddr = TranslateData(vaddr, nbytes, true);           \
    if (pending_stop_ != StopReason::kRunning) {                         \
      return MakeResult(pending_stop_);                                  \
    }                                                                    \
    SB_RELOAD();                                                         \
    write_stmt;                                                          \
    cyc += op->cost;                                                     \
    if (paddr < sb_hi_ && paddr + nbytes > sb_lo_) {                     \
      SB_FLUSH();                                                        \
      SuperblockStoreSlow(paddr, nbytes);                                \
    }                                                                    \
    if (sb_interrupt_) {                                                 \
      pc_ = op->pc + 4;                                                  \
      SB_FLUSH();                                                        \
      goto outer;                                                        \
    }                                                                    \
    SB_NEXT();                                                           \
  }

namespace {

// The interpreter's CheckDataAddr as a branch-free-ish predicate; the cold
// caller re-runs CheckDataAddr to build the identical fault message.
inline bool DataAddrOk(uint32_t addr, uint32_t size, uint64_t mem_size) {
  return addr >= image::kNullGuardEnd &&
         static_cast<uint64_t>(addr) + size <= mem_size &&
         (size <= 1 || addr % size == 0);
}

}  // namespace

RunResult Machine::RunThreaded(uint64_t max_instructions) {
  if (pending_stop_ != StopReason::kRunning) return MakeResult(pending_stop_);
  if (sb_cache_ == nullptr) sb_cache_ = std::make_unique<SuperblockCache>();

#if SC_SB_COMPUTED_GOTO
  // Label-address table, indexed by SbKind (same order as the enum).
  const void* handler_table[kSbKindCount] = {
      &&h_kSbAdd,  &&h_kSbSub,  &&h_kSbAnd,   &&h_kSbOr,     &&h_kSbXor,
      &&h_kSbSll,  &&h_kSbSrl,  &&h_kSbSra,   &&h_kSbSlt,    &&h_kSbSltu,
      &&h_kSbMul,  &&h_kSbDiv,  &&h_kSbDivu,  &&h_kSbRem,    &&h_kSbRemu,
      &&h_kSbAddi, &&h_kSbAndi, &&h_kSbOri,   &&h_kSbXori,   &&h_kSbSlti,
      &&h_kSbSltiu, &&h_kSbSlli, &&h_kSbSrli, &&h_kSbSrai,   &&h_kSbLui,
      &&h_kSbLw,   &&h_kSbLh,   &&h_kSbLhu,   &&h_kSbLb,     &&h_kSbLbu,
      &&h_kSbSw,   &&h_kSbSh,   &&h_kSbSb,    &&h_kSbBeq,    &&h_kSbBne,
      &&h_kSbBlt,  &&h_kSbBge,  &&h_kSbBltu,  &&h_kSbBgeu,   &&h_kSbJ,
      &&h_kSbJal,  &&h_kSbJalr, &&h_kSbSys,   &&h_kSbHalt,   &&h_kSbTcMiss,
      &&h_kSbTcJalr, &&h_kSbIllegal, &&h_kSbFallthrough,
  };
  static_assert(kSbKindCount == 48, "handler table must match SbKind");
  const void* const* handlers = handler_table;
#else
  const void* const* handlers = nullptr;
#endif

  uint64_t remaining = max_instructions;
  uint64_t ret = instret_;
  uint64_t cyc = cycles_;
  FetchObserver* observer = fetch_observer_;
  Superblock* sb = nullptr;
  const SbOp* op = nullptr;
  // The chain slot of the block we just left, filled once its successor is
  // resolved so the next pass jumps block-to-block without coming back here.
  Superblock** chain_slot = nullptr;

outer:
  // Invariant here: instret_/cycles_ members are current (every goto outer
  // flushed); the locals are reacquired just before dispatch.
  sb_interrupt_ = false;
  if (sb_cache_->reclaim_pending()) {
    // No block is executing here, so dead pool storage (which chains and the
    // interrupted block may have pointed into) can finally be freed.
    chain_slot = nullptr;
    sb_cache_->Reclaim();
    SyncSuperblockBounds();
  }
  if (remaining == 0) return MakeResult(StopReason::kInstrLimit);
  if (pc_ % 4 != 0 || static_cast<uint64_t>(pc_) + 4 > mem_.size() ||
      pc_ < image::kNullGuardEnd) {
    return FaultHere("bad fetch address");
  }
  if (exec_lo_ != exec_hi_ && (pc_ < exec_lo_ || pc_ >= exec_hi_)) {
    return FaultHere("fetch outside permitted range");
  }
  sb = sb_cache_->Find(pc_);
  if (sb == nullptr) {
    const uint64_t flushes_before = sb_stats_.flushes;
    sb = TranslateSuperblock(pc_, handlers);
    // A capacity flush marked every block dead — including the one
    // chain_slot points into; drop the pending link.
    if (sb_stats_.flushes != flushes_before) chain_slot = nullptr;
  }
  if (chain_slot != nullptr) {
    *chain_slot = sb;
    ++sb_stats_.chains;
    OBS_INSTANT("vm", "sb.chain", "pc", pc_);
    chain_slot = nullptr;
  }
  observer = fetch_observer_;
  SB_RELOAD();
  op = sb->ops;
  SB_DISPATCH();

#if !SC_SB_COMPUTED_GOTO
dispatch:
  switch (static_cast<SbKind>(op->kind))
#endif
  {
    SB_ALU(kSbAdd, a + b)
    SB_ALU(kSbSub, a - b)
    SB_ALU(kSbAnd, a & b)
    SB_ALU(kSbOr, a | b)
    SB_ALU(kSbXor, a ^ b)
    SB_ALU(kSbSll, a << (b & 31))
    SB_ALU(kSbSrl, a >> (b & 31))
    SB_ALU(kSbSra, static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                         static_cast<int32_t>(b & 31)))
    SB_ALU(kSbSlt,
           static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1u : 0u)
    SB_ALU(kSbSltu, a < b ? 1u : 0u)
    SB_ALU(kSbMul, a * b)

    SB_CASE(kSbDiv) : {
      SB_PRE();
      const uint32_t a = regs_[op->rs1];
      const uint32_t b = regs_[op->rs2];
      if (b == 0) {
        pc_ = op->pc;
        SB_FLUSH();
        return FaultHere("division by zero");
      }
      const int32_t sa = static_cast<int32_t>(a);
      const int32_t sd = static_cast<int32_t>(b);
      // INT_MIN / -1 overflows; define it as wrapping (result INT_MIN).
      set_reg(op->rd, (sa == INT32_MIN && sd == -1)
                          ? a
                          : static_cast<uint32_t>(sa / sd));
      cyc += op->cost;
      SB_NEXT();
    }
    SB_CASE(kSbDivu) : {
      SB_PRE();
      const uint32_t a = regs_[op->rs1];
      const uint32_t b = regs_[op->rs2];
      if (b == 0) {
        pc_ = op->pc;
        SB_FLUSH();
        return FaultHere("division by zero");
      }
      set_reg(op->rd, a / b);
      cyc += op->cost;
      SB_NEXT();
    }
    SB_CASE(kSbRem) : {
      SB_PRE();
      const uint32_t a = regs_[op->rs1];
      const uint32_t b = regs_[op->rs2];
      if (b == 0) {
        pc_ = op->pc;
        SB_FLUSH();
        return FaultHere("division by zero");
      }
      const int32_t sa = static_cast<int32_t>(a);
      const int32_t sd = static_cast<int32_t>(b);
      set_reg(op->rd, (sa == INT32_MIN && sd == -1)
                          ? 0u
                          : static_cast<uint32_t>(sa % sd));
      cyc += op->cost;
      SB_NEXT();
    }
    SB_CASE(kSbRemu) : {
      SB_PRE();
      const uint32_t a = regs_[op->rs1];
      const uint32_t b = regs_[op->rs2];
      if (b == 0) {
        pc_ = op->pc;
        SB_FLUSH();
        return FaultHere("division by zero");
      }
      set_reg(op->rd, a % b);
      cyc += op->cost;
      SB_NEXT();
    }

    SB_ALUI(kSbAddi, a + static_cast<uint32_t>(imm))
    SB_ALUI(kSbAndi, a & static_cast<uint32_t>(imm))
    SB_ALUI(kSbOri, a | static_cast<uint32_t>(imm))
    SB_ALUI(kSbXori, a ^ static_cast<uint32_t>(imm))
    SB_ALUI(kSbSlti, static_cast<int32_t>(a) < imm ? 1u : 0u)
    SB_ALUI(kSbSltiu, a < static_cast<uint32_t>(imm) ? 1u : 0u)
    SB_ALUI(kSbSlli, a << (imm & 31))
    SB_ALUI(kSbSrli, a >> (imm & 31))
    SB_ALUI(kSbSrai,
            static_cast<uint32_t>(static_cast<int32_t>(a) >> (imm & 31)))

    SB_CASE(kSbLui) : {
      SB_PRE();
      set_reg(op->rd, static_cast<uint32_t>(op->imm) << 16);
      cyc += op->cost;
      SB_NEXT();
    }

    SB_LOAD(kSbLw, 4, {
      uint32_t value = 0;
      std::memcpy(&value, mem_.data() + paddr, 4);
      set_reg(op->rd, value);
    })
    SB_LOAD(kSbLh, 2, {
      int16_t v16 = 0;
      std::memcpy(&v16, mem_.data() + paddr, 2);
      set_reg(op->rd, static_cast<uint32_t>(static_cast<int32_t>(v16)));
    })
    SB_LOAD(kSbLhu, 2, {
      uint16_t v16 = 0;
      std::memcpy(&v16, mem_.data() + paddr, 2);
      set_reg(op->rd, v16);
    })
    SB_LOAD(kSbLb, 1, {
      set_reg(op->rd, static_cast<uint32_t>(static_cast<int32_t>(
                          static_cast<int8_t>(mem_[paddr]))));
    })
    SB_LOAD(kSbLbu, 1, { set_reg(op->rd, mem_[paddr]); })

    SB_STORE(kSbSw, 4, {
      const uint32_t value = regs_[op->rd];
      std::memcpy(mem_.data() + paddr, &value, 4);
    })
    SB_STORE(kSbSh, 2, {
      const uint16_t v16 = static_cast<uint16_t>(regs_[op->rd]);
      std::memcpy(mem_.data() + paddr, &v16, 2);
    })
    SB_STORE(kSbSb, 1, { mem_[paddr] = static_cast<uint8_t>(regs_[op->rd]); })

    SB_BRANCH(kSbBeq, a == b)
    SB_BRANCH(kSbBne, a != b)
    SB_BRANCH(kSbBlt, static_cast<int32_t>(a) < static_cast<int32_t>(b))
    SB_BRANCH(kSbBge, static_cast<int32_t>(a) >= static_cast<int32_t>(b))
    SB_BRANCH(kSbBltu, a < b)
    SB_BRANCH(kSbBgeu, a >= b)

    SB_CASE(kSbJ) : {
      SB_PRE();
      cyc += op->cost;
      Superblock* nxt = sb->taken;
      if (nxt != nullptr && nxt->valid) {
        sb = nxt;
        op = sb->ops;
        SB_DISPATCH();
      }
      pc_ = static_cast<uint32_t>(op->imm);
      chain_slot = &sb->taken;
      SB_FLUSH();
      goto outer;
    }
    SB_CASE(kSbJal) : {
      SB_PRE();
      set_reg(isa::kRa, op->pc + 4);
      cyc += op->cost;
      Superblock* nxt = sb->taken;
      if (nxt != nullptr && nxt->valid) {
        sb = nxt;
        op = sb->ops;
        SB_DISPATCH();
      }
      pc_ = static_cast<uint32_t>(op->imm);
      chain_slot = &sb->taken;
      SB_FLUSH();
      goto outer;
    }
    SB_CASE(kSbJalr) : {
      SB_PRE();
      const uint32_t target =
          (regs_[op->rs1] + static_cast<uint32_t>(op->imm)) & ~3u;
      set_reg(op->rd, op->pc + 4);
      cyc += op->cost;
      pc_ = target;  // dynamic target: resolve through the dispatch loop
      SB_FLUSH();
      goto outer;
    }

    SB_CASE(kSbSys) : {
      SB_PRE();
      cyc += op->cost;
      pc_ = op->pc;  // OnIcacheInvalidate receives the trapping pc
      SB_FLUSH();
      uint32_t next_pc = op->pc + 4;
      DoSyscall(op->imm, &next_pc);
      if (pending_stop_ != StopReason::kRunning) {
        return MakeResult(pending_stop_);
      }
      // SYS ends the block: OnIcacheInvalidate may have evicted the very
      // code that issued it, so always re-resolve.
      pc_ = next_pc;
      goto outer;
    }
    SB_CASE(kSbHalt) : {
      SB_PRE();
      pc_ = op->pc;
      SB_FLUSH();
      pending_stop_ = StopReason::kHalted;
      exit_code_ = static_cast<int32_t>(regs_[isa::kA0]);
      return MakeResult(pending_stop_);
    }
    SB_CASE(kSbTcMiss) : {
      SB_PRE();
      pc_ = op->pc;
      SB_FLUSH();
      if (trap_handler_ == nullptr) {
        return FaultHere("TCMISS with no trap handler");
      }
      // The handler installs/patches code (killing overlapping superblocks
      // through InvalidateDecode) and returns the resume pc.
      pc_ = trap_handler_->OnTcMiss(*this, static_cast<uint32_t>(op->imm));
      if (pending_stop_ != StopReason::kRunning) {
        return MakeResult(pending_stop_);
      }
      goto outer;
    }
    SB_CASE(kSbTcJalr) : {
      SB_PRE();
      pc_ = op->pc;
      if (trap_handler_ == nullptr) {
        SB_FLUSH();
        return FaultHere("TCJALR with no trap handler");
      }
      cyc += op->cost;
      SB_FLUSH();
      Instr in;
      in.op = Opcode::kTcJalr;
      in.rd = op->rd;
      in.rs1 = op->rs1;
      in.imm = op->imm;
      pc_ = trap_handler_->OnTcJalr(*this, in, op->pc);
      if (pending_stop_ != StopReason::kRunning) {
        return MakeResult(pending_stop_);
      }
      goto outer;
    }
    SB_CASE(kSbIllegal) : {
      SB_PRE();
      pc_ = op->pc;
      SB_FLUSH();
      return FaultIllegal(static_cast<uint32_t>(op->imm));
    }
    SB_CASE(kSbFallthrough) : {
      // Synthetic terminator: zero instructions, just a continuation.
      Superblock* nxt = sb->fall;
      if (nxt != nullptr && nxt->valid) {
        sb = nxt;
        op = sb->ops;
        SB_DISPATCH();
      }
      pc_ = op->pc;
      chain_slot = &sb->fall;
      SB_FLUSH();
      goto outer;
    }
#if !SC_SB_COMPUTED_GOTO
    case kSbKindCount:
      break;  // never emitted by TranslateSuperblock
#endif
  }
#if !SC_SB_COMPUTED_GOTO
  SC_UNREACHABLE() << "threaded dispatch fell out of the switch";
#endif
}

#undef SB_CASE
#undef SB_NEXT
#undef SB_DISPATCH
#undef SB_FLUSH
#undef SB_RELOAD
#undef SB_PRE
#undef SB_ALU
#undef SB_ALUI
#undef SB_BRANCH
#undef SB_LOAD
#undef SB_STORE

}  // namespace sc::vm
