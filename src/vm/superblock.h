// Superblock threaded-code execution engine.
//
// The interpreter (machine.cpp) pays a fetch -> decode-cache probe -> switch
// dispatch for every retired instruction. This engine translates straight-line
// runs of decoded instructions into *superblocks* — arrays of pre-decoded ops
// ending at a control transfer (branch/jump/JALR/SYS/HALT/TCMISS/TCJALR) or at
// kSbMaxOps — and executes them with a direct-threaded inner loop (computed
// goto on GCC/Clang): no per-instruction fetch, no decode-cache probe, no
// top-level switch. Superblocks chain: a block whose branch target is already
// translated jumps straight into the successor's threaded body without going
// back through the dispatch loop.
//
// Semantics contract (proven by tests/engine_test.cpp differential runs):
// guest output, exit code, instruction count, cycle total, fault messages,
// FetchObserver stream, TrapHandler/DataHook call sequence and SetExecRange
// enforcement are bit-identical to the interpreter. Invalidation rides the
// existing InvalidateDecode plumbing — every WriteWord/WriteBlock (cache
// controller installs/patches/evictions, recovery replay, COW text writes)
// and every guest store or SYS_READ into translated text kills overlapping
// superblocks, so self-modifying code behaves exactly as under the
// interpreter.
#pragma once

#include <cstdint>
#include <deque>

#include "isa/isa.h"
#include "util/open_table.h"
#include "util/rng.h"

namespace sc::vm {

// Which execution engine Machine::Run uses. The default for new machines
// comes from the SOFTCACHE_ENGINE environment variable ("threaded" or
// "interp"); unset means kInterp, keeping all existing traces bit-identical.
enum class Engine : uint8_t { kInterp = 0, kThreaded };
Engine DefaultEngine();

// One threaded handler per (opcode, ALU funct) pair, so the inner loop never
// switches on a secondary field.
enum SbKind : uint8_t {
  // kAlu, split by funct.
  kSbAdd, kSbSub, kSbAnd, kSbOr, kSbXor, kSbSll, kSbSrl, kSbSra, kSbSlt,
  kSbSltu, kSbMul, kSbDiv, kSbDivu, kSbRem, kSbRemu,
  // Immediate forms.
  kSbAddi, kSbAndi, kSbOri, kSbXori, kSbSlti, kSbSltiu, kSbSlli, kSbSrli,
  kSbSrai, kSbLui,
  // Loads / stores.
  kSbLw, kSbLh, kSbLhu, kSbLb, kSbLbu, kSbSw, kSbSh, kSbSb,
  // Terminators: every superblock ends with exactly one of these.
  kSbBeq, kSbBne, kSbBlt, kSbBge, kSbBltu, kSbBgeu,
  kSbJ, kSbJal, kSbJalr, kSbSys, kSbHalt, kSbTcMiss, kSbTcJalr, kSbIllegal,
  // Synthetic terminator for blocks cut at kSbMaxOps or at the edge of the
  // fetchable range: continues at `pc` through the dispatch loop.
  kSbFallthrough,
  kSbKindCount,
};

// A pre-decoded instruction in threaded form. `handler` is the computed-goto
// label for `kind` (null in the portable switch fallback). `imm` holds the
// sign-extended immediate, except for direct branches/jumps where it is the
// precomputed *absolute* target address and for kSbIllegal where it is the
// raw undecodable word (for the fault message).
struct SbOp {
  const void* handler = nullptr;
  uint32_t pc = 0;
  int32_t imm = 0;
  uint32_t cost = 0;  // cycle charge, from the CostModel at translation time
  uint8_t kind = 0;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
};

// Superblock length cap. Basic blocks in the bundled workloads average well
// under this; the cap only bounds per-block storage and invalidation scans.
inline constexpr uint32_t kSbMaxOps = 32;
inline constexpr uint32_t kSbMaxBytes = kSbMaxOps * 4;
// Pool bound: translating past this many blocks (live + invalidated-but-not-
// yet-reclaimed) flushes the whole cache. Far above any bundled workload's
// working set; a backstop against pathological churn.
inline constexpr uint32_t kSbMaxBlocks = 4096;

struct Superblock {
  uint32_t start = 0;   // first fetch address covered
  uint32_t span = 0;    // bytes of guest text covered (real ops only)
  uint32_t n_ops = 0;   // including the terminator
  bool valid = false;
  // Chain slots, filled lazily by the dispatch loop: the successor block for
  // the terminator's taken edge (branch taken / J / JAL) and fallthrough
  // edge (branch not taken / kSbFallthrough). A slot is followed only while
  // its target's `valid` holds, so invalidation severs chains implicitly.
  Superblock* taken = nullptr;
  Superblock* fall = nullptr;
  // Integrity stamp over the semantic op fields (SbDigest), computed at
  // translation time when Machine::set_sb_integrity is on; 0 otherwise.
  // The scrub walk (ScrubCorrupt) invalidates any block whose recomputed
  // digest mismatches, so a bit flip in the decoded form never executes.
  uint64_t digest = 0;
  SbOp ops[kSbMaxOps + 1];  // +1 for the synthetic fallthrough terminator
};

// FNV-1a over the block's semantic content: start/span/n_ops plus every
// op's pc, imm, cost, kind and register fields. Handler pointers and chain
// slots are deliberately excluded (host addresses; chains mutate benignly).
uint64_t SbDigest(const Superblock& sb);

// Counters surfaced as vm.sb.* metrics and asserted by bench_superblock.
struct SbStats {
  uint64_t fills = 0;          // superblocks translated
  uint64_t fill_ops = 0;       // ops pre-decoded into superblocks
  uint64_t chains = 0;         // chain links installed
  uint64_t invalidations = 0;  // superblocks killed by overlapping writes
  uint64_t flushes = 0;        // whole-cache flushes (capacity, exec range)
};

// The translated-block store: a stable-address pool plus a start-pc index.
// Invalidation only *marks* blocks dead (chains and the currently executing
// block may still hold pointers into the pool); reclamation is deferred to
// the dispatch loop's next top-of-loop, when no block is executing.
class SuperblockCache {
 public:
  SuperblockCache() : index_(1024) {}

  Superblock* Find(uint32_t pc) {
    Superblock** p = index_.Find(pc);
    return p != nullptr && (*p)->valid ? *p : nullptr;
  }

  // Appends a fresh block to the pool (caller fills and then calls Publish).
  Superblock* NewBlock() {
    pool_.emplace_back();
    return &pool_.back();
  }
  void Publish(Superblock* sb) {
    sb->valid = true;
    index_.Put(sb->start, sb);
    ++live_;
    if (sb->start < lo_) lo_ = sb->start;
    if (sb->start + sb->span > hi_) hi_ = sb->start + sb->span;
  }

  // Kills every block overlapping [addr, addr+len). Returns true when
  // anything died (the dispatch loop must then leave the current block).
  bool Invalidate(uint32_t addr, uint32_t len, SbStats* stats);

  // Integrity scrub: recomputes SbDigest over every live block and kills
  // mismatches (counted as invalidations). Returns the number killed;
  // `words_scanned` (may be null) accumulates ops walked. Only meaningful
  // when blocks were stamped (Machine::set_sb_integrity).
  uint32_t ScrubCorrupt(SbStats* stats, uint64_t* words_scanned);

  // Fault injection: flips one random bit in a uniformly chosen live
  // block's decoded immediate. Returns false when no block is live (the
  // interpreter engine, or an empty cache). Draws come only from `rng`, so
  // the caller's other fault streams are never perturbed.
  bool CorruptBit(util::Rng& rng);

  // Marks every block dead and schedules pool reclamation. Never frees
  // storage itself — see class comment.
  void FlushMark(SbStats* stats);

  bool reclaim_pending() const { return reclaim_pending_; }
  void Reclaim() {
    pool_.clear();
    index_ = util::OpenTable<uint32_t, Superblock*>(1024);
    live_ = 0;
    lo_ = UINT32_MAX;
    hi_ = 0;
    reclaim_pending_ = false;
  }

  size_t pool_size() const { return pool_.size(); }
  size_t live_blocks() const { return live_; }

  // Visits every live superblock in pool (translation) order, exposing the
  // chain graph: fn(block, taken successor, fall successor) with dead
  // successors passed as null (a chain slot is only followed while its
  // target's `valid` holds, so the view matches what dispatch would do).
  // Inspector surface; the pool is stable while no guest runs.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    for (const Superblock& sb : pool_) {
      if (!sb.valid) continue;
      const Superblock* taken =
          sb.taken != nullptr && sb.taken->valid ? sb.taken : nullptr;
      const Superblock* fall =
          sb.fall != nullptr && sb.fall->valid ? sb.fall : nullptr;
      fn(sb, taken, fall);
    }
  }
  // Conservative bounds of translated text, for the store fast-path check.
  uint32_t lo() const { return live_ == 0 ? UINT32_MAX : lo_; }
  uint32_t hi() const { return live_ == 0 ? 0 : hi_; }

 private:
  std::deque<Superblock> pool_;  // stable addresses; cleared only by Reclaim
  util::OpenTable<uint32_t, Superblock*> index_;  // start pc -> block
  size_t live_ = 0;
  uint32_t lo_ = UINT32_MAX;  // min start over live blocks (never shrinks)
  uint32_t hi_ = 0;           // max start+span over live blocks
  bool reclaim_pending_ = false;
};

}  // namespace sc::vm
