// The SRK32 virtual machine: a flat-memory interpreter with a deterministic
// cycle cost model and the hook points the software cache plugs into.
//
// Hook points:
//   * FetchObserver — sees every instruction fetch (address). The hardware
//     cache simulator (Figure 6) and the profiler (Figure 9) attach here.
//   * TrapHandler — receives TCMISS / TCJALR traps. The cache controller
//     (client side of the softcache) attaches here; on a miss it talks to
//     the memory controller, writes rewritten code into local memory via
//     this Machine's mem(), charges cycles, and returns the new PC.
//   * DataHook — translates data addresses in a configurable range. The
//     software D-cache (Section 3 of the paper) attaches here to redirect
//     loads/stores into its on-chip arrays and charge tag-check costs.
//
// The VM deliberately has no knowledge of caching; all caching behaviour
// lives behind these interfaces.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "image/image.h"
#include "image/layout.h"
#include "isa/isa.h"
#include "util/result.h"
#include "vm/superblock.h"

namespace sc::vm {

// Deterministic per-instruction costs in cycles. The absolute values are a
// simple in-order single-issue model (documented in DESIGN.md); every result
// we report is a ratio, so only relative costs matter.
struct CostModel {
  uint32_t alu = 1;
  uint32_t mul = 3;
  uint32_t div = 12;
  uint32_t load = 1;
  uint32_t store = 1;
  uint32_t branch = 1;
  uint32_t jump = 1;
  uint32_t syscall = 5;
};

enum class StopReason : uint8_t {
  kRunning = 0,
  kHalted,       // HALT or SYS exit; exit_code valid
  kFault,        // architectural fault; fault_message valid
  kInstrLimit,   // Run() hit its instruction budget
};

struct RunResult {
  StopReason reason = StopReason::kRunning;
  int32_t exit_code = 0;
  std::string fault_message;
  uint64_t instructions = 0;
  uint64_t cycles = 0;
};

class Machine;

// Observes every instruction fetch. Kept as an abstract class (not
// std::function) so the inner loop pays one indirect call, no allocation.
class FetchObserver {
 public:
  virtual ~FetchObserver() = default;
  virtual void OnFetch(uint32_t pc) = 0;
};

// Handles softcache traps. See class comment above.
class TrapHandler {
 public:
  virtual ~TrapHandler() = default;
  // A TCMISS stub executed. Returns the PC to resume at.
  virtual uint32_t OnTcMiss(Machine& m, uint32_t stub_index) = 0;
  // A TCJALR executed at `pc`. The handler must implement the full jump:
  // compute the original target from the instruction operands, resolve it to
  // a local-memory address (translating on miss), write the link register,
  // and return the PC to resume at.
  virtual uint32_t OnTcJalr(Machine& m, const isa::Instr& instr, uint32_t pc) = 0;
  // SYS_ICACHE_INVAL executed at `pc` (self-modifying code contract).
  // Returns the PC to resume at — normally pc+4, but the handler may need
  // to relocate execution if the invalidation evicted the very code that
  // issued it.
  virtual uint32_t OnIcacheInvalidate(Machine& m, uint32_t addr, uint32_t len,
                                      uint32_t pc) = 0;
};

// Translates data addresses within the hooked range (software D-cache).
class DataHook {
 public:
  virtual ~DataHook() = default;
  // Returns the physical address the access should be performed at. May
  // charge cycles via m.Charge() and move data via m.mem(). `size` is 1, 2
  // or 4; `is_store` distinguishes read/write for dirty tracking.
  virtual uint32_t Translate(Machine& m, uint32_t vaddr, uint32_t size,
                             bool is_store) = 0;
};

// System call numbers (SYS instruction immediate).
enum Syscall : int32_t {
  kSysExit = 0,        // a0 = exit code
  kSysPutChar = 1,     // a0 = byte
  kSysGetChar = 2,     // rv = byte or -1 at EOF
  kSysWrite = 3,       // a0 = ptr, a1 = len
  kSysRead = 4,        // a0 = ptr, a1 = len; rv = bytes read
  kSysBrk = 5,         // a0 = bytes to grow; rv = old break (sbrk semantics)
  kSysCycles = 6,      // rv = low 32 bits of the cycle counter
  kSysIcacheInval = 7, // a0 = addr, a1 = len (forwarded to TrapHandler)
};

class Machine {
 public:
  explicit Machine(uint32_t mem_bytes = image::kDefaultMemBytes);

  // Copies the image's segments into memory, zeroes bss, sets PC to the
  // entry point, SP to the stack top and the heap break past bss.
  void LoadImage(const image::Image& img);

  // Executes until halt, fault, or `max_instructions` retired, on the
  // selected engine. Both engines produce bit-identical guest-visible
  // behavior (output, exit code, instruction and cycle counts, fault
  // messages, hook call sequences); they differ only in host speed.
  RunResult Run(uint64_t max_instructions = UINT64_MAX);

  // Engine selection. Switching engines flushes the superblock cache (the
  // interpreter validates stale decode entries by word compare on every
  // fetch; superblocks cannot, so anything translated before an interp
  // interlude must be rebuilt).
  Engine engine() const { return engine_; }
  void set_engine(Engine engine);

  // Threaded-engine counters (zero when only the interpreter ran). Stable
  // address for the Machine's lifetime, for the metrics registry.
  const SbStats& sb_stats() const { return sb_stats_; }

  // The threaded engine's translated-block store; null until the threaded
  // engine first runs. Inspector surface (superblock residency + chains).
  const SuperblockCache* sb_cache() const { return sb_cache_.get(); }

  // Superblock integrity stamping: when on, TranslateSuperblock records an
  // SbDigest in every block and ScrubSuperblocks can verify the cache.
  // Toggling flushes (pre-existing blocks carry no stamp). Bit-identity:
  // stamping changes no guest-visible behavior, only host work.
  void set_sb_integrity(bool on);
  bool sb_integrity() const { return sb_integrity_; }

  // Verifies every live superblock against its stamp, invalidating
  // mismatches so corrupted decoded code is retranslated from guest memory
  // instead of executed. Returns blocks killed; `words_scanned` (may be
  // null) accumulates ops walked. No-op unless set_sb_integrity(true).
  uint32_t ScrubSuperblocks(uint64_t* words_scanned);

  // Fault injection for the superblock domain: flips one bit in a random
  // live block's decoded form (see SuperblockCache::CorruptBit). Returns
  // false when nothing is live — e.g. under the interpreter engine.
  bool CorruptSuperblockBit(util::Rng& rng);

  // Degradation ladder: while [addr, addr+len) is poisoned, superblock
  // formation cuts blocks to a single real op over those words, so the
  // threaded engine executes them per-instruction (interpreter-equivalent
  // dispatch granularity, bit-identical semantics). Existing blocks over
  // the range are invalidated. The softcache quarantine path poisons a
  // tcache range after repeated corruption of the same chunk.
  void PoisonCodeRange(uint32_t addr, uint32_t len);
  void UnpoisonCodeRange(uint32_t addr, uint32_t len);
  bool CodePoisoned(uint32_t pc) const { return InPoison(pc); }
  size_t poison_range_count() const { return poison_.size(); }

  // Register file access. Writes to register 0 are ignored.
  uint32_t reg(uint8_t r) const { return regs_[r]; }
  void set_reg(uint8_t r, uint32_t v) {
    if (r != 0) regs_[r] = v;
  }
  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  // Raw memory access (bounds-checked; faults become SC_CHECK failures when
  // performed from the host side, architectural faults when from the guest).
  uint8_t* mem_data() { return mem_.data(); }
  uint32_t mem_size() const { return static_cast<uint32_t>(mem_.size()); }
  uint32_t ReadWord(uint32_t addr) const;
  void WriteWord(uint32_t addr, uint32_t value);
  void ReadBlock(uint32_t addr, void* out, uint32_t len) const;
  void WriteBlock(uint32_t addr, const void* bytes, uint32_t len);

  // Drops cached translations (decode-cache entries and superblocks) over
  // [addr, addr+len) without touching memory. WriteWord/WriteBlock do this
  // implicitly; code managers call it when text becomes *dead* rather than
  // different — e.g. the cache controller evicting a tcache block — so stale
  // translations don't outlive the code they were built from.
  void InvalidateCode(uint32_t addr, uint32_t len) {
    InvalidateDecode(addr, len);
  }

  // Translates a data address through the installed data hook (identity when
  // no hook covers it). Host-side agents that must see the same memory the
  // guest sees — e.g. the cache controller's stack walker operating alongside
  // a software D-cache — route their accesses through this.
  uint32_t TranslateForHost(uint32_t vaddr, uint32_t size, bool is_store) {
    return TranslateData(vaddr, size, is_store);
  }

  // Adds simulated cycles (used by trap handlers to charge miss latency).
  void Charge(uint64_t cycles) { cycles_ += cycles; }
  uint64_t cycles() const { return cycles_; }
  uint64_t instructions() const { return instret_; }
  // Stable address of the cycle counter, for the tracer's clock source and
  // the metrics registry. Valid for the Machine's lifetime.
  const uint64_t* cycles_counter() const { return &cycles_; }
  const uint64_t* instructions_counter() const { return &instret_; }

  // Restrict instruction fetch to [lo, hi). Any fetch outside faults. The
  // softcache client uses this to *prove* it only ever executes from local
  // memory. Pass lo == hi == 0 to clear. Changing the range flushes the
  // superblock cache (block formation bakes the range check in).
  void SetExecRange(uint32_t lo, uint32_t hi);

  // Hook registration (non-owning; caller keeps the object alive).
  void set_fetch_observer(FetchObserver* obs) { fetch_observer_ = obs; }
  void set_trap_handler(TrapHandler* handler) { trap_handler_ = handler; }
  // Data accesses with vaddr in [lo, hi) go through `hook`.
  void SetDataHook(DataHook* hook, uint32_t lo, uint32_t hi) {
    data_hook_ = hook;
    data_hook_lo_ = lo;
    data_hook_hi_ = hi;
  }

  // Guest console / input stream.
  void SetInput(std::vector<uint8_t> input) {
    input_ = std::move(input);
    input_pos_ = 0;
  }
  const std::vector<uint8_t>& output() const { return output_; }
  std::string OutputString() const {
    return std::string(output_.begin(), output_.end());
  }

  const CostModel& cost_model() const { return cost_; }
  // Superblocks bake per-op cycle costs in at translation time, so changing
  // the model flushes them.
  void set_cost_model(const CostModel& cost);

  // Raises an architectural fault from inside a hook (e.g. the ARM-style
  // prototype faults on unsupported indirect jumps).
  void RaiseFault(const std::string& message);

 private:
  RunResult MakeResult(StopReason reason);
  bool CheckDataAddr(uint32_t addr, uint32_t size);
  uint32_t TranslateData(uint32_t addr, uint32_t size, bool is_store);
  void DoSyscall(int32_t number, uint32_t* next_pc);

  // The two engines behind Run(). RunInterp is the original fetch/decode/
  // switch loop; RunThreaded (superblock.cpp) is the direct-threaded
  // superblock engine.
  RunResult RunInterp(uint64_t max_instructions);
  RunResult RunThreaded(uint64_t max_instructions);
  // Forms a superblock starting at `start` (which the caller has validated
  // as a legal fetch address). `handlers` is the threaded dispatch table
  // (null in the switch fallback).
  Superblock* TranslateSuperblock(uint32_t start, const void* const* handlers);
  // Marks every superblock dead (invalidation/flush paths and engine
  // switches); storage is reclaimed at the dispatch loop's next iteration.
  void FlushSuperblocks();
  // Refreshes the [sb_lo_, sb_hi_) store fast-path bounds from the cache.
  void SyncSuperblockBounds();
  // A guest-side byte store landed inside the superblocked range (direct
  // store or SYS_READ): kill overlapping blocks. Cold path of the inlined
  // bounds check.
  [[gnu::noinline]] void SuperblockStoreSlow(uint32_t paddr, uint32_t size);
  // True when `pc` lies inside any poisoned code range (linear scan; the
  // ladder keeps at most a handful of ranges live).
  bool InPoison(uint32_t pc) const {
    for (const auto& r : poison_) {
      if (pc >= r.first && pc < r.second) return true;
    }
    return false;
  }

  // Cold-path fault constructors. Building an ostringstream inlines a pile
  // of iostream machinery into Run()'s loop; keeping these out of line makes
  // every hot-loop failure check a compare-and-branch to a far call.
  [[gnu::noinline, gnu::cold]] RunResult FaultHere(const char* what);
  [[gnu::noinline, gnu::cold]] RunResult FaultIllegal(uint32_t word);
  [[gnu::noinline, gnu::cold]] void FaultDataAddr(const char* what,
                                                  uint32_t addr, uint32_t size);
  [[gnu::noinline, gnu::cold]] void FaultSyscall(int32_t number);

  // Decoded-instruction cache: direct-mapped on word index. An entry is
  // trusted when its cached raw word equals the word fetched from memory —
  // Decode is a pure function of the word, so a word match guarantees the
  // cached Instr is correct even for index aliasing or guest stores that
  // write mem_ directly. WriteWord/WriteBlock into the exec range also reset
  // affected entries explicitly.
  struct DecodeEntry {
    uint32_t word = 0;
    isa::Instr instr;
  };
  static constexpr uint32_t kDecodeCacheBits = 16;
  static constexpr uint32_t kDecodeCacheEntries = 1u << kDecodeCacheBits;
  static constexpr uint32_t kDecodeCacheMask = kDecodeCacheEntries - 1;
  void InvalidateDecode(uint32_t addr, uint32_t len);

  std::array<uint32_t, isa::kNumRegs> regs_{};
  uint32_t pc_ = 0;
  std::vector<uint8_t> mem_;
  // Allocated lazily on the first Run() (a Machine used only as a memory
  // container pays nothing).
  std::vector<DecodeEntry> decode_cache_;
  // Threaded engine state. The cache is allocated lazily on the first
  // threaded Run; sb_lo_/sb_hi_ mirror its bounds so the store hot path's
  // self-modifying-code check is two compares against locals. sb_interrupt_
  // is raised whenever invalidation kills blocks while the threaded loop is
  // inside one — the loop leaves the (possibly stale) block at the next op
  // boundary and re-resolves through the dispatch loop.
  Engine engine_;
  std::unique_ptr<SuperblockCache> sb_cache_;
  SbStats sb_stats_;
  uint32_t sb_lo_ = UINT32_MAX;
  uint32_t sb_hi_ = 0;
  bool sb_interrupt_ = false;
  // Integrity state: digest stamping toggle + poisoned [lo, hi) code ranges
  // (degradation ladder; see PoisonCodeRange).
  bool sb_integrity_ = false;
  std::vector<std::pair<uint32_t, uint32_t>> poison_;
  uint64_t cycles_ = 0;
  uint64_t instret_ = 0;
  CostModel cost_;

  uint32_t exec_lo_ = 0;
  uint32_t exec_hi_ = 0;

  FetchObserver* fetch_observer_ = nullptr;
  TrapHandler* trap_handler_ = nullptr;
  DataHook* data_hook_ = nullptr;
  uint32_t data_hook_lo_ = 0;
  uint32_t data_hook_hi_ = 0;

  std::vector<uint8_t> input_;
  size_t input_pos_ = 0;
  std::vector<uint8_t> output_;
  uint32_t brk_ = 0;

  // Run-state latched by faults/halt inside a step.
  StopReason pending_stop_ = StopReason::kRunning;
  int32_t exit_code_ = 0;
  std::string fault_message_;
};

}  // namespace sc::vm
