// sasm — the SRK32 assembler driver.
//
//   sasm program.s --o=program.img
#include <cstdio>

#include "sasm/assembler.h"
#include "tools/tool_util.h"
#include "util/stats.h"

using namespace sc;

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const std::string unknown = args.FirstUnknown({"o", "help"});
  if (!unknown.empty() || args.Has("help") || args.positional().size() != 1) {
    if (!unknown.empty()) std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    std::fprintf(stderr, "usage: sasm <program.s> [--o=out.img]\n");
    return 2;
  }
  const auto source = tools::ReadFile(args.positional()[0]);
  if (!source) return 1;
  const auto img = sasm::Assemble(*source, args.positional()[0]);
  if (!img.ok()) {
    std::fprintf(stderr, "%s\n", img.error().ToString().c_str());
    return 1;
  }
  const std::string out_path = args.Get("o", "a.img");
  if (!tools::WriteFileBytes(out_path, img->Serialize())) return 1;
  std::printf("wrote %s (%s text, %s data)\n", out_path.c_str(),
              util::HumanBytes(img->text.size()).c_str(),
              util::HumanBytes(img->data.size()).c_str());
  return 0;
}
