// Minimal recursive-descent JSON reader for the repo's own tools.
//
// sctop consumes the Inspector's snapshot documents (and nothing else), so
// this deliberately supports exactly what those documents contain: objects,
// arrays, strings without exotic escapes, integers, booleans and null. It is
// NOT a general-purpose parser — no floats-with-exponents round-tripping, no
// \uXXXX decoding (kept verbatim) — and it fails closed with a position on
// anything malformed. Zero dependencies, header-only.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace sc::tools {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;  // integers up to 2^53 exact; enough for counters here
  std::string string;
  std::vector<JsonValue> array;
  // Map (not vector of pairs): inspector keys are unique and lookup by name
  // is what sctop does.
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object member access; returns a shared null for missing keys so lookups
  // chain without null checks.
  const JsonValue& operator[](const std::string& key) const {
    static const JsonValue null_value;
    if (kind != Kind::kObject) return null_value;
    auto it = object.find(key);
    return it == object.end() ? null_value : it->second;
  }
  uint64_t AsU64() const {
    return kind == Kind::kNumber && number >= 0 ? static_cast<uint64_t>(number)
                                                : 0;
  }
  const std::string& AsString() const { return string; }
};

class JsonParser {
 public:
  // Parses one document. Returns false with `error` set on malformed input.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error) {
    JsonParser parser(text);
    if (!parser.ParseValue(out)) {
      *error = parser.error_ + " at offset " + std::to_string(parser.pos_);
      return false;
    }
    parser.SkipSpace();
    if (parser.pos_ != text.size()) {
      *error = "trailing bytes at offset " + std::to_string(parser.pos_);
      return false;
    }
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Fail(const std::string& what) {
    if (error_.empty()) error_ = what;
    return false;
  }
  bool Expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default:
            // \uXXXX and friends: keep verbatim, the inspector never emits
            // them and sctop only prints.
            out->push_back('\\');
            c = esc;
        }
      }
      out->push_back(c);
    }
    return Expect('"');
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (!Expect(':')) return false;
        if (!ParseValue(&out->object[key])) return false;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Expect('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        out->array.emplace_back();
        if (!ParseValue(&out->array.back())) return false;
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return Expect(']');
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return true;
    }
    // Number: integers and plain decimals/exponents via strtod.
    {
      const char* begin = text_.c_str() + pos_;
      char* end = nullptr;
      const double value = std::strtod(begin, &end);
      if (end == begin) return Fail("invalid value");
      out->kind = JsonValue::Kind::kNumber;
      out->number = value;
      pos_ += static_cast<size_t>(end - begin);
      return true;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace sc::tools
