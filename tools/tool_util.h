// Shared helpers for the command-line tools.
#pragma once

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace sc::tools {

// Reads a whole file; nullopt (with a message on stderr) on failure.
inline std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

inline std::optional<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  auto text = ReadFile(path);
  if (!text) return std::nullopt;
  return std::vector<uint8_t>(text->begin(), text->end());
}

inline bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

// Tiny flag parser: positional args plus --key=value / --flag options.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_.emplace_back(arg.substr(2), "");
        } else {
          flags_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool Has(const std::string& name) const {
    for (const auto& [key, value] : flags_) {
      if (key == name) return true;
    }
    return false;
  }
  std::string Get(const std::string& name, const std::string& fallback = "") const {
    for (const auto& [key, value] : flags_) {
      if (key == name) return value;
    }
    return fallback;
  }
  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    const std::string v = Get(name);
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 0);
  }
  const std::vector<std::string>& positional() const { return positional_; }
  // Flags not in `known` (typo detection); returns first unknown or "".
  std::string FirstUnknown(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : flags_) {
      bool found = false;
      for (const auto& k : known) {
        if (k == key) found = true;
      }
      if (!found) return key;
    }
    return "";
  }

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sc::tools
