// sdis — image disassembler.
//
//   sdis program.img [--symbols] [--data]
#include <cstdio>

#include "image/image.h"
#include "isa/isa.h"
#include "tools/tool_util.h"

using namespace sc;

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const std::string unknown = args.FirstUnknown({"symbols", "data", "help"});
  if (!unknown.empty() || args.Has("help") || args.positional().size() != 1) {
    if (!unknown.empty()) std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    std::fprintf(stderr, "usage: sdis <program.img> [--symbols] [--data]\n");
    return 2;
  }
  const auto bytes = tools::ReadFileBytes(args.positional()[0]);
  if (!bytes) return 1;
  const auto img = image::Image::Deserialize(*bytes);
  if (!img.ok()) {
    std::fprintf(stderr, "%s\n", img.error().ToString().c_str());
    return 1;
  }

  if (args.Has("symbols")) {
    std::printf("%-24s %-10s %10s %6s\n", "symbol", "address", "size", "kind");
    for (const auto& sym : img->symbols) {
      std::printf("%-24s 0x%08x %10u %6s\n", sym.name.c_str(), sym.addr, sym.size,
                  sym.kind == image::SymbolKind::kFunction ? "func" : "obj");
    }
    return 0;
  }
  if (args.Has("data")) {
    for (uint32_t off = 0; off < img->data.size(); off += 16) {
      std::printf("%08x: ", img->data_base + off);
      for (uint32_t i = 0; i < 16 && off + i < img->data.size(); ++i) {
        std::printf("%02x ", img->data[off + i]);
      }
      std::printf("\n");
    }
    return 0;
  }

  const image::Symbol* current = nullptr;
  for (uint32_t addr = img->text_base; addr < img->text_end(); addr += 4) {
    const image::Symbol* fn = img->FunctionAt(addr);
    if (fn != nullptr && fn != current) {
      std::printf("\n%08x <%s>:\n", fn->addr, fn->name.c_str());
      current = fn;
    }
    const uint32_t word = img->TextWord(addr);
    std::printf("  %08x:  %08x  %s\n", addr, word,
                isa::Disassemble(word, addr).c_str());
  }
  return 0;
}
