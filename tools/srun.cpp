// srun — run a program natively or under the software cache.
//
//   srun program.img                         run directly ("ideal")
//   srun program.mc                          .mc sources compile on the fly
//   srun p.img --softcache --tcache=8192     run under the software I-cache
//   srun p.img --softcache --style=arm       procedure-chunk prototype
//   srun p.img --softcache --dcache          attach the software D-cache
//   srun p.img --input=file --stats --profile
//   srun --workload=dijkstra --softcache
//        --trace=out.json --metrics=m.json   built-in workload, observed
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "dcache/dcache.h"
#include "image/image.h"
#include "minicc/compiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_mux.h"
#include "profile/profiler.h"
#include "softcache/inspector.h"
#include "softcache/system.h"
#include "tools/tool_util.h"
#include "util/stats.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

using namespace sc;

namespace {

void PrintSoftCacheStats(softcache::SoftCacheSystem& system,
                         const vm::RunResult& result) {
  const auto& stats = system.stats();
  const auto& net = system.channel().stats();
  std::fprintf(stderr, "--- softcache stats ---\n");
  std::fprintf(stderr, "instructions:       %llu\n",
               (unsigned long long)result.instructions);
  std::fprintf(stderr, "cycles:             %llu\n",
               (unsigned long long)result.cycles);
  std::fprintf(stderr, "blocks translated:  %llu\n",
               (unsigned long long)stats.blocks_translated);
  std::fprintf(stderr, "patch-only misses:  %llu\n",
               (unsigned long long)stats.patch_only_misses);
  std::fprintf(stderr, "hash lookups:       %llu (%llu translated)\n",
               (unsigned long long)stats.hash_lookups,
               (unsigned long long)stats.hash_lookup_misses);
  std::fprintf(stderr, "evictions/flushes:  %llu / %llu\n",
               (unsigned long long)stats.evictions,
               (unsigned long long)stats.flushes);
  std::fprintf(stderr, "ra fixups:          %llu (%llu frames walked)\n",
               (unsigned long long)stats.return_addr_fixups,
               (unsigned long long)stats.stack_walk_frames);
  std::fprintf(stderr, "miss cycles:        %llu (%.2f%% of run)\n",
               (unsigned long long)stats.miss_cycles,
               100.0 * (double)stats.miss_cycles / (double)result.cycles);
  std::fprintf(stderr, "tcache peak:        %s\n",
               util::HumanBytes(stats.tcache_bytes_used_peak).c_str());
  std::fprintf(stderr, "network:            %llu msgs, %s\n",
               (unsigned long long)net.total_messages(),
               util::HumanBytes(net.total_bytes()).c_str());
  const auto& integrity = stats.integrity;
  if (integrity.ticks != 0) {
    std::fprintf(stderr,
                 "integrity:          %llu ticks, %llu flips, %llu detected, "
                 "%llu heals, %llu scrubs (%llu words)\n",
                 (unsigned long long)integrity.ticks,
                 (unsigned long long)integrity.flips_injected,
                 (unsigned long long)integrity.corruptions_detected,
                 (unsigned long long)integrity.heals,
                 (unsigned long long)integrity.scrubs,
                 (unsigned long long)integrity.scrubbed_words);
  }
}

// Parses a --memfaults spec: comma-separated knob=value pairs out of
// {rate, period, after, at-cycle, seed}, e.g.
// --memfaults=rate=0.001,seed=7. Returns false with `error` set on any
// unknown knob or malformed value.
bool ParseMemFaults(const std::string& spec, softcache::MemFaultConfig* out,
                    std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      *error = "expected knob=value, got '" + pair + "'";
      return false;
    }
    const std::string knob = pair.substr(0, eq);
    const std::string value = pair.substr(eq + 1);
    char* end = nullptr;
    if (knob == "rate") {
      out->rate = std::strtod(value.c_str(), &end);
    } else if (knob == "period") {
      out->period = std::strtoull(value.c_str(), &end, 10);
    } else if (knob == "after") {
      out->after = std::strtoull(value.c_str(), &end, 10);
    } else if (knob == "at-cycle") {
      out->at_cycle = std::strtoull(value.c_str(), &end, 10);
    } else if (knob == "seed") {
      out->seed = std::strtoull(value.c_str(), &end, 10);
    } else {
      *error = "unknown knob '" + knob + "'";
      return false;
    }
    if (end == value.c_str() || *end != '\0') {
      *error = "malformed value '" + value + "' for " + knob;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const std::string unknown = args.FirstUnknown(
      {"softcache", "style", "tcache", "trace-blocks", "evict", "dcache",
       "input", "stats", "profile", "max-instr", "dump-tcache", "help",
       "workload", "scale", "prefetch", "trace", "metrics", "crash-period",
       "crash-after", "crash-rate", "crash-at-cycle", "fault-seed", "clients",
       "verify", "shared-reply", "shards", "workers", "threads", "engine",
       "inspect", "inspect-every", "memfaults", "scrub-every"});
  const bool use_workload = args.Has("workload");
  const size_t want_positional = use_workload ? 0 : 1;
  if (!unknown.empty() || args.Has("help") ||
      args.positional().size() != want_positional) {
    if (!unknown.empty()) std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    std::fprintf(stderr,
                 "usage: srun <program.img|program.mc> [--input=FILE]\n"
                 "            [--softcache] [--style=sparc|arm] [--tcache=N]\n"
                 "            [--trace-blocks=N] [--evict=fifo|flush] [--dcache]\n"
                 "            [--stats] [--profile] [--max-instr=N]\n"
                 "            [--engine=interp|threaded]  VM execution engine\n"
                 "                 (default: SOFTCACHE_ENGINE env or interp)\n"
                 "       srun --workload=NAME [--scale=N] (instead of a program)\n"
                 "observability (softcache runs):\n"
                 "            [--prefetch=off|nextn|temp]\n"
                 "            [--trace=FILE]    Chrome trace-event JSON (fleet\n"
                 "                              runs merge per-agent lanes)\n"
                 "            [--metrics=FILE]  metrics registry JSON\n"
                 "            [--inspect=FILE]  cache-state snapshot on exit\n"
                 "                              (sctop renders it)\n"
                 "            [--inspect-every=N]  also snapshot every N guest\n"
                 "                              cycles to FILE.<seq>\n"
                 "memory-fault injection (softcache runs; self-healing cache):\n"
                 "            [--memfaults=rate=R,period=N,after=N,\n"
                 "                         at-cycle=C,seed=S]\n"
                 "                 seeded bit flips into cached state (tcache,\n"
                 "                 staged chunks, content store, superblocks,\n"
                 "                 server memo); enables integrity checking\n"
                 "            [--scrub-every=N]    background integrity scrub\n"
                 "                 every N integrity ticks (also enables\n"
                 "                 integrity checking; default 8)\n"
                 "crash injection (softcache runs; server restarts + recovery):\n"
                 "            [--crash-period=N]   MC crashes every Nth request\n"
                 "            [--crash-after=N]    MC crashes once on request N\n"
                 "            [--crash-rate=P]     per-request crash probability\n"
                 "            [--crash-at-cycle=C] MC crashes once at cycle C\n"
                 "            [--fault-seed=S]     crash schedule RNG seed\n"
                 "multi-client (softcache runs; one MC, N cache controllers):\n"
                 "            [--clients=N]        N guests share one MC (1..%u)\n"
                 "            [--shared-reply]     content-addressed coalesced\n"
                 "                                 replies (broadcast snooping)\n"
                 "            [--shards=N]         server memo/translate shards\n"
                 "            [--workers=N]        dedicated server threads\n"
                 "                                 draining the shard lanes\n"
                 "                                 (0 = borrowed-thread serving;\n"
                 "                                 requires N <= shards)\n"
                 "            [--threads=N]        host threads for client VMs\n"
                 "            [--verify]           re-run each client solo and\n"
                 "                                 check bit-identical behavior\n",
                 static_cast<unsigned>(softcache::kMaxClients));
    return 2;
  }

  // Load or compile the program.
  image::Image img;
  std::vector<uint8_t> input;
  if (use_workload) {
    const auto* spec = workloads::FindWorkload(args.Get("workload"));
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown workload %s\n", args.Get("workload").c_str());
      return 1;
    }
    img = workloads::CompileWorkload(*spec);
    input = workloads::MakeInput(spec->name,
                                 static_cast<int>(args.GetInt("scale", 1)));
  } else {
    const std::string path = args.positional()[0];
    if (path.size() > 3 && path.substr(path.size() - 3) == ".mc") {
      const auto source = tools::ReadFile(path);
      if (!source) return 1;
      auto compiled = minicc::CompileMiniC(*source, path);
      if (!compiled.ok()) {
        std::fprintf(stderr, "%s\n", compiled.error().ToString().c_str());
        return 1;
      }
      img = std::move(*compiled);
    } else {
      const auto bytes = tools::ReadFileBytes(path);
      if (!bytes) return 1;
      auto parsed = image::Image::Deserialize(*bytes);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.error().ToString().c_str());
        return 1;
      }
      img = std::move(*parsed);
    }
  }

  if (args.Has("input")) {
    auto bytes = tools::ReadFileBytes(args.Get("input"));
    if (!bytes) return 1;
    input = std::move(*bytes);
  }
  const uint64_t max_instr = args.GetInt("max-instr", UINT64_MAX);

  const std::string engine_name = args.Get("engine", "");
  vm::Engine engine = vm::DefaultEngine();
  if (engine_name == "interp") {
    engine = vm::Engine::kInterp;
  } else if (engine_name == "threaded") {
    engine = vm::Engine::kThreaded;
  } else if (!engine_name.empty()) {
    std::fprintf(stderr, "unknown engine %s (interp|threaded)\n",
                 engine_name.c_str());
    return 2;
  }

  if (!args.Has("softcache")) {
    // Direct ("ideal") execution, optionally profiled.
    vm::Machine machine;
    machine.set_engine(engine);
    machine.LoadImage(img);
    machine.SetInput(std::move(input));
    profile::Profiler profiler(img);
    if (args.Has("profile")) machine.set_fetch_observer(&profiler);
    const vm::RunResult result = machine.Run(max_instr);
    std::fwrite(machine.output().data(), 1, machine.output().size(), stdout);
    if (result.reason == vm::StopReason::kFault) {
      std::fprintf(stderr, "fault: %s\n", result.fault_message.c_str());
      return 1;
    }
    if (args.Has("stats")) {
      std::fprintf(stderr, "--- run stats ---\ninstructions: %llu\ncycles: %llu\n",
                   (unsigned long long)result.instructions,
                   (unsigned long long)result.cycles);
    }
    if (args.Has("profile")) {
      std::fprintf(stderr, "--- profile (top 10) ---\n");
      int shown = 0;
      for (const auto& fn : profiler.Report()) {
        if (fn.samples == 0 || shown++ >= 10) break;
        std::fprintf(stderr, "%6.2f%% %8llu  %s\n",
                     100.0 * (double)fn.samples / (double)profiler.total_samples(),
                     (unsigned long long)fn.samples, fn.name.c_str());
      }
      std::fprintf(stderr, "dynamic text: %s of %s\n",
                   util::HumanBytes(profiler.DynamicTextBytes()).c_str(),
                   util::HumanBytes(profiler.StaticTextBytes()).c_str());
    }
    return result.exit_code & 0xff;
  }

  // Software-cached execution.
  softcache::SoftCacheConfig config;
  config.style = args.Get("style", "sparc") == "arm" ? softcache::Style::kArm
                                                     : softcache::Style::kSparc;
  config.tcache_bytes = static_cast<uint32_t>(args.GetInt("tcache", 16 * 1024));
  config.max_trace_blocks = static_cast<uint32_t>(args.GetInt("trace-blocks", 1));
  config.evict = args.Get("evict", "fifo") == "flush"
                     ? softcache::EvictPolicy::kFlushAll
                     : softcache::EvictPolicy::kFifoRing;
  const std::string prefetch = args.Get("prefetch", "off");
  if (prefetch == "nextn") {
    config.prefetch.policy = softcache::PrefetchPolicy::kNextN;
  } else if (prefetch == "temp") {
    config.prefetch.policy = softcache::PrefetchPolicy::kTemperature;
  } else if (prefetch != "off") {
    std::fprintf(stderr, "unknown prefetch policy %s\n", prefetch.c_str());
    return 2;
  }
  config.fault.seed = args.GetInt("fault-seed", 1);
  config.fault.crash_period = args.GetInt("crash-period", 0);
  config.fault.crash_after_requests = args.GetInt("crash-after", 0);
  config.fault.crash_at_cycle = args.GetInt("crash-at-cycle", 0);
  config.fault.crash = std::strtod(args.Get("crash-rate", "0").c_str(), nullptr);

  // Integrity fault domain: either flag turns on digest stamping,
  // verify-on-use and the background scrub; --memfaults adds the storm.
  if (args.Has("memfaults")) {
    std::string error;
    if (!ParseMemFaults(args.Get("memfaults"), &config.integrity.memfault,
                        &error)) {
      std::fprintf(stderr, "--memfaults: %s\n", error.c_str());
      return 2;
    }
    config.integrity.enabled = true;
  }
  if (args.Has("scrub-every")) {
    config.integrity.scrub_every =
        static_cast<uint32_t>(args.GetInt("scrub-every", 8));
    config.integrity.enabled = true;
  }

  // Validate the fleet size up front: an out-of-range --clients is a usage
  // error reported on stderr, never an assert deep inside the system.
  const int64_t clients_arg = static_cast<int64_t>(args.GetInt("clients", 1));
  std::string clients_error;
  if (!softcache::ValidateClientCount(clients_arg, &clients_error)) {
    std::fprintf(stderr, "--clients=%lld: %s\n",
                 static_cast<long long>(clients_arg), clients_error.c_str());
    return 2;
  }
  const uint32_t n_clients = static_cast<uint32_t>(clients_arg);

  // Same pattern for the server parallelism knobs: every nonsensical
  // --shards/--workers combination is a usage error (exit 2), NEVER a
  // silent clamp — a benchmark invoked with --workers=8 --shards=4 must
  // not quietly measure a 4-worker server.
  const int64_t shards_arg = static_cast<int64_t>(args.GetInt("shards", 1));
  const int64_t workers_arg = static_cast<int64_t>(args.GetInt("workers", 0));
  std::string parallel_error;
  if (!softcache::ValidateServerParallelism(shards_arg, workers_arg,
                                            clients_arg, &parallel_error)) {
    std::fprintf(stderr, "--shards=%lld --workers=%lld: %s\n",
                 static_cast<long long>(shards_arg),
                 static_cast<long long>(workers_arg), parallel_error.c_str());
    return 2;
  }

  // Install the single-system tracer before the system exists so
  // construction-time events are captured and the system can bind its cycle
  // clock. Fleet runs use per-agent lanes (TraceMux) instead.
  obs::Tracer tracer;
  if (args.Has("trace") && n_clients == 1) {
    tracer.Enable();
    obs::SetTracer(&tracer);
  }

  // Live inspection: --inspect names the final snapshot file; a nonzero
  // --inspect-every additionally snapshots the running fleet every N guest
  // cycles into FILE.<seq> (defaulting FILE when only the period is given).
  const uint64_t inspect_every =
      static_cast<uint64_t>(args.GetInt("inspect-every", 0));
  std::string inspect_path = args.Get("inspect", "");
  if (inspect_path.empty() && inspect_every != 0) inspect_path = "inspect.json";

  if (n_clients > 1) {
    if (args.Has("dcache") || args.Has("profile") || args.Has("dump-tcache")) {
      std::fprintf(stderr,
                   "--dcache/--profile/--dump-tcache are single-client only\n");
      return 2;
    }
    softcache::MultiClientConfig mcfg;
    mcfg.clients = n_clients;
    mcfg.base = config;
    mcfg.base.shared_reply = args.Has("shared-reply");
    mcfg.server.shards = static_cast<uint32_t>(shards_arg);
    mcfg.server.workers = static_cast<uint32_t>(workers_arg);
    // The server memo rides the same fault schedule (its own salted RNG
    // stream), so --memfaults storms every layer of the stack at once.
    mcfg.server.memfault = config.integrity.memfault;
    mcfg.host_threads = static_cast<uint32_t>(args.GetInt("threads", 0));
    for (uint32_t i = 0; i < n_clients; ++i) {
      net::FaultConfig fault = config.fault;
      fault.seed = config.fault.seed + i;  // distinct schedule per client
      mcfg.client_faults.push_back(fault);
    }
    softcache::MultiClientSystem fleet(img, mcfg);
    for (uint32_t i = 0; i < n_clients; ++i) {
      fleet.machine(i).set_engine(engine);
      fleet.SetInput(i, input);
    }
    obs::TraceMux mux;
    if (args.Has("trace")) {
      fleet.AttachTraceMux(&mux);
      mux.EnableAll();
    }
    softcache::Inspector inspector(&fleet);
    uint32_t quarantine_snaps = 0;
    if (!inspect_path.empty() && config.integrity.enabled &&
        mcfg.host_threads <= 1) {
      // Freeze the post-quarantine cache state next to the regular
      // snapshots (sctop diffs them against the final/healed snapshot).
      // Capped so a corruption storm cannot flood the directory; skipped
      // under --threads, where a worker thread cannot quiesce the fleet.
      for (uint32_t i = 0; i < n_clients; ++i) {
        fleet.cc(i).set_quarantine_hook([&](uint32_t) {
          if (quarantine_snaps >= 8) return;
          inspector.WriteFile(
              inspect_path + ".q" + std::to_string(quarantine_snaps++),
              "quarantine");
        });
      }
    }
    if (!inspect_path.empty()) {
      if (inspect_every != 0) {
        fleet.set_inspection_hook(inspect_every, [&](uint64_t) {
          inspector.WriteFile(
              inspect_path + "." + std::to_string(inspector.snapshots_taken()),
              "periodic");
        });
      }
      // Crash recoveries snapshot server-side state from the exclusive
      // section (the rest of the fleet keeps running).
      fleet.set_recovery_hook([&](uint32_t) {
        inspector.WriteFile(
            inspect_path + "." + std::to_string(inspector.snapshots_taken()),
            "recovery", softcache::Inspector::Scope::kServerOnly);
      });
    }
    obs::MetricsRegistry registry;
    if (args.Has("metrics")) {
      fleet.RegisterMetrics(&registry);
      // Lane truncation shows up in the metrics JSON, not just on stderr.
      if (args.Has("trace")) mux.RegisterMetrics(&registry);
    }
    const std::vector<vm::RunResult> results = fleet.RunAll(max_instr);
    if (args.Has("trace")) {
      std::ofstream out_file(args.Get("trace"));
      if (!out_file) {
        std::fprintf(stderr, "cannot write %s\n", args.Get("trace").c_str());
        return 1;
      }
      mux.ExportChromeJson(out_file);
    }
    if (args.Has("metrics")) {
      std::ofstream out_file(args.Get("metrics"));
      if (!out_file) {
        std::fprintf(stderr, "cannot write %s\n", args.Get("metrics").c_str());
        return 1;
      }
      out_file << registry.ToJson() << "\n";
    }
    bool ok = true;
    for (uint32_t i = 0; i < n_clients; ++i) {
      if (results[i].reason == vm::StopReason::kFault) {
        std::fprintf(stderr, "fault (client %u): %s\n", i,
                     results[i].fault_message.c_str());
        ok = false;
      }
    }
    if (config.fault.crash_enabled() && !fleet.SyncSessions()) {
      std::fprintf(stderr, "fault: a client session failed to synchronize\n");
      ok = false;
    }
    if (!inspect_path.empty()) {
      // The final snapshot always lands at the named path; a faulted run
      // additionally freezes the at-fault state next to it.
      if (!ok) inspector.WriteFile(inspect_path + ".fault", "fault");
      inspector.WriteFile(inspect_path, "final");
    }
    if (ok && args.Has("verify")) {
      // Re-run every client alone against its own private MC with the same
      // fault schedule; sharing must not change guest-visible behavior.
      for (uint32_t i = 0; i < n_clients; ++i) {
        softcache::SoftCacheConfig solo = config;
        solo.fault = mcfg.client_faults[i];
        softcache::SoftCacheSystem ref(img, solo);
        ref.SetInput(input);
        const vm::RunResult r = ref.Run(max_instr);
        if (solo.fault.crash_enabled() && !ref.cc().SyncSession()) {
          std::fprintf(stderr, "verify: solo run %u failed to synchronize\n", i);
          ok = false;
          continue;
        }
        if (r.exit_code != results[i].exit_code ||
            r.instructions != results[i].instructions ||
            ref.OutputString() != fleet.OutputString(i)) {
          std::fprintf(stderr,
                       "verify: client %u diverged from its solo run "
                       "(exit %d vs %d, %llu vs %llu instrs)\n",
                       i, results[i].exit_code, r.exit_code,
                       (unsigned long long)results[i].instructions,
                       (unsigned long long)r.instructions);
          ok = false;
        }
      }
      if (ok) {
        std::fprintf(stderr, "verify: %u clients bit-identical to solo runs\n",
                     n_clients);
      }
    }
    if (args.Has("stats")) {
      const auto& server = fleet.mc().server().stats();
      std::fprintf(stderr, "--- multi-client stats ---\n");
      for (uint32_t i = 0; i < n_clients; ++i) {
        std::fprintf(stderr,
                     "client %u: exit=%d instrs=%llu cycles=%llu "
                     "translated=%llu\n",
                     i, results[i].exit_code,
                     (unsigned long long)results[i].instructions,
                     (unsigned long long)results[i].cycles,
                     (unsigned long long)fleet.cc(i).stats().blocks_translated);
      }
      std::fprintf(stderr,
                   "server: sessions=%llu translates=%llu memo_hits=%llu "
                   "(%.1f%% hit rate) requests=%llu\n",
                   (unsigned long long)fleet.mc().sessions_active(),
                   (unsigned long long)server.translates,
                   (unsigned long long)server.translate_memo_hits,
                   server.translates + server.translate_memo_hits == 0
                       ? 0.0
                       : 100.0 * (double)server.translate_memo_hits /
                             (double)(server.translates +
                                      server.translate_memo_hits),
                   (unsigned long long)server.requests_served);
      std::fprintf(stderr,
                   "server: shards=%u memo_entries=%llu memo_evictions=%llu\n",
                   fleet.mc().server().shards(),
                   (unsigned long long)fleet.mc().server().memo_entries(),
                   (unsigned long long)server.memo_evictions);
      if (mcfg.base.shared_reply) {
        uint64_t wire_bytes = 0;
        for (uint32_t i = 0; i < n_clients; ++i) {
          wire_bytes += fleet.channel(i).stats().total_bytes();
        }
        std::fprintf(
            stderr,
            "shared-reply: requests=%llu digest_replies=%llu "
            "bytes_saved=%llu wire_bytes=%llu (%.1f per client)\n",
            (unsigned long long)server.shared_requests,
            (unsigned long long)server.digest_replies,
            (unsigned long long)server.digest_bytes_saved,
            (unsigned long long)wire_bytes,
            (double)wire_bytes / (double)n_clients);
      }
    }
    const auto& out0 = fleet.machine(0).output();
    std::fwrite(out0.data(), 1, out0.size(), stdout);
    return ok ? (results[0].exit_code & 0xff) : 1;
  }

  softcache::McServerConfig server_config;
  server_config.memfault = config.integrity.memfault;
  softcache::SoftCacheSystem system(img, config, server_config);
  system.machine().set_engine(engine);
  system.SetInput(std::move(input));
  obs::MetricsRegistry registry;
  if (args.Has("metrics")) system.RegisterMetrics(&registry);

  std::unique_ptr<dcache::DataCache> data_cache;
  if (args.Has("dcache")) {
    dcache::DCacheConfig dconfig;
    dconfig.local_base = system.cc().local_limit();
    dconfig.fault = config.fault;  // share the crash schedule (own RNG stream)
    data_cache = std::make_unique<dcache::DataCache>(
        system.machine(), system.mc(), system.channel(), dconfig);
    if (config.fault.crash_at_cycle != 0) {
      data_cache->transport().set_cycle_source(system.machine().cycles_counter());
    }
    data_cache->Attach();
  }

  softcache::Inspector inspector(&system);
  uint32_t quarantine_snaps = 0;
  if (!inspect_path.empty() && config.integrity.enabled) {
    system.cc().set_quarantine_hook([&](uint32_t) {
      if (quarantine_snaps >= 8) return;
      inspector.WriteFile(
          inspect_path + ".q" + std::to_string(quarantine_snaps++),
          "quarantine");
    });
  }
  vm::RunResult result;
  if (inspect_every == 0) {
    result = system.Run(max_instr);
  } else {
    // Periodic inspection slices the run so snapshots land at quiescent
    // points (no trap in flight) every time the clock crosses a threshold.
    uint64_t next_at = inspect_every;
    const uint64_t slice =
        std::max<uint64_t>(std::min<uint64_t>(inspect_every / 2, 65536), 1024);
    for (;;) {
      const uint64_t executed = system.machine().instructions();
      const uint64_t budget = max_instr > executed ? max_instr - executed : 0;
      result = system.Run(std::min(slice, budget));
      if (result.reason != vm::StopReason::kInstrLimit ||
          system.machine().instructions() >= max_instr) {
        break;
      }
      if (system.machine().cycles() >= next_at) {
        inspector.WriteFile(
            inspect_path + "." + std::to_string(inspector.snapshots_taken()),
            "periodic");
        next_at = (system.machine().cycles() / inspect_every + 1) *
                  inspect_every;
      }
    }
  }
  if (args.Has("trace")) {
    obs::SetTracer(nullptr);
    std::ofstream out_file(args.Get("trace"));
    if (!out_file) {
      std::fprintf(stderr, "cannot write %s\n", args.Get("trace").c_str());
      return 1;
    }
    tracer.ExportChromeJson(out_file);
  }
  if (args.Has("metrics")) {
    std::ofstream out_file(args.Get("metrics"));
    if (!out_file) {
      std::fprintf(stderr, "cannot write %s\n", args.Get("metrics").c_str());
      return 1;
    }
    out_file << registry.ToJson() << "\n";
  }
  const auto& out = system.machine().output();
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (result.reason == vm::StopReason::kFault) {
    std::fprintf(stderr, "fault: %s\n", result.fault_message.c_str());
    if (!inspect_path.empty()) {
      inspector.WriteFile(inspect_path + ".fault", "fault");
      inspector.WriteFile(inspect_path, "final");
    }
    return 1;
  }
  if (!inspect_path.empty()) inspector.WriteFile(inspect_path, "final");
  if (data_cache != nullptr) {
    data_cache->FlushAll();
    if (data_cache->failed()) {
      std::fprintf(stderr, "fault: dcache session failed during flush\n");
      return 1;
    }
  }
  if (config.fault.crash_enabled() && !system.cc().SyncSession()) {
    std::fprintf(stderr, "fault: cc session failed to synchronize\n");
    return 1;
  }
  if (args.Has("dump-tcache")) {
    std::fprintf(stderr, "%s", system.cc().DumpState().c_str());
  }
  if (args.Has("stats")) {
    PrintSoftCacheStats(system, result);
    if (data_cache != nullptr) {
      const auto& ds = data_cache->stats();
      std::fprintf(stderr, "--- dcache stats ---\n");
      std::fprintf(stderr,
                   "fast/slow/miss:     %llu / %llu / %llu\n"
                   "scache spills:      %llu\n",
                   (unsigned long long)ds.fast_hits, (unsigned long long)ds.slow_hits,
                   (unsigned long long)ds.misses,
                   (unsigned long long)ds.scache_spills);
    }
  }
  return result.exit_code & 0xff;
}
