// scc — the MiniC compiler driver.
//
//   scc program.mc -o program.img          compile to a loadable image
//   scc program.mc --dump-asm              print the disassembly listing
//   scc program.mc --no-runtime            compile without the runtime lib
//   scc program.mc --stats                 print segment/symbol summary
#include <cstdio>

#include "image/image.h"
#include "isa/isa.h"
#include "minicc/compiler.h"
#include "tools/tool_util.h"
#include "util/stats.h"

using namespace sc;

namespace {

void DumpAsm(const image::Image& img) {
  const image::Symbol* current = nullptr;
  for (uint32_t addr = img.text_base; addr < img.text_end(); addr += 4) {
    const image::Symbol* fn = img.FunctionAt(addr);
    if (fn != nullptr && fn != current) {
      std::printf("\n%08x <%s>:\n", fn->addr, fn->name.c_str());
      current = fn;
    }
    const uint32_t word = img.TextWord(addr);
    std::printf("  %08x:  %08x  %s\n", addr, word,
                isa::Disassemble(word, addr).c_str());
  }
}

void DumpStats(const image::Image& img) {
  std::printf("entry:  0x%08x\n", img.entry);
  std::printf("text:   0x%08x  %s\n", img.text_base,
              util::HumanBytes(img.text.size()).c_str());
  std::printf("data:   0x%08x  %s\n", img.data_base,
              util::HumanBytes(img.data.size()).c_str());
  std::printf("bss:    0x%08x  %s\n", img.bss_base,
              util::HumanBytes(img.bss_size).c_str());
  int functions = 0;
  int objects = 0;
  for (const auto& sym : img.symbols) {
    if (sym.kind == image::SymbolKind::kFunction) {
      ++functions;
    } else {
      ++objects;
    }
  }
  std::printf("symbols: %d functions, %d objects\n", functions, objects);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args(argc, argv);
  const std::string unknown =
      args.FirstUnknown({"o", "dump-asm", "no-runtime", "stats", "help"});
  if (!unknown.empty() || args.Has("help") || args.positional().empty()) {
    if (!unknown.empty()) std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    std::fprintf(stderr,
                 "usage: scc <program.mc>... [--o=out.img] [--dump-asm] "
                 "[--no-runtime] [--stats]\n");
    return 2;
  }
  std::vector<minicc::SourceFile> sources;
  for (const std::string& path : args.positional()) {
    const auto contents = tools::ReadFile(path);
    if (!contents) return 1;
    sources.push_back(minicc::SourceFile{path, *contents});
  }

  minicc::CompileOptions options;
  options.link_runtime = !args.Has("no-runtime");
  const auto img = args.positional().size() == 1
                       ? minicc::CompileMiniC(sources[0].contents,
                                              sources[0].name, options)
                       : minicc::CompileMiniCProject(sources, options);
  if (!img.ok()) {
    std::fprintf(stderr, "%s\n", img.error().ToString().c_str());
    return 1;
  }

  if (args.Has("dump-asm")) DumpAsm(*img);
  if (args.Has("stats")) DumpStats(*img);

  const std::string out_path = args.Get("o");
  if (!out_path.empty()) {
    if (!tools::WriteFileBytes(out_path, img->Serialize())) return 1;
    std::printf("wrote %s (%s text, %s data, %zu symbols)\n", out_path.c_str(),
                util::HumanBytes(img->text.size()).c_str(),
                util::HumanBytes(img->data.size()).c_str(), img->symbols.size());
  } else if (!args.Has("dump-asm") && !args.Has("stats")) {
    std::printf("compiled OK (use --o=FILE to write the image)\n");
  }
  return 0;
}
