// sctop — render softcache Inspector snapshots as a terminal summary.
//
//   sctop snapshot.json            what do the caches hold right now?
//   sctop new.json old.json        what changed between two snapshots?
//
// Snapshots come from `srun --inspect=FILE` (final state), `--inspect-every=N`
// (periodic FILE.<seq> series) and crash recoveries; see docs/OBSERVABILITY.md
// for the schema. The diff mode matches clients/sessions by id and tcache /
// memo entries by original address, so it answers "which blocks were evicted
// between these two moments" directly.
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/json_min.h"
#include "tools/tool_util.h"

using sc::tools::JsonValue;

namespace {

std::string Pct(uint64_t part, uint64_t whole) {
  if (whole == 0) return "-";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * (double)part / (double)whole);
  return buf;
}

bool LoadSnapshot(const std::string& path, JsonValue* out) {
  const auto text = sc::tools::ReadFile(path);
  if (!text) return false;
  std::string error;
  if (!sc::tools::JsonParser::Parse(*text, out, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  if ((*out)["softcache_inspector"].AsU64() != 1) {
    std::fprintf(stderr, "%s: not a softcache inspector snapshot\n",
                 path.c_str());
    return false;
  }
  return true;
}

void RenderClient(const JsonValue& client) {
  const JsonValue& tcache = client["tcache"];
  const JsonValue& staged = client["staged"];
  const JsonValue& sb = client["superblocks"];
  uint64_t pinned = 0;
  for (const JsonValue& block : tcache["blocks"].array) {
    if (block["pinned"].boolean) ++pinned;
  }
  std::printf(
      "  c%-3llu cycles=%-12llu tcache %llu/%llu (%s) blocks=%zu pinned=%llu "
      "staged=%zu sb=%llu\n",
      (unsigned long long)client["id"].AsU64(),
      (unsigned long long)client["cycles"].AsU64(),
      (unsigned long long)tcache["live_bytes"].AsU64(),
      (unsigned long long)tcache["capacity_bytes"].AsU64(),
      Pct(tcache["live_bytes"].AsU64(), tcache["capacity_bytes"].AsU64())
          .c_str(),
      tcache["blocks"].array.size(), (unsigned long long)pinned,
      staged["chunks"].array.size(), (unsigned long long)sb["live"].AsU64());
  const JsonValue& store = client["content_store"];
  if (store.is_object()) {
    std::printf("       content store %llu/%llu bytes, %zu chunks\n",
                (unsigned long long)store["bytes"].AsU64(),
                (unsigned long long)store["capacity_bytes"].AsU64(),
                store["chunks"].array.size());
  }
}

void Render(const JsonValue& snap) {
  std::printf("softcache snapshot  reason=%s seq=%llu scope=%s\n",
              snap["reason"].AsString().c_str(),
              (unsigned long long)snap["seq"].AsU64(),
              snap["scope"].AsString().c_str());

  const JsonValue& server = snap["server"];
  std::printf("server: %llu shard(s), %llu memo entries, %llu published "
              "digests\n",
              (unsigned long long)server["shards"].AsU64(),
              (unsigned long long)server["memo_entries"].AsU64(),
              (unsigned long long)server["published_digests"].AsU64());
  const auto& shard_stats = server["shard_stats"].array;
  for (size_t s = 0; s < shard_stats.size(); ++s) {
    std::printf("  shard %-2zu translates=%-8llu memo_hits=%-8llu entries=%llu\n",
                s, (unsigned long long)shard_stats[s]["translates"].AsU64(),
                (unsigned long long)shard_stats[s]["memo_hits"].AsU64(),
                (unsigned long long)shard_stats[s]["entries"].AsU64());
  }

  // Hottest memoized chunks: top 5 by fleet demand heat.
  std::vector<const JsonValue*> memo;
  for (const JsonValue& entry : server["memo"].array) memo.push_back(&entry);
  std::sort(memo.begin(), memo.end(), [](const JsonValue* a, const JsonValue* b) {
    return (*a)["heat"].AsU64() > (*b)["heat"].AsU64();
  });
  for (size_t i = 0; i < memo.size() && i < 5; ++i) {
    std::printf("  hot chunk: addr=0x%llx span=%llu heat=%llu\n",
                (unsigned long long)(*memo[i])["addr"].AsU64(),
                (unsigned long long)(*memo[i])["span"].AsU64(),
                (unsigned long long)(*memo[i])["heat"].AsU64());
  }

  const auto& sessions = server["sessions"].array;
  std::printf("sessions: %zu\n", sessions.size());
  for (const JsonValue& session : sessions) {
    std::printf(
        "  s%-3llu epoch=%-3llu text=%s data_pages=%llu (stable %llu) "
        "pending=%llu/%llu\n",
        (unsigned long long)session["id"].AsU64(),
        (unsigned long long)session["epoch"].AsU64(),
        session["private_text"].boolean ? "private" : "shared",
        (unsigned long long)session["data_pages"].AsU64(),
        (unsigned long long)session["stable_data_pages"].AsU64(),
        (unsigned long long)session["pending_text"].AsU64(),
        (unsigned long long)session["pending_data"].AsU64());
  }

  const auto& clients = snap["clients"].array;
  if (!clients.empty()) {
    std::printf("clients: %zu\n", clients.size());
    for (const JsonValue& client : clients) RenderClient(client);
  }
}

// Resident-set keys for diffing: tcache blocks and memo entries by original
// address.
std::set<uint64_t> BlockSet(const JsonValue& client) {
  std::set<uint64_t> set;
  for (const JsonValue& b : client["tcache"]["blocks"].array) {
    set.insert(b["orig"].AsU64());
  }
  return set;
}

void RenderDiff(const JsonValue& now, const JsonValue& then) {
  std::printf("softcache diff  %s/%llu -> %s/%llu\n",
              then["reason"].AsString().c_str(),
              (unsigned long long)then["seq"].AsU64(),
              now["reason"].AsString().c_str(),
              (unsigned long long)now["seq"].AsU64());

  // Server: memo residency churn.
  std::set<uint64_t> memo_now, memo_then;
  for (const JsonValue& e : now["server"]["memo"].array)
    memo_now.insert(e["addr"].AsU64());
  for (const JsonValue& e : then["server"]["memo"].array)
    memo_then.insert(e["addr"].AsU64());
  uint64_t memo_added = 0, memo_removed = 0;
  for (uint64_t a : memo_now)
    if (memo_then.count(a) == 0) ++memo_added;
  for (uint64_t a : memo_then)
    if (memo_now.count(a) == 0) ++memo_removed;
  std::printf("server: memo %zu -> %zu (+%llu, -%llu)\n", memo_then.size(),
              memo_now.size(), (unsigned long long)memo_added,
              (unsigned long long)memo_removed);

  // Sessions: epoch movement flags crash recoveries between snapshots.
  std::map<uint64_t, const JsonValue*> sess_then;
  for (const JsonValue& s : then["server"]["sessions"].array)
    sess_then[s["id"].AsU64()] = &s;
  for (const JsonValue& s : now["server"]["sessions"].array) {
    auto it = sess_then.find(s["id"].AsU64());
    if (it == sess_then.end()) continue;
    const uint64_t e_now = s["epoch"].AsU64();
    const uint64_t e_then = (*it->second)["epoch"].AsU64();
    if (e_now != e_then) {
      std::printf("  s%llu: epoch %llu -> %llu (%llu restart(s))\n",
                  (unsigned long long)s["id"].AsU64(),
                  (unsigned long long)e_then, (unsigned long long)e_now,
                  (unsigned long long)(e_now - e_then));
    }
  }

  // Clients: cycle progress and tcache churn, matched by id.
  std::map<uint64_t, const JsonValue*> clients_then;
  for (const JsonValue& c : then["clients"].array)
    clients_then[c["id"].AsU64()] = &c;
  for (const JsonValue& c : now["clients"].array) {
    auto it = clients_then.find(c["id"].AsU64());
    if (it == clients_then.end()) continue;
    const JsonValue& old_client = *it->second;
    const std::set<uint64_t> blocks_now = BlockSet(c);
    const std::set<uint64_t> blocks_then = BlockSet(old_client);
    uint64_t installed = 0, evicted = 0;
    for (uint64_t a : blocks_now)
      if (blocks_then.count(a) == 0) ++installed;
    for (uint64_t a : blocks_then)
      if (blocks_now.count(a) == 0) ++evicted;
    std::printf(
        "  c%-3llu +%llu cycles, tcache %llu -> %llu bytes, blocks +%llu "
        "-%llu\n",
        (unsigned long long)c["id"].AsU64(),
        (unsigned long long)(c["cycles"].AsU64() -
                             old_client["cycles"].AsU64()),
        (unsigned long long)old_client["tcache"]["live_bytes"].AsU64(),
        (unsigned long long)c["tcache"]["live_bytes"].AsU64(),
        (unsigned long long)installed, (unsigned long long)evicted);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const sc::tools::Args args(argc, argv);
  const std::string unknown = args.FirstUnknown({"help"});
  if (!unknown.empty() || args.Has("help") || args.positional().empty() ||
      args.positional().size() > 2) {
    if (!unknown.empty())
      std::fprintf(stderr, "unknown flag --%s\n", unknown.c_str());
    std::fprintf(stderr,
                 "usage: sctop SNAPSHOT.json [OLD.json]\n"
                 "  one file:  summarize the snapshot\n"
                 "  two files: diff (what changed since OLD)\n");
    return 2;
  }
  JsonValue snap;
  if (!LoadSnapshot(args.positional()[0], &snap)) return 1;
  if (args.positional().size() == 1) {
    Render(snap);
    return 0;
  }
  JsonValue old_snap;
  if (!LoadSnapshot(args.positional()[1], &old_snap)) return 1;
  RenderDiff(snap, old_snap);
  return 0;
}
