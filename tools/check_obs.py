#!/usr/bin/env python3
"""CI checker for the observability artifacts srun emits.

Usage:
  check_obs.py trace FILE      merged Chrome trace: per-lane balanced B/E
                               spans, every flow id has matching s/f
                               endpoints, zero dropped events
  check_obs.py metrics FILE    metrics JSON: parses, has counters
  check_obs.py inspect FILE... inspector snapshots: parse, schema marker,
                               server section present

Stdlib only. Exits nonzero with a message on the first violation.
"""
import json
import sys


def fail(msg):
    print(f"check_obs: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    depth = {}          # (pid, tid) -> open span depth
    starts, ends = {}, {}
    lanes_with_spans = set()
    for e in events:
        lane = (e.get("pid"), e.get("tid"))
        ph = e.get("ph")
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
            lanes_with_spans.add(lane)
        elif ph == "E":
            depth[lane] = depth.get(lane, 0) - 1
            if depth[lane] < 0:
                fail(f"{path}: orphan E in lane {lane}")
        elif ph == "s":
            starts[e["id"]] = starts.get(e["id"], 0) + 1
        elif ph == "f":
            ends[e["id"]] = ends.get(e["id"], 0) + 1
    for lane, d in depth.items():
        if d != 0:
            fail(f"{path}: unclosed span in lane {lane}")
    for fid in starts:
        if fid not in ends:
            fail(f"{path}: flow id {fid} started but never ended")
    for fid in ends:
        if fid not in starts:
            fail(f"{path}: flow id {fid} ended without a start")
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    if isinstance(dropped, int) and dropped > 0:
        fail(f"{path}: {dropped} events dropped (raise the ring capacity)")
    print(f"check_obs: {path} ok ({len(events)} events, "
          f"{len(lanes_with_spans)} span lanes, {len(starts)} flows)")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    counters = doc.get("counters")
    if not isinstance(counters, dict) or not counters:
        fail(f"{path}: no counters section")
    print(f"check_obs: {path} ok ({len(counters)} counters)")


def check_inspect(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("softcache_inspector") != 1:
        fail(f"{path}: missing softcache_inspector schema marker")
    if not isinstance(doc.get("server"), dict):
        fail(f"{path}: missing server section")
    if doc.get("scope") == "full" and not isinstance(doc.get("clients"), list):
        fail(f"{path}: full-scope snapshot without a clients array")
    print(f"check_obs: {path} ok (reason={doc.get('reason')}, "
          f"seq={doc.get('seq')}, scope={doc.get('scope')})")


def main(argv):
    if len(argv) < 3:
        fail("usage: check_obs.py trace|metrics|inspect FILE...")
    mode, paths = argv[1], argv[2:]
    checker = {"trace": check_trace, "metrics": check_metrics,
               "inspect": check_inspect}.get(mode)
    if checker is None:
        fail(f"unknown mode {mode}")
    for path in paths:
        checker(path)


if __name__ == "__main__":
    main(sys.argv)
