// Workload smoke tests: every benchmark compiles, runs natively to a clean
// exit, produces its stats block, and behaves identically under the
// software cache (the repo's central equivalence property on real code).
#include <gtest/gtest.h>

#include "softcache/system.h"
#include "vm/machine.h"
#include "workloads/workloads.h"

namespace sc {
namespace {

struct NativeRun {
  vm::RunResult result;
  std::string output;
};

NativeRun RunWorkload(const workloads::WorkloadSpec& spec, int scale) {
  const image::Image img = workloads::CompileWorkload(spec);
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(workloads::MakeInput(spec.name, scale));
  NativeRun run;
  run.result = machine.Run(2'000'000'000);
  run.output = machine.OutputString();
  return run;
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, CompilesAndRuns) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const NativeRun run = RunWorkload(*spec, 1);
  EXPECT_EQ(run.result.reason, vm::StopReason::kHalted)
      << run.result.fault_message;
  EXPECT_NE(run.output.find("stats =="), std::string::npos) << run.output;
  EXPECT_GT(run.result.instructions, 10'000u);
}

TEST_P(WorkloadTest, DeterministicAcrossRuns) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const NativeRun a = RunWorkload(*spec, 1);
  const NativeRun b = RunWorkload(*spec, 1);
  EXPECT_EQ(a.result.exit_code, b.result.exit_code);
  EXPECT_EQ(a.output, b.output);
}

TEST_P(WorkloadTest, EquivalentUnderSoftCacheSparc) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const NativeRun native = RunWorkload(*spec, 1);
  ASSERT_EQ(native.result.reason, vm::StopReason::kHalted);

  const image::Image img = workloads::CompileWorkload(*spec);
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kSparc;
  config.tcache_bytes = 64 * 1024;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(workloads::MakeInput(spec->name, 1));
  const vm::RunResult cached = system.Run(4'000'000'000ull);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native.result.exit_code);
  EXPECT_EQ(system.OutputString(), native.output);
  system.cc().CheckInvariants();
}

TEST_P(WorkloadTest, EquivalentUnderTinySoftCache) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  const NativeRun native = RunWorkload(*spec, 1);
  ASSERT_EQ(native.result.reason, vm::StopReason::kHalted);

  const image::Image img = workloads::CompileWorkload(*spec);
  softcache::SoftCacheConfig config;
  config.tcache_bytes = 2048;  // heavy eviction
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(workloads::MakeInput(spec->name, 1));
  const vm::RunResult cached = system.Run(8'000'000'000ull);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native.result.exit_code);
  EXPECT_EQ(system.OutputString(), native.output);
  EXPECT_GT(system.stats().evictions, 0u);
  system.cc().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::Values("compress95", "adpcm_enc", "adpcm_dec",
                                           "gzip", "cjpeg", "mpeg2enc",
                                           "hextobdd", "sha256", "dijkstra"),
                         [](const auto& param_info) { return param_info.param; });

class ArmWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ArmWorkloadTest, EquivalentUnderArmStyle) {
  const auto* spec = workloads::FindWorkload(GetParam());
  ASSERT_NE(spec, nullptr);
  ASSERT_TRUE(spec->arm_safe);
  const NativeRun native = RunWorkload(*spec, 1);
  ASSERT_EQ(native.result.reason, vm::StopReason::kHalted);

  const image::Image img = workloads::CompileWorkload(*spec);
  softcache::SoftCacheConfig config;
  config.style = softcache::Style::kArm;
  config.tcache_bytes = 32 * 1024;
  softcache::SoftCacheSystem system(img, config);
  system.SetInput(workloads::MakeInput(spec->name, 1));
  const vm::RunResult cached = system.Run(8'000'000'000ull);
  ASSERT_EQ(cached.reason, vm::StopReason::kHalted) << cached.fault_message;
  EXPECT_EQ(cached.exit_code, native.result.exit_code);
  EXPECT_EQ(system.OutputString(), native.output);
  system.cc().CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(ArmSafe, ArmWorkloadTest,
                         ::testing::Values("adpcm_enc", "adpcm_dec", "gzip",
                                           "cjpeg", "mpeg2enc", "sha256",
                                           "dijkstra"),
                         [](const auto& param_info) { return param_info.param; });

TEST(WorkloadInputs, GeneratorsAreDeterministic) {
  EXPECT_EQ(workloads::MakeInput("compress95", 1, 7),
            workloads::MakeInput("compress95", 1, 7));
  EXPECT_NE(workloads::MakeInput("compress95", 1, 7),
            workloads::MakeInput("compress95", 1, 8));
}

TEST(WorkloadInputs, TextCorpusIsCompressible) {
  const auto text = workloads::MakeTextCorpus(10'000, 3);
  // Rough entropy check: the corpus uses a small alphabet.
  int distinct[256] = {};
  for (uint8_t b : text) distinct[b] = 1;
  int count = 0;
  for (int present : distinct) count += present;
  EXPECT_LT(count, 64);
}

TEST(WorkloadSelfTests, Sha256KnownAnswer) {
  // SHA-256("abc") =
  // ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad
  const auto* spec = workloads::FindWorkload("sha256");
  const image::Image img = workloads::CompileWorkload(*spec);
  vm::Machine machine;
  machine.LoadImage(img);
  std::vector<uint8_t> input = {3, 0, 0, 0, 'a', 'b', 'c'};
  machine.SetInput(std::move(input));
  const vm::RunResult run = machine.Run(50'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::kHalted) << run.fault_message;
  EXPECT_NE(machine.OutputString().find(
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
            std::string::npos)
      << machine.OutputString();
}

TEST(WorkloadSelfTests, Sha256EmptyMessage) {
  // SHA-256("") =
  // e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855
  const auto* spec = workloads::FindWorkload("sha256");
  const image::Image img = workloads::CompileWorkload(*spec);
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(std::vector<uint8_t>{0, 0, 0, 0});
  const vm::RunResult run = machine.Run(10'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::kHalted) << run.fault_message;
  EXPECT_NE(machine.OutputString().find(
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            std::string::npos)
      << machine.OutputString();
}

TEST(WorkloadSelfTests, CompressRoundTrip) {
  const auto* spec = workloads::FindWorkload("compress95");
  const image::Image img = workloads::CompileWorkload(*spec);
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(workloads::MakeCompressInput(1, 30'000, 11));  // mode 1
  const vm::RunResult run = machine.Run(2'000'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::kHalted) << run.fault_message;
  EXPECT_EQ(run.exit_code, 0) << machine.OutputString();
  EXPECT_NE(machine.OutputString().find("selftest: 0"), std::string::npos);
}

TEST(WorkloadSelfTests, GzipRoundTrip) {
  const auto* spec = workloads::FindWorkload("gzip");
  const image::Image img = workloads::CompileWorkload(*spec);
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(workloads::MakeGzipInput(1, 20'000, 13));  // self-test mode
  const vm::RunResult run = machine.Run(2'000'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::kHalted) << run.fault_message;
  EXPECT_NE(machine.OutputString().find("selftest: ok"), std::string::npos)
      << machine.OutputString();
}

TEST(WorkloadSelfTests, CompressActuallyCompresses) {
  const auto* spec = workloads::FindWorkload("compress95");
  const image::Image img = workloads::CompileWorkload(*spec);
  vm::Machine machine;
  machine.LoadImage(img);
  machine.SetInput(workloads::MakeCompressInput(0, 40'000, 17));
  const vm::RunResult run = machine.Run(2'000'000'000);
  ASSERT_EQ(run.reason, vm::StopReason::kHalted);
  const std::string out = machine.OutputString();
  // "ratio x100:  NN" < 100 means real compression happened.
  const auto pos = out.find("ratio x100:");
  ASSERT_NE(pos, std::string::npos) << out;
  const int ratio = std::atoi(out.c_str() + pos + 12);
  EXPECT_GT(ratio, 0);
  EXPECT_LT(ratio, 80);
}

}  // namespace
}  // namespace sc
