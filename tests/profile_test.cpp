// Profiler tests: attribution correctness, hot-set selection, dynamic
// footprint accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "minicc/compiler.h"
#include "profile/profiler.h"
#include "vm/machine.h"

namespace sc {
namespace {

image::Image Compile(std::string_view source) {
  auto img = minicc::CompileMiniC(source);
  SC_CHECK(img.ok()) << img.error().ToString();
  return std::move(*img);
}

profile::Profiler RunProfiled(const image::Image& img) {
  profile::Profiler profiler(img);
  vm::Machine machine;
  machine.LoadImage(img);
  machine.set_fetch_observer(&profiler);
  const vm::RunResult result = machine.Run(100'000'000);
  SC_CHECK(result.reason == vm::StopReason::kHalted) << result.fault_message;
  return profiler;
}

constexpr const char* kHotColdProgram = R"(
  int hot_kernel(int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) sum += (i * 17) % 23;
    return sum;
  }
  int cold_error_path(int code) {
    print_str("error ");
    print_int(code);
    print_nl();
    return -code;
  }
  int cold_alt_mode(int x) {
    int acc = 1;
    for (int i = 0; i < x; i++) acc = acc * 3 % 1000;
    return acc;
  }
  int main() {
    int v = hot_kernel(200000);
    if (v == -1) return cold_error_path(1);   /* never taken */
    if (v == -2) return cold_alt_mode(5);     /* never taken */
    return v % 251;
  }
)";

TEST(Profiler, AttributesSamplesToTheHotFunction) {
  const image::Image img = Compile(kHotColdProgram);
  const profile::Profiler profiler = RunProfiled(img);
  const auto report = profiler.Report();
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report[0].name, "hot_kernel");
  // The kernel dominates: > 90% of all samples.
  EXPECT_GT(static_cast<double>(report[0].samples),
            0.9 * static_cast<double>(profiler.total_samples()));
}

TEST(Profiler, ColdFunctionsHaveZeroSamples) {
  const image::Image img = Compile(kHotColdProgram);
  const profile::Profiler profiler = RunProfiled(img);
  for (const auto& fn : profiler.Report()) {
    if (fn.name == "cold_error_path" || fn.name == "cold_alt_mode") {
      EXPECT_EQ(fn.samples, 0u) << fn.name;
    }
  }
}

TEST(Profiler, HotSetIsSmall) {
  const image::Image img = Compile(kHotColdProgram);
  const profile::Profiler profiler = RunProfiled(img);
  const auto hot = profiler.HotFunctions(0.90);
  EXPECT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0], "hot_kernel");
  EXPECT_LT(profiler.HotCodeBytes(0.90), profiler.StaticTextBytes() / 4);
}

TEST(Profiler, FullFractionCoversAllExecuted) {
  const image::Image img = Compile(kHotColdProgram);
  const profile::Profiler profiler = RunProfiled(img);
  // fraction 1.0 includes every executed function but no unexecuted one.
  const auto hot = profiler.HotFunctions(1.0);
  for (const auto& name : hot) {
    EXPECT_NE(name, "cold_error_path");
    EXPECT_NE(name, "cold_alt_mode");
  }
  EXPECT_GE(hot.size(), 2u);  // at least main + hot_kernel (+ _start)
}

TEST(Profiler, DynamicBytesBelowStatic) {
  const image::Image img = Compile(kHotColdProgram);
  const profile::Profiler profiler = RunProfiled(img);
  const uint64_t dynamic = profiler.DynamicTextBytes();
  EXPECT_GT(dynamic, 0u);
  EXPECT_LT(dynamic, profiler.StaticTextBytes());
  // Dynamic footprint must cover at least the hot kernel's body.
  const image::Symbol* hot = img.FindSymbol("hot_kernel");
  ASSERT_NE(hot, nullptr);
  EXPECT_GE(dynamic, hot->size);
}

TEST(Profiler, DynamicBytesAreDistinct) {
  // Running the same program for much longer (input-driven) must not change
  // the dynamic footprint: it counts distinct instructions, not fetches.
  const image::Image img = Compile(R"(
    int main() {
      int n = 0;
      int c;
      while ((c = getchar()) != -1) n = n * 10 + (c - '0');
      int s = 0;
      for (int i = 0; i < n; i++) s += i;
      return s % 7;
    }
  )");
  const auto run_with = [&img](const char* input) {
    profile::Profiler profiler(img);
    vm::Machine machine;
    machine.LoadImage(img);
    machine.SetInput(std::vector<uint8_t>(input, input + strlen(input)));
    machine.set_fetch_observer(&profiler);
    SC_CHECK(machine.Run(100'000'000).reason == vm::StopReason::kHalted);
    return profiler.DynamicTextBytes();
  };
  EXPECT_EQ(run_with("100"), run_with("100000"));
}

}  // namespace
}  // namespace sc
